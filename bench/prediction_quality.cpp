/// \file prediction_quality.cpp
/// Extra study (backs the paper's Section 5 conclusion "the proposed
/// system has better prediction ... than SCC"): ROC AUC of FLC1's
/// correction value against straight-line dead reckoning (the assumption
/// behind SCC's demand projection) and a mobility-blind proximity
/// baseline, per speed class. Walking users are intrinsically
/// unpredictable (the paper's own observation) — no predictor can rank a
/// coin flip — so the fuzzy edge shows up at vehicular speeds and in the
/// mixed population, where Cv's speed-awareness discounts untrustworthy
/// headings.

#include <iomanip>
#include <iostream>

#include "predict/prediction_study.hpp"

int main() {
  using namespace facs;

  std::cout << "# Prediction quality (ROC AUC; outcome = user approached "
               "the BS within 300 s)\n";
  std::cout << std::left << std::setw(14) << "population" << std::setw(12)
            << "approach%" << std::setw(12) << "facs-cv" << std::setw(16)
            << "straight-line" << "proximity" << "\n";

  struct Population {
    const char* label;
    double speed_min;
    double speed_max;
  };
  const Population populations[] = {
      {"walk-4kmh", 4.0, 4.0},     {"walk-10kmh", 10.0, 10.0},
      {"urban-30kmh", 30.0, 30.0}, {"road-60kmh", 60.0, 60.0},
      {"mixed-0-120", 0.0, 120.0},
  };

  for (const Population& pop : populations) {
    predict::PredictionConfig cfg;
    cfg.scenario.speed_min_kmh = pop.speed_min;
    cfg.scenario.speed_max_kmh = pop.speed_max;
    cfg.scenario.angle_sigma_deg = 75.0;  // directions over the whole range
    cfg.samples = 3000;
    cfg.seed = 11;
    const predict::StudyResult study = predict::runPredictionStudy(cfg);

    const double approach_pct =
        100.0 * study.approachers /
        static_cast<double>(study.approachers + study.retreaters);
    std::cout << std::left << std::setw(14) << pop.label << std::fixed
              << std::setprecision(1) << std::setw(12) << approach_pct
              << std::setprecision(3);
    for (const auto& p : study.predictors) {
      const int width = p.name == "straight-line" ? 16 : 12;
      std::cout << std::setw(width) << p.auc;
    }
    std::cout << "\n";
  }
  std::cout << "# paper shape: walkers are near-unrankable (AUC ~ 0.5 for "
               "everyone); fuzzy prediction wins at vehicular\n"
               "# speeds and on the mixed population by discounting slow "
               "users' stated headings\n";
  return 0;
}
