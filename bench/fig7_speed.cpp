/// \file fig7_speed.cpp
/// Reproduces Fig. 7: percentage of accepted calls vs number of requesting
/// connections, with the user speed as the curve parameter
/// (4 / 10 / 30 / 60 km/h).
///
/// Mechanism (paper Section 4): all users start roughly headed at the BS,
/// but walking users re-draw their direction during the GPS tracking
/// window, so FLC1 sees large angles and issues low correction values —
/// their calls are the first to go once the cell fills.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace facs;

  sim::SweepSpec sweep;
  sweep.title =
      "Fig. 7 - percent accepted vs requesting connections (speed parameter)";
  sweep.xs = bench::paperXs();
  sweep.replications = 10;

  std::vector<sim::CurveSpec> curves;
  for (const double speed : {4.0, 10.0, 30.0, 60.0}) {
    sim::CurveSpec c;
    c.label = std::to_string(static_cast<int>(speed)) + "km/h";
    c.base.scenario = sim::fig7Scenario(speed);
    c.make_controller = bench::policy("facs");
    curves.push_back(std::move(c));
  }

  const sim::SweepResult result = sim::runSweep(sweep, curves);
  return bench::emit(argc, argv, result,
                     "acceptance ordered by speed (60 > 30 >> 10 >= 4 km/h) "
                     "at load; all curves near 100% at light load");
}
