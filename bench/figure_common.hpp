#pragma once
/// \file figure_common.hpp
/// Shared plumbing for the figure-reproduction benches: controller
/// factories, the paper's default sweep axes, and output-mode handling
/// (aligned table by default, CSV with --csv).

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cac/baselines.hpp"
#include "cac/predictive_reservation.hpp"
#include "cac/sir_controller.hpp"
#include "core/facs.hpp"
#include "scc/shadow_cluster.hpp"
#include "sim/experiment.hpp"

namespace facs::bench {

/// SirController bundled with the radio model it consults (the bench
/// factories hand out self-contained controllers).
class StandaloneSirController final : public cellular::AdmissionController {
 public:
  explicit StandaloneSirController(const cellular::HexNetwork& net,
                                   cac::SirThresholds thresholds = {})
      : radio_{net}, inner_{radio_, thresholds} {}

  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override {
    return inner_.decide(request, context);
  }

 private:
  cellular::RadioModel radio_;
  cac::SirController inner_;
};

inline sim::ControllerFactory facsFactory(core::FacsConfig config = {}) {
  return [config](const cellular::HexNetwork&) {
    return std::make_unique<core::FacsController>(config);
  };
}

inline sim::ControllerFactory sccFactory(scc::SccConfig config = {}) {
  return [config](const cellular::HexNetwork& net) {
    return std::make_unique<scc::ShadowClusterController>(net, config);
  };
}

inline sim::ControllerFactory csFactory() {
  return [](const cellular::HexNetwork&) {
    return std::make_unique<cac::CompleteSharingController>();
  };
}

inline sim::ControllerFactory guardFactory(cellular::BandwidthUnits guard) {
  return [guard](const cellular::HexNetwork&) {
    return std::make_unique<cac::GuardChannelController>(guard);
  };
}

inline sim::ControllerFactory multiThresholdFactory(
    std::array<cellular::BandwidthUnits, cellular::kServiceClassCount> t) {
  return [t](const cellular::HexNetwork&) {
    return std::make_unique<cac::MultiThresholdController>(t);
  };
}

inline sim::ControllerFactory sirFactory() {
  return [](const cellular::HexNetwork& net) {
    return std::make_unique<StandaloneSirController>(net);
  };
}

inline sim::ControllerFactory predictiveRsvFactory(
    cac::PredictiveReservationConfig config = {}) {
  return [config](const cellular::HexNetwork& net) {
    return std::make_unique<cac::PredictiveReservationController>(net, config);
  };
}

/// The paper's x-axis: 0-100 requesting connections.
inline std::vector<int> paperXs() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

/// Emits the sweep in the format selected on the command line and returns
/// the process exit code.
inline int emit(int argc, char** argv, const sim::SweepResult& result,
                const std::string& expectation) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }
  if (csv) {
    sim::printCsv(std::cout, result);
  } else {
    sim::printTable(std::cout, result);
    std::cout << "# paper shape: " << expectation << "\n";
  }
  return 0;
}

}  // namespace facs::bench
