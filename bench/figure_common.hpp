#pragma once
/// \file figure_common.hpp
/// Shared plumbing for the figure-reproduction benches: registry-backed
/// policy lookup, the paper's default sweep axes, and output-mode handling
/// (aligned table by default, CSV with --csv).

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cellular/policy_registry.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario_catalog.hpp"

namespace facs::bench {

/// Controller factory from a policy spec (e.g. "facs", "guard:10",
/// "facs:tau=0.25,ops=prod"), resolved through the shared default policy
/// runtime. Every bench goes through this — no bench constructs a concrete
/// controller or touches the registrar seed.
inline sim::ControllerFactory policy(const std::string& spec) {
  return cellular::PolicyRuntime::defaultRuntime().makeFactory(spec);
}

/// A labelled curve on a catalogued or custom base config.
inline sim::CurveSpec curve(std::string label, const sim::SimulationConfig& base,
                            const std::string& policy_spec) {
  sim::CurveSpec c;
  c.label = std::move(label);
  c.base = base;
  c.make_controller = policy(policy_spec);
  return c;
}

/// The paper's x-axis: 0-100 requesting connections.
inline std::vector<int> paperXs() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

/// Emits the sweep in the format selected on the command line and returns
/// the process exit code.
inline int emit(int argc, char** argv, const sim::SweepResult& result,
                const std::string& expectation) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }
  if (csv) {
    sim::printCsv(std::cout, result);
  } else {
    sim::printTable(std::cout, result);
    std::cout << "# paper shape: " << expectation << "\n";
  }
  return 0;
}

}  // namespace facs::bench
