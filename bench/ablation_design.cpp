/// \file ablation_design.cpp
/// Ablations over the design decisions DESIGN.md calls out:
///   1. inference operators (min/max Mamdani vs product/probor);
///   2. defuzzifier choice;
///   3. acceptance threshold tau;
///   4. GPS horizontal error;
///   5. tracking-window length.
/// Each section prints one sweep on the Fig. 7 (30 km/h) workload, which
/// exercises prediction, admission and the GPS path together.

#include "figure_common.hpp"

namespace {

using namespace facs;

sim::SimulationConfig baseConfig() {
  sim::SimulationConfig cfg;
  cfg.scenario = sim::fig7Scenario(30.0);
  return cfg;
}

sim::SweepSpec spec(const std::string& title) {
  sim::SweepSpec s;
  s.title = title;
  s.xs = {20, 50, 80};
  s.replications = 8;
  return s;
}

void operatorAblation(int argc, char** argv) {
  // The facs registry entry exposes the operator family as ops=minmax
  // (paper Mamdani), ops=prod (Larsen product/probor) and ops=luk
  // (Lukasiewicz conjunction).
  std::vector<sim::CurveSpec> curves;
  curves.push_back(bench::curve("min/max+centroid", baseConfig(), "facs"));
  curves.push_back(bench::curve("prod/probor", baseConfig(), "facs:ops=prod"));
  curves.push_back(
      bench::curve("lukasiewicz-and", baseConfig(), "facs:ops=luk"));

  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 1 - inference operators"),
                                  curves),
                    "operator family shifts absolute acceptance slightly; "
                    "ordering by load is stable");
}

void defuzzifierAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  for (const char* name : {"centroid", "bisector", "mom"}) {
    curves.push_back(bench::curve(name, baseConfig(),
                                  std::string{"facs:defuzz="} + name));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 2 - defuzzifier"), curves),
                    "MOM makes decisions more binary (NRNA defuzzifies to "
                    "exactly 0); centroid/bisector nearly coincide");
}

void thresholdAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  for (const double tau : {-0.25, 0.0, 0.25, 0.5}) {
    const std::string tau_text = std::to_string(tau).substr(0, 5);
    curves.push_back(
        bench::curve("tau=" + tau_text, baseConfig(), "facs:tau=" + tau_text));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 3 - acceptance threshold"),
                                  curves),
                    "tau trades blocking against ongoing-call protection "
                    "monotonically");
}

void gpsErrorAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  for (const double err_m : {0.0, 10.0, 50.0, 200.0}) {
    sim::CurveSpec c;
    c.label = "gps=" + std::to_string(static_cast<int>(err_m)) + "m";
    c.base = baseConfig();
    c.base.scenario.gps_error_m = err_m;
    c.make_controller = bench::policy("facs");
    curves.push_back(std::move(c));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 4 - GPS horizontal error"),
                                  curves),
                    "fuzzy admission degrades gracefully with measurement "
                    "noise (the paper's motivation for fuzzy logic)");
}

void trackingWindowAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  for (const double window_s : {10.0, 30.0, 60.0}) {
    sim::CurveSpec c;
    c.label = "window=" + std::to_string(static_cast<int>(window_s)) + "s";
    c.base = baseConfig();
    c.base.scenario.tracking_window_s = window_s;
    c.make_controller = bench::policy("facs");
    curves.push_back(std::move(c));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 5 - GPS tracking window"),
                                  curves),
                    "longer windows smooth speed estimates but let slow "
                    "users drift further before the decision");
}

}  // namespace

int main(int argc, char** argv) {
  operatorAblation(argc, argv);
  defuzzifierAblation(argc, argv);
  thresholdAblation(argc, argv);
  gpsErrorAblation(argc, argv);
  trackingWindowAblation(argc, argv);
  return 0;
}
