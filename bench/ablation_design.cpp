/// \file ablation_design.cpp
/// Ablations over the design decisions DESIGN.md calls out:
///   1. inference operators (min/max Mamdani vs product/probor);
///   2. defuzzifier choice;
///   3. acceptance threshold tau;
///   4. GPS horizontal error;
///   5. tracking-window length.
/// Each section prints one sweep on the Fig. 7 (30 km/h) workload, which
/// exercises prediction, admission and the GPS path together.

#include "figure_common.hpp"

namespace {

using namespace facs;

sim::SimulationConfig baseConfig() {
  sim::SimulationConfig cfg;
  cfg.scenario = sim::fig7Scenario(30.0);
  return cfg;
}

sim::SweepSpec spec(const std::string& title) {
  sim::SweepSpec s;
  s.title = title;
  s.xs = {20, 50, 80};
  s.replications = 8;
  return s;
}

void operatorAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;

  sim::CurveSpec mamdani;
  mamdani.label = "min/max+centroid";
  mamdani.base = baseConfig();
  mamdani.make_controller = bench::facsFactory();
  curves.push_back(mamdani);

  core::FacsConfig prod;
  prod.flc1.conjunction = fuzzy::TNorm::AlgebraicProduct;
  prod.flc1.implication = fuzzy::TNorm::AlgebraicProduct;
  prod.flc1.aggregation = fuzzy::SNorm::AlgebraicSum;
  prod.flc2 = prod.flc1;
  sim::CurveSpec larsen;
  larsen.label = "prod/probor";
  larsen.base = baseConfig();
  larsen.make_controller = bench::facsFactory(prod);
  curves.push_back(larsen);

  core::FacsConfig luk;
  luk.flc1.conjunction = fuzzy::TNorm::BoundedDifference;
  luk.flc2.conjunction = fuzzy::TNorm::BoundedDifference;
  sim::CurveSpec lukasiewicz;
  lukasiewicz.label = "lukasiewicz-and";
  lukasiewicz.base = baseConfig();
  lukasiewicz.make_controller = bench::facsFactory(luk);
  curves.push_back(lukasiewicz);

  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 1 - inference operators"),
                                  curves),
                    "operator family shifts absolute acceptance slightly; "
                    "ordering by load is stable");
}

void defuzzifierAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  const std::pair<const char*, fuzzy::Defuzzifier> variants[] = {
      {"centroid", fuzzy::Defuzzifier::Centroid},
      {"bisector", fuzzy::Defuzzifier::Bisector},
      {"mom", fuzzy::Defuzzifier::MeanOfMax},
  };
  for (const auto& [name, method] : variants) {
    core::FacsConfig cfg;
    cfg.flc1.defuzzifier = method;
    cfg.flc2.defuzzifier = method;
    sim::CurveSpec c;
    c.label = name;
    c.base = baseConfig();
    c.make_controller = bench::facsFactory(cfg);
    curves.push_back(std::move(c));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 2 - defuzzifier"), curves),
                    "MOM makes decisions more binary (NRNA defuzzifies to "
                    "exactly 0); centroid/bisector nearly coincide");
}

void thresholdAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  for (const double tau : {-0.25, 0.0, 0.25, 0.5}) {
    core::FacsConfig cfg;
    cfg.accept_threshold = tau;
    sim::CurveSpec c;
    c.label = "tau=" + std::to_string(tau).substr(0, 5);
    c.base = baseConfig();
    c.make_controller = bench::facsFactory(cfg);
    curves.push_back(std::move(c));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 3 - acceptance threshold"),
                                  curves),
                    "tau trades blocking against ongoing-call protection "
                    "monotonically");
}

void gpsErrorAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  for (const double err_m : {0.0, 10.0, 50.0, 200.0}) {
    sim::CurveSpec c;
    c.label = "gps=" + std::to_string(static_cast<int>(err_m)) + "m";
    c.base = baseConfig();
    c.base.scenario.gps_error_m = err_m;
    c.make_controller = bench::facsFactory();
    curves.push_back(std::move(c));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 4 - GPS horizontal error"),
                                  curves),
                    "fuzzy admission degrades gracefully with measurement "
                    "noise (the paper's motivation for fuzzy logic)");
}

void trackingWindowAblation(int argc, char** argv) {
  std::vector<sim::CurveSpec> curves;
  for (const double window_s : {10.0, 30.0, 60.0}) {
    sim::CurveSpec c;
    c.label = "window=" + std::to_string(static_cast<int>(window_s)) + "s";
    c.base = baseConfig();
    c.base.scenario.tracking_window_s = window_s;
    c.make_controller = bench::facsFactory();
    curves.push_back(std::move(c));
  }
  (void)bench::emit(argc, argv,
                    sim::runSweep(spec("Ablation 5 - GPS tracking window"),
                                  curves),
                    "longer windows smooth speed estimates but let slow "
                    "users drift further before the decision");
}

}  // namespace

int main(int argc, char** argv) {
  operatorAblation(argc, argv);
  defuzzifierAblation(argc, argv);
  thresholdAblation(argc, argv);
  gpsErrorAblation(argc, argv);
  trackingWindowAblation(argc, argv);
  return 0;
}
