/// \file micro_sim.cpp
/// Microbenchmarks of the simulation substrate: event-queue throughput,
/// whole-run latency per policy, the per-decision cost of the opt-in
/// rationale API, and SCC's decision cost as the number of tracked shadows
/// grows. All controllers come from the policy registry.

#include <benchmark/benchmark.h>

#include "core/facs.hpp"
#include "figure_common.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace facs;
using bench::policy;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue<int> q;
  sim::Rng rng = sim::makeRng(1);
  double clock = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(clock + sim::sampleUniform(rng, 0.0, 100.0), i);
    }
    for (int i = 0; i < 64; ++i) {
      auto e = q.pop();
      clock = e->time_s;
      benchmark::DoNotOptimize(e);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueuePushPop);

sim::SimulationConfig benchConfig(int requests) {
  sim::SimulationConfig cfg;
  cfg.total_requests = requests;
  cfg.seed = 5;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  return cfg;
}

void BM_SimulationRunFacs(benchmark::State& state) {
  const auto cfg = benchConfig(static_cast<int>(state.range(0)));
  const auto factory = policy("facs");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runSimulation(cfg, factory));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_SimulationRunFacs)->Arg(25)->Arg(100);

void BM_SimulationRunCs(benchmark::State& state) {
  const auto cfg = benchConfig(static_cast<int>(state.range(0)));
  const auto factory = policy("cs");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runSimulation(cfg, factory));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_SimulationRunCs)->Arg(25)->Arg(100);

void BM_SimulationWithGpsTracking(benchmark::State& state) {
  sim::SimulationConfig cfg = benchConfig(50);
  cfg.scenario.tracking_window_s = 30.0;
  cfg.scenario.gps_error_m = 10.0;
  const auto factory = policy("facs");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runSimulation(cfg, factory));
  }
}
BENCHMARK(BM_SimulationWithGpsTracking);

/// The decision hot path with rationale off (the simulator's mode: no
/// string is built) vs on (the dashboard/debug mode). The gap is the cost
/// the opt-in API removed from every simulated decision.
template <bool kExplain>
void BM_DecideRationale(benchmark::State& state, const std::string& spec) {
  const cellular::HexNetwork net{0};
  const auto controller = policy(spec)(net);
  cellular::CallRequest request;
  request.call = 1;
  request.service = cellular::ServiceClass::Voice;
  request.demand_bu = 5;
  request.snapshot = {45.0, 20.0, 4.0, {4.0, 0.0}};
  request.target_cell = 0;
  const cellular::AdmissionContext ctx{net.station(0), 0.0, kExplain};
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller->decide(request, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_FacsDecideNoExplain(benchmark::State& state) {
  BM_DecideRationale<false>(state, "facs");
}
BENCHMARK(BM_FacsDecideNoExplain);
void BM_FacsDecideExplain(benchmark::State& state) {
  BM_DecideRationale<true>(state, "facs");
}
BENCHMARK(BM_FacsDecideExplain);
void BM_CsDecideNoExplain(benchmark::State& state) {
  BM_DecideRationale<false>(state, "cs");
}
BENCHMARK(BM_CsDecideNoExplain);
void BM_CsDecideExplain(benchmark::State& state) {
  BM_DecideRationale<true>(state, "cs");
}
BENCHMARK(BM_CsDecideExplain);
void BM_GuardDecideNoExplain(benchmark::State& state) {
  BM_DecideRationale<false>(state, "guard:8");
}
BENCHMARK(BM_GuardDecideNoExplain);
void BM_GuardDecideExplain(benchmark::State& state) {
  BM_DecideRationale<true>(state, "guard:8");
}
BENCHMARK(BM_GuardDecideExplain);

/// The split FACS pipeline, stage by stage. Precompute (FLC1 only) is what
/// the sharded engine hoists into the parallel prepare phase; decide with a
/// precomputed CV is what remains on the serialized commit path (FLC2
/// only). Their sum should approximate the inline BM_FacsDecideNoExplain —
/// the win is WHERE the FLC1 share runs, not how much total work exists.
void BM_FacsPrecompute(benchmark::State& state) {
  const cellular::HexNetwork net{0};
  const auto controller = policy("facs")(net);
  const cellular::UserSnapshot snapshot{45.0, 20.0, 4.0, {4.0, 0.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller->precompute(snapshot));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FacsPrecompute);

void BM_FacsDecidePrecomputedCv(benchmark::State& state) {
  const cellular::HexNetwork net{0};
  const auto controller = policy("facs")(net);
  cellular::CallRequest request;
  request.call = 1;
  request.service = cellular::ServiceClass::Voice;
  request.demand_bu = 5;
  request.snapshot = {45.0, 20.0, 4.0, {4.0, 0.0}};
  request.target_cell = 0;
  cellular::AdmissionContext ctx{net.station(0), 0.0};
  ctx.predicted = controller->precompute(request.snapshot);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller->decide(request, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FacsDecidePrecomputedCv);

/// Per-tick-window FLC2 batching: one evaluateBatch over N pending
/// decisions versus N virtual decide() calls (the commit phase's two ways
/// of clearing a window's admissions).
void BM_FacsEvaluateBatch(benchmark::State& state) {
  const cellular::HexNetwork net{0};
  const auto controller = policy("facs")(net);
  auto* facs = dynamic_cast<core::FacsController*>(controller.get());
  const int n = static_cast<int>(state.range(0));
  std::vector<core::PendingDecision> batch(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    batch[static_cast<std::size_t>(i)].cv = 0.1 + 0.8 * i / n;
    batch[static_cast<std::size_t>(i)].demand_bu = 5.0;
    batch[static_cast<std::size_t>(i)].occupied_bu =
        static_cast<double>(i % 40);
  }
  for (auto _ : state) {
    facs->evaluateBatch(batch);
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FacsEvaluateBatch)->Arg(16)->Arg(256);

/// SCC decision cost must stay flat as tracked shadows grow: decide()
/// reads the incremental per-cell demand accumulators (updated on call
/// arrival/departure/handoff) instead of re-integrating every shadow.
void BM_SccDecideVsTrackedCalls(benchmark::State& state) {
  const cellular::HexNetwork net{2};
  const auto scc = policy("scc")(net);
  const int tracked = static_cast<int>(state.range(0));
  for (int i = 0; i < tracked; ++i) {
    cellular::CallRequest r;
    r.call = static_cast<cellular::CallId>(i + 1);
    r.service = cellular::ServiceClass::Voice;
    r.demand_bu = 5;
    r.snapshot.position = {static_cast<double>(i % 10), 0.0};
    r.snapshot.speed_kmh = 30.0;
    r.target_cell = 0;
    scc->onAdmitted(r, {net.station(0), 0.0});
  }
  cellular::CallRequest probe;
  probe.call = 100000;
  probe.service = cellular::ServiceClass::Video;
  probe.demand_bu = 10;
  probe.snapshot.position = {1.0, 1.0};
  probe.target_cell = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scc->decide(probe, {net.station(0), 0.0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SccDecideVsTrackedCalls)->Arg(8)->Arg(64)->Arg(256)->Arg(2048);

/// Whole sharded runs on a multi-cell scenario (the wall-clock scaling
/// study lives in multi_cell_scaling; this pins the per-event overhead of
/// the barrier machinery at shards=1 vs a small fan-out).
void BM_ShardedRunMultiCell(benchmark::State& state) {
  sim::SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 2.0;
  cfg.total_requests = 200;
  cfg.arrival_window_s = 400.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.seed = 5;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  cfg.scenario.speed_min_kmh = 40.0;
  cfg.scenario.speed_max_kmh = 100.0;
  cfg.scenario.distance_max_km = 2.0;
  cfg.shards = static_cast<int>(state.range(0));
  const auto factory = policy("facs");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runSimulation(cfg, factory));
  }
  state.SetItemsProcessed(state.iterations() * cfg.total_requests);
}
BENCHMARK(BM_ShardedRunMultiCell)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
