/// \file micro_sim.cpp
/// Microbenchmarks of the simulation substrate: event-queue throughput,
/// whole-run latency per policy, and SCC's decision cost as the number of
/// tracked shadows grows.

#include <benchmark/benchmark.h>

#include "cac/baselines.hpp"
#include "core/facs.hpp"
#include "scc/shadow_cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace facs;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue<int> q;
  sim::Rng rng = sim::makeRng(1);
  double clock = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(clock + sim::sampleUniform(rng, 0.0, 100.0), i);
    }
    for (int i = 0; i < 64; ++i) {
      auto e = q.pop();
      clock = e->time_s;
      benchmark::DoNotOptimize(e);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueuePushPop);

sim::SimulationConfig benchConfig(int requests) {
  sim::SimulationConfig cfg;
  cfg.total_requests = requests;
  cfg.seed = 5;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  return cfg;
}

void BM_SimulationRunFacs(benchmark::State& state) {
  const auto cfg = benchConfig(static_cast<int>(state.range(0)));
  const auto factory = [](const cellular::HexNetwork&) {
    return std::make_unique<core::FacsController>();
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runSimulation(cfg, factory));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_SimulationRunFacs)->Arg(25)->Arg(100);

void BM_SimulationRunCs(benchmark::State& state) {
  const auto cfg = benchConfig(static_cast<int>(state.range(0)));
  const auto factory = [](const cellular::HexNetwork&) {
    return std::make_unique<cac::CompleteSharingController>();
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runSimulation(cfg, factory));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_SimulationRunCs)->Arg(25)->Arg(100);

void BM_SimulationWithGpsTracking(benchmark::State& state) {
  sim::SimulationConfig cfg = benchConfig(50);
  cfg.scenario.tracking_window_s = 30.0;
  cfg.scenario.gps_error_m = 10.0;
  const auto factory = [](const cellular::HexNetwork&) {
    return std::make_unique<core::FacsController>();
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runSimulation(cfg, factory));
  }
}
BENCHMARK(BM_SimulationWithGpsTracking);

/// SCC decision cost is O(tracked shadows x cluster cells x intervals).
void BM_SccDecideVsTrackedCalls(benchmark::State& state) {
  const cellular::HexNetwork net{2};
  scc::ShadowClusterController scc{net};
  const int tracked = static_cast<int>(state.range(0));
  for (int i = 0; i < tracked; ++i) {
    cellular::CallRequest r;
    r.call = static_cast<cellular::CallId>(i + 1);
    r.service = cellular::ServiceClass::Voice;
    r.demand_bu = 5;
    r.snapshot.position = {static_cast<double>(i % 10), 0.0};
    r.snapshot.speed_kmh = 30.0;
    r.target_cell = 0;
    scc.onAdmitted(r, {net.station(0), 0.0});
  }
  cellular::CallRequest probe;
  probe.call = 100000;
  probe.service = cellular::ServiceClass::Video;
  probe.demand_bu = 10;
  probe.snapshot.position = {1.0, 1.0};
  probe.target_cell = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scc.decide(probe, {net.station(0), 0.0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SccDecideVsTrackedCalls)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
