/// \file fig9_distance.cpp
/// Reproduces Fig. 9: percentage of accepted calls vs number of requesting
/// connections, with the user-to-BS distance as the curve parameter
/// (1 / 3 / 7 / 10 km). The paper's point: distance matters, but far less
/// than speed or angle.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace facs;

  sim::SweepSpec sweep;
  sweep.title =
      "Fig. 9 - percent accepted vs requesting connections (distance "
      "parameter)";
  sweep.xs = bench::paperXs();
  sweep.replications = 10;

  std::vector<sim::CurveSpec> curves;
  for (const double km : {1.0, 3.0, 7.0, 10.0}) {
    sim::CurveSpec c;
    c.label = std::to_string(static_cast<int>(km)) + "km";
    c.base.scenario = sim::fig9Scenario(km);
    c.make_controller = bench::policy("facs");
    curves.push_back(std::move(c));
  }

  const sim::SweepResult result = sim::runSweep(sweep, curves);
  return bench::emit(argc, argv, result,
                     "acceptance decreases with distance, but with much "
                     "smaller curve separation than Figs. 7-8");
}
