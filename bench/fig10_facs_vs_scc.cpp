/// \file fig10_facs_vs_scc.cpp
/// Reproduces Fig. 10: FACS against the Shadow Cluster Concept on the
/// mixed default workload, over a 7-cell network so SCC's inter-cell
/// reservation machinery is live.
///
/// Expected crossover (paper Section 4): below ~50 requesting connections
/// FACS accepts more (SCC's probabilistic reservations hold capacity back
/// for projected arrivals); above ~50 FACS accepts less, because its Cs
/// rules protect the QoS of ongoing calls while SCC keeps admitting
/// whatever still fits its projections.

#include <cstdlib>
#include <sstream>

#include "figure_common.hpp"

namespace {

/// Optional override: --scc-<name> <value> (calibration aid).
double flagOr(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace facs;

  sim::SweepSpec sweep;
  sweep.title = "Fig. 10 - FACS vs SCC (percent accepted)";
  sweep.xs = bench::paperXs();
  sweep.replications = 10;

  sim::SimulationConfig base;
  base.rings = 1;  // SCC needs neighbours to reserve against
  base.scenario = sim::fig10Scenario();
  // Requests spread across 7 cells: compress the arrival window so the
  // per-cell offered load matches the single-cell figures (600 s / 7).
  base.arrival_window_s = 600.0 / 7.0;

  const sim::CurveSpec facs_curve = bench::curve("FACS", base, "facs");

  // Reserve a survivability margin for projected handoffs (theta < 1): this
  // is what costs SCC acceptance at light load relative to FACS.
  std::ostringstream scc_spec;
  scc_spec << "scc:theta=" << flagOr(argc, argv, "--scc-theta", 0.85)
           << ",sigma=" << flagOr(argc, argv, "--scc-sigma", 8.0)
           << ",growth=" << flagOr(argc, argv, "--scc-growth", 0.0)
           << ",intervals="
           << static_cast<int>(flagOr(argc, argv, "--scc-intervals", 3.0));
  const sim::CurveSpec scc_curve = bench::curve("SCC", base, scc_spec.str());

  const sim::SweepResult result =
      sim::runSweep(sweep, {facs_curve, scc_curve});
  return bench::emit(argc, argv, result,
                     "FACS above SCC below ~50 connections, below SCC past "
                     "the crossover");
}
