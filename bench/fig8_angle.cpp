/// \file fig8_angle.cpp
/// Reproduces Fig. 8: percentage of accepted calls vs number of requesting
/// connections, with the user angle as the curve parameter
/// (0 / 30 / 50 / 60 / 90 degrees off the bearing to the BS).

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace facs;

  sim::SweepSpec sweep;
  sweep.title =
      "Fig. 8 - percent accepted vs requesting connections (angle parameter)";
  sweep.xs = bench::paperXs();
  sweep.replications = 10;

  std::vector<sim::CurveSpec> curves;
  for (const double angle : {0.0, 30.0, 50.0, 60.0, 90.0}) {
    sim::CurveSpec c;
    c.label = "angle=" + std::to_string(static_cast<int>(angle));
    c.base.scenario = sim::fig8Scenario(angle);
    c.make_controller = bench::policy("facs");
    curves.push_back(std::move(c));
  }

  const sim::SweepResult result = sim::runSweep(sweep, curves);
  return bench::emit(argc, argv, result,
                     "acceptance decreases monotonically with angle; angle 0 "
                     "stays near 100% at light load");
}
