/// \file micro_radio.cpp
/// Microbenchmarks of the radio layer and the SIR admission path: per-call
/// latency of RadioModel::sinrDb and SirController::decide as the network
/// grows (rings 2/4/6 = 19/61/127 cells), and the effect of the bounded
/// interference footprint (`sir:radius=R`). These are the numbers behind
/// the "SIR is the last scaling ceiling" claim: the interference sum is
/// O(cells) at radius=0 and O(ring area) at radius=R.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cellular/admission.hpp"
#include "cellular/network.hpp"
#include "cellular/policy_registry.hpp"
#include "cellular/radio.hpp"

namespace {

using namespace facs;

/// A hex disk with every station partially loaded (utilizations vary per
/// cell so no interferer drops out of the sum and no two cells look alike).
cellular::HexNetwork loadedNetwork(int rings) {
  cellular::HexNetwork net{rings, /*cell_radius_km=*/1.5};
  cellular::CallId next_call = 1;
  for (const cellular::Cell& c : net.cells()) {
    cellular::BaseStation& bs = net.station(c.id);
    const cellular::BandwidthUnits bu =
        1 + static_cast<cellular::BandwidthUnits>(c.id * 7 % 29);
    bs.allocate(next_call++, bu, (c.id % 2) == 0);
  }
  return net;
}

/// Positions inside the centre cell, rotated through per iteration so the
/// distance terms change and nothing can be hoisted out of the loop.
std::vector<cellular::Vec2> probePositions(const cellular::HexNetwork& net) {
  const cellular::Vec2 centre = net.cell(0).center;
  const double r = net.cellRadiusKm();
  return {
      {centre.x + 0.1 * r, centre.y + 0.2 * r},
      {centre.x - 0.4 * r, centre.y + 0.3 * r},
      {centre.x + 0.7 * r, centre.y - 0.1 * r},
      {centre.x - 0.2 * r, centre.y - 0.6 * r},
      {centre.x + 0.5 * r, centre.y + 0.5 * r},
  };
}

void BM_SinrDb(benchmark::State& state) {
  const cellular::HexNetwork net = loadedNetwork(static_cast<int>(state.range(0)));
  const cellular::RadioModel radio{net};
  const std::vector<cellular::Vec2> probes = probePositions(net);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio.sinrDb(probes[i], 0));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(net.cellCount()) + " cells");
}
BENCHMARK(BM_SinrDb)->Arg(2)->Arg(4)->Arg(6);

/// Full admission decision through the registry-built `sir` controller:
/// range(0) = rings, range(1) = interference radius in hops (0 = exact
/// whole-network sum).
void BM_SirDecide(benchmark::State& state) {
  const cellular::HexNetwork net = loadedNetwork(static_cast<int>(state.range(0)));
  std::string spec = "sir";
  if (state.range(1) > 0) {
    spec += ":radius=" + std::to_string(state.range(1));
  }
  const std::unique_ptr<cellular::AdmissionController> controller =
      cellular::PolicyRuntime::defaultRuntime().makeController(spec, net);
  const std::vector<cellular::Vec2> probes = probePositions(net);
  cellular::CallRequest request;
  request.service = cellular::ServiceClass::Voice;
  request.demand_bu = 2;
  request.target_cell = 0;
  const cellular::AdmissionContext context{net.station(0)};
  std::size_t i = 0;
  for (auto _ : state) {
    request.snapshot.position = probes[i];
    benchmark::DoNotOptimize(controller->decide(request, context));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(net.cellCount()) + " cells");
}
BENCHMARK(BM_SirDecide)
    ->Args({2, 0})
    ->Args({2, 2})
    ->Args({4, 0})
    ->Args({4, 2})
    ->Args({6, 0})
    ->Args({6, 2});

}  // namespace

BENCHMARK_MAIN();
