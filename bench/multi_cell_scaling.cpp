/// \file multi_cell_scaling.cpp
/// Sharded-engine scaling study: events/sec versus shard count on a
/// multi-cell scenario heavy enough for the parallel phases to matter
/// (GPS-tracked admissions, thousands of mobile calls stepping every
/// tick across 19 cells), plus the measured commit-phase share — the
/// serial fraction that caps speedup (Amdahl). Also doubles as a
/// determinism audit: every shard count must reproduce the serial run's
/// metrics bit for bit — any divergence is reported and fails the process.
///
///   multi_cell_scaling [--quick] [--requests N] [--shards LIST]
///                      [--groups LIST] [--policy SPEC] [--no-precompute]
///                      [--hotspot] [--partition NAME] [--repartition S]
///                      [--csv] [--json]
///
/// --hotspot skews the workload stadium-burst-style: the centre cell
/// spawns 12x the base rate with a video-heavy mix and the inner ring 2x —
/// the load shape that breaks a contiguous-by-id partition. --partition
/// picks the cell-to-lane mapping (contiguous | weighted | both — "both"
/// runs the full sweep per strategy, the lane-balance A/B the CI hotspot
/// audit consumes). --repartition S enables weighted epoch re-partitioning
/// every S simulated seconds. Every sample reports per-lane committed
/// events and wall seconds plus their max/mean imbalance ratios; --json
/// carries the full per-lane arrays per (partition, groups, shards) point.
///
/// --quick shrinks the run for CI smoke jobs. --no-precompute keeps
/// snapshot-only policy work (FACS FLC1) on the serialized commit path, so
/// the before/after serial-fraction win of the hoist is measurable:
/// compare commit% with the flag against without. Speedups depend on the
/// machine: with one core the study only demonstrates that the barrier
/// machinery costs little; the >1 numbers need real parallel hardware.
/// The default policy is guard:8 — an O(1) decide keeps the serialized
/// commit phase thin, so the measurement isolates the engine's scaling.
/// Pass --policy facs or --policy scc to study decide-heavy policies
/// (their serialized admission work caps the speedup, per Amdahl).
/// --json emits one machine-readable object (used by the CI bench-smoke
/// artifact to track events/sec and commit share per commit).
///
/// --groups sweeps the two-level commit lanes (default "1,4"): each group
/// count runs at every shard count. commit% is the SERIALIZED share — at
/// groups>1 the lane replay runs concurrently and moves out of the serial
/// bucket (lane% column), so the commit% trajectory across the group list
/// is exactly the Amdahl ceiling the two-level scheme buys back. The
/// determinism audit tightens accordingly: within one group count every
/// shard count must reproduce the same bits (groups=1 additionally matches
/// the historical serialized engine); different group counts are different
/// documented visibility semantics and are NOT compared to each other.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "figure_common.hpp"

namespace {

using namespace facs;

sim::SimulationConfig studyConfig(int requests) {
  // A dense urban district: 19 micro-cells, every admission GPS-tracked
  // through a long window (the expensive per-call local work the shards
  // parallelize), moderate speeds so calls keep crossing cells.
  sim::SimulationConfig cfg;
  cfg.rings = 2;
  cfg.cell_radius_km = 1.5;
  cfg.capacity_bu = 40;
  cfg.total_requests = requests;
  cfg.arrival_window_s = 1200.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.seed = 2024;
  cfg.scenario.speed_min_kmh = 10.0;
  cfg.scenario.speed_max_kmh = 60.0;
  cfg.scenario.distance_min_km = 0.0;
  cfg.scenario.distance_max_km = 1.5;
  cfg.scenario.tracking_window_s = 30.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  return cfg;
}

std::vector<int> parseShardList(const std::string& value) {
  std::vector<int> out;
  std::stringstream ss{value};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

/// Skews the study stadium-burst-style: the centre cell turns into a 12x
/// video-heavy hotspot, its whole inner ring runs 2x — per-cell load the
/// contiguous-by-id partition piles into one lane.
void applyHotspot(sim::SimulationConfig& cfg) {
  sim::CellOverride centre;
  centre.cell = 0;
  centre.arrival_scale = 12.0;
  centre.mix = cellular::TrafficMix{0.2, 0.3, 0.5};
  cfg.cell_overrides.push_back(centre);
  for (int c = 1; c <= 6; ++c) {
    sim::CellOverride ring;
    ring.cell = c;
    ring.arrival_scale = 2.0;
    cfg.cell_overrides.push_back(ring);
  }
}

/// max/mean over a per-lane vector: 1.0 = perfectly balanced lanes.
template <typename T>
double imbalance(const std::vector<T>& v) {
  if (v.empty()) return 1.0;
  double sum = 0.0;
  double max = 0.0;
  for (const T x : v) {
    const double d = static_cast<double>(x);
    sum += d;
    max = std::max(max, d);
  }
  if (sum <= 0.0) return 1.0;
  return max / (sum / static_cast<double>(v.size()));
}

/// One measured run at a given (partition, groups, shards) point.
struct Sample {
  std::string partition;
  int groups = 0;
  int shards = 0;
  double seconds = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double speedup = 1.0;
  double commit_share = 0.0;   ///< Serialized fraction of engine wall time.
  double lane_share = 0.0;     ///< Parallel group-lane fraction (groups>1).
  double prepare_share = 0.0;
  double local_share = 0.0;
  std::uint64_t reservations = 0;          ///< Cross-group claims posted.
  std::uint64_t reservations_admitted = 0;
  std::uint64_t reservations_dropped = 0;
  int repartitions = 0;
  std::vector<std::uint64_t> lane_events;  ///< Per-lane committed events.
  std::vector<double> lane_seconds;        ///< Per-lane wall seconds.
  double event_imbalance = 1.0;  ///< max/mean of lane_events (deterministic).
  double time_imbalance = 1.0;   ///< max/mean of lane_seconds (measured).
};

}  // namespace

int main(int argc, char** argv) {
  int requests = 6000;
  std::vector<int> shard_counts{1, 2, 4, 8};
  std::vector<int> group_counts{1, 4};
  std::string policy_spec = "guard:8";
  std::string partition_arg = "contiguous";
  double repartition_s = 0.0;
  bool hotspot = false;
  bool csv = false;
  bool json = false;
  bool precompute = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      requests = 600;
      shard_counts = {1, 2, 4};
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parseShardList(argv[++i]);
    } else if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      group_counts = parseShardList(argv[++i]);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      policy_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--partition") == 0 && i + 1 < argc) {
      partition_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--repartition") == 0 && i + 1 < argc) {
      repartition_s = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--hotspot") == 0) {
      hotspot = true;
    } else if (std::strcmp(argv[i], "--no-precompute") == 0) {
      precompute = false;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::cerr << "usage: multi_cell_scaling [--quick] [--requests N] "
                   "[--shards LIST] [--groups LIST] [--policy SPEC] "
                   "[--hotspot] [--partition contiguous|weighted|both] "
                   "[--repartition S] [--no-precompute] [--csv] [--json]\n";
      return 2;
    }
  }

  std::vector<std::string> strategies;
  if (partition_arg == "both") {
    strategies = {"contiguous", "weighted"};
  } else if (partition_arg == "contiguous" || partition_arg == "weighted") {
    strategies = {partition_arg};
  } else {
    std::cerr << "multi_cell_scaling: --partition must be 'contiguous', "
                 "'weighted' or 'both', got '"
              << partition_arg << "'\n";
    return 2;
  }

  if (csv && json) {
    std::cerr << "multi_cell_scaling: --csv and --json are mutually "
                 "exclusive (both write to stdout)\n";
    return 2;
  }

  sim::SimulationConfig base_cfg = studyConfig(requests);
  base_cfg.precompute_cv = precompute;
  if (hotspot) applyHotspot(base_cfg);
  const auto factory = bench::policy(policy_spec);

  const bool table = !csv && !json;
  if (csv) {
    std::cout << "partition,groups,shards,seconds,events,events_per_sec,"
                 "speedup,commit_share,lane_share,prepare_share,local_share,"
                 "reservations,reservations_admitted,reservations_dropped,"
                 "repartitions,event_imbalance,time_imbalance\n";
  } else if (table) {
    std::cout << "Sharded engine scaling: " << requests
              << " GPS-tracked requests over 19 cells (policy "
              << policy_spec << ", precompute "
              << (precompute ? "on" : "off")
              << (hotspot ? ", hotspot skew" : "") << ")\n\n"
              << std::left << std::setw(12) << "partition" << std::setw(8)
              << "groups" << std::setw(8) << "shards" << std::setw(12)
              << "seconds" << std::setw(12) << "events" << std::setw(14)
              << "events/sec" << std::setw(10) << "speedup" << std::setw(10)
              << "commit%" << std::setw(10) << "lane%" << std::setw(10)
              << "imbal" << "resv" << "\n";
  }

  sim::Metrics summary_reference;
  std::vector<Sample> samples;
  double serial_s = 0.0;
  bool deterministic = true;
  bool first_sample = true;
  for (const std::string& strategy : strategies) {
    sim::SimulationConfig cfg = base_cfg;
    cfg.partition = strategy == "weighted"
                        ? sim::PartitionStrategy::Weighted
                        : sim::PartitionStrategy::Contiguous;
    cfg.repartition_every_s =
        strategy == "weighted" ? repartition_s : 0.0;
    for (std::size_t gi = 0; gi < group_counts.size(); ++gi) {
      cfg.commit_groups = group_counts[gi];
      // Determinism reference per (partition, group count): the same
      // mapping must give the same bits at every shard count (different
      // group counts — and different partitions — differ by design).
      sim::Metrics reference;
      for (std::size_t i = 0; i < shard_counts.size(); ++i) {
        cfg.shards = shard_counts[i];
        const auto t0 = std::chrono::steady_clock::now();
        const sim::Metrics m = sim::runSimulation(cfg, factory);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

        if (i == 0) {
          reference = m;
          if (first_sample) {
            summary_reference = m;
            serial_s = secs;
            first_sample = false;
          }
        } else if (m.new_accepted != reference.new_accepted ||
                   m.handoff_dropped != reference.handoff_dropped ||
                   m.busy_bu_seconds != reference.busy_bu_seconds ||
                   m.engine_events != reference.engine_events ||
                   m.reservations_posted != reference.reservations_posted ||
                   m.lane_events != reference.lane_events ||
                   m.repartitions != reference.repartitions) {
          deterministic = false;
        }

        Sample s;
        s.partition = strategy;
        s.groups = m.commit_groups;
        s.shards = cfg.shards;
        s.seconds = secs;
        s.events = m.engine_events;
        s.events_per_sec =
            secs > 0.0 ? static_cast<double>(m.engine_events) / secs : 0.0;
        s.speedup = secs > 0.0 ? serial_s / secs : 0.0;
        s.commit_share = m.commitShare();
        s.reservations = m.reservations_posted;
        s.reservations_admitted = m.reservations_admitted;
        s.reservations_dropped = m.reservations_dropped;
        s.repartitions = m.repartitions;
        s.lane_events = m.lane_events;
        s.lane_seconds = m.lane_commit_s;
        s.event_imbalance = imbalance(m.lane_events);
        s.time_imbalance = imbalance(m.lane_commit_s);
        const double phases = m.prepare_phase_s + m.local_phase_s +
                              m.commit_phase_s + m.commit_lane_s;
        if (phases > 0.0) {
          s.lane_share = m.commit_lane_s / phases;
          s.prepare_share = m.prepare_phase_s / phases;
          s.local_share = m.local_phase_s / phases;
        }
        samples.push_back(s);

        if (csv) {
          std::cout << s.partition << "," << s.groups << "," << s.shards
                    << "," << s.seconds << "," << s.events << ","
                    << s.events_per_sec << "," << s.speedup << ","
                    << s.commit_share << "," << s.lane_share << ","
                    << s.prepare_share << "," << s.local_share << ","
                    << s.reservations << "," << s.reservations_admitted
                    << "," << s.reservations_dropped << ","
                    << s.repartitions << "," << s.event_imbalance << ","
                    << s.time_imbalance << "\n";
        } else if (table) {
          std::ostringstream speedup;
          speedup << std::fixed << std::setprecision(2) << s.speedup << "x";
          std::ostringstream commit_pct;
          commit_pct << std::fixed << std::setprecision(1)
                     << 100.0 * s.commit_share << "%";
          std::ostringstream lane_pct;
          lane_pct << std::fixed << std::setprecision(1)
                   << 100.0 * s.lane_share << "%";
          std::ostringstream imbal;
          imbal << std::fixed << std::setprecision(2) << s.event_imbalance;
          std::cout << std::left << std::setw(12) << s.partition
                    << std::setw(8) << s.groups << std::setw(8) << s.shards
                    << std::fixed << std::setprecision(3) << std::setw(12)
                    << s.seconds << std::setw(12) << s.events
                    << std::setprecision(0) << std::setw(14)
                    << s.events_per_sec << std::setw(10) << speedup.str()
                    << std::setw(10) << commit_pct.str() << std::setw(10)
                    << lane_pct.str() << std::setw(10) << imbal.str()
                    << s.reservations << "\n";
        }
      }
    }
  }

  if (json) {
    // Self-contained object for the CI artifact: per-(partition, groups,
    // shards) events/sec, the measured serialized (commit-phase) share,
    // and the full per-lane arrays (committed events + wall seconds) plus
    // their max/mean imbalance ratios — the one format the hotspot
    // lane-balance audit and bench_report both consume.
    std::cout << "{\n  \"policy\": \"" << policy_spec << "\",\n"
              << "  \"requests\": " << requests << ",\n"
              << "  \"hotspot\": " << (hotspot ? "true" : "false") << ",\n"
              << "  \"precompute\": " << (precompute ? "true" : "false")
              << ",\n  \"deterministic\": "
              << (deterministic ? "true" : "false") << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::cout << "    {\"partition\": \"" << s.partition
                << "\", \"commit_groups\": " << s.groups << ", \"shards\": "
                << s.shards << ", \"seconds\": " << s.seconds
                << ", \"events\": " << s.events << ", \"events_per_sec\": "
                << s.events_per_sec << ", \"speedup\": " << s.speedup
                << ", \"commit_share\": " << s.commit_share
                << ", \"lane_share\": " << s.lane_share
                << ", \"prepare_share\": " << s.prepare_share
                << ", \"local_share\": " << s.local_share
                << ", \"reservations\": " << s.reservations
                << ", \"reservations_admitted\": " << s.reservations_admitted
                << ", \"reservations_dropped\": " << s.reservations_dropped
                << ", \"repartitions\": " << s.repartitions;
      std::cout << ", \"lane_events\": [";
      for (std::size_t g = 0; g < s.lane_events.size(); ++g) {
        std::cout << (g ? ", " : "") << s.lane_events[g];
      }
      std::cout << "], \"lane_seconds\": [";
      for (std::size_t g = 0; g < s.lane_seconds.size(); ++g) {
        std::cout << (g ? ", " : "") << s.lane_seconds[g];
      }
      std::cout << "], \"event_imbalance\": " << s.event_imbalance
                << ", \"time_imbalance\": " << s.time_imbalance << "}"
                << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
  }

  if (table) {
    std::cout << "\nreference run: " << summary_reference.summary() << "\n";
  }
  if (!deterministic) {
    std::cerr << "FAIL: shard counts disagreed on the metrics within one "
                 "group count — the engine broke its determinism contract\n";
    return 1;
  }
  if (table) {
    std::cout << "determinism: every shard count reproduced its group "
                 "count's metrics bit for bit\n";
  }
  return 0;
}
