/// \file multi_cell_scaling.cpp
/// Sharded-engine scaling study: events/sec versus shard count on a
/// multi-cell scenario heavy enough for the parallel phases to matter
/// (GPS-tracked admissions, thousands of mobile calls stepping every
/// tick across 19 cells). Also doubles as a determinism audit: every
/// shard count must reproduce the serial run's metrics bit for bit —
/// any divergence is reported and fails the process.
///
///   multi_cell_scaling [--quick] [--requests N] [--shards LIST]
///                      [--policy SPEC] [--csv]
///
/// --quick shrinks the run for CI smoke jobs. Speedups depend on the
/// machine: with one core the study only demonstrates that the barrier
/// machinery costs little; the >1 numbers need real parallel hardware.
/// The default policy is guard:8 — an O(1) decide keeps the serialized
/// commit phase thin, so the measurement isolates the engine's scaling.
/// Pass --policy facs or --policy scc to study decide-heavy policies
/// (their serialized admission work caps the speedup, per Amdahl).

#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "figure_common.hpp"

namespace {

using namespace facs;

sim::SimulationConfig studyConfig(int requests) {
  // A dense urban district: 19 micro-cells, every admission GPS-tracked
  // through a long window (the expensive per-call local work the shards
  // parallelize), moderate speeds so calls keep crossing cells.
  sim::SimulationConfig cfg;
  cfg.rings = 2;
  cfg.cell_radius_km = 1.5;
  cfg.capacity_bu = 40;
  cfg.total_requests = requests;
  cfg.arrival_window_s = 1200.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.seed = 2024;
  cfg.scenario.speed_min_kmh = 10.0;
  cfg.scenario.speed_max_kmh = 60.0;
  cfg.scenario.distance_min_km = 0.0;
  cfg.scenario.distance_max_km = 1.5;
  cfg.scenario.tracking_window_s = 30.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  return cfg;
}

std::vector<int> parseShardList(const std::string& value) {
  std::vector<int> out;
  std::stringstream ss{value};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 6000;
  std::vector<int> shard_counts{1, 2, 4, 8};
  std::string policy_spec = "guard:8";
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      requests = 600;
      shard_counts = {1, 2, 4};
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parseShardList(argv[++i]);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      policy_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: multi_cell_scaling [--quick] [--requests N] "
                   "[--shards LIST] [--policy SPEC] [--csv]\n";
      return 2;
    }
  }

  sim::SimulationConfig cfg = studyConfig(requests);
  const auto factory = bench::policy(policy_spec);

  if (csv) {
    std::cout << "shards,seconds,events,events_per_sec,speedup\n";
  } else {
    std::cout << "Sharded engine scaling: " << requests
              << " GPS-tracked requests over 19 cells (policy "
              << policy_spec << ")\n\n"
              << std::left << std::setw(8) << "shards" << std::setw(12)
              << "seconds" << std::setw(12) << "events" << std::setw(14)
              << "events/sec" << "speedup" << "\n";
  }

  sim::Metrics reference;
  double serial_s = 0.0;
  bool deterministic = true;
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    cfg.shards = shard_counts[i];
    const auto t0 = std::chrono::steady_clock::now();
    const sim::Metrics m = sim::runSimulation(cfg, factory);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (i == 0) {
      reference = m;
      serial_s = secs;
    } else if (m.new_accepted != reference.new_accepted ||
               m.handoff_dropped != reference.handoff_dropped ||
               m.busy_bu_seconds != reference.busy_bu_seconds ||
               m.engine_events != reference.engine_events) {
      deterministic = false;
    }

    const double eps = secs > 0.0
                           ? static_cast<double>(m.engine_events) / secs
                           : 0.0;
    if (csv) {
      std::cout << cfg.shards << "," << secs << "," << m.engine_events << ","
                << eps << "," << (secs > 0.0 ? serial_s / secs : 0.0) << "\n";
    } else {
      std::cout << std::left << std::setw(8) << cfg.shards << std::fixed
                << std::setprecision(3) << std::setw(12) << secs
                << std::setw(12) << m.engine_events << std::setprecision(0)
                << std::setw(14) << eps << std::setprecision(2)
                << (secs > 0.0 ? serial_s / secs : 0.0) << "x\n";
    }
  }

  if (!csv) {
    std::cout << "\nreference run: " << reference.summary() << "\n";
  }
  if (!deterministic) {
    std::cerr << "FAIL: shard counts disagreed on the metrics — the engine "
                 "broke its bit-identical determinism contract\n";
    return 1;
  }
  if (!csv) {
    std::cout << "determinism: every shard count reproduced the serial "
                 "metrics bit for bit\n";
  }
  return 0;
}
