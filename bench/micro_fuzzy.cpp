/// \file micro_fuzzy.cpp
/// Microbenchmarks of the fuzzy substrate: per-inference latency of FLC1,
/// FLC2 and the full FACS cascade — the numbers that decide whether the
/// controller is viable on a base station's admission path ("suitable for
/// real-time operation", paper Section 3).

#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "cellular/network.hpp"
#include "cellular/policy_registry.hpp"
#include "core/facs.hpp"
#include "fuzzy/fdl.hpp"

namespace {

using namespace facs;

/// FACS controller by registry spec, downcast for the FACS-specific
/// `evaluate()` benchmarks (only the registry constructs controllers).
std::unique_ptr<core::FacsController> facsFromRegistry(
    const std::string& spec) {
  const cellular::HexNetwork net{0};
  std::unique_ptr<cellular::AdmissionController> controller =
      cellular::PolicyRuntime::defaultRuntime().makeController(spec, net);
  auto* typed = dynamic_cast<core::FacsController*>(controller.get());
  if (typed == nullptr) throw std::logic_error("spec is not a FACS policy");
  controller.release();
  return std::unique_ptr<core::FacsController>{typed};
}

void BM_Flc1Inference(benchmark::State& state) {
  const fuzzy::MamdaniEngine flc1 = core::buildFlc1();
  std::array<double, 3> in{60.0, 20.0, 5.0};
  double x = 0.0;
  for (auto _ : state) {
    in[1] = x;  // vary the angle so no caching layer could cheat
    x = x < 180.0 ? x + 1.0 : -180.0;
    benchmark::DoNotOptimize(flc1.infer(in));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Flc1Inference);

void BM_Flc2Inference(benchmark::State& state) {
  const fuzzy::MamdaniEngine flc2 = core::buildFlc2();
  std::array<double, 3> in{0.5, 5.0, 20.0};
  double cs = 0.0;
  for (auto _ : state) {
    in[2] = cs;
    cs = cs < 40.0 ? cs + 0.5 : 0.0;
    benchmark::DoNotOptimize(flc2.infer(in));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Flc2Inference);

/// The batch kernel on a commit-window-shaped input: Cv and R vary per
/// entry while the shared Cs input holds for runs of entries, so the
/// fuzzification memo gets the hit pattern the serialized commit phase
/// produces. Compare against BM_Flc2Inference for the per-decision win.
void BM_Flc2InferBatch(benchmark::State& state) {
  fuzzy::MamdaniEngine flc2 = core::buildFlc2();
  flc2.seal();
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  std::vector<double> inputs;
  inputs.reserve(entries * 3);
  double cv = 0.1;
  double r = 1.0;
  for (std::size_t i = 0; i < entries; ++i) {
    inputs.push_back(cv);
    inputs.push_back(r);
    inputs.push_back(17.0 + static_cast<double>(i / 8));  // Cs per window
    cv = cv < 0.9 ? cv + 0.07 : 0.1;
    r = r < 10.0 ? r + 1.0 : 1.0;
  }
  std::vector<double> outputs(entries);
  fuzzy::BatchScratch scratch;
  for (auto _ : state) {
    flc2.inferBatch(inputs, outputs, scratch);
    benchmark::DoNotOptimize(outputs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries));
}
BENCHMARK(BM_Flc2InferBatch)->Arg(16)->Arg(256);

void BM_FacsEvaluate(benchmark::State& state) {
  const auto facs = facsFromRegistry("facs");
  cellular::UserSnapshot user;
  user.speed_kmh = 45.0;
  user.angle_deg = 20.0;
  user.distance_km = 4.0;
  double cs = 0.0;
  for (auto _ : state) {
    cs = cs < 40.0 ? cs + 1.0 : 0.0;
    benchmark::DoNotOptimize(facs->evaluate(user, 5.0, cs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FacsEvaluate);

/// Defuzzification resolution is the main latency knob: sweep it.
void BM_FacsEvaluateResolution(benchmark::State& state) {
  const auto facs = facsFromRegistry(
      "facs:res=" + std::to_string(state.range(0)));
  cellular::UserSnapshot user;
  user.speed_kmh = 45.0;
  user.angle_deg = 20.0;
  user.distance_km = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(facs->evaluate(user, 5.0, 17.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FacsEvaluateResolution)->Arg(101)->Arg(251)->Arg(1001)->Arg(4001);

void BM_FdlParseFlc1(benchmark::State& state) {
  const std::string doc = fuzzy::toFdl(core::buildFlc1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzzy::parseFdl(doc));
  }
}
BENCHMARK(BM_FdlParseFlc1);

void BM_MembershipDegree(benchmark::State& state) {
  const fuzzy::Triangular tri{30.0, 15.0, 30.0};
  double x = 0.0;
  for (auto _ : state) {
    x = x < 70.0 ? x + 0.1 : 0.0;
    benchmark::DoNotOptimize(tri.degree(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MembershipDegree);

}  // namespace

BENCHMARK_MAIN();
