/// \file ablation_baselines.cpp
/// Extra study (not a paper figure): every implemented CAC policy on the
/// Fig. 10 workload — FACS, SCC, Complete Sharing, Guard Channel and the
/// multi-threshold policy — so the FACS-vs-SCC comparison can be placed
/// against the classic baselines the paper's Section 1 discusses.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace facs;

  sim::SweepSpec sweep;
  sweep.title = "Ablation - all CAC policies on the Fig. 10 workload";
  sweep.xs = bench::paperXs();
  sweep.replications = 10;

  sim::SimulationConfig base;
  base.rings = 1;
  base.scenario = sim::fig10Scenario();
  base.arrival_window_s = 600.0 / 7.0;

  // Every policy in the registry, by spec string.
  std::vector<sim::CurveSpec> curves;
  curves.push_back(bench::curve("FACS", base, "facs"));
  curves.push_back(bench::curve("SCC", base, "scc"));
  curves.push_back(bench::curve("CS", base, "cs"));
  curves.push_back(bench::curve("Guard(10)", base, "guard:10"));
  curves.push_back(bench::curve("MultiThr", base, "threshold:38,30,20"));
  curves.push_back(bench::curve("SIR", base, "sir"));
  curves.push_back(bench::curve("PredRsv", base, "rsv"));

  const sim::SweepResult result = sim::runSweep(sweep, curves);
  return bench::emit(argc, argv, result,
                     "CS is the permissive envelope; FACS trades acceptance "
                     "for ongoing-call QoS as load grows");
}
