/// \file ablation_baselines.cpp
/// Extra study (not a paper figure): every implemented CAC policy on the
/// Fig. 10 workload — FACS, SCC, Complete Sharing, Guard Channel and the
/// multi-threshold policy — so the FACS-vs-SCC comparison can be placed
/// against the classic baselines the paper's Section 1 discusses.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace facs;

  sim::SweepSpec sweep;
  sweep.title = "Ablation - all CAC policies on the Fig. 10 workload";
  sweep.xs = bench::paperXs();
  sweep.replications = 10;

  sim::SimulationConfig base;
  base.rings = 1;
  base.scenario = sim::fig10Scenario();
  base.arrival_window_s = 600.0 / 7.0;

  std::vector<sim::CurveSpec> curves;

  sim::CurveSpec facs_curve;
  facs_curve.label = "FACS";
  facs_curve.base = base;
  facs_curve.make_controller = bench::facsFactory();
  curves.push_back(facs_curve);

  sim::CurveSpec scc_curve;
  scc_curve.label = "SCC";
  scc_curve.base = base;
  scc_curve.make_controller = bench::sccFactory();
  curves.push_back(scc_curve);

  sim::CurveSpec cs_curve;
  cs_curve.label = "CS";
  cs_curve.base = base;
  cs_curve.make_controller = bench::csFactory();
  curves.push_back(cs_curve);

  sim::CurveSpec gc_curve;
  gc_curve.label = "Guard(10)";
  gc_curve.base = base;
  gc_curve.make_controller = bench::guardFactory(10);
  curves.push_back(gc_curve);

  sim::CurveSpec mt_curve;
  mt_curve.label = "MultiThr";
  mt_curve.base = base;
  mt_curve.make_controller = bench::multiThresholdFactory({38, 30, 20});
  curves.push_back(mt_curve);

  sim::CurveSpec sir_curve;
  sir_curve.label = "SIR";
  sir_curve.base = base;
  sir_curve.make_controller = bench::sirFactory();
  curves.push_back(sir_curve);

  sim::CurveSpec rsv_curve;
  rsv_curve.label = "PredRsv";
  rsv_curve.base = base;
  rsv_curve.make_controller = bench::predictiveRsvFactory();
  curves.push_back(rsv_curve);

  const sim::SweepResult result = sim::runSweep(sweep, curves);
  return bench::emit(argc, argv, result,
                     "CS is the permissive envelope; FACS trades acceptance "
                     "for ongoing-call QoS as load grows");
}
