/// \file urban_walkers.cpp
/// The paper's motivating scenario (Section 4): a downtown cell where most
/// requesters are pedestrians whose direction is hard to predict, plus a
/// vehicular minority. Compares FACS against Complete Sharing on
/// acceptance, per-class fairness and utilization as the lunch-hour load
/// ramps up.

#include <iomanip>
#include <iostream>

#include "cac/baselines.hpp"
#include "core/facs.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace facs;

  std::cout << "Urban walkers: pedestrian-heavy cell, FACS vs Complete "
               "Sharing\n\n";

  // Pedestrian-dominated population: slow, erratic, mostly short text and
  // voice sessions; a tenth of the users are vehicles passing through.
  sim::ScenarioParams rush;
  rush.speed_min_kmh = 2.0;
  rush.speed_max_kmh = 25.0;      // walkers and cyclists
  rush.angle_sigma_deg = 45.0;    // downtown grid: nobody walks straight
  rush.turn.sigma_max_deg = 60.0; // window shopping
  rush.mix = cellular::TrafficMix{0.50, 0.40, 0.10};

  sim::SimulationConfig base;
  base.scenario = rush;
  base.arrival_window_s = 600.0;

  const auto facs_factory = [](const cellular::HexNetwork&) {
    return std::make_unique<core::FacsController>();
  };
  const auto cs_factory = [](const cellular::HexNetwork&) {
    return std::make_unique<cac::CompleteSharingController>();
  };

  std::cout << std::left << std::setw(8) << "load" << std::setw(10)
            << "policy" << std::setw(10) << "accept%" << std::setw(10)
            << "text%" << std::setw(10) << "voice%" << std::setw(10)
            << "video%" << "util" << "\n";

  for (const int load : {20, 60, 120}) {
    for (const bool use_facs : {true, false}) {
      sim::SimulationConfig cfg = base;
      cfg.total_requests = load;
      cfg.seed = 99;
      const sim::Metrics m =
          sim::runSimulation(cfg, use_facs ? sim::ControllerFactory{facs_factory}
                                           : sim::ControllerFactory{cs_factory});
      std::cout << std::left << std::setw(8) << load << std::setw(10)
                << (use_facs ? "FACS" : "CS") << std::fixed
                << std::setprecision(1) << std::setw(10)
                << m.percentAccepted() << std::setw(10)
                << m.percentAcceptedForClass(cellular::ServiceClass::Text)
                << std::setw(10)
                << m.percentAcceptedForClass(cellular::ServiceClass::Voice)
                << std::setw(10)
                << m.percentAcceptedForClass(cellular::ServiceClass::Video)
                << std::setprecision(2) << std::setw(10) << m.meanUtilization()
                << "\n";
    }
  }

  std::cout << "\nReading: CS packs the cell greedily; FACS holds video "
               "grabs from erratic walkers back once the cell fills,\n"
               "which is the 'guaranteeing QoS of serving connections' "
               "behaviour the paper claims.\n";
  return 0;
}
