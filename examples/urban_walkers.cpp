/// \file urban_walkers.cpp
/// The paper's motivating scenario (Section 4): a downtown cell where most
/// requesters are pedestrians whose direction is hard to predict, plus a
/// vehicular minority. Compares FACS against Complete Sharing on
/// acceptance, per-class fairness and utilization as the lunch-hour load
/// ramps up. The population comes from the scenario catalog
/// ("urban-walkers"); the policies come from the registry.

#include <iomanip>
#include <iostream>
#include <string>

#include "sim/scenario_catalog.hpp"

int main() {
  using namespace facs;

  std::cout << "Urban walkers: pedestrian-heavy cell, FACS vs Complete "
               "Sharing\n\n";

  std::cout << std::left << std::setw(8) << "load" << std::setw(10)
            << "policy" << std::setw(10) << "accept%" << std::setw(10)
            << "text%" << std::setw(10) << "voice%" << std::setw(10)
            << "video%" << "util" << "\n";

  for (const int load : {20, 60, 120}) {
    for (const char* policy : {"facs", "cs"}) {
      const sim::Metrics m = sim::SimulationBuilder::scenario("urban-walkers")
                                 .requests(load)
                                 .seed(99)
                                 .policy(policy)
                                 .run();
      std::cout << std::left << std::setw(8) << load << std::setw(10)
                << (std::string{policy} == "facs" ? "FACS" : "CS")
                << std::fixed << std::setprecision(1) << std::setw(10)
                << m.percentAccepted() << std::setw(10)
                << m.percentAcceptedForClass(cellular::ServiceClass::Text)
                << std::setw(10)
                << m.percentAcceptedForClass(cellular::ServiceClass::Voice)
                << std::setw(10)
                << m.percentAcceptedForClass(cellular::ServiceClass::Video)
                << std::setprecision(2) << std::setw(10) << m.meanUtilization()
                << "\n";
    }
  }

  std::cout << "\nReading: CS packs the cell greedily; FACS holds video "
               "grabs from erratic walkers back once the cell fills,\n"
               "which is the 'guaranteeing QoS of serving connections' "
               "behaviour the paper claims.\n";
  return 0;
}
