/// \file highway_cell.cpp
/// Multi-cell scenario: a 7-cell cluster of small cells over a highway
/// corridor (catalog scenario "highway"). Fast vehicles hand over
/// constantly; the interesting metric is the dropping probability, and how
/// much a handoff-priority policy (guard channels, or FACS's future-work
/// handoff bias, spec "facs:handoff=0.4") buys.

#include <iomanip>
#include <iostream>

#include "sim/scenario_catalog.hpp"

int main() {
  using namespace facs;

  std::cout << "Highway corridor: handoff behaviour across a 7-cell "
               "cluster\n\n";

  struct Policy {
    const char* label;
    const char* spec;
  };
  const Policy policies[] = {
      {"CS", "cs"},
      {"Guard(8)", "guard:8"},
      {"FACS", "facs"},
      // The paper's future-work knob: prioritize handoffs by lowering tau.
      {"FACS+handoff-bias", "facs:handoff=0.4"},
  };

  std::cout << std::left << std::setw(20) << "policy" << std::setw(10)
            << "accept%" << std::setw(12) << "handoffs" << std::setw(10)
            << "drop-p" << "util" << "\n";
  for (const Policy& p : policies) {
    const sim::Metrics m = sim::SimulationBuilder::scenario("highway")
                               .seed(7)
                               .policy(p.spec)
                               .run();
    std::cout << std::left << std::setw(20) << p.label << std::fixed
              << std::setprecision(1) << std::setw(10) << m.percentAccepted()
              << std::setw(12) << m.handoff_requests << std::setprecision(3)
              << std::setw(10) << m.droppingProbability() << std::setw(10)
              << m.meanUtilization() << "\n";
  }

  std::cout << "\nReading: guard channels and the FACS handoff bias both "
               "cut dropping at the price of\nnew-call acceptance — the "
               "blocking/dropping balance of the paper's introduction.\n";
  return 0;
}
