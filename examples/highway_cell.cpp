/// \file highway_cell.cpp
/// Multi-cell scenario: a 7-cell cluster of small cells over a highway
/// corridor. Fast vehicles hand over constantly; the interesting metric is
/// the dropping probability, and how much a handoff-priority policy
/// (guard channels, or FACS's future-work handoff bias) buys.

#include <iomanip>
#include <iostream>

#include "cac/baselines.hpp"
#include "core/facs.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace facs;

  std::cout << "Highway corridor: handoff behaviour across a 7-cell "
               "cluster\n\n";

  sim::SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 2.0;  // micro-cells: crossings every couple minutes
  cfg.total_requests = 150;
  cfg.arrival_window_s = 400.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.seed = 7;
  cfg.scenario.speed_min_kmh = 70.0;
  cfg.scenario.speed_max_kmh = 130.0;
  cfg.scenario.angle_sigma_deg = 30.0;
  cfg.scenario.distance_min_km = 0.0;
  cfg.scenario.distance_max_km = 2.0;
  cfg.scenario.tracking_window_s = 10.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  cfg.scenario.turn.sigma_max_deg = 10.0;  // cars follow the road

  struct Policy {
    const char* label;
    sim::ControllerFactory factory;
  };
  core::FacsConfig handoff_priority;
  handoff_priority.handoff_bias = 0.4;  // the paper's future-work knob

  const Policy policies[] = {
      {"CS", [](const cellular::HexNetwork&) {
         return std::make_unique<cac::CompleteSharingController>();
       }},
      {"Guard(8)", [](const cellular::HexNetwork&) {
         return std::make_unique<cac::GuardChannelController>(8);
       }},
      {"FACS", [](const cellular::HexNetwork&) {
         return std::make_unique<core::FacsController>();
       }},
      {"FACS+handoff-bias", [handoff_priority](const cellular::HexNetwork&) {
         return std::make_unique<core::FacsController>(handoff_priority);
       }},
  };

  std::cout << std::left << std::setw(20) << "policy" << std::setw(10)
            << "accept%" << std::setw(12) << "handoffs" << std::setw(10)
            << "drop-p" << "util" << "\n";
  for (const Policy& p : policies) {
    const sim::Metrics m = sim::runSimulation(cfg, p.factory);
    std::cout << std::left << std::setw(20) << p.label << std::fixed
              << std::setprecision(1) << std::setw(10) << m.percentAccepted()
              << std::setw(12) << m.handoff_requests << std::setprecision(3)
              << std::setw(10) << m.droppingProbability() << std::setw(10)
              << m.meanUtilization() << "\n";
  }

  std::cout << "\nReading: guard channels and the FACS handoff bias both "
               "cut dropping at the price of\nnew-call acceptance — the "
               "blocking/dropping balance of the paper's introduction.\n";
  return 0;
}
