/// \file quickstart.cpp
/// Five-minute tour of the FACS public API:
///   1. look the controller up in the policy registry;
///   2. evaluate admission requests from raw GPS measurements;
///   3. plug the controller into a base station ledger;
///   4. run a small end-to-end simulation from the scenario catalog.

#include <iostream>

#include "cellular/policy_registry.hpp"
#include "core/facs.hpp"
#include "sim/scenario_catalog.hpp"

int main() {
  using namespace facs;

  // 1. The controller, by policy spec, from an instance-scoped runtime (a
  //    snapshot of the built-in policy set; registerExternal() would add
  //    your own policies to THIS runtime only). "facs" is the paper's
  //    design: min/max Mamdani inference, centroid defuzzification, accept
  //    iff the crisp A/R value is positive. (Try "facs:tau=0.25" or
  //    "guard:8" — facs_cli --list-policies shows everything.)
  const cellular::PolicyRuntime runtime;
  const cellular::HexNetwork net{0};
  std::unique_ptr<cellular::AdmissionController> controller =
      runtime.makeController("facs", net);

  // FACS-specific introspection (the fuzzy engines) lives below the
  // AdmissionController interface; downcast for the tour.
  auto& facs = dynamic_cast<core::FacsController&>(*controller);
  std::cout << "Controller: " << facs.name() << " (" << facs.flc1().name()
            << ": " << facs.flc1().rules().size() << " rules, "
            << facs.flc2().name() << ": " << facs.flc2().rules().size()
            << " rules)\n\n";

  // 2. Evaluate a few users against a half-loaded 40 BU cell (Cs = 20).
  struct Candidate {
    const char* who;
    cellular::UserSnapshot snapshot;
    double demand_bu;
  };
  const Candidate candidates[] = {
      {"commuter driving at the BS (80 km/h, angle 0, 3 km), voice",
       {80.0, 0.0, 3.0, {}}, 5.0},
      {"pedestrian wandering at cell edge (4 km/h, angle 120, 9 km), video",
       {4.0, 120.0, 9.0, {}}, 10.0},
      {"cyclist passing tangentially (15 km/h, angle 60, 5 km), text",
       {15.0, 60.0, 5.0, {}}, 1.0},
  };
  for (const Candidate& c : candidates) {
    const core::FacsEvaluation eval = facs.evaluate(c.snapshot, c.demand_bu,
                                                    /*occupied_bu=*/20.0);
    std::cout << c.who << "\n  Cv=" << eval.cv << "  A/R=" << eval.ar
              << "  soft=" << core::toString(eval.soft) << "  -> "
              << (eval.accept ? "ADMIT" : "DENY") << "\n";
  }

  // 3. The same controller behind the AdmissionController interface, with a
  //    real bandwidth ledger enforcing the capacity invariant. `explain`
  //    opts into the rationale string — production decisions skip it (and
  //    its allocation) entirely, and read the ReasonCode instead.
  cellular::BaseStation station{0, cellular::kPaperCellCapacityBu};
  cellular::CallRequest request;
  request.call = 1;
  request.service = cellular::ServiceClass::Voice;
  request.demand_bu = 5;
  request.snapshot = candidates[0].snapshot;
  const cellular::AdmissionDecision d =
      controller->decide(request, {station, /*now_s=*/0.0, /*explain=*/true});
  std::cout << "\nLedger-backed decision: " << (d.accept ? "admit" : "deny")
            << " [" << toString(d.reason) << "] (" << d.rationale << ")\n";
  if (d.accept) {
    station.allocate(request.call, request.demand_bu, /*real_time=*/true);
    std::cout << "Station now: " << station.occupiedBu() << "/"
              << station.capacityBu() << " BU (RTC=" << station.rtc()
              << ", NRTC=" << station.nrtc() << ")\n";
  }

  // 4. A complete simulated experiment: the paper's single 40 BU cell
  //    offered 60 mixed connections, users tracked by (synthetic) GPS
  //    before each decision — one fluent chain over the scenario catalog.
  const sim::Metrics metrics =
      sim::SimulationBuilder::scenario("paper-single-cell")
          .requests(60)
          .seed(2026)
          .policy("facs")
          .run();
  std::cout << "\nSimulation: " << metrics.summary() << "\n";
  std::cout << "Percent accepted: " << metrics.percentAccepted() << "%\n";
  return 0;
}
