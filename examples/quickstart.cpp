/// \file quickstart.cpp
/// Five-minute tour of the FACS public API:
///   1. build the controller (FLC1 + FLC2 with the paper's rule bases);
///   2. evaluate admission requests from raw GPS measurements;
///   3. plug the controller into a base station ledger;
///   4. run a small end-to-end simulation.

#include <iostream>

#include "core/facs.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace facs;

  // 1. The controller. Default configuration = the paper's design:
  //    min/max Mamdani inference, centroid defuzzification, accept iff the
  //    crisp A/R value is positive.
  core::FacsController facs;
  std::cout << "Controller: " << facs.name() << " (" << facs.flc1().name()
            << ": " << facs.flc1().rules().size() << " rules, "
            << facs.flc2().name() << ": " << facs.flc2().rules().size()
            << " rules)\n\n";

  // 2. Evaluate a few users against a half-loaded 40 BU cell (Cs = 20).
  struct Candidate {
    const char* who;
    cellular::UserSnapshot snapshot;
    double demand_bu;
  };
  const Candidate candidates[] = {
      {"commuter driving at the BS (80 km/h, angle 0, 3 km), voice",
       {80.0, 0.0, 3.0, {}}, 5.0},
      {"pedestrian wandering at cell edge (4 km/h, angle 120, 9 km), video",
       {4.0, 120.0, 9.0, {}}, 10.0},
      {"cyclist passing tangentially (15 km/h, angle 60, 5 km), text",
       {15.0, 60.0, 5.0, {}}, 1.0},
  };
  for (const Candidate& c : candidates) {
    const core::FacsEvaluation eval = facs.evaluate(c.snapshot, c.demand_bu,
                                                    /*occupied_bu=*/20.0);
    std::cout << c.who << "\n  Cv=" << eval.cv << "  A/R=" << eval.ar
              << "  soft=" << core::toString(eval.soft) << "  -> "
              << (eval.accept ? "ADMIT" : "DENY") << "\n";
  }

  // 3. The same controller behind the AdmissionController interface, with a
  //    real bandwidth ledger enforcing the capacity invariant.
  cellular::BaseStation station{0, cellular::kPaperCellCapacityBu};
  cellular::CallRequest request;
  request.call = 1;
  request.service = cellular::ServiceClass::Voice;
  request.demand_bu = 5;
  request.snapshot = candidates[0].snapshot;
  const cellular::AdmissionDecision d =
      facs.decide(request, {station, /*now_s=*/0.0});
  std::cout << "\nLedger-backed decision: " << (d.accept ? "admit" : "deny")
            << " (" << d.rationale << ")\n";
  if (d.accept) {
    station.allocate(request.call, request.demand_bu, /*real_time=*/true);
    std::cout << "Station now: " << station.occupiedBu() << "/"
              << station.capacityBu() << " BU (RTC=" << station.rtc()
              << ", NRTC=" << station.nrtc() << ")\n";
  }

  // 4. A complete simulated experiment: 60 mixed connections offered to one
  //    40 BU cell, users tracked by (synthetic) GPS before each decision.
  sim::SimulationConfig cfg;
  cfg.total_requests = 60;
  cfg.seed = 2026;
  const sim::Metrics metrics =
      sim::runSimulation(cfg, [](const cellular::HexNetwork&) {
        return std::make_unique<core::FacsController>();
      });
  std::cout << "\nSimulation: " << metrics.summary() << "\n";
  std::cout << "Percent accepted: " << metrics.percentAccepted() << "%\n";
  return 0;
}
