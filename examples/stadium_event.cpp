/// \file stadium_event.cpp
/// Flash-crowd scenario: a match ends and tens of thousands of mostly
/// stationary users light up one cell. Uses Poisson arrivals with a
/// warm-up so the numbers describe the saturated steady state, and
/// contrasts three philosophies: pack greedily (CS), protect handoffs
/// (predictive reservation) and protect ongoing QoS (FACS). Also shows
/// the Erlang-B sanity line for the equivalent single-class load.

#include <iomanip>
#include <iostream>

#include "cac/baselines.hpp"
#include "cac/predictive_reservation.hpp"
#include "core/facs.hpp"
#include "sim/erlang.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace facs;

  std::cout << "Stadium event: saturated single cell, steady-state view\n\n";

  sim::SimulationConfig cfg;
  cfg.total_requests = 3000;
  cfg.arrival_window_s = 3000.0;  // ~1 request/s against a 40 BU cell
  cfg.arrivals = sim::ArrivalProcess::Poisson;
  cfg.warmup_s = 600.0;           // measure after the crowd has built up
  cfg.seed = 42;
  cfg.scenario.speed_min_kmh = 0.0;
  cfg.scenario.speed_max_kmh = 6.0;    // people on foot
  cfg.scenario.angle_sigma_deg = 90.0; // milling around
  cfg.scenario.distance_min_km = 0.0;
  cfg.scenario.distance_max_km = 2.0;  // everyone is near the stadium mast
  cfg.scenario.tracking_window_s = 10.0;
  cfg.scenario.gps_fix_period_s = 5.0;
  cfg.scenario.mix = cellular::TrafficMix{0.7, 0.25, 0.05};  // texting crowd

  struct Policy {
    const char* label;
    sim::ControllerFactory factory;
  };
  const Policy policies[] = {
      {"CS", [](const cellular::HexNetwork&) {
         return std::make_unique<cac::CompleteSharingController>();
       }},
      {"PredictiveRsv", [](const cellular::HexNetwork& net) {
         return std::make_unique<cac::PredictiveReservationController>(net);
       }},
      {"FACS", [](const cellular::HexNetwork&) {
         return std::make_unique<core::FacsController>();
       }},
  };

  std::cout << std::left << std::setw(16) << "policy" << std::setw(10)
            << "accept%" << std::setw(10) << "block-p" << std::setw(10)
            << "util" << std::setw(10) << "video%" << "text%" << "\n";
  for (const Policy& p : policies) {
    const sim::Metrics m = sim::runSimulation(cfg, p.factory);
    std::cout << std::left << std::setw(16) << p.label << std::fixed
              << std::setprecision(1) << std::setw(10) << m.percentAccepted()
              << std::setprecision(3) << std::setw(10)
              << m.blockingProbability() << std::setw(10)
              << m.meanUtilization() << std::setprecision(1) << std::setw(10)
              << m.percentAcceptedForClass(cellular::ServiceClass::Video)
              << m.percentAcceptedForClass(cellular::ServiceClass::Text)
              << "\n";
  }

  // Theory anchor: the same offered BU load as a single-class M/M/c/c.
  const double mean_holding =
      0.7 * 120.0 + 0.25 * 180.0 + 0.05 * 300.0;  // mix-weighted
  const double mean_demand = cfg.scenario.mix.meanDemandBu();
  const double offered_bu =
      (cfg.total_requests / cfg.arrival_window_s) * mean_holding * mean_demand;
  std::cout << "\nErlang-B anchor (single-class equivalent): offered "
            << std::setprecision(1) << offered_bu << " BU-erlangs onto 40 BU"
            << " -> blocking " << std::setprecision(3)
            << sim::erlangB(40, offered_bu)
            << "\n(multi-class packing and fuzzy selectivity move the "
               "measured numbers around this anchor).\n";
  return 0;
}
