/// \file stadium_event.cpp
/// Flash-crowd scenario (catalog "stadium-burst"): a match ends and
/// thousands of mostly stationary users light up the stadium cell and its
/// precinct neighbours (7 cells, sharded engine). Uses Poisson arrivals
/// with a warm-up so the numbers describe the saturated steady state, and
/// contrasts three philosophies: pack greedily (CS), protect handoffs
/// (predictive reservation) and protect ongoing QoS (FACS). Also shows the
/// Erlang-B sanity line for the equivalent per-cell single-class load.

#include <iomanip>
#include <iostream>

#include "sim/erlang.hpp"
#include "sim/scenario_catalog.hpp"

int main() {
  using namespace facs;

  std::cout << "Stadium event: saturated single cell, steady-state view\n\n";

  const sim::SimulationConfig cfg =
      sim::ScenarioCatalog::builtins().at("stadium-burst").config;

  struct Policy {
    const char* label;
    const char* spec;
  };
  const Policy policies[] = {
      {"CS", "cs"},
      {"PredictiveRsv", "rsv"},
      {"FACS", "facs"},
  };

  std::cout << std::left << std::setw(16) << "policy" << std::setw(10)
            << "accept%" << std::setw(10) << "block-p" << std::setw(10)
            << "util" << std::setw(10) << "video%" << "text%" << "\n";
  for (const Policy& p : policies) {
    const sim::Metrics m =
        sim::SimulationBuilder{cfg}.seed(42).policy(p.spec).run();
    std::cout << std::left << std::setw(16) << p.label << std::fixed
              << std::setprecision(1) << std::setw(10) << m.percentAccepted()
              << std::setprecision(3) << std::setw(10)
              << m.blockingProbability() << std::setw(10)
              << m.meanUtilization() << std::setprecision(1) << std::setw(10)
              << m.percentAcceptedForClass(cellular::ServiceClass::Video)
              << m.percentAcceptedForClass(cellular::ServiceClass::Text)
              << "\n";
  }

  // Theory anchor: the same offered BU load as a single-class M/M/c/c,
  // spread over the precinct's cells (arrivals spawn uniformly per cell).
  const int cells = cellular::hexDiskCellCount(cfg.rings);
  const double mean_holding =
      0.7 * 120.0 + 0.25 * 180.0 + 0.05 * 300.0;  // mix-weighted
  const double mean_demand = cfg.scenario.mix.meanDemandBu();
  const double offered_bu = (cfg.total_requests / cfg.arrival_window_s) *
                            mean_holding * mean_demand / cells;
  std::cout << "\nErlang-B anchor (per-cell single-class equivalent): offered "
            << std::setprecision(1) << offered_bu << " BU-erlangs onto "
            << cfg.capacity_bu << " BU -> blocking " << std::setprecision(3)
            << sim::erlangB(static_cast<int>(cfg.capacity_bu), offered_bu)
            << "\n(multi-class packing, mobility between the " << cells
            << " cells and fuzzy selectivity move the measured numbers "
               "around this anchor).\n";
  return 0;
}
