/// \file operator_dashboard.cpp
/// Introspection tour: everything an operator debugging an admission
/// decision would want to see — the fuzzified inputs, the rules that fired
/// in both FLC stages, the SCC demand projection for the same request, and
/// the controllers serialized to FDL text.

#include <iostream>

#include "cellular/policy_registry.hpp"
#include "core/facs.hpp"
#include "fuzzy/fdl.hpp"
#include "scc/shadow_cluster.hpp"

namespace {

using namespace facs;

void printTrace(const fuzzy::MamdaniEngine& engine,
                const fuzzy::InferenceTrace& trace) {
  std::cout << engine.name() << " inputs:";
  for (std::size_t v = 0; v < engine.inputCount(); ++v) {
    std::cout << "  " << engine.input(v).name() << "=" << trace.inputs[v];
  }
  std::cout << "\n  fuzzified:\n";
  for (std::size_t v = 0; v < engine.inputCount(); ++v) {
    std::cout << "    " << engine.input(v).name() << ": ";
    for (std::size_t t = 0; t < engine.input(v).termCount(); ++t) {
      if (trace.fuzzified[v][t] > 0.0) {
        std::cout << engine.input(v).term(t).name() << "="
                  << trace.fuzzified[v][t] << " ";
      }
    }
    std::cout << "\n";
  }
  std::cout << "  fired rules:\n";
  for (const fuzzy::RuleActivation& a : trace.activations) {
    const fuzzy::Rule& r = engine.rules().rule(a.rule_index);
    std::cout << "    #" << a.rule_index << " IF ";
    for (std::size_t v = 0; v < r.antecedent.size(); ++v) {
      if (v > 0) std::cout << " AND ";
      std::cout << engine.input(v).name() << " is "
                << (r.antecedent[v] == fuzzy::kAnyTerm
                        ? "*"
                        : engine.input(v).term(r.antecedent[v]).name());
    }
    std::cout << " THEN " << engine.output().name() << " is "
              << engine.output().term(r.consequent).name()
              << "   [strength " << a.firing_strength << "]\n";
  }
  std::cout << "  crisp " << engine.output().name() << " = "
            << trace.crisp_output << " (winning term: "
            << engine.output().term(trace.winning_output_term).name()
            << ")\n\n";
}

}  // namespace

int main() {
  // Both controllers come from an instance-scoped policy runtime; the
  // dashboard downcasts to reach the policy-specific introspection surfaces
  // (fuzzy engine traces, SCC demand projection) that sit below
  // AdmissionController.
  const cellular::PolicyRuntime runtime;
  const cellular::HexNetwork single_cell{0};
  const std::unique_ptr<cellular::AdmissionController> facs_controller =
      runtime.makeController("facs", single_cell);
  const auto& facs = dynamic_cast<const core::FacsController&>(*facs_controller);

  // The request under the microscope: a 30 km/h user 6 km out, drifting
  // 40 degrees off the bearing to the BS, asking for a video channel while
  // the cell already carries 24 of its 40 BUs.
  const double speed = 30.0;
  const double angle = 40.0;
  const double distance = 6.0;
  const double demand = 10.0;
  const double occupied = 24.0;

  std::cout << "=== FACS decision trace ===\n\n";
  const std::array<double, 3> flc1_in{speed, angle, distance};
  const fuzzy::InferenceTrace t1 = facs.flc1().inferTraced(flc1_in);
  printTrace(facs.flc1(), t1);

  const std::array<double, 3> flc2_in{t1.crisp_output, demand, occupied};
  const fuzzy::InferenceTrace t2 = facs.flc2().inferTraced(flc2_in);
  printTrace(facs.flc2(), t2);

  const core::FacsEvaluation eval =
      facs.evaluate({speed, angle, distance, {}}, demand, occupied);
  std::cout << "Decision: " << (eval.accept ? "ADMIT" : "DENY") << " (soft: "
            << core::toString(eval.soft) << ")\n\n";

  // The same situation through SCC's eyes: demand projection of the centre
  // cell of a 7-cell cluster that already tracks two mobiles.
  std::cout << "=== SCC projection for the same cell ===\n\n";
  const cellular::HexNetwork net{1};
  const std::unique_ptr<cellular::AdmissionController> scc_controller =
      runtime.makeController("scc", net);
  auto& scc = dynamic_cast<scc::ShadowClusterController&>(*scc_controller);
  cellular::CallRequest ongoing;
  ongoing.call = 1;
  ongoing.service = cellular::ServiceClass::Video;
  ongoing.demand_bu = 10;
  ongoing.snapshot = {50.0, 10.0, 3.0, {3.0, 0.0}};
  ongoing.target_cell = 0;
  scc.onAdmitted(ongoing, {net.station(0), 0.0});
  ongoing.call = 2;
  ongoing.snapshot = {15.0, -60.0, 5.0, {0.0, 5.0}};
  scc.onAdmitted(ongoing, {net.station(0), 0.0});

  const scc::DemandProfile profile = scc.projectedDemand(0);
  for (std::size_t k = 0; k < profile.size(); ++k) {
    std::cout << "  interval " << k << ": projected demand "
              << profile[k] << " BU of " << net.station(0).capacityBu()
              << "\n";
  }

  // Finally: the full FLC1 definition as FDL text, ready to be versioned,
  // diffed or edited without recompiling.
  std::cout << "\n=== FLC1 as FDL (excerpt) ===\n\n";
  const std::string fdl = fuzzy::toFdl(facs.flc1());
  std::cout << fdl.substr(0, fdl.find("rule")) << "... ("
            << facs.flc1().rules().size() << " rules omitted)\n";
  return 0;
}
