#include "mobility/gps.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace facs::mobility {
namespace {

using cellular::Vec2;

TEST(GpsSampler, ValidatesError) {
  EXPECT_THROW(GpsSampler(-1.0), std::invalid_argument);
  EXPECT_NO_THROW(GpsSampler(0.0));
}

TEST(GpsSampler, ZeroErrorReturnsTruth) {
  const GpsSampler sampler{0.0};
  std::mt19937_64 rng{1};
  const GpsFix fix = sampler.sample(12.0, {3.0, 4.0}, rng);
  EXPECT_DOUBLE_EQ(fix.t_s, 12.0);
  EXPECT_EQ(fix.position_km, (Vec2{3.0, 4.0}));
}

TEST(GpsSampler, NoiseMagnitudeMatchesSigma) {
  const GpsSampler sampler{10.0};  // 10 m
  std::mt19937_64 rng{2};
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const GpsFix fix = sampler.sample(0.0, {0.0, 0.0}, rng);
    sum_sq += fix.position_km.x * fix.position_km.x;
  }
  const double sigma_km = std::sqrt(sum_sq / n);
  EXPECT_NEAR(sigma_km, 0.010, 0.0005);
}

TEST(GpsEstimator, ValidatesWindow) {
  EXPECT_THROW(GpsEstimator(1), std::invalid_argument);
  EXPECT_NO_THROW(GpsEstimator(2));
}

TEST(GpsEstimator, RequiresTwoFixes) {
  GpsEstimator est;
  EXPECT_FALSE(est.ready());
  EXPECT_EQ(est.motion(), std::nullopt);
  EXPECT_THROW((void)est.snapshot({0.0, 0.0}), std::logic_error);
  est.addFix({0.0, {0.0, 0.0}});
  EXPECT_FALSE(est.ready());
  est.addFix({1.0, {0.1, 0.0}});
  EXPECT_TRUE(est.ready());
}

TEST(GpsEstimator, RejectsNonMonotonicTimestamps) {
  GpsEstimator est;
  est.addFix({5.0, {0.0, 0.0}});
  EXPECT_THROW(est.addFix({5.0, {1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(est.addFix({4.0, {1.0, 0.0}}), std::invalid_argument);
}

TEST(GpsEstimator, RecoversSpeedAndHeadingFromCleanFixes) {
  GpsEstimator est{4};
  // Due-east at 0.01 km/s = 36 km/h.
  for (int i = 0; i < 4; ++i) {
    est.addFix({i * 5.0, {i * 0.05, 0.0}});
  }
  const auto m = est.motion();
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->speed_kmh, 36.0, 1e-9);
  EXPECT_NEAR(m->heading_deg, 0.0, 1e-9);
  EXPECT_NEAR(m->position_km.x, 0.15, 1e-12);
}

TEST(GpsEstimator, WindowSlides) {
  GpsEstimator est{2};  // only the last two fixes matter
  est.addFix({0.0, {0.0, 0.0}});
  est.addFix({1.0, {0.0, 0.0}});   // stationary so far
  est.addFix({2.0, {0.01, 0.0}});  // then moves east at 36 km/h
  EXPECT_EQ(est.fixCount(), 2u);
  const auto m = est.motion();
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->speed_kmh, 36.0, 1e-9);
}

TEST(GpsEstimator, SnapshotMeasuresAngleRelativeToStation) {
  GpsEstimator est{2};
  // Moving due east, starting 2 km west of a station at the origin:
  // heading straight at it -> angle 0.
  est.addFix({0.0, {-2.0, 0.0}});
  est.addFix({10.0, {-1.9, 0.0}});
  const cellular::UserSnapshot s = est.snapshot({0.0, 0.0});
  EXPECT_NEAR(s.angle_deg, 0.0, 1e-9);
  EXPECT_NEAR(s.distance_km, 1.9, 1e-12);
  EXPECT_NEAR(s.speed_kmh, 36.0, 1e-9);

  // Station due north instead: the BS is 90 degrees to the left.
  const cellular::UserSnapshot n = est.snapshot({-1.9, 5.0});
  EXPECT_NEAR(n.angle_deg, -90.0, 1e-9);
}

TEST(GpsEstimator, NoisyFixesStillUsable) {
  // 10 m noise over a 30 s window at 36 km/h: speed error should be small.
  const GpsSampler sampler{10.0};
  std::mt19937_64 rng{42};
  GpsEstimator est{7};
  for (int i = 0; i <= 6; ++i) {
    const Vec2 truth{i * 0.05, 0.0};  // 36 km/h east, 5 s fixes
    est.addFix(sampler.sample(i * 5.0, truth, rng));
  }
  const auto m = est.motion();
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->speed_kmh, 36.0, 5.0);
  EXPECT_NEAR(m->heading_deg, 0.0, 10.0);
}

TEST(SnapshotFromTruth, MatchesHandComputation) {
  MotionState state;
  state.position_km = {0.0, -3.0};
  state.speed_kmh = 72.0;
  state.heading_deg = 90.0;  // due north, straight at a station at origin
  const cellular::UserSnapshot s = snapshotFromTruth(state, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(s.speed_kmh, 72.0);
  EXPECT_NEAR(s.angle_deg, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.distance_km, 3.0);

  state.heading_deg = -90.0;  // directly away
  EXPECT_NEAR(std::abs(snapshotFromTruth(state, {0.0, 0.0}).angle_deg), 180.0,
              1e-12);
}

TEST(GpsEstimator, StationaryUserHasZeroSpeedZeroHeading) {
  GpsEstimator est{2};
  est.addFix({0.0, {1.0, 1.0}});
  est.addFix({5.0, {1.0, 1.0}});
  const auto m = est.motion();
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->speed_kmh, 0.0);
  EXPECT_DOUBLE_EQ(m->heading_deg, 0.0);
}

}  // namespace
}  // namespace facs::mobility
