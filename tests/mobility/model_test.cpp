#include "mobility/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace facs::mobility {
namespace {

using cellular::Vec2;

std::mt19937_64 rng(std::uint64_t seed = 1) { return std::mt19937_64{seed}; }

TEST(ConstantVelocity, MovesAlongHeading) {
  ConstantVelocity model;
  MotionState s;
  s.speed_kmh = 36.0;  // 10 m/s
  s.heading_deg = 90.0;
  auto r = rng();
  model.step(s, 100.0, r);  // 100 s -> 1 km north
  EXPECT_NEAR(s.position_km.x, 0.0, 1e-9);
  EXPECT_NEAR(s.position_km.y, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.heading_deg, 90.0);
  EXPECT_DOUBLE_EQ(s.speed_kmh, 36.0);
}

TEST(ConstantVelocity, RejectsNonPositiveDt) {
  ConstantVelocity model;
  MotionState s;
  auto r = rng();
  EXPECT_THROW(model.step(s, 0.0, r), std::invalid_argument);
  EXPECT_THROW(model.step(s, -1.0, r), std::invalid_argument);
}

TEST(SpeedDependentTurn, SigmaDecaysWithSpeed) {
  const SpeedDependentTurn model;
  const double walking = model.sigmaDeg(4.0);
  const double cycling = model.sigmaDeg(15.0);
  const double driving = model.sigmaDeg(60.0);
  const double highway = model.sigmaDeg(120.0);
  EXPECT_GT(walking, cycling);
  EXPECT_GT(cycling, driving);
  EXPECT_GT(driving, highway);
  // The paper's premise quantified: walkers turn an order of magnitude more.
  EXPECT_GT(walking / driving, 5.0);
  // Negative speeds are clamped.
  EXPECT_DOUBLE_EQ(model.sigmaDeg(-3.0), model.sigmaDeg(0.0));
}

TEST(SpeedDependentTurn, ValidatesParams) {
  SpeedDependentTurnParams bad;
  bad.sigma_max_deg = -1.0;
  EXPECT_THROW(SpeedDependentTurn{bad}, std::invalid_argument);
  bad = {};
  bad.v_ref_kmh = 0.0;
  EXPECT_THROW(SpeedDependentTurn{bad}, std::invalid_argument);
}

TEST(SpeedDependentTurn, HeadingDriftScalesWithSpeed) {
  // Empirical check of the premise driving Fig. 7: after the same walk
  // time, slow users' headings have drifted much more than fast users'.
  const auto drift_for = [](double speed) {
    SpeedDependentTurn model;
    double sum_sq = 0.0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
      auto r = rng(static_cast<std::uint64_t>(t) + 7);
      MotionState s;
      s.speed_kmh = speed;
      s.heading_deg = 0.0;
      for (int i = 0; i < 30; ++i) model.step(s, 1.0, r);
      sum_sq += s.heading_deg * s.heading_deg;
    }
    return std::sqrt(sum_sq / trials);
  };
  const double slow_drift = drift_for(4.0);
  const double fast_drift = drift_for(60.0);
  EXPECT_GT(slow_drift, 4.0 * fast_drift);
  EXPECT_LT(fast_drift, 15.0);
}

TEST(SpeedDependentTurn, ZeroSigmaIsStraightLine) {
  SpeedDependentTurnParams p;
  p.sigma_max_deg = 0.0;
  SpeedDependentTurn model{p};
  MotionState s;
  s.speed_kmh = 50.0;
  s.heading_deg = 30.0;
  auto r = rng();
  for (int i = 0; i < 100; ++i) model.step(s, 1.0, r);
  EXPECT_DOUBLE_EQ(s.heading_deg, 30.0);
}

TEST(SpeedDependentTurn, HeadingStaysNormalized) {
  SpeedDependentTurnParams p;
  p.sigma_max_deg = 120.0;  // violent turner
  SpeedDependentTurn model{p};
  MotionState s;
  s.speed_kmh = 0.0;
  auto r = rng(3);
  for (int i = 0; i < 1000; ++i) {
    model.step(s, 1.0, r);
    EXPECT_GT(s.heading_deg, -180.0 - 1e-9);
    EXPECT_LE(s.heading_deg, 180.0 + 1e-9);
  }
}

TEST(GaussMarkov, ValidatesParams) {
  GaussMarkovParams bad;
  bad.alpha = 1.5;
  EXPECT_THROW(GaussMarkov{bad}, std::invalid_argument);
  bad = {};
  bad.speed_sigma_kmh = -1.0;
  EXPECT_THROW(GaussMarkov{bad}, std::invalid_argument);
  bad = {};
  bad.reference_dt_s = 0.0;
  EXPECT_THROW(GaussMarkov{bad}, std::invalid_argument);
}

TEST(GaussMarkov, SpeedRevertsToMean) {
  GaussMarkovParams p;
  p.alpha = 0.9;
  p.mean_speed_kmh = 50.0;
  p.speed_sigma_kmh = 2.0;
  p.heading_sigma_deg = 5.0;
  GaussMarkov model{p};
  MotionState s;
  s.speed_kmh = 0.0;
  auto r = rng(11);
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < 3000; ++i) {
    model.step(s, 1.0, r);
    if (i > 500) {
      sum += s.speed_kmh;
      ++count;
    }
  }
  EXPECT_NEAR(sum / count, 50.0, 5.0);
}

TEST(GaussMarkov, SpeedNeverNegative) {
  GaussMarkovParams p;
  p.mean_speed_kmh = 1.0;
  p.speed_sigma_kmh = 10.0;  // noisy: would go negative without the clamp
  GaussMarkov model{p};
  MotionState s;
  auto r = rng(5);
  for (int i = 0; i < 2000; ++i) {
    model.step(s, 1.0, r);
    EXPECT_GE(s.speed_kmh, 0.0);
  }
}

TEST(GaussMarkov, AlphaOneIsStraightLine) {
  GaussMarkovParams p;
  p.alpha = 1.0;
  GaussMarkov model{p};
  MotionState s;
  s.speed_kmh = 30.0;
  s.heading_deg = 45.0;
  auto r = rng();
  for (int i = 0; i < 50; ++i) model.step(s, 1.0, r);
  EXPECT_NEAR(s.heading_deg, 45.0, 1e-9);
  EXPECT_NEAR(s.speed_kmh, 30.0, 1e-9);
}

TEST(RandomWaypoint, ValidatesParams) {
  EXPECT_THROW(RandomWaypoint(0.0), std::invalid_argument);
  EXPECT_THROW(RandomWaypoint(1.0, -1.0), std::invalid_argument);
}

TEST(RandomWaypoint, StaysWithinArea) {
  RandomWaypoint model{5.0};
  MotionState s;
  s.speed_kmh = 60.0;
  auto r = rng(17);
  for (int i = 0; i < 2000; ++i) {
    model.step(s, 5.0, r);
    EXPECT_LE(s.position_km.norm(), 5.0 + 1e-6) << "escaped at step " << i;
  }
}

TEST(RandomWaypoint, ParkedUserStaysPut) {
  RandomWaypoint model{5.0};
  MotionState s;
  s.speed_kmh = 0.0;
  s.position_km = {1.0, 1.0};
  auto r = rng();
  model.step(s, 100.0, r);
  EXPECT_EQ(s.position_km, (Vec2{1.0, 1.0}));
}

TEST(RandomWaypoint, PauseDelaysDeparture) {
  RandomWaypoint model{5.0, /*pause_s=*/1000.0};
  MotionState s;
  s.speed_kmh = 360.0;  // 0.1 km/s: reaches any waypoint within ~100 s
  auto r = rng(23);
  // Long enough to arrive somewhere and enter the pause.
  for (int i = 0; i < 30; ++i) model.step(s, 10.0, r);
  const Vec2 parked = s.position_km;
  model.step(s, 50.0, r);  // still pausing
  EXPECT_EQ(s.position_km, parked);
}

}  // namespace
}  // namespace facs::mobility
