#include "core/flc2.hpp"

#include <gtest/gtest.h>

#include <array>

namespace facs::core {
namespace {

using fuzzy::MamdaniEngine;

const MamdaniEngine& engine() {
  static const MamdaniEngine e = buildFlc2();
  return e;
}

double ar(double cv, double r, double cs) {
  const std::array<double, 3> in{cv, r, cs};
  return engine().infer(in);
}

TEST(Flc2Structure, VariablesMatchPaper) {
  const MamdaniEngine& e = engine();
  ASSERT_EQ(e.inputCount(), 3u);
  EXPECT_EQ(e.input(0).name(), "Cv");
  EXPECT_EQ(e.input(0).termCount(), 3u);  // {B, N, G}
  EXPECT_EQ(e.input(1).name(), "R");
  EXPECT_EQ(e.input(1).universe(), (fuzzy::Interval{0.0, 10.0}));
  EXPECT_EQ(e.input(1).termCount(), 3u);  // {T, Vo, Vi}
  EXPECT_EQ(e.input(2).name(), "Cs");
  EXPECT_EQ(e.input(2).universe(), (fuzzy::Interval{0.0, 40.0}));
  EXPECT_EQ(e.input(2).termCount(), 3u);  // {S, M, F}
  EXPECT_EQ(e.output().name(), "AR");
  EXPECT_EQ(e.output().universe(), (fuzzy::Interval{-1.0, 1.0}));
  EXPECT_EQ(e.output().termCount(), 5u);  // {R, WR, NRNA, WA, A}
}

TEST(Flc2Structure, RuleBaseIs27RulesAndComplete) {
  const MamdaniEngine& e = engine();
  EXPECT_EQ(e.rules().size(), 27u);  // 3 x 3 x 3 (paper Section 3.2)
  const fuzzy::RuleBaseReport report =
      e.rules().validate(e.inputs(), e.output());
  EXPECT_TRUE(report.ok);
}

TEST(Flc2Structure, RulesMatchTable2RowByRow) {
  const MamdaniEngine& e = engine();
  const auto& table = frb2Table();
  ASSERT_EQ(e.rules().size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const fuzzy::Rule& rule = e.rules().rule(i);
    EXPECT_EQ(e.input(0).term(rule.antecedent[0]).name(), table[i].cv)
        << "rule " << i;
    EXPECT_EQ(e.input(1).term(rule.antecedent[1]).name(), table[i].r)
        << "rule " << i;
    EXPECT_EQ(e.input(2).term(rule.antecedent[2]).name(), table[i].cs)
        << "rule " << i;
    EXPECT_EQ(e.output().term(rule.consequent).name(), table[i].ar)
        << "rule " << i;
  }
}

TEST(Flc2Behaviour, EmptySystemAcceptsEverything) {
  // Cs = 0 (Small): every Table 2 row with Cs=S is A or WA.
  EXPECT_GT(ar(0.9, 1.0, 0.0), 0.5);   // good user, text
  EXPECT_GT(ar(0.9, 5.0, 0.0), 0.5);   // good user, voice
  EXPECT_GT(ar(0.9, 10.0, 0.0), 0.5);  // good user, video
  EXPECT_GT(ar(0.1, 1.0, 0.0), 0.5);   // even bad prediction, text -> A
  EXPECT_GT(ar(0.1, 10.0, 0.0), 0.0);  // bad prediction, video -> WA
}

TEST(Flc2Behaviour, FullSystemNeverAccepts) {
  // Cs = 40 (Full): no Table 2 row with Cs=F concludes A or WA.
  for (double cv = 0.05; cv <= 1.0; cv += 0.1) {
    for (double r : {1.0, 5.0, 10.0}) {
      EXPECT_LE(ar(cv, r, 40.0), 0.05) << "cv=" << cv << " r=" << r;
    }
  }
}

TEST(Flc2Behaviour, GoodVideoOnFullSystemIsHardReject) {
  // G & Vi & F -> R: the strongest rejection in the table protects the
  // ongoing calls from a 10 BU grab even for a well-predicted user.
  EXPECT_LT(ar(1.0, 10.0, 40.0), -0.5);
}

TEST(Flc2Behaviour, BetterPredictionNeverHurtsMuch) {
  // Table 2 is not strictly monotone in Cv (e.g. N&Vo&F -> NRNA but
  // G&Vo&F -> WR protects ongoing calls from confident heavy users), and
  // Mamdani centroids wobble a few hundredths as term activations cross.
  // The defensible property: improving Cv never costs more than that
  // wobble, pointwise along the sweep.
  for (double r : {1.0, 5.0, 10.0}) {
    for (double cs : {5.0, 15.0, 25.0}) {
      double prev = -2.0;
      for (double cv = 0.0; cv <= 1.0; cv += 0.05) {
        const double out = ar(cv, r, cs);
        EXPECT_GE(out + 0.06, prev)
            << "cv=" << cv << " r=" << r << " cs=" << cs;
        prev = out;
      }
    }
  }
}

TEST(Flc2Behaviour, MoreOccupancyNeverHelpsMuch) {
  for (double r : {1.0, 5.0, 10.0}) {
    for (double cv : {0.1, 0.5, 0.9}) {
      double prev = 2.0;
      for (double cs = 0.0; cs <= 40.0; cs += 2.0) {
        const double out = ar(cv, r, cs);
        EXPECT_LE(out - 0.06, prev)
            << "cv=" << cv << " r=" << r << " cs=" << cs;
        prev = out;
      }
    }
  }
}

TEST(Flc2Behaviour, EndpointsDominateAcrossOccupancy) {
  // The coarse-grained claim behind both sweeps: an empty system is always
  // at least as welcoming as a full one, for any user and class.
  for (double r : {1.0, 5.0, 10.0}) {
    for (double cv = 0.0; cv <= 1.0; cv += 0.1) {
      EXPECT_GT(ar(cv, r, 0.0), ar(cv, r, 40.0) + 0.2)
          << "cv=" << cv << " r=" << r;
    }
  }
}

TEST(Flc2Behaviour, MidOccupancyGoodUserAcceptedBadUserNeutral) {
  // Cs=M rows: G -> A for all classes, B/N -> NRNA.
  EXPECT_GT(ar(1.0, 1.0, 20.0), 0.5);
  EXPECT_GT(ar(1.0, 5.0, 20.0), 0.5);
  EXPECT_NEAR(ar(0.0, 5.0, 20.0), 0.0, 0.15);
}

TEST(Flc2Behaviour, OutputAlwaysWithinDecisionUniverse) {
  for (double cv = 0.0; cv <= 1.0; cv += 0.125) {
    for (double r = 0.0; r <= 10.0; r += 1.0) {
      for (double cs = 0.0; cs <= 40.0; cs += 5.0) {
        const double out = ar(cv, r, cs);
        EXPECT_GE(out, -1.0);
        EXPECT_LE(out, 1.0);
      }
    }
  }
}

TEST(Flc2Behaviour, InputsClampLikeTheirUniverses) {
  EXPECT_DOUBLE_EQ(ar(1.4, 10.0, 40.0), ar(1.0, 10.0, 40.0));
  EXPECT_DOUBLE_EQ(ar(0.5, 12.0, 40.0), ar(0.5, 10.0, 40.0));
  EXPECT_DOUBLE_EQ(ar(0.5, 5.0, 55.0), ar(0.5, 5.0, 40.0));
}

}  // namespace
}  // namespace facs::core
