#include "core/facs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace facs::core {
namespace {

using cellular::AdmissionContext;
using cellular::BaseStation;
using cellular::CallRequest;
using cellular::ServiceClass;
using cellular::UserSnapshot;

UserSnapshot idealUser() {
  UserSnapshot u;
  u.speed_kmh = 100.0;
  u.angle_deg = 0.0;
  u.distance_km = 1.0;
  u.position = {1.0, 0.0};
  return u;
}

UserSnapshot erraticUser() {
  UserSnapshot u;
  u.speed_kmh = 4.0;
  u.angle_deg = 160.0;
  u.distance_km = 9.0;
  u.position = {9.0, 0.0};
  return u;
}

CallRequest makeRequest(const UserSnapshot& user, ServiceClass service,
                        bool handoff = false) {
  CallRequest r;
  r.call = 1;
  r.user = 1;
  r.service = service;
  r.demand_bu = cellular::profileFor(service).demand_bu;
  r.snapshot = user;
  r.target_cell = 0;
  r.is_handoff = handoff;
  return r;
}

TEST(SoftDecisionNames, ToString) {
  EXPECT_EQ(toString(SoftDecision::Reject), "reject");
  EXPECT_EQ(toString(SoftDecision::WeakReject), "weak-reject");
  EXPECT_EQ(toString(SoftDecision::NotRejectNotAccept),
            "not-reject-not-accept");
  EXPECT_EQ(toString(SoftDecision::WeakAccept), "weak-accept");
  EXPECT_EQ(toString(SoftDecision::Accept), "accept");
}

TEST(SoftDecisionNames, OutOfRangeValueIsNotAValidLookingDefault) {
  // A corrupted decision must not log as the neutral middle level.
  EXPECT_EQ(toString(static_cast<SoftDecision>(5)), "invalid");
  EXPECT_EQ(toString(static_cast<SoftDecision>(250)), "invalid");
}

TEST(FacsController, ClassifyMapsOntoFiveLevels) {
  const FacsController facs;
  EXPECT_EQ(facs.classify(-0.95), SoftDecision::Reject);
  EXPECT_EQ(facs.classify(-0.5), SoftDecision::WeakReject);
  EXPECT_EQ(facs.classify(0.0), SoftDecision::NotRejectNotAccept);
  EXPECT_EQ(facs.classify(0.5), SoftDecision::WeakAccept);
  EXPECT_EQ(facs.classify(0.95), SoftDecision::Accept);
}

TEST(FacsController, IdealUserOnEmptyCellIsAccepted) {
  const FacsController facs;
  const FacsEvaluation eval = facs.evaluate(idealUser(), 5.0, 0.0);
  EXPECT_GT(eval.cv, 0.8);
  EXPECT_GT(eval.ar, 0.5);
  EXPECT_TRUE(eval.accept);
  EXPECT_EQ(eval.soft, SoftDecision::Accept);
}

TEST(FacsController, ErraticUserOnFullCellIsRejected) {
  const FacsController facs;
  const FacsEvaluation eval = facs.evaluate(erraticUser(), 10.0, 40.0);
  EXPECT_LT(eval.cv, 0.3);
  EXPECT_FALSE(eval.accept);
}

TEST(FacsController, CascadePassesCvIntoFlc2) {
  const FacsController facs;
  const double cv_good = facs.predictCv(idealUser());
  const double cv_bad = facs.predictCv(erraticUser());
  EXPECT_GT(cv_good, cv_bad + 0.4);

  // At middling occupancy the better prediction translates into a better
  // admission score — the cascade is live.
  const FacsEvaluation good = facs.evaluate(idealUser(), 5.0, 20.0);
  const FacsEvaluation bad = facs.evaluate(erraticUser(), 5.0, 20.0);
  EXPECT_GT(good.ar, bad.ar);
}

TEST(FacsController, OccupancyTightensAdmission) {
  const FacsController facs;
  const FacsEvaluation empty = facs.evaluate(idealUser(), 10.0, 0.0);
  const FacsEvaluation mid = facs.evaluate(idealUser(), 10.0, 20.0);
  const FacsEvaluation full = facs.evaluate(idealUser(), 10.0, 40.0);
  EXPECT_GT(empty.ar, mid.ar - 1e-9);
  EXPECT_GT(mid.ar, full.ar);
  EXPECT_TRUE(empty.accept);
  EXPECT_FALSE(full.accept);  // G & Vi & F -> R
}

TEST(FacsController, ThresholdIsConfigurable) {
  FacsConfig strict;
  strict.accept_threshold = 0.6;
  const FacsController facs{strict};
  // Weak accept (~0.5) fails a 0.6 threshold.
  const FacsEvaluation eval = facs.evaluate(erraticUser(), 10.0, 0.0);
  EXPECT_EQ(eval.soft, SoftDecision::WeakAccept);
  EXPECT_FALSE(eval.accept);
}

TEST(FacsController, PriorityBiasLowersThreshold) {
  FacsConfig cfg;
  cfg.accept_threshold = 0.6;
  cfg.priority_bias = 0.2;
  const FacsController facs{cfg};
  const FacsEvaluation plain = facs.evaluate(erraticUser(), 10.0, 0.0);
  const FacsEvaluation prio =
      facs.evaluate(erraticUser(), 10.0, 0.0, /*is_handoff=*/false,
                    /*priority=*/2);
  EXPECT_FALSE(plain.accept);
  EXPECT_TRUE(prio.accept);  // threshold 0.6 - 0.4 = 0.2 < weak accept
}

TEST(FacsController, HandoffBiasPrioritizesOngoingCalls) {
  FacsConfig cfg;
  cfg.handoff_bias = 0.3;
  const FacsController facs{cfg};
  // A borderline case near ar ~ 0: neutral for new calls, accepted as
  // handoff because dropping is worse than blocking (Section 1).
  UserSnapshot u = idealUser();
  u.speed_kmh = 4.0;
  u.angle_deg = 0.0;
  u.distance_km = 9.0;  // Sl & St & F -> Cv3 -> middling
  const FacsEvaluation as_new = facs.evaluate(u, 5.0, 25.0, false);
  const FacsEvaluation as_handoff = facs.evaluate(u, 5.0, 25.0, true);
  EXPECT_EQ(as_new.ar, as_handoff.ar);  // same fuzzy output...
  EXPECT_TRUE(!as_new.accept || as_handoff.accept);  // ...easier admission
}

TEST(FacsController, DecideHonoursLedgerCapacity) {
  FacsController facs;
  BaseStation bs{0, 40};
  bs.allocate(99, 33, true);  // 7 BU free: fuzzy Cs=33 is not yet Full

  // Voice (5 BU) still fits; video (10 BU) does not, whatever FLC2 says.
  const AdmissionContext ctx{bs, 0.0};
  const auto voice =
      facs.decide(makeRequest(idealUser(), ServiceClass::Voice), ctx);
  const auto video =
      facs.decide(makeRequest(idealUser(), ServiceClass::Video), ctx);
  EXPECT_FALSE(video.accept);  // cannot fit 10 BU into 7
  // The fuzzy score is reported either way.
  EXPECT_GE(voice.score, -1.0);
  EXPECT_LE(voice.score, 1.0);
}

TEST(FacsController, DecideRationaleIsOptIn) {
  FacsController facs;
  BaseStation bs{0, 40};

  // Hot path (explain off): no rationale text, only the reason code.
  const AdmissionContext fast_ctx{bs, 0.0};
  const auto fast =
      facs.decide(makeRequest(idealUser(), ServiceClass::Text), fast_ctx);
  EXPECT_TRUE(fast.accept);
  EXPECT_EQ(fast.reason, cellular::ReasonCode::Admitted);
  EXPECT_TRUE(fast.rationale.empty());

  // Explain mode: rationale names both fuzzy stages.
  const AdmissionContext explain_ctx{bs, 0.0, /*explain=*/true};
  const auto d =
      facs.decide(makeRequest(idealUser(), ServiceClass::Text), explain_ctx);
  EXPECT_TRUE(d.accept);
  EXPECT_NE(d.rationale.find("cv="), std::string::npos);
  EXPECT_NE(d.rationale.find("ar="), std::string::npos);
  EXPECT_NE(d.rationale.find("soft="), std::string::npos);
}

TEST(FacsController, PrecomputeMatchesPredictCv) {
  const FacsController facs;
  for (const UserSnapshot& u : {idealUser(), erraticUser()}) {
    const cellular::PredictedCv p = facs.precompute(u);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.cv, facs.predictCv(u));  // exact: same inference
  }
}

TEST(FacsController, DecideConsumesPrecomputedCvBitIdentically) {
  FacsController facs;
  BaseStation bs{0, 40};
  bs.allocate(99, 20, true);

  for (const UserSnapshot& u : {idealUser(), erraticUser()}) {
    for (const bool handoff : {false, true}) {
      const CallRequest req = makeRequest(u, ServiceClass::Voice, handoff);
      const AdmissionContext inline_ctx{bs, 0.0};
      AdmissionContext precomputed_ctx{bs, 0.0};
      precomputed_ctx.predicted = facs.precompute(u);

      const auto a = facs.decide(req, inline_ctx);
      const auto b = facs.decide(req, precomputed_ctx);
      EXPECT_EQ(a.accept, b.accept);
      EXPECT_EQ(a.reason, b.reason);
      EXPECT_EQ(a.score, b.score);  // exact double equality on purpose
    }
  }
}

TEST(FacsController, StalePrecomputedCvIsHonoured) {
  // decide() trusts context.predicted verbatim — keeping it coherent with
  // the snapshot is the caller's contract (the simulator re-runs
  // precompute() whenever mobility changes a snapshot). A mismatched CV
  // must therefore change the score, proving the value is actually used.
  FacsController facs;
  BaseStation bs{0, 40};
  bs.allocate(99, 20, true);
  const CallRequest req = makeRequest(erraticUser(), ServiceClass::Voice);

  AdmissionContext stale_ctx{bs, 0.0};
  stale_ctx.predicted = facs.precompute(idealUser());  // wrong snapshot
  const AdmissionContext fresh_ctx{bs, 0.0};
  const auto stale = facs.decide(req, stale_ctx);
  const auto fresh = facs.decide(req, fresh_ctx);
  EXPECT_NE(stale.score, fresh.score);
  EXPECT_EQ(stale.score,
            facs.evaluate(facs.predictCv(idealUser()), 5.0, 20.0).ar);
}

TEST(FacsController, EvaluateBatchMatchesStandaloneEvaluate) {
  const FacsController facs;
  std::vector<PendingDecision> batch;
  // A spread of (cv, demand, occupancy, handoff, priority) combinations,
  // including ledger states that differ per entry — the commit phase's
  // reality (each decision sees the occupancy its predecessors left).
  for (double cv : {0.05, 0.35, 0.65, 0.95}) {
    for (double occupied : {0.0, 15.0, 30.0, 40.0}) {
      PendingDecision p;
      p.cv = cv;
      p.demand_bu = occupied < 20.0 ? 10.0 : 5.0;
      p.occupied_bu = occupied;
      p.is_handoff = cv > 0.5;
      p.priority = cv > 0.9 ? 1 : 0;
      batch.push_back(p);
    }
  }
  facs.evaluateBatch(batch);
  for (const PendingDecision& p : batch) {
    const FacsEvaluation solo =
        facs.evaluate(p.cv, p.demand_bu, p.occupied_bu, p.is_handoff,
                      p.priority);
    EXPECT_EQ(p.eval.ar, solo.ar);  // bit-identical, not just close
    EXPECT_EQ(p.eval.cv, solo.cv);
    EXPECT_EQ(p.eval.soft, solo.soft);
    EXPECT_EQ(p.eval.accept, solo.accept);
  }
}

TEST(FacsController, EvaluateBatchMemoizesRepeatedSharedInputs) {
  const FacsController facs;
  // A commit-window batch: Cs holds still across runs of decisions (the
  // fuzzification memo's target case), then moves mid-batch; some entries
  // repeat completely. Every result must still equal a standalone
  // evaluate() bit for bit.
  std::vector<PendingDecision> batch;
  const double cs_runs[] = {20.0, 20.0, 20.0, 25.0, 25.0, 20.0};
  int k = 0;
  for (double cs : cs_runs) {
    PendingDecision p;
    p.cv = (k % 3 == 0) ? 0.4 : 0.4 + 0.1 * (k % 3);  // repeats then moves
    p.demand_bu = (k % 2 == 0) ? 5.0 : 10.0;
    p.occupied_bu = cs;
    ++k;
    batch.push_back(p);
    batch.push_back(p);  // exact duplicate: full-entry memo hit
  }
  facs.evaluateBatch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingDecision& p = batch[i];
    const FacsEvaluation solo =
        facs.evaluate(p.cv, p.demand_bu, p.occupied_bu, p.is_handoff,
                      p.priority);
    EXPECT_EQ(p.eval.ar, solo.ar) << "entry " << i;
    EXPECT_EQ(p.eval.accept, solo.accept) << "entry " << i;
  }
}

TEST(FacsController, InterleavedControllersNeverShareBatchState) {
  // decide() routes through a per-thread BatchScratch shared by every
  // controller on the thread. Two differently-configured controllers fed
  // the same inputs back to back must each keep their own answers — the
  // seal-id keying drops the other engine's memo.
  FacsConfig prod_cfg;
  prod_cfg.flc2.conjunction = fuzzy::TNorm::AlgebraicProduct;
  prod_cfg.flc2.implication = fuzzy::TNorm::AlgebraicProduct;
  prod_cfg.flc2.aggregation = fuzzy::SNorm::AlgebraicSum;
  FacsController minmax;
  FacsController prod{prod_cfg};

  BaseStation bs{0, 40};
  bs.allocate(1, 17, true);
  const AdmissionContext ctx{bs, 0.0};
  const CallRequest req = makeRequest(idealUser(), ServiceClass::Voice);

  const double minmax_score = minmax.decide(req, ctx).score;
  const double prod_score = prod.decide(req, ctx).score;
  ASSERT_NE(minmax_score, prod_score);  // the configs genuinely differ
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(minmax.decide(req, ctx).score, minmax_score);
    EXPECT_EQ(prod.decide(req, ctx).score, prod_score);
  }
}

TEST(FacsController, EvaluateByCvMatchesSnapshotOverload) {
  const FacsController facs;
  const UserSnapshot u = idealUser();
  const FacsEvaluation via_snapshot = facs.evaluate(u, 5.0, 20.0);
  const FacsEvaluation via_cv = facs.evaluate(facs.predictCv(u), 5.0, 20.0);
  EXPECT_EQ(via_snapshot.cv, via_cv.cv);
  EXPECT_EQ(via_snapshot.ar, via_cv.ar);
  EXPECT_EQ(via_snapshot.accept, via_cv.accept);
}

TEST(FacsController, ExplainRationaleFitsTheInlineBufferUntruncated) {
  FacsController facs;
  BaseStation bs{0, 40};
  const AdmissionContext ctx{bs, 0.0, /*explain=*/true};
  const auto d = facs.decide(makeRequest(idealUser(), ServiceClass::Text),
                             ctx);
  EXPECT_FALSE(d.rationale.truncated());
  EXPECT_LE(d.rationale.size(), cellular::ReasonText::kCapacity);
}

TEST(FacsController, NameAndAccessors) {
  const FacsController facs;
  EXPECT_EQ(facs.name(), "FACS");
  EXPECT_EQ(facs.flc1().name(), "FLC1");
  EXPECT_EQ(facs.flc2().name(), "FLC2");
  EXPECT_DOUBLE_EQ(facs.config().accept_threshold, 0.0);
}

/// The acceptance region grows as occupancy falls, for every service class
/// — the soft-decision analogue of "a good CAC balances blocking and
/// dropping".
class FacsOccupancySweep : public ::testing::TestWithParam<ServiceClass> {};

TEST_P(FacsOccupancySweep, AcceptanceMonotoneInFreeCapacity) {
  const FacsController facs;
  const double demand = cellular::profileFor(GetParam()).demand_bu;
  bool was_rejected_before_accepted = false;
  bool seen_accept = false;
  for (double cs = 40.0; cs >= 0.0; cs -= 1.0) {
    const FacsEvaluation eval = facs.evaluate(idealUser(), demand, cs);
    if (eval.accept) {
      seen_accept = true;
    } else if (seen_accept) {
      was_rejected_before_accepted = true;  // non-monotone flip
    }
  }
  EXPECT_TRUE(seen_accept);
  EXPECT_FALSE(was_rejected_before_accepted);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, FacsOccupancySweep,
                         ::testing::Values(ServiceClass::Text,
                                           ServiceClass::Voice,
                                           ServiceClass::Video));

}  // namespace
}  // namespace facs::core
