/// Table-fidelity property tests: for every row of the paper's FRB1 and
/// FRB2, drive the corresponding engine at the *peak* of that row's
/// antecedent terms (where the row fires with strength 1 and every other
/// row is dominated) and check that the defuzzified output lands closest
/// to the row's consequent term. This pins the whole pipeline — membership
/// functions, rule wiring, inference operators, defuzzifier — to Tables 1
/// and 2, row by row.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/flc1.hpp"
#include "core/flc2.hpp"

namespace facs::core {
namespace {

using fuzzy::MamdaniEngine;

/// Peak input value for a named term of a variable.
double peakOf(const fuzzy::LinguisticVariable& v, const char* term) {
  const auto idx = v.termIndex(term);
  EXPECT_TRUE(idx.has_value()) << term;
  return v.term(*idx).mf().peak();
}

class Frb1Fidelity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Frb1Fidelity, PeakInputsYieldTheTabledCv) {
  static const MamdaniEngine engine = buildFlc1();
  const Frb1Row& row = frb1Table()[GetParam()];

  const std::array<double, 3> inputs{peakOf(engine.input(0), row.s),
                                     peakOf(engine.input(1), row.a),
                                     peakOf(engine.input(2), row.d)};
  const fuzzy::InferenceTrace trace = engine.inferTraced(inputs);

  // Exactly one rule fires at full strength at the joint peak (triangular
  // partitions overlap only between adjacent terms).
  double max_strength = 0.0;
  for (const auto& a : trace.activations) {
    max_strength = std::max(max_strength, a.firing_strength);
  }
  EXPECT_DOUBLE_EQ(max_strength, 1.0) << "row " << GetParam();

  EXPECT_EQ(engine.output().term(trace.winning_output_term).name(), row.cv)
      << "row " << GetParam() << ": S=" << row.s << " A=" << row.a
      << " D=" << row.d;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Frb1Fidelity, ::testing::Range<std::size_t>(0, 42));

class Frb2Fidelity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Frb2Fidelity, PeakInputsYieldTheTabledDecision) {
  static const MamdaniEngine engine = buildFlc2();
  const Frb2Row& row = frb2Table()[GetParam()];

  const std::array<double, 3> inputs{peakOf(engine.input(0), row.cv),
                                     peakOf(engine.input(1), row.r),
                                     peakOf(engine.input(2), row.cs)};
  const fuzzy::InferenceTrace trace = engine.inferTraced(inputs);

  EXPECT_EQ(engine.output().term(trace.winning_output_term).name(), row.ar)
      << "row " << GetParam() << ": Cv=" << row.cv << " R=" << row.r
      << " Cs=" << row.cs;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Frb2Fidelity, ::testing::Range<std::size_t>(0, 27));

/// Cross-check: at joint peaks the FLC1 crisp output approximates the
/// consequent term's centre within half a term spacing (centroid pull from
/// the universe edges is bounded by the shoulder geometry).
TEST(Frb1Fidelity, CrispOutputNearConsequentCenter) {
  const MamdaniEngine engine = buildFlc1();
  for (std::size_t i = 0; i < frb1Table().size(); ++i) {
    const Frb1Row& row = frb1Table()[i];
    const std::array<double, 3> inputs{peakOf(engine.input(0), row.s),
                                       peakOf(engine.input(1), row.a),
                                       peakOf(engine.input(2), row.d)};
    const double out = engine.infer(inputs);
    const double target =
        engine.output().term(*engine.output().termIndex(row.cv)).mf().peak();
    EXPECT_NEAR(out, target, 0.125) << "row " << i;
  }
}

}  // namespace
}  // namespace facs::core
