#include "core/flc1.hpp"

#include <gtest/gtest.h>

#include <array>

namespace facs::core {
namespace {

using fuzzy::MamdaniEngine;

const MamdaniEngine& engine() {
  static const MamdaniEngine e = buildFlc1();
  return e;
}

double cv(double s, double a, double d) {
  const std::array<double, 3> in{s, a, d};
  return engine().infer(in);
}

TEST(Flc1Structure, VariablesMatchPaper) {
  const MamdaniEngine& e = engine();
  ASSERT_EQ(e.inputCount(), 3u);
  EXPECT_EQ(e.input(0).name(), "S");
  EXPECT_EQ(e.input(0).universe(), (fuzzy::Interval{0.0, 120.0}));
  EXPECT_EQ(e.input(0).termCount(), 3u);  // T(S) = {Sl, M, Fa}
  EXPECT_EQ(e.input(1).name(), "A");
  EXPECT_EQ(e.input(1).universe(), (fuzzy::Interval{-180.0, 180.0}));
  EXPECT_EQ(e.input(1).termCount(), 7u);  // {B1,L1,L2,St,R1,R2,B2}
  EXPECT_EQ(e.input(2).name(), "D");
  EXPECT_EQ(e.input(2).universe(), (fuzzy::Interval{0.0, 10.0}));
  EXPECT_EQ(e.input(2).termCount(), 2u);  // {N, F}
  EXPECT_EQ(e.output().name(), "Cv");
  EXPECT_EQ(e.output().termCount(), 9u);  // Cv1..Cv9
}

TEST(Flc1Structure, RuleBaseIs42RulesAndComplete) {
  const MamdaniEngine& e = engine();
  // |T(S)| x |T(A)| x |T(D)| = 3 * 7 * 2 = 42 (paper Section 3.1).
  EXPECT_EQ(e.rules().size(), 42u);
  const fuzzy::RuleBaseReport report =
      e.rules().validate(e.inputs(), e.output());
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.uncovered.empty());
  EXPECT_TRUE(report.conflicts.empty());
}

TEST(Flc1Structure, RulesMatchTable1RowByRow) {
  const MamdaniEngine& e = engine();
  const auto& table = frb1Table();
  ASSERT_EQ(e.rules().size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const fuzzy::Rule& rule = e.rules().rule(i);
    EXPECT_EQ(e.input(0).term(rule.antecedent[0]).name(), table[i].s)
        << "rule " << i;
    EXPECT_EQ(e.input(1).term(rule.antecedent[1]).name(), table[i].a)
        << "rule " << i;
    EXPECT_EQ(e.input(2).term(rule.antecedent[2]).name(), table[i].d)
        << "rule " << i;
    EXPECT_EQ(e.output().term(rule.consequent).name(), table[i].cv)
        << "rule " << i;
  }
}

TEST(Flc1Structure, InputPartitionsCoverUniverses) {
  const MamdaniEngine& e = engine();
  for (std::size_t i = 0; i < e.inputCount(); ++i) {
    EXPECT_TRUE(e.input(i).covers()) << e.input(i).name();
  }
  EXPECT_TRUE(e.output().covers());
}

TEST(Flc1Behaviour, FastStraightIsBestPrediction) {
  // Rules 34/35: Fa & St -> Cv9 for both N and F.
  EXPECT_GT(cv(100.0, 0.0, 1.0), 0.85);
  EXPECT_GT(cv(100.0, 0.0, 9.0), 0.85);
}

TEST(Flc1Behaviour, MovingAwayIsWorstPrediction) {
  // B1/B2 rows: moving away from the BS earns Cv1..Cv3.
  EXPECT_LT(cv(100.0, 170.0, 9.0), 0.2);
  EXPECT_LT(cv(100.0, -170.0, 9.0), 0.2);
  EXPECT_LT(cv(10.0, 170.0, 9.0), 0.3);
}

TEST(Flc1Behaviour, SlowUsersGetLowerCvThanFastWhenHeadingStraightFar) {
  // Sl & St & F -> Cv3 vs Fa & St & F -> Cv9.
  const double slow = cv(5.0, 0.0, 9.0);
  const double fast = cv(100.0, 0.0, 9.0);
  EXPECT_LT(slow + 0.3, fast);
}

TEST(Flc1Behaviour, SymmetricInAngleByTable) {
  // Table 1 is left/right symmetric (L1<->R1 rows differ only via R2/L2
  // asymmetries at a few spots; the mirrored pairs used here are equal).
  EXPECT_NEAR(cv(5.0, -90.0, 2.0), cv(5.0, 90.0, 2.0), 0.02);
  EXPECT_NEAR(cv(45.0, -45.0, 2.0), cv(45.0, 45.0, 2.0), 1e-9);
  EXPECT_NEAR(cv(100.0, -45.0, 8.0), cv(100.0, 45.0, 8.0), 1e-9);
}

TEST(Flc1Behaviour, OutputAlwaysWithinUnitInterval) {
  for (double s = 0.0; s <= 120.0; s += 12.0) {
    for (double a = -180.0; a <= 180.0; a += 20.0) {
      for (double d = 0.0; d <= 10.0; d += 2.0) {
        const double out = cv(s, a, d);
        EXPECT_GE(out, 0.0) << s << "," << a << "," << d;
        EXPECT_LE(out, 1.0) << s << "," << a << "," << d;
      }
    }
  }
}

TEST(Flc1Behaviour, NearBeatsFarForSlowStraightUsers) {
  // Sl & St & N -> Cv9 but Sl & St & F -> Cv3: near users are predictable.
  EXPECT_GT(cv(5.0, 0.0, 0.5), cv(5.0, 0.0, 9.5));
}

TEST(Flc1Behaviour, AngleDegradesPredictionMonotonically) {
  // At fixed mid speed / near distance, Cv should not increase as the
  // heading deviation grows from 0 to 180 degrees.
  const double speeds[] = {5.0, 30.0, 100.0};
  for (const double s : speeds) {
    double prev = 2.0;
    for (double a = 0.0; a <= 180.0; a += 15.0) {
      const double out = cv(s, a, 1.0);
      EXPECT_LE(out, prev + 0.05) << "s=" << s << " angle=" << a;
      prev = out;
    }
  }
}

/// Paper-text anchor points: the qualitative claims of Section 4 hold as
/// properties of the raw controller.
struct SpeedCase {
  double speed;
  double expected_lo;
  double expected_hi;
};

class Flc1SpeedSweep : public ::testing::TestWithParam<SpeedCase> {};

TEST_P(Flc1SpeedSweep, StraightNearCvBands) {
  const auto& p = GetParam();
  const double out = cv(p.speed, 0.0, 1.0);
  EXPECT_GE(out, p.expected_lo) << "speed " << p.speed;
  EXPECT_LE(out, p.expected_hi) << "speed " << p.speed;
}

INSTANTIATE_TEST_SUITE_P(
    Bands, Flc1SpeedSweep,
    ::testing::Values(SpeedCase{4.0, 0.7, 1.0},    // Sl & St & N -> Cv9
                      SpeedCase{30.0, 0.7, 1.0},   // M  & St & N -> Cv9
                      SpeedCase{60.0, 0.7, 1.0},   // Fa & St & N -> Cv9
                      SpeedCase{120.0, 0.7, 1.0}));

TEST(Flc1Config, HonoursAlternativeOperators) {
  fuzzy::EngineConfig cfg;
  cfg.conjunction = fuzzy::TNorm::AlgebraicProduct;
  cfg.implication = fuzzy::TNorm::AlgebraicProduct;
  cfg.defuzzifier = fuzzy::Defuzzifier::MeanOfMax;
  const MamdaniEngine e = buildFlc1(cfg);
  const std::array<double, 3> in{100.0, 0.0, 1.0};
  const double out = e.infer(in);
  EXPECT_GE(out, 0.9);  // MOM on the Cv9 plateau
}

}  // namespace
}  // namespace facs::core
