/// \file ring_buffer_test.cpp
/// The streaming mailbox ring: FIFO across wraparound, honest
/// backpressure at capacity, high-water accounting — the invariants the
/// engine's zero-steady-state-allocation contract leans on.

#include "serve/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace facs::serve {
namespace {

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ringCapacityFor(0), 2u);
  EXPECT_EQ(ringCapacityFor(1), 2u);
  EXPECT_EQ(ringCapacityFor(2), 2u);
  EXPECT_EQ(ringCapacityFor(3), 4u);
  EXPECT_EQ(ringCapacityFor(1000), 1024u);
  EXPECT_EQ(ringCapacityFor(1024), 1024u);
  EXPECT_EQ(ringCapacityFor(1025), 2048u);
  EXPECT_EQ(RingBuffer<int>{5}.capacity(), 8u);
}

TEST(RingBuffer, FifoAcrossManyWraparounds) {
  RingBuffer<int> ring{4};  // capacity 4; indices wrap many times below
  int pushed = 0;
  int popped = 0;
  // Keep two elements resident while cycling 10x the capacity through, so
  // the masked indices wrap repeatedly with live content straddling the
  // seam.
  ASSERT_TRUE(ring.tryPush(pushed++));
  ASSERT_TRUE(ring.tryPush(pushed++));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(ring.tryPush(pushed++));
    const std::optional<int> out = ring.tryPop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, popped++);  // strict FIFO, no element lost or reordered
  }
  EXPECT_EQ(ring.size(), 2u);
}

TEST(RingBuffer, ExhaustionSignalsBackpressureWithoutGrowing) {
  RingBuffer<int> ring{4};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.tryPush(i));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.tryPush(99));  // refused, not grown
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  // The refused element left no trace: contents drain exactly as pushed.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.tryPop().value(), i);
  EXPECT_FALSE(ring.tryPop().has_value());
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, HighWaterTracksPeakNotCurrent) {
  RingBuffer<int> ring{8};
  EXPECT_EQ(ring.highWater(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.tryPush(i));
  EXPECT_EQ(ring.highWater(), 5u);
  while (ring.tryPop()) {
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.highWater(), 5u);  // documents the run, not the moment
  ASSERT_TRUE(ring.tryPush(1));
  EXPECT_EQ(ring.highWater(), 5u);
}

TEST(RingBuffer, ClearDropsContentKeepsHighWater) {
  RingBuffer<std::string> ring{4};
  ASSERT_TRUE(ring.tryPush("a"));
  ASSERT_TRUE(ring.tryPush("b"));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.highWater(), 2u);
  ASSERT_TRUE(ring.tryPush("c"));
  EXPECT_EQ(ring.tryPop().value(), "c");
}

}  // namespace
}  // namespace facs::serve
