/// \file call_pool_test.cpp
/// The slab/freelist call pool: LIFO recycling, occupant-based staleness,
/// slab growth only at new high-water marks, deterministic live-slot
/// iteration — the storage contract behind "memory proportional to
/// concurrent calls, not cumulative calls".

#include "serve/call_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace facs::serve {
namespace {

struct Payload {
  int value = 0;
  explicit Payload(int v) : value{v} {}
};

TEST(CallPool, AcquireReleaseRecyclesLifo) {
  CallPool<Payload> pool;
  const std::uint32_t a = pool.acquire(1, 10);
  const std::uint32_t b = pool.acquire(2, 20);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.at(a).value, 10);
  EXPECT_EQ(pool.at(b).value, 20);
  pool.release(a);
  pool.release(b);
  // LIFO: the most recently released slot hands out first, so a fixed
  // release order yields a fixed acquisition order (determinism).
  EXPECT_EQ(pool.acquire(3, 30), b);
  EXPECT_EQ(pool.acquire(4, 40), a);
}

TEST(CallPool, OccupantIdentifiesStaleSlots) {
  CallPool<Payload> pool;
  const std::uint32_t slot = pool.acquire(7, 70);
  EXPECT_EQ(pool.occupantOf(slot), 7u);
  pool.release(slot);
  EXPECT_EQ(pool.occupantOf(slot), 0u);  // free slot: occupant cleared
  // A recycled slot names its NEW occupant — an event still carrying
  // (slot, call 7) now reads as stale.
  const std::uint32_t again = pool.acquire(9, 90);
  ASSERT_EQ(again, slot);
  EXPECT_EQ(pool.occupantOf(slot), 9u);
  EXPECT_NE(pool.occupantOf(slot), 7u);
}

TEST(CallPool, StatsTrackHighWaterAndLifetimeCounts) {
  CallPool<Payload> pool;
  EXPECT_EQ(pool.stats().capacity, 0u);
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 5; ++i) slots.push_back(pool.acquire(i + 1, i));
  CallPool<Payload>::Stats s = pool.stats();
  EXPECT_EQ(s.live, 5u);
  EXPECT_EQ(s.high_water, 5u);
  EXPECT_EQ(s.acquired, 5u);
  EXPECT_EQ(s.released, 0u);
  EXPECT_EQ(s.grow_events, 1u);
  EXPECT_EQ(s.capacity, 1024u);  // one slab

  for (const std::uint32_t slot : slots) pool.release(slot);
  s = pool.stats();
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.high_water, 5u);  // peak, not current
  EXPECT_EQ(s.released, 5u);

  // Churn below the high-water mark: counters move, allocation does not.
  for (int round = 0; round < 100; ++round) {
    const std::uint32_t slot = pool.acquire(1000 + round, round);
    pool.release(slot);
  }
  s = pool.stats();
  EXPECT_EQ(s.grow_events, 1u);
  EXPECT_EQ(s.capacity, 1024u);
  EXPECT_EQ(s.high_water, 5u);
  EXPECT_EQ(s.acquired, 105u);
}

TEST(CallPool, GrowsBySlabWhenFreelistExhausted) {
  CallPool<Payload> pool;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 1024; ++i) slots.push_back(pool.acquire(i + 1, i));
  EXPECT_EQ(pool.stats().grow_events, 1u);
  EXPECT_EQ(pool.stats().capacity, 1024u);
  const std::uint32_t overflow = pool.acquire(5000, -1);
  EXPECT_EQ(pool.stats().grow_events, 2u);
  EXPECT_EQ(pool.stats().capacity, 2048u);
  EXPECT_EQ(pool.at(overflow).value, -1);
  // Slots keep stable addresses across growth (slabs never move).
  EXPECT_EQ(pool.at(slots[0]).value, 0);
  EXPECT_EQ(pool.at(slots[1023]).value, 1023);
}

TEST(CallPool, ForEachLiveVisitsInSlotOrder) {
  CallPool<Payload> pool;
  const std::uint32_t a = pool.acquire(11, 1);
  const std::uint32_t b = pool.acquire(22, 2);
  const std::uint32_t c = pool.acquire(33, 3);
  pool.release(b);
  std::vector<std::uint32_t> visited;
  pool.forEachLive([&](std::uint32_t slot, cellular::CallId occupant,
                       Payload& p) {
    visited.push_back(slot);
    if (slot == a) {
      EXPECT_EQ(occupant, 11u);
      EXPECT_EQ(p.value, 1);
    }
    if (slot == c) {
      EXPECT_EQ(occupant, 33u);
      EXPECT_EQ(p.value, 3);
    }
  });
  // Slot-index order, released slot skipped — the deterministic iteration
  // forceDropCell's victim ordering builds on.
  ASSERT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited[0], std::min(a, c));
  EXPECT_EQ(visited[1], std::max(a, c));
}

}  // namespace
}  // namespace facs::serve
