/// \file mutation_test.cpp
/// ScenarioMutation validation and scheduling: the rules that keep a
/// mutation script well-formed before the engine ever runs it, and the
/// stable application order that makes "outage then restore at one
/// instant" mean what it says.

#include "serve/mutation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace facs::serve {
namespace {

ScenarioMutation ramp(double at_s, double scale) {
  ScenarioMutation m;
  m.at_s = at_s;
  m.op = MutationOp::ArrivalScale;
  m.scale = scale;
  return m;
}

TEST(MutationValidate, AcceptsWellFormedOps) {
  EXPECT_NO_THROW(validateMutation(ramp(10.0, 2.0), 0, 7, true));
  ScenarioMutation hotspot = ramp(10.0, 3.0);
  hotspot.cell = 3;
  // Per-cell scale is a spawn weight — legal under any arrival process.
  EXPECT_NO_THROW(validateMutation(hotspot, 0, 7, false));
  ScenarioMutation outage;
  outage.op = MutationOp::Outage;
  outage.cell = 6;
  EXPECT_NO_THROW(validateMutation(outage, 0, 7, false));
  ScenarioMutation mix;
  mix.op = MutationOp::Mix;
  mix.mix = cellular::TrafficMix{0.2, 0.3, 0.5};
  EXPECT_NO_THROW(validateMutation(mix, 0, 7, false));
}

TEST(MutationValidate, RejectsBadTimes) {
  EXPECT_THROW(validateMutation(ramp(-1.0, 2.0), 0, 7, true),
               std::invalid_argument);
  EXPECT_THROW(validateMutation(
                   ramp(std::numeric_limits<double>::infinity(), 2.0), 0, 7,
                   true),
               std::invalid_argument);
}

TEST(MutationValidate, RejectsCellOutsideTheDisk) {
  ScenarioMutation m = ramp(5.0, 2.0);
  m.cell = 7;
  EXPECT_THROW(validateMutation(m, 0, 7, true), std::invalid_argument);
  m.cell = 6;
  EXPECT_NO_THROW(validateMutation(m, 0, 7, true));
}

TEST(MutationValidate, RejectsNonPositiveScale) {
  EXPECT_THROW(validateMutation(ramp(5.0, 0.0), 0, 7, true),
               std::invalid_argument);
  EXPECT_THROW(validateMutation(ramp(5.0, -2.0), 0, 7, true),
               std::invalid_argument);
}

TEST(MutationValidate, GlobalRateRampNeedsPoisson) {
  // A uniform burst has no rate to ramp — only Poisson arrivals accept a
  // global arrival_scale.
  EXPECT_THROW(validateMutation(ramp(5.0, 2.0), 0, 7, false),
               std::invalid_argument);
  EXPECT_NO_THROW(validateMutation(ramp(5.0, 2.0), 0, 7, true));
}

TEST(MutationValidate, OutageAndRestoreNeedACell) {
  for (const MutationOp op : {MutationOp::Outage, MutationOp::Restore}) {
    ScenarioMutation m;
    m.op = op;
    EXPECT_THROW(validateMutation(m, 0, 7, true), std::invalid_argument);
    m.cell = 0;
    EXPECT_NO_THROW(validateMutation(m, 0, 7, true));
  }
}

TEST(MutationValidate, MixOpNeedsAMix) {
  ScenarioMutation m;
  m.op = MutationOp::Mix;
  EXPECT_THROW(validateMutation(m, 0, 7, true), std::invalid_argument);
}

TEST(MutationValidate, ErrorNamesTheEntry) {
  try {
    validateMutation(ramp(5.0, -1.0), 3, 7, true);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("mutation 3"), std::string::npos)
        << e.what();
  }
}

TEST(MutationSchedule, SortsByTimeStableOnTies) {
  // File order: restore@300, outage@300, ramp@100, ramp@300. The schedule
  // must order by time but keep the file order within t=300 — the
  // documented tie-break that makes same-instant sequences deterministic.
  std::vector<ScenarioMutation> list;
  ScenarioMutation restore;
  restore.at_s = 300.0;
  restore.op = MutationOp::Restore;
  restore.cell = 1;
  list.push_back(restore);
  ScenarioMutation outage = restore;
  outage.op = MutationOp::Outage;
  list.push_back(outage);
  list.push_back(ramp(100.0, 2.0));
  list.push_back(ramp(300.0, 0.5));

  const std::vector<std::size_t> order = mutationSchedule(list);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 2u);  // t=100 first
  EXPECT_EQ(order[1], 0u);  // then the t=300 trio in file order
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 3u);
}

TEST(MutationSchedule, EmptyListYieldsEmptySchedule) {
  EXPECT_TRUE(mutationSchedule({}).empty());
}

TEST(MutationOpNames, CoverEveryOp) {
  EXPECT_EQ(mutationOpName(MutationOp::ArrivalScale), "arrival_scale");
  EXPECT_EQ(mutationOpName(MutationOp::Outage), "outage");
  EXPECT_EQ(mutationOpName(MutationOp::Restore), "restore");
  EXPECT_EQ(mutationOpName(MutationOp::Mix), "mix");
}

}  // namespace
}  // namespace facs::serve
