#include "scc/shadow_cluster.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cellular/policy_registry.hpp"

namespace facs::scc {
namespace {

using cellular::AdmissionContext;
using cellular::CallRequest;
using cellular::HexNetwork;
using cellular::ServiceClass;
using cellular::UserSnapshot;
using cellular::Vec2;

CallRequest makeRequest(cellular::CallId id, ServiceClass service,
                        Vec2 position, double speed, double angle,
                        cellular::CellId cell) {
  CallRequest r;
  r.call = id;
  r.user = id;
  r.service = service;
  r.demand_bu = cellular::profileFor(service).demand_bu;
  r.snapshot.position = position;
  r.snapshot.speed_kmh = speed;
  r.snapshot.angle_deg = angle;
  r.snapshot.distance_km = position.norm();
  r.target_cell = cell;
  return r;
}

TEST(MotionFromSnapshot, InvertsAngleConvention) {
  UserSnapshot s;
  s.position = {-2.0, 0.0};
  s.speed_kmh = 36.0;
  s.angle_deg = 0.0;  // heading straight at the station
  const mobility::MotionState m = motionFromSnapshot(s, {0.0, 0.0});
  EXPECT_NEAR(m.heading_deg, 0.0, 1e-9);  // bearing to origin is 0 (east)

  s.angle_deg = 90.0;  // station 90 deg right of travel -> heading north
  EXPECT_NEAR(motionFromSnapshot(s, {0.0, 0.0}).heading_deg, 90.0, 1e-9);

  s.angle_deg = 180.0;  // directly away -> heading west
  EXPECT_NEAR(std::abs(motionFromSnapshot(s, {0.0, 0.0}).heading_deg), 180.0,
              1e-9);
}

TEST(ShadowCluster, ConfigValidation) {
  const HexNetwork net{1};
  SccConfig bad;
  bad.intervals = 0;
  EXPECT_THROW(ShadowClusterController(net, bad), std::invalid_argument);
  bad = {};
  bad.interval_s = 0.0;
  EXPECT_THROW(ShadowClusterController(net, bad), std::invalid_argument);
  bad = {};
  bad.threshold = 0.0;
  EXPECT_THROW(ShadowClusterController(net, bad), std::invalid_argument);
  bad = {};
  bad.cluster_radius = -1;
  EXPECT_THROW(ShadowClusterController(net, bad), std::invalid_argument);
  bad = {};
  bad.sigma_base_km = 0.0;
  EXPECT_THROW(ShadowClusterController(net, bad), std::invalid_argument);
  bad = {};
  bad.mean_holding_s = 0.0;
  EXPECT_THROW(ShadowClusterController(net, bad), std::invalid_argument);
  bad = {};
  bad.rebuild_every = -1;
  EXPECT_THROW(ShadowClusterController(net, bad), std::invalid_argument);
}

TEST(ShadowCluster, EmptyNetworkAcceptsFirstCall) {
  const HexNetwork net{1};
  ShadowClusterController scc{net};
  const AdmissionContext ctx{net.station(0), 0.0};
  const auto d =
      scc.decide(makeRequest(1, ServiceClass::Video, {1.0, 0.0}, 50.0, 0.0, 0),
                 ctx);
  EXPECT_TRUE(d.accept);
  EXPECT_GT(d.score, 0.0);
}

TEST(ShadowCluster, TracksAdmittedCallsAndReleases) {
  const HexNetwork net{1};
  ShadowClusterController scc{net};
  const AdmissionContext ctx{net.station(0), 0.0};
  const CallRequest r =
      makeRequest(1, ServiceClass::Voice, {1.0, 0.0}, 50.0, 0.0, 0);
  EXPECT_EQ(scc.trackedCalls(), 0u);
  scc.onAdmitted(r, ctx);
  EXPECT_EQ(scc.trackedCalls(), 1u);
  scc.onReleased(r, ctx);
  EXPECT_EQ(scc.trackedCalls(), 0u);
}

TEST(ShadowCluster, ProjectedDemandDecaysOverHorizon) {
  const HexNetwork net{1};
  SccConfig cfg;
  cfg.intervals = 4;
  ShadowClusterController scc{net, cfg};
  const AdmissionContext ctx{net.station(0), 0.0};
  // A stationary video call in the centre cell.
  scc.onAdmitted(makeRequest(1, ServiceClass::Video, {0.5, 0.0}, 0.0, 0.0, 0),
                 ctx);
  const DemandProfile p = scc.projectedDemand(0);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_GT(p[0], 5.0);  // most of the 10 BU projected for the near future
  for (std::size_t k = 1; k < p.size(); ++k) {
    EXPECT_LT(p[k], p[k - 1]) << "no decay at interval " << k;
  }
}

TEST(ShadowCluster, MovingCallShadowsTheDownstreamCell) {
  const HexNetwork net{1, 10.0};
  SccConfig cfg;
  cfg.intervals = 3;
  cfg.interval_s = 120.0;
  cfg.mean_holding_s = 1e6;  // isolate the spatial projection
  ShadowClusterController scc{net, cfg};
  const AdmissionContext ctx{net.station(0), 0.0};

  // Fast call heading due east out of the centre cell. Ring cells are laid
  // out from the SW corner, so the eastern neighbour (axial +1,0) is id 3
  // and the western one (axial -1,0) is id 6.
  const cellular::CellId east = 3;
  const cellular::CellId west = 6;
  ASSERT_EQ(net.cell(east).coord, (cellular::HexCoord{1, 0}));
  ASSERT_EQ(net.cell(west).coord, (cellular::HexCoord{-1, 0}));
  CallRequest r = makeRequest(1, ServiceClass::Video, {5.0, 0.0}, 120.0,
                              /*angle=*/180.0, 0);  // away from BS0 = east
  scc.onAdmitted(r, ctx);

  const DemandProfile east_profile = scc.projectedDemand(east);
  const DemandProfile west_profile = scc.projectedDemand(west);
  // The eastern neighbour sees a growing shadow; the western one almost none.
  EXPECT_GT(east_profile.back(), west_profile.back() + 0.5);
}

TEST(ShadowCluster, SaturatedProjectionRejects) {
  const HexNetwork net{0};  // single 40 BU cell
  SccConfig cfg;
  cfg.cluster_radius = 0;
  cfg.mean_holding_s = 1e6;  // no decay: projections stay at full demand
  cfg.sigma_base_km = 2.0;
  ShadowClusterController scc{net, cfg};
  const AdmissionContext ctx{net.station(0), 0.0};

  // Fill the projection with four stationary 10-BU calls near the BS.
  for (cellular::CallId id = 1; id <= 4; ++id) {
    const auto r = makeRequest(id, ServiceClass::Video,
                               {0.1 * static_cast<double>(id), 0.0}, 0.0, 0.0, 0);
    EXPECT_TRUE(scc.decide(r, ctx).accept) << "call " << id;
    scc.onAdmitted(r, ctx);
  }
  // The fifth video call no longer fits the projected budget.
  const auto r5 =
      makeRequest(5, ServiceClass::Video, {0.5, 0.0}, 0.0, 0.0, 0);
  EXPECT_FALSE(scc.decide(r5, ctx).accept);
}

TEST(ShadowCluster, ThresholdScalesBudget) {
  const HexNetwork net{0};
  SccConfig tight;
  tight.cluster_radius = 0;
  tight.mean_holding_s = 1e6;
  tight.threshold = 0.45;  // only 18 BU of projected budget
  ShadowClusterController scc{net, tight};
  const AdmissionContext ctx{net.station(0), 0.0};

  const auto r1 = makeRequest(1, ServiceClass::Video, {0.2, 0.0}, 0.0, 0.0, 0);
  EXPECT_TRUE(scc.decide(r1, ctx).accept);
  scc.onAdmitted(r1, ctx);
  const auto r2 = makeRequest(2, ServiceClass::Video, {0.3, 0.0}, 0.0, 0.0, 0);
  EXPECT_FALSE(scc.decide(r2, ctx).accept);  // 20 BU budget already shadowed
}

TEST(ShadowCluster, HardCapacityStillEnforced) {
  HexNetwork net{0};
  SccConfig cfg;
  cfg.cluster_radius = 0;
  cfg.mean_holding_s = 1.0;  // decays so fast the projection sees room
  cfg.interval_s = 60.0;
  ShadowClusterController scc{net, cfg};
  net.station(0).allocate(99, 35, true);
  const AdmissionContext ctx{net.station(0), 0.0};
  const auto r = makeRequest(1, ServiceClass::Video, {0.5, 0.0}, 0.0, 0.0, 0);
  // Projection may look fine, but only 5 BU are actually free.
  EXPECT_FALSE(scc.decide(r, ctx).accept);
}

TEST(ShadowCluster, NameIsScc) {
  const HexNetwork net{0};
  ShadowClusterController scc{net};
  EXPECT_EQ(scc.name(), "SCC");
}

// ---------------------------------------------------------------------------
// Incremental demand cache: the per-(cell, interval) accumulators updated on
// arrival/departure/handoff must track the set of live shadows exactly.
// ---------------------------------------------------------------------------

TEST(ShadowCluster, DemandCacheDrainsToZeroOnRelease) {
  const HexNetwork net{1};
  ShadowClusterController scc{net};
  const AdmissionContext ctx{net.station(0), 0.0};
  std::vector<CallRequest> admitted;
  for (cellular::CallId id = 1; id <= 8; ++id) {
    const auto r = makeRequest(id, ServiceClass::Voice,
                               {0.5 * static_cast<double>(id), 1.0}, 40.0,
                               30.0, 0);
    scc.onAdmitted(r, ctx);
    admitted.push_back(r);
  }
  for (const CallRequest& r : admitted) scc.onReleased(r, ctx);
  EXPECT_EQ(scc.trackedCalls(), 0u);
  for (const cellular::Cell& cell : net.cells()) {
    for (const double d : scc.projectedDemand(cell.id)) {
      // Floating subtraction of the exact contributions that were added:
      // residue is rounding noise (a few ULPs of the peak sum), never
      // leaked demand. Long-lived churn is bounded exactly by the periodic
      // rebuild (PeriodicRebuildZeroesChurnResidue below).
      EXPECT_NEAR(d, 0.0, 1e-12) << "cell " << cell.id;
    }
  }
}

TEST(ShadowCluster, PeriodicRebuildZeroesChurnResidue) {
  // Long churn: 512 admit/release cycles = 1024 shadow updates. The
  // subtract-on-release residue (~1e-12 per cycle) would otherwise
  // accumulate without bound; with rebuild_every = 64 the final release
  // lands on a rebuild boundary, so the accumulators are recomputed from
  // the now-empty shadow set — EXACTLY zero, not merely small.
  const HexNetwork net{1};
  SccConfig cfg;
  cfg.rebuild_every = 64;
  ShadowClusterController scc{net, cfg};
  const AdmissionContext ctx{net.station(0), 0.0};
  for (int cycle = 0; cycle < 512; ++cycle) {
    const auto r = makeRequest(
        1 + static_cast<cellular::CallId>(cycle % 7), ServiceClass::Video,
        {0.5 + 0.01 * (cycle % 100), 1.0 - 0.02 * (cycle % 50)},
        10.0 + (cycle % 60), static_cast<double>((cycle * 37) % 360 - 180),
        0);
    scc.onAdmitted(r, ctx);
    scc.onReleased(r, ctx);
  }
  EXPECT_EQ(scc.trackedCalls(), 0u);
  for (const cellular::Cell& cell : net.cells()) {
    for (const double d : scc.projectedDemand(cell.id)) {
      EXPECT_EQ(d, 0.0) << "cell " << cell.id;
    }
  }
}

TEST(ShadowCluster, RebuildPreservesLiveShadows) {
  // A rebuild must be invisible to decisions: accumulators recomputed from
  // the live set match the incrementally-maintained ones to rounding
  // noise, and keepers' demand survives the churn around them.
  const HexNetwork net{1};
  SccConfig with_rebuild;
  with_rebuild.rebuild_every = 16;
  SccConfig without_rebuild;
  without_rebuild.rebuild_every = 0;
  ShadowClusterController rebuilt{net, with_rebuild};
  ShadowClusterController incremental{net, without_rebuild};
  const AdmissionContext ctx{net.station(0), 0.0};

  const auto keeper =
      makeRequest(1000, ServiceClass::Video, {2.0, 0.0}, 60.0, 45.0, 0);
  rebuilt.onAdmitted(keeper, ctx);
  incremental.onAdmitted(keeper, ctx);
  for (int cycle = 0; cycle < 40; ++cycle) {  // crosses several boundaries
    const auto churn = makeRequest(1 + static_cast<cellular::CallId>(cycle),
                                   ServiceClass::Voice, {1.0, 1.0}, 20.0,
                                   0.0, 0);
    rebuilt.onAdmitted(churn, ctx);
    incremental.onAdmitted(churn, ctx);
    rebuilt.onReleased(churn, ctx);
    incremental.onReleased(churn, ctx);
  }
  EXPECT_EQ(rebuilt.trackedCalls(), 1u);
  for (const cellular::Cell& cell : net.cells()) {
    const DemandProfile a = rebuilt.projectedDemand(cell.id);
    const DemandProfile b = incremental.projectedDemand(cell.id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-9) << "cell " << cell.id << " k " << k;
    }
  }
}

TEST(ShadowCluster, DemandCacheMatchesFreshControllerAfterChurn) {
  // Admit/release churn plus a handoff refresh must leave the accumulators
  // where a fresh controller tracking only the survivors would put them.
  const HexNetwork net{1};
  ShadowClusterController churned{net};
  const AdmissionContext ctx0{net.station(0), 0.0};

  const auto keeper =
      makeRequest(1, ServiceClass::Video, {2.0, 0.0}, 60.0, 45.0, 0);
  const auto churn =
      makeRequest(2, ServiceClass::Voice, {1.0, 1.0}, 20.0, 0.0, 0);
  churned.onAdmitted(keeper, ctx0);
  churned.onAdmitted(churn, ctx0);
  churned.onReleased(churn, ctx0);
  // Handoff: the same call re-admitted from a new cell with new kinematics
  // replaces its shadow instead of stacking a second one.
  auto moved = makeRequest(1, ServiceClass::Video, {4.0, 2.0}, 60.0, -30.0, 3);
  moved.is_handoff = true;
  churned.onAdmitted(moved, AdmissionContext{net.station(3), 90.0});
  EXPECT_EQ(churned.trackedCalls(), 1u);

  ShadowClusterController fresh{net};
  fresh.onAdmitted(moved, AdmissionContext{net.station(3), 90.0});

  for (const cellular::Cell& cell : net.cells()) {
    const DemandProfile a = churned.projectedDemand(cell.id);
    const DemandProfile b = fresh.projectedDemand(cell.id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-9) << "cell " << cell.id << " k " << k;
    }
  }
}

TEST(ShadowCluster, DecisionsMatchCacheState) {
  // decide() must read the same demand the cache reports: fill a tight
  // single-cell controller to its threshold and verify the flip point
  // coincides with the accumulated profile crossing the budget.
  const HexNetwork net{0};
  SccConfig cfg;
  cfg.cluster_radius = 0;
  cfg.mean_holding_s = 1e6;
  cfg.sigma_base_km = 2.0;
  ShadowClusterController scc{net, cfg};
  const AdmissionContext ctx{net.station(0), 0.0};
  cellular::CallId id = 1;
  while (scc.decide(makeRequest(id, ServiceClass::Video, {0.2, 0.0}, 0.0, 0.0,
                                0),
                    ctx)
             .accept) {
    scc.onAdmitted(makeRequest(id, ServiceClass::Video, {0.2, 0.0}, 0.0, 0.0,
                               0),
                   ctx);
    ++id;
    ASSERT_LT(id, 100) << "SCC never saturated";
  }
  const double budget =
      cfg.threshold * static_cast<double>(net.station(0).capacityBu());
  const DemandProfile profile = scc.projectedDemand(0);
  // The rejection happened because one more 10 BU shadow would overflow:
  // the cached near-term demand must already sit within 10 BU of budget.
  EXPECT_GT(profile[0] + 10.0, budget);
  EXPECT_LE(profile[0], budget + 1e-9);
}

TEST(ShadowCluster, BoundedReachLocalizesTheAccounting) {
  // rings = 2: the disk spans hex distance 2 from the centre. reach = 1
  // keeps a centre-anchored shadow out of ring-2 accumulators entirely,
  // while the unbounded controller leaks its Gaussian tail everywhere.
  const HexNetwork net{2};
  SccConfig bounded_cfg;
  bounded_cfg.reach = 1;
  ShadowClusterController bounded{net, bounded_cfg};
  ShadowClusterController unbounded{net};
  const AdmissionContext ctx{net.station(0), 0.0};
  const CallRequest r =
      makeRequest(1, ServiceClass::Video, {0.5, 0.0}, 0.0, 0.0, 0);
  bounded.onAdmitted(r, ctx);
  unbounded.onAdmitted(r, ctx);

  // Ring-2 cells (ids 7..18 in the spiral layout) stay untouched under the
  // bounded reach; the unbounded accumulation reaches them.
  const DemandProfile far_bounded = bounded.projectedDemand(8);
  const DemandProfile far_unbounded = unbounded.projectedDemand(8);
  for (const double d : far_bounded) EXPECT_EQ(d, 0.0);
  EXPECT_GT(far_unbounded[0], 0.0);

  // Inside the footprint both controllers account the identical value —
  // bounding the reach truncates, it does not redistribute.
  EXPECT_EQ(bounded.projectedDemand(0)[0], unbounded.projectedDemand(0)[0]);
  EXPECT_EQ(bounded.projectedDemand(1)[0], unbounded.projectedDemand(1)[0]);

  // Releases retract through the same footprint: everything returns to
  // exactly zero.
  bounded.onReleased(r, ctx);
  for (cellular::CellId c = 0; c < net.cellCount(); ++c) {
    for (const double d : bounded.projectedDemand(c)) EXPECT_EQ(d, 0.0);
  }
}

TEST(ShadowCluster, ReachSpanningTheDiskMatchesUnbounded) {
  // reach >= the disk diameter touches every cell, so the bounded and
  // unbounded controllers are the same model bit for bit.
  const HexNetwork net{1};
  SccConfig wide_cfg;
  wide_cfg.reach = 4;
  ShadowClusterController wide{net, wide_cfg};
  ShadowClusterController unbounded{net};
  const AdmissionContext ctx{net.station(0), 0.0};
  for (int i = 1; i <= 6; ++i) {
    const CallRequest r = makeRequest(
        static_cast<cellular::CallId>(i), ServiceClass::Voice,
        {0.3 * i, 0.1 * i}, 20.0 * i, 15.0 * i, 0);
    wide.onAdmitted(r, ctx);
    unbounded.onAdmitted(r, ctx);
  }
  for (cellular::CellId c = 0; c < net.cellCount(); ++c) {
    const DemandProfile a = wide.projectedDemand(c);
    const DemandProfile b = unbounded.projectedDemand(c);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]) << "cell " << c << " interval " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// GroupLocal protocol: per-group stores, deferred cross-group deltas, the
// barrier drain, repartition re-keying and the reach-sizing audit.
// ---------------------------------------------------------------------------

TEST(ShadowCluster, CommitScopeFollowsReach) {
  const HexNetwork net{1};
  EXPECT_EQ(ShadowClusterController(net).commitScope(),
            cellular::CommitScope::Global);
  SccConfig bounded;
  bounded.reach = 2;
  EXPECT_EQ(ShadowClusterController(net, bounded).commitScope(),
            cellular::CommitScope::GroupLocal);
}

TEST(ShadowCluster, GroupedDemandMatchesUngroupedAfterTheBarrier) {
  // Same shadows, two accounting modes: the grouped controller applies
  // own-group rows live and folds cross-group rows at the barrier; once
  // drained, its accumulators must agree with the ungrouped controller's
  // (to float re-association noise — the fold changes the addition order,
  // never the terms).
  const HexNetwork net{2};  // 19 cells
  SccConfig cfg;
  cfg.reach = 2;
  ShadowClusterController grouped{net, cfg};
  ShadowClusterController ungrouped{net, cfg};
  grouped.onPartitionChanged(cellular::CellGroupPartition{net, 3});

  std::uint64_t expected_deltas = 0;
  for (cellular::CallId id = 1; id <= 6; ++id) {
    const cellular::CellId anchor = static_cast<cellular::CellId>(3 * id % 19);
    const auto r = makeRequest(id, ServiceClass::Video,
                               net.cell(anchor).center + Vec2{0.3, -0.2},
                               30.0 + 5.0 * static_cast<double>(id),
                               40.0 * static_cast<double>(id), anchor);
    grouped.onAdmitted(r, AdmissionContext{net.station(anchor), 0.0});
    ungrouped.onAdmitted(r, AdmissionContext{net.station(anchor), 0.0});
    ++expected_deltas;  // at least some of each footprint crosses a border
  }
  ASSERT_GE(expected_deltas, 1u);
  const cellular::BarrierDrainStats stats = grouped.onCommitBarrier(0.0);
  EXPECT_GT(stats.deltas_applied, 0u);
  EXPECT_EQ(stats.shadows_migrated, 0u);
  EXPECT_EQ(grouped.trackedCalls(), ungrouped.trackedCalls());
  for (const cellular::Cell& cell : net.cells()) {
    const DemandProfile a = grouped.projectedDemand(cell.id);
    const DemandProfile b = ungrouped.projectedDemand(cell.id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-9) << "cell " << cell.id << " k " << k;
    }
  }
}

TEST(ShadowCluster, CrossGroupHandoffMigratesAtTheBarrier) {
  // A handoff whose refresh crosses a group boundary casts the new shadow
  // immediately but must leave the stale record for the barrier: the lane
  // acting for the target group may not touch a foreign store. After the
  // drain exactly one record remains and the accumulators match a fresh
  // controller tracking only the moved shadow.
  const HexNetwork net{2};
  SccConfig cfg;
  cfg.reach = 1;
  ShadowClusterController scc{net, cfg};
  const cellular::CellGroupPartition part{net, 3};
  scc.onPartitionChanged(part);

  const cellular::CellId from = 0;
  cellular::CellId to = cellular::kInvalidCell;
  for (const cellular::Cell& cell : net.cells()) {
    if (part.groupOf(cell.id) != part.groupOf(from)) {
      to = cell.id;
      break;
    }
  }
  ASSERT_NE(to, cellular::kInvalidCell);

  const auto first =
      makeRequest(7, ServiceClass::Video, net.cell(from).center, 60.0, 20.0,
                  from);
  scc.onAdmitted(first, AdmissionContext{net.station(from), 0.0});
  (void)scc.onCommitBarrier(0.0);

  auto moved = makeRequest(7, ServiceClass::Video, net.cell(to).center, 60.0,
                           -45.0, to);
  moved.is_handoff = true;
  scc.onAdmitted(moved, AdmissionContext{net.station(to), 30.0});
  // Until the barrier both records exist: the new shadow plus the stale
  // one awaiting its deterministic retraction.
  EXPECT_EQ(scc.trackedCalls(), 2u);
  const cellular::BarrierDrainStats stats = scc.onCommitBarrier(30.0);
  EXPECT_EQ(stats.shadows_migrated, 1u);
  EXPECT_EQ(scc.trackedCalls(), 1u);

  ShadowClusterController fresh{net, cfg};
  fresh.onAdmitted(moved, AdmissionContext{net.station(to), 30.0});
  for (const cellular::Cell& cell : net.cells()) {
    const DemandProfile a = scc.projectedDemand(cell.id);
    const DemandProfile b = fresh.projectedDemand(cell.id);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-9) << "cell " << cell.id << " k " << k;
    }
  }
}

TEST(ShadowCluster, RepartitionConservesDemandExactly) {
  // Re-keying the stores moves RECORDS, never float sums: projected demand
  // before and after a boundary move must be bit-identical, and every
  // tracked call must survive the move.
  const HexNetwork net{2};
  SccConfig cfg;
  cfg.reach = 1;
  ShadowClusterController scc{net, cfg};
  scc.onPartitionChanged(cellular::CellGroupPartition{net, 2});
  for (cellular::CallId id = 1; id <= 9; ++id) {
    const cellular::CellId anchor = static_cast<cellular::CellId>(2 * id);
    const auto r = makeRequest(id, ServiceClass::Voice,
                               net.cell(anchor).center + Vec2{0.2, 0.1}, 25.0,
                               15.0 * static_cast<double>(id), anchor);
    scc.onAdmitted(r, AdmissionContext{net.station(anchor), 0.0});
  }
  (void)scc.onCommitBarrier(0.0);

  std::vector<DemandProfile> before;
  for (const cellular::Cell& cell : net.cells()) {
    before.push_back(scc.projectedDemand(cell.id));
  }
  const std::size_t tracked = scc.trackedCalls();

  // 2 -> 3 groups AND 3 -> back to 2: both directions must conserve.
  scc.onPartitionChanged(cellular::CellGroupPartition{net, 3});
  for (const cellular::Cell& cell : net.cells()) {
    const DemandProfile after = scc.projectedDemand(cell.id);
    for (std::size_t k = 0; k < after.size(); ++k) {
      EXPECT_EQ(after[k], before[static_cast<std::size_t>(cell.id)][k])
          << "cell " << cell.id << " k " << k;
    }
  }
  EXPECT_EQ(scc.trackedCalls(), tracked);
  scc.onPartitionChanged(cellular::CellGroupPartition{net, 2});
  for (const cellular::Cell& cell : net.cells()) {
    const DemandProfile after = scc.projectedDemand(cell.id);
    for (std::size_t k = 0; k < after.size(); ++k) {
      EXPECT_EQ(after[k], before[static_cast<std::size_t>(cell.id)][k])
          << "cell " << cell.id << " k " << k;
    }
  }
  EXPECT_EQ(scc.trackedCalls(), tracked);
}

TEST(ShadowCluster, GroupedRebuildPreservesLiveShadows) {
  // The per-group exact rebuild (barrier context) must be invisible, like
  // its ungrouped counterpart: a grouped controller with aggressive
  // rebuilds agrees with one that never rebuilds, to rounding noise.
  const HexNetwork net{2};
  SccConfig with_rebuild;
  with_rebuild.reach = 1;
  with_rebuild.rebuild_every = 8;
  SccConfig without_rebuild = with_rebuild;
  without_rebuild.rebuild_every = 0;
  ShadowClusterController rebuilt{net, with_rebuild};
  ShadowClusterController incremental{net, without_rebuild};
  const cellular::CellGroupPartition part{net, 3};
  rebuilt.onPartitionChanged(part);
  incremental.onPartitionChanged(part);

  const auto keeper =
      makeRequest(1000, ServiceClass::Video, net.cell(4).center, 50.0, 70.0,
                  4);
  rebuilt.onAdmitted(keeper, AdmissionContext{net.station(4), 0.0});
  incremental.onAdmitted(keeper, AdmissionContext{net.station(4), 0.0});
  for (int cycle = 0; cycle < 30; ++cycle) {
    const cellular::CellId anchor = static_cast<cellular::CellId>(cycle % 19);
    const auto churn = makeRequest(1 + static_cast<cellular::CallId>(cycle),
                                   ServiceClass::Voice,
                                   net.cell(anchor).center + Vec2{0.1, 0.1},
                                   20.0, 0.0, anchor);
    const AdmissionContext ctx{net.station(anchor), 1.0 * cycle};
    rebuilt.onAdmitted(churn, ctx);
    incremental.onAdmitted(churn, ctx);
    rebuilt.onReleased(churn, ctx);
    incremental.onReleased(churn, ctx);
    (void)rebuilt.onCommitBarrier(1.0 * cycle);
    (void)incremental.onCommitBarrier(1.0 * cycle);
  }
  EXPECT_EQ(rebuilt.trackedCalls(), 1u);
  for (const cellular::Cell& cell : net.cells()) {
    const DemandProfile a = rebuilt.projectedDemand(cell.id);
    const DemandProfile b = incremental.projectedDemand(cell.id);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-9) << "cell " << cell.id << " k " << k;
    }
  }
}

TEST(ShadowCluster, AuditWorkloadFlagsAnUndersizedReach) {
  const HexNetwork net{1, 2.0};
  cellular::WorkloadEnvelope fast;
  fast.v_max_kmh = 130.0;
  fast.cell_radius_km = 2.0;
  // 130 km/h over the default 90 s horizon is ~3.25 km — within one hex
  // pitch (sqrt(3) x 2 km), so the required reach is 2: reach=1 is
  // undersized, reach=2 is sound.
  SccConfig small;
  small.reach = 1;
  const std::string warning =
      ShadowClusterController(net, small).auditWorkload(fast);
  EXPECT_NE(warning.find("reach=1"), std::string::npos) << warning;
  EXPECT_NE(warning.find(">= 2"), std::string::npos) << warning;
  SccConfig sound;
  sound.reach = 2;
  EXPECT_TRUE(ShadowClusterController(net, sound).auditWorkload(fast).empty());
  // Unbounded accounting has no footprint to undersize; an empty envelope
  // gives no basis to audit.
  EXPECT_TRUE(ShadowClusterController(net).auditWorkload(fast).empty());
  EXPECT_TRUE(ShadowClusterController(net, small)
                  .auditWorkload(cellular::WorkloadEnvelope{})
                  .empty());
}

TEST(ShadowCluster, ReachSpecKeyAndValidation) {
  EXPECT_THROW(
      (void)ShadowClusterController(HexNetwork{1}, [] {
        SccConfig c;
        c.reach = -1;
        return c;
      }()),
      std::invalid_argument);
  // The registry spec wires reach through, and rejects bad values at
  // parse time.
  const auto& runtime = cellular::PolicyRuntime::defaultRuntime();
  const HexNetwork net{1};
  auto controller = runtime.makeFactory("scc:reach=2")(net);
  EXPECT_EQ(controller->name(), "SCC");
  EXPECT_THROW((void)runtime.makeFactory("scc:reach=-3"),
               cellular::PolicySpecError);
}

}  // namespace
}  // namespace facs::scc
