#include "cac/predictive_reservation.hpp"

#include <gtest/gtest.h>

namespace facs::cac {
namespace {

using cellular::AdmissionContext;
using cellular::CallRequest;
using cellular::CellId;
using cellular::HexNetwork;
using cellular::ServiceClass;
using cellular::Vec2;

CallRequest request(cellular::CallId id, ServiceClass service, Vec2 position,
                    double speed, double angle, CellId cell,
                    bool handoff = false) {
  CallRequest r;
  r.call = id;
  r.service = service;
  r.demand_bu = cellular::profileFor(service).demand_bu;
  r.snapshot.position = position;
  r.snapshot.speed_kmh = speed;
  r.snapshot.angle_deg = angle;
  r.snapshot.distance_km = position.norm();
  r.target_cell = cell;
  r.is_handoff = handoff;
  return r;
}

TEST(PredictiveReservation, ValidatesConfig) {
  const HexNetwork net{1};
  PredictiveReservationConfig bad;
  bad.reservation_fraction = 1.5;
  EXPECT_THROW(PredictiveReservationController(net, bad),
               std::invalid_argument);
  bad = {};
  bad.min_speed_kmh = -1.0;
  EXPECT_THROW(PredictiveReservationController(net, bad),
               std::invalid_argument);
}

TEST(PredictiveReservation, PredictsDownstreamCell) {
  const HexNetwork net{1, 10.0};
  PredictiveReservationController ctl{net};
  // User in the centre cell heading due east (angle 180: away from BS0
  // toward the eastern neighbour, cell id 3 at axial +1,0).
  cellular::UserSnapshot east_bound;
  east_bound.position = {5.0, 0.0};
  east_bound.speed_kmh = 100.0;
  east_bound.angle_deg = 180.0;
  const auto next = ctl.predictNextCell(east_bound, 0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 3u);

  // A slow walker gets no reservation.
  east_bound.speed_kmh = 4.0;
  EXPECT_FALSE(ctl.predictNextCell(east_bound, 0).has_value());

  // Heading straight at the BS, the user flies through the cell and is
  // predicted to emerge in the western neighbour (id 6) — pass-through is
  // a real handoff and deserves its reservation.
  cellular::UserSnapshot inbound;
  inbound.position = {5.0, 0.0};
  inbound.speed_kmh = 100.0;
  inbound.angle_deg = 0.0;
  const auto through = ctl.predictNextCell(inbound, 0);
  ASSERT_TRUE(through.has_value());
  EXPECT_EQ(*through, 6u);

  // A user in the eastern border cell heading further east leaves
  // coverage before reaching any cell: no reservation target exists.
  cellular::UserSnapshot outbound;
  outbound.position = net.cell(3).center + Vec2{2.0, 0.0};
  outbound.speed_kmh = 100.0;
  outbound.angle_deg = 180.0;  // away from BS3 = further east
  EXPECT_FALSE(ctl.predictNextCell(outbound, 3).has_value());
}

TEST(PredictiveReservation, AdmissionCreatesAndReleasesReservation) {
  const HexNetwork net{1, 10.0};
  PredictiveReservationController ctl{net};
  const AdmissionContext ctx{net.station(0), 0.0};
  const CallRequest r =
      request(1, ServiceClass::Video, {5.0, 0.0}, 100.0, 180.0, 0);
  EXPECT_DOUBLE_EQ(ctl.reservedBu(3), 0.0);
  ctl.onAdmitted(r, ctx);
  EXPECT_DOUBLE_EQ(ctl.reservedBu(3), 5.0);  // 0.5 x 10 BU
  ctl.onReleased(r, ctx);
  EXPECT_DOUBLE_EQ(ctl.reservedBu(3), 0.0);
}

TEST(PredictiveReservation, NewCallsBlockedByReservations) {
  HexNetwork net{1, 10.0};
  PredictiveReservationController ctl{net};
  // Six fast eastbound video calls in the centre reserve 6 x 5 = 30 BU in
  // cell 3.
  for (cellular::CallId id = 1; id <= 6; ++id) {
    ctl.onAdmitted(request(id, ServiceClass::Video, {5.0, 0.0}, 100.0, 180.0,
                           0),
                   {net.station(0), 0.0});
  }
  EXPECT_DOUBLE_EQ(ctl.reservedBu(3), 30.0);

  // Cell 3 already carries 5 BU: 35 free, but only 5 usable by new calls.
  net.station(3).allocate(99, 5, true);
  const AdmissionContext ctx3{net.station(3), 0.0};
  const auto video =
      request(50, ServiceClass::Video, net.cell(3).center, 4.0, 0.0, 3);
  const auto voice =
      request(51, ServiceClass::Voice, net.cell(3).center, 4.0, 0.0, 3);
  EXPECT_FALSE(ctl.decide(video, ctx3).accept);  // 10 > 5 usable
  EXPECT_TRUE(ctl.decide(voice, ctx3).accept);   // 5 <= 5 usable

  // A handoff may consume the reserved headroom.
  auto ho = video;
  ho.is_handoff = true;
  EXPECT_TRUE(ctl.decide(ho, ctx3).accept);
}

TEST(PredictiveReservation, HandoffRefreshesReservation) {
  const HexNetwork net{2, 10.0};
  PredictiveReservationController ctl{net};
  CallRequest r =
      request(1, ServiceClass::Voice, {5.0, 0.0}, 100.0, 180.0, 0);
  ctl.onAdmitted(r, {net.station(0), 0.0});
  const double before = ctl.reservedBu(3);
  EXPECT_GT(before, 0.0);

  // The call hands into cell 3 and keeps heading east: reservation moves
  // out of cell 3 into the next ring.
  r.is_handoff = true;
  r.target_cell = 3;
  r.snapshot.position = net.cell(3).center + cellular::Vec2{2.0, 0.0};
  r.snapshot.angle_deg = 180.0;
  ctl.onAdmitted(r, {net.station(3), 0.0});
  EXPECT_DOUBLE_EQ(ctl.reservedBu(3), 0.0);
}

TEST(PredictiveReservation, ZeroFractionDegeneratesToCompleteSharing) {
  const HexNetwork net{1};
  PredictiveReservationConfig cfg;
  cfg.reservation_fraction = 0.0;
  PredictiveReservationController ctl{net, cfg};
  ctl.onAdmitted(request(1, ServiceClass::Video, {5.0, 0.0}, 100.0, 180.0, 0),
                 {net.station(0), 0.0});
  EXPECT_DOUBLE_EQ(ctl.reservedBu(3), 0.0);
  const AdmissionContext ctx{net.station(0), 0.0};
  EXPECT_TRUE(
      ctl.decide(request(2, ServiceClass::Video, {1.0, 0.0}, 4.0, 0.0, 0), ctx)
          .accept);
}

TEST(PredictiveReservation, Name) {
  const HexNetwork net{0};
  PredictiveReservationController ctl{net};
  EXPECT_EQ(ctl.name(), "PredictiveRsv");
}

}  // namespace
}  // namespace facs::cac
