#include "cac/baselines.hpp"

#include <gtest/gtest.h>

namespace facs::cac {
namespace {

using cellular::AdmissionContext;
using cellular::BaseStation;
using cellular::CallRequest;
using cellular::ServiceClass;

CallRequest request(ServiceClass service, bool handoff = false,
                    int priority = 0) {
  CallRequest r;
  r.call = 1;
  r.service = service;
  r.demand_bu = cellular::profileFor(service).demand_bu;
  r.is_handoff = handoff;
  r.priority = priority;
  return r;
}

TEST(CompleteSharing, AdmitsWheneverItFits) {
  CompleteSharingController cs;
  BaseStation bs{0, 40};
  bs.allocate(99, 31, true);  // 9 BU free
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_TRUE(cs.decide(request(ServiceClass::Text), ctx).accept);
  EXPECT_TRUE(cs.decide(request(ServiceClass::Voice), ctx).accept);
  EXPECT_FALSE(cs.decide(request(ServiceClass::Video), ctx).accept);
  EXPECT_EQ(cs.name(), "CS");
}

TEST(CompleteSharing, ExactFitAdmitted) {
  CompleteSharingController cs;
  BaseStation bs{0, 40};
  bs.allocate(99, 30, true);  // exactly 10 free
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_TRUE(cs.decide(request(ServiceClass::Video), ctx).accept);
}

TEST(GuardChannel, ValidatesGuard) {
  EXPECT_THROW(GuardChannelController(-1), std::invalid_argument);
  EXPECT_NO_THROW(GuardChannelController(0));
}

TEST(GuardChannel, NewCallsSeeReducedCapacity) {
  GuardChannelController gc{8};
  BaseStation bs{0, 40};
  bs.allocate(99, 25, true);  // 15 free; new calls may use 15 - 8 = 7
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_TRUE(gc.decide(request(ServiceClass::Voice), ctx).accept);   // 5 <= 7
  EXPECT_FALSE(gc.decide(request(ServiceClass::Video), ctx).accept);  // 10 > 7
  EXPECT_EQ(gc.guardBu(), 8);
}

TEST(GuardChannel, HandoffsUseTheGuard) {
  GuardChannelController gc{8};
  BaseStation bs{0, 40};
  bs.allocate(99, 25, true);
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_TRUE(gc.decide(request(ServiceClass::Video, /*handoff=*/true), ctx)
                  .accept);  // 10 <= 15
}

TEST(GuardChannel, PriorityCallsUseTheGuard) {
  GuardChannelController gc{8};
  BaseStation bs{0, 40};
  bs.allocate(99, 25, true);
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_TRUE(
      gc.decide(request(ServiceClass::Video, false, /*priority=*/1), ctx)
          .accept);
}

TEST(GuardChannel, ZeroGuardEqualsCompleteSharing) {
  GuardChannelController gc{0};
  CompleteSharingController cs;
  BaseStation bs{0, 40};
  bs.allocate(99, 31, true);
  const AdmissionContext ctx{bs, 0.0};
  for (const auto s :
       {ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video}) {
    EXPECT_EQ(gc.decide(request(s), ctx).accept,
              cs.decide(request(s), ctx).accept);
  }
}

TEST(MultiThreshold, ValidatesThresholds) {
  const std::array<cellular::BandwidthUnits, cellular::kServiceClassCount>
      bad{-1, 0, 0};
  EXPECT_THROW(MultiThresholdController{bad}, std::invalid_argument);
}

TEST(MultiThreshold, PerClassCutoffs) {
  // Text admitted up to 38 BU occupied, voice up to 30, video up to 20.
  MultiThresholdController mt{{38, 30, 20}};
  BaseStation bs{0, 40};
  bs.allocate(99, 25, true);  // occupied 25
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_TRUE(mt.decide(request(ServiceClass::Text), ctx).accept);
  EXPECT_TRUE(mt.decide(request(ServiceClass::Voice), ctx).accept);
  EXPECT_FALSE(mt.decide(request(ServiceClass::Video), ctx).accept);
  EXPECT_EQ(mt.threshold(ServiceClass::Video), 20);
}

TEST(MultiThreshold, StillRequiresPhysicalFit) {
  MultiThresholdController mt{{40, 40, 40}};
  BaseStation bs{0, 40};
  bs.allocate(99, 35, true);  // 5 free; thresholds allow everything
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_TRUE(mt.decide(request(ServiceClass::Voice), ctx).accept);
  EXPECT_FALSE(mt.decide(request(ServiceClass::Video), ctx).accept);
}

TEST(Baselines, ScoresAreSigned) {
  CompleteSharingController cs;
  BaseStation bs{0, 40};
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_GT(cs.decide(request(ServiceClass::Text), ctx).score, 0.0);
  BaseStation full{1, 40};
  full.allocate(99, 40, true);
  const AdmissionContext full_ctx{full, 0.0};
  EXPECT_LT(cs.decide(request(ServiceClass::Text), full_ctx).score, 0.0);
}

}  // namespace
}  // namespace facs::cac
