#include "cac/sir_controller.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cellular/network.hpp"
#include "cellular/policy_registry.hpp"

namespace facs::cac {
namespace {

using cellular::AdmissionContext;
using cellular::CallRequest;
using cellular::HexNetwork;
using cellular::RadioModel;
using cellular::ServiceClass;
using cellular::Vec2;

CallRequest request(ServiceClass service, Vec2 position) {
  CallRequest r;
  r.call = 1;
  r.service = service;
  r.demand_bu = cellular::profileFor(service).demand_bu;
  r.snapshot.position = position;
  r.target_cell = 0;
  return r;
}

TEST(SirController, QuietNetworkAdmitsEveryone) {
  const HexNetwork net{1};
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0};
  for (const auto s :
       {ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video}) {
    EXPECT_TRUE(sir.decide(request(s, {1.0, 0.0}), ctx).accept)
        << toString(s);
  }
  EXPECT_EQ(sir.name(), "SIR");
}

TEST(SirController, InterferedEdgeRejectsVideoFirst) {
  HexNetwork net{1};
  // Load every neighbour fully: worst-case co-channel interference.
  for (cellular::CellId id = 1; id < 7; ++id) {
    net.station(id).allocate(id, 40, true);
  }
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0};

  // At the cell edge the SINR is low: the video threshold (5 dB) fails
  // before the text threshold (-3 dB).
  const Vec2 edge{8.5, 0.0};
  const auto video = sir.decide(request(ServiceClass::Video, edge), ctx);
  const auto text = sir.decide(request(ServiceClass::Text, edge), ctx);
  EXPECT_FALSE(video.accept);
  EXPECT_TRUE(text.accept);
  EXPECT_LT(video.score, text.score);
}

TEST(SirController, CellCentreSurvivesInterference) {
  HexNetwork net{1};
  for (cellular::CellId id = 1; id < 7; ++id) {
    net.station(id).allocate(id, 40, true);
  }
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0};
  EXPECT_TRUE(
      sir.decide(request(ServiceClass::Video, {0.5, 0.0}), ctx).accept);
}

TEST(SirController, StillRequiresBandwidth) {
  HexNetwork net{1};
  net.station(0).allocate(99, 35, true);  // 5 BU free
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0, /*explain=*/true};
  const auto d = sir.decide(request(ServiceClass::Video, {0.5, 0.0}), ctx);
  EXPECT_FALSE(d.accept);  // SINR fine, bandwidth not
  EXPECT_EQ(d.reason, cellular::ReasonCode::NoCapacity);
  EXPECT_NE(d.rationale.find("no free BU"), std::string::npos);
}

TEST(SirController, CustomThresholds) {
  const HexNetwork net{1};
  const RadioModel radio{net};
  SirThresholds strict;
  strict.min_sinr_db = {60.0, 60.0, 60.0};  // unreachably clean
  SirController sir{radio, strict};
  const AdmissionContext ctx{net.station(0), 0.0};
  EXPECT_FALSE(sir.decide(request(ServiceClass::Text, {1.0, 0.0}), ctx).accept);
  EXPECT_DOUBLE_EQ(sir.threshold(ServiceClass::Voice), 60.0);
}

// ------------------------------------------- bounded footprint & grouping --

TEST(SirController, CommitScopeFollowsTheFootprint) {
  const HexNetwork net{1};
  const RadioModel exact{net};
  EXPECT_EQ(SirController{exact}.commitScope(),
            cellular::CommitScope::Global);
  cellular::RadioConfig rc;
  rc.interference_radius_hops = 1;
  const RadioModel bounded{net, rc};
  EXPECT_EQ(SirController{bounded}.commitScope(),
            cellular::CommitScope::GroupLocal);
}

TEST(SirController, SnapshotReadsMatchLiveAtAQuiescentBarrier) {
  // Right after the barrier primes the snapshot, grouped decisions must be
  // bit-identical to an ungrouped live-read controller: snapshot == live
  // until some ledger moves, and the interferer walk is shared.
  HexNetwork net{1};
  for (cellular::CellId id = 1; id < 7; ++id) {
    net.station(id).allocate(id, static_cast<cellular::BandwidthUnits>(5 * id),
                             true);
  }
  cellular::RadioConfig rc;
  rc.interference_radius_hops = 1;
  const RadioModel radio{net, rc};
  SirController grouped{radio};
  grouped.onPartitionChanged(cellular::CellGroupPartition{net, 4});
  SirController live{radio};
  const AdmissionContext ctx{net.station(0), 0.0};
  for (const auto s :
       {ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video}) {
    for (const Vec2 pos : {Vec2{0.5, 0.0}, Vec2{8.5, 0.0}, Vec2{4.0, 3.0}}) {
      const auto a = grouped.decide(request(s, pos), ctx);
      const auto b = live.decide(request(s, pos), ctx);
      EXPECT_EQ(a.accept, b.accept);
      EXPECT_EQ(a.reason, b.reason);
      EXPECT_EQ(a.score, b.score);
    }
  }
}

TEST(SirController, ForeignUtilizationIsSnapshotUntilTheBarrier) {
  // One group per cell: every interferer is foreign, so decide() reads the
  // barrier snapshot only. A ledger change in another cell must stay
  // invisible until onCommitBarrier refreshes — PR 8 barrier-visibility
  // semantics, one tick-window of lag at most.
  HexNetwork net{1};
  cellular::RadioConfig rc;
  rc.interference_radius_hops = 1;
  const RadioModel radio{net, rc};
  SirController sir{radio};
  sir.onPartitionChanged(cellular::CellGroupPartition{net, 7});
  const AdmissionContext ctx{net.station(0), 0.0};
  const CallRequest video = request(ServiceClass::Video, {8.5, 0.0});
  EXPECT_TRUE(sir.decide(video, ctx).accept);  // quiet network
  net.station(3).allocate(1, 40, true);        // eastern neighbour fills up
  EXPECT_TRUE(sir.decide(video, ctx).accept)
      << "pre-barrier decide must still see the snapshot";
  const cellular::BarrierDrainStats stats = sir.onCommitBarrier(1.0);
  EXPECT_EQ(stats.deltas_applied, 1u);  // exactly one cell changed
  EXPECT_FALSE(sir.decide(video, ctx).accept)
      << "post-barrier decide must see the loaded neighbour";
  // Idle barrier: nothing changed, nothing reported.
  EXPECT_EQ(sir.onCommitBarrier(2.0).deltas_applied, 0u);
}

TEST(SirController, UngroupedControllerIgnoresTheBarrierProtocol) {
  // Radius 0 keeps the Global scope: the barrier hook must stay a strict
  // no-op so a grouped-config run over a Global policy keeps the legacy
  // metrics byte for byte.
  const HexNetwork net{1};
  const RadioModel radio{net};
  SirController sir{radio};
  sir.onPartitionChanged(cellular::CellGroupPartition{net, 7});
  EXPECT_EQ(sir.onCommitBarrier(0.0).deltas_applied, 0u);
  EXPECT_TRUE(sir.auditWorkload({120.0, 10.0}).empty());
}

TEST(SirController, AuditFlagsAMaterialTruncationTail) {
  const HexNetwork net{2, 1.5};
  cellular::RadioConfig rc;
  rc.interference_radius_hops = 1;
  const RadioModel aggressive{net, rc};
  const std::string warning =
      SirController{aggressive}.auditWorkload({120.0, 1.5});
  ASSERT_FALSE(warning.empty());
  EXPECT_NE(warning.find("radius=1"), std::string::npos);
  // A footprint covering the whole disk truncates nothing: silent.
  rc.interference_radius_hops = 4;
  const RadioModel covering{net, rc};
  EXPECT_TRUE(SirController{covering}.auditWorkload({120.0, 1.5}).empty());
}

TEST(SirController, RegistryBuiltSirForwardsTheFullProtocol) {
  // The standalone wrapper must behave exactly like a directly-constructed
  // controller: scope, partition/barrier hooks and the audit all reach the
  // inner policy (forwarding only name/decide was the latent trap).
  const HexNetwork net{1};
  auto& runtime = cellular::PolicyRuntime::defaultRuntime();
  const std::unique_ptr<cellular::AdmissionController> bounded =
      runtime.makeController("sir:radius=1", net);
  EXPECT_EQ(bounded->commitScope(), cellular::CommitScope::GroupLocal);
  EXPECT_FALSE(bounded->auditWorkload({120.0, 10.0}).empty());
  bounded->onPartitionChanged(cellular::CellGroupPartition{net, 7});
  EXPECT_EQ(bounded->onCommitBarrier(0.0).deltas_applied, 0u);

  const std::unique_ptr<cellular::AdmissionController> exact =
      runtime.makeController("sir", net);
  EXPECT_EQ(exact->commitScope(), cellular::CommitScope::Global);
  EXPECT_TRUE(exact->auditWorkload({120.0, 10.0}).empty());

  // Thresholds and radius compose in one spec.
  const std::unique_ptr<cellular::AdmissionController> both =
      runtime.makeController("sir:-3,1,5,radius=2", net);
  EXPECT_EQ(both->commitScope(), cellular::CommitScope::GroupLocal);

  EXPECT_THROW((void)runtime.makeController("sir:radius=-1", net),
               cellular::PolicySpecError);
  EXPECT_THROW((void)runtime.makeController("sir:radius=1,bogus=2", net),
               cellular::PolicySpecError);
}

}  // namespace
}  // namespace facs::cac
