#include "cac/sir_controller.hpp"

#include <gtest/gtest.h>

namespace facs::cac {
namespace {

using cellular::AdmissionContext;
using cellular::CallRequest;
using cellular::HexNetwork;
using cellular::RadioModel;
using cellular::ServiceClass;
using cellular::Vec2;

CallRequest request(ServiceClass service, Vec2 position) {
  CallRequest r;
  r.call = 1;
  r.service = service;
  r.demand_bu = cellular::profileFor(service).demand_bu;
  r.snapshot.position = position;
  r.target_cell = 0;
  return r;
}

TEST(SirController, QuietNetworkAdmitsEveryone) {
  const HexNetwork net{1};
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0};
  for (const auto s :
       {ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video}) {
    EXPECT_TRUE(sir.decide(request(s, {1.0, 0.0}), ctx).accept)
        << toString(s);
  }
  EXPECT_EQ(sir.name(), "SIR");
}

TEST(SirController, InterferedEdgeRejectsVideoFirst) {
  HexNetwork net{1};
  // Load every neighbour fully: worst-case co-channel interference.
  for (cellular::CellId id = 1; id < 7; ++id) {
    net.station(id).allocate(id, 40, true);
  }
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0};

  // At the cell edge the SINR is low: the video threshold (5 dB) fails
  // before the text threshold (-3 dB).
  const Vec2 edge{8.5, 0.0};
  const auto video = sir.decide(request(ServiceClass::Video, edge), ctx);
  const auto text = sir.decide(request(ServiceClass::Text, edge), ctx);
  EXPECT_FALSE(video.accept);
  EXPECT_TRUE(text.accept);
  EXPECT_LT(video.score, text.score);
}

TEST(SirController, CellCentreSurvivesInterference) {
  HexNetwork net{1};
  for (cellular::CellId id = 1; id < 7; ++id) {
    net.station(id).allocate(id, 40, true);
  }
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0};
  EXPECT_TRUE(
      sir.decide(request(ServiceClass::Video, {0.5, 0.0}), ctx).accept);
}

TEST(SirController, StillRequiresBandwidth) {
  HexNetwork net{1};
  net.station(0).allocate(99, 35, true);  // 5 BU free
  const RadioModel radio{net};
  SirController sir{radio};
  const AdmissionContext ctx{net.station(0), 0.0, /*explain=*/true};
  const auto d = sir.decide(request(ServiceClass::Video, {0.5, 0.0}), ctx);
  EXPECT_FALSE(d.accept);  // SINR fine, bandwidth not
  EXPECT_EQ(d.reason, cellular::ReasonCode::NoCapacity);
  EXPECT_NE(d.rationale.find("no free BU"), std::string::npos);
}

TEST(SirController, CustomThresholds) {
  const HexNetwork net{1};
  const RadioModel radio{net};
  SirThresholds strict;
  strict.min_sinr_db = {60.0, 60.0, 60.0};  // unreachably clean
  SirController sir{radio, strict};
  const AdmissionContext ctx{net.station(0), 0.0};
  EXPECT_FALSE(sir.decide(request(ServiceClass::Text, {1.0, 0.0}), ctx).accept);
  EXPECT_DOUBLE_EQ(sir.threshold(ServiceClass::Voice), 60.0);
}

}  // namespace
}  // namespace facs::cac
