#include "fuzzy/hedge.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fuzzy/variable.hpp"

namespace facs::fuzzy {
namespace {

TEST(Hedges, PointValues) {
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Not, 0.3), 0.7);
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Very, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Extremely, 0.5), 0.125);
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Somewhat, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Slightly, 0.0625), 0.5);
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Indeed, 0.25), 0.125);
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Indeed, 0.75), 0.875);
  EXPECT_DOUBLE_EQ(applyHedge(Hedge::Indeed, 0.5), 0.5);
}

class HedgeAxioms : public ::testing::TestWithParam<Hedge> {};

TEST_P(HedgeAxioms, PreservesUnitIntervalAndFixedPoints) {
  const Hedge h = GetParam();
  for (double mu = 0.0; mu <= 1.0; mu += 0.01) {
    const double out = applyHedge(h, mu);
    EXPECT_GE(out, 0.0) << toString(h) << " mu=" << mu;
    EXPECT_LE(out, 1.0) << toString(h) << " mu=" << mu;
  }
  if (h != Hedge::Not) {
    // Every non-complement hedge fixes full and zero membership.
    EXPECT_DOUBLE_EQ(applyHedge(h, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(applyHedge(h, 0.0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, HedgeAxioms,
                         ::testing::Values(Hedge::Not, Hedge::Very,
                                           Hedge::Extremely, Hedge::Somewhat,
                                           Hedge::Slightly, Hedge::Indeed));

TEST(Hedges, ConcentrationAndDilationOrdering) {
  for (double mu = 0.05; mu < 1.0; mu += 0.05) {
    EXPECT_LE(applyHedge(Hedge::Extremely, mu), applyHedge(Hedge::Very, mu));
    EXPECT_LE(applyHedge(Hedge::Very, mu), mu);
    EXPECT_GE(applyHedge(Hedge::Somewhat, mu), mu);
    EXPECT_GE(applyHedge(Hedge::Slightly, mu),
              applyHedge(Hedge::Somewhat, mu));
  }
}

TEST(HedgedMembershipTest, WrapsBaseShape) {
  const Triangular fast{60.0, 30.0, 30.0};
  const HedgedMembership very_fast{Hedge::Very, fast};
  EXPECT_DOUBLE_EQ(very_fast.degree(60.0), 1.0);
  EXPECT_DOUBLE_EQ(very_fast.degree(45.0), 0.25);  // 0.5^2
  EXPECT_EQ(very_fast.support(), fast.support());
  EXPECT_DOUBLE_EQ(very_fast.peak(), 60.0);
  EXPECT_EQ(very_fast.describe(), "very tri(60, 30, 30)");
}

TEST(HedgedMembershipTest, NotComplementsAndReportsWideSupport) {
  const Triangular straight{0.0, 45.0, 45.0};
  const HedgedMembership not_straight{Hedge::Not, straight};
  EXPECT_DOUBLE_EQ(not_straight.degree(0.0), 0.0);
  EXPECT_DOUBLE_EQ(not_straight.degree(90.0), 1.0);
  EXPECT_DOUBLE_EQ(not_straight.degree(22.5), 0.5);
  EXPECT_TRUE(std::isinf(not_straight.support().lo));
  EXPECT_TRUE(std::isinf(not_straight.support().hi));
}

TEST(HedgedMembershipTest, CloneAndComposition) {
  const Triangular base{0.0, 1.0, 1.0};
  const auto very = makeHedged(Hedge::Very, base);
  const auto very_very = makeHedged(Hedge::Very, *very);
  EXPECT_DOUBLE_EQ(very_very->degree(0.5), std::pow(0.5, 4.0));
  const auto clone = very_very->clone();
  EXPECT_DOUBLE_EQ(clone->degree(0.5), very_very->degree(0.5));
  EXPECT_EQ(clone->describe(), "very very tri(0, 1, 1)");
}

TEST(HedgedMembershipTest, UsableInsideAVariable) {
  LinguisticVariable speed{"S", Interval{0.0, 120.0}};
  const Trapezoidal fast{60.0, 120.0, 30.0, 0.0};
  speed.addTerm("Fa", fast.clone());
  speed.addTerm("VeryFa", makeHedged(Hedge::Very, fast));
  const FuzzyVector f = speed.fuzzify(45.0);
  EXPECT_DOUBLE_EQ(f[0], 0.5);
  EXPECT_DOUBLE_EQ(f[1], 0.25);
}

}  // namespace
}  // namespace facs::fuzzy
