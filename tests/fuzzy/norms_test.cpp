#include "fuzzy/norms.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace facs::fuzzy {
namespace {

const std::vector<double> kGrid{0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};

TEST(TNorms, PointValues) {
  EXPECT_DOUBLE_EQ(apply(TNorm::Minimum, 0.3, 0.7), 0.3);
  EXPECT_DOUBLE_EQ(apply(TNorm::AlgebraicProduct, 0.3, 0.7), 0.21);
  EXPECT_DOUBLE_EQ(apply(TNorm::BoundedDifference, 0.3, 0.7), 0.0);
  EXPECT_NEAR(apply(TNorm::BoundedDifference, 0.8, 0.7), 0.5, 1e-12);
}

TEST(SNorms, PointValues) {
  EXPECT_DOUBLE_EQ(apply(SNorm::Maximum, 0.3, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(apply(SNorm::AlgebraicSum, 0.3, 0.7), 0.79);
  EXPECT_DOUBLE_EQ(apply(SNorm::BoundedSum, 0.3, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(apply(SNorm::BoundedSum, 0.3, 0.4), 0.7);
}

class TNormAxioms : public ::testing::TestWithParam<TNorm> {};

TEST_P(TNormAxioms, IdentityCommutativityMonotonicityBounds) {
  const TNorm n = GetParam();
  for (const double a : kGrid) {
    // 1 is the identity element.
    EXPECT_NEAR(apply(n, a, 1.0), a, 1e-12);
    EXPECT_NEAR(apply(n, 1.0, a), a, 1e-12);
    // 0 annihilates.
    EXPECT_NEAR(apply(n, a, 0.0), 0.0, 1e-12);
    for (const double b : kGrid) {
      const double ab = apply(n, a, b);
      // Commutativity.
      EXPECT_NEAR(ab, apply(n, b, a), 1e-12);
      // Range and t-norm upper bound: T(a,b) <= min(a,b).
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, std::min(a, b) + 1e-12);
      // Monotonicity in the first argument.
      for (const double a2 : kGrid) {
        if (a2 >= a) {
          EXPECT_GE(apply(n, a2, b) + 1e-12, ab);
        }
      }
    }
  }
}

TEST_P(TNormAxioms, Associativity) {
  const TNorm n = GetParam();
  for (const double a : kGrid) {
    for (const double b : kGrid) {
      for (const double c : kGrid) {
        EXPECT_NEAR(apply(n, apply(n, a, b), c), apply(n, a, apply(n, b, c)),
                    1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, TNormAxioms,
                         ::testing::Values(TNorm::Minimum,
                                           TNorm::AlgebraicProduct,
                                           TNorm::BoundedDifference));

class SNormAxioms : public ::testing::TestWithParam<SNorm> {};

TEST_P(SNormAxioms, IdentityCommutativityMonotonicityBounds) {
  const SNorm n = GetParam();
  for (const double a : kGrid) {
    // 0 is the identity element.
    EXPECT_NEAR(apply(n, a, 0.0), a, 1e-12);
    EXPECT_NEAR(apply(n, 0.0, a), a, 1e-12);
    // 1 annihilates.
    EXPECT_NEAR(apply(n, a, 1.0), 1.0, 1e-12);
    for (const double b : kGrid) {
      const double ab = apply(n, a, b);
      EXPECT_NEAR(ab, apply(n, b, a), 1e-12);
      // Range and s-norm lower bound: S(a,b) >= max(a,b).
      EXPECT_LE(ab, 1.0);
      EXPECT_GE(ab + 1e-12, std::max(a, b));
    }
  }
}

TEST_P(SNormAxioms, Associativity) {
  const SNorm n = GetParam();
  for (const double a : kGrid) {
    for (const double b : kGrid) {
      for (const double c : kGrid) {
        EXPECT_NEAR(apply(n, apply(n, a, b), c), apply(n, a, apply(n, b, c)),
                    1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, SNormAxioms,
                         ::testing::Values(SNorm::Maximum,
                                           SNorm::AlgebraicSum,
                                           SNorm::BoundedSum));

TEST(NormNames, RoundTripStrings) {
  EXPECT_EQ(toString(TNorm::Minimum), "min");
  EXPECT_EQ(toString(TNorm::AlgebraicProduct), "prod");
  EXPECT_EQ(toString(TNorm::BoundedDifference), "lukasiewicz");
  EXPECT_EQ(toString(SNorm::Maximum), "max");
  EXPECT_EQ(toString(SNorm::AlgebraicSum), "probor");
  EXPECT_EQ(toString(SNorm::BoundedSum), "bsum");
}

}  // namespace
}  // namespace facs::fuzzy
