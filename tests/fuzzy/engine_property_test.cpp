/// Property sweeps over the Mamdani engine: for every combination of
/// inference operators and defuzzifiers, the engine must keep its output
/// inside the output universe, behave deterministically, clamp inputs and
/// respect dominance of fully-fired rules. Run against both FACS engines
/// so the properties hold for the exact controllers the paper deploys.

#include <gtest/gtest.h>

#include <array>
#include <tuple>
#include <vector>

#include "core/flc1.hpp"
#include "core/flc2.hpp"

namespace facs::fuzzy {
namespace {

using Config = std::tuple<TNorm, TNorm, SNorm, Defuzzifier>;

class EngineOperatorMatrix : public ::testing::TestWithParam<Config> {
 protected:
  EngineConfig makeConfig() const {
    const auto [conj, impl, agg, defuzz] = GetParam();
    EngineConfig cfg;
    cfg.conjunction = conj;
    cfg.implication = impl;
    cfg.aggregation = agg;
    cfg.defuzzifier = defuzz;
    cfg.resolution = 501;  // keep the matrix fast
    return cfg;
  }
};

TEST_P(EngineOperatorMatrix, Flc1OutputStaysInUnitInterval) {
  const MamdaniEngine engine = core::buildFlc1(makeConfig());
  for (double s : {0.0, 22.5, 60.0, 120.0}) {
    for (double a : {-180.0, -67.5, 0.0, 45.0, 180.0}) {
      for (double d : {0.0, 5.0, 10.0}) {
        const std::array<double, 3> in{s, a, d};
        const double out = engine.infer(in);
        EXPECT_GE(out, 0.0) << s << "," << a << "," << d;
        EXPECT_LE(out, 1.0) << s << "," << a << "," << d;
      }
    }
  }
}

TEST_P(EngineOperatorMatrix, Flc2OutputStaysInDecisionInterval) {
  const MamdaniEngine engine = core::buildFlc2(makeConfig());
  for (double cv : {0.0, 0.3, 0.7, 1.0}) {
    for (double r : {1.0, 5.0, 10.0}) {
      for (double cs : {0.0, 17.0, 40.0}) {
        const std::array<double, 3> in{cv, r, cs};
        const double out = engine.infer(in);
        EXPECT_GE(out, -1.0);
        EXPECT_LE(out, 1.0);
      }
    }
  }
}

TEST_P(EngineOperatorMatrix, InferenceIsDeterministic) {
  const MamdaniEngine engine = core::buildFlc1(makeConfig());
  const std::array<double, 3> in{33.3, -51.0, 7.7};
  const double first = engine.infer(in);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(engine.infer(in), first);
  }
}

TEST_P(EngineOperatorMatrix, InputClampingHolds) {
  const MamdaniEngine engine = core::buildFlc1(makeConfig());
  const std::array<double, 3> wild{500.0, -720.0, 99.0};
  const std::array<double, 3> edge{120.0, -180.0, 10.0};
  EXPECT_DOUBLE_EQ(engine.infer(wild), engine.infer(edge));
}

TEST_P(EngineOperatorMatrix, DominantRulePullsTowardItsConsequent) {
  const MamdaniEngine engine = core::buildFlc1(makeConfig());
  // Fa & St & N -> Cv9 (row 34) fires at strength 1 at the joint peak;
  // every configuration must put the output in the upper half.
  const std::array<double, 3> best{120.0, 0.0, 0.0};
  EXPECT_GT(engine.infer(best), 0.5);
  // Fa & B1 & F -> Cv1 (row 29): lower half.
  const std::array<double, 3> worst{120.0, -180.0, 10.0};
  EXPECT_LT(engine.infer(worst), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    OperatorMatrix, EngineOperatorMatrix,
    ::testing::Combine(
        ::testing::Values(TNorm::Minimum, TNorm::AlgebraicProduct,
                          TNorm::BoundedDifference),
        ::testing::Values(TNorm::Minimum, TNorm::AlgebraicProduct),
        ::testing::Values(SNorm::Maximum, SNorm::AlgebraicSum,
                          SNorm::BoundedSum),
        ::testing::Values(Defuzzifier::Centroid, Defuzzifier::Bisector,
                          Defuzzifier::MeanOfMax)));

/// The operator families the `facs` policy exposes (`ops=minmax|prod|luk`),
/// mirrored from applyOperatorFamily in core/facs.cpp.
enum class OpsFamily { MinMax, Prod, Luk };

using BatchConfig = std::tuple<OpsFamily, Defuzzifier, int>;

class BatchIdentityMatrix : public ::testing::TestWithParam<BatchConfig> {
 protected:
  EngineConfig makeConfig() const {
    const auto [family, defuzz, resolution] = GetParam();
    EngineConfig cfg;
    switch (family) {
      case OpsFamily::MinMax:
        break;
      case OpsFamily::Prod:
        cfg.conjunction = TNorm::AlgebraicProduct;
        cfg.implication = TNorm::AlgebraicProduct;
        cfg.aggregation = SNorm::AlgebraicSum;
        break;
      case OpsFamily::Luk:
        cfg.conjunction = TNorm::BoundedDifference;
        break;
    }
    cfg.defuzzifier = defuzz;
    cfg.resolution = resolution;
    return cfg;
  }
};

TEST_P(BatchIdentityMatrix, Flc2BatchIsBitIdenticalToScalar) {
  MamdaniEngine engine = core::buildFlc2(makeConfig());
  engine.seal();

  // Commit-window shape: Cs (the shared ledger input) repeats across runs
  // of entries, exercising the fuzzification memo; Cv and R vary per entry.
  std::vector<double> inputs;
  for (double cs : {0.0, 0.0, 17.0, 17.0, 17.0, 40.0, 23.5}) {
    for (double cv : {0.05, 0.45, 0.45, 0.95}) {
      for (double r : {1.0, 6.5, 6.5, 10.0}) {
        inputs.push_back(cv);
        inputs.push_back(r);
        inputs.push_back(cs);
      }
    }
  }
  const std::size_t entries = inputs.size() / 3;
  std::vector<double> outputs(entries);
  BatchScratch scratch;
  engine.inferBatch(inputs, outputs, scratch);
  for (std::size_t i = 0; i < entries; ++i) {
    const std::array<double, 3> in{inputs[3 * i], inputs[3 * i + 1],
                                   inputs[3 * i + 2]};
    // Exact equality: memoized fuzzification and the sealed tables reuse
    // pure functions of bitwise-identical inputs, so the batch path may
    // never drift from a standalone infer().
    EXPECT_EQ(outputs[i], engine.infer(in)) << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsDefuzzResolution, BatchIdentityMatrix,
    ::testing::Combine(
        ::testing::Values(OpsFamily::MinMax, OpsFamily::Prod, OpsFamily::Luk),
        ::testing::Values(Defuzzifier::Centroid, Defuzzifier::Bisector,
                          Defuzzifier::MeanOfMax, Defuzzifier::SmallestOfMax,
                          Defuzzifier::LargestOfMax),
        ::testing::Values(11, 101, 1001)));

}  // namespace
}  // namespace facs::fuzzy
