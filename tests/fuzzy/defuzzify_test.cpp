#include "fuzzy/defuzzify.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace facs::fuzzy {
namespace {

const Interval kUnit{0.0, 1.0};

TEST(Defuzzify, CentroidOfSymmetricTriangle) {
  const Triangular tri{0.5, 0.25, 0.25};
  const double c = defuzzify(
      Defuzzifier::Centroid, [&](double x) { return tri.degree(x); }, kUnit);
  EXPECT_NEAR(c, 0.5, 1e-6);
}

TEST(Defuzzify, CentroidOfRightShoulderPullsRight) {
  const Trapezoidal shoulder{0.8, 1.0, 0.2, 0.0};
  const double c = defuzzify(
      Defuzzifier::Centroid, [&](double x) { return shoulder.degree(x); },
      kUnit);
  EXPECT_GT(c, 0.8);
  EXPECT_LT(c, 1.0);
}

TEST(Defuzzify, CentroidOfAsymmetricTriangleAnalytic) {
  // Triangle with vertices (0,0), (0.25,1), (1,0): centroid x = (0+0.25+1)/3.
  const Triangular tri{0.25, 0.25, 0.75};
  const double c = defuzzify(
      Defuzzifier::Centroid, [&](double x) { return tri.degree(x); }, kUnit,
      20001);
  EXPECT_NEAR(c, (0.0 + 0.25 + 1.0) / 3.0, 1e-4);
}

TEST(Defuzzify, BisectorSplitsAreaInHalf) {
  const Triangular tri{0.5, 0.5, 0.5};
  const double b = defuzzify(
      Defuzzifier::Bisector, [&](double x) { return tri.degree(x); }, kUnit);
  EXPECT_NEAR(b, 0.5, 1e-6);
}

TEST(Defuzzify, BisectorOfUniformCurve) {
  const double b = defuzzify(
      Defuzzifier::Bisector, [](double) { return 0.7; }, Interval{2.0, 6.0});
  EXPECT_NEAR(b, 4.0, 1e-6);
}

TEST(Defuzzify, MaxFamilyOnPlateau) {
  const Trapezoidal trap{0.4, 0.6, 0.2, 0.2};
  const AggregatedCurve curve = [&](double x) { return trap.degree(x); };
  EXPECT_NEAR(defuzzify(Defuzzifier::MeanOfMax, curve, kUnit), 0.5, 1e-3);
  EXPECT_NEAR(defuzzify(Defuzzifier::SmallestOfMax, curve, kUnit), 0.4, 1e-3);
  EXPECT_NEAR(defuzzify(Defuzzifier::LargestOfMax, curve, kUnit), 0.6, 1e-3);
}

TEST(Defuzzify, MaxFamilyOnClippedCurve) {
  // A triangle clipped at 0.5 has a maximizing plateau over [0.25, 0.75].
  const Triangular tri{0.5, 0.5, 0.5};
  const AggregatedCurve curve = [&](double x) {
    return std::min(tri.degree(x), 0.5);
  };
  EXPECT_NEAR(defuzzify(Defuzzifier::SmallestOfMax, curve, kUnit), 0.25, 1e-3);
  EXPECT_NEAR(defuzzify(Defuzzifier::LargestOfMax, curve, kUnit), 0.75, 1e-3);
  EXPECT_NEAR(defuzzify(Defuzzifier::MeanOfMax, curve, kUnit), 0.5, 1e-3);
}

class EmptyCurveNeutral : public ::testing::TestWithParam<Defuzzifier> {};

TEST_P(EmptyCurveNeutral, ZeroCurveYieldsUniverseMidpoint) {
  // No rule fired: the FACS output universes are built so the midpoint is
  // the neutral decision (A/R = 0).
  const double v = defuzzify(
      GetParam(), [](double) { return 0.0; }, Interval{-1.0, 1.0});
  EXPECT_NEAR(v, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(All, EmptyCurveNeutral,
                         ::testing::Values(Defuzzifier::Centroid,
                                           Defuzzifier::Bisector,
                                           Defuzzifier::MeanOfMax,
                                           Defuzzifier::SmallestOfMax,
                                           Defuzzifier::LargestOfMax));

class WithinUniverseProperty : public ::testing::TestWithParam<Defuzzifier> {};

TEST_P(WithinUniverseProperty, ResultAlwaysInsideUniverse) {
  const Interval u{-3.0, 7.0};
  const Triangular tri{6.0, 2.0, 1.0};
  const double v = defuzzify(
      GetParam(), [&](double x) { return tri.degree(x); }, u);
  EXPECT_GE(v, u.lo);
  EXPECT_LE(v, u.hi);
}

INSTANTIATE_TEST_SUITE_P(All, WithinUniverseProperty,
                         ::testing::Values(Defuzzifier::Centroid,
                                           Defuzzifier::Bisector,
                                           Defuzzifier::MeanOfMax,
                                           Defuzzifier::SmallestOfMax,
                                           Defuzzifier::LargestOfMax));

TEST(Defuzzify, RejectsBadArguments) {
  const AggregatedCurve flat = [](double) { return 1.0; };
  EXPECT_THROW((void)defuzzify(Defuzzifier::Centroid, flat, kUnit, 1),
               std::invalid_argument);
  EXPECT_THROW(
      (void)defuzzify(Defuzzifier::Centroid, flat, Interval{1.0, 1.0}),
      std::invalid_argument);
}

TEST(Defuzzify, ToStringNames) {
  EXPECT_EQ(toString(Defuzzifier::Centroid), "centroid");
  EXPECT_EQ(toString(Defuzzifier::Bisector), "bisector");
  EXPECT_EQ(toString(Defuzzifier::MeanOfMax), "mom");
  EXPECT_EQ(toString(Defuzzifier::SmallestOfMax), "som");
  EXPECT_EQ(toString(Defuzzifier::LargestOfMax), "lom");
}

class SampledMatchesCurve : public ::testing::TestWithParam<Defuzzifier> {};

TEST_P(SampledMatchesCurve, PresampledPathIsBitIdentical) {
  // defuzzifySampled is the sealed-engine entry point: the caller hands in
  // the grid, membership values and trapezoid weights that the curve
  // overload would otherwise compute per call. Rebuilding those arrays with
  // the same formulas must reproduce the curve overload bit for bit.
  const Interval u{-3.0, 7.0};
  const Triangular tri{6.0, 2.0, 1.0};
  const AggregatedCurve curve = [&](double x) { return tri.degree(x); };
  for (int resolution : {2, 11, 101, 1001}) {
    std::vector<double> x(static_cast<std::size_t>(resolution));
    std::vector<double> mu(x.size());
    const double step = u.width() / static_cast<double>(resolution - 1);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = u.lo + step * static_cast<double>(i);
      mu[i] = curve(x[i]);
    }
    std::vector<double> weights;
    fillTrapezoidWeights(x, weights);
    ASSERT_EQ(weights.size(), x.size() - 1);

    DefuzzScratch scratch;
    const double sampled = defuzzifySampled(GetParam(), x, mu, weights,
                                            scratch);
    const double direct = defuzzify(GetParam(), curve, u, resolution);
    EXPECT_EQ(sampled, direct) << "resolution " << resolution;
    // A dirty scratch (here: warm from the previous resolution and from
    // this call's own buffers) must not change the answer.
    EXPECT_EQ(defuzzifySampled(GetParam(), x, mu, weights, scratch), direct);
  }
}

INSTANTIATE_TEST_SUITE_P(All, SampledMatchesCurve,
                         ::testing::Values(Defuzzifier::Centroid,
                                           Defuzzifier::Bisector,
                                           Defuzzifier::MeanOfMax,
                                           Defuzzifier::SmallestOfMax,
                                           Defuzzifier::LargestOfMax));

TEST(Defuzzify, ScratchOverloadMatchesLegacyOverload) {
  const Triangular tri{0.25, 0.25, 0.75};
  const AggregatedCurve curve = [&](double x) { return tri.degree(x); };
  DefuzzScratch scratch;
  for (Defuzzifier d :
       {Defuzzifier::Centroid, Defuzzifier::Bisector, Defuzzifier::MeanOfMax,
        Defuzzifier::SmallestOfMax, Defuzzifier::LargestOfMax}) {
    EXPECT_EQ(defuzzify(d, curve, kUnit, 501, scratch),
              defuzzify(d, curve, kUnit, 501));
  }
}

}  // namespace
}  // namespace facs::fuzzy
