#include "fuzzy/fdl.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

namespace facs::fuzzy {
namespace {

constexpr const char* kTipper = R"(
# A small controller in FDL.
engine tipper
conjunction min
implication min
aggregation max
defuzzifier centroid
resolution 1001

input service 0 10
  term poor tri 0 0 5
  term good tri 5 5 5
  term great tri 10 5 0

input food 0 10
  term bad trap 0 2 0 4
  term tasty trap 8 10 4 0

output tip 0 30
  term low tri 5 5 5
  term medium tri 15 5 5
  term high tri 25 5 5

rule poor * => low
rule good * => medium
rule great bad => medium
rule great tasty => high weight 0.9
)";

TEST(Fdl, ParsesCompleteEngine) {
  const MamdaniEngine e = parseFdl(kTipper);
  EXPECT_EQ(e.name(), "tipper");
  EXPECT_EQ(e.inputCount(), 2u);
  EXPECT_EQ(e.input(0).name(), "service");
  EXPECT_EQ(e.input(1).termCount(), 2u);
  EXPECT_EQ(e.output().name(), "tip");
  EXPECT_EQ(e.rules().size(), 4u);
  EXPECT_DOUBLE_EQ(e.rules().rule(3).weight, 0.9);
  EXPECT_EQ(e.rules().rule(0).antecedent[1], kAnyTerm);
}

TEST(Fdl, ParsedEngineInfers) {
  const MamdaniEngine e = parseFdl(kTipper);
  const std::array<double, 2> in{0.0, 5.0};
  EXPECT_NEAR(e.infer(in), 5.0, 0.2);
}

TEST(Fdl, ParsesFromStream) {
  std::istringstream in{kTipper};
  const MamdaniEngine e = parseFdl(in);
  EXPECT_EQ(e.name(), "tipper");
}

TEST(Fdl, RoundTripPreservesBehaviour) {
  const MamdaniEngine original = parseFdl(kTipper);
  const std::string serialized = toFdl(original);
  const MamdaniEngine reparsed = parseFdl(serialized);

  for (double s = 0.0; s <= 10.0; s += 0.5) {
    for (double f = 0.0; f <= 10.0; f += 1.0) {
      const std::array<double, 2> in{s, f};
      EXPECT_DOUBLE_EQ(original.infer(in), reparsed.infer(in))
          << "s=" << s << " f=" << f;
    }
  }
}

TEST(Fdl, OperatorKeywordsParse) {
  const MamdaniEngine e = parseFdl(R"(
engine ops
conjunction prod
implication lukasiewicz
aggregation probor
defuzzifier mom
resolution 501
input x 0 1
  term lo tri 0 0 1
output y 0 1
  term lo tri 0 0 1
rule lo => lo
)");
  EXPECT_EQ(e.config().conjunction, TNorm::AlgebraicProduct);
  EXPECT_EQ(e.config().implication, TNorm::BoundedDifference);
  EXPECT_EQ(e.config().aggregation, SNorm::AlgebraicSum);
  EXPECT_EQ(e.config().defuzzifier, Defuzzifier::MeanOfMax);
  EXPECT_EQ(e.config().resolution, 501);
}

struct BadDoc {
  const char* name;
  const char* text;
  int expected_line;
};

class FdlErrors : public ::testing::TestWithParam<BadDoc> {};

TEST_P(FdlErrors, ReportsLineNumber) {
  try {
    (void)parseFdl(GetParam().text);
    FAIL() << "expected FdlError for " << GetParam().name;
  } catch (const FdlError& e) {
    EXPECT_EQ(e.line(), GetParam().expected_line) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, FdlErrors,
    ::testing::Values(
        BadDoc{"unknown_keyword", "bogus x\n", 1},
        BadDoc{"term_before_variable", "engine e\nterm a tri 0 1 1\n", 2},
        BadDoc{"bad_number", "engine e\ninput x 0 ten\n", 2},
        BadDoc{"bad_shape", "engine e\ninput x 0 1\nterm a blob 1\n", 3},
        BadDoc{"tri_arity", "engine e\ninput x 0 1\nterm a tri 1\n", 3},
        BadDoc{"rule_missing_arrow",
               "engine e\ninput x 0 1\nterm a tri 0 0 1\noutput y 0 1\nterm "
               "b tri 0 0 1\nrule a b\n",
               6},
        BadDoc{"unknown_tnorm", "conjunction nope\n", 1},
        BadDoc{"unknown_defuzz", "defuzzifier nope\n", 1}),
    [](const auto& param_info) { return std::string{param_info.param.name}; });

TEST(Fdl, MissingEngineOrOutputFails) {
  EXPECT_THROW((void)parseFdl("input x 0 1\nterm a tri 0 0 1\n"), FdlError);
  EXPECT_THROW((void)parseFdl("engine e\ninput x 0 1\nterm a tri 0 0 1\n"),
               FdlError);
}

TEST(Fdl, RuleWithUnknownTermFailsAtBuild) {
  EXPECT_THROW((void)parseFdl(R"(
engine e
input x 0 1
  term lo tri 0 0 1
output y 0 1
  term lo tri 0 0 1
rule nope => lo
)"),
               FdlError);
}

TEST(Fdl, SmoothShapesParseAndRoundTrip) {
  const MamdaniEngine e = parseFdl(R"(
engine smooth
input x 0 10
  term low sigmoid 3 -2
  term mid gauss 5 1.5
  term high bell 8 1.5 3
output y 0 1
  term no tri 0 0 1
  term yes tri 1 1 0
rule low => no
rule mid => yes
rule high => yes
)");
  EXPECT_EQ(e.input(0).termCount(), 3u);
  EXPECT_NEAR(e.input(0).term(1).degree(5.0), 1.0, 1e-12);   // gauss peak
  EXPECT_NEAR(e.input(0).term(2).degree(9.5), 0.5, 1e-12);   // bell crossover
  EXPECT_NEAR(e.input(0).term(0).degree(3.0), 0.5, 1e-12);   // sigmoid infl.

  const MamdaniEngine round = parseFdl(toFdl(e));
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const std::array<double, 1> in{x};
    EXPECT_DOUBLE_EQ(round.infer(in), e.infer(in)) << "x=" << x;
  }
}

TEST(Fdl, SmoothShapeAritiesChecked) {
  EXPECT_THROW((void)parseFdl("engine e\ninput x 0 1\nterm a gauss 1\n"),
               FdlError);
  EXPECT_THROW((void)parseFdl("engine e\ninput x 0 1\nterm a bell 1 2\n"),
               FdlError);
  EXPECT_THROW((void)parseFdl("engine e\ninput x 0 1\nterm a sigmoid 1\n"),
               FdlError);
}

TEST(Fdl, CommentsAndBlankLinesIgnored) {
  const MamdaniEngine e = parseFdl(
      "# header\n\nengine e # trailing comment\ninput x 0 1\nterm lo tri 0 0 "
      "1\noutput y 0 1\nterm lo tri 0 0 1\n\nrule lo => lo\n");
  EXPECT_EQ(e.rules().size(), 1u);
}

}  // namespace
}  // namespace facs::fuzzy
