#include "fuzzy/shapes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fuzzy/variable.hpp"

namespace facs::fuzzy {
namespace {

TEST(GaussianShape, PeakAndSpread) {
  const Gaussian g{5.0, 2.0};
  EXPECT_DOUBLE_EQ(g.degree(5.0), 1.0);
  EXPECT_NEAR(g.degree(7.0), std::exp(-0.5), 1e-12);   // one sigma
  EXPECT_NEAR(g.degree(1.0), std::exp(-2.0), 1e-12);   // two sigma
  EXPECT_DOUBLE_EQ(g.degree(3.0), g.degree(7.0));      // symmetric
  EXPECT_DOUBLE_EQ(g.peak(), 5.0);
  EXPECT_EQ(g.support(), (Interval{-3.0, 13.0}));      // +/- 4 sigma
  EXPECT_EQ(g.describe(), "gauss(5, 2)");
}

TEST(GaussianShape, Validation) {
  EXPECT_THROW(Gaussian(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(BellShape, PeakCrossoverAndSlope) {
  const GeneralizedBell b{0.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(b.degree(0.0), 1.0);
  // At |x - c| = width the degree is exactly 0.5 for any slope.
  EXPECT_NEAR(b.degree(2.0), 0.5, 1e-12);
  EXPECT_NEAR(b.degree(-2.0), 0.5, 1e-12);
  // Steeper slope -> flatter top, sharper shoulders.
  const GeneralizedBell steep{0.0, 2.0, 8.0};
  EXPECT_GT(steep.degree(1.5), b.degree(1.5));
  EXPECT_LT(steep.degree(3.0), b.degree(3.0));
  EXPECT_EQ(b.describe(), "bell(0, 2, 3)");
}

TEST(BellShape, Validation) {
  EXPECT_THROW(GeneralizedBell(0.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GeneralizedBell(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GeneralizedBell(0.0, 1.0, -2.0), std::invalid_argument);
}

TEST(SigmoidShape, RisingAndFalling) {
  const Sigmoid rise{5.0, 2.0};
  EXPECT_NEAR(rise.degree(5.0), 0.5, 1e-12);
  EXPECT_GT(rise.degree(8.0), 0.99);
  EXPECT_LT(rise.degree(2.0), 0.01);

  const Sigmoid fall{5.0, -2.0};
  EXPECT_NEAR(fall.degree(5.0), 0.5, 1e-12);
  EXPECT_LT(fall.degree(8.0), 0.01);
  EXPECT_GT(fall.degree(2.0), 0.99);

  EXPECT_GT(rise.peak(), 5.0);
  EXPECT_LT(fall.peak(), 5.0);
  EXPECT_EQ(rise.describe(), "sigmoid(5, 2)");
}

TEST(SigmoidShape, Validation) {
  EXPECT_THROW(Sigmoid(0.0, 0.0), std::invalid_argument);
}

/// All smooth shapes obey the same contract as the paper shapes: degrees in
/// [0, 1] and (numerically) vanishing outside the reported support.
class SmoothShapeContract
    : public ::testing::TestWithParam<const MembershipFunction*> {};

TEST(SmoothShapes, ContractHolds) {
  const Gaussian g{2.0, 1.5};
  const GeneralizedBell b{-1.0, 3.0, 2.0};
  const Sigmoid s{0.0, 1.0};
  const MembershipFunction* shapes[] = {&g, &b, &s};
  for (const MembershipFunction* mf : shapes) {
    for (double x = -25.0; x <= 25.0; x += 0.25) {
      const double d = mf->degree(x);
      EXPECT_GE(d, 0.0) << mf->describe() << " x=" << x;
      EXPECT_LE(d, 1.0) << mf->describe() << " x=" << x;
    }
    const auto clone = mf->clone();
    EXPECT_DOUBLE_EQ(clone->degree(0.5), mf->degree(0.5));
  }
}

TEST(SmoothShapes, UsableInsideAMamdaniVariable) {
  LinguisticVariable v{"x", Interval{0.0, 10.0}};
  v.addTerm("low", makeSigmoid(3.0, -2.0));
  v.addTerm("mid", makeGaussian(5.0, 1.5));
  v.addTerm("high", makeSigmoid(7.0, 2.0));
  EXPECT_TRUE(v.covers(0.01));
  EXPECT_EQ(v.winningTerm(5.0), 1u);
  EXPECT_EQ(v.winningTerm(0.5), 0u);
  EXPECT_EQ(v.winningTerm(9.5), 2u);
}

}  // namespace
}  // namespace facs::fuzzy
