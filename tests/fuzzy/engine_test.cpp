#include "fuzzy/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace facs::fuzzy {
namespace {

/// A tiny two-input "tipper"-style controller used across engine tests.
MamdaniEngine makeTipper(EngineConfig config = {}) {
  MamdaniEngine e{"tipper", config};

  LinguisticVariable service{"service", Interval{0.0, 10.0}};
  service.addTerm("poor", makeTriangle(0.0, 0.0, 5.0));
  service.addTerm("good", makeTriangle(5.0, 5.0, 5.0));
  service.addTerm("great", makeTriangle(10.0, 5.0, 0.0));

  LinguisticVariable food{"food", Interval{0.0, 10.0}};
  food.addTerm("bad", makeTrapezoid(0.0, 2.0, 0.0, 4.0));
  food.addTerm("tasty", makeTrapezoid(8.0, 10.0, 4.0, 0.0));

  LinguisticVariable tip{"tip", Interval{0.0, 30.0}};
  tip.addTerm("low", makeTriangle(5.0, 5.0, 5.0));
  tip.addTerm("medium", makeTriangle(15.0, 5.0, 5.0));
  tip.addTerm("high", makeTriangle(25.0, 5.0, 5.0));

  e.addInput(std::move(service));
  e.addInput(std::move(food));
  e.setOutput(std::move(tip));

  e.addRule({"poor", "*"}, "low");
  e.addRule({"good", "*"}, "medium");
  e.addRule({"great", "bad"}, "medium");
  e.addRule({"great", "tasty"}, "high");
  return e;
}

TEST(Engine, ConstructionValidation) {
  EXPECT_THROW(MamdaniEngine("", EngineConfig{}), std::invalid_argument);
  EngineConfig bad;
  bad.resolution = 1;
  EXPECT_THROW(MamdaniEngine("x", bad), std::invalid_argument);
}

TEST(Engine, CheckValidCatchesMissingPieces) {
  MamdaniEngine empty{"e"};
  EXPECT_THROW(empty.checkValid(), std::logic_error);  // no inputs

  MamdaniEngine no_output{"e"};
  LinguisticVariable v{"v", Interval{0.0, 1.0}};
  v.addTerm("t", makeTriangle(0.5, 0.5, 0.5));
  no_output.addInput(v);
  EXPECT_THROW(no_output.checkValid(), std::logic_error);  // no output

  MamdaniEngine no_rules{"e"};
  no_rules.addInput(v);
  no_rules.setOutput(v);
  EXPECT_THROW(no_rules.checkValid(), std::logic_error);  // empty rule base
}

TEST(Engine, CheckValidCatchesConflicts) {
  MamdaniEngine e{"e"};
  LinguisticVariable v{"v", Interval{0.0, 1.0}};
  v.addTerm("lo", makeTriangle(0.0, 0.0, 1.0));
  v.addTerm("hi", makeTriangle(1.0, 1.0, 0.0));
  e.addInput(v);
  e.setOutput(v);
  e.addRule({"lo"}, "lo");
  e.addRule({"lo"}, "hi");
  EXPECT_THROW(e.checkValid(), std::logic_error);
}

TEST(Engine, InferArityMismatchThrows) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 1> one{5.0};
  EXPECT_THROW((void)e.infer(one), std::invalid_argument);
}

TEST(Engine, SingleDominantRuleCentersOnConsequent) {
  const MamdaniEngine e = makeTipper();
  // service=0 fires only "poor -> low" at full strength.
  const std::array<double, 2> in{0.0, 5.0};
  EXPECT_NEAR(e.infer(in), 5.0, 0.2);
}

TEST(Engine, GreatServiceTastyFoodGivesHighTip) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 2> in{10.0, 10.0};
  EXPECT_NEAR(e.infer(in), 25.0, 0.2);
}

TEST(Engine, InterpolatesBetweenRules) {
  const MamdaniEngine e = makeTipper();
  // service=7.5: good=0.5, great=0.5; food=10 -> medium and high both fire.
  const std::array<double, 2> in{7.5, 10.0};
  const double out = e.infer(in);
  EXPECT_GT(out, 15.0);
  EXPECT_LT(out, 25.0);
}

TEST(Engine, MonotoneInServiceQuality) {
  const MamdaniEngine e = makeTipper();
  double prev = -1.0;
  for (double s = 0.0; s <= 10.0; s += 0.5) {
    const std::array<double, 2> in{s, 10.0};
    const double out = e.infer(in);
    EXPECT_GE(out + 1e-9, prev) << "tip dropped at service=" << s;
    prev = out;
  }
}

TEST(Engine, ClampsInputsToUniverse) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 2> wild{42.0, -3.0};
  const std::array<double, 2> edge{10.0, 0.0};
  EXPECT_DOUBLE_EQ(e.infer(wild), e.infer(edge));
}

TEST(Engine, TraceReportsActivationsAndWinner) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 2> in{7.5, 10.0};
  const InferenceTrace trace = e.inferTraced(in);

  ASSERT_EQ(trace.fuzzified.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.fuzzified[0][1], 0.5);  // good
  EXPECT_DOUBLE_EQ(trace.fuzzified[0][2], 0.5);  // great

  // Rules 1 (good->medium) and 3 (great&tasty->high) fire.
  ASSERT_EQ(trace.activations.size(), 2u);
  EXPECT_EQ(trace.activations[0].rule_index, 1u);
  EXPECT_DOUBLE_EQ(trace.activations[0].firing_strength, 0.5);
  EXPECT_EQ(trace.activations[1].rule_index, 3u);
  EXPECT_DOUBLE_EQ(trace.activations[1].firing_strength, 0.5);

  EXPECT_EQ(e.output().term(trace.winning_output_term).name(),
            trace.crisp_output > 20.0 ? "high" : "medium");
}

TEST(Engine, RuleWeightScalesInfluence) {
  MamdaniEngine weighted = makeTipper();
  // Re-add the high rule with a tiny weight via a fresh engine.
  MamdaniEngine e{"tipper2"};
  const MamdaniEngine base = makeTipper();
  for (const auto& v : base.inputs()) e.addInput(v);
  e.setOutput(base.output());
  e.addRule({"poor", "*"}, "low");
  e.addRule({"good", "*"}, "medium");
  e.addRule({"great", "bad"}, "medium");
  e.addRule({"great", "tasty"}, "high", 0.1);

  const std::array<double, 2> in{7.5, 10.0};
  EXPECT_LT(e.infer(in), base.infer(in));
}

TEST(Engine, ProductOperatorsDifferButAgreeOnDominantRule) {
  EngineConfig prod;
  prod.conjunction = TNorm::AlgebraicProduct;
  prod.implication = TNorm::AlgebraicProduct;
  prod.aggregation = SNorm::AlgebraicSum;
  const MamdaniEngine scaled = makeTipper(prod);
  const MamdaniEngine clipped = makeTipper();

  const std::array<double, 2> dominant{0.0, 5.0};
  EXPECT_NEAR(scaled.infer(dominant), clipped.infer(dominant), 0.5);

  const std::array<double, 2> mixed{6.0, 7.0};
  // Different operator families genuinely differ on mixed activations.
  EXPECT_NE(scaled.infer(mixed), clipped.infer(mixed));
}

TEST(Engine, SetConfigSwitchesDefuzzifier) {
  MamdaniEngine e = makeTipper();
  const std::array<double, 2> in{7.5, 10.0};
  const double centroid = e.infer(in);

  EngineConfig cfg = e.config();
  cfg.defuzzifier = Defuzzifier::LargestOfMax;
  e.setConfig(cfg);
  const double lom = e.infer(in);
  EXPECT_GT(lom, centroid);  // LOM rides the rightmost maximizing plateau

  EngineConfig bad = cfg;
  bad.resolution = 0;
  EXPECT_THROW(e.setConfig(bad), std::invalid_argument);
}

TEST(Engine, OutputAlwaysWithinUniverse) {
  const MamdaniEngine e = makeTipper();
  for (double s = 0.0; s <= 10.0; s += 1.0) {
    for (double f = 0.0; f <= 10.0; f += 1.0) {
      const std::array<double, 2> in{s, f};
      const double out = e.infer(in);
      EXPECT_GE(out, 0.0);
      EXPECT_LE(out, 30.0);
    }
  }
}

TEST(Engine, SealValidatesOnceAndMutationUnseals) {
  MamdaniEngine e = makeTipper();
  EXPECT_FALSE(e.sealed());
  e.seal();
  EXPECT_TRUE(e.sealed());
  // Any structural mutation drops the cached validation.
  e.setConfig(e.config());
  EXPECT_FALSE(e.sealed());
  e.seal();
  e.addRule({"poor", "bad"}, "low");
  EXPECT_FALSE(e.sealed());

  // Sealing an invalid engine reports the defect instead of caching it.
  MamdaniEngine empty{"e"};
  EXPECT_THROW(empty.seal(), std::logic_error);
  EXPECT_FALSE(empty.sealed());
}

TEST(Engine, ScratchInferenceIsBitIdenticalToTracedPath) {
  MamdaniEngine e = makeTipper();
  e.seal();
  InferenceScratch scratch;
  for (double s = 0.0; s <= 10.0; s += 0.5) {
    for (double f = 0.0; f <= 10.0; f += 0.5) {
      const std::array<double, 2> in{s, f};
      const double traced = e.inferTraced(in).crisp_output;
      // Exact equality on purpose: the scratch path must run the same
      // arithmetic in the same order, or sealed/unsealed (and batched /
      // unbatched) consumers would diverge.
      EXPECT_EQ(e.infer(in), traced) << "s=" << s << " f=" << f;
      EXPECT_EQ(e.infer(in, scratch), traced) << "s=" << s << " f=" << f;
      // A warm (dirty) scratch must not leak state into the next call.
      EXPECT_EQ(e.infer(in, scratch), traced) << "s=" << s << " f=" << f;
    }
  }
}

TEST(Engine, OneScratchServesEnginesOfDifferentShape) {
  MamdaniEngine tipper = makeTipper();
  MamdaniEngine single{"single"};
  LinguisticVariable v{"v", Interval{0.0, 1.0}};
  v.addTerm("lo", makeTriangle(0.0, 0.0, 1.0));
  v.addTerm("hi", makeTriangle(1.0, 1.0, 0.0));
  single.addInput(v);
  single.setOutput(v);
  single.addRule({"lo"}, "lo");
  single.addRule({"hi"}, "hi");

  InferenceScratch scratch;
  const std::array<double, 2> two{9.0, 9.0};
  const std::array<double, 1> one{0.25};
  const double a = tipper.infer(two, scratch);
  const double b = single.infer(one, scratch);
  // Interleave the shapes: the scratch resizes per call, never bleeds.
  EXPECT_EQ(tipper.infer(two, scratch), a);
  EXPECT_EQ(single.infer(one, scratch), b);
}

TEST(Engine, SealedTablesMatchUnsealedPathBitExactly) {
  // One engine runs the precomputed sample-grid tables, the other evaluates
  // the aggregated curve through the term objects. The seal must be a pure
  // representation change: same grid, same apply() order, same bits.
  MamdaniEngine sealed_engine = makeTipper();
  sealed_engine.seal();
  MamdaniEngine unsealed_engine = makeTipper();
  ASSERT_FALSE(unsealed_engine.sealed());
  for (double s = 0.0; s <= 10.0; s += 0.25) {
    for (double f : {0.0, 1.5, 3.0, 6.5, 10.0}) {
      const std::array<double, 2> in{s, f};
      EXPECT_EQ(sealed_engine.infer(in), unsealed_engine.infer(in))
          << "s=" << s << " f=" << f;
    }
  }
}

TEST(Engine, InferBatchMatchesScalarBitExactly) {
  MamdaniEngine e = makeTipper();
  e.seal();

  std::vector<double> inputs;
  for (double s = 0.0; s <= 10.0; s += 0.5) {
    for (double f = 0.0; f <= 10.0; f += 1.0) {
      inputs.push_back(s);
      inputs.push_back(f);
    }
  }
  const std::size_t entries = inputs.size() / 2;
  std::vector<double> outputs(entries);
  BatchScratch scratch;
  e.inferBatch(inputs, outputs, scratch);
  for (std::size_t i = 0; i < entries; ++i) {
    const std::array<double, 2> in{inputs[2 * i], inputs[2 * i + 1]};
    EXPECT_EQ(outputs[i], e.infer(in)) << "entry " << i;
  }
}

TEST(Engine, InferBatchMemoHandlesRepeatsAndMidBatchChanges) {
  MamdaniEngine e = makeTipper();
  e.seal();

  // Entries repeat the shared input, repeat fully, then change it mid-batch
  // — the memo must reuse only what is bitwise unchanged.
  const std::vector<double> inputs{
      3.0, 4.0,   // cold entry
      3.0, 4.0,   // full repeat: reuses the previous output outright
      3.0, 7.0,   // first input repeats, second changes
      5.0, 7.0,   // first changes, second repeats
      5.0, 7.0,   // full repeat again
      2.0, 1.0};  // both change
  std::vector<double> outputs(inputs.size() / 2);
  BatchScratch scratch;
  e.inferBatch(inputs, outputs, scratch);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const std::array<double, 2> in{inputs[2 * i], inputs[2 * i + 1]};
    EXPECT_EQ(outputs[i], e.infer(in)) << "entry " << i;
  }

  // The memo spans calls: a second batch starting on the last entry's
  // inputs still matches the scalar path.
  const std::vector<double> next{2.0, 1.0, 2.0, 6.0};
  std::vector<double> next_out(2);
  e.inferBatch(next, next_out, scratch);
  EXPECT_EQ(next_out[0], e.infer(std::array<double, 2>{2.0, 1.0}));
  EXPECT_EQ(next_out[1], e.infer(std::array<double, 2>{2.0, 6.0}));
}

TEST(Engine, InferBatchChecksArity) {
  MamdaniEngine e = makeTipper();
  e.seal();
  BatchScratch scratch;
  const std::vector<double> three{1.0, 2.0, 3.0};  // not a multiple of 2
  std::vector<double> one(1);
  EXPECT_THROW(e.inferBatch(three, one, scratch), std::invalid_argument);
  std::vector<double> two(2);  // 3 inputs for 2 entries of arity 2
  EXPECT_THROW(e.inferBatch(three, two, scratch), std::invalid_argument);
}

TEST(Engine, BatchScratchRekeysAcrossEnginesAndReseals) {
  MamdaniEngine tipper = makeTipper();
  tipper.seal();
  MamdaniEngine single{"single"};
  LinguisticVariable v{"v", Interval{0.0, 1.0}};
  v.addTerm("lo", makeTriangle(0.0, 0.0, 1.0));
  v.addTerm("hi", makeTriangle(1.0, 1.0, 0.0));
  single.addInput(v);
  single.setOutput(v);
  single.addRule({"lo"}, "lo");
  single.addRule({"hi"}, "hi");
  single.seal();

  // One scratch ping-pongs between engines of different arity: the memo is
  // keyed to the seal id, so a stale memo from the other engine must never
  // be consulted.
  BatchScratch scratch;
  const std::vector<double> two{3.0, 4.0};
  const std::vector<double> one{0.25};
  std::vector<double> out(1);
  for (int round = 0; round < 3; ++round) {
    tipper.inferBatch(two, out, scratch);
    EXPECT_EQ(out[0], tipper.infer(two));
    single.inferBatch(one, out, scratch);
    EXPECT_EQ(out[0], single.infer(one));
  }

  // Resealing mints a fresh id: the memo from the previous seal is dropped
  // even though the engine object is the same.
  tipper.inferBatch(two, out, scratch);
  tipper.setConfig(tipper.config());
  tipper.seal();
  tipper.inferBatch(two, out, scratch);
  EXPECT_EQ(out[0], tipper.infer(two));

  // Unsealed engines (seal id 0) must not persist a memo across calls.
  MamdaniEngine fresh = makeTipper();
  ASSERT_FALSE(fresh.sealed());
  fresh.inferBatch(two, out, scratch);
  EXPECT_EQ(out[0], fresh.infer(two));
  fresh.addRule({"good", "tasty"}, "high");  // same arity, new behaviour
  fresh.inferBatch(two, out, scratch);
  EXPECT_EQ(out[0], fresh.infer(two));
}

}  // namespace
}  // namespace facs::fuzzy
