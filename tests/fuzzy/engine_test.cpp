#include "fuzzy/engine.hpp"

#include <gtest/gtest.h>

#include <array>

namespace facs::fuzzy {
namespace {

/// A tiny two-input "tipper"-style controller used across engine tests.
MamdaniEngine makeTipper(EngineConfig config = {}) {
  MamdaniEngine e{"tipper", config};

  LinguisticVariable service{"service", Interval{0.0, 10.0}};
  service.addTerm("poor", makeTriangle(0.0, 0.0, 5.0));
  service.addTerm("good", makeTriangle(5.0, 5.0, 5.0));
  service.addTerm("great", makeTriangle(10.0, 5.0, 0.0));

  LinguisticVariable food{"food", Interval{0.0, 10.0}};
  food.addTerm("bad", makeTrapezoid(0.0, 2.0, 0.0, 4.0));
  food.addTerm("tasty", makeTrapezoid(8.0, 10.0, 4.0, 0.0));

  LinguisticVariable tip{"tip", Interval{0.0, 30.0}};
  tip.addTerm("low", makeTriangle(5.0, 5.0, 5.0));
  tip.addTerm("medium", makeTriangle(15.0, 5.0, 5.0));
  tip.addTerm("high", makeTriangle(25.0, 5.0, 5.0));

  e.addInput(std::move(service));
  e.addInput(std::move(food));
  e.setOutput(std::move(tip));

  e.addRule({"poor", "*"}, "low");
  e.addRule({"good", "*"}, "medium");
  e.addRule({"great", "bad"}, "medium");
  e.addRule({"great", "tasty"}, "high");
  return e;
}

TEST(Engine, ConstructionValidation) {
  EXPECT_THROW(MamdaniEngine("", EngineConfig{}), std::invalid_argument);
  EngineConfig bad;
  bad.resolution = 1;
  EXPECT_THROW(MamdaniEngine("x", bad), std::invalid_argument);
}

TEST(Engine, CheckValidCatchesMissingPieces) {
  MamdaniEngine empty{"e"};
  EXPECT_THROW(empty.checkValid(), std::logic_error);  // no inputs

  MamdaniEngine no_output{"e"};
  LinguisticVariable v{"v", Interval{0.0, 1.0}};
  v.addTerm("t", makeTriangle(0.5, 0.5, 0.5));
  no_output.addInput(v);
  EXPECT_THROW(no_output.checkValid(), std::logic_error);  // no output

  MamdaniEngine no_rules{"e"};
  no_rules.addInput(v);
  no_rules.setOutput(v);
  EXPECT_THROW(no_rules.checkValid(), std::logic_error);  // empty rule base
}

TEST(Engine, CheckValidCatchesConflicts) {
  MamdaniEngine e{"e"};
  LinguisticVariable v{"v", Interval{0.0, 1.0}};
  v.addTerm("lo", makeTriangle(0.0, 0.0, 1.0));
  v.addTerm("hi", makeTriangle(1.0, 1.0, 0.0));
  e.addInput(v);
  e.setOutput(v);
  e.addRule({"lo"}, "lo");
  e.addRule({"lo"}, "hi");
  EXPECT_THROW(e.checkValid(), std::logic_error);
}

TEST(Engine, InferArityMismatchThrows) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 1> one{5.0};
  EXPECT_THROW((void)e.infer(one), std::invalid_argument);
}

TEST(Engine, SingleDominantRuleCentersOnConsequent) {
  const MamdaniEngine e = makeTipper();
  // service=0 fires only "poor -> low" at full strength.
  const std::array<double, 2> in{0.0, 5.0};
  EXPECT_NEAR(e.infer(in), 5.0, 0.2);
}

TEST(Engine, GreatServiceTastyFoodGivesHighTip) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 2> in{10.0, 10.0};
  EXPECT_NEAR(e.infer(in), 25.0, 0.2);
}

TEST(Engine, InterpolatesBetweenRules) {
  const MamdaniEngine e = makeTipper();
  // service=7.5: good=0.5, great=0.5; food=10 -> medium and high both fire.
  const std::array<double, 2> in{7.5, 10.0};
  const double out = e.infer(in);
  EXPECT_GT(out, 15.0);
  EXPECT_LT(out, 25.0);
}

TEST(Engine, MonotoneInServiceQuality) {
  const MamdaniEngine e = makeTipper();
  double prev = -1.0;
  for (double s = 0.0; s <= 10.0; s += 0.5) {
    const std::array<double, 2> in{s, 10.0};
    const double out = e.infer(in);
    EXPECT_GE(out + 1e-9, prev) << "tip dropped at service=" << s;
    prev = out;
  }
}

TEST(Engine, ClampsInputsToUniverse) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 2> wild{42.0, -3.0};
  const std::array<double, 2> edge{10.0, 0.0};
  EXPECT_DOUBLE_EQ(e.infer(wild), e.infer(edge));
}

TEST(Engine, TraceReportsActivationsAndWinner) {
  const MamdaniEngine e = makeTipper();
  const std::array<double, 2> in{7.5, 10.0};
  const InferenceTrace trace = e.inferTraced(in);

  ASSERT_EQ(trace.fuzzified.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.fuzzified[0][1], 0.5);  // good
  EXPECT_DOUBLE_EQ(trace.fuzzified[0][2], 0.5);  // great

  // Rules 1 (good->medium) and 3 (great&tasty->high) fire.
  ASSERT_EQ(trace.activations.size(), 2u);
  EXPECT_EQ(trace.activations[0].rule_index, 1u);
  EXPECT_DOUBLE_EQ(trace.activations[0].firing_strength, 0.5);
  EXPECT_EQ(trace.activations[1].rule_index, 3u);
  EXPECT_DOUBLE_EQ(trace.activations[1].firing_strength, 0.5);

  EXPECT_EQ(e.output().term(trace.winning_output_term).name(),
            trace.crisp_output > 20.0 ? "high" : "medium");
}

TEST(Engine, RuleWeightScalesInfluence) {
  MamdaniEngine weighted = makeTipper();
  // Re-add the high rule with a tiny weight via a fresh engine.
  MamdaniEngine e{"tipper2"};
  const MamdaniEngine base = makeTipper();
  for (const auto& v : base.inputs()) e.addInput(v);
  e.setOutput(base.output());
  e.addRule({"poor", "*"}, "low");
  e.addRule({"good", "*"}, "medium");
  e.addRule({"great", "bad"}, "medium");
  e.addRule({"great", "tasty"}, "high", 0.1);

  const std::array<double, 2> in{7.5, 10.0};
  EXPECT_LT(e.infer(in), base.infer(in));
}

TEST(Engine, ProductOperatorsDifferButAgreeOnDominantRule) {
  EngineConfig prod;
  prod.conjunction = TNorm::AlgebraicProduct;
  prod.implication = TNorm::AlgebraicProduct;
  prod.aggregation = SNorm::AlgebraicSum;
  const MamdaniEngine scaled = makeTipper(prod);
  const MamdaniEngine clipped = makeTipper();

  const std::array<double, 2> dominant{0.0, 5.0};
  EXPECT_NEAR(scaled.infer(dominant), clipped.infer(dominant), 0.5);

  const std::array<double, 2> mixed{6.0, 7.0};
  // Different operator families genuinely differ on mixed activations.
  EXPECT_NE(scaled.infer(mixed), clipped.infer(mixed));
}

TEST(Engine, SetConfigSwitchesDefuzzifier) {
  MamdaniEngine e = makeTipper();
  const std::array<double, 2> in{7.5, 10.0};
  const double centroid = e.infer(in);

  EngineConfig cfg = e.config();
  cfg.defuzzifier = Defuzzifier::LargestOfMax;
  e.setConfig(cfg);
  const double lom = e.infer(in);
  EXPECT_GT(lom, centroid);  // LOM rides the rightmost maximizing plateau

  EngineConfig bad = cfg;
  bad.resolution = 0;
  EXPECT_THROW(e.setConfig(bad), std::invalid_argument);
}

TEST(Engine, OutputAlwaysWithinUniverse) {
  const MamdaniEngine e = makeTipper();
  for (double s = 0.0; s <= 10.0; s += 1.0) {
    for (double f = 0.0; f <= 10.0; f += 1.0) {
      const std::array<double, 2> in{s, f};
      const double out = e.infer(in);
      EXPECT_GE(out, 0.0);
      EXPECT_LE(out, 30.0);
    }
  }
}

TEST(Engine, SealValidatesOnceAndMutationUnseals) {
  MamdaniEngine e = makeTipper();
  EXPECT_FALSE(e.sealed());
  e.seal();
  EXPECT_TRUE(e.sealed());
  // Any structural mutation drops the cached validation.
  e.setConfig(e.config());
  EXPECT_FALSE(e.sealed());
  e.seal();
  e.addRule({"poor", "bad"}, "low");
  EXPECT_FALSE(e.sealed());

  // Sealing an invalid engine reports the defect instead of caching it.
  MamdaniEngine empty{"e"};
  EXPECT_THROW(empty.seal(), std::logic_error);
  EXPECT_FALSE(empty.sealed());
}

TEST(Engine, ScratchInferenceIsBitIdenticalToTracedPath) {
  MamdaniEngine e = makeTipper();
  e.seal();
  InferenceScratch scratch;
  for (double s = 0.0; s <= 10.0; s += 0.5) {
    for (double f = 0.0; f <= 10.0; f += 0.5) {
      const std::array<double, 2> in{s, f};
      const double traced = e.inferTraced(in).crisp_output;
      // Exact equality on purpose: the scratch path must run the same
      // arithmetic in the same order, or sealed/unsealed (and batched /
      // unbatched) consumers would diverge.
      EXPECT_EQ(e.infer(in), traced) << "s=" << s << " f=" << f;
      EXPECT_EQ(e.infer(in, scratch), traced) << "s=" << s << " f=" << f;
      // A warm (dirty) scratch must not leak state into the next call.
      EXPECT_EQ(e.infer(in, scratch), traced) << "s=" << s << " f=" << f;
    }
  }
}

TEST(Engine, OneScratchServesEnginesOfDifferentShape) {
  MamdaniEngine tipper = makeTipper();
  MamdaniEngine single{"single"};
  LinguisticVariable v{"v", Interval{0.0, 1.0}};
  v.addTerm("lo", makeTriangle(0.0, 0.0, 1.0));
  v.addTerm("hi", makeTriangle(1.0, 1.0, 0.0));
  single.addInput(v);
  single.setOutput(v);
  single.addRule({"lo"}, "lo");
  single.addRule({"hi"}, "hi");

  InferenceScratch scratch;
  const std::array<double, 2> two{9.0, 9.0};
  const std::array<double, 1> one{0.25};
  const double a = tipper.infer(two, scratch);
  const double b = single.infer(one, scratch);
  // Interleave the shapes: the scratch resizes per call, never bleeds.
  EXPECT_EQ(tipper.infer(two, scratch), a);
  EXPECT_EQ(single.infer(one, scratch), b);
}

}  // namespace
}  // namespace facs::fuzzy
