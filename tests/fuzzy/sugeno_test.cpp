#include "fuzzy/sugeno.hpp"

#include <gtest/gtest.h>

#include <array>

namespace facs::fuzzy {
namespace {

LinguisticVariable makeAxis(const std::string& name) {
  LinguisticVariable v{name, Interval{0.0, 10.0}};
  v.addTerm("lo", makeTriangle(0.0, 0.0, 10.0));
  v.addTerm("hi", makeTriangle(10.0, 10.0, 0.0));
  return v;
}

TEST(LinearConsequentTest, Evaluate) {
  const LinearConsequent zero_order{5.0, {}};
  const std::array<double, 2> in{1.0, 2.0};
  EXPECT_DOUBLE_EQ(zero_order.evaluate(in), 5.0);

  const LinearConsequent first_order{1.0, {2.0, -0.5}};
  EXPECT_DOUBLE_EQ(first_order.evaluate(in), 1.0 + 2.0 - 1.0);
}

TEST(SugenoEngine, ValidatesConstruction) {
  EXPECT_THROW(SugenoEngine(""), std::invalid_argument);

  SugenoEngine e{"tsk"};
  e.addInput(makeAxis("x"));
  EXPECT_THROW(e.addRule({"lo", "hi"}, {0.0, {}}), std::invalid_argument);
  EXPECT_THROW(e.addRule({"nope"}, {0.0, {}}), std::invalid_argument);
  EXPECT_THROW(e.addRule({"lo"}, {0.0, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(e.addRule({"lo"}, {0.0, {}}, 0.0), std::invalid_argument);
}

TEST(SugenoEngine, InferRequiresInputsAndRules) {
  SugenoEngine empty{"tsk"};
  const std::array<double, 0> none{};
  EXPECT_THROW((void)empty.infer(none), std::logic_error);

  SugenoEngine no_rules{"tsk"};
  no_rules.addInput(makeAxis("x"));
  const std::array<double, 1> one{5.0};
  EXPECT_THROW((void)no_rules.infer(one), std::logic_error);

  SugenoEngine e{"tsk"};
  e.addInput(makeAxis("x"));
  e.addRule({"lo"}, {0.0, {}});
  const std::array<double, 2> two{1.0, 2.0};
  EXPECT_THROW((void)e.infer(two), std::invalid_argument);
}

TEST(SugenoEngine, ZeroOrderInterpolatesBetweenRuleOutputs) {
  SugenoEngine e{"tsk"};
  e.addInput(makeAxis("x"));
  e.addRule({"lo"}, {0.0, {}});
  e.addRule({"hi"}, {100.0, {}});

  const std::array<double, 1> at0{0.0};
  const std::array<double, 1> at5{5.0};
  const std::array<double, 1> at10{10.0};
  EXPECT_NEAR(e.infer(at0), 0.0, 1e-12);
  EXPECT_NEAR(e.infer(at5), 50.0, 1e-12);
  EXPECT_NEAR(e.infer(at10), 100.0, 1e-12);

  // TSK interpolation over a 2-term ruler partition is exactly linear.
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const std::array<double, 1> in{x};
    EXPECT_NEAR(e.infer(in), 10.0 * x, 1e-9) << "x=" << x;
  }
}

TEST(SugenoEngine, FirstOrderConsequentsUseInputs) {
  SugenoEngine e{"tsk"};
  e.addInput(makeAxis("x"));
  e.addInput(makeAxis("y"));
  // output = x + 2y regardless of region (single wildcard rule).
  e.addRule({"*", "*"}, {0.0, {1.0, 2.0}});
  const std::array<double, 2> in{3.0, 4.0};
  EXPECT_DOUBLE_EQ(e.infer(in), 11.0);
}

TEST(SugenoEngine, WeightsBiasTheAverage) {
  SugenoEngine heavy{"tsk"};
  heavy.addInput(makeAxis("x"));
  heavy.addRule({"lo"}, {0.0, {}}, 1.0);
  heavy.addRule({"hi"}, {100.0, {}}, 0.25);
  const std::array<double, 1> at5{5.0};
  // Both terms fire at 0.5; weights 0.5 vs 0.125 -> (0 + 12.5)/0.625 = 20.
  EXPECT_NEAR(heavy.infer(at5), 20.0, 1e-9);
}

TEST(SugenoEngine, NoFiredRuleFallsBackToZero) {
  LinguisticVariable gappy{"x", Interval{0.0, 10.0}};
  gappy.addTerm("left", makeTriangle(0.0, 0.0, 2.0));
  SugenoEngine e{"tsk"};
  e.addInput(std::move(gappy));
  e.addRule({"left"}, {42.0, {}});
  const std::array<double, 1> outside{9.0};
  EXPECT_DOUBLE_EQ(e.infer(outside), 0.0);
}

TEST(SugenoEngine, ClampsInputsLikeMamdani) {
  SugenoEngine e{"tsk"};
  e.addInput(makeAxis("x"));
  e.addRule({"lo"}, {0.0, {}});
  e.addRule({"hi"}, {100.0, {}});
  const std::array<double, 1> wild{25.0};
  const std::array<double, 1> edge{10.0};
  EXPECT_DOUBLE_EQ(e.infer(wild), e.infer(edge));
}

TEST(SugenoEngine, MinVersusProductConjunction) {
  const auto build = [](TNorm norm) {
    SugenoEngine e{"tsk", norm};
    e.addInput(makeAxis("x"));
    e.addInput(makeAxis("y"));
    e.addRule({"lo", "lo"}, {0.0, {}});
    e.addRule({"hi", "hi"}, {100.0, {}});
    return e;
  };
  const SugenoEngine prod = build(TNorm::AlgebraicProduct);
  const SugenoEngine min = build(TNorm::Minimum);
  // Asymmetric point: product (0.7*0.3 vs 0.3*0.7) keeps symmetry, min
  // (0.3 vs 0.3) too -> equal here; pick a point where they differ.
  const std::array<double, 2> in{7.0, 4.0};
  // prod: hi&hi = 0.7*0.4=0.28, lo&lo = 0.3*0.6=0.18 -> 100*28/46 = 60.87
  // min:  hi&hi = 0.4, lo&lo = 0.3 -> 100*0.4/0.7 = 57.14
  EXPECT_NEAR(prod.infer(in), 100.0 * 0.28 / 0.46, 1e-9);
  EXPECT_NEAR(min.infer(in), 100.0 * 0.4 / 0.7, 1e-9);
}

TEST(SugenoEngine, ScratchOverloadIsBitIdenticalAndReusable) {
  SugenoEngine e{"tsk"};
  e.addInput(makeAxis("x"));
  e.addInput(makeAxis("y"));
  e.addRule({"lo", "lo"}, {0.0, {}});
  e.addRule({"lo", "hi"}, {1.0, {0.5, -0.25}});
  e.addRule({"hi", "*"}, {100.0, {}});

  SugenoScratch scratch;
  for (double x = 0.0; x <= 10.0; x += 1.25) {
    for (double y = 0.0; y <= 10.0; y += 2.5) {
      const std::array<double, 2> in{x, y};
      const double plain = e.infer(in);
      // Exact equality: the scratch overload runs the same arithmetic in
      // the same order, only the buffer ownership changes.
      EXPECT_EQ(e.infer(in, scratch), plain) << x << "," << y;
      // A warm scratch must not leak the previous call's state.
      EXPECT_EQ(e.infer(in, scratch), plain) << x << "," << y;
    }
  }
}

TEST(SugenoEngine, OneScratchServesEnginesOfDifferentShape) {
  SugenoEngine two{"two"};
  two.addInput(makeAxis("x"));
  two.addInput(makeAxis("y"));
  two.addRule({"lo", "hi"}, {10.0, {}});
  two.addRule({"hi", "lo"}, {20.0, {}});

  SugenoEngine one{"one"};
  one.addInput(makeAxis("x"));
  one.addRule({"lo"}, {0.0, {}});
  one.addRule({"hi"}, {5.0, {1.0}});

  SugenoScratch scratch;
  const std::array<double, 2> in2{3.0, 8.0};
  const std::array<double, 1> in1{6.0};
  const double a = two.infer(in2, scratch);
  const double b = one.infer(in1, scratch);
  // Interleave the arities: the scratch resizes per call, never bleeds.
  EXPECT_EQ(two.infer(in2, scratch), a);
  EXPECT_EQ(one.infer(in1, scratch), b);
  EXPECT_EQ(a, two.infer(in2));
  EXPECT_EQ(b, one.infer(in1));
}

}  // namespace
}  // namespace facs::fuzzy
