#include "fuzzy/rule.hpp"

#include <gtest/gtest.h>

#include "fuzzy/variable.hpp"

namespace facs::fuzzy {
namespace {

std::vector<LinguisticVariable> makeInputs() {
  LinguisticVariable a{"a", Interval{0.0, 1.0}};
  a.addTerm("lo", makeTriangle(0.0, 0.0, 1.0));
  a.addTerm("hi", makeTriangle(1.0, 1.0, 0.0));
  LinguisticVariable b{"b", Interval{0.0, 1.0}};
  b.addTerm("x", makeTriangle(0.0, 0.0, 1.0));
  b.addTerm("y", makeTriangle(0.5, 0.5, 0.5));
  b.addTerm("z", makeTriangle(1.0, 1.0, 0.0));
  std::vector<LinguisticVariable> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}

LinguisticVariable makeOutput() {
  LinguisticVariable o{"o", Interval{0.0, 1.0}};
  o.addTerm("no", makeTriangle(0.0, 0.0, 1.0));
  o.addTerm("yes", makeTriangle(1.0, 1.0, 0.0));
  return o;
}

TEST(RuleBase, AddByNameResolvesIndices) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  rb.add(inputs, output, {"lo", "y"}, "yes");
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.rule(0).antecedent, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(rb.rule(0).consequent, 1u);
  EXPECT_DOUBLE_EQ(rb.rule(0).weight, 1.0);
}

TEST(RuleBase, WildcardAntecedent) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  rb.add(inputs, output, {"*", "z"}, "no", 0.5);
  EXPECT_EQ(rb.rule(0).antecedent[0], kAnyTerm);
  EXPECT_EQ(rb.rule(0).antecedent[1], 2u);
  EXPECT_DOUBLE_EQ(rb.rule(0).weight, 0.5);
}

TEST(RuleBase, AddRejectsBadInput) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  EXPECT_THROW(rb.add(inputs, output, {"lo"}, "yes"), std::invalid_argument);
  EXPECT_THROW(rb.add(inputs, output, {"lo", "nope"}, "yes"),
               std::invalid_argument);
  EXPECT_THROW(rb.add(inputs, output, {"lo", "y"}, "nope"),
               std::invalid_argument);
  EXPECT_THROW(rb.add(inputs, output, {"lo", "y"}, "yes", 0.0),
               std::invalid_argument);
  EXPECT_THROW(rb.add(inputs, output, {"lo", "y"}, "yes", 1.5),
               std::invalid_argument);
}

TEST(RuleBase, ValidateFlagsUncoveredCombinations) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  rb.add(inputs, output, {"lo", "x"}, "yes");
  const RuleBaseReport report = rb.validate(inputs, output);
  EXPECT_FALSE(report.ok);
  // 2 x 3 = 6 combinations, one covered.
  EXPECT_EQ(report.uncovered.size(), 5u);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_TRUE(report.malformed.empty());
}

TEST(RuleBase, WildcardCoversWholeAxis) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  rb.add(inputs, output, {"*", "x"}, "yes");
  rb.add(inputs, output, {"*", "y"}, "yes");
  rb.add(inputs, output, {"*", "z"}, "no");
  const RuleBaseReport report = rb.validate(inputs, output);
  EXPECT_TRUE(report.ok) << "uncovered: " << report.uncovered.size();
}

TEST(RuleBase, ValidateFlagsConflicts) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  rb.add(inputs, output, {"lo", "x"}, "yes");
  rb.add(inputs, output, {"lo", "x"}, "no");  // same antecedent, different action
  const RuleBaseReport report = rb.validate(inputs, output);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.conflicts.size(), 1u);
  EXPECT_EQ(report.conflicts[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(RuleBase, DuplicateIdenticalRulesAreNotConflicts) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  rb.add(inputs, output, {"lo", "x"}, "yes");
  rb.add(inputs, output, {"lo", "x"}, "yes");
  EXPECT_TRUE(rb.validate(inputs, output).conflicts.empty());
}

TEST(RuleBase, ValidateFlagsMalformedRules) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  Rule bad;
  bad.antecedent = {0, 7};  // term 7 does not exist on variable b
  bad.consequent = 0;
  RuleBase rb;
  rb.add(bad);
  const RuleBaseReport report = rb.validate(inputs, output);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.malformed.size(), 1u);
  EXPECT_EQ(report.malformed[0], 0u);
}

TEST(RuleBase, ValidateFlagsBadConsequentAndArity) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  Rule bad_consequent;
  bad_consequent.antecedent = {0, 0};
  bad_consequent.consequent = 9;
  Rule bad_arity;
  bad_arity.antecedent = {0};
  bad_arity.consequent = 0;
  RuleBase rb;
  rb.add(bad_consequent);
  rb.add(bad_arity);
  const RuleBaseReport report = rb.validate(inputs, output);
  EXPECT_EQ(report.malformed.size(), 2u);
}

TEST(RuleBase, UncoveredMessagesNameTerms) {
  const auto inputs = makeInputs();
  const auto output = makeOutput();
  RuleBase rb;
  rb.add(inputs, output, {"lo", "x"}, "yes");
  rb.add(inputs, output, {"lo", "y"}, "yes");
  rb.add(inputs, output, {"lo", "z"}, "yes");
  rb.add(inputs, output, {"hi", "x"}, "yes");
  rb.add(inputs, output, {"hi", "y"}, "yes");
  const RuleBaseReport report = rb.validate(inputs, output);
  ASSERT_EQ(report.uncovered.size(), 1u);
  EXPECT_EQ(report.uncovered[0], "a=hi & b=z");
}

}  // namespace
}  // namespace facs::fuzzy
