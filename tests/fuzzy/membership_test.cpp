#include "fuzzy/membership.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace facs::fuzzy {
namespace {

TEST(Interval, WidthContainsClamp) {
  const Interval u{-2.0, 3.0};
  EXPECT_DOUBLE_EQ(u.width(), 5.0);
  EXPECT_TRUE(u.contains(-2.0));
  EXPECT_TRUE(u.contains(3.0));
  EXPECT_TRUE(u.contains(0.0));
  EXPECT_FALSE(u.contains(-2.0001));
  EXPECT_FALSE(u.contains(3.0001));
  EXPECT_DOUBLE_EQ(u.clamp(-10.0), -2.0);
  EXPECT_DOUBLE_EQ(u.clamp(10.0), 3.0);
  EXPECT_DOUBLE_EQ(u.clamp(1.5), 1.5);
}

TEST(Triangular, PaperFormulaValues) {
  // f(x; x0=30, a0=15, a1=30) — the paper's "Middle speed" shape.
  const Triangular tri{30.0, 15.0, 30.0};
  EXPECT_DOUBLE_EQ(tri.degree(30.0), 1.0);            // apex
  EXPECT_DOUBLE_EQ(tri.degree(22.5), 0.5);            // halfway up the left
  EXPECT_DOUBLE_EQ(tri.degree(45.0), 0.5);            // halfway down the right
  EXPECT_DOUBLE_EQ(tri.degree(15.0), 0.0);            // left zero-crossing
  EXPECT_DOUBLE_EQ(tri.degree(60.0), 0.0);            // right zero-crossing
  EXPECT_DOUBLE_EQ(tri.degree(14.0), 0.0);            // outside left
  EXPECT_DOUBLE_EQ(tri.degree(61.0), 0.0);            // outside right
}

TEST(Triangular, AsymmetricSlopes) {
  const Triangular tri{0.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(tri.degree(-0.5), 0.5);
  EXPECT_DOUBLE_EQ(tri.degree(2.0), 0.5);
  EXPECT_DOUBLE_EQ(tri.degree(3.0), 0.25);
}

TEST(Triangular, ZeroLeftWidthIsCrispShoulder) {
  // Used for terms anchored at a universe edge, e.g. Near distance at 0 km.
  const Triangular tri{0.0, 0.0, 10.0};
  EXPECT_DOUBLE_EQ(tri.degree(0.0), 1.0);
  EXPECT_DOUBLE_EQ(tri.degree(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(tri.degree(5.0), 0.5);
  EXPECT_DOUBLE_EQ(tri.degree(10.0), 0.0);
}

TEST(Triangular, ZeroRightWidthIsCrispShoulder) {
  const Triangular tri{10.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(tri.degree(10.0), 1.0);
  EXPECT_DOUBLE_EQ(tri.degree(10.1), 0.0);
  EXPECT_DOUBLE_EQ(tri.degree(5.0), 0.5);
}

TEST(Triangular, SupportAndPeak) {
  const Triangular tri{30.0, 15.0, 30.0};
  EXPECT_EQ(tri.support(), (Interval{15.0, 60.0}));
  EXPECT_DOUBLE_EQ(tri.peak(), 30.0);
}

TEST(Triangular, RejectsInvalidParameters) {
  EXPECT_THROW(Triangular(0.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Triangular(0.0, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Triangular(0.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Triangular(std::numeric_limits<double>::quiet_NaN(), 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(Triangular(0.0, std::numeric_limits<double>::infinity(), 1.0),
               std::invalid_argument);
}

TEST(Trapezoidal, PaperFormulaValues) {
  // g(x; x0=0, x1=15, a0=0, a1=15) — the paper's "Slow speed" shape.
  const Trapezoidal trap{0.0, 15.0, 0.0, 15.0};
  EXPECT_DOUBLE_EQ(trap.degree(0.0), 1.0);
  EXPECT_DOUBLE_EQ(trap.degree(15.0), 1.0);   // plateau
  EXPECT_DOUBLE_EQ(trap.degree(7.0), 1.0);    // inside plateau
  EXPECT_DOUBLE_EQ(trap.degree(22.5), 0.5);   // halfway down
  EXPECT_DOUBLE_EQ(trap.degree(30.0), 0.0);   // zero-crossing
  EXPECT_DOUBLE_EQ(trap.degree(-0.1), 0.0);   // crisp left edge
}

TEST(Trapezoidal, BothSlopes) {
  const Trapezoidal trap{-1.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(trap.degree(-2.0), 0.5);
  EXPECT_DOUBLE_EQ(trap.degree(2.0), 0.5);
  EXPECT_DOUBLE_EQ(trap.degree(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(trap.degree(3.0), 0.0);
  EXPECT_DOUBLE_EQ(trap.degree(0.0), 1.0);
}

TEST(Trapezoidal, DegeneratePlateauBehavesLikeTriangle) {
  const Trapezoidal trap{5.0, 5.0, 2.0, 2.0};
  const Triangular tri{5.0, 2.0, 2.0};
  for (double x = 2.0; x <= 8.0; x += 0.25) {
    EXPECT_DOUBLE_EQ(trap.degree(x), tri.degree(x)) << "x=" << x;
  }
}

TEST(Trapezoidal, SupportAndPeak) {
  const Trapezoidal trap{-1.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(trap.support(), (Interval{-3.0, 4.0}));
  EXPECT_DOUBLE_EQ(trap.peak(), 0.0);  // plateau midpoint
}

TEST(Trapezoidal, RejectsInvalidParameters) {
  EXPECT_THROW(Trapezoidal(1.0, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Trapezoidal(0.0, 1.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Trapezoidal(0.0, 1.0, 1.0, -1.0), std::invalid_argument);
}

TEST(MembershipFunction, CloneIsIndependentAndEqual) {
  const Triangular tri{30.0, 15.0, 30.0};
  const auto clone = tri.clone();
  for (double x = 0.0; x <= 70.0; x += 1.0) {
    EXPECT_DOUBLE_EQ(clone->degree(x), tri.degree(x));
  }
  EXPECT_EQ(clone->describe(), tri.describe());
}

TEST(MembershipFunction, DescribeMentionsShapeAndParams) {
  EXPECT_EQ(Triangular(30.0, 15.0, 30.0).describe(), "tri(30, 15, 30)");
  EXPECT_EQ(Trapezoidal(0.0, 15.0, 0.0, 15.0).describe(), "trap(0, 15, 0, 15)");
}

/// Property sweep: every shape stays within [0, 1] and vanishes outside its
/// support, for a grid of parameterisations.
class MembershipRangeProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MembershipRangeProperty, DegreeStaysInUnitInterval) {
  const auto [center, left, right] = GetParam();
  const Triangular tri{center, left, right};
  const Interval s = tri.support();
  for (int i = -50; i <= 50; ++i) {
    const double x = center + i * (left + right) / 25.0;
    const double d = tri.degree(x);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    if (x < s.lo || x > s.hi) {
      EXPECT_DOUBLE_EQ(d, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MembershipRangeProperty,
    ::testing::Values(std::make_tuple(0.0, 1.0, 1.0),
                      std::make_tuple(-45.0, 45.0, 45.0),
                      std::make_tuple(30.0, 15.0, 30.0),
                      std::make_tuple(0.5, 0.125, 0.125),
                      std::make_tuple(100.0, 0.0, 20.0),
                      std::make_tuple(-1.0, 7.0, 0.0)));

}  // namespace
}  // namespace facs::fuzzy
