#include "fuzzy/variable.hpp"

#include <gtest/gtest.h>

namespace facs::fuzzy {
namespace {

LinguisticVariable makeSpeed() {
  LinguisticVariable v{"S", Interval{0.0, 120.0}};
  v.addTerm("Sl", makeTrapezoid(0.0, 15.0, 0.0, 15.0));
  v.addTerm("M", makeTriangle(30.0, 15.0, 30.0));
  v.addTerm("Fa", makeTrapezoid(60.0, 120.0, 30.0, 0.0));
  return v;
}

TEST(Term, RequiresNameAndFunction) {
  EXPECT_THROW(Term("", makeTriangle(0.0, 1.0, 1.0)), std::invalid_argument);
  EXPECT_THROW(Term("x", nullptr), std::invalid_argument);
}

TEST(Term, CopyDeepCopiesMembership) {
  Term a{"M", makeTriangle(30.0, 15.0, 30.0)};
  Term b = a;
  EXPECT_EQ(b.name(), "M");
  EXPECT_DOUBLE_EQ(b.degree(30.0), 1.0);
  EXPECT_NE(&a.mf(), &b.mf());

  Term c{"other", makeTriangle(0.0, 1.0, 1.0)};
  c = a;
  EXPECT_EQ(c.name(), "M");
  EXPECT_DOUBLE_EQ(c.degree(30.0), 1.0);
}

TEST(LinguisticVariable, RejectsBadUniverseOrName) {
  EXPECT_THROW(LinguisticVariable("", Interval{0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(LinguisticVariable("x", Interval{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(LinguisticVariable("x", Interval{2.0, 1.0}),
               std::invalid_argument);
}

TEST(LinguisticVariable, RejectsDuplicateTermNames) {
  LinguisticVariable v{"S", Interval{0.0, 1.0}};
  v.addTerm("a", makeTriangle(0.5, 0.5, 0.5));
  EXPECT_THROW(v.addTerm("a", makeTriangle(0.5, 0.5, 0.5)),
               std::invalid_argument);
}

TEST(LinguisticVariable, TermLookup) {
  const LinguisticVariable v = makeSpeed();
  EXPECT_EQ(v.termCount(), 3u);
  EXPECT_EQ(v.termIndex("Sl"), std::optional<std::size_t>{0});
  EXPECT_EQ(v.termIndex("M"), std::optional<std::size_t>{1});
  EXPECT_EQ(v.termIndex("Fa"), std::optional<std::size_t>{2});
  EXPECT_EQ(v.termIndex("nope"), std::nullopt);
  EXPECT_EQ(v.term(1).name(), "M");
}

TEST(LinguisticVariable, FuzzifyReturnsAllDegreesInOrder) {
  const LinguisticVariable v = makeSpeed();
  const FuzzyVector f = v.fuzzify(22.5);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f[0], 0.5);  // Slow: halfway down from plateau edge 15
  EXPECT_DOUBLE_EQ(f[1], 0.5);  // Middle: halfway up to 30
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // Fast
}

TEST(LinguisticVariable, FuzzifyClampsToUniverse) {
  const LinguisticVariable v = makeSpeed();
  // A GPS glitch reporting 140 km/h must behave like 120 km/h.
  EXPECT_EQ(v.fuzzify(140.0), v.fuzzify(120.0));
  EXPECT_EQ(v.fuzzify(-5.0), v.fuzzify(0.0));
}

TEST(LinguisticVariable, WinningTerm) {
  const LinguisticVariable v = makeSpeed();
  EXPECT_EQ(v.winningTerm(5.0), 0u);
  EXPECT_EQ(v.winningTerm(30.0), 1u);
  EXPECT_EQ(v.winningTerm(100.0), 2u);
  // Tie at 22.5 (Sl = M = 0.5) resolves to the earliest-declared term.
  EXPECT_EQ(v.winningTerm(22.5), 0u);
}

TEST(LinguisticVariable, WinningTermThrowsWithoutTerms) {
  const LinguisticVariable v{"empty", Interval{0.0, 1.0}};
  EXPECT_THROW((void)v.winningTerm(0.5), std::logic_error);
}

TEST(LinguisticVariable, CoverageDetection) {
  const LinguisticVariable speed = makeSpeed();
  EXPECT_TRUE(speed.covers());

  LinguisticVariable gappy{"g", Interval{0.0, 10.0}};
  gappy.addTerm("low", makeTriangle(0.0, 0.0, 3.0));
  gappy.addTerm("high", makeTriangle(10.0, 3.0, 0.0));  // hole in (3, 7)
  EXPECT_FALSE(gappy.covers());
}

TEST(LinguisticVariable, CoverageWithMinimumDegree) {
  LinguisticVariable v{"v", Interval{0.0, 10.0}};
  v.addTerm("low", makeTriangle(0.0, 0.0, 10.0));
  v.addTerm("high", makeTriangle(10.0, 10.0, 0.0));
  EXPECT_TRUE(v.covers(0.0));
  EXPECT_TRUE(v.covers(0.45));   // midpoint has degree 0.5 in both
  EXPECT_FALSE(v.covers(0.55));  // but not more than 0.5
}

TEST(LinguisticVariable, CoversRejectsBadSampleCount) {
  const LinguisticVariable v = makeSpeed();
  EXPECT_THROW((void)v.covers(0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace facs::fuzzy
