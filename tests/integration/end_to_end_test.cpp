/// Cross-module integration tests: the full GPS -> FLC1 -> FLC2 -> ledger
/// pipeline under every policy, accounting invariants, failure injection,
/// and cheap versions of the paper's headline claims so regressions in any
/// module show up as broken figure shapes.

#include <gtest/gtest.h>

#include "cac/baselines.hpp"
#include "core/facs.hpp"
#include "fuzzy/fdl.hpp"
#include "scc/shadow_cluster.hpp"
#include "sim/experiment.hpp"

namespace facs {
namespace {

using sim::ControllerFactory;
using sim::Metrics;
using sim::SimulationConfig;

SimulationConfig fastConfig(int requests, std::uint64_t seed = 21) {
  SimulationConfig cfg;
  cfg.total_requests = requests;
  cfg.seed = seed;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  return cfg;
}

std::vector<std::pair<std::string, ControllerFactory>> allPolicies() {
  std::vector<std::pair<std::string, ControllerFactory>> out;
  out.emplace_back("FACS", [](const cellular::HexNetwork&) {
    return std::make_unique<core::FacsController>();
  });
  out.emplace_back("CS", [](const cellular::HexNetwork&) {
    return std::make_unique<cac::CompleteSharingController>();
  });
  out.emplace_back("Guard", [](const cellular::HexNetwork&) {
    return std::make_unique<cac::GuardChannelController>(8);
  });
  out.emplace_back("MultiThr", [](const cellular::HexNetwork&) {
    return std::make_unique<cac::MultiThresholdController>(
        std::array<cellular::BandwidthUnits, 3>{38, 30, 20});
  });
  out.emplace_back("SCC", [](const cellular::HexNetwork& net) {
    return std::make_unique<scc::ShadowClusterController>(net);
  });
  return out;
}

TEST(EndToEnd, AccountingInvariantsHoldForEveryPolicy) {
  for (const auto& [name, factory] : allPolicies()) {
    SimulationConfig cfg = fastConfig(120);
    cfg.rings = 1;  // give SCC a real cluster
    const Metrics m = sim::runSimulation(cfg, factory);
    EXPECT_EQ(m.new_requests, 120) << name;
    EXPECT_EQ(m.new_requests, m.new_accepted + m.new_blocked) << name;
    EXPECT_EQ(m.completed, m.new_accepted) << name;  // no handoffs enabled
    EXPECT_GE(m.percentAccepted(), 0.0) << name;
    EXPECT_LE(m.percentAccepted(), 100.0) << name;
    EXPECT_LE(m.meanUtilization(), 1.0 + 1e-9) << name;
    int per_class = 0;
    for (const int c : m.class_requests) per_class += c;
    EXPECT_EQ(per_class, m.new_requests) << name;
  }
}

TEST(EndToEnd, HandoffAccountingHoldsForEveryPolicy) {
  for (const auto& [name, factory] : allPolicies()) {
    SimulationConfig cfg = fastConfig(80);
    cfg.rings = 1;
    cfg.cell_radius_km = 2.0;
    cfg.enable_handoffs = true;
    cfg.mobility_update_s = 5.0;
    cfg.scenario.speed_min_kmh = 50.0;
    cfg.scenario.speed_max_kmh = 120.0;
    cfg.scenario.distance_max_km = 2.0;
    const Metrics m = sim::runSimulation(cfg, factory);
    EXPECT_EQ(m.handoff_requests, m.handoff_accepted + m.handoff_dropped)
        << name;
    // Every admitted call either completed or was dropped at a handoff.
    EXPECT_EQ(m.new_accepted, m.completed + m.handoff_dropped) << name;
  }
}

/// Failure injection: a policy that throws mid-run must not corrupt the
/// simulation silently — the exception surfaces to the caller.
class ThrowingController final : public cellular::AdmissionController {
 public:
  explicit ThrowingController(int fuse) : fuse_{fuse} {}
  [[nodiscard]] std::string name() const override { return "Throwing"; }
  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest&, const cellular::AdmissionContext&) override {
    if (--fuse_ <= 0) throw std::runtime_error("controller exploded");
    return {true, cellular::ReasonCode::Admitted, 1.0, "ok"};
  }

 private:
  int fuse_;
};

TEST(EndToEnd, ControllerExceptionPropagates) {
  const SimulationConfig cfg = fastConfig(30);
  EXPECT_THROW((void)sim::runSimulation(cfg,
                                        [](const cellular::HexNetwork&) {
                                          return std::make_unique<
                                              ThrowingController>(10);
                                        }),
               std::runtime_error);
}

/// Failure injection: a policy whose accepts never fit must end up with
/// zero admissions but intact accounting (the simulator's backstop).
class LyingController final : public cellular::AdmissionController {
 public:
  [[nodiscard]] std::string name() const override { return "Liar"; }
  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override {
    // Accept exactly when it does NOT fit.
    return {!context.station.canFit(request.demand_bu),
            cellular::ReasonCode::Admitted, 0.0, "lie"};
  }
};

TEST(EndToEnd, LyingControllerCannotCorruptLedger) {
  const Metrics m = sim::runSimulation(
      fastConfig(100), [](const cellular::HexNetwork&) {
        return std::make_unique<LyingController>();
      });
  EXPECT_EQ(m.new_accepted, 0);  // empty cell: every "accept" was a lie
  EXPECT_EQ(m.new_blocked, 100);
  EXPECT_DOUBLE_EQ(m.meanUtilization(), 0.0);
}

// ---------------------------------------------------------------------------
// Cheap paper-shape regression checks (the full sweeps live in bench/).
// ---------------------------------------------------------------------------

double meanAcceptance(const SimulationConfig& base, int requests,
                      const ControllerFactory& factory, int reps = 3) {
  sim::RunningStat stat;
  for (int r = 0; r < reps; ++r) {
    SimulationConfig cfg = base;
    cfg.total_requests = requests;
    cfg.seed = 1000 + static_cast<std::uint64_t>(r);
    stat.add(sim::runSimulation(cfg, factory).percentAccepted());
  }
  return stat.mean();
}

ControllerFactory facsFactory() {
  return [](const cellular::HexNetwork&) {
    return std::make_unique<core::FacsController>();
  };
}

TEST(PaperShapes, Fig7FastUsersBeatWalkersUnderLoad) {
  SimulationConfig walkers;
  walkers.scenario = sim::fig7Scenario(4.0);
  SimulationConfig drivers;
  drivers.scenario = sim::fig7Scenario(60.0);
  const double slow = meanAcceptance(walkers, 80, facsFactory());
  const double fast = meanAcceptance(drivers, 80, facsFactory());
  EXPECT_GT(fast, slow + 15.0);
}

TEST(PaperShapes, Fig8StraightBeatsPerpendicular) {
  SimulationConfig straight;
  straight.scenario = sim::fig8Scenario(0.0);
  SimulationConfig perpendicular;
  perpendicular.scenario = sim::fig8Scenario(90.0);
  const double head_on = meanAcceptance(straight, 80, facsFactory());
  const double tangent = meanAcceptance(perpendicular, 80, facsFactory());
  EXPECT_GT(head_on, tangent + 10.0);
}

TEST(PaperShapes, Fig9DistanceIsAWeakInput) {
  SimulationConfig near;
  near.scenario = sim::fig9Scenario(1.0);
  SimulationConfig far;
  far.scenario = sim::fig9Scenario(10.0);
  const double near_pct = meanAcceptance(near, 80, facsFactory());
  const double far_pct = meanAcceptance(far, 80, facsFactory());
  EXPECT_GT(near_pct, far_pct - 2.0);   // ordered ...
  EXPECT_LT(near_pct - far_pct, 20.0);  // ... but the gap stays small
}

TEST(PaperShapes, Fig10CrossoverDirection) {
  SimulationConfig base;
  base.rings = 1;
  base.scenario = sim::fig10Scenario();
  base.arrival_window_s = 600.0 / 7.0;
  scc::SccConfig scc_cfg;
  scc_cfg.threshold = 0.85;
  scc_cfg.sigma_growth_km = 0.0;
  const ControllerFactory scc_factory =
      [scc_cfg](const cellular::HexNetwork& net) {
        return std::make_unique<scc::ShadowClusterController>(net, scc_cfg);
      };
  // Light load: FACS >= SCC. Heavy load: SCC >= FACS.
  const double facs_light = meanAcceptance(base, 20, facsFactory(), 5);
  const double scc_light = meanAcceptance(base, 20, scc_factory, 5);
  const double facs_heavy = meanAcceptance(base, 100, facsFactory(), 5);
  const double scc_heavy = meanAcceptance(base, 100, scc_factory, 5);
  EXPECT_GE(facs_light, scc_light - 1.0);
  EXPECT_GE(scc_heavy, facs_heavy - 1.0);
}

/// The two FACS engines round-trip through FDL with identical behaviour —
/// the serialized controllers are faithful artefacts.
TEST(EndToEnd, FacsEnginesRoundTripThroughFdl) {
  const core::FacsController facs;
  const fuzzy::MamdaniEngine flc1 = fuzzy::parseFdl(fuzzy::toFdl(facs.flc1()));
  const fuzzy::MamdaniEngine flc2 = fuzzy::parseFdl(fuzzy::toFdl(facs.flc2()));
  for (double s = 0.0; s <= 120.0; s += 30.0) {
    for (double a = -180.0; a <= 180.0; a += 60.0) {
      const std::array<double, 3> in1{s, a, 5.0};
      EXPECT_DOUBLE_EQ(flc1.infer(in1), facs.flc1().infer(in1));
    }
  }
  for (double cv = 0.0; cv <= 1.0; cv += 0.25) {
    for (double cs = 0.0; cs <= 40.0; cs += 10.0) {
      const std::array<double, 3> in2{cv, 5.0, cs};
      EXPECT_DOUBLE_EQ(flc2.infer(in2), facs.flc2().infer(in2));
    }
  }
}

}  // namespace
}  // namespace facs
