#include "cellular/traffic.hpp"

#include <gtest/gtest.h>

namespace facs::cellular {
namespace {

TEST(ServiceProfiles, PaperBandwidthDemands) {
  // Section 4: "The requested size was 1, 5 and 10 BU for text, voice and
  // video, respectively."
  EXPECT_EQ(profileFor(ServiceClass::Text).demand_bu, 1);
  EXPECT_EQ(profileFor(ServiceClass::Voice).demand_bu, 5);
  EXPECT_EQ(profileFor(ServiceClass::Video).demand_bu, 10);
}

TEST(ServiceProfiles, RealTimeSplitMatchesDsCounters) {
  // Voice and video feed the Real-Time Counter; text the Non-Real-Time one.
  EXPECT_FALSE(profileFor(ServiceClass::Text).real_time);
  EXPECT_TRUE(profileFor(ServiceClass::Voice).real_time);
  EXPECT_TRUE(profileFor(ServiceClass::Video).real_time);
}

TEST(ServiceProfiles, Names) {
  EXPECT_EQ(toString(ServiceClass::Text), "text");
  EXPECT_EQ(toString(ServiceClass::Voice), "voice");
  EXPECT_EQ(toString(ServiceClass::Video), "video");
}

TEST(TrafficMix, PaperDefaultFractions) {
  const TrafficMix mix = TrafficMix::paperDefault();
  EXPECT_DOUBLE_EQ(mix.fraction(ServiceClass::Text), 0.60);
  EXPECT_DOUBLE_EQ(mix.fraction(ServiceClass::Voice), 0.30);
  EXPECT_DOUBLE_EQ(mix.fraction(ServiceClass::Video), 0.10);
}

TEST(TrafficMix, MeanDemand) {
  // 0.6*1 + 0.3*5 + 0.1*10 = 3.1 BU.
  EXPECT_NEAR(TrafficMix::paperDefault().meanDemandBu(), 3.1, 1e-12);
  EXPECT_NEAR(TrafficMix(1.0, 0.0, 0.0).meanDemandBu(), 1.0, 1e-12);
  EXPECT_NEAR(TrafficMix(0.0, 0.0, 1.0).meanDemandBu(), 10.0, 1e-12);
}

TEST(TrafficMix, Validation) {
  EXPECT_THROW(TrafficMix(0.5, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(TrafficMix(-0.1, 0.6, 0.5), std::invalid_argument);
  EXPECT_THROW(TrafficMix(0.3, 0.3, 0.3), std::invalid_argument);
  EXPECT_NO_THROW(TrafficMix(0.0, 0.0, 1.0));
}

TEST(TrafficMix, SamplingMatchesFractions) {
  const TrafficMix mix = TrafficMix::paperDefault();
  std::mt19937_64 rng{12345};
  std::array<int, kServiceClassCount> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<std::size_t>(mix.sample(rng))]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.60, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.30, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.10, 0.01);
}

TEST(TrafficMix, DegenerateMixAlwaysSamplesThatClass) {
  const TrafficMix video_only{0.0, 0.0, 1.0};
  std::mt19937_64 rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(video_only.sample(rng), ServiceClass::Video);
  }
}

}  // namespace
}  // namespace facs::cellular
