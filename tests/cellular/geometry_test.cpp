#include "cellular/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace facs::cellular {
namespace {

TEST(Angles, NormalizeIntoHalfOpenRange) {
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(180.0), 180.0);
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(-180.0), 180.0);
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(190.0), -170.0);
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(720.0 + 45.0), 45.0);
  EXPECT_DOUBLE_EQ(normalizeAngleDeg(-3600.0 - 90.0), -90.0);
}

TEST(Angles, DegreesRadiansRoundTrip) {
  for (double d = -180.0; d <= 180.0; d += 15.0) {
    EXPECT_NEAR(radToDeg(degToRad(d)), d, 1e-12);
  }
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 4.0};
  EXPECT_EQ(a + b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a - b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(b.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.distanceTo(a), 0.0);
  EXPECT_DOUBLE_EQ((Vec2{0.0, 0.0}).distanceTo(Vec2{3.0, 4.0}), 5.0);
}

TEST(Headings, UnitVectors) {
  EXPECT_NEAR(headingVector(0.0).x, 1.0, 1e-12);
  EXPECT_NEAR(headingVector(0.0).y, 0.0, 1e-12);
  EXPECT_NEAR(headingVector(90.0).x, 0.0, 1e-12);
  EXPECT_NEAR(headingVector(90.0).y, 1.0, 1e-12);
  EXPECT_NEAR(headingVector(180.0).x, -1.0, 1e-12);
  EXPECT_NEAR(headingVector(-90.0).y, -1.0, 1e-12);
}

TEST(Headings, BearingBetweenPoints) {
  EXPECT_DOUBLE_EQ(bearingDeg({0.0, 0.0}, {1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(bearingDeg({0.0, 0.0}, {0.0, 1.0}), 90.0);
  EXPECT_DOUBLE_EQ(bearingDeg({0.0, 0.0}, {-1.0, 0.0}), 180.0);
  EXPECT_DOUBLE_EQ(bearingDeg({0.0, 0.0}, {0.0, -1.0}), -90.0);
  EXPECT_DOUBLE_EQ(bearingDeg({1.0, 1.0}, {2.0, 2.0}), 45.0);
  // Degenerate: identical points default to 0.
  EXPECT_DOUBLE_EQ(bearingDeg({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Headings, DeviationIsZeroWhenHeadingAtTarget) {
  // User south-west of the BS heading north-east, straight at it.
  const Vec2 user{-1.0, -1.0};
  const Vec2 bs{0.0, 0.0};
  EXPECT_NEAR(headingDeviationDeg(45.0, user, bs), 0.0, 1e-12);
  // Moving directly away.
  EXPECT_NEAR(std::abs(headingDeviationDeg(-135.0, user, bs)), 180.0, 1e-12);
  // Perpendicular.
  EXPECT_NEAR(headingDeviationDeg(135.0, user, bs), 90.0, 1e-12);
  EXPECT_NEAR(headingDeviationDeg(-45.0, user, bs), -90.0, 1e-12);
}

TEST(Hex, SCoordinateAndDistance) {
  EXPECT_EQ(hexS({0, 0}), 0);
  EXPECT_EQ(hexS({2, -1}), -1);
  EXPECT_EQ(hexDistance({0, 0}, {0, 0}), 0);
  EXPECT_EQ(hexDistance({0, 0}, {1, 0}), 1);
  EXPECT_EQ(hexDistance({0, 0}, {2, -1}), 2);
  EXPECT_EQ(hexDistance({-2, 1}, {2, -1}), 4);
}

TEST(Hex, NeighborsAreAtDistanceOne) {
  const HexCoord h{3, -2};
  const auto ns = hexNeighbors(h);
  ASSERT_EQ(ns.size(), 6u);
  for (const HexCoord& n : ns) {
    EXPECT_EQ(hexDistance(h, n), 1);
  }
}

TEST(Hex, CenterAndInverseRoundTrip) {
  const double radius = 10.0;
  for (int q = -3; q <= 3; ++q) {
    for (int r = -3; r <= 3; ++r) {
      const HexCoord h{q, r};
      EXPECT_EQ(pointToHex(hexCenter(h, radius), radius), h)
          << "q=" << q << " r=" << r;
    }
  }
}

TEST(Hex, PointToHexAssignsNearbyPoints) {
  const double radius = 10.0;
  const Vec2 center = hexCenter({1, -1}, radius);
  // Points well inside the hex (inradius ~8.66 km) stay in it.
  EXPECT_EQ(pointToHex(center + Vec2{4.0, 0.0}, radius), (HexCoord{1, -1}));
  EXPECT_EQ(pointToHex(center + Vec2{0.0, 4.0}, radius), (HexCoord{1, -1}));
}

TEST(Hex, DiskSizes) {
  EXPECT_EQ(hexDisk(-1).size(), 0u);
  EXPECT_EQ(hexDisk(0).size(), 1u);
  EXPECT_EQ(hexDisk(1).size(), 7u);
  EXPECT_EQ(hexDisk(2).size(), 19u);
  EXPECT_EQ(hexDisk(3).size(), 37u);  // 1 + 3n(n+1)
}

TEST(Hex, DiskRingsOrderedAndUnique) {
  const auto disk = hexDisk(2);
  EXPECT_EQ(disk[0], (HexCoord{0, 0}));
  for (std::size_t i = 1; i <= 6; ++i) {
    EXPECT_EQ(hexDistance({0, 0}, disk[i]), 1) << "i=" << i;
  }
  for (std::size_t i = 7; i < disk.size(); ++i) {
    EXPECT_EQ(hexDistance({0, 0}, disk[i]), 2) << "i=" << i;
  }
  for (std::size_t i = 0; i < disk.size(); ++i) {
    for (std::size_t j = i + 1; j < disk.size(); ++j) {
      EXPECT_FALSE(disk[i] == disk[j]) << "duplicate at " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace facs::cellular
