#include "cellular/basestation.hpp"

#include <gtest/gtest.h>

#include <random>

namespace facs::cellular {
namespace {

TEST(BaseStation, StartsEmpty) {
  const BaseStation bs{0, 40};
  EXPECT_EQ(bs.capacityBu(), 40);
  EXPECT_EQ(bs.occupiedBu(), 0);
  EXPECT_EQ(bs.freeBu(), 40);
  EXPECT_EQ(bs.rtc(), 0);
  EXPECT_EQ(bs.nrtc(), 0);
  EXPECT_EQ(bs.activeCalls(), 0u);
  EXPECT_DOUBLE_EQ(bs.utilization(), 0.0);
}

TEST(BaseStation, RejectsNonPositiveCapacity) {
  EXPECT_THROW(BaseStation(0, 0), std::invalid_argument);
  EXPECT_THROW(BaseStation(0, -5), std::invalid_argument);
}

TEST(BaseStation, AllocateRoutesToDsCounters) {
  BaseStation bs{0, 40};
  bs.allocate(1, 5, /*real_time=*/true);    // voice -> RTC
  bs.allocate(2, 1, /*real_time=*/false);   // text  -> NRTC
  bs.allocate(3, 10, /*real_time=*/true);   // video -> RTC
  EXPECT_EQ(bs.rtc(), 15);
  EXPECT_EQ(bs.nrtc(), 1);
  EXPECT_EQ(bs.occupiedBu(), 16);
  EXPECT_EQ(bs.freeBu(), 24);
  EXPECT_EQ(bs.activeCalls(), 3u);
  EXPECT_TRUE(bs.carries(2));
  EXPECT_FALSE(bs.carries(99));
  EXPECT_DOUBLE_EQ(bs.utilization(), 16.0 / 40.0);
}

TEST(BaseStation, ReleaseRestoresCounters) {
  BaseStation bs{0, 40};
  bs.allocate(1, 10, true);
  bs.allocate(2, 1, false);
  bs.release(1);
  EXPECT_EQ(bs.rtc(), 0);
  EXPECT_EQ(bs.nrtc(), 1);
  EXPECT_EQ(bs.occupiedBu(), 1);
  bs.release(2);
  EXPECT_EQ(bs.occupiedBu(), 0);
  EXPECT_EQ(bs.activeCalls(), 0u);
}

TEST(BaseStation, CanFitBoundary) {
  BaseStation bs{0, 40};
  bs.allocate(1, 35, true);
  EXPECT_TRUE(bs.canFit(5));
  EXPECT_FALSE(bs.canFit(6));
  EXPECT_TRUE(bs.canFit(0));
  EXPECT_FALSE(bs.canFit(-1));
}

TEST(BaseStation, CapacityInvariantEnforced) {
  BaseStation bs{0, 40};
  bs.allocate(1, 40, true);
  EXPECT_THROW(bs.allocate(2, 1, false), std::logic_error);
  EXPECT_EQ(bs.occupiedBu(), 40);  // failed allocation left no residue
  EXPECT_EQ(bs.activeCalls(), 1u);
}

TEST(BaseStation, RejectsBadAllocations) {
  BaseStation bs{0, 40};
  EXPECT_THROW(bs.allocate(1, 0, true), std::invalid_argument);
  EXPECT_THROW(bs.allocate(1, -2, true), std::invalid_argument);
  bs.allocate(1, 5, true);
  EXPECT_THROW(bs.allocate(1, 5, true), std::invalid_argument);  // duplicate
}

TEST(BaseStation, ReleaseUnknownCallThrows) {
  BaseStation bs{0, 40};
  EXPECT_THROW(bs.release(7), std::invalid_argument);
}

TEST(BaseStation, AllocationLookup) {
  BaseStation bs{0, 40};
  bs.allocate(5, 10, true);
  const Allocation& a = bs.allocation(5);
  EXPECT_EQ(a.bu, 10);
  EXPECT_TRUE(a.real_time);
  EXPECT_THROW((void)bs.allocation(6), std::invalid_argument);
}

TEST(BaseStation, RandomChurnPreservesInvariants) {
  // Property: under arbitrary allocate/release churn the ledger never
  // exceeds capacity and RTC + NRTC always equals the sum of live records.
  BaseStation bs{0, 40};
  std::mt19937_64 rng{99};
  std::uniform_int_distribution<int> op{0, 2};
  std::uniform_int_distribution<int> size{1, 10};
  std::vector<std::pair<CallId, int>> live;
  CallId next = 1;

  for (int step = 0; step < 5000; ++step) {
    if (op(rng) != 0 || live.empty()) {
      const int bu = size(rng);
      if (bs.canFit(bu)) {
        const bool rt = (bu != 1);
        bs.allocate(next, bu, rt);
        live.emplace_back(next, bu);
        ++next;
      }
    } else {
      std::uniform_int_distribution<std::size_t> pick{0, live.size() - 1};
      const std::size_t i = pick(rng);
      bs.release(live[i].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    int expected = 0;
    for (const auto& [id, bu] : live) expected += bu;
    ASSERT_EQ(bs.occupiedBu(), expected);
    ASSERT_EQ(bs.rtc() + bs.nrtc(), expected);
    ASSERT_LE(bs.occupiedBu(), bs.capacityBu());
    ASSERT_EQ(bs.activeCalls(), live.size());
  }
}

}  // namespace
}  // namespace facs::cellular
