#include "cellular/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cellular/call.hpp"

namespace facs::cellular {
namespace {

TEST(HexNetwork, SingleCellPaperSetup) {
  const HexNetwork net{0};
  EXPECT_EQ(net.cellCount(), 1u);
  EXPECT_DOUBLE_EQ(net.cellRadiusKm(), 10.0);
  EXPECT_EQ(net.station(0).capacityBu(), kPaperCellCapacityBu);
  EXPECT_EQ(net.cell(0).center, (Vec2{0.0, 0.0}));
  EXPECT_TRUE(net.neighbors(0).empty());
}

TEST(HexNetwork, Validation) {
  EXPECT_THROW(HexNetwork(-1), std::invalid_argument);
  EXPECT_THROW(HexNetwork(1, 0.0), std::invalid_argument);
  EXPECT_THROW(HexNetwork(1, 10.0, 0), std::invalid_argument);
}

TEST(HexNetwork, OneRingHasSevenCellsWithCorrectAdjacency) {
  const HexNetwork net{1};
  EXPECT_EQ(net.cellCount(), 7u);
  // Centre touches all six others.
  EXPECT_EQ(net.neighbors(0).size(), 6u);
  // Ring cells touch the centre plus two ring siblings (3 in-network).
  for (CellId id = 1; id < 7; ++id) {
    EXPECT_EQ(net.neighbors(id).size(), 3u) << "cell " << id;
  }
}

TEST(HexNetwork, TwoRingAdjacencyCounts) {
  const HexNetwork net{2};
  EXPECT_EQ(net.cellCount(), 19u);
  EXPECT_EQ(net.neighbors(0).size(), 6u);
  // Inner-ring cells now have all 6 neighbours in-network.
  for (CellId id = 1; id < 7; ++id) {
    EXPECT_EQ(net.neighbors(id).size(), 6u) << "cell " << id;
  }
}

TEST(HexNetwork, CellAtFindsCentersAndRejectsOutside) {
  const HexNetwork net{1, 10.0};
  for (const Cell& c : net.cells()) {
    const auto found = net.cellAt(c.center);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, c.id);
  }
  // Far outside the 7-cell disk.
  EXPECT_FALSE(net.cellAt({200.0, 200.0}).has_value());
}

TEST(HexNetwork, DistanceToStation) {
  const HexNetwork net{0, 10.0};
  EXPECT_DOUBLE_EQ(net.distanceToStationKm({3.0, 4.0}, 0), 5.0);
}

TEST(HexNetwork, StationLedgersAreIndependent) {
  HexNetwork net{1};
  net.station(0).allocate(1, 10, true);
  net.station(3).allocate(2, 5, false);
  EXPECT_EQ(net.station(0).occupiedBu(), 10);
  EXPECT_EQ(net.station(3).occupiedBu(), 5);
  EXPECT_EQ(net.station(1).occupiedBu(), 0);
  EXPECT_EQ(net.totalOccupiedBu(), 15);
  EXPECT_EQ(net.totalCapacityBu(), 7 * kPaperCellCapacityBu);
}

TEST(HexNetwork, NeighborsAreSymmetric) {
  const HexNetwork net{2};
  for (CellId a = 0; a < net.cellCount(); ++a) {
    for (const CellId b : net.neighbors(a)) {
      const auto& back = net.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << "edge " << a << " -> " << b << " not symmetric";
    }
  }
}

TEST(CallStateNames, ToString) {
  EXPECT_EQ(toString(CallState::Requested), "requested");
  EXPECT_EQ(toString(CallState::Active), "active");
  EXPECT_EQ(toString(CallState::Completed), "completed");
  EXPECT_EQ(toString(CallState::Blocked), "blocked");
  EXPECT_EQ(toString(CallState::Dropped), "dropped");
}

TEST(CellGroupPartition, ContiguousBalancedAndComplete) {
  const HexNetwork net{2};  // 19 cells
  const CellGroupPartition part{net, 4};
  EXPECT_EQ(part.groups(), 4);
  // Monotone over the spiral ids (contiguous ranges), every group
  // non-empty, sizes within one of each other.
  std::vector<int> size(4, 0);
  int prev = 0;
  for (CellId c = 0; c < net.cellCount(); ++c) {
    const int g = part.groupOf(static_cast<CellId>(c));
    ASSERT_GE(g, prev);
    ASSERT_LT(g, 4);
    prev = g;
    ++size[static_cast<std::size_t>(g)];
  }
  for (const int s : size) EXPECT_GT(s, 0);
  const auto [lo, hi] = std::minmax_element(size.begin(), size.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(CellGroupPartition, ClampsToCellCountAndRejectsNonsense) {
  const HexNetwork net{1};  // 7 cells
  EXPECT_EQ(CellGroupPartition(net, 64).groups(), 7);
  EXPECT_EQ(CellGroupPartition(net, 1).groups(), 1);
  EXPECT_THROW(CellGroupPartition(net, 0), std::invalid_argument);
}

TEST(CellGroupPartition, InteriorCellsHaveNoForeignNeighbours) {
  const HexNetwork net{2};
  const CellGroupPartition part{net, 3};
  std::size_t boundary = 0;
  for (CellId c = 0; c < net.cellCount(); ++c) {
    bool local = true;
    for (const CellId n : net.neighbors(c)) {
      if (part.groupOf(n) != part.groupOf(c)) local = false;
    }
    EXPECT_EQ(part.interior(c), local) << "cell " << c;
    if (!local) ++boundary;
  }
  EXPECT_EQ(part.boundaryCells(), boundary);
  // One group = no borders at all.
  const CellGroupPartition whole{net, 1};
  EXPECT_EQ(whole.boundaryCells(), 0u);
}

}  // namespace
}  // namespace facs::cellular
