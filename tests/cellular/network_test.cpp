#include "cellular/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cellular/call.hpp"

namespace facs::cellular {
namespace {

TEST(HexNetwork, SingleCellPaperSetup) {
  const HexNetwork net{0};
  EXPECT_EQ(net.cellCount(), 1u);
  EXPECT_DOUBLE_EQ(net.cellRadiusKm(), 10.0);
  EXPECT_EQ(net.station(0).capacityBu(), kPaperCellCapacityBu);
  EXPECT_EQ(net.cell(0).center, (Vec2{0.0, 0.0}));
  EXPECT_TRUE(net.neighbors(0).empty());
}

TEST(HexNetwork, Validation) {
  EXPECT_THROW(HexNetwork(-1), std::invalid_argument);
  EXPECT_THROW(HexNetwork(1, 0.0), std::invalid_argument);
  EXPECT_THROW(HexNetwork(1, 10.0, 0), std::invalid_argument);
}

TEST(HexNetwork, OneRingHasSevenCellsWithCorrectAdjacency) {
  const HexNetwork net{1};
  EXPECT_EQ(net.cellCount(), 7u);
  // Centre touches all six others.
  EXPECT_EQ(net.neighbors(0).size(), 6u);
  // Ring cells touch the centre plus two ring siblings (3 in-network).
  for (CellId id = 1; id < 7; ++id) {
    EXPECT_EQ(net.neighbors(id).size(), 3u) << "cell " << id;
  }
}

TEST(HexNetwork, TwoRingAdjacencyCounts) {
  const HexNetwork net{2};
  EXPECT_EQ(net.cellCount(), 19u);
  EXPECT_EQ(net.neighbors(0).size(), 6u);
  // Inner-ring cells now have all 6 neighbours in-network.
  for (CellId id = 1; id < 7; ++id) {
    EXPECT_EQ(net.neighbors(id).size(), 6u) << "cell " << id;
  }
}

TEST(HexNetwork, CellAtFindsCentersAndRejectsOutside) {
  const HexNetwork net{1, 10.0};
  for (const Cell& c : net.cells()) {
    const auto found = net.cellAt(c.center);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, c.id);
  }
  // Far outside the 7-cell disk.
  EXPECT_FALSE(net.cellAt({200.0, 200.0}).has_value());
}

TEST(HexNetwork, DistanceToStation) {
  const HexNetwork net{0, 10.0};
  EXPECT_DOUBLE_EQ(net.distanceToStationKm({3.0, 4.0}, 0), 5.0);
}

TEST(HexNetwork, StationLedgersAreIndependent) {
  HexNetwork net{1};
  net.station(0).allocate(1, 10, true);
  net.station(3).allocate(2, 5, false);
  EXPECT_EQ(net.station(0).occupiedBu(), 10);
  EXPECT_EQ(net.station(3).occupiedBu(), 5);
  EXPECT_EQ(net.station(1).occupiedBu(), 0);
  EXPECT_EQ(net.totalOccupiedBu(), 15);
  EXPECT_EQ(net.totalCapacityBu(), 7 * kPaperCellCapacityBu);
}

TEST(HexNetwork, NeighborsAreSymmetric) {
  const HexNetwork net{2};
  for (CellId a = 0; a < net.cellCount(); ++a) {
    for (const CellId b : net.neighbors(a)) {
      const auto& back = net.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << "edge " << a << " -> " << b << " not symmetric";
    }
  }
}

TEST(CallStateNames, ToString) {
  EXPECT_EQ(toString(CallState::Requested), "requested");
  EXPECT_EQ(toString(CallState::Active), "active");
  EXPECT_EQ(toString(CallState::Completed), "completed");
  EXPECT_EQ(toString(CallState::Blocked), "blocked");
  EXPECT_EQ(toString(CallState::Dropped), "dropped");
}

}  // namespace
}  // namespace facs::cellular
