#include "cellular/radio.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace facs::cellular {
namespace {

TEST(DbHelpers, RoundTrips) {
  EXPECT_NEAR(dbToLinear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbToLinear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(dbToLinear(-30.0), 0.001, 1e-12);
  EXPECT_NEAR(linearToDb(100.0), 20.0, 1e-12);
  for (double db = -120.0; db <= 50.0; db += 10.0) {
    EXPECT_NEAR(linearToDb(dbToLinear(db)), db, 1e-9);
    EXPECT_NEAR(mwToDbm(dbmToMw(db)), db, 1e-9);
  }
}

TEST(PathLoss, ReferencePointAndSlope) {
  PathLossParams p;
  p.reference_loss_db = 128.1;
  p.reference_distance_km = 1.0;
  p.exponent = 3.76;
  EXPECT_NEAR(pathLossDb(p, 1.0), 128.1, 1e-12);
  // One decade of distance adds 10 n dB.
  EXPECT_NEAR(pathLossDb(p, 10.0) - pathLossDb(p, 1.0), 37.6, 1e-9);
  // Monotone in distance.
  double prev = 0.0;
  for (double d = 0.05; d <= 20.0; d += 0.5) {
    const double loss = pathLossDb(p, d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, ClampsNearFieldAndRejectsNegative) {
  PathLossParams p;
  EXPECT_DOUBLE_EQ(pathLossDb(p, 0.0), pathLossDb(p, p.min_distance_km));
  EXPECT_THROW((void)pathLossDb(p, -1.0), std::invalid_argument);
}

TEST(PathLoss, ShadowingIsZeroMeanAndDisablable) {
  PathLossParams p;
  p.shadowing_sigma_db = 8.0;
  std::mt19937_64 rng{1};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += shadowedPathLossDb(p, 2.0, rng) - pathLossDb(p, 2.0);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.2);

  p.shadowing_sigma_db = 0.0;
  EXPECT_DOUBLE_EQ(shadowedPathLossDb(p, 2.0, rng), pathLossDb(p, 2.0));
}

TEST(RadioModel, ValidatesConfig) {
  const HexNetwork net{0};
  RadioConfig bad;
  bad.activity_factor = 1.5;
  EXPECT_THROW(RadioModel(net, bad), std::invalid_argument);
  bad = {};
  bad.path_loss.exponent = 0.0;
  EXPECT_THROW(RadioModel(net, bad), std::invalid_argument);
  bad = {};
  bad.path_loss.min_distance_km = 0.0;
  EXPECT_THROW(RadioModel(net, bad), std::invalid_argument);
}

TEST(RadioModel, ReceivedPowerFallsWithDistance) {
  const HexNetwork net{0};
  const RadioModel radio{net};
  const double near = radio.receivedPowerDbm({0.5, 0.0}, 0);
  const double far = radio.receivedPowerDbm({8.0, 0.0}, 0);
  EXPECT_GT(near, far);
  // Sanity: 43 dBm through the default 100 dB reference loss at 1 km.
  EXPECT_NEAR(radio.receivedPowerDbm({1.0, 0.0}, 0), 43.0 - 100.0, 1e-9);
  // The 10 km cell edge keeps a usable noise-limited link budget.
  EXPECT_GT(radio.receivedPowerDbm({10.0, 0.0}, 0),
            radio.config().noise_floor_dbm + 10.0);
}

TEST(RadioModel, IdleNetworkIsNoiseLimited) {
  const HexNetwork net{1};
  const RadioModel radio{net};
  // No cell carries traffic: SINR = SNR = Prx - noise floor.
  const double sinr = radio.sinrDb({1.0, 0.0}, 0);
  const double snr = radio.receivedPowerDbm({1.0, 0.0}, 0) -
                     radio.config().noise_floor_dbm;
  EXPECT_NEAR(sinr, snr, 1e-9);
}

TEST(RadioModel, LoadedNeighborDegradesSinr) {
  HexNetwork net{1};
  const RadioModel radio{net};
  const Vec2 user{6.0, 0.0};  // toward the eastern neighbour
  const double quiet = radio.sinrDb(user, 0);
  net.station(3).allocate(1, 40, true);  // east cell fully loaded
  const double loud = radio.sinrDb(user, 0);
  EXPECT_LT(loud, quiet - 3.0);  // several dB of co-channel interference
}

TEST(RadioModel, SinrDegradesGraduallyWithNeighborUtilization) {
  HexNetwork net{1};
  const RadioModel radio{net};
  const Vec2 user{6.0, 0.0};
  double prev = radio.sinrDb(user, 0);
  for (const BandwidthUnits bu : {10, 20, 30, 40}) {
    HexNetwork fresh{1};
    fresh.station(3).allocate(1, bu, true);
    const RadioModel r2{fresh};
    const double sinr = r2.sinrDb(user, 0);
    EXPECT_LT(sinr, prev);
    prev = sinr;
  }
}

TEST(RadioModel, CellEdgeIsWorseThanCellCentre) {
  HexNetwork net{1};
  // All neighbours half loaded.
  for (CellId id = 1; id < 7; ++id) net.station(id).allocate(id, 20, true);
  const RadioModel radio{net};
  EXPECT_GT(radio.sinrDb({0.5, 0.0}, 0), radio.sinrDb({8.0, 0.0}, 0));
}

TEST(RadioModel, ShadowedSinrVariesAroundDeterministic) {
  HexNetwork net{1};
  net.station(3).allocate(1, 40, true);
  const RadioModel radio{net};
  std::mt19937_64 rng{3};
  const Vec2 user{4.0, 0.0};
  const double det = radio.sinrDb(user, 0);
  double sum = 0.0;
  double min = 1e9;
  double max = -1e9;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double s = radio.shadowedSinrDb(user, 0, rng);
    sum += s;
    min = std::min(min, s);
    max = std::max(max, s);
  }
  EXPECT_GT(max, det + 4.0);  // 8 dB shadowing spreads wide
  EXPECT_LT(min, det - 4.0);
  EXPECT_NEAR(sum / n, det, 3.0);  // roughly centred (log-domain skew allowed)
}

}  // namespace
}  // namespace facs::cellular
