#include "cellular/radio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>

namespace facs::cellular {
namespace {

TEST(DbHelpers, RoundTrips) {
  EXPECT_NEAR(dbToLinear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbToLinear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(dbToLinear(-30.0), 0.001, 1e-12);
  EXPECT_NEAR(linearToDb(100.0), 20.0, 1e-12);
  for (double db = -120.0; db <= 50.0; db += 10.0) {
    EXPECT_NEAR(linearToDb(dbToLinear(db)), db, 1e-9);
    EXPECT_NEAR(mwToDbm(dbmToMw(db)), db, 1e-9);
  }
}

TEST(PathLoss, ReferencePointAndSlope) {
  PathLossParams p;
  p.reference_loss_db = 128.1;
  p.reference_distance_km = 1.0;
  p.exponent = 3.76;
  EXPECT_NEAR(pathLossDb(p, 1.0), 128.1, 1e-12);
  // One decade of distance adds 10 n dB.
  EXPECT_NEAR(pathLossDb(p, 10.0) - pathLossDb(p, 1.0), 37.6, 1e-9);
  // Monotone in distance.
  double prev = 0.0;
  for (double d = 0.05; d <= 20.0; d += 0.5) {
    const double loss = pathLossDb(p, d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, ClampsNearFieldAndRejectsNegative) {
  PathLossParams p;
  EXPECT_DOUBLE_EQ(pathLossDb(p, 0.0), pathLossDb(p, p.min_distance_km));
  EXPECT_THROW((void)pathLossDb(p, -1.0), std::invalid_argument);
}

TEST(PathLoss, ShadowingIsZeroMeanAndDisablable) {
  PathLossParams p;
  p.shadowing_sigma_db = 8.0;
  std::mt19937_64 rng{1};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += shadowedPathLossDb(p, 2.0, rng) - pathLossDb(p, 2.0);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.2);

  p.shadowing_sigma_db = 0.0;
  EXPECT_DOUBLE_EQ(shadowedPathLossDb(p, 2.0, rng), pathLossDb(p, 2.0));
}

TEST(RadioModel, ValidatesConfig) {
  const HexNetwork net{0};
  RadioConfig bad;
  bad.activity_factor = 1.5;
  EXPECT_THROW(RadioModel(net, bad), std::invalid_argument);
  bad = {};
  bad.path_loss.exponent = 0.0;
  EXPECT_THROW(RadioModel(net, bad), std::invalid_argument);
  bad = {};
  bad.path_loss.min_distance_km = 0.0;
  EXPECT_THROW(RadioModel(net, bad), std::invalid_argument);
}

TEST(RadioModel, ReceivedPowerFallsWithDistance) {
  const HexNetwork net{0};
  const RadioModel radio{net};
  const double near = radio.receivedPowerDbm({0.5, 0.0}, 0);
  const double far = radio.receivedPowerDbm({8.0, 0.0}, 0);
  EXPECT_GT(near, far);
  // Sanity: 43 dBm through the default 100 dB reference loss at 1 km.
  EXPECT_NEAR(radio.receivedPowerDbm({1.0, 0.0}, 0), 43.0 - 100.0, 1e-9);
  // The 10 km cell edge keeps a usable noise-limited link budget.
  EXPECT_GT(radio.receivedPowerDbm({10.0, 0.0}, 0),
            radio.config().noise_floor_dbm + 10.0);
}

TEST(RadioModel, IdleNetworkIsNoiseLimited) {
  const HexNetwork net{1};
  const RadioModel radio{net};
  // No cell carries traffic: SINR = SNR = Prx - noise floor.
  const double sinr = radio.sinrDb({1.0, 0.0}, 0);
  const double snr = radio.receivedPowerDbm({1.0, 0.0}, 0) -
                     radio.config().noise_floor_dbm;
  EXPECT_NEAR(sinr, snr, 1e-9);
}

TEST(RadioModel, LoadedNeighborDegradesSinr) {
  HexNetwork net{1};
  const RadioModel radio{net};
  const Vec2 user{6.0, 0.0};  // toward the eastern neighbour
  const double quiet = radio.sinrDb(user, 0);
  net.station(3).allocate(1, 40, true);  // east cell fully loaded
  const double loud = radio.sinrDb(user, 0);
  EXPECT_LT(loud, quiet - 3.0);  // several dB of co-channel interference
}

TEST(RadioModel, SinrDegradesGraduallyWithNeighborUtilization) {
  HexNetwork net{1};
  const RadioModel radio{net};
  const Vec2 user{6.0, 0.0};
  double prev = radio.sinrDb(user, 0);
  for (const BandwidthUnits bu : {10, 20, 30, 40}) {
    HexNetwork fresh{1};
    fresh.station(3).allocate(1, bu, true);
    const RadioModel r2{fresh};
    const double sinr = r2.sinrDb(user, 0);
    EXPECT_LT(sinr, prev);
    prev = sinr;
  }
}

TEST(RadioModel, CellEdgeIsWorseThanCellCentre) {
  HexNetwork net{1};
  // All neighbours half loaded.
  for (CellId id = 1; id < 7; ++id) net.station(id).allocate(id, 20, true);
  const RadioModel radio{net};
  EXPECT_GT(radio.sinrDb({0.5, 0.0}, 0), radio.sinrDb({8.0, 0.0}, 0));
}

TEST(RadioModel, ShadowedSinrVariesAroundDeterministic) {
  HexNetwork net{1};
  net.station(3).allocate(1, 40, true);
  const RadioModel radio{net};
  std::mt19937_64 rng{3};
  const Vec2 user{4.0, 0.0};
  const double det = radio.sinrDb(user, 0);
  double sum = 0.0;
  double min = 1e9;
  double max = -1e9;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double s = radio.shadowedSinrDb(user, 0, rng);
    sum += s;
    min = std::min(min, s);
    max = std::max(max, s);
  }
  EXPECT_GT(max, det + 4.0);  // 8 dB shadowing spreads wide
  EXPECT_LT(min, det - 4.0);
  EXPECT_NEAR(sum / n, det, 3.0);  // roughly centred (log-domain skew allowed)
}

// ---------------------------------------------- gain tables & footprint --

/// Loads every station with a different partial utilization so no
/// interferer drops out of the sum and no two cells look alike.
void loadStations(HexNetwork& net) {
  CallId call = 1;
  for (const Cell& c : net.cells()) {
    const BandwidthUnits bu =
        1 + static_cast<BandwidthUnits>((c.id * 7) % 29);
    net.station(c.id).allocate(call++, bu, true);
  }
}

TEST(RadioModel, GainTableWalkMatchesScalarReferenceBitForBit) {
  // The precomputed-table sinrDb must produce the SAME floating-point sum
  // as a naive ascending-id walk of the factored gain-constant formula
  // power_mw = C * (d^2)^(-n/2): table layout and footprint bookkeeping may
  // not move a single bit at radius 0.
  HexNetwork net{2, 1.5};
  loadStations(net);
  const RadioModel radio{net};
  const RadioConfig& rc = radio.config();
  const PathLossParams& pl = rc.path_loss;
  const double gain_c =
      dbmToMw(rc.tx_power_dbm - pl.reference_loss_db +
              10.0 * pl.exponent * std::log10(pl.reference_distance_km));
  const double min_d2 = pl.min_distance_km * pl.min_distance_km;
  const auto link_mw = [&](Vec2 pos, CellId cell) {
    const double dx = pos.x - net.cell(cell).center.x;
    const double dy = pos.y - net.cell(cell).center.y;
    const double d2 = std::max(dx * dx + dy * dy, min_d2);
    return gain_c * std::pow(d2, -0.5 * pl.exponent);
  };
  for (const Cell& serving : net.cells()) {
    const Vec2 pos{serving.center.x + 0.4, serving.center.y - 0.3};
    double interference = dbmToMw(rc.noise_floor_dbm);
    for (const Cell& other : net.cells()) {
      if (other.id == serving.id) continue;
      const double activity =
          rc.activity_factor * net.station(other.id).utilization();
      if (activity <= 0.0) continue;
      interference += activity * link_mw(pos, other.id);
    }
    const double reference =
        linearToDb(link_mw(pos, serving.id) / interference);
    EXPECT_EQ(radio.sinrDb(pos, serving.id), reference)
        << "serving=" << serving.id;
    // And the legacy log10+pow chain agrees to numerical noise: factoring
    // out the gain constant is a reformulation, not a model change.
    double legacy_i = dbmToMw(rc.noise_floor_dbm);
    for (const Cell& other : net.cells()) {
      if (other.id == serving.id) continue;
      const double activity =
          rc.activity_factor * net.station(other.id).utilization();
      if (activity <= 0.0) continue;
      legacy_i += activity *
                  dbmToMw(rc.tx_power_dbm -
                          pathLossDb(pl, net.distanceToStationKm(pos, other.id)));
    }
    const double legacy = linearToDb(
        dbmToMw(rc.tx_power_dbm -
                pathLossDb(pl, net.distanceToStationKm(pos, serving.id))) /
        legacy_i);
    EXPECT_NEAR(radio.sinrDb(pos, serving.id), legacy, 1e-9)
        << "serving=" << serving.id;
  }
}

TEST(RadioModel, SinrDbWithLiveUtilizationIsTheLiveSinr) {
  // The functor variant with a live-ledger reader IS sinrDb — same walk,
  // same bits. This is what lets the grouped SIR controller swap in a
  // snapshot reader without touching the arithmetic.
  HexNetwork net{2, 1.5};
  loadStations(net);
  const RadioModel radio{net};
  for (const Cell& serving : net.cells()) {
    const Vec2 pos{serving.center.x - 0.2, serving.center.y + 0.5};
    const double live = radio.sinrDbWith(pos, serving.id, [&](CellId cell) {
      return net.station(cell).utilization();
    });
    EXPECT_EQ(radio.sinrDb(pos, serving.id), live);
  }
}

TEST(RadioModel, InterferersHonorTheHopRadius) {
  const HexNetwork net{2, 1.5};
  RadioConfig rc;
  rc.interference_radius_hops = 1;
  const RadioModel bounded{net, rc};
  const RadioModel exact{net};
  // Radius 0: everyone else interferes. Radius 1: only the hex ring.
  EXPECT_EQ(exact.interferersOf(0).size(), net.cellCount() - 1);
  EXPECT_EQ(bounded.interferersOf(0).size(), 6u);
  for (const Cell& serving : net.cells()) {
    CellId prev = 0;
    bool first = true;
    for (const CellId id : bounded.interferersOf(serving.id)) {
      EXPECT_NE(id, serving.id);
      EXPECT_LE(hexDistance(net.cell(serving.id).coord, net.cell(id).coord),
                1);
      if (!first) EXPECT_GT(id, prev);  // canonical ascending-id order
      prev = id;
      first = false;
    }
  }
  EXPECT_GT(bounded.truncationTailBoundMw(), 0.0);
  EXPECT_EQ(exact.truncationTailBoundMw(), 0.0);
}

TEST(RadioModel, FootprintCoveringTheWholeDiskIsExact) {
  // A radius at least the disk diameter excludes nothing: the interferer
  // tables are identical, the tail bound is zero and every SINR matches
  // the unbounded model bit for bit.
  HexNetwork net{1, 2.0};
  loadStations(net);
  RadioConfig rc;
  rc.interference_radius_hops = 2;  // rings=1 disk has diameter 2
  const RadioModel bounded{net, rc};
  const RadioModel exact{net};
  EXPECT_EQ(bounded.truncationTailBoundMw(), 0.0);
  for (const Cell& serving : net.cells()) {
    const Vec2 pos{serving.center.x + 0.3, serving.center.y + 0.1};
    EXPECT_EQ(bounded.sinrDb(pos, serving.id),
              exact.sinrDb(pos, serving.id));
  }
}

TEST(RadioModel, TruncatedTailBoundHoldsAcrossRandomPlacements) {
  // Property test for the audit's worst-case bound: for ANY utilization
  // vector and ANY user position inside the serving cell, the interference
  // the bounded footprint discards is at most truncationTailBoundMw().
  const HexNetwork net{2, 1.5};
  RadioConfig rc;
  rc.interference_radius_hops = 1;
  const RadioModel bounded{net, rc};
  const RadioModel exact{net};
  const double bound = bounded.truncationTailBoundMw();
  ASSERT_GT(bound, 0.0);
  std::mt19937_64 rng{20250808};
  std::uniform_real_distribution<double> uni{0.0, 1.0};
  std::vector<double> util(net.cellCount());
  for (int trial = 0; trial < 200; ++trial) {
    for (double& u : util) u = uni(rng);
    const auto reader = [&](CellId cell) { return util[cell]; };
    const CellId serving = static_cast<CellId>(
        static_cast<std::size_t>(uni(rng) * 0.999 * net.cellCount()));
    // A point inside the serving hex: within the inradius (~0.866 R).
    const double r = 0.85 * net.cellRadiusKm() * uni(rng);
    const double a = 2.0 * 3.14159265358979 * uni(rng);
    const Vec2 pos{net.cell(serving).center.x + r * std::cos(a),
                   net.cell(serving).center.y + r * std::sin(a)};
    const double signal =
        dbmToMw(exact.receivedPowerDbm(pos, serving));
    const double i_full =
        signal / dbToLinear(exact.sinrDbWith(pos, serving, reader));
    const double i_trunc =
        signal / dbToLinear(bounded.sinrDbWith(pos, serving, reader));
    const double error_mw = i_full - i_trunc;
    EXPECT_GE(error_mw, -1e-18) << "trial " << trial;
    EXPECT_LE(error_mw, bound * (1.0 + 1e-9)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace facs::cellular
