/// \file admission_test.cpp
/// The policy-interface vocabulary types: ReasonText's inline formatting
/// and truncation reporting, the ReasonCode string mapping (including the
/// out-of-range sentinel), and the PredictedCv carrier.

#include "cellular/admission.hpp"

#include <gtest/gtest.h>

#include <string>

namespace facs::cellular {
namespace {

TEST(ReasonCodeNames, ToStringCoversEveryCode) {
  EXPECT_EQ(toString(ReasonCode::Admitted), "admitted");
  EXPECT_EQ(toString(ReasonCode::NoCapacity), "no-capacity");
  EXPECT_EQ(toString(ReasonCode::GuardReserved), "guard-reserved");
  EXPECT_EQ(toString(ReasonCode::OverClassThreshold), "over-class-threshold");
  EXPECT_EQ(toString(ReasonCode::FuzzyReject), "fuzzy-reject");
  EXPECT_EQ(toString(ReasonCode::ProjectedOverload), "projected-overload");
  EXPECT_EQ(toString(ReasonCode::LeavesCoverage), "leaves-coverage");
  EXPECT_EQ(toString(ReasonCode::SinrTooLow), "sinr-too-low");
  EXPECT_EQ(toString(ReasonCode::ReservedForHandoff), "reserved-for-handoff");
}

TEST(ReasonCodeNames, OutOfRangeValueIsNotAValidLookingDefault) {
  // A corrupted decision (bad memcpy, uninitialized byte) must not read as
  // "admitted" in logs — that would mask the corruption.
  EXPECT_EQ(toString(static_cast<ReasonCode>(200)), "invalid");
  EXPECT_EQ(toString(static_cast<ReasonCode>(9)), "invalid");
}

TEST(ReasonText, AppendfFormatsIntoTheInlineBuffer) {
  ReasonText text;
  EXPECT_TRUE(text.appendf("cv=%g ar=%g", 0.5, -0.25));
  EXPECT_EQ(text.view(), "cv=0.5 ar=-0.25");
  EXPECT_FALSE(text.truncated());
  // Appends continue where the previous call stopped.
  EXPECT_TRUE(text.appendf(" (%s)", "no free BU"));
  EXPECT_EQ(text.view(), "cv=0.5 ar=-0.25 (no free BU)");
  EXPECT_STREQ(text.c_str(), "cv=0.5 ar=-0.25 (no free BU)");
}

TEST(ReasonText, AppendfReportsTruncationAndKeepsWhatFit) {
  ReasonText text;
  const std::string long_tail(2 * ReasonText::kCapacity, 'y');
  EXPECT_TRUE(text.appendf("head "));
  EXPECT_FALSE(text.appendf("%s", long_tail.c_str()));
  EXPECT_TRUE(text.truncated());
  EXPECT_EQ(text.size(), ReasonText::kCapacity);  // cut, not dropped
  EXPECT_EQ(text.view().substr(0, 5), "head ");
  EXPECT_EQ(text.c_str()[ReasonText::kCapacity], '\0');
}

TEST(ReasonText, AssignFlagsOverlongText) {
  const std::string overlong(ReasonText::kCapacity + 1, 'x');
  const ReasonText text{overlong};
  EXPECT_EQ(text.size(), ReasonText::kCapacity);
  EXPECT_TRUE(text.truncated());

  const ReasonText exact{std::string(ReasonText::kCapacity, 'x')};
  EXPECT_EQ(exact.size(), ReasonText::kCapacity);
  EXPECT_FALSE(exact.truncated());  // fits exactly: nothing was lost
}

TEST(ReasonText, ClearResetsTextAndTruncationFlag) {
  ReasonText text{std::string(300, 'z')};
  ASSERT_TRUE(text.truncated());
  text.clear();
  EXPECT_TRUE(text.empty());
  EXPECT_FALSE(text.truncated());
  EXPECT_TRUE(text.appendf("fresh"));
  EXPECT_EQ(text.view(), "fresh");
}

TEST(ReasonText, AppendfIntoAFullBufferStaysTruncatedAndTerminated) {
  ReasonText text{std::string(ReasonText::kCapacity, 'x')};
  EXPECT_FALSE(text.appendf("more"));
  EXPECT_TRUE(text.truncated());
  EXPECT_EQ(text.size(), ReasonText::kCapacity);
  EXPECT_EQ(text.c_str()[ReasonText::kCapacity], '\0');
}

TEST(PredictedCvCarrier, DefaultIsInvalid) {
  // The default must read as "nothing precomputed" so forgetting to fill
  // AdmissionContext::predicted degrades to inline inference, never to
  // consuming a zero CV as if it were a real prediction.
  const PredictedCv none;
  EXPECT_FALSE(none.valid);
  const BaseStation bs{0, 40};
  const AdmissionContext ctx{bs, 0.0};
  EXPECT_FALSE(ctx.predicted.valid);
}

TEST(AdmissionDecisionShape, StaysTriviallyCopyableWithTruncationFlag) {
  static_assert(std::is_trivially_copyable_v<AdmissionDecision>);
  AdmissionDecision d;
  d.rationale.appendf("x=%d", 7);
  const AdmissionDecision copy = d;  // plain memcpy
  EXPECT_EQ(copy.rationale.view(), "x=7");
  EXPECT_FALSE(copy.rationale.truncated());
}

}  // namespace
}  // namespace facs::cellular
