#include "cellular/policy_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "cac/baselines.hpp"
#include "cellular/network.hpp"

namespace facs::cellular {
namespace {

/// A registerExternal() payload: any controller works, the tests only care
/// about resolution, so reuse the complete-sharing baseline.
PolicyRegistry::Builder stubBuilder() {
  return [](const PolicySpec&) -> ControllerFactory {
    return [](const HexNetwork&) {
      return std::make_unique<cac::CompleteSharingController>();
    };
  };
}

TEST(PolicyRuntime, SnapshotsTheRegistrarSeed) {
  const PolicyRuntime runtime;
  for (const char* name :
       {"cs", "facs", "guard", "rsv", "scc", "sir", "threshold"}) {
    EXPECT_TRUE(runtime.contains(name)) << name;
  }
  EXPECT_EQ(runtime.names(), PolicyRegistry::global().names());
  EXPECT_EQ(runtime.describeAll(), PolicyRegistry::global().describeAll());
}

TEST(PolicyRuntime, DefaultRuntimeResolvesEveryBuiltin) {
  const PolicyRuntime& runtime = PolicyRuntime::defaultRuntime();
  const HexNetwork net{0};
  for (const std::string& name : runtime.names()) {
    EXPECT_NE(runtime.makeController(name, net), nullptr) << name;
  }
  // The default runtime is one shared instance, not a fresh copy per call.
  EXPECT_EQ(&PolicyRuntime::defaultRuntime(), &runtime);
}

TEST(PolicyRuntime, RegisterExternalExtendsOnlyThisInstance) {
  PolicyRuntime extended;
  extended.registerExternal({"always-yes", "test stub", "always-yes"},
                            stubBuilder());
  EXPECT_TRUE(extended.contains("always-yes"));

  const HexNetwork net{0};
  EXPECT_NE(extended.makeController("always-yes", net), nullptr);

  // No bleed: a sibling runtime, the default runtime and the registrar
  // seed all stay unextended.
  const PolicyRuntime sibling;
  EXPECT_FALSE(sibling.contains("always-yes"));
  EXPECT_FALSE(PolicyRuntime::defaultRuntime().contains("always-yes"));
  EXPECT_FALSE(PolicyRegistry::global().contains("always-yes"));
  EXPECT_THROW((void)sibling.makeFactory("always-yes"), PolicySpecError);

  // And a runtime constructed AFTER the extension still snapshots the
  // pristine seed.
  const PolicyRuntime later;
  EXPECT_FALSE(later.contains("always-yes"));
}

TEST(PolicyRuntime, TwoRuntimesWithDifferentExternalsDontBleed) {
  PolicyRuntime a;
  PolicyRuntime b;
  a.registerExternal({"only-in-a", "s", "only-in-a"}, stubBuilder());
  b.registerExternal({"only-in-b", "s", "only-in-b"}, stubBuilder());
  EXPECT_TRUE(a.contains("only-in-a"));
  EXPECT_FALSE(a.contains("only-in-b"));
  EXPECT_TRUE(b.contains("only-in-b"));
  EXPECT_FALSE(b.contains("only-in-a"));
}

TEST(PolicyRuntime, ExternalDuplicateOfBuiltinThrows) {
  PolicyRuntime runtime;
  EXPECT_THROW(runtime.registerExternal({"facs", "imposter", "facs"},
                                        stubBuilder()),
               std::logic_error);
  runtime.registerExternal({"mine", "s", "mine"}, stubBuilder());
  EXPECT_THROW(runtime.registerExternal({"mine", "s", "mine"}, stubBuilder()),
               std::logic_error);
}

TEST(PolicyRuntime, CustomSeedReplacesTheBuiltins) {
  PolicyRegistry seed;
  seed.add({"solo", "the only policy", "solo"}, stubBuilder());
  const PolicyRuntime runtime{std::move(seed)};
  EXPECT_TRUE(runtime.contains("solo"));
  EXPECT_FALSE(runtime.contains("facs"));
  EXPECT_EQ(runtime.names(), std::vector<std::string>{"solo"});
}

TEST(PolicyRuntime, ConcurrentConstructionAndResolutionIsSafe) {
  // Many threads snapshotting the seed, extending their own instance and
  // resolving from the shared default runtime at once — the TSan CI job
  // gates this (each runtime's mutable state is thread-local here; the
  // seed and defaultRuntime() are only read).
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  std::vector<int> resolved(kThreads, 0);
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &resolved] {
      const HexNetwork net{0};
      for (int round = 0; round < 10; ++round) {
        PolicyRuntime mine;
        mine.registerExternal(
            {"local-" + std::to_string(t), "s", "local"}, stubBuilder());
        if (mine.makeController("local-" + std::to_string(t), net)) {
          ++resolved[t];
        }
        if (PolicyRuntime::defaultRuntime().makeController("guard:4", net)) {
          ++resolved[t];
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(resolved[t], 20) << t;
  EXPECT_FALSE(PolicyRuntime::defaultRuntime().contains("local-0"));
}

}  // namespace
}  // namespace facs::cellular
