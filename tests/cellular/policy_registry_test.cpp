#include "cellular/policy_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cellular/network.hpp"
#include "sim/scenario_catalog.hpp"

namespace facs::cellular {
namespace {

TEST(PolicySpec, ParsesBareName) {
  const PolicySpec spec = PolicySpec::parse("facs");
  EXPECT_EQ(spec.name(), "facs");
  EXPECT_EQ(spec.positionalCount(), 0u);
}

TEST(PolicySpec, ParsesPositionalArgs) {
  const PolicySpec spec = PolicySpec::parse("threshold:38,30,20");
  EXPECT_EQ(spec.name(), "threshold");
  ASSERT_EQ(spec.positionalCount(), 3u);
  EXPECT_DOUBLE_EQ(spec.numberAt(0, -1.0), 38.0);
  EXPECT_DOUBLE_EQ(spec.numberAt(1, -1.0), 30.0);
  EXPECT_DOUBLE_EQ(spec.numberAt(2, -1.0), 20.0);
  EXPECT_DOUBLE_EQ(spec.numberAt(3, -1.0), -1.0);  // fallback
}

TEST(PolicySpec, ParsesNamedArgs) {
  const PolicySpec spec = PolicySpec::parse("facs:tau=0.25,ops=prod");
  EXPECT_TRUE(spec.hasKey("tau"));
  EXPECT_DOUBLE_EQ(spec.numberFor("tau", 0.0), 0.25);
  EXPECT_EQ(spec.keywordFor("ops", "minmax"), "prod");
  EXPECT_EQ(spec.keywordFor("missing", "fallback"), "fallback");
}

TEST(PolicySpec, MixedPositionalThenNamed) {
  const PolicySpec spec = PolicySpec::parse("scc:0.85,intervals=4");
  EXPECT_DOUBLE_EQ(spec.numberAt(0, 0.0), 0.85);
  EXPECT_DOUBLE_EQ(spec.numberFor("intervals", 0.0), 4.0);
}

TEST(PolicySpec, MalformedSpecsThrow) {
  EXPECT_THROW((void)PolicySpec::parse(""), PolicySpecError);
  EXPECT_THROW((void)PolicySpec::parse(":8"), PolicySpecError);
  EXPECT_THROW((void)PolicySpec::parse("guard:"), PolicySpecError);
  EXPECT_THROW((void)PolicySpec::parse("guard:8,,9"), PolicySpecError);
  EXPECT_THROW((void)PolicySpec::parse("facs:tau="), PolicySpecError);
  EXPECT_THROW((void)PolicySpec::parse("facs:=1"), PolicySpecError);
  EXPECT_THROW((void)PolicySpec::parse("facs:tau=1,tau=2"), PolicySpecError);
  // Positional after named is ambiguous.
  EXPECT_THROW((void)PolicySpec::parse("scc:theta=1,4"), PolicySpecError);
}

TEST(PolicyRegistry, BuiltinPoliciesAreRegistered) {
  const PolicyRegistry& reg = PolicyRegistry::global();
  const std::vector<std::string> names = reg.names();
  for (const char* expected :
       {"cs", "facs", "guard", "rsv", "scc", "sir", "threshold"}) {
    EXPECT_TRUE(reg.contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyRegistry, EveryEntryHasDocs) {
  const PolicyRegistry& reg = PolicyRegistry::global();
  for (const std::string& name : reg.names()) {
    const PolicyInfo& info = reg.info(name);
    EXPECT_FALSE(info.summary.empty()) << name;
    EXPECT_FALSE(info.params_doc.empty()) << name;
    EXPECT_NE(PolicyRegistry::global().describeAll().find(name),
              std::string::npos)
        << name;
  }
}

/// Round trip: every registered name parses, constructs on the paper's
/// single-cell network and produces a sane decision.
TEST(PolicyRegistry, RoundTripEveryPolicyOnPaperCell) {
  const sim::SimulationConfig paper =
      sim::ScenarioCatalog::builtins().at("paper-single-cell").config;
  const HexNetwork net{paper.rings, paper.cell_radius_km, paper.capacity_bu};

  CallRequest request;
  request.call = 1;
  request.service = ServiceClass::Voice;
  request.demand_bu = 5;
  request.snapshot = {60.0, 0.0, 3.0, {3.0, 0.0}};
  request.target_cell = 0;

  for (const std::string& name : PolicyRegistry::global().names()) {
    const std::unique_ptr<AdmissionController> controller =
        PolicyRegistry::global().makeController(name, net);
    ASSERT_NE(controller, nullptr) << name;
    EXPECT_FALSE(controller->name().empty()) << name;

    const AdmissionDecision d =
        controller->decide(request, {net.station(0), 0.0});
    EXPECT_GE(d.score, -1.0) << name;
    EXPECT_LE(d.score, 1.0) << name;
    EXPECT_TRUE(d.rationale.empty()) << name << ": hot path must not explain";
    if (d.accept) {
      EXPECT_EQ(d.reason, ReasonCode::Admitted) << name;
    } else {
      EXPECT_NE(d.reason, ReasonCode::Admitted) << name;
    }

    // Explain mode fills the rationale.
    const AdmissionDecision verbose =
        controller->decide(request, {net.station(0), 0.0, true});
    EXPECT_FALSE(verbose.rationale.empty()) << name;
    EXPECT_EQ(verbose.accept, d.accept) << name;
  }
}

TEST(PolicyRegistry, ParameterizedSpecsConstruct) {
  const HexNetwork net{1};
  for (const char* spec :
       {"guard:12", "guard:g=4", "threshold:40,40,40", "facs:0.25",
        "facs:tau=0.25,handoff=0.4", "facs:ops=prod", "facs:ops=luk",
        "facs:defuzz=mom,res=101", "scc:0.85", "scc:theta=0.9,intervals=2",
        "sir:-3,1,5", "rsv:0.75", "rsv:frac=0.1,minspeed=20"}) {
    EXPECT_NE(PolicyRegistry::global().makeController(spec, net), nullptr)
        << spec;
  }
}

TEST(PolicyRegistry, IntegerParametersRejectFractions) {
  const PolicyRegistry& reg = PolicyRegistry::global();
  EXPECT_THROW((void)reg.makeFactory("guard:8.5"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("guard:g=8.5"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("threshold:38.5,30,20"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("scc:intervals=1.7"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("scc:radius=1.7"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("facs:res=100.9"), PolicySpecError);
}

TEST(PolicyRegistry, SirThresholdsAreAllOrNothing) {
  EXPECT_THROW((void)PolicyRegistry::global().makeFactory("sir:5"),
               PolicySpecError);
  EXPECT_THROW((void)PolicyRegistry::global().makeFactory("sir:5,1"),
               PolicySpecError);
  const HexNetwork net{0};
  EXPECT_NE(PolicyRegistry::global().makeController("sir:5,5,5", net),
            nullptr);
}

TEST(PolicyRegistry, BadSpecsThrow) {
  const PolicyRegistry& reg = PolicyRegistry::global();
  EXPECT_THROW((void)reg.makeFactory("nope"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("guard:abc"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("guard:-1"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("guard:1,2"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("threshold:1,2"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("threshold:-5,1,1"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("facs:tua=0.2"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("facs:ops=max"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("facs:defuzz=median"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("facs:res=1"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("scc:theta=0"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("scc:intervals=0"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("rsv:1.5"), PolicySpecError);
  EXPECT_THROW((void)reg.makeFactory("rsv:minspeed=-1"), PolicySpecError);
  EXPECT_THROW((void)reg.info("nope"), PolicySpecError);
}

TEST(PolicyRegistry, DuplicateRegistrationThrows) {
  PolicyRegistry local;
  local.add({"x", "s", "x"}, [](const PolicySpec&) -> ControllerFactory {
    return nullptr;
  });
  EXPECT_THROW(local.add({"x", "s", "x"},
                         [](const PolicySpec&) -> ControllerFactory {
                           return nullptr;
                         }),
               std::logic_error);
}

}  // namespace
}  // namespace facs::cellular
