#include "cli/cli.hpp"

#include <gtest/gtest.h>

namespace facs::sim {
namespace {

TEST(Cli, DefaultsWhenEmpty) {
  const CliOptions opt = parseCli({});
  EXPECT_EQ(opt.policy, PolicyChoice::Facs);
  EXPECT_EQ(opt.config.total_requests, 50);
  EXPECT_FALSE(opt.csv);
  EXPECT_FALSE(opt.help);
  EXPECT_TRUE(opt.sweep_xs.empty());
}

TEST(Cli, ParsesPolicies) {
  EXPECT_EQ(parseCli({"--policy", "facs"}).policy, PolicyChoice::Facs);
  EXPECT_EQ(parseCli({"--policy", "scc"}).policy, PolicyChoice::Scc);
  EXPECT_EQ(parseCli({"--policy", "cs"}).policy,
            PolicyChoice::CompleteSharing);
  EXPECT_EQ(parseCli({"--policy", "guard"}).policy,
            PolicyChoice::GuardChannel);
  EXPECT_EQ(parseCli({"--policy", "threshold"}).policy,
            PolicyChoice::MultiThreshold);
  EXPECT_THROW((void)parseCli({"--policy", "nope"}), CliError);
}

TEST(Cli, ParsesWorkloadFlags) {
  const CliOptions opt = parseCli(
      {"--requests", "80", "--window", "300", "--seed", "9", "--poisson",
       "--warmup", "120", "--speed", "30:60", "--angle", "15:20",
       "--distance", "2:8", "--tracking-window", "10", "--gps-error", "25"});
  EXPECT_EQ(opt.config.total_requests, 80);
  EXPECT_DOUBLE_EQ(opt.config.arrival_window_s, 300.0);
  EXPECT_EQ(opt.config.seed, 9u);
  EXPECT_EQ(opt.config.arrivals, ArrivalProcess::Poisson);
  EXPECT_DOUBLE_EQ(opt.config.warmup_s, 120.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_min_kmh, 30.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_max_kmh, 60.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_mean_deg, 15.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_sigma_deg, 20.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.distance_min_km, 2.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.distance_max_km, 8.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.tracking_window_s, 10.0);
  ASSERT_TRUE(opt.config.scenario.gps_error_m.has_value());
  EXPECT_DOUBLE_EQ(*opt.config.scenario.gps_error_m, 25.0);
}

TEST(Cli, SingleValueRangesAndExactAngle) {
  const CliOptions opt =
      parseCli({"--speed", "60", "--angle", "45", "--distance", "7"});
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_min_kmh, 60.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_max_kmh, 60.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_mean_deg, 45.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_sigma_deg, 0.0);  // exact
  EXPECT_DOUBLE_EQ(opt.config.scenario.distance_min_km, 7.0);
}

TEST(Cli, NetworkAndPolicyKnobs) {
  const CliOptions opt = parseCli({"--rings", "2", "--cell-radius", "2.5",
                                   "--capacity", "80", "--handoffs",
                                   "--guard-bu", "12", "--facs-threshold",
                                   "0.25", "--no-gps"});
  EXPECT_EQ(opt.config.rings, 2);
  EXPECT_DOUBLE_EQ(opt.config.cell_radius_km, 2.5);
  EXPECT_EQ(opt.config.capacity_bu, 80);
  EXPECT_TRUE(opt.config.enable_handoffs);
  EXPECT_EQ(opt.guard_bu, 12);
  EXPECT_DOUBLE_EQ(opt.facs_threshold, 0.25);
  EXPECT_FALSE(opt.config.scenario.gps_error_m.has_value());
}

TEST(Cli, SweepAndOutput) {
  const CliOptions opt =
      parseCli({"--sweep", "10,50,100", "--reps", "3", "--csv"});
  EXPECT_EQ(opt.sweep_xs, (std::vector<int>{10, 50, 100}));
  EXPECT_EQ(opt.replications, 3);
  EXPECT_TRUE(opt.csv);
}

TEST(Cli, HelpFlag) {
  EXPECT_TRUE(parseCli({"--help"}).help);
  EXPECT_TRUE(parseCli({"-h"}).help);
  EXPECT_NE(cliUsage().find("--policy"), std::string::npos);
}

TEST(Cli, Errors) {
  EXPECT_THROW((void)parseCli({"--bogus"}), CliError);
  EXPECT_THROW((void)parseCli({"--requests"}), CliError);        // missing value
  EXPECT_THROW((void)parseCli({"--requests", "ten"}), CliError); // not a number
  EXPECT_THROW((void)parseCli({"--requests", "1.5"}), CliError); // not an int
  EXPECT_THROW((void)parseCli({"--sweep", ","}), CliError);      // empty list
}

TEST(Cli, FactoriesProduceWorkingControllers) {
  for (const char* policy : {"facs", "scc", "cs", "guard", "threshold"}) {
    const CliOptions opt = parseCli({"--policy", policy});
    const ControllerFactory factory = makeFactory(opt);
    const cellular::HexNetwork net{1};
    const auto controller = factory(net);
    ASSERT_NE(controller, nullptr) << policy;
    EXPECT_FALSE(controller->name().empty()) << policy;
  }
}

TEST(Cli, EndToEndRunWithParsedConfig) {
  CliOptions opt = parseCli({"--policy", "cs", "--requests", "30",
                             "--tracking-window", "0", "--no-gps"});
  const Metrics m = runSimulation(opt.config, makeFactory(opt));
  EXPECT_EQ(m.new_requests, 30);
}

TEST(Cli, PolicyNamesRoundTrip) {
  EXPECT_EQ(toString(PolicyChoice::Facs), "facs");
  EXPECT_EQ(toString(PolicyChoice::Scc), "scc");
  EXPECT_EQ(toString(PolicyChoice::CompleteSharing), "cs");
  EXPECT_EQ(toString(PolicyChoice::GuardChannel), "guard");
  EXPECT_EQ(toString(PolicyChoice::MultiThreshold), "threshold");
}

}  // namespace
}  // namespace facs::sim
