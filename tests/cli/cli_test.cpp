#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "cellular/policy_registry.hpp"
#include "sim/scenario_file.hpp"

namespace facs::sim {
namespace {

TEST(Cli, DefaultsWhenEmpty) {
  const CliOptions opt = parseCli({});
  EXPECT_EQ(opt.policy, "facs");
  EXPECT_TRUE(opt.scenario.empty());
  EXPECT_EQ(opt.config.total_requests, 50);
  EXPECT_FALSE(opt.csv);
  EXPECT_FALSE(opt.help);
  EXPECT_FALSE(opt.list_policies);
  EXPECT_FALSE(opt.list_scenarios);
  EXPECT_TRUE(opt.sweep_xs.empty());
}

TEST(Cli, AcceptsEveryRegisteredPolicy) {
  for (const std::string& name : cellular::PolicyRegistry::global().names()) {
    EXPECT_EQ(parseCli({"--policy", name}).policy, name) << name;
  }
  EXPECT_THROW((void)parseCli({"--policy", "nope"}), CliError);
}

TEST(Cli, AcceptsParameterizedPolicySpecs) {
  EXPECT_EQ(parseCli({"--policy", "guard:12"}).policy, "guard:12");
  EXPECT_EQ(parseCli({"--policy", "facs:tau=0.25,ops=prod"}).policy,
            "facs:tau=0.25,ops=prod");
  EXPECT_EQ(parseCli({"--policy", "threshold:38,30,20"}).policy,
            "threshold:38,30,20");
  // Malformed parameters fail at parse time.
  EXPECT_THROW((void)parseCli({"--policy", "guard:abc"}), CliError);
  EXPECT_THROW((void)parseCli({"--policy", "facs:tua=0.2"}), CliError);
}

TEST(Cli, LegacyShorthandsFoldIntoTheSpec) {
  EXPECT_EQ(parseCli({"--policy", "guard", "--guard-bu", "12"}).policy,
            "guard:12");
  EXPECT_EQ(parseCli({"--policy", "facs", "--facs-threshold", "0.25"}).policy,
            "facs:tau=0.25");
  // An explicit parameterized spec wins over the shorthand.
  EXPECT_EQ(parseCli({"--policy", "guard:4", "--guard-bu", "12"}).policy,
            "guard:4");
  // Shorthands for another policy are ignored.
  EXPECT_EQ(parseCli({"--policy", "cs", "--guard-bu", "12"}).policy, "cs");
}

TEST(Cli, ScenarioSetsTheBaseConfig) {
  const CliOptions opt = parseCli({"--scenario", "highway"});
  EXPECT_EQ(opt.scenario, "highway");
  EXPECT_EQ(opt.config.rings, 1);
  EXPECT_TRUE(opt.config.enable_handoffs);
  EXPECT_DOUBLE_EQ(opt.config.cell_radius_km, 2.0);
  EXPECT_THROW((void)parseCli({"--scenario", "mars-base"}), CliError);
}

TEST(Cli, FlagsOverrideTheScenarioRegardlessOfOrder) {
  // --scenario is resolved first even when it appears after the override.
  const CliOptions opt =
      parseCli({"--requests", "7", "--scenario", "highway", "--rings", "2"});
  EXPECT_EQ(opt.config.total_requests, 7);
  EXPECT_EQ(opt.config.rings, 2);
  EXPECT_DOUBLE_EQ(opt.config.cell_radius_km, 2.0);  // from the scenario
}

TEST(Cli, RepeatedScenarioLastWinsAndAllAreValidated) {
  const CliOptions opt =
      parseCli({"--scenario", "highway", "--scenario", "urban-walkers"});
  EXPECT_EQ(opt.scenario, "urban-walkers");
  EXPECT_DOUBLE_EQ(opt.config.cell_radius_km, 1.5);  // urban-walkers, not highway
  // A bogus later occurrence must not slip through.
  EXPECT_THROW(
      (void)parseCli({"--scenario", "highway", "--scenario", "mars-base"}),
      CliError);
}

TEST(Cli, ShardsFlagParsesAndValidates) {
  EXPECT_EQ(parseCli({}).config.shards, 1);
  EXPECT_EQ(parseCli({"--shards", "4"}).config.shards, 4);
  // Scenario defaults show through; an explicit flag overrides them.
  EXPECT_EQ(parseCli({"--scenario", "stadium-burst"}).config.shards, 4);
  EXPECT_EQ(parseCli({"--scenario", "stadium-burst", "--shards", "2"})
                .config.shards,
            2);
  // Out-of-range counts fail at parse time, not mid-run.
  EXPECT_THROW((void)parseCli({"--shards", "0"}), CliError);
  EXPECT_THROW((void)parseCli({"--shards", "-2"}), CliError);
  EXPECT_THROW((void)parseCli({"--shards", "100000"}), CliError);
  EXPECT_THROW((void)parseCli({"--shards", "two"}), CliError);
}

TEST(Cli, CommitGroupsFlagParsesAndValidates) {
  EXPECT_EQ(parseCli({}).config.commit_groups, 1);
  EXPECT_EQ(parseCli({"--commit-groups", "4"}).config.commit_groups, 4);
  EXPECT_EQ(parseCli({"--scenario", "highway", "--commit-groups", "7"})
                .config.commit_groups,
            7);
  EXPECT_THROW((void)parseCli({"--commit-groups", "0"}), CliError);
  EXPECT_THROW((void)parseCli({"--commit-groups", "-1"}), CliError);
  EXPECT_THROW((void)parseCli({"--commit-groups", "100000"}), CliError);
  EXPECT_THROW((void)parseCli({"--commit-groups", "four"}), CliError);
  // The usage text teaches the knob.
  EXPECT_NE(cliUsage().find("--commit-groups"), std::string::npos);
}

TEST(Cli, ListScenariosShowsCellCounts) {
  // Operators pick shard counts by cell count, so the catalog dump carries
  // it: "[7 cells, shards 4]" style annotations per entry.
  const std::string dump = ScenarioCatalog::builtins().describeAll();
  EXPECT_NE(dump.find("[1 cell, shards 1]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("[7 cells, shards 4]"), std::string::npos) << dump;
}

TEST(Cli, ListFlags) {
  EXPECT_TRUE(parseCli({"--list-policies"}).list_policies);
  EXPECT_TRUE(parseCli({"--list-scenarios"}).list_scenarios);
}

TEST(Cli, ScenarioFileSetsTheBaseConfig) {
  const std::string path = testing::TempDir() + "/cli_scenario.scn";
  {
    ScenarioSpec spec = ScenarioCatalog::builtins().at("highway");
    spec.name = "cli-highway";
    spec.policy = "guard:6";
    std::ofstream out{path};
    out << writeScenarioFile(spec);
  }
  const CliOptions opt = parseCli({"--scenario-file", path});
  EXPECT_EQ(opt.scenario, "cli-highway");
  EXPECT_EQ(opt.scenario_file, path);
  EXPECT_EQ(opt.config.rings, 1);
  EXPECT_DOUBLE_EQ(opt.config.cell_radius_km, 2.0);
  // The file's policy becomes the default...
  EXPECT_EQ(opt.policy, "guard:6");
  // ...and an explicit --policy still wins, in either flag order.
  EXPECT_EQ(parseCli({"--scenario-file", path, "--policy", "scc"}).policy,
            "scc");
  EXPECT_EQ(parseCli({"--policy", "scc", "--scenario-file", path}).policy,
            "scc");
  // Flags override the file base like they override --scenario.
  EXPECT_EQ(parseCli({"--scenario-file", path, "--requests", "9"})
                .config.total_requests,
            9);
}

TEST(Cli, ScenarioFileErrorsCarryFileAndLine) {
  const std::string path = testing::TempDir() + "/cli_bad.scn";
  {
    std::ofstream out{path};
    out << "[scenario]\nname = \"bad\"\npolicy = \"guard:-1\"\n";
  }
  try {
    (void)parseCli({"--scenario-file", path});
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":3:"), std::string::npos) << what;
  }
  EXPECT_THROW((void)parseCli({"--scenario-file", "/nonexistent.scn"}),
               CliError);
  EXPECT_THROW((void)parseCli({"--scenario-file"}), CliError);
}

TEST(Cli, DumpScenarioValidatesTheName) {
  EXPECT_EQ(parseCli({"--dump-scenario", "highway"}).dump_scenario,
            "highway");
  EXPECT_THROW((void)parseCli({"--dump-scenario", "mars-base"}), CliError);
  EXPECT_THROW((void)parseCli({"--dump-scenario"}), CliError);
  // "-" means the composed run and needs no catalog entry; the summary is
  // kept so the dump round-trips the whole spec.
  const CliOptions opt =
      parseCli({"--scenario", "highway", "--requests", "9",
                "--dump-scenario", "-"});
  EXPECT_EQ(opt.dump_scenario, "-");
  EXPECT_EQ(opt.scenario_summary,
            ScenarioCatalog::builtins().at("highway").summary);
  EXPECT_EQ(opt.config.total_requests, 9);
}

TEST(Cli, ExplainAndJsonFlags) {
  EXPECT_FALSE(parseCli({}).explain);
  EXPECT_FALSE(parseCli({}).config.explain);
  EXPECT_FALSE(parseCli({}).json);
  const CliOptions opt = parseCli({"--explain", "--json"});
  EXPECT_TRUE(opt.explain);
  EXPECT_TRUE(opt.config.explain);
  EXPECT_TRUE(opt.json);
}

TEST(Cli, CustomRuntimeResolvesExternalPolicies) {
  cellular::PolicyRuntime extended;
  extended.registerExternal(
      {"cli-plugin", "test stub", "cli-plugin"},
      [](const cellular::PolicySpec&) -> ControllerFactory {
        return cellular::PolicyRuntime::defaultRuntime().makeFactory("cs");
      });
  const CliOptions opt = parseCli({"--policy", "cli-plugin"}, extended,
                                  ScenarioCatalog::builtins());
  EXPECT_EQ(opt.policy, "cli-plugin");
  EXPECT_NE(makeFactory(opt, extended), nullptr);
  // The default runtime (and thus the default overload) never sees it.
  EXPECT_THROW((void)parseCli({"--policy", "cli-plugin"}), CliError);
}

TEST(Cli, ParsesWorkloadFlags) {
  const CliOptions opt = parseCli(
      {"--requests", "80", "--window", "300", "--seed", "9", "--poisson",
       "--warmup", "120", "--speed", "30:60", "--angle", "15:20",
       "--distance", "2:8", "--tracking-window", "10", "--gps-error", "25"});
  EXPECT_EQ(opt.config.total_requests, 80);
  EXPECT_DOUBLE_EQ(opt.config.arrival_window_s, 300.0);
  EXPECT_EQ(opt.config.seed, 9u);
  EXPECT_EQ(opt.config.arrivals, ArrivalProcess::Poisson);
  EXPECT_DOUBLE_EQ(opt.config.warmup_s, 120.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_min_kmh, 30.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_max_kmh, 60.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_mean_deg, 15.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_sigma_deg, 20.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.distance_min_km, 2.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.distance_max_km, 8.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.tracking_window_s, 10.0);
  ASSERT_TRUE(opt.config.scenario.gps_error_m.has_value());
  EXPECT_DOUBLE_EQ(*opt.config.scenario.gps_error_m, 25.0);
}

TEST(Cli, SingleValueRangesAndExactAngle) {
  const CliOptions opt =
      parseCli({"--speed", "60", "--angle", "45", "--distance", "7"});
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_min_kmh, 60.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.speed_max_kmh, 60.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_mean_deg, 45.0);
  EXPECT_DOUBLE_EQ(opt.config.scenario.angle_sigma_deg, 0.0);  // exact
  EXPECT_DOUBLE_EQ(opt.config.scenario.distance_min_km, 7.0);
}

TEST(Cli, NetworkKnobs) {
  const CliOptions opt = parseCli({"--rings", "2", "--cell-radius", "2.5",
                                   "--capacity", "80", "--handoffs",
                                   "--no-gps"});
  EXPECT_EQ(opt.config.rings, 2);
  EXPECT_DOUBLE_EQ(opt.config.cell_radius_km, 2.5);
  EXPECT_EQ(opt.config.capacity_bu, 80);
  EXPECT_TRUE(opt.config.enable_handoffs);
  EXPECT_FALSE(opt.config.scenario.gps_error_m.has_value());
}

TEST(Cli, SweepAndOutput) {
  const CliOptions opt = parseCli(
      {"--sweep", "10,50,100", "--reps", "3", "--threads", "2", "--csv"});
  EXPECT_EQ(opt.sweep_xs, (std::vector<int>{10, 50, 100}));
  EXPECT_EQ(opt.replications, 3);
  EXPECT_EQ(opt.threads, 2);
  EXPECT_TRUE(opt.csv);
}

TEST(Cli, HelpFlag) {
  EXPECT_TRUE(parseCli({"--help"}).help);
  EXPECT_TRUE(parseCli({"-h"}).help);
  const std::string usage = cliUsage();
  EXPECT_NE(usage.find("--policy"), std::string::npos);
  EXPECT_NE(usage.find("--scenario"), std::string::npos);
  // The usage text is generated from the live registry and catalog.
  for (const std::string& name : cellular::PolicyRegistry::global().names()) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
  for (const std::string& name : ScenarioCatalog::builtins().names()) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

TEST(Cli, Errors) {
  EXPECT_THROW((void)parseCli({"--bogus"}), CliError);
  EXPECT_THROW((void)parseCli({"--requests"}), CliError);        // missing value
  EXPECT_THROW((void)parseCli({"--requests", "ten"}), CliError); // not a number
  EXPECT_THROW((void)parseCli({"--requests", "1.5"}), CliError); // not an int
  EXPECT_THROW((void)parseCli({"--sweep", ","}), CliError);      // empty list
  EXPECT_THROW((void)parseCli({"--policy"}), CliError);          // missing value
}

TEST(Cli, FactoriesProduceWorkingControllers) {
  for (const std::string& name : cellular::PolicyRegistry::global().names()) {
    const CliOptions opt = parseCli({"--policy", name});
    const ControllerFactory factory = makeFactory(opt);
    const cellular::HexNetwork net{1};
    const auto controller = factory(net);
    ASSERT_NE(controller, nullptr) << name;
    EXPECT_FALSE(controller->name().empty()) << name;
  }
}

TEST(Cli, EndToEndRunWithParsedConfig) {
  CliOptions opt = parseCli({"--policy", "cs", "--requests", "30",
                             "--tracking-window", "0", "--no-gps"});
  const Metrics m = runSimulation(opt.config, makeFactory(opt));
  EXPECT_EQ(m.new_requests, 30);
}

TEST(Cli, EndToEndRunFromScenario) {
  CliOptions opt =
      parseCli({"--scenario", "urban-walkers", "--policy", "guard:8",
                "--requests", "25", "--tracking-window", "0", "--no-gps"});
  const Metrics m = runSimulation(opt.config, makeFactory(opt));
  EXPECT_EQ(m.new_requests, 25);
}

}  // namespace
}  // namespace facs::sim
