#include "predict/prediction_study.hpp"

#include <gtest/gtest.h>

namespace facs::predict {
namespace {

TEST(RocAuc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(rocAuc({0.8, 0.9, 1.0}, {0.1, 0.2}), 1.0);
  EXPECT_DOUBLE_EQ(rocAuc({0.1, 0.2}, {0.8, 0.9}), 0.0);
}

TEST(RocAuc, TiesAndMixtures) {
  EXPECT_DOUBLE_EQ(rocAuc({0.5}, {0.5}), 0.5);
  // positives {1, 0}, negatives {0.5}: one win, one loss -> 0.5.
  EXPECT_DOUBLE_EQ(rocAuc({1.0, 0.0}, {0.5}), 0.5);
  // 3 wins + 1 tie out of 4 pairs = 3.5/4.
  EXPECT_DOUBLE_EQ(rocAuc({1.0, 0.6}, {0.6, 0.2}), 0.875);
}

TEST(RocAuc, RequiresBothClasses) {
  EXPECT_THROW((void)rocAuc({}, {0.1}), std::invalid_argument);
  EXPECT_THROW((void)rocAuc({0.1}, {}), std::invalid_argument);
}

TEST(PredictionStudy, ValidatesConfig) {
  PredictionConfig bad;
  bad.horizon_s = 0.0;
  EXPECT_THROW((void)runPredictionStudy(bad), std::invalid_argument);
  bad = {};
  bad.step_s = -1.0;
  EXPECT_THROW((void)runPredictionStudy(bad), std::invalid_argument);
  bad = {};
  bad.samples = 1;
  EXPECT_THROW((void)runPredictionStudy(bad), std::invalid_argument);
}

PredictionConfig smallStudy() {
  PredictionConfig cfg;
  cfg.samples = 400;
  cfg.seed = 5;
  cfg.scenario.angle_sigma_deg = 75.0;
  cfg.scenario.tracking_window_s = 0.0;  // keep the test fast
  cfg.scenario.gps_error_m.reset();
  return cfg;
}

TEST(PredictionStudy, ReportsAllThreePredictors) {
  const StudyResult r = runPredictionStudy(smallStudy());
  ASSERT_EQ(r.predictors.size(), 3u);
  EXPECT_EQ(r.predictors[0].name, "facs-cv");
  EXPECT_EQ(r.predictors[1].name, "straight-line");
  EXPECT_EQ(r.predictors[2].name, "proximity");
  EXPECT_EQ(r.approachers + r.retreaters, 400);
  for (const auto& p : r.predictors) {
    EXPECT_GE(p.auc, 0.0);
    EXPECT_LE(p.auc, 1.0);
  }
}

TEST(PredictionStudy, DeterministicPerSeed) {
  const StudyResult a = runPredictionStudy(smallStudy());
  const StudyResult b = runPredictionStudy(smallStudy());
  EXPECT_EQ(a.approachers, b.approachers);
  for (std::size_t i = 0; i < a.predictors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.predictors[i].auc, b.predictors[i].auc);
  }
}

TEST(PredictionStudy, FastStraightUsersAreRankable) {
  PredictionConfig cfg = smallStudy();
  cfg.scenario.speed_min_kmh = 60.0;
  cfg.scenario.speed_max_kmh = 60.0;
  cfg.samples = 800;
  const StudyResult r = runPredictionStudy(cfg);
  // Fast users barely turn: both informed predictors must rank well.
  EXPECT_GT(r.predictors[0].auc, 0.8) << "facs-cv";
  EXPECT_GT(r.predictors[1].auc, 0.8) << "straight-line";
  // Approachers carry higher Cv than retreaters.
  EXPECT_GT(r.predictors[0].mean_score_approachers,
            r.predictors[0].mean_score_retreaters);
}

TEST(PredictionStudy, MixedPopulationFavoursTheFuzzyPredictor) {
  PredictionConfig cfg = smallStudy();
  cfg.scenario.speed_min_kmh = 0.0;
  cfg.scenario.speed_max_kmh = 120.0;
  cfg.samples = 1500;
  const StudyResult r = runPredictionStudy(cfg);
  // The paper's conclusion, measured: speed-aware fuzzy prediction ranks a
  // mixed population at least as well as dead reckoning.
  EXPECT_GE(r.predictors[0].auc, r.predictors[1].auc - 0.01);
  // And both beat the mobility-blind baseline.
  EXPECT_GT(r.predictors[0].auc, r.predictors[2].auc + 0.1);
}

TEST(PredictionStudy, WalkersAreNearCoinFlips) {
  PredictionConfig cfg = smallStudy();
  cfg.scenario.speed_min_kmh = 4.0;
  cfg.scenario.speed_max_kmh = 4.0;
  cfg.samples = 800;
  const StudyResult r = runPredictionStudy(cfg);
  // The paper's own caveat: walking users' direction "can be changed",
  // so nobody ranks them much better than chance.
  EXPECT_NEAR(r.predictors[0].auc, 0.5, 0.12);
  EXPECT_NEAR(r.predictors[1].auc, 0.5, 0.12);
}

}  // namespace
}  // namespace facs::predict
