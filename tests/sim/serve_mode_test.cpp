/// \file serve_mode_test.cpp
/// Streaming service mode, end to end: window snapshots aligned to the
/// engine's own barriers must reproduce the batch run bit for bit (the
/// equivalence contract in serve/service.hpp), mutation scripts must be
/// deterministic at any shard count, the call pool must stay flat under
/// long churn, and `[at T]` scenario-file sections must round-trip.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cellular/policy_registry.hpp"
#include "serve/service.hpp"
#include "sim/scenario_file.hpp"
#include "sim/simulator.hpp"

namespace facs::sim {
namespace {

ControllerFactory guardPolicy() {
  // O(1), cell-local decide: legal at any commit_groups count, so one
  // policy covers the whole shards x groups matrix.
  return cellular::PolicyRuntime::defaultRuntime().makeFactory("guard:8");
}

/// The sharding test's contested scenario: handoffs, GPS tracking, warmup
/// — every path a window barrier can cut through.
SimulationConfig contestedConfig() {
  SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 2.0;
  cfg.total_requests = 120;
  cfg.arrival_window_s = 400.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.warmup_s = 50.0;
  cfg.seed = 20240731;
  cfg.scenario.speed_min_kmh = 30.0;
  cfg.scenario.speed_max_kmh = 110.0;
  cfg.scenario.distance_max_km = 2.0;
  cfg.scenario.tracking_window_s = 10.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  cfg.scenario.gps_error_m = 10.0;
  return cfg;
}

/// Runs streamed and returns every snapshot in emission order.
std::vector<WindowSnapshot> streamRun(const SimulationConfig& cfg,
                                      double metrics_every_s,
                                      Metrics* final_out = nullptr) {
  std::vector<WindowSnapshot> windows;
  ServiceHooks hooks;
  hooks.metrics_every_s = metrics_every_s;
  hooks.on_window = [&](const WindowSnapshot& w) { windows.push_back(w); };
  const Metrics m = runSimulation(cfg, guardPolicy(), hooks);
  if (final_out) *final_out = m;
  return windows;
}

TEST(ServeMode, WindowSumsMatchBatchAtEveryShardGroupCombination) {
  for (const int shards : {1, 4}) {
    for (const int groups : {1, 4}) {
      SimulationConfig cfg = contestedConfig();
      cfg.shards = shards;
      cfg.commit_groups = groups;
      const std::string label = "shards=" + std::to_string(shards) +
                                " groups=" + std::to_string(groups);
      const Metrics batch = runSimulation(cfg, guardPolicy());
      Metrics streamed_final;
      const std::vector<WindowSnapshot> windows =
          streamRun(cfg, 60.0, &streamed_final);

      ASSERT_GE(windows.size(), 3u) << label;
      EXPECT_TRUE(windows.back().final_window) << label;
      // The last window's cumulative IS the batch result — bitwise, via
      // the canonical JSON form which prints shortest-round-trip doubles.
      EXPECT_EQ(windows.back().cumulative.toJson(), batch.toJson()) << label;
      EXPECT_EQ(streamed_final.toJson(), batch.toJson()) << label;

      // Windows chain without gaps and counters never move backwards, so
      // the integer deltas of all windows telescope exactly to the batch
      // totals.
      for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
        EXPECT_FALSE(windows[i].final_window) << label;
        EXPECT_EQ(windows[i].t1, windows[i + 1].t0) << label;
        EXPECT_LE(windows[i].cumulative.new_requests,
                  windows[i + 1].cumulative.new_requests)
            << label;
        EXPECT_LE(windows[i].cumulative.engine_events,
                  windows[i + 1].cumulative.engine_events)
            << label;
      }
      EXPECT_EQ(windows.back().cumulative.new_requests, batch.new_requests)
          << label;
      EXPECT_EQ(windows.back().cumulative.engine_events, batch.engine_events)
          << label;
    }
  }
}

TEST(ServeMode, WindowMetricsAreShardCountInvariant) {
  SimulationConfig base = contestedConfig();
  base.shards = 1;
  const std::vector<WindowSnapshot> serial = streamRun(base, 60.0);
  base.shards = 4;
  const std::vector<WindowSnapshot> sharded = streamRun(base, 60.0);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].t0, sharded[i].t0) << "window " << i;
    EXPECT_EQ(serial[i].t1, sharded[i].t1) << "window " << i;
    // Every window's metrics — not just the final one — is bit-identical
    // at any shard count (barrier times are pure functions of the config).
    EXPECT_EQ(serial[i].cumulative.toJson(), sharded[i].cumulative.toJson())
        << "window " << i;
  }
}

/// Drops the one line that reports the memory substrate, for comparisons
/// where the two runs legitimately hold different numbers of calls at
/// once (see NoHandoffRunsAreWindowedByTheEmissionPeriod).
std::string withoutPeakCalls(const std::string& json) {
  std::string out;
  std::istringstream in{json};
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("peak_concurrent_calls") == std::string::npos) {
      out += line + "\n";
    }
  }
  return out;
}

TEST(ServeMode, NoHandoffRunsAreWindowedByTheEmissionPeriod) {
  // Handoffs off = no natural barriers; the engine must window the run at
  // metrics_every_s instead — and stay outcome-neutral doing it. The one
  // legitimate difference is memory: the batch run materializes every
  // call of its single infinite window upfront, while the windowed run
  // only holds each window's calls — so its pool high-water (and thus
  // peak_concurrent_calls) is LOWER, which is the point of serving.
  SimulationConfig cfg;
  cfg.total_requests = 60;
  cfg.arrival_window_s = 500.0;
  cfg.seed = 11;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  const Metrics batch = runSimulation(cfg, guardPolicy());
  const std::vector<WindowSnapshot> windows = streamRun(cfg, 100.0);
  ASSERT_GE(windows.size(), 4u);
  EXPECT_EQ(withoutPeakCalls(windows.back().cumulative.toJson()),
            withoutPeakCalls(batch.toJson()));
  EXPECT_LT(windows.back().cumulative.peak_concurrent_calls,
            batch.peak_concurrent_calls);
}

TEST(ServeMode, JsonlStreamIsSeedStable) {
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 2;
  serve::ServeOptions options;
  options.metrics_every_s = 60.0;
  std::ostringstream first, second;
  (void)serve::serveSimulation(cfg, guardPolicy(), options, first);
  (void)serve::serveSimulation(cfg, guardPolicy(), options, second);
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());  // byte-for-byte repeatable
}

SimulationConfig mutatedConfig() {
  SimulationConfig cfg = contestedConfig();
  cfg.arrivals = ArrivalProcess::Poisson;
  serve::ScenarioMutation ramp;
  ramp.at_s = 120.0;
  ramp.op = serve::MutationOp::ArrivalScale;
  ramp.scale = 2.0;
  cfg.mutations.push_back(ramp);
  serve::ScenarioMutation outage;
  outage.at_s = 180.0;
  outage.op = serve::MutationOp::Outage;
  outage.cell = 0;  // the centre cell always has traffic
  cfg.mutations.push_back(outage);
  serve::ScenarioMutation restore = outage;
  restore.at_s = 260.0;
  restore.op = serve::MutationOp::Restore;
  cfg.mutations.push_back(restore);
  serve::ScenarioMutation mix;
  mix.at_s = 300.0;
  mix.op = serve::MutationOp::Mix;
  mix.mix = cellular::TrafficMix{0.2, 0.3, 0.5};
  cfg.mutations.push_back(mix);
  return cfg;
}

TEST(ServeMode, MutationScriptIsDeterministicAcrossShardCounts) {
  SimulationConfig cfg = mutatedConfig();
  cfg.shards = 1;
  Metrics serial_final;
  const std::vector<WindowSnapshot> serial =
      streamRun(cfg, 60.0, &serial_final);
  cfg.shards = 4;
  Metrics sharded_final;
  const std::vector<WindowSnapshot> sharded =
      streamRun(cfg, 60.0, &sharded_final);

  EXPECT_EQ(serial_final.mutations_applied, 4);
  EXPECT_GT(serial_final.outage_forced_drops, 0);  // the outage really bit
  EXPECT_EQ(serial_final.toJson(), sharded_final.toJson());
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].cumulative.toJson(), sharded[i].cumulative.toJson())
        << "window " << i;
    EXPECT_EQ(serial[i].stats.mutations_applied,
              sharded[i].stats.mutations_applied)
        << "window " << i;
  }
}

TEST(ServeMode, OutageDropsCallsAndBlocksAdmissions) {
  SimulationConfig plain = mutatedConfig();
  plain.mutations.clear();
  const Metrics undisturbed = runSimulation(plain, guardPolicy());
  const Metrics disturbed = runSimulation(mutatedConfig(), guardPolicy());
  EXPECT_EQ(undisturbed.outage_forced_drops, 0);
  EXPECT_GT(disturbed.outage_forced_drops, 0);
  // A downed centre cell (plus the doubled arrival rate) must refuse
  // admissions the undisturbed run accepted.
  EXPECT_GT(disturbed.new_blocked, undisturbed.new_blocked);
}

TEST(ServeMode, CallPoolStaysFlatUnderLongChurn) {
  // The regression this subsystem fixes: per-call storage used to be
  // append-only, so a long run grew without bound. Now slots recycle at
  // release — thousands of sequential calls must reuse a handful of
  // slots, and slab growth must stop after warmup.
  SimulationConfig cfg;
  cfg.total_requests = 2000;
  cfg.arrival_window_s = 20000.0;  // sparse: low concurrency, high churn
  cfg.seed = 5;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  Metrics final_metrics;
  const std::vector<WindowSnapshot> windows =
      streamRun(cfg, 1000.0, &final_metrics);

  EXPECT_EQ(final_metrics.new_requests, 2000);
  // Memory is proportional to CONCURRENT calls, not cumulative calls.
  EXPECT_LT(final_metrics.peak_concurrent_calls, 200u);
  ASSERT_GE(windows.size(), 10u);
  const EngineWindowStats& warm = windows[2].stats;
  EXPECT_EQ(warm.pool_grow_events, 1u);  // a single slab covers the run
  for (std::size_t i = 3; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].stats.pool_grow_events, warm.pool_grow_events)
        << "window " << i << " allocated after warmup";
    EXPECT_EQ(windows[i].stats.pool_capacity, warm.pool_capacity)
        << "window " << i;
    EXPECT_EQ(windows[i].stats.ring_spills, 0u) << "window " << i;
  }
  const EngineWindowStats& last = windows.back().stats;
  EXPECT_EQ(last.pool_acquired, 2000u);
  EXPECT_EQ(last.pool_released, 2000u);  // every slot returned by drain
  EXPECT_EQ(last.pool_live, 0u);
}

TEST(ServeMode, DurationModeServesPastTheConfiguredRequestCount) {
  SimulationConfig cfg;
  cfg.total_requests = 10;  // in duration mode this is only the RATE
  cfg.arrival_window_s = 100.0;
  cfg.arrivals = ArrivalProcess::Poisson;
  cfg.seed = 3;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  ServiceHooks hooks;
  hooks.metrics_every_s = 200.0;
  hooks.serve_duration_s = 2000.0;
  int windows = 0;
  hooks.on_window = [&](const WindowSnapshot&) { ++windows; };
  const Metrics m = runSimulation(cfg, guardPolicy(), hooks);
  // 0.1 calls/s for 2000 s: far more than 10 arrivals, fully drained.
  EXPECT_GT(m.new_requests, 100);
  EXPECT_EQ(m.new_accepted, m.completed);
  EXPECT_GE(windows, 10);
}

TEST(ServeMode, DurationModeRequiresPoissonArrivals) {
  SimulationConfig cfg;
  cfg.total_requests = 10;
  cfg.arrival_window_s = 100.0;  // uniform burst: no rate to keep running
  ServiceHooks hooks;
  hooks.serve_duration_s = 500.0;
  hooks.on_window = [](const WindowSnapshot&) {};
  EXPECT_THROW((void)runSimulation(cfg, guardPolicy(), hooks),
               std::invalid_argument);
}

// ------------------------------------------------------ [at T] sections

const cellular::PolicyRuntime& runtime() {
  return cellular::PolicyRuntime::defaultRuntime();
}

TEST(ServeScenarioFile, AtSectionsParseIntoMutations) {
  const ScenarioSpec spec = parseScenarioFile(R"(
[scenario]
name = "muted"

[network]
rings = 1

[run]
arrivals = "poisson"

[at 120]
arrival_scale = 2.5

[at 300]
cell = 3
outage = true

[at 360]
cell = 3
restore = true

[at 400]
mix = [0.2, 0.3, 0.5]
)",
                                              runtime());
  ASSERT_EQ(spec.config.mutations.size(), 4u);
  EXPECT_EQ(spec.config.mutations[0].at_s, 120.0);
  EXPECT_EQ(spec.config.mutations[0].op, serve::MutationOp::ArrivalScale);
  EXPECT_EQ(spec.config.mutations[0].scale, 2.5);
  EXPECT_FALSE(spec.config.mutations[0].cell.has_value());
  EXPECT_EQ(spec.config.mutations[1].op, serve::MutationOp::Outage);
  EXPECT_EQ(spec.config.mutations[1].cell, cellular::CellId{3});
  EXPECT_EQ(spec.config.mutations[2].op, serve::MutationOp::Restore);
  EXPECT_EQ(spec.config.mutations[3].op, serve::MutationOp::Mix);
  ASSERT_TRUE(spec.config.mutations[3].mix.has_value());
}

TEST(ServeScenarioFile, AtSectionsSurviveTheWriteParseRoundTrip) {
  ScenarioSpec spec;
  spec.name = "roundtrip";
  spec.config = mutatedConfig();
  const std::string text = writeScenarioFile(spec);
  const ScenarioSpec back = parseScenarioFile(text, runtime());
  ASSERT_EQ(back.config.mutations.size(), spec.config.mutations.size());
  for (std::size_t i = 0; i < spec.config.mutations.size(); ++i) {
    const serve::ScenarioMutation& a = spec.config.mutations[i];
    const serve::ScenarioMutation& b = back.config.mutations[i];
    EXPECT_EQ(a.at_s, b.at_s) << "mutation " << i;
    EXPECT_EQ(a.op, b.op) << "mutation " << i;
    EXPECT_EQ(a.cell, b.cell) << "mutation " << i;
    EXPECT_EQ(a.scale, b.scale) << "mutation " << i;
    EXPECT_EQ(a.mix.has_value(), b.mix.has_value()) << "mutation " << i;
  }
  // Canonical-form fixed point: writing the reparsed spec reproduces the
  // text byte for byte, [at] sections included.
  EXPECT_EQ(writeScenarioFile(back), text);
}

TEST(ServeScenarioFile, AtSectionWithNoActionIsAnError) {
  EXPECT_THROW((void)parseScenarioFile(R"(
[scenario]
name = "x"

[at 120]
cell = 2
)",
                                       runtime()),
               ScenarioFileError);
}

TEST(ServeScenarioFile, AtSectionWithTwoActionsIsAnError) {
  EXPECT_THROW((void)parseScenarioFile(R"(
[scenario]
name = "x"

[run]
arrivals = "poisson"

[at 120]
arrival_scale = 2
outage = true
)",
                                       runtime()),
               ScenarioFileError);
}

TEST(ServeScenarioFile, OutageWithoutCellFailsValidation) {
  EXPECT_THROW((void)parseScenarioFile(R"(
[scenario]
name = "x"

[at 120]
outage = true
)",
                                       runtime()),
               ScenarioFileError);
}

TEST(ServeScenarioFile, GlobalArrivalScaleNeedsPoissonAtParseTime) {
  // The default arrival process is a uniform burst — a global rate ramp
  // must be rejected when the file is validated, not when the run starts.
  EXPECT_THROW((void)parseScenarioFile(R"(
[scenario]
name = "x"

[at 120]
arrival_scale = 2
)",
                                       runtime()),
               ScenarioFileError);
}

}  // namespace
}  // namespace facs::sim
