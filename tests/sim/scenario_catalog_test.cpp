#include "sim/scenario_catalog.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cellular/policy_registry.hpp"

namespace facs::sim {
namespace {

TEST(ScenarioCatalog, BuiltinScenariosAreCatalogued) {
  const ScenarioCatalog& catalog = ScenarioCatalog::builtins();
  const std::vector<std::string> names = catalog.names();
  for (const char* expected :
       {"paper-single-cell", "urban-walkers", "highway", "stadium-burst",
        "poisson-steady-state"}) {
    EXPECT_TRUE(catalog.contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
    EXPECT_FALSE(catalog.at(expected).summary.empty()) << expected;
    EXPECT_NE(catalog.describeAll().find(expected), std::string::npos);
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioCatalog, EveryScenarioValidates) {
  for (const std::string& name : ScenarioCatalog::builtins().names()) {
    EXPECT_NO_THROW(validateConfig(ScenarioCatalog::builtins().at(name).config))
        << name;
  }
}

TEST(ScenarioCatalog, PaperScenarioMatchesPaperDefaults) {
  const SimulationConfig& cfg =
      ScenarioCatalog::builtins().at("paper-single-cell").config;
  EXPECT_EQ(cfg.rings, 0);
  EXPECT_EQ(cfg.capacity_bu, cellular::kPaperCellCapacityBu);
  EXPECT_DOUBLE_EQ(cfg.cell_radius_km, 10.0);
}

TEST(ScenarioCatalog, UnknownScenarioThrows) {
  EXPECT_THROW((void)ScenarioCatalog::builtins().at("mars-base"), ScenarioError);
  EXPECT_THROW((void)SimulationBuilder::scenario("mars-base"), ScenarioError);
}

TEST(SimulationBuilder, OverridesComposeOnScenarioBase) {
  const SimulationConfig cfg = SimulationBuilder::scenario("highway")
                                   .requests(42)
                                   .seed(9)
                                   .capacityBu(64)
                                   .speedKmh(80.0, 90.0)
                                   .trackingWindow(5.0)
                                   .gpsErrorM(25.0)
                                   .build();
  // Overrides applied...
  EXPECT_EQ(cfg.total_requests, 42);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_EQ(cfg.capacity_bu, 64);
  EXPECT_DOUBLE_EQ(cfg.scenario.speed_min_kmh, 80.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.tracking_window_s, 5.0);
  ASSERT_TRUE(cfg.scenario.gps_error_m.has_value());
  EXPECT_DOUBLE_EQ(*cfg.scenario.gps_error_m, 25.0);
  // ...while the scenario base shows through everywhere else.
  EXPECT_EQ(cfg.rings, 1);
  EXPECT_TRUE(cfg.enable_handoffs);
  EXPECT_DOUBLE_EQ(cfg.cell_radius_km, 2.0);
}

TEST(SimulationBuilder, BuildValidates) {
  EXPECT_THROW((void)SimulationBuilder{}.requests(-1).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SimulationBuilder{}.arrivalWindow(0.0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SimulationBuilder{}.trackingWindow(-1.0).build(),
               std::invalid_argument);
}

TEST(SimulationBuilder, PolicySpecValidatedEagerly) {
  EXPECT_THROW((void)SimulationBuilder{}.policy("nope"),
               cellular::PolicySpecError);
  EXPECT_THROW((void)SimulationBuilder{}.policy("guard:-3"),
               cellular::PolicySpecError);
  EXPECT_NO_THROW((void)SimulationBuilder{}.policy("guard:8"));
}

TEST(SimulationBuilder, RunExecutesTheComposedSimulation) {
  const Metrics m = SimulationBuilder{}
                        .requests(30)
                        .trackingWindow(0.0)
                        .noGps()
                        .seed(3)
                        .policy("cs")
                        .run();
  EXPECT_EQ(m.new_requests, 30);
}

TEST(SimulationBuilder, RunIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    return SimulationBuilder::scenario("urban-walkers")
        .requests(40)
        .seed(seed)
        .policy("facs")
        .run()
        .percentAccepted();
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
}

TEST(ScenarioCatalog, AddExtendsOnlyThisInstance) {
  ScenarioCatalog mine;
  ScenarioSpec spec = ScenarioCatalog::builtins().at("highway");
  spec.name = "autobahn";
  mine.add(spec);
  EXPECT_TRUE(mine.contains("autobahn"));
  EXPECT_TRUE(mine.contains("highway"));  // built-ins seed every instance
  EXPECT_FALSE(ScenarioCatalog::builtins().contains("autobahn"));
  EXPECT_THROW(mine.add(spec), ScenarioError);  // duplicate
  spec.name = "";
  EXPECT_THROW(mine.add(spec), ScenarioError);  // unnamed
}

TEST(SimulationBuilder, SpecConstructorAdoptsThePolicy) {
  ScenarioSpec spec = ScenarioCatalog::builtins().at("paper-single-cell");
  spec.policy = "guard:8";
  const SimulationBuilder builder{spec};
  EXPECT_EQ(builder.policySpec(), "guard:8");
  // .policy() still overrides the scenario default.
  EXPECT_EQ(SimulationBuilder{spec}.policy("cs").policySpec(), "cs");
}

TEST(SimulationBuilder, CustomRuntimeResolvesExternalPolicies) {
  cellular::PolicyRuntime extended;
  extended.registerExternal(
      {"builder-plugin", "test stub", "builder-plugin"},
      [](const cellular::PolicySpec&) -> ControllerFactory {
        return cellular::PolicyRuntime::defaultRuntime().makeFactory("cs");
      });
  const Metrics m = SimulationBuilder{}
                        .runtime(extended)
                        .requests(10)
                        .trackingWindow(0.0)
                        .noGps()
                        .policy("builder-plugin")
                        .run();
  EXPECT_EQ(m.new_requests, 10);
  // Without the runtime, the spec is unknown — no bleed into the default.
  EXPECT_THROW((void)SimulationBuilder{}.policy("builder-plugin"),
               cellular::PolicySpecError);
}

TEST(SimulationBuilder, ExplainTogglesRationalesWithoutChangingDecisions) {
  const auto run = [](bool explain) {
    return SimulationBuilder{}
        .requests(30)
        .trackingWindow(0.0)
        .noGps()
        .seed(11)
        .explain(explain)
        .policy("facs")
        .run();
  };
  const Metrics quiet = run(false);
  const Metrics verbose = run(true);
  EXPECT_EQ(quiet.new_accepted, verbose.new_accepted);
  EXPECT_EQ(quiet.engine_events, verbose.engine_events);
  // Built-in rationales fit the inline buffer; nothing is truncated.
  EXPECT_EQ(quiet.truncated_rationales, 0);
  EXPECT_EQ(verbose.truncated_rationales, 0);
}

TEST(SimulationBuilder, CellCapacityOverridesValidateAndApply) {
  // cell 0 starved to 5 BU: the run sees the reduced total capacity.
  const Metrics m = SimulationBuilder{}
                        .requests(20)
                        .trackingWindow(0.0)
                        .noGps()
                        .cellCapacityBu(0, 5)
                        .policy("cs")
                        .run();
  EXPECT_EQ(m.total_capacity_bu, 5);
  // Out-of-disk and non-positive overrides fail at build() time.
  EXPECT_THROW((void)SimulationBuilder{}.cellCapacityBu(7, 5).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SimulationBuilder{}.cellCapacityBu(0, 0).build(),
               std::invalid_argument);
  // Repeating a setter updates the cell's single override entry (last
  // wins), so capacity/arrival/mix setters for one cell always compose
  // into the one-entry-per-cell shape validateConfig() demands.
  const SimulationConfig merged = SimulationBuilder{}
                                      .cellCapacityBu(0, 5)
                                      .cellCapacityBu(0, 9)
                                      .cellArrivalScale(0, 2.0)
                                      .build();
  ASSERT_EQ(merged.cell_overrides.size(), 1u);
  EXPECT_EQ(merged.cell_overrides[0].capacity_bu, 9);
  EXPECT_EQ(merged.cell_overrides[0].arrival_scale, 2.0);
}

TEST(SimulationBuilder, CatalogEntriesRunUnderEveryPolicy) {
  // Smoke: the whole catalog x a few registry specs. Scale the heavier
  // scenarios down so this stays a unit test.
  for (const std::string& scenario : ScenarioCatalog::builtins().names()) {
    for (const char* policy : {"facs", "cs", "guard:8"}) {
      const Metrics m = SimulationBuilder::scenario(scenario)
                            .requests(20)
                            .arrivalWindow(120.0)
                            .warmup(0.0)
                            .trackingWindow(0.0)
                            .noGps()
                            .seed(1)
                            .policy(policy)
                            .run();
      EXPECT_EQ(m.new_requests, 20) << scenario << "/" << policy;
    }
  }
}

}  // namespace
}  // namespace facs::sim
