/// \file sharding_test.cpp
/// Determinism contract of the sharded engine: for a fixed seed, the
/// serial run (shards=1) and every sharded run must produce bit-identical
/// metrics — the cell partition may only change how much local work runs
/// concurrently, never a single simulation outcome. Double fields are
/// compared with exact equality on purpose: "close" would hide
/// nondeterministic commit ordering.

#include <gtest/gtest.h>

#include "sim/scenario_catalog.hpp"
#include "sim/simulator.hpp"

namespace facs::sim {
namespace {

/// A multi-cell scenario exercising every cross-shard path: GPS-tracked
/// decisions, handoffs (accepted and dropped), coverage exits, warmup.
SimulationConfig contestedConfig() {
  SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 2.0;
  cfg.total_requests = 120;
  cfg.arrival_window_s = 400.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.warmup_s = 50.0;
  cfg.seed = 20240731;
  cfg.scenario.speed_min_kmh = 30.0;
  cfg.scenario.speed_max_kmh = 110.0;
  cfg.scenario.distance_max_km = 2.0;
  cfg.scenario.tracking_window_s = 10.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  cfg.scenario.gps_error_m = 10.0;
  return cfg;
}

void expectBitIdentical(const Metrics& a, const Metrics& b,
                        const std::string& label) {
  EXPECT_EQ(a.new_requests, b.new_requests) << label;
  EXPECT_EQ(a.new_accepted, b.new_accepted) << label;
  EXPECT_EQ(a.new_blocked, b.new_blocked) << label;
  EXPECT_EQ(a.handoff_requests, b.handoff_requests) << label;
  EXPECT_EQ(a.handoff_accepted, b.handoff_accepted) << label;
  EXPECT_EQ(a.handoff_dropped, b.handoff_dropped) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.class_requests, b.class_requests) << label;
  EXPECT_EQ(a.class_accepted, b.class_accepted) << label;
  // Exact double equality: the busy integral accumulates every occupancy
  // change in commit order, so one reordered event would surface here.
  EXPECT_EQ(a.busy_bu_seconds, b.busy_bu_seconds) << label;
  EXPECT_EQ(a.observed_span_s, b.observed_span_s) << label;
  EXPECT_EQ(a.total_capacity_bu, b.total_capacity_bu) << label;
  EXPECT_EQ(a.engine_events, b.engine_events) << label;
  EXPECT_EQ(a.truncated_rationales, b.truncated_rationales) << label;
}

TEST(ShardedEngine, BitIdenticalAcrossShardCountsFacs) {
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("facs").run();
  ASSERT_GT(serial.handoff_requests, 0);  // the scenario must exercise shards
  ASSERT_GT(serial.engine_events, 0u);
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("facs").run();
    expectBitIdentical(serial, m, "facs shards=" + std::to_string(shards));
  }
}

TEST(ShardedEngine, BitIdenticalAcrossShardCountsScc) {
  // SCC is the hardest case: controller state spans cells (the shadow
  // accumulators), so any commit reordering would change decisions.
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("scc").run();
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("scc").run();
    expectBitIdentical(serial, m, "scc shards=" + std::to_string(shards));
  }
}

TEST(ShardedEngine, RepeatedShardedRunsAreSeedStable) {
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 4;
  const Metrics a = SimulationBuilder{cfg}.policy("facs").run();
  const Metrics b = SimulationBuilder{cfg}.policy("facs").run();
  expectBitIdentical(a, b, "two shards=4 runs");
}

TEST(ShardedEngine, MoreShardsThanCellsStillIdentical) {
  // Extra shards own no cells but still take part in per-call preparation.
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("guard:8").run();
  cfg.shards = 16;  // 7 cells only
  const Metrics wide = SimulationBuilder{cfg}.policy("guard:8").run();
  expectBitIdentical(serial, wide, "shards=16 over 7 cells");
}

TEST(ShardedEngine, SingleCellRunsShardToo) {
  // Sharding a single-cell scenario parallelizes request preparation only;
  // results still must not move.
  SimulationConfig cfg;
  cfg.total_requests = 80;
  cfg.seed = 9;
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("facs").run();
  cfg.shards = 4;
  const Metrics sharded = SimulationBuilder{cfg}.policy("facs").run();
  expectBitIdentical(serial, sharded, "single cell shards=4");
}

// ---------------------------------------------------------------------------
// Precompute equivalence: hoisting the snapshot-only FLC1 stage into the
// parallel prepare/local phases (SimulationConfig::precompute_cv) must not
// move a single bit of any metric — it is the same inference over the same
// snapshot, just executed off the serialized commit path.
// ---------------------------------------------------------------------------

TEST(PrecomputeEquivalence, BitIdenticalOnVsOffAcrossShardCounts) {
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 1;
  cfg.precompute_cv = false;
  const Metrics inline_flc1 = SimulationBuilder{cfg}.policy("facs").run();
  // The scenario must include handoffs: each one is a mobility update that
  // invalidates the CV prepared at request time, forcing the local phase
  // to re-run the prediction against the post-step snapshot.
  ASSERT_GT(inline_flc1.handoff_requests, 0);
  for (const int shards : {1, 2, 4}) {
    cfg.shards = shards;
    cfg.precompute_cv = true;
    const Metrics hoisted = SimulationBuilder{cfg}.policy("facs").run();
    expectBitIdentical(inline_flc1, hoisted,
                       "precompute on, shards=" + std::to_string(shards));
  }
}

TEST(PrecomputeEquivalence, MobilityInvalidatedCvRecomputesBeforeCommit) {
  // High speed + tiny cells: nearly every call crosses a boundary, so the
  // dominant decision flavour is a handoff whose snapshot (and therefore
  // whose CV) only exists after the mobility step that detected the
  // crossing. If the engine served the stale request-time CV instead of
  // re-running the prediction, these decisions would diverge from the
  // inline-FLC1 run and the comparison below would fail.
  SimulationConfig cfg = contestedConfig();
  cfg.cell_radius_km = 1.0;
  cfg.scenario.speed_min_kmh = 80.0;
  cfg.scenario.speed_max_kmh = 120.0;
  cfg.shards = 1;
  cfg.precompute_cv = false;
  const Metrics inline_flc1 = SimulationBuilder{cfg}.policy("facs").run();
  ASSERT_GT(inline_flc1.handoff_requests, inline_flc1.new_requests / 2);
  for (const int shards : {1, 4}) {
    cfg.shards = shards;
    cfg.precompute_cv = true;
    const Metrics hoisted = SimulationBuilder{cfg}.policy("facs").run();
    expectBitIdentical(inline_flc1, hoisted,
                       "handoff-heavy precompute, shards=" +
                           std::to_string(shards));
  }
}

TEST(PrecomputeEquivalence, PoliciesWithoutPrecomputeAreUnaffected) {
  // Policies that keep the default no-op precompute() (SCC here) must see
  // an invalid PredictedCv and decide exactly as before, toggle or not.
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 2;
  cfg.precompute_cv = true;
  const Metrics on = SimulationBuilder{cfg}.policy("scc").run();
  cfg.precompute_cv = false;
  const Metrics off = SimulationBuilder{cfg}.policy("scc").run();
  expectBitIdentical(on, off, "scc precompute on vs off");
}

TEST(PrecomputeEquivalence, BuilderAndConfigSurfaceTheToggle) {
  EXPECT_TRUE(SimulationConfig{}.precompute_cv);  // hoisting is the default
  const SimulationConfig cfg =
      SimulationBuilder::scenario("urban-walkers").precomputeCv(false).build();
  EXPECT_FALSE(cfg.precompute_cv);
}

TEST(ShardedEngine, PhaseProfileIsPopulated) {
  // The wall-clock phase profile feeds the serial-fraction benchmarks; it
  // is observational (not compared across runs) but must be present and
  // consistent: some time in every phase the run actually exercised.
  SimulationConfig cfg = contestedConfig();
  cfg.shards = 2;
  const Metrics m = SimulationBuilder{cfg}.policy("facs").run();
  EXPECT_GT(m.prepare_phase_s, 0.0);
  EXPECT_GT(m.local_phase_s, 0.0);
  EXPECT_GT(m.commit_phase_s, 0.0);
  EXPECT_GT(m.commitShare(), 0.0);
  EXPECT_LT(m.commitShare(), 1.0);
}

TEST(ShardedEngine, ShardCountIsValidated) {
  SimulationConfig cfg;
  cfg.total_requests = 1;
  cfg.shards = 0;
  EXPECT_THROW((void)SimulationBuilder{cfg}.policy("cs").run(),
               std::invalid_argument);
  cfg.shards = -3;
  EXPECT_THROW((void)SimulationBuilder{cfg}.policy("cs").run(),
               std::invalid_argument);
  cfg.shards = kMaxShards + 1;
  EXPECT_THROW((void)SimulationBuilder{cfg}.policy("cs").run(),
               std::invalid_argument);
  cfg.shards = 1;
  EXPECT_NO_THROW((void)SimulationBuilder{cfg}.policy("cs").run());
}

TEST(ShardedEngine, BuilderSurfacesShards) {
  const SimulationConfig cfg =
      SimulationBuilder::scenario("stadium-burst").shards(2).build();
  EXPECT_EQ(cfg.shards, 2);
  // Catalog defaults show through when not overridden.
  EXPECT_EQ(SimulationBuilder::scenario("stadium-burst").build().shards, 4);
  EXPECT_EQ(SimulationBuilder::scenario("paper-single-cell").build().shards, 1);
}

}  // namespace
}  // namespace facs::sim
