#include "sim/erlang.hpp"

#include <gtest/gtest.h>

#include "cac/baselines.hpp"
#include "sim/simulator.hpp"

namespace facs::sim {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic teletraffic table entries.
  EXPECT_NEAR(erlangB(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlangB(2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(erlangB(5, 3.0), 0.11005, 1e-4);
  EXPECT_NEAR(erlangB(10, 7.0), 0.07874, 1e-4);
  EXPECT_NEAR(erlangB(40, 30.0), 0.01441, 2e-4);
}

TEST(ErlangB, EdgeCases) {
  EXPECT_DOUBLE_EQ(erlangB(0, 5.0), 1.0);   // no servers: everything blocks
  EXPECT_DOUBLE_EQ(erlangB(10, 0.0), 0.0);  // no traffic: nothing blocks
  EXPECT_THROW((void)erlangB(-1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)erlangB(1, -1.0), std::invalid_argument);
}

TEST(ErlangB, MonotoneInServersAndLoad) {
  for (int c = 1; c < 30; ++c) {
    EXPECT_LT(erlangB(c + 1, 10.0), erlangB(c, 10.0));
  }
  for (double a = 1.0; a < 30.0; a += 1.0) {
    EXPECT_GT(erlangB(10, a + 1.0), erlangB(10, a));
  }
}

TEST(DimensionServers, InvertsErlangB) {
  const int c = dimensionServers(30.0, 0.02);
  EXPECT_LE(erlangB(c, 30.0), 0.02);
  EXPECT_GT(erlangB(c - 1, 30.0), 0.02);
  EXPECT_EQ(dimensionServers(0.0, 0.5), 0);
  EXPECT_THROW((void)dimensionServers(1.0, 1.0), std::invalid_argument);
}

TEST(ErlangC, KnownValuesAndValidation) {
  // M/M/c queueing probability exceeds the loss probability.
  EXPECT_GT(erlangC(10, 7.0), erlangB(10, 7.0));
  EXPECT_NEAR(erlangC(1, 0.5), 0.5, 1e-12);  // M/M/1: P(wait) = rho
  EXPECT_THROW((void)erlangC(5, 5.0), std::invalid_argument);
  EXPECT_THROW((void)erlangC(0, 0.5), std::invalid_argument);
}

/// Simulator validation: single-class Poisson traffic under Complete
/// Sharing is an M/M/c/c system, so the measured blocking must converge to
/// Erlang B. This pins the whole arrival/holding/ledger pipeline to theory.
TEST(SimulatorValidation, ConvergesToErlangB) {
  SimulationConfig cfg;
  cfg.capacity_bu = 10;       // c = 10 servers (1 BU calls)
  cfg.total_requests = 12000;
  cfg.arrivals = ArrivalProcess::Poisson;
  cfg.scenario.mix = cellular::TrafficMix{1.0, 0.0, 0.0};  // text only, 1 BU
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  cfg.seed = 77;

  // Offered load a = lambda * holding = 7 erlangs with holding 120 s.
  const double holding_s = cellular::profileFor(cellular::ServiceClass::Text)
                               .mean_holding_s;
  const double offered = 7.0;
  cfg.arrival_window_s =
      cfg.total_requests * holding_s / offered;  // sets lambda
  cfg.warmup_s = 10.0 * holding_s;               // skip the fill-up transient

  const Metrics m = runSimulation(cfg, [](const cellular::HexNetwork&) {
    return std::make_unique<cac::CompleteSharingController>();
  });

  const double theory = erlangB(10, offered);  // ~0.0787
  EXPECT_NEAR(m.blockingProbability(), theory, 0.015);
  // Carried load check: utilization = a (1 - B) / c.
  EXPECT_NEAR(m.meanUtilization(), offered * (1.0 - theory) / 10.0, 0.03);
}

}  // namespace
}  // namespace facs::sim
