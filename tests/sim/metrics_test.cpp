#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace facs::sim {
namespace {

using cellular::ServiceClass;

TEST(Metrics, EmptyRunIsNeutral) {
  const Metrics m;
  EXPECT_DOUBLE_EQ(m.percentAccepted(), 100.0);  // x=0 plots at the top
  EXPECT_DOUBLE_EQ(m.blockingProbability(), 0.0);
  EXPECT_DOUBLE_EQ(m.droppingProbability(), 0.0);
  EXPECT_DOUBLE_EQ(m.meanUtilization(), 0.0);
}

TEST(Metrics, PercentAccepted) {
  Metrics m;
  m.new_requests = 80;
  m.new_accepted = 60;
  m.new_blocked = 20;
  EXPECT_DOUBLE_EQ(m.percentAccepted(), 75.0);
  EXPECT_DOUBLE_EQ(m.blockingProbability(), 0.25);
}

TEST(Metrics, DroppingProbability) {
  Metrics m;
  m.handoff_requests = 10;
  m.handoff_accepted = 9;
  m.handoff_dropped = 1;
  EXPECT_DOUBLE_EQ(m.droppingProbability(), 0.1);
}

TEST(Metrics, MeanUtilization) {
  Metrics m;
  m.busy_bu_seconds = 20.0 * 100.0;  // 20 BU busy for 100 s
  m.observed_span_s = 100.0;
  m.total_capacity_bu = 40;
  EXPECT_DOUBLE_EQ(m.meanUtilization(), 0.5);
}

TEST(Metrics, PerClassAcceptance) {
  Metrics m;
  m.class_requests[static_cast<std::size_t>(ServiceClass::Video)] = 4;
  m.class_accepted[static_cast<std::size_t>(ServiceClass::Video)] = 1;
  EXPECT_DOUBLE_EQ(m.percentAcceptedForClass(ServiceClass::Video), 25.0);
  EXPECT_DOUBLE_EQ(m.percentAcceptedForClass(ServiceClass::Text), 100.0);
}

TEST(Metrics, SummaryMentionsKeyNumbers) {
  Metrics m;
  m.new_requests = 10;
  m.new_accepted = 7;
  const std::string s = m.summary();
  EXPECT_NE(s.find("7/10"), std::string::npos);
  EXPECT_NE(s.find("70"), std::string::npos);
}

TEST(Metrics, SummaryIncludesHandoffsOnlyWhenPresent) {
  Metrics m;
  EXPECT_EQ(m.summary().find("handoff"), std::string::npos);
  m.handoff_requests = 1;
  EXPECT_NE(m.summary().find("handoff"), std::string::npos);
}

}  // namespace
}  // namespace facs::sim
