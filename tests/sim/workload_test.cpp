#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mobility/gps.hpp"

namespace facs::sim {
namespace {

using cellular::Vec2;

TEST(DrawRequest, RespectsFixedSpeedAndDistance) {
  ScenarioParams s;
  s.speed_min_kmh = 30.0;
  s.speed_max_kmh = 30.0;
  s.distance_min_km = 7.0;
  s.distance_max_km = 7.0;
  Rng rng = makeRng(1);
  for (int i = 0; i < 100; ++i) {
    const RequestPlan plan = drawRequest(s, {0.0, 0.0}, 0, rng);
    EXPECT_DOUBLE_EQ(plan.initial.speed_kmh, 30.0);
    EXPECT_NEAR(plan.initial.position_km.norm(), 7.0, 1e-9);
    EXPECT_EQ(plan.target_cell, 0u);
  }
}

TEST(DrawRequest, RangesAreRespected) {
  ScenarioParams s;
  s.speed_min_kmh = 10.0;
  s.speed_max_kmh = 50.0;
  s.distance_min_km = 2.0;
  s.distance_max_km = 8.0;
  Rng rng = makeRng(2);
  for (int i = 0; i < 500; ++i) {
    const RequestPlan plan = drawRequest(s, {0.0, 0.0}, 0, rng);
    EXPECT_GE(plan.initial.speed_kmh, 10.0);
    EXPECT_LE(plan.initial.speed_kmh, 50.0);
    EXPECT_GE(plan.initial.position_km.norm(), 2.0 - 1e-9);
    EXPECT_LE(plan.initial.position_km.norm(), 8.0 + 1e-9);
  }
}

TEST(DrawRequest, RejectsInvertedRanges) {
  ScenarioParams s;
  s.speed_min_kmh = 50.0;
  s.speed_max_kmh = 10.0;
  Rng rng = makeRng(3);
  EXPECT_THROW((void)drawRequest(s, {0.0, 0.0}, 0, rng),
               std::invalid_argument);
}

TEST(DrawRequest, ExactAngleProducesThatDeviation) {
  ScenarioParams s;
  s.angle_mean_deg = 50.0;
  s.angle_sigma_deg = 0.0;
  Rng rng = makeRng(4);
  for (int i = 0; i < 50; ++i) {
    const RequestPlan plan = drawRequest(s, {0.0, 0.0}, 0, rng);
    const auto snap =
        mobility::snapshotFromTruth(plan.initial, {0.0, 0.0});
    EXPECT_NEAR(snap.angle_deg, 50.0, 1e-9);
  }
}

TEST(DrawRequest, AngleSpreadCentersOnMean) {
  ScenarioParams s;
  s.angle_mean_deg = 0.0;
  s.angle_sigma_deg = 20.0;
  Rng rng = makeRng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const RequestPlan plan = drawRequest(s, {0.0, 0.0}, 0, rng);
    const auto snap =
        mobility::snapshotFromTruth(plan.initial, {0.0, 0.0});
    sum += snap.angle_deg;
    sum_sq += snap.angle_deg * snap.angle_deg;
  }
  EXPECT_NEAR(sum / n, 0.0, 1.5);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 20.0, 1.5);
}

TEST(DrawRequest, ServiceMixFollowsScenario) {
  ScenarioParams s;
  s.mix = cellular::TrafficMix{0.0, 0.0, 1.0};
  Rng rng = makeRng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(drawRequest(s, {0.0, 0.0}, 0, rng).service,
              cellular::ServiceClass::Video);
  }
}

TEST(Presets, Fig7FixesSpeedOnly) {
  const ScenarioParams s = fig7Scenario(60.0);
  EXPECT_DOUBLE_EQ(s.speed_min_kmh, 60.0);
  EXPECT_DOUBLE_EQ(s.speed_max_kmh, 60.0);
  EXPECT_GT(s.tracking_window_s, 0.0);  // drift is the figure's mechanism
  EXPECT_DOUBLE_EQ(s.distance_min_km, 0.0);
  EXPECT_DOUBLE_EQ(s.distance_max_km, 10.0);
}

TEST(Presets, Fig8FixesAngleExactly) {
  const ScenarioParams s = fig8Scenario(50.0);
  EXPECT_DOUBLE_EQ(s.angle_mean_deg, 50.0);
  EXPECT_DOUBLE_EQ(s.angle_sigma_deg, 0.0);
  EXPECT_DOUBLE_EQ(s.tracking_window_s, 0.0);
  EXPECT_FALSE(s.gps_error_m.has_value());
  EXPECT_DOUBLE_EQ(s.speed_min_kmh, 0.0);
  EXPECT_DOUBLE_EQ(s.speed_max_kmh, 120.0);
}

TEST(Presets, Fig9FixesDistanceExactly) {
  const ScenarioParams s = fig9Scenario(3.0);
  EXPECT_DOUBLE_EQ(s.distance_min_km, 3.0);
  EXPECT_DOUBLE_EQ(s.distance_max_km, 3.0);
  EXPECT_DOUBLE_EQ(s.tracking_window_s, 0.0);
}

TEST(Presets, Fig10IsTheMixedDefault) {
  const ScenarioParams s = fig10Scenario();
  EXPECT_DOUBLE_EQ(s.speed_min_kmh, 0.0);
  EXPECT_DOUBLE_EQ(s.speed_max_kmh, 120.0);
  EXPECT_DOUBLE_EQ(s.mix.fraction(cellular::ServiceClass::Text), 0.60);
}

TEST(DrawRequest, DeterministicForSameSeed) {
  const ScenarioParams s = fig10Scenario();
  Rng a = makeRng(9);
  Rng b = makeRng(9);
  for (int i = 0; i < 20; ++i) {
    const RequestPlan pa = drawRequest(s, {0.0, 0.0}, 0, a);
    const RequestPlan pb = drawRequest(s, {0.0, 0.0}, 0, b);
    EXPECT_EQ(pa.initial.position_km, pb.initial.position_km);
    EXPECT_DOUBLE_EQ(pa.initial.speed_kmh, pb.initial.speed_kmh);
    EXPECT_DOUBLE_EQ(pa.initial.heading_deg, pb.initial.heading_deg);
    EXPECT_EQ(pa.service, pb.service);
  }
}

}  // namespace
}  // namespace facs::sim
