/// \file commit_groups_test.cpp
/// Contracts of the two-level commit scheme (commit groups + cross-group
/// handoff reservations):
///
///  * commit_groups = 1 is THE serialized commit phase: bit-identical at
///    any shard count (and, via the untouched sharding suite, to the
///    pre-grouped engine), with zero reservation traffic.
///  * commit_groups > 1 is deterministic: the same (config, seed, groups)
///    reproduces the same bits on every run and at every shard count —
///    group lanes and the reservation barrier may only move work, never
///    change an outcome for a fixed grouping.
///  * Cross-group handoffs flow through reservations, and contended claims
///    (several groups after the last bandwidth units of one cell) resolve
///    deterministically in canonical (time, call) order.
///  * Policies with a Global commit scope degrade to one lane; GroupLocal
///    policies (SCC with a bounded reach) keep the full lane count, defer
///    cross-group writes through the barrier drain, and stay bit-identical
///    across shard counts — including under epoch re-partitioning, where
///    their per-group stores re-key deterministically.
///  * The load-aware (weighted) partition is deterministic too — seed-
///    stable and shard-invariant at every group count — and on a skewed
///    hotspot its per-lane committed-event split is measurably flatter
///    than the contiguous-by-id mapping's.
///  * Epoch re-partitioning follows a migrating hotspot without changing
///    any outcome invariant: the books still balance, and the run is a
///    pure function of (config, seed).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "cellular/network.hpp"
#include "serve/mutation.hpp"
#include "sim/reservation.hpp"
#include "sim/scenario_catalog.hpp"
#include "sim/simulator.hpp"

namespace facs::sim {
namespace {

/// The sharding suite's contested scenario: GPS-tracked decisions,
/// accepted and dropped handoffs, coverage exits, warmup — now also a
/// dense border traffic source for the group lanes.
SimulationConfig contestedConfig() {
  SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 2.0;
  cfg.total_requests = 120;
  cfg.arrival_window_s = 400.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.warmup_s = 50.0;
  cfg.seed = 20240731;
  cfg.scenario.speed_min_kmh = 30.0;
  cfg.scenario.speed_max_kmh = 110.0;
  cfg.scenario.distance_max_km = 2.0;
  cfg.scenario.tracking_window_s = 10.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  cfg.scenario.gps_error_m = 10.0;
  return cfg;
}

void expectBitIdentical(const Metrics& a, const Metrics& b,
                        const std::string& label) {
  EXPECT_EQ(a.new_requests, b.new_requests) << label;
  EXPECT_EQ(a.new_accepted, b.new_accepted) << label;
  EXPECT_EQ(a.new_blocked, b.new_blocked) << label;
  EXPECT_EQ(a.handoff_requests, b.handoff_requests) << label;
  EXPECT_EQ(a.handoff_accepted, b.handoff_accepted) << label;
  EXPECT_EQ(a.handoff_dropped, b.handoff_dropped) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.class_requests, b.class_requests) << label;
  EXPECT_EQ(a.class_accepted, b.class_accepted) << label;
  EXPECT_EQ(a.busy_bu_seconds, b.busy_bu_seconds) << label;
  EXPECT_EQ(a.observed_span_s, b.observed_span_s) << label;
  EXPECT_EQ(a.engine_events, b.engine_events) << label;
  EXPECT_EQ(a.commit_groups, b.commit_groups) << label;
  EXPECT_EQ(a.reservations_posted, b.reservations_posted) << label;
  EXPECT_EQ(a.reservations_admitted, b.reservations_admitted) << label;
  EXPECT_EQ(a.reservations_dropped, b.reservations_dropped) << label;
  // The per-lane event split, the repartition counts and the GroupLocal
  // barrier traffic are part of the deterministic surface: identical bits
  // at every shard count.
  EXPECT_EQ(a.lane_events, b.lane_events) << label;
  EXPECT_EQ(a.repartitions, b.repartitions) << label;
  EXPECT_EQ(a.repartitions_skipped, b.repartitions_skipped) << label;
  EXPECT_EQ(a.demand_deltas, b.demand_deltas) << label;
  EXPECT_EQ(a.shadow_migrations, b.shadow_migrations) << label;
}

/// max/mean over the per-lane committed-event counts — 1.0 is a perfectly
/// flat split.
double eventImbalance(const Metrics& m) {
  if (m.lane_events.empty()) return 1.0;
  const std::uint64_t total = std::accumulate(
      m.lane_events.begin(), m.lane_events.end(), std::uint64_t{0});
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(m.lane_events.size());
  const std::uint64_t top =
      *std::max_element(m.lane_events.begin(), m.lane_events.end());
  return static_cast<double>(top) / mean;
}

/// The contested disk with one 12x heavy-traffic hotspot cell and a 2x
/// ring — the skew the load-aware partition exists for.
SimulationConfig hotspotConfig() {
  SimulationConfig cfg = contestedConfig();
  cfg.total_requests = 600;
  cfg.warmup_s = 0.0;
  for (cellular::CellId c = 0; c < 7; ++c) {
    CellOverride o;
    o.cell = c;
    o.arrival_scale = (c == 0) ? 12.0 : 2.0;
    if (c == 0) o.mix = cellular::TrafficMix{0.2, 0.3, 0.5};
    cfg.cell_overrides.push_back(o);
  }
  return cfg;
}

TEST(CommitGroups, GroupsOneIsBitIdenticalAcrossShardCounts) {
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 1;
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_EQ(serial.commit_groups, 1);
  EXPECT_EQ(serial.reservations_posted, 0u);
  for (const int shards : {4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
    expectBitIdentical(serial, m,
                       "groups=1 shards=" + std::to_string(shards));
  }
  // Not setting commit_groups at all IS groups=1 — the default engine.
  SimulationConfig untouched = contestedConfig();
  untouched.shards = 4;
  const Metrics d = SimulationBuilder{untouched}.policy("guard:8").run();
  expectBitIdentical(serial, d, "default config vs explicit groups=1");
}

TEST(CommitGroups, GroupedRunsAreShardInvariantAndSeedStable) {
  for (const char* policy : {"guard:8", "facs"}) {
    for (const int groups : {2, 4}) {
      SimulationConfig cfg = contestedConfig();
      cfg.commit_groups = groups;
      cfg.shards = 1;
      const Metrics first = SimulationBuilder{cfg}.policy(policy).run();
      EXPECT_EQ(first.commit_groups, groups) << policy;
      for (const int shards : {2, 4}) {
        cfg.shards = shards;
        const Metrics m = SimulationBuilder{cfg}.policy(policy).run();
        expectBitIdentical(first, m,
                           std::string{policy} + " groups=" +
                               std::to_string(groups) + " shards=" +
                               std::to_string(shards));
      }
      // Seed stability: a second identical run reproduces the bits.
      cfg.shards = 1;
      const Metrics again = SimulationBuilder{cfg}.policy(policy).run();
      expectBitIdentical(first, again,
                         std::string{policy} + " repeated groups=" +
                             std::to_string(groups));
    }
  }
}

TEST(CommitGroups, CrossGroupHandoffsFlowThroughReservations) {
  // One group per cell: every handoff crosses a group border, so the
  // entire handoff stream is reservation traffic — and the books must
  // balance: posted = admitted + dropped, and every counted handoff
  // request is either an in-lane commit (none here) or a reservation.
  SimulationConfig cfg = contestedConfig();
  cfg.warmup_s = 0.0;  // counters and reservation gates see everything
  cfg.commit_groups = 7;
  const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_EQ(m.commit_groups, 7);
  ASSERT_GT(m.handoff_requests, 0);
  EXPECT_GT(m.reservations_posted, 0u);
  EXPECT_EQ(m.reservations_posted,
            m.reservations_admitted + m.reservations_dropped);
  EXPECT_EQ(m.reservations_posted,
            static_cast<std::uint64_t>(m.handoff_requests));
  EXPECT_EQ(m.handoff_requests, m.handoff_accepted + m.handoff_dropped);
}

TEST(CommitGroups, ContendedLastUnitsResolveDeterministically) {
  // Starve the cells (two voice calls fill one) so reservation claims
  // regularly fight over the last units at the barrier. The winner must be
  // the same on every run and at every shard count — canonical (time,
  // call) drain order, not thread scheduling, decides.
  SimulationConfig cfg = contestedConfig();
  cfg.capacity_bu = 10;
  cfg.total_requests = 200;
  cfg.warmup_s = 0.0;
  cfg.commit_groups = 7;
  cfg.scenario.mix = cellular::TrafficMix{0.0, 1.0, 0.0};  // 5 BU voice
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("cs").run();
  ASSERT_GT(first.reservations_posted, 0u);
  ASSERT_GT(first.reservations_dropped, 0u)
      << "scenario too roomy to contend the last units";
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("cs").run();
    expectBitIdentical(first, m,
                       "contended shards=" + std::to_string(shards));
  }
  cfg.shards = 1;
  const Metrics again = SimulationBuilder{cfg}.policy("cs").run();
  expectBitIdentical(first, again, "contended repeat");
}

TEST(CommitGroups, GlobalScopePoliciesDegradeToOneLane) {
  // SCC at reach=0 writes accumulators across EVERY cell — no partition
  // confines it, CommitScope::Global — so a grouped config must serialize
  // (and report that it did), with results identical to an explicit
  // groups=1 run. (A bounded reach upgrades the scope to GroupLocal — the
  // GroupLocalScc tests below.)
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 4;
  const Metrics grouped = SimulationBuilder{cfg}.policy("scc").run();
  EXPECT_EQ(grouped.commit_groups, 1);
  EXPECT_EQ(grouped.reservations_posted, 0u);
  cfg.commit_groups = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("scc").run();
  expectBitIdentical(serial, grouped, "scc grouped vs serial");
}

// ------------------------------------------------ GroupLocal policy commits

TEST(GroupLocalScc, CommitsFromAllLanesAndStaysDeterministic) {
  // The tentpole contract: a bounded reach makes SCC GroupLocal, so the
  // engine keeps the full configured lane count (no degrade), cross-group
  // shadow rows flow through the deferred-delta drain (observable as
  // demand_deltas), and the run stays a pure function of (config, seed) —
  // bit-identical at every shard count and on repeats.
  for (const int groups : {2, 4}) {
    SimulationConfig cfg = contestedConfig();
    cfg.commit_groups = groups;
    cfg.shards = 1;
    const Metrics first = SimulationBuilder{cfg}.policy("scc:reach=2").run();
    EXPECT_EQ(first.commit_groups, groups);
    EXPECT_GT(first.demand_deltas, 0u)
        << "a reach-2 footprint on a 7-cell disk must cross group borders";
    for (const int shards : {2, 4}) {
      cfg.shards = shards;
      const Metrics m = SimulationBuilder{cfg}.policy("scc:reach=2").run();
      expectBitIdentical(first, m, "scc groups=" + std::to_string(groups) +
                                       " shards=" + std::to_string(shards));
    }
    cfg.shards = 1;
    const Metrics again = SimulationBuilder{cfg}.policy("scc:reach=2").run();
    expectBitIdentical(first, again,
                       "scc repeated groups=" + std::to_string(groups));
  }
}

TEST(GroupLocalScc, GroupsOneStaysOnTheLegacyPath) {
  // At one group the per-group stores never engage: no deferred deltas, no
  // migrations, no reservations — the exact single-map controller the
  // pre-grouped engine ran, bit-identical at every shard count.
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 1;
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("scc:reach=2").run();
  EXPECT_EQ(serial.commit_groups, 1);
  EXPECT_EQ(serial.reservations_posted, 0u);
  EXPECT_EQ(serial.demand_deltas, 0u);
  EXPECT_EQ(serial.shadow_migrations, 0u);
  cfg.shards = 4;
  const Metrics sharded = SimulationBuilder{cfg}.policy("scc:reach=2").run();
  expectBitIdentical(serial, sharded, "scc:reach=2 groups=1 shards=4");
}

TEST(GroupLocalScc, ContendedCrossGroupClaimsResolveDeterministically) {
  // Starved cells + one group per cell: every handoff is a cross-group
  // reservation and SCC's shadow traffic crosses borders constantly. The
  // contended outcomes must still be canonical — same bits on every run
  // and at every shard count.
  SimulationConfig cfg = contestedConfig();
  cfg.capacity_bu = 10;
  cfg.total_requests = 200;
  cfg.warmup_s = 0.0;
  cfg.commit_groups = 7;
  cfg.scenario.mix = cellular::TrafficMix{0.0, 1.0, 0.0};  // 5 BU voice
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("scc:reach=1").run();
  EXPECT_EQ(first.commit_groups, 7);
  ASSERT_GT(first.reservations_posted, 0u);
  ASSERT_GT(first.demand_deltas, 0u);
  EXPECT_EQ(first.reservations_posted,
            first.reservations_admitted + first.reservations_dropped);
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("scc:reach=1").run();
    expectBitIdentical(first, m,
                       "scc contended shards=" + std::to_string(shards));
  }
  cfg.shards = 1;
  const Metrics again = SimulationBuilder{cfg}.policy("scc:reach=1").run();
  expectBitIdentical(first, again, "scc contended repeat");
}

TEST(GroupLocalScc, SurvivesAMigratingHotspotRepartition) {
  // The hard composition: grouped SCC + weighted partition + epoch
  // re-partitioning + a hotspot that MOVES. Boundary moves re-key the
  // per-group shadow stores mid-run; the books must still balance, and
  // the whole run must stay bit-identical across shard counts and
  // repeats — shadows migrate deterministically or not at all.
  SimulationConfig cfg = hotspotConfig();
  cfg.commit_groups = 4;
  cfg.partition = PartitionStrategy::Weighted;
  cfg.repartition_every_s = 50.0;
  serve::ScenarioMutation cool;
  cool.at_s = 180.0;
  cool.op = serve::MutationOp::ArrivalScale;
  cool.cell = 0;
  cool.scale = 1.0;
  serve::ScenarioMutation heat;
  heat.at_s = 180.0;
  heat.op = serve::MutationOp::ArrivalScale;
  heat.cell = 4;
  heat.scale = 12.0;
  cfg.mutations.push_back(cool);
  cfg.mutations.push_back(heat);
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("scc:reach=2").run();
  EXPECT_EQ(first.commit_groups, 4);
  EXPECT_GT(first.repartitions, 0)
      << "a migrating hotspot must trigger at least one boundary re-draw";
  EXPECT_GT(first.demand_deltas, 0u);
  EXPECT_EQ(first.mutations_applied, 2);
  EXPECT_EQ(first.reservations_posted,
            first.reservations_admitted + first.reservations_dropped);
  EXPECT_EQ(first.handoff_requests,
            first.handoff_accepted + first.handoff_dropped);
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("scc:reach=2").run();
    expectBitIdentical(first, m,
                       "scc migrating shards=" + std::to_string(shards));
  }
  cfg.shards = 1;
  const Metrics again = SimulationBuilder{cfg}.policy("scc:reach=2").run();
  expectBitIdentical(first, again, "scc migrating repeat");
}

TEST(GroupLocalScc, RepartitionHysteresisSkipsLowGainEpochs) {
  // A STEADY hotspot: after the initial weighted draw the projected
  // improvement of later epochs is noise, so the hysteresis gate must
  // skip them (counted, deterministic) instead of churning the policy
  // stores through pointless re-keys.
  SimulationConfig cfg = hotspotConfig();
  cfg.commit_groups = 4;
  cfg.partition = PartitionStrategy::Weighted;
  cfg.repartition_every_s = 40.0;
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_GT(first.repartitions_skipped, 0)
      << "a steady hotspot must not clear the hysteresis bar every epoch";
  cfg.shards = 4;
  const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
  expectBitIdentical(first, m, "hysteresis shards=4");
}

// -------------------------------------------------- GroupLocal SIR commits

TEST(GroupLocalSir, CommitsFromAllLanesAndStaysDeterministic) {
  // The bounded-footprint SIR contract: `sir:radius=R` is GroupLocal, so
  // the engine keeps the full configured lane count (no Global degrade),
  // the barrier-refreshed utilization snapshot shows up as demand_deltas,
  // and the run is a pure function of (config, seed) — bit-identical at
  // every shard count and on repeats.
  for (const int groups : {2, 4}) {
    SimulationConfig cfg = contestedConfig();
    cfg.commit_groups = groups;
    cfg.shards = 1;
    const Metrics first =
        SimulationBuilder{cfg}.policy("sir:radius=1").run();
    EXPECT_EQ(first.commit_groups, groups);
    EXPECT_GT(first.demand_deltas, 0u)
        << "utilizations move every window: the snapshot refresh must "
           "report changed cells";
    for (const int shards : {2, 4}) {
      cfg.shards = shards;
      const Metrics m = SimulationBuilder{cfg}.policy("sir:radius=1").run();
      expectBitIdentical(first, m, "sir groups=" + std::to_string(groups) +
                                       " shards=" + std::to_string(shards));
    }
    cfg.shards = 1;
    const Metrics again = SimulationBuilder{cfg}.policy("sir:radius=1").run();
    expectBitIdentical(first, again,
                       "sir repeated groups=" + std::to_string(groups));
  }
}

TEST(GroupLocalSir, RadiusZeroStaysGlobalAndOnTheLegacyBits) {
  // The exact whole-network sum cannot be partition-confined: a grouped
  // config over plain `sir` must serialize to one lane with results (and
  // metrics) identical to an explicit groups=1 run — the pre-grouping
  // engine's bits, at any shard count.
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 4;
  const Metrics grouped = SimulationBuilder{cfg}.policy("sir").run();
  EXPECT_EQ(grouped.commit_groups, 1);
  EXPECT_EQ(grouped.reservations_posted, 0u);
  EXPECT_EQ(grouped.demand_deltas, 0u);
  cfg.commit_groups = 1;
  for (const int shards : {1, 4}) {
    cfg.shards = shards;
    const Metrics serial = SimulationBuilder{cfg}.policy("sir").run();
    expectBitIdentical(serial, grouped,
                       "sir radius=0 shards=" + std::to_string(shards));
  }
}

TEST(GroupLocalSir, GroupsOneReadsEverythingLive) {
  // At one group the snapshot never engages: decide() reads live ledgers
  // exactly like the Global path, with zero barrier traffic — and the run
  // is bit-identical at every shard count.
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 1;
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("sir:radius=1").run();
  EXPECT_EQ(serial.commit_groups, 1);
  EXPECT_EQ(serial.demand_deltas, 0u);
  EXPECT_EQ(serial.reservations_posted, 0u);
  cfg.shards = 4;
  const Metrics sharded = SimulationBuilder{cfg}.policy("sir:radius=1").run();
  expectBitIdentical(serial, sharded, "sir:radius=1 groups=1 shards=4");
}

TEST(GroupLocalSir, SurvivesAMigratingHotspotRepartition) {
  // Grouped SIR + weighted partition + epoch re-partitioning + a hotspot
  // that MOVES: boundary re-draws re-key the group map mid-run and re-prime
  // the utilization snapshot. The books must still balance and the whole
  // run must stay bit-identical across shard counts and repeats.
  SimulationConfig cfg = hotspotConfig();
  cfg.commit_groups = 4;
  cfg.partition = PartitionStrategy::Weighted;
  cfg.repartition_every_s = 50.0;
  serve::ScenarioMutation cool;
  cool.at_s = 180.0;
  cool.op = serve::MutationOp::ArrivalScale;
  cool.cell = 0;
  cool.scale = 1.0;
  serve::ScenarioMutation heat;
  heat.at_s = 180.0;
  heat.op = serve::MutationOp::ArrivalScale;
  heat.cell = 4;
  heat.scale = 12.0;
  cfg.mutations.push_back(cool);
  cfg.mutations.push_back(heat);
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("sir:radius=1").run();
  EXPECT_EQ(first.commit_groups, 4);
  EXPECT_GT(first.repartitions, 0)
      << "a migrating hotspot must trigger at least one boundary re-draw";
  EXPECT_GT(first.demand_deltas, 0u);
  EXPECT_EQ(first.mutations_applied, 2);
  EXPECT_EQ(first.reservations_posted,
            first.reservations_admitted + first.reservations_dropped);
  EXPECT_EQ(first.handoff_requests,
            first.handoff_accepted + first.handoff_dropped);
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("sir:radius=1").run();
    expectBitIdentical(first, m,
                       "sir migrating shards=" + std::to_string(shards));
  }
  cfg.shards = 1;
  const Metrics again = SimulationBuilder{cfg}.policy("sir:radius=1").run();
  expectBitIdentical(first, again, "sir migrating repeat");
}

TEST(CommitGroups, GroupCountClampsToCellCount) {
  // 7 cells, 64 requested lanes: the partition clamps, the run reports
  // the effective count, and the result is exactly the 7-lane run.
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 64;
  const Metrics wide = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_EQ(wide.commit_groups, 7);
  cfg.commit_groups = 7;
  const Metrics exact = SimulationBuilder{cfg}.policy("guard:8").run();
  expectBitIdentical(exact, wide, "groups=64 over 7 cells");
}

TEST(CommitGroups, ConfigValidatesAndBuilderSurfacesTheKnob) {
  SimulationConfig cfg;
  cfg.commit_groups = 0;
  EXPECT_THROW(validateConfig(cfg), std::invalid_argument);
  cfg.commit_groups = kMaxShards + 1;
  EXPECT_THROW(validateConfig(cfg), std::invalid_argument);
  const SimulationConfig built = SimulationBuilder{}.commitGroups(6).build();
  EXPECT_EQ(built.commit_groups, 6);
}

TEST(CommitGroups, MetricsJsonCarriesTheGroupFields) {
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 7;
  cfg.warmup_s = 0.0;
  const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
  const std::string json = m.toJson();
  EXPECT_NE(json.find("\"commit_groups\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"reservations_posted\": "), std::string::npos);
  EXPECT_NE(json.find("\"reservations_admitted\": "), std::string::npos);
  EXPECT_NE(json.find("\"reservations_dropped\": "), std::string::npos);
}

// ------------------------------------------------- load-aware partitioning

TEST(WeightedPartition, SkewedWeightsShrinkTheHeavyGroup) {
  const cellular::HexNetwork net{1, 2.0};  // 7 cells
  // Cell 0 carries half the disk's weight: it must sit alone (or nearly)
  // in its group while the light cells pool together.
  const std::vector<double> weights{6.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const cellular::CellGroupPartition p{net, 4, weights};
  EXPECT_EQ(p.groups(), 4);
  std::vector<int> sizes(4, 0);
  for (cellular::CellId c = 0; c < 7; ++c) {
    ++sizes.at(static_cast<std::size_t>(p.groupOf(c)));
    if (c > 0) {
      // Contiguous ranges: group ids never decrease along the id axis.
      EXPECT_GE(p.groupOf(c), p.groupOf(c - 1)) << "cell " << c;
    }
  }
  for (int g = 0; g < 4; ++g) EXPECT_GT(sizes[g], 0) << "empty group " << g;
  EXPECT_EQ(p.groupOf(0), 0);
  EXPECT_EQ(sizes[0], 1) << "the heavy cell must not drag light cells "
                            "into its lane";
}

TEST(WeightedPartition, AllZeroWeightsDegradeToTheUniformSplit) {
  const cellular::HexNetwork net{2, 2.0};  // 19 cells
  const std::vector<double> zeros(19, 0.0);
  const cellular::CellGroupPartition weighted{net, 4, zeros};
  const std::vector<double> ones(19, 1.0);
  const cellular::CellGroupPartition uniform{net, 4, ones};
  for (cellular::CellId c = 0; c < 19; ++c) {
    EXPECT_EQ(weighted.groupOf(c), uniform.groupOf(c)) << "cell " << c;
  }
}

TEST(WeightedPartition, RejectsMalformedWeights) {
  const cellular::HexNetwork net{1, 2.0};
  using cellular::CellGroupPartition;
  EXPECT_THROW((CellGroupPartition{net, 2, std::vector<double>(6, 1.0)}),
               std::invalid_argument);  // 6 weights for 7 cells
  std::vector<double> negative(7, 1.0);
  negative[3] = -0.5;
  EXPECT_THROW((CellGroupPartition{net, 2, negative}),
               std::invalid_argument);
  std::vector<double> infinite(7, 1.0);
  infinite[0] = std::numeric_limits<double>::infinity();
  EXPECT_THROW((CellGroupPartition{net, 2, infinite}),
               std::invalid_argument);
}

TEST(WeightedPartition, EngineRunsAreShardInvariantAndSeedStable) {
  // The weighted strategy (with epoch re-partitioning on) must satisfy
  // the same determinism contract as contiguous: a pure function of
  // (config, seed), at every shard count.
  SimulationConfig cfg = hotspotConfig();
  cfg.commit_groups = 4;
  cfg.partition = PartitionStrategy::Weighted;
  cfg.repartition_every_s = 60.0;
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_EQ(first.commit_groups, 4);
  ASSERT_EQ(first.lane_events.size(), 4u);
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
    expectBitIdentical(first, m,
                       "weighted shards=" + std::to_string(shards));
  }
  cfg.shards = 1;
  const Metrics again = SimulationBuilder{cfg}.policy("guard:8").run();
  expectBitIdentical(first, again, "weighted repeat");
}

TEST(WeightedPartition, FlattensTheHotspotLaneSplit) {
  // The acceptance check in miniature: on the skewed disk at 4 lanes the
  // weighted partition's committed-event imbalance must sit well under
  // the contiguous mapping's (measured ~1.1 vs ~1.9; the margin asserted
  // here is loose enough to survive arrival-sequence jitter).
  SimulationConfig cfg = hotspotConfig();
  cfg.commit_groups = 4;
  cfg.partition = PartitionStrategy::Contiguous;
  const Metrics contiguous = SimulationBuilder{cfg}.policy("guard:8").run();
  cfg.partition = PartitionStrategy::Weighted;
  const Metrics weighted = SimulationBuilder{cfg}.policy("guard:8").run();
  ASSERT_EQ(contiguous.lane_events.size(), 4u);
  ASSERT_EQ(weighted.lane_events.size(), 4u);
  const double before = eventImbalance(contiguous);
  const double after = eventImbalance(weighted);
  EXPECT_GT(before, 1.3) << "hotspot too mild to demonstrate anything";
  EXPECT_LT(after, before * 0.85)
      << "weighted split (" << after << ") must beat contiguous ("
      << before << ") by a clear margin";
}

TEST(WeightedPartition, EpochRepartitioningFollowsAMigratingHotspot) {
  // The hotspot MOVES mid-run (cell 0's 12x scale drops to 1 while cell 4
  // ramps to 12x): the epoch re-partitioner must notice and re-draw the
  // boundaries at least once, and the run must stay a pure function of
  // (config, seed) — bit-identical across shard counts and repeats, with
  // the reservation books still balancing across the boundary moves.
  SimulationConfig cfg = hotspotConfig();
  cfg.commit_groups = 4;
  cfg.partition = PartitionStrategy::Weighted;
  cfg.repartition_every_s = 50.0;
  serve::ScenarioMutation cool;
  cool.at_s = 180.0;
  cool.op = serve::MutationOp::ArrivalScale;
  cool.cell = 0;
  cool.scale = 1.0;
  serve::ScenarioMutation heat;
  heat.at_s = 180.0;
  heat.op = serve::MutationOp::ArrivalScale;
  heat.cell = 4;
  heat.scale = 12.0;
  cfg.mutations.push_back(cool);
  cfg.mutations.push_back(heat);
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_GT(first.repartitions, 0)
      << "a migrating hotspot must trigger at least one boundary re-draw";
  EXPECT_EQ(first.mutations_applied, 2);
  // Conservation across re-partitions: every posted reservation is
  // settled exactly once, every handoff is accounted.
  EXPECT_EQ(first.reservations_posted,
            first.reservations_admitted + first.reservations_dropped);
  EXPECT_EQ(first.handoff_requests,
            first.handoff_accepted + first.handoff_dropped);
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
    expectBitIdentical(first, m,
                       "migrating shards=" + std::to_string(shards));
  }
  cfg.shards = 1;
  const Metrics again = SimulationBuilder{cfg}.policy("guard:8").run();
  expectBitIdentical(first, again, "migrating repeat");
}

TEST(WeightedPartition, LaneEventsCoverTheCommittedStream) {
  // lane_events splits the committed work by lane: one entry per group,
  // every entry positive on a loaded disk, and the array plus the
  // repartition count round-trips through the metrics JSON.
  SimulationConfig cfg = hotspotConfig();
  cfg.commit_groups = 4;
  cfg.partition = PartitionStrategy::Weighted;
  const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
  ASSERT_EQ(m.lane_events.size(), 4u);
  for (std::size_t g = 0; g < m.lane_events.size(); ++g) {
    EXPECT_GT(m.lane_events[g], 0u) << "idle lane " << g;
  }
  const std::string json = m.toJson();
  EXPECT_NE(json.find("\"lane_events\": ["), std::string::npos);
  EXPECT_NE(json.find("\"repartitions\": "), std::string::npos);
}

TEST(WeightedPartition, ConfigValidatesTheNewKnobs) {
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 4;
  cfg.repartition_every_s = -1.0;
  EXPECT_THROW(validateConfig(cfg), std::invalid_argument);
  cfg.repartition_every_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validateConfig(cfg), std::invalid_argument);
  // Re-partitioning is meaningless for contiguous boundaries — rejected,
  // not ignored.
  cfg.partition = PartitionStrategy::Contiguous;
  cfg.repartition_every_s = 60.0;
  EXPECT_THROW(validateConfig(cfg), std::invalid_argument);
  cfg.partition = PartitionStrategy::Weighted;
  EXPECT_NO_THROW(validateConfig(cfg));
  const SimulationConfig built = SimulationBuilder{}
                                     .commitGroups(4)
                                     .partition(PartitionStrategy::Weighted)
                                     .repartitionEvery(30.0)
                                     .build();
  EXPECT_EQ(built.partition, PartitionStrategy::Weighted);
  EXPECT_EQ(built.repartition_every_s, 30.0);
}

// ------------------------------------------------------------ reservations

TEST(ReservationMailbox, DrainsInCanonicalTimeThenCallOrder) {
  ReservationMailbox box;
  // Posted out of order, including an exact time tie — the paper's "two
  // BSs claim the last unit at once": the lower call id wins the earlier
  // slot, on every platform, at every shard count.
  box.post(Reservation{30.0, 9, 1, 2, 5, true});
  box.post(Reservation{10.0, 7, 3, 2, 5, true});
  box.post(Reservation{30.0, 2, 4, 2, 5, true});
  box.post(Reservation{20.0, 5, 5, 2, 5, true});
  ASSERT_EQ(box.size(), 4u);
  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained[0].call, 7);
  EXPECT_EQ(drained[1].call, 5);
  EXPECT_EQ(drained[2].call, 2);  // tie at t=30: call 2 before call 9
  EXPECT_EQ(drained[3].call, 9);
  EXPECT_TRUE(box.empty());
  EXPECT_TRUE(box.drain().empty());
}

TEST(ReservationMailbox, MergeCombineKeepsSortedOrderAndDrainsTheRight) {
  // The tree-combining primitive of the parallel drain: two sorted
  // per-lane vectors merge into the left in one pass, the right empties,
  // and repeated pairwise rounds reproduce the single global order.
  const auto less = [](int a, int b) { return a < b; };
  std::vector<int> left{1, 4, 9};
  std::vector<int> right{2, 4, 7};
  mergeCombine(left, right, less);
  EXPECT_EQ(left, (std::vector<int>{1, 2, 4, 4, 7, 9}));
  EXPECT_TRUE(right.empty());
  // Degenerate shapes: empty right is a no-op, empty left adopts right.
  std::vector<int> untouched{5};
  std::vector<int> empty;
  mergeCombine(untouched, empty, less);
  EXPECT_EQ(untouched, (std::vector<int>{5}));
  std::vector<int> adopter;
  std::vector<int> donor{3, 8};
  mergeCombine(adopter, donor, less);
  EXPECT_EQ(adopter, (std::vector<int>{3, 8}));
  EXPECT_TRUE(donor.empty());
}

}  // namespace
}  // namespace facs::sim
