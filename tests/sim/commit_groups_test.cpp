/// \file commit_groups_test.cpp
/// Contracts of the two-level commit scheme (commit groups + cross-group
/// handoff reservations):
///
///  * commit_groups = 1 is THE serialized commit phase: bit-identical at
///    any shard count (and, via the untouched sharding suite, to the
///    pre-grouped engine), with zero reservation traffic.
///  * commit_groups > 1 is deterministic: the same (config, seed, groups)
///    reproduces the same bits on every run and at every shard count —
///    group lanes and the reservation barrier may only move work, never
///    change an outcome for a fixed grouping.
///  * Cross-group handoffs flow through reservations, and contended claims
///    (several groups after the last bandwidth units of one cell) resolve
///    deterministically in canonical (time, call) order.
///  * Policies with a Global commit scope degrade to one lane.

#include <gtest/gtest.h>

#include <string>

#include "sim/reservation.hpp"
#include "sim/scenario_catalog.hpp"
#include "sim/simulator.hpp"

namespace facs::sim {
namespace {

/// The sharding suite's contested scenario: GPS-tracked decisions,
/// accepted and dropped handoffs, coverage exits, warmup — now also a
/// dense border traffic source for the group lanes.
SimulationConfig contestedConfig() {
  SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 2.0;
  cfg.total_requests = 120;
  cfg.arrival_window_s = 400.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.warmup_s = 50.0;
  cfg.seed = 20240731;
  cfg.scenario.speed_min_kmh = 30.0;
  cfg.scenario.speed_max_kmh = 110.0;
  cfg.scenario.distance_max_km = 2.0;
  cfg.scenario.tracking_window_s = 10.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  cfg.scenario.gps_error_m = 10.0;
  return cfg;
}

void expectBitIdentical(const Metrics& a, const Metrics& b,
                        const std::string& label) {
  EXPECT_EQ(a.new_requests, b.new_requests) << label;
  EXPECT_EQ(a.new_accepted, b.new_accepted) << label;
  EXPECT_EQ(a.new_blocked, b.new_blocked) << label;
  EXPECT_EQ(a.handoff_requests, b.handoff_requests) << label;
  EXPECT_EQ(a.handoff_accepted, b.handoff_accepted) << label;
  EXPECT_EQ(a.handoff_dropped, b.handoff_dropped) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.class_requests, b.class_requests) << label;
  EXPECT_EQ(a.class_accepted, b.class_accepted) << label;
  EXPECT_EQ(a.busy_bu_seconds, b.busy_bu_seconds) << label;
  EXPECT_EQ(a.observed_span_s, b.observed_span_s) << label;
  EXPECT_EQ(a.engine_events, b.engine_events) << label;
  EXPECT_EQ(a.commit_groups, b.commit_groups) << label;
  EXPECT_EQ(a.reservations_posted, b.reservations_posted) << label;
  EXPECT_EQ(a.reservations_admitted, b.reservations_admitted) << label;
  EXPECT_EQ(a.reservations_dropped, b.reservations_dropped) << label;
}

TEST(CommitGroups, GroupsOneIsBitIdenticalAcrossShardCounts) {
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 1;
  cfg.shards = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_EQ(serial.commit_groups, 1);
  EXPECT_EQ(serial.reservations_posted, 0u);
  for (const int shards : {4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
    expectBitIdentical(serial, m,
                       "groups=1 shards=" + std::to_string(shards));
  }
  // Not setting commit_groups at all IS groups=1 — the default engine.
  SimulationConfig untouched = contestedConfig();
  untouched.shards = 4;
  const Metrics d = SimulationBuilder{untouched}.policy("guard:8").run();
  expectBitIdentical(serial, d, "default config vs explicit groups=1");
}

TEST(CommitGroups, GroupedRunsAreShardInvariantAndSeedStable) {
  for (const char* policy : {"guard:8", "facs"}) {
    for (const int groups : {2, 4}) {
      SimulationConfig cfg = contestedConfig();
      cfg.commit_groups = groups;
      cfg.shards = 1;
      const Metrics first = SimulationBuilder{cfg}.policy(policy).run();
      EXPECT_EQ(first.commit_groups, groups) << policy;
      for (const int shards : {2, 4}) {
        cfg.shards = shards;
        const Metrics m = SimulationBuilder{cfg}.policy(policy).run();
        expectBitIdentical(first, m,
                           std::string{policy} + " groups=" +
                               std::to_string(groups) + " shards=" +
                               std::to_string(shards));
      }
      // Seed stability: a second identical run reproduces the bits.
      cfg.shards = 1;
      const Metrics again = SimulationBuilder{cfg}.policy(policy).run();
      expectBitIdentical(first, again,
                         std::string{policy} + " repeated groups=" +
                             std::to_string(groups));
    }
  }
}

TEST(CommitGroups, CrossGroupHandoffsFlowThroughReservations) {
  // One group per cell: every handoff crosses a group border, so the
  // entire handoff stream is reservation traffic — and the books must
  // balance: posted = admitted + dropped, and every counted handoff
  // request is either an in-lane commit (none here) or a reservation.
  SimulationConfig cfg = contestedConfig();
  cfg.warmup_s = 0.0;  // counters and reservation gates see everything
  cfg.commit_groups = 7;
  const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_EQ(m.commit_groups, 7);
  ASSERT_GT(m.handoff_requests, 0);
  EXPECT_GT(m.reservations_posted, 0u);
  EXPECT_EQ(m.reservations_posted,
            m.reservations_admitted + m.reservations_dropped);
  EXPECT_EQ(m.reservations_posted,
            static_cast<std::uint64_t>(m.handoff_requests));
  EXPECT_EQ(m.handoff_requests, m.handoff_accepted + m.handoff_dropped);
}

TEST(CommitGroups, ContendedLastUnitsResolveDeterministically) {
  // Starve the cells (two voice calls fill one) so reservation claims
  // regularly fight over the last units at the barrier. The winner must be
  // the same on every run and at every shard count — canonical (time,
  // call) drain order, not thread scheduling, decides.
  SimulationConfig cfg = contestedConfig();
  cfg.capacity_bu = 10;
  cfg.total_requests = 200;
  cfg.warmup_s = 0.0;
  cfg.commit_groups = 7;
  cfg.scenario.mix = cellular::TrafficMix{0.0, 1.0, 0.0};  // 5 BU voice
  cfg.shards = 1;
  const Metrics first = SimulationBuilder{cfg}.policy("cs").run();
  ASSERT_GT(first.reservations_posted, 0u);
  ASSERT_GT(first.reservations_dropped, 0u)
      << "scenario too roomy to contend the last units";
  for (const int shards : {2, 4}) {
    cfg.shards = shards;
    const Metrics m = SimulationBuilder{cfg}.policy("cs").run();
    expectBitIdentical(first, m,
                       "contended shards=" + std::to_string(shards));
  }
  cfg.shards = 1;
  const Metrics again = SimulationBuilder{cfg}.policy("cs").run();
  expectBitIdentical(first, again, "contended repeat");
}

TEST(CommitGroups, GlobalScopePoliciesDegradeToOneLane) {
  // SCC reads cluster-wide demand and writes accumulators across cells —
  // CommitScope::Global — so a grouped config must serialize (and report
  // that it did), with results identical to an explicit groups=1 run.
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 4;
  const Metrics grouped = SimulationBuilder{cfg}.policy("scc").run();
  EXPECT_EQ(grouped.commit_groups, 1);
  EXPECT_EQ(grouped.reservations_posted, 0u);
  cfg.commit_groups = 1;
  const Metrics serial = SimulationBuilder{cfg}.policy("scc").run();
  expectBitIdentical(serial, grouped, "scc grouped vs serial");
}

TEST(CommitGroups, GroupCountClampsToCellCount) {
  // 7 cells, 64 requested lanes: the partition clamps, the run reports
  // the effective count, and the result is exactly the 7-lane run.
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 64;
  const Metrics wide = SimulationBuilder{cfg}.policy("guard:8").run();
  EXPECT_EQ(wide.commit_groups, 7);
  cfg.commit_groups = 7;
  const Metrics exact = SimulationBuilder{cfg}.policy("guard:8").run();
  expectBitIdentical(exact, wide, "groups=64 over 7 cells");
}

TEST(CommitGroups, ConfigValidatesAndBuilderSurfacesTheKnob) {
  SimulationConfig cfg;
  cfg.commit_groups = 0;
  EXPECT_THROW(validateConfig(cfg), std::invalid_argument);
  cfg.commit_groups = kMaxShards + 1;
  EXPECT_THROW(validateConfig(cfg), std::invalid_argument);
  const SimulationConfig built = SimulationBuilder{}.commitGroups(6).build();
  EXPECT_EQ(built.commit_groups, 6);
}

TEST(CommitGroups, MetricsJsonCarriesTheGroupFields) {
  SimulationConfig cfg = contestedConfig();
  cfg.commit_groups = 7;
  cfg.warmup_s = 0.0;
  const Metrics m = SimulationBuilder{cfg}.policy("guard:8").run();
  const std::string json = m.toJson();
  EXPECT_NE(json.find("\"commit_groups\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"reservations_posted\": "), std::string::npos);
  EXPECT_NE(json.find("\"reservations_admitted\": "), std::string::npos);
  EXPECT_NE(json.find("\"reservations_dropped\": "), std::string::npos);
}

// ------------------------------------------------------------ reservations

TEST(ReservationMailbox, DrainsInCanonicalTimeThenCallOrder) {
  ReservationMailbox box;
  // Posted out of order, including an exact time tie — the paper's "two
  // BSs claim the last unit at once": the lower call id wins the earlier
  // slot, on every platform, at every shard count.
  box.post(Reservation{30.0, 9, 1, 2, 5, true});
  box.post(Reservation{10.0, 7, 3, 2, 5, true});
  box.post(Reservation{30.0, 2, 4, 2, 5, true});
  box.post(Reservation{20.0, 5, 5, 2, 5, true});
  ASSERT_EQ(box.size(), 4u);
  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained[0].call, 7);
  EXPECT_EQ(drained[1].call, 5);
  EXPECT_EQ(drained[2].call, 2);  // tie at t=30: call 2 before call 9
  EXPECT_EQ(drained[3].call, 9);
  EXPECT_TRUE(box.empty());
  EXPECT_TRUE(box.drain().empty());
}

}  // namespace
}  // namespace facs::sim
