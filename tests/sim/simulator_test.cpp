#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "cac/baselines.hpp"
#include "core/facs.hpp"
#include "scc/shadow_cluster.hpp"

namespace facs::sim {
namespace {

ControllerFactory completeSharing() {
  return [](const cellular::HexNetwork&) {
    return std::make_unique<cac::CompleteSharingController>();
  };
}

ControllerFactory facsFactory() {
  return [](const cellular::HexNetwork&) {
    return std::make_unique<core::FacsController>();
  };
}

/// Test policy that rejects everything.
class RejectAll final : public cellular::AdmissionController {
 public:
  [[nodiscard]] std::string name() const override { return "RejectAll"; }
  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest&, const cellular::AdmissionContext&) override {
    return {false, cellular::ReasonCode::NoCapacity, -1.0, "no"};
  }
};

/// Test policy that accepts blindly (the simulator must still protect the
/// ledger's capacity invariant).
class AcceptAll final : public cellular::AdmissionController {
 public:
  [[nodiscard]] std::string name() const override { return "AcceptAll"; }
  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest&, const cellular::AdmissionContext&) override {
    return {true, cellular::ReasonCode::Admitted, 1.0, "yes"};
  }
};

SimulationConfig lightConfig(int requests) {
  SimulationConfig cfg;
  cfg.total_requests = requests;
  cfg.seed = 7;
  cfg.scenario.tracking_window_s = 0.0;  // fast runs for structural tests
  cfg.scenario.gps_error_m.reset();
  return cfg;
}

TEST(Simulator, ValidatesConfig) {
  SimulationConfig bad = lightConfig(5);
  bad.total_requests = -1;
  EXPECT_THROW((void)runSimulation(bad, completeSharing()),
               std::invalid_argument);
  bad = lightConfig(5);
  bad.arrival_window_s = 0.0;
  EXPECT_THROW((void)runSimulation(bad, completeSharing()),
               std::invalid_argument);
  bad = lightConfig(5);
  bad.scenario.tracking_window_s = 10.0;
  bad.scenario.gps_fix_period_s = 0.0;
  EXPECT_THROW((void)runSimulation(bad, completeSharing()),
               std::invalid_argument);
  EXPECT_THROW(
      (void)runSimulation(lightConfig(1),
                          [](const cellular::HexNetwork&)
                              -> std::unique_ptr<cellular::AdmissionController> {
                            return nullptr;
                          }),
      std::invalid_argument);
}

TEST(Simulator, ZeroRequestsIsAnEmptyRun) {
  const Metrics m = runSimulation(lightConfig(0), completeSharing());
  EXPECT_EQ(m.new_requests, 0);
  EXPECT_DOUBLE_EQ(m.percentAccepted(), 100.0);
}

TEST(Simulator, CountsAreConsistent) {
  const Metrics m = runSimulation(lightConfig(60), completeSharing());
  EXPECT_EQ(m.new_requests, 60);
  EXPECT_EQ(m.new_requests, m.new_accepted + m.new_blocked);
  // Single cell without handoffs: every accepted call eventually completes.
  EXPECT_EQ(m.completed, m.new_accepted);
  EXPECT_EQ(m.handoff_requests, 0);
  int class_total = 0;
  for (const int c : m.class_requests) class_total += c;
  EXPECT_EQ(class_total, 60);
}

TEST(Simulator, RejectAllBlocksEverything) {
  SimulationConfig cfg = lightConfig(40);
  const Metrics m = runSimulation(cfg, [](const cellular::HexNetwork&) {
    return std::make_unique<RejectAll>();
  });
  EXPECT_EQ(m.new_accepted, 0);
  EXPECT_EQ(m.new_blocked, 40);
  EXPECT_DOUBLE_EQ(m.percentAccepted(), 0.0);
  EXPECT_DOUBLE_EQ(m.meanUtilization(), 0.0);
}

TEST(Simulator, AcceptAllCannotOverflowCapacity) {
  // Blind accepts at heavy load: the simulator's canFit() backstop must
  // keep the ledger legal, so the run completes without a logic_error.
  SimulationConfig cfg = lightConfig(200);
  cfg.arrival_window_s = 120.0;  // brutal arrival rate for a 40 BU cell
  const Metrics m = runSimulation(cfg, [](const cellular::HexNetwork&) {
    return std::make_unique<AcceptAll>();
  });
  EXPECT_EQ(m.new_requests, 200);
  EXPECT_GT(m.new_blocked, 0);  // physics said no, whatever the policy said
  EXPECT_LE(m.meanUtilization(), 1.0 + 1e-9);
}

TEST(Simulator, DeterministicForSameSeed) {
  const SimulationConfig cfg = lightConfig(50);
  const Metrics a = runSimulation(cfg, facsFactory());
  const Metrics b = runSimulation(cfg, facsFactory());
  EXPECT_EQ(a.new_accepted, b.new_accepted);
  EXPECT_EQ(a.new_blocked, b.new_blocked);
  EXPECT_DOUBLE_EQ(a.busy_bu_seconds, b.busy_bu_seconds);
}

TEST(Simulator, DifferentSeedsDiffer) {
  SimulationConfig a = lightConfig(50);
  SimulationConfig b = lightConfig(50);
  b.seed = 1234;
  const Metrics ma = runSimulation(a, facsFactory());
  const Metrics mb = runSimulation(b, facsFactory());
  // Not a strict guarantee, but with 50 stochastic arrivals the busy
  // integrals colliding would be a miracle.
  EXPECT_NE(ma.busy_bu_seconds, mb.busy_bu_seconds);
}

TEST(Simulator, LoadDegradesAcceptance) {
  SimulationConfig cfg = lightConfig(10);
  const Metrics light = runSimulation(cfg, completeSharing());
  cfg.total_requests = 150;
  const Metrics heavy = runSimulation(cfg, completeSharing());
  EXPECT_GT(light.percentAccepted(), heavy.percentAccepted());
  EXPECT_GT(heavy.meanUtilization(), light.meanUtilization());
}

TEST(Simulator, GpsTrackingPathRuns) {
  SimulationConfig cfg = lightConfig(30);
  cfg.scenario.tracking_window_s = 30.0;
  cfg.scenario.gps_fix_period_s = 5.0;
  cfg.scenario.gps_error_m = 10.0;
  const Metrics m = runSimulation(cfg, facsFactory());
  EXPECT_EQ(m.new_requests, 30);
  EXPECT_GT(m.new_accepted, 0);
}

TEST(Simulator, MultiCellHandoffsHappen) {
  SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 2.0;  // small cells so fast users cross borders
  cfg.total_requests = 80;
  cfg.arrival_window_s = 600.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.seed = 11;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  cfg.scenario.speed_min_kmh = 60.0;
  cfg.scenario.speed_max_kmh = 120.0;
  cfg.scenario.distance_max_km = 2.0;
  const Metrics m = runSimulation(cfg, completeSharing());
  EXPECT_GT(m.handoff_requests, 0);
  EXPECT_EQ(m.handoff_requests, m.handoff_accepted + m.handoff_dropped);
}

TEST(Simulator, SccRunsInMultiCellNetwork) {
  SimulationConfig cfg;
  cfg.rings = 1;
  cfg.total_requests = 60;
  cfg.seed = 3;
  cfg.scenario.tracking_window_s = 0.0;
  cfg.scenario.gps_error_m.reset();
  const Metrics m =
      runSimulation(cfg, [](const cellular::HexNetwork& net) {
        return std::make_unique<scc::ShadowClusterController>(net);
      });
  EXPECT_EQ(m.new_requests, 60);
  EXPECT_GT(m.new_accepted, 0);
}

TEST(Simulator, PoissonArrivalsRunAndDiffer) {
  SimulationConfig burst = lightConfig(80);
  SimulationConfig poisson = lightConfig(80);
  poisson.arrivals = ArrivalProcess::Poisson;
  const Metrics mb = runSimulation(burst, completeSharing());
  const Metrics mp = runSimulation(poisson, completeSharing());
  EXPECT_EQ(mp.new_requests, 80);
  EXPECT_EQ(mp.new_requests, mp.new_accepted + mp.new_blocked);
  // Different arrival processes produce different dynamics.
  EXPECT_NE(mb.busy_bu_seconds, mp.busy_bu_seconds);
}

TEST(Simulator, PoissonIsDeterministicPerSeed) {
  SimulationConfig cfg = lightConfig(60);
  cfg.arrivals = ArrivalProcess::Poisson;
  const Metrics a = runSimulation(cfg, completeSharing());
  const Metrics b = runSimulation(cfg, completeSharing());
  EXPECT_DOUBLE_EQ(a.busy_bu_seconds, b.busy_bu_seconds);
}

TEST(Simulator, WarmupExcludesEarlyRequests) {
  SimulationConfig cfg = lightConfig(100);
  cfg.arrival_window_s = 400.0;
  const Metrics all = runSimulation(cfg, completeSharing());
  cfg.warmup_s = 200.0;
  const Metrics tail = runSimulation(cfg, completeSharing());
  // Roughly half the arrivals land in the warm-up and are not counted.
  EXPECT_LT(tail.new_requests, all.new_requests);
  EXPECT_GT(tail.new_requests, 20);
  EXPECT_EQ(tail.new_requests, tail.new_accepted + tail.new_blocked);
  // The busy integral only covers the measured span.
  EXPECT_LT(tail.busy_bu_seconds, all.busy_bu_seconds);
  EXPECT_LE(tail.meanUtilization(), 1.0 + 1e-9);
}

TEST(Simulator, WarmupValidation) {
  SimulationConfig cfg = lightConfig(10);
  cfg.warmup_s = -1.0;
  EXPECT_THROW((void)runSimulation(cfg, completeSharing()),
               std::invalid_argument);
}

TEST(Simulator, UtilizationBoundedByCapacity) {
  SimulationConfig cfg = lightConfig(300);
  cfg.arrival_window_s = 300.0;
  const Metrics m = runSimulation(cfg, completeSharing());
  EXPECT_GE(m.meanUtilization(), 0.0);
  EXPECT_LE(m.meanUtilization(), 1.0 + 1e-9);
}

/// Test policy whose explain-mode rationale never fits ReasonText's inline
/// buffer, so every explained decision trips truncated().
class VerbosePolicy final : public cellular::AdmissionController {
 public:
  [[nodiscard]] std::string name() const override { return "Verbose"; }
  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest&, const cellular::AdmissionContext& ctx)
      override {
    cellular::AdmissionDecision d{true, cellular::ReasonCode::Admitted, 1.0,
                                  {}};
    if (ctx.explain) {
      d.rationale = std::string(cellular::ReasonText::kCapacity + 40, 'x');
    }
    return d;
  }
};

TEST(Simulator, TruncatedRationalesAreCountedOnlyWhenExplaining) {
  SimulationConfig cfg = lightConfig(25);
  const auto verbose = [](const cellular::HexNetwork&) {
    return std::make_unique<VerbosePolicy>();
  };
  const Metrics quiet = runSimulation(cfg, verbose);
  EXPECT_EQ(quiet.truncated_rationales, 0)
      << "explain off: no rationale, nothing to truncate";

  cfg.explain = true;
  const Metrics explained = runSimulation(cfg, verbose);
  EXPECT_EQ(explained.truncated_rationales, 25)
      << "every explained decision overflowed the inline buffer";
  // Surfacing the loss must not perturb the run itself.
  EXPECT_EQ(explained.new_accepted, quiet.new_accepted);
  EXPECT_EQ(explained.engine_events, quiet.engine_events);

  // The counter honours the warmup gate like every other metric: only
  // measured (counted) decisions report their truncation.
  cfg.warmup_s = 300.0;  // half the default 600 s arrival window
  const Metrics warmed = runSimulation(cfg, verbose);
  EXPECT_EQ(warmed.truncated_rationales, warmed.new_requests);
  EXPECT_LT(warmed.truncated_rationales, 25);
  EXPECT_GT(warmed.truncated_rationales, 0);
}

}  // namespace
}  // namespace facs::sim
