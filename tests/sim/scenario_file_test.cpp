#include "sim/scenario_file.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "cellular/policy_registry.hpp"
#include "sim/scenario_catalog.hpp"

namespace facs::sim {
namespace {

const cellular::PolicyRuntime& runtime() {
  return cellular::PolicyRuntime::defaultRuntime();
}

/// Deterministic-counter equality via the diffable JSON form (exactly what
/// the CI round-trip gate compares): every counter and every double, no
/// wall-clock noise.
void expectSameMetrics(const Metrics& a, const Metrics& b,
                       const std::string& label) {
  EXPECT_EQ(a.toJson(), b.toJson()) << label;
}

TEST(ScenarioFile, EveryBuiltinRoundTripsBitIdentically) {
  for (const std::string& name : ScenarioCatalog::builtins().names()) {
    const ScenarioSpec& original = ScenarioCatalog::builtins().at(name);
    const std::string text = writeScenarioFile(original);
    const ScenarioSpec parsed = parseScenarioFile(text, runtime(), name);

    // The golden property: file -> catalog -> file reproduces the text
    // byte for byte (write() is a canonical form)...
    EXPECT_EQ(writeScenarioFile(parsed), text) << name;
    EXPECT_EQ(parsed.name, original.name);
    EXPECT_EQ(parsed.summary, original.summary) << name;
    EXPECT_EQ(parsed.policy, original.policy) << name;

    // ...and the parsed config simulates bit-identically to the in-code
    // definition, serial and sharded.
    const ControllerFactory factory = runtime().makeFactory(parsed.policy);
    for (const int shards : {1, 3}) {
      SimulationConfig in_code = original.config;
      SimulationConfig from_file = parsed.config;
      in_code.shards = shards;
      from_file.shards = shards;
      expectSameMetrics(runSimulation(in_code, factory),
                        runSimulation(from_file, factory),
                        name + " @shards=" + std::to_string(shards));
    }
  }
}

TEST(ScenarioFile, MinimalFileKeepsPaperDefaults) {
  const ScenarioSpec spec =
      parseScenarioFile("[scenario]\nname = \"bare\"\n", runtime());
  EXPECT_EQ(spec.name, "bare");
  EXPECT_EQ(spec.policy, "facs");
  // The whole config is the paper default — canonical text proves it.
  ScenarioSpec defaults;
  defaults.name = "bare";
  EXPECT_EQ(writeScenarioFile(spec), writeScenarioFile(defaults));
}

TEST(ScenarioFile, CommentsQuotesAndSpacingAreTolerated) {
  const ScenarioSpec spec = parseScenarioFile(
      "# leading comment\n"
      "\n"
      "[scenario]\n"
      "  name   =   \"spaced # not a comment\"   # trailing comment\n"
      "summary = \"escaped \\\"quote\\\" and backslash \\\\\" # comment\n"
      "[run]\n"
      "requests = 7\n",
      runtime());
  EXPECT_EQ(spec.name, "spaced # not a comment");
  EXPECT_EQ(spec.summary, "escaped \"quote\" and backslash \\");
  EXPECT_EQ(spec.config.total_requests, 7);
}

TEST(ScenarioFile, ParsesEveryConfigField) {
  const ScenarioSpec spec = parseScenarioFile(
      "[scenario]\n"
      "name = \"full\"\n"
      "policy = \"guard:8\"\n"
      "[network]\n"
      "rings = 2\n"
      "cell_radius_km = 1.25\n"
      "capacity_bu = 60\n"
      "handoffs = true\n"
      "mobility_update_s = 2.5\n"
      "[cell 3]\n"
      "capacity_bu = 80\n"
      "[cell 11]\n"
      "capacity_bu = 20\n"
      "[run]\n"
      "requests = 321\n"
      "window_s = 123.5\n"
      "arrivals = \"poisson\"\n"
      "warmup_s = 60\n"
      "seed = 12345678901234567890\n"
      "shards = 5\n"
      "commit_groups = 4\n"
      "partition = \"weighted\"\n"
      "repartition_every_s = 45\n"
      "precompute = false\n"
      "explain = true\n"
      "[population]\n"
      "speed_kmh = [3, 9]\n"
      "angle_deg = [10, 20]\n"
      "distance_km = [0.5, 1.5]\n"
      "mix = [0.25, 0.25, 0.5]\n"
      "tracking_window_s = 12\n"
      "gps_fix_period_s = 3\n"
      "gps_error_m = none\n"
      "[turn]\n"
      "sigma_max_deg = 55\n"
      "v_ref_kmh = 21\n",
      runtime());
  const SimulationConfig& cfg = spec.config;
  EXPECT_EQ(spec.policy, "guard:8");
  EXPECT_EQ(cfg.rings, 2);
  EXPECT_DOUBLE_EQ(cfg.cell_radius_km, 1.25);
  EXPECT_EQ(cfg.capacity_bu, 60);
  EXPECT_TRUE(cfg.enable_handoffs);
  EXPECT_DOUBLE_EQ(cfg.mobility_update_s, 2.5);
  ASSERT_EQ(cfg.cell_overrides.size(), 2u);
  EXPECT_EQ(cfg.cell_overrides[0].cell, 3);
  EXPECT_EQ(cfg.cell_overrides[0].capacity_bu, 80);
  EXPECT_FALSE(cfg.cell_overrides[0].arrival_scale.has_value());
  EXPECT_FALSE(cfg.cell_overrides[0].mix.has_value());
  EXPECT_EQ(cfg.cell_overrides[1].cell, 11);
  EXPECT_EQ(cfg.cell_overrides[1].capacity_bu, 20);
  EXPECT_EQ(cfg.total_requests, 321);
  EXPECT_DOUBLE_EQ(cfg.arrival_window_s, 123.5);
  EXPECT_EQ(cfg.arrivals, ArrivalProcess::Poisson);
  EXPECT_DOUBLE_EQ(cfg.warmup_s, 60.0);
  EXPECT_EQ(cfg.seed, 12345678901234567890ull);
  EXPECT_EQ(cfg.shards, 5);
  EXPECT_EQ(cfg.commit_groups, 4);
  EXPECT_EQ(cfg.partition, PartitionStrategy::Weighted);
  EXPECT_DOUBLE_EQ(cfg.repartition_every_s, 45.0);
  EXPECT_FALSE(cfg.precompute_cv);
  EXPECT_TRUE(cfg.explain);
  EXPECT_DOUBLE_EQ(cfg.scenario.speed_min_kmh, 3.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.speed_max_kmh, 9.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.angle_mean_deg, 10.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.angle_sigma_deg, 20.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.distance_min_km, 0.5);
  EXPECT_DOUBLE_EQ(cfg.scenario.distance_max_km, 1.5);
  EXPECT_DOUBLE_EQ(
      cfg.scenario.mix.fraction(cellular::ServiceClass::Video), 0.5);
  EXPECT_DOUBLE_EQ(cfg.scenario.tracking_window_s, 12.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.gps_fix_period_s, 3.0);
  EXPECT_FALSE(cfg.scenario.gps_error_m.has_value());
  EXPECT_DOUBLE_EQ(cfg.scenario.turn.sigma_max_deg, 55.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.turn.v_ref_kmh, 21.0);

  // A full custom spec round-trips too, overrides included.
  EXPECT_EQ(writeScenarioFile(parseScenarioFile(writeScenarioFile(spec),
                                                runtime())),
            writeScenarioFile(spec));
}

TEST(ScenarioFile, CapacityOverridesShapeTheRun) {
  const ScenarioSpec starved = parseScenarioFile(
      "[scenario]\nname = \"starved\"\npolicy = \"cs\"\n"
      "[run]\nrequests = 60\n"
      "[population]\ntracking_window_s = 0\ngps_error_m = none\n"
      "[cell 0]\ncapacity_bu = 5\n",
      runtime());
  ScenarioSpec roomy = starved;
  roomy.config.cell_overrides.clear();
  const ControllerFactory cs = runtime().makeFactory("cs");
  const Metrics tight = runSimulation(starved.config, cs);
  const Metrics loose = runSimulation(roomy.config, cs);
  EXPECT_EQ(tight.total_capacity_bu, 5);
  EXPECT_EQ(loose.total_capacity_bu, 40);
  EXPECT_LT(tight.new_accepted, loose.new_accepted);
}

// ---------------------------------------------------------------- errors --

/// The parse must fail, the message must carry the source label and the
/// expected 1-based line, and the structured line() must agree.
void expectError(std::string_view text, int line,
                 std::string_view message_fragment) {
  try {
    (void)parseScenarioFile(text, runtime(), "bad.scn");
    FAIL() << "expected ScenarioFileError for: " << text;
  } catch (const ScenarioFileError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.scn"), std::string::npos) << what;
    if (line > 0) {
      EXPECT_NE(what.find(":" + std::to_string(line) + ":"),
                std::string::npos)
          << what;
    }
    EXPECT_NE(what.find(message_fragment), std::string::npos) << what;
  }
}

TEST(ScenarioFile, UnknownKeysAndSectionsAreErrors) {
  expectError("[scenario]\nname = \"x\"\nbogus = 1\n", 3, "unknown key");
  expectError("[scenario]\nname = \"x\"\n[warp]\n", 3, "unknown section");
  expectError("[scenario]\nname = \"x\"\n[network]\nrequests = 5\n", 4,
              "unknown key 'requests'");
}

TEST(ScenarioFile, BadPolicySpecNamesFileAndLine) {
  expectError("[scenario]\nname = \"x\"\npolicy = \"guard:8.5\"\n", 3,
              "policy 'guard'");
  expectError("[scenario]\nname = \"x\"\npolicy = \"warp-speed\"\n", 3,
              "unknown policy 'warp-speed'");
}

TEST(ScenarioFile, DuplicateCellIdIsAnError) {
  expectError(
      "[scenario]\nname = \"x\"\n[network]\nrings = 1\n"
      "[cell 2]\ncapacity_bu = 50\n[cell 2]\ncapacity_bu = 60\n",
      7, "duplicate cell id 2");
}

TEST(ScenarioFile, CellSectionProblems) {
  expectError("[scenario]\nname = \"x\"\n[cell]\ncapacity_bu = 5\n", 3,
              "needs an id");
  expectError("[scenario]\nname = \"x\"\n[cell 0]\n", 3,
              "sets no keys");
  expectError("[scenario]\nname = \"x\"\n[cell 0]\nrings = 1\n", 4,
              "unknown key 'rings'");
  // Out-of-disk ids are a whole-file (validate-time) error: the disk size
  // is only known once [network] rings is final.
  expectError("[scenario]\nname = \"x\"\n[cell 7]\ncapacity_bu = 5\n", 0,
              "outside the 1-cell disk");
}

TEST(ScenarioFile, MalformedValuesAreErrors) {
  expectError("[scenario]\nname = \"x\"\n[run]\nrequests = many\n", 4,
              "expects an integer");
  expectError("[scenario]\nname = \"x\"\n[run]\nrequests = 1.5\n", 4,
              "expects an integer");
  expectError("[scenario]\nname = \"x\"\n[run]\nseed = -1\n", 4,
              "non-negative");
  expectError("[scenario]\nname = \"x\"\n[network]\nhandoffs = yes\n", 4,
              "expects true or false");
  expectError("[scenario]\nname = \"x\"\n[run]\narrivals = \"burst\"\n", 4,
              "uniform");
  expectError("[scenario]\nname = \"x\"\nsummary = unquoted\n", 3,
              "quoted string");
  // Strict string scanning: no silent garbage from malformed quoting.
  expectError("[scenario]\nname = \"a\" \"b\"\n", 2,
              "after the closing quote");
  expectError("[scenario]\nname = \"oops\\\"\n", 2, "unterminated");
  expectError("[scenario]\nname = \"x\"\nsummary = \"tail\\\n", 3,
              "dangling escape");
  expectError("[scenario]\nname = \"x\"\n[population]\nspeed_kmh = [1]\n", 4,
              "exactly 2");
  expectError(
      "[scenario]\nname = \"x\"\n[population]\nmix = [0.5, 0.2, 0.1]\n", 4,
      "sum");
  expectError("[scenario]\nname = \"x\"\n[population]\nmix = [1, 0, 0,]\n",
              4, "trailing comma");
  // Non-finite numbers are rejected at the line, not deep inside the run.
  expectError("[scenario]\nname = \"x\"\n[run]\nwarmup_s = nan\n", 4,
              "finite");
  expectError("[scenario]\nname = \"x\"\n[run]\nwindow_s = inf\n", 4,
              "finite");
}

TEST(ScenarioFile, StructuralProblemsAreErrors) {
  expectError("name = \"x\"\n", 1, "before any [section]");
  expectError("[scenario\nname = \"x\"\n", 1, "unterminated section");
  expectError("[scenario]\nname = \"x\"\nname = \"y\"\n", 3,
              "duplicate key 'name'");
  expectError("[scenario]\nname = \"x\"\n[scenario]\n", 3,
              "duplicate section");
  expectError("[scenario]\nname = \"x\"\njust words\n", 3,
              "expected 'key = value'");
  expectError("[scenario]\nname = \"x\"\nsummary =\n", 3, "no value");
  expectError("[scenario]\nsummary = \"no name\"\n", 0, "missing [scenario]");
  expectError("[scenario]\nname = \"\"\n", 2, "must not be empty");
}

TEST(ScenarioFile, InvalidConfigsFailAtParseTime) {
  // validateConfig() vocabulary, attributed to the file as a whole.
  expectError("[scenario]\nname = \"x\"\n[run]\nrequests = -4\n", 0,
              "total_requests");
  expectError("[scenario]\nname = \"x\"\n[run]\nshards = 0\n", 0, "shards");
  // Geometry too — a bad network must not survive to HexNetwork's ctor.
  expectError("[scenario]\nname = \"x\"\n[network]\nrings = -1\n", 0,
              "rings");
  expectError("[scenario]\nname = \"x\"\n[network]\ncell_radius_km = -1\n",
              0, "cell radius");
  expectError("[scenario]\nname = \"x\"\n[network]\ncapacity_bu = 0\n", 0,
              "capacity");
  // Absurd ring counts are capped before any cell math can overflow.
  expectError("[scenario]\nname = \"x\"\n[network]\nrings = 2000000000\n", 0,
              "rings");
}

TEST(ScenarioFile, LineBreaksInStringsRoundTrip) {
  ScenarioSpec spec;
  spec.name = "multiline";
  spec.summary = "line1\nline2\r\nliteral \\n stays";
  const std::string text = writeScenarioFile(spec);
  const ScenarioSpec parsed = parseScenarioFile(text, runtime());
  EXPECT_EQ(parsed.summary, spec.summary);
  EXPECT_EQ(writeScenarioFile(parsed), text);

  // Even a line break in the NAME (legal in the string grammar) must not
  // leak out of the writer's header comment and break the fixed point.
  spec.name = "evil\nname";
  const std::string evil = writeScenarioFile(spec);
  const ScenarioSpec reparsed = parseScenarioFile(evil, runtime());
  EXPECT_EQ(reparsed.name, spec.name);
  EXPECT_EQ(writeScenarioFile(reparsed), evil);
}

TEST(ScenarioFile, LoadNamesThePathOnMissingFile) {
  try {
    (void)loadScenarioFile("/nonexistent/nowhere.scn", runtime());
    FAIL() << "expected ScenarioFileError";
  } catch (const ScenarioFileError& e) {
    EXPECT_NE(std::string{e.what()}.find("/nonexistent/nowhere.scn"),
              std::string::npos);
  }
}

TEST(ScenarioFile, ExternalPoliciesResolveThroughTheGivenRuntime) {
  // A file naming a registerExternal() policy parses against the extended
  // runtime and fails against the default one — the isolation the
  // instance-scoped design promises.
  cellular::PolicyRuntime extended;
  extended.registerExternal(
      {"plugin", "test stub", "plugin"},
      [](const cellular::PolicySpec&) -> ControllerFactory {
        return cellular::PolicyRuntime::defaultRuntime().makeFactory("cs");
      });
  const std::string text =
      "[scenario]\nname = \"plugged\"\npolicy = \"plugin\"\n";
  EXPECT_EQ(parseScenarioFile(text, extended).policy, "plugin");
  expectError(text, 3, "unknown policy 'plugin'");
}

TEST(ScenarioCatalogFiles, AddFileCataloguesAndRejectsDuplicates) {
  const std::string path = testing::TempDir() + "/catalogued.scn";
  {
    std::ofstream out{path};
    out << writeScenarioFile(ScenarioCatalog::builtins().at("highway"));
  }
  ScenarioCatalog catalog;
  EXPECT_THROW(catalog.addFile(path, runtime()), ScenarioError)
      << "duplicate of the built-in name must be rejected";

  ScenarioSpec renamed = ScenarioCatalog::builtins().at("highway");
  renamed.name = "highway-prime";
  {
    std::ofstream out{path};
    out << writeScenarioFile(renamed);
  }
  const ScenarioSpec& added = catalog.addFile(path, runtime());
  EXPECT_EQ(added.name, "highway-prime");
  EXPECT_TRUE(catalog.contains("highway-prime"));
  EXPECT_FALSE(ScenarioCatalog::builtins().contains("highway-prime"));

  // File-loaded entries drive the builder exactly like built-ins.
  const Metrics from_catalog =
      SimulationBuilder::scenario("highway-prime", catalog)
          .requests(25)
          .trackingWindow(0.0)
          .noGps()
          .run();
  EXPECT_EQ(from_catalog.new_requests, 25);
}

// ----------------------------------------------- per-cell traffic overrides

TEST(ScenarioFile, PerCellTrafficOverridesParseAndRoundTrip) {
  const ScenarioSpec spec = parseScenarioFile(
      "[scenario]\nname = \"hotspot\"\npolicy = \"cs\"\n"
      "[network]\nrings = 1\n"
      "[cell 0]\ncapacity_bu = 80\narrival_scale = 3\nmix = [0, 0.25, 0.75]\n"
      "[cell 2]\narrival_scale = 0.5\n"
      "[cell 5]\nmix = [1, 0, 0]\n",
      runtime());
  ASSERT_EQ(spec.config.cell_overrides.size(), 3u);
  const CellOverride& hot = spec.config.cell_overrides[0];
  EXPECT_EQ(hot.cell, 0);
  EXPECT_EQ(hot.capacity_bu, 80);
  EXPECT_EQ(hot.arrival_scale, 3.0);
  ASSERT_TRUE(hot.mix.has_value());
  EXPECT_DOUBLE_EQ(hot.mix->fraction(cellular::ServiceClass::Video), 0.75);
  EXPECT_FALSE(spec.config.cell_overrides[1].capacity_bu.has_value());
  EXPECT_EQ(spec.config.cell_overrides[1].arrival_scale, 0.5);
  EXPECT_FALSE(spec.config.cell_overrides[2].arrival_scale.has_value());
  ASSERT_TRUE(spec.config.cell_overrides[2].mix.has_value());

  // Canonical-form fixed point, partial overrides included.
  const std::string text = writeScenarioFile(spec);
  EXPECT_EQ(writeScenarioFile(parseScenarioFile(text, runtime())), text);
}

TEST(ScenarioFile, PerCellMixShapesTheTraffic) {
  // Single-cell network, [cell 0] all-video: every arrival must be video
  // even though the population-wide mix is the paper's 60/30/10.
  const ScenarioSpec spec = parseScenarioFile(
      "[scenario]\nname = \"video-cell\"\npolicy = \"cs\"\n"
      "[run]\nrequests = 40\n"
      "[population]\ntracking_window_s = 0\ngps_error_m = none\n"
      "[cell 0]\nmix = [0, 0, 1]\n",
      runtime());
  const Metrics m =
      runSimulation(spec.config, runtime().makeFactory("cs"));
  EXPECT_EQ(m.class_requests[static_cast<std::size_t>(
                cellular::ServiceClass::Video)],
            40);
  EXPECT_EQ(m.class_requests[static_cast<std::size_t>(
                cellular::ServiceClass::Text)],
            0);
}

TEST(ScenarioFile, ArrivalScaleConcentratesSpawns) {
  // 7 cells; cell 0 weighted 1000:1. With per-cell capacity starved to 5
  // BU in cell 0 and no mobility, nearly every request lands there, so
  // blocking must be far above the uniform-spawn run's.
  const std::string hot_text =
      "[scenario]\nname = \"hot\"\npolicy = \"cs\"\n"
      "[network]\nrings = 1\n"
      "[run]\nrequests = 80\n"
      "[population]\ntracking_window_s = 0\ngps_error_m = none\n"
      "distance_km = [0, 1]\n"
      "[cell 0]\ncapacity_bu = 5\narrival_scale = 1000\n";
  const ScenarioSpec hot = parseScenarioFile(hot_text, runtime());
  ScenarioSpec uniform = hot;
  uniform.config.cell_overrides[0].arrival_scale.reset();
  const ControllerFactory cs = runtime().makeFactory("cs");
  const Metrics concentrated = runSimulation(hot.config, cs);
  const Metrics spread = runSimulation(uniform.config, cs);
  EXPECT_GT(concentrated.new_blocked, spread.new_blocked);

  // A scale of exactly 1 keeps the legacy uniform draw: bit-identical to
  // an entry with no scale at all.
  ScenarioSpec unit = hot;
  unit.config.cell_overrides[0].arrival_scale = 1.0;
  expectSameMetrics(runSimulation(unit.config, cs), spread,
                    "arrival_scale=1 vs absent");
}

TEST(ScenarioFile, PerCellOverrideErrors) {
  expectError(
      "[scenario]\nname = \"x\"\n[cell 0]\narrival_scale = 0\n", 0,
      "arrival scale for cell 0 must be positive and finite");
  expectError(
      "[scenario]\nname = \"x\"\n[cell 0]\narrival_scale = nope\n", 4,
      "arrival_scale expects a finite number");
  expectError("[scenario]\nname = \"x\"\n[cell 0]\nmix = [1, 1]\n", 4,
              "expects exactly 3 values");
  expectError("[scenario]\nname = \"x\"\n[cell 0]\nmix = [0.5, 0.1, 0.1]\n",
              4, "sum to 1");
}

// ------------------------------------------------------------------ extends

TEST(ScenarioFile, ExtendsStartsFromACatalogBase) {
  // In-memory parse: bases resolve against the built-in catalog. The
  // derived file inherits everything it does not override.
  const ScenarioSpec base = ScenarioCatalog::builtins().at("highway");
  const ScenarioSpec derived = parseScenarioFile(
      "[scenario]\nextends = \"highway\"\nname = \"highway-packed\"\n"
      "[run]\nrequests = 400\n",
      runtime());
  EXPECT_EQ(derived.name, "highway-packed");
  EXPECT_EQ(derived.summary, base.summary);
  EXPECT_EQ(derived.policy, base.policy);
  EXPECT_EQ(derived.config.rings, base.config.rings);
  EXPECT_EQ(derived.config.total_requests, 400);
  EXPECT_EQ(derived.config.arrival_window_s, base.config.arrival_window_s);
  // Without a name of its own the derived file keeps the base's.
  EXPECT_EQ(parseScenarioFile("[scenario]\nextends = \"highway\"\n",
                              runtime())
                .name,
            "highway");
}

TEST(ScenarioFile, ExtendsMustComeFirstAndNameKnownBases) {
  expectError("[scenario]\nname = \"x\"\nextends = \"highway\"\n", 3,
              "extends must be the first key");
  expectError("[network]\nrings = 1\n[scenario]\nextends = \"highway\"\n", 4,
              "extends must be the first key");
  expectError("[scenario]\nextends = \"no-such-base\"\n", 2,
              "unknown scenario");
  // Path spellings are rejected up front: a base is a scenario name (they
  // would also dodge the string-equality cycle detector — "./self" never
  // string-equals the chain entry it loops back to).
  expectError("[scenario]\nextends = \"./self\"\n", 2,
              "expects a scenario name, not a path");
  expectError("[scenario]\nextends = \"sub/../highway\"\n", 2,
              "expects a scenario name, not a path");
  expectError("[scenario]\nextends = \"\"\n", 2,
              "expects a scenario name");
}

TEST(ScenarioFile, ExtendsResolvesSiblingFilesAndDetectsCycles) {
  const std::string dir = testing::TempDir();
  {
    std::ofstream out{dir + "/family-base.scn"};
    out << "[scenario]\nname = \"family-base\"\npolicy = \"guard:8\"\n"
           "[network]\nrings = 1\n"
           "[run]\nrequests = 30\n"
           "[cell 0]\ncapacity_bu = 10\n"
           "[population]\ntracking_window_s = 0\ngps_error_m = none\n";
  }
  {
    std::ofstream out{dir + "/family-variant.scn"};
    out << "[scenario]\nextends = \"family-base\"\nname = \"variant\"\n"
           "[run]\nrequests = 60\n"
           "[cell 0]\ncapacity_bu = 20\narrival_scale = 2\n";
  }
  const ScenarioSpec variant =
      loadScenarioFile(dir + "/family-variant.scn", runtime());
  EXPECT_EQ(variant.name, "variant");
  EXPECT_EQ(variant.policy, "guard:8");
  EXPECT_EQ(variant.config.rings, 1);
  EXPECT_EQ(variant.config.total_requests, 60);
  // The derived [cell 0] section replaced the base's entry wholesale.
  ASSERT_EQ(variant.config.cell_overrides.size(), 1u);
  EXPECT_EQ(variant.config.cell_overrides[0].capacity_bu, 20);
  EXPECT_EQ(variant.config.cell_overrides[0].arrival_scale, 2.0);

  // A sibling chain that loops back on itself must fail with the chain in
  // the message, anchored at the extending file and line.
  {
    std::ofstream out{dir + "/loop-a.scn"};
    out << "[scenario]\nextends = \"loop-b\"\nname = \"loop-a\"\n";
  }
  {
    std::ofstream out{dir + "/loop-b.scn"};
    out << "[scenario]\nextends = \"loop-a\"\nname = \"loop-b\"\n";
  }
  try {
    (void)loadScenarioFile(dir + "/loop-a.scn", runtime());
    FAIL() << "expected a cycle error";
  } catch (const ScenarioFileError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("extends cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("loop-b.scn:2"), std::string::npos)
        << "cycle should be reported at the extends key that closed it: "
        << what;
    EXPECT_NE(what.find("loop-a.scn"), std::string::npos) << what;
  }

  // Self-extension is the smallest cycle.
  {
    std::ofstream out{dir + "/loop-self.scn"};
    out << "[scenario]\nextends = \"loop-self\"\nname = \"self\"\n";
  }
  EXPECT_THROW((void)loadScenarioFile(dir + "/loop-self.scn", runtime()),
               ScenarioFileError);
}

TEST(ScenarioFile, ExtendedSpecsWriteFullyResolved) {
  // The canonical form of a derived scenario is self-contained: writing it
  // emits no extends key, and re-parsing reproduces it without needing the
  // base.
  const ScenarioSpec derived = parseScenarioFile(
      "[scenario]\nextends = \"highway\"\nname = \"resolved\"\n", runtime());
  const std::string text = writeScenarioFile(derived);
  EXPECT_EQ(text.find("extends"), std::string::npos);
  const ScenarioSpec reparsed = parseScenarioFile(text, runtime());
  EXPECT_EQ(writeScenarioFile(reparsed), text);
}

}  // namespace
}  // namespace facs::sim
