#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cac/baselines.hpp"

namespace facs::sim {
namespace {

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_GT(s.ci95(), 0.0);
}

TEST(RunningStat, SingleSampleHasZeroSpread) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

CurveSpec csCurve(const std::string& label) {
  CurveSpec c;
  c.label = label;
  c.base.scenario.tracking_window_s = 0.0;
  c.base.scenario.gps_error_m.reset();
  c.make_controller = [](const cellular::HexNetwork&) {
    return std::make_unique<cac::CompleteSharingController>();
  };
  return c;
}

TEST(Sweep, Validation) {
  SweepSpec spec;
  spec.xs = {};
  EXPECT_THROW((void)runSweep(spec, {csCurve("a")}), std::invalid_argument);
  spec.xs = {10};
  spec.replications = 0;
  EXPECT_THROW((void)runSweep(spec, {csCurve("a")}), std::invalid_argument);
}

TEST(Sweep, ShapesAndDeterminism) {
  SweepSpec spec;
  spec.title = "t";
  spec.xs = {5, 20, 60};
  spec.replications = 3;
  const SweepResult r1 = runSweep(spec, {csCurve("cs")});
  ASSERT_EQ(r1.curves.size(), 1u);
  ASSERT_EQ(r1.curves[0].points.size(), 3u);
  EXPECT_EQ(r1.curves[0].points[1].x, 20);
  EXPECT_EQ(r1.curves[0].points[0].replications, 3);

  const SweepResult r2 = runSweep(spec, {csCurve("cs")});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r1.curves[0].points[i].mean,
                     r2.curves[0].points[i].mean);
  }
}

TEST(Sweep, CommonRandomNumbersAcrossCurves) {
  // Identical policies under CRN must produce identical curves.
  SweepSpec spec;
  spec.xs = {15, 40};
  spec.replications = 2;
  const SweepResult r = runSweep(spec, {csCurve("a"), csCurve("b")});
  for (std::size_t i = 0; i < r.curves[0].points.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.curves[0].points[i].mean, r.curves[1].points[i].mean);
  }
}

TEST(Sweep, ParallelIsBitIdenticalToSerial) {
  // The parallel path must not perturb results: same tasks, same seeds,
  // same (serial, ordered) Welford accumulation.
  SweepSpec serial;
  serial.xs = {5, 20, 60};
  serial.replications = 4;
  serial.threads = 1;
  SweepSpec parallel = serial;
  parallel.threads = 4;

  const std::vector<CurveSpec> curves{csCurve("a"), csCurve("b")};
  const SweepResult r1 = runSweep(serial, curves);
  const SweepResult r2 = runSweep(parallel, curves);
  ASSERT_EQ(r1.curves.size(), r2.curves.size());
  for (std::size_t c = 0; c < r1.curves.size(); ++c) {
    ASSERT_EQ(r1.curves[c].points.size(), r2.curves[c].points.size());
    for (std::size_t i = 0; i < r1.curves[c].points.size(); ++i) {
      EXPECT_EQ(r1.curves[c].points[i].mean, r2.curves[c].points[i].mean);
      EXPECT_EQ(r1.curves[c].points[i].stddev, r2.curves[c].points[i].stddev);
      EXPECT_EQ(r1.curves[c].points[i].ci95, r2.curves[c].points[i].ci95);
    }
  }
}

TEST(Sweep, ParallelPropagatesWorkerExceptions) {
  SweepSpec spec;
  spec.xs = {5, 10, 15, 20};
  spec.replications = 4;
  spec.threads = 4;
  CurveSpec broken = csCurve("broken");
  broken.base.arrival_window_s = -1.0;  // rejected by validateConfig
  EXPECT_THROW((void)runSweep(spec, {broken}), std::invalid_argument);
}

TEST(Sweep, AcceptanceDeclinesWithLoad) {
  SweepSpec spec;
  spec.xs = {5, 120};
  spec.replications = 3;
  const SweepResult r = runSweep(spec, {csCurve("cs")});
  EXPECT_GT(r.curves[0].points[0].mean, r.curves[0].points[1].mean);
}

TEST(Sweep, OtherMeasuresExtract) {
  SweepSpec spec;
  spec.xs = {40};
  spec.replications = 2;
  const SweepResult blocking =
      runSweep(spec, {csCurve("cs")}, Measure::BlockingProbability);
  const SweepResult util =
      runSweep(spec, {csCurve("cs")}, Measure::MeanUtilization);
  EXPECT_GE(blocking.curves[0].points[0].mean, 0.0);
  EXPECT_LE(blocking.curves[0].points[0].mean, 1.0);
  EXPECT_GE(util.curves[0].points[0].mean, 0.0);
  EXPECT_LE(util.curves[0].points[0].mean, 1.0);
}

TEST(Rendering, TableContainsLabelsAndRows) {
  SweepSpec spec;
  spec.title = "Demo sweep";
  spec.xs = {5, 10};
  spec.replications = 2;
  const SweepResult r = runSweep(spec, {csCurve("policy-x")});
  std::ostringstream os;
  printTable(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo sweep"), std::string::npos);
  EXPECT_NE(out.find("policy-x"), std::string::npos);
  EXPECT_NE(out.find("+/-"), std::string::npos);
  EXPECT_NE(out.find('5'), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(Rendering, CsvHasHeaderAndOneRowPerX) {
  SweepSpec spec;
  spec.xs = {5, 10, 15};
  spec.replications = 2;
  const SweepResult r = runSweep(spec, {csCurve("cs")});
  std::ostringstream os;
  printCsv(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("cs_mean,cs_sd"), std::string::npos);
  int lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);  // header + 3 rows
}

TEST(Rendering, JsonCarriesAFullMetricsObjectPerRun) {
  SweepSpec spec;
  spec.title = "JSON sweep";
  spec.xs = {5, 10};
  spec.replications = 3;
  const SweepResult r = runSweep(spec, {csCurve("cs")});
  // Every point kept its replications' full metrics, in replication order.
  for (const CurveResult& curve : r.curves) {
    for (const PointResult& p : curve.points) {
      ASSERT_EQ(p.runs.size(), 3u);
    }
  }
  std::ostringstream os;
  printJson(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"title\": \"JSON sweep\""), std::string::npos);
  EXPECT_NE(out.find("\"label\": \"cs\""), std::string::npos);
  EXPECT_NE(out.find("\"x\": 5"), std::string::npos);
  EXPECT_NE(out.find("\"x\": 10"), std::string::npos);
  // 2 points x 3 replications = 6 embedded metrics objects.
  int runs = 0;
  for (std::size_t at = out.find("\"engine_events\"");
       at != std::string::npos; at = out.find("\"engine_events\"", at + 1)) {
    ++runs;
  }
  EXPECT_EQ(runs, 6);

  // Byte-diffable: an identical sweep renders the identical document (the
  // figure-level analogue of the single-run JSON gate).
  const SweepResult again = runSweep(spec, {csCurve("cs")});
  std::ostringstream os2;
  printJson(os2, again);
  EXPECT_EQ(out, os2.str());
}

}  // namespace
}  // namespace facs::sim
