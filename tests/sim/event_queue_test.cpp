#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace facs::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peekTime(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<std::string> q;
  q.push(3.0, "c");
  q.push(1.0, "a");
  q.push(2.0, "b");
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.peekTime(), std::optional<double>{1.0});
  EXPECT_EQ(q.pop()->payload, "a");
  EXPECT_EQ(q.pop()->payload, "b");
  EXPECT_EQ(q.pop()->payload, "c");
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(5.0, i);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop()->payload, i);
  }
}

TEST(EventQueue, NowAdvancesWithPops) {
  EventQueue<int> q;
  q.push(1.5, 1);
  q.push(4.0, 2);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue<int> q;
  q.push(5.0, 1);
  (void)q.pop();  // clock now 5.0
  EXPECT_THROW(q.push(4.9, 2), std::invalid_argument);
  EXPECT_NO_THROW(q.push(5.0, 3));  // same instant is fine
  EXPECT_THROW(q.push(std::numeric_limits<double>::quiet_NaN(), 4),
               std::invalid_argument);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue<int> q;
  std::mt19937_64 rng{7};
  std::uniform_real_distribution<double> dt{0.0, 10.0};
  double clock = 0.0;
  double last_seen = 0.0;
  int pushed = 0;
  int popped = 0;
  for (int round = 0; round < 2000; ++round) {
    if (q.empty() || (round % 3 != 0)) {
      q.push(clock + dt(rng), pushed++);
    } else {
      const auto e = q.pop();
      ASSERT_TRUE(e.has_value());
      EXPECT_GE(e->time_s, last_seen);
      last_seen = e->time_s;
      clock = e->time_s;
      ++popped;
    }
  }
  while (const auto e = q.pop()) {
    EXPECT_GE(e->time_s, last_seen);
    last_seen = e->time_s;
    ++popped;
  }
  EXPECT_EQ(pushed, popped);
}

TEST(EventQueue, EntryCarriesSequenceNumbers) {
  EventQueue<int> q;
  q.push(1.0, 10);
  q.push(1.0, 20);
  const auto a = q.pop();
  const auto b = q.pop();
  ASSERT_TRUE(a && b);
  EXPECT_LT(a->seq, b->seq);
}

}  // namespace
}  // namespace facs::sim
