#!/usr/bin/env python3
"""Hotspot lane-balance audit — the CI gate on the weighted partition.

    multi_cell_scaling --hotspot --partition both --groups 1,2,4 --json \
        | python3 tools/check_lane_balance.py [--max-weighted-imbalance R]
                                              [--min-improvement F]

Consumes multi_cell_scaling's --json output (which carries per-run
`lane_events` arrays and their max/mean `event_imbalance`) and enforces
two committed bounds on the skewed-hotspot scenario:

  * every weighted run with more than one group keeps its committed-event
    imbalance (max lane / mean lane) at or below --max-weighted-imbalance
    (default 1.45 — measured ~1.03-1.11 at 2-4 groups, so the bound has
    slack for arrival-sequence jitter across compilers but fails long
    before the partition degenerates toward contiguous's ~1.9);
  * at every group count > 1 present for BOTH partitions, weighted's
    event imbalance is at most --min-improvement of contiguous's
    (default 0.85: at least a 15% reduction — measured ~0.6).

Event imbalance (deterministic committed-event counts), not wall-time
imbalance, is gated: wall times wobble with CI-runner noise; the event
split is a pure function of (scenario, seed, partition).

Exits 0 with a per-run summary, 1 with the offending run on violation.
Stdlib only.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_lane_balance: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("report", nargs="?",
                        help="multi_cell_scaling --json output "
                             "(default stdin)")
    parser.add_argument("--max-weighted-imbalance", type=float, default=1.45,
                        help="ceiling on weighted max/mean lane events "
                             "(default 1.45)")
    parser.add_argument("--min-improvement", type=float, default=0.85,
                        help="weighted imbalance must be <= this fraction "
                             "of contiguous at the same groups (default "
                             "0.85)")
    args = parser.parse_args()

    source = open(args.report) if args.report else sys.stdin
    with source:
        report = json.load(source)
    runs = report.get("runs", [])
    if not runs:
        fail("no runs in the report")
    if not report.get("hotspot", False):
        fail("report was not generated with --hotspot (the audit gates the "
             "skewed scenario; a uniform load proves nothing)")
    # The gate runs per policy now that GroupLocal policies (grouped SCC)
    # commit from the full lane count too: name the policy in every line
    # so a violation in one policy's artifact reads unambiguously.
    policy = report.get("policy", "?")

    # event imbalance per (partition, groups); recomputed from lane_events
    # so the gate does not trust the bench's own ratio arithmetic.
    imbalance = {}
    for run in runs:
        lanes = run.get("lane_events")
        if not isinstance(lanes, list) or not lanes:
            fail(f"run {run} has no lane_events array")
        mean = sum(lanes) / len(lanes)
        ratio = (max(lanes) / mean) if mean > 0 else 1.0
        key = (run["partition"], run["commit_groups"])
        imbalance[key] = ratio
        print(f"check_lane_balance: policy={policy} "
              f"{run['partition']:>10} groups="
              f"{run['commit_groups']} shards={run['shards']} "
              f"imbalance={ratio:.4f} lane_events={lanes}")

    saw_weighted = False
    for (partition, groups), ratio in sorted(imbalance.items()):
        if partition != "weighted" or groups <= 1:
            continue
        saw_weighted = True
        if ratio > args.max_weighted_imbalance:
            fail(f"policy={policy} weighted groups={groups} imbalance "
                 f"{ratio:.4f} exceeds the committed bound "
                 f"{args.max_weighted_imbalance}")
        contiguous = imbalance.get(("contiguous", groups))
        if contiguous is not None and contiguous > 1.0:
            if ratio > contiguous * args.min_improvement:
                fail(f"policy={policy} weighted groups={groups} imbalance "
                     f"{ratio:.4f} is not <= {args.min_improvement} x "
                     f"contiguous ({contiguous:.4f}) — the load-aware "
                     f"partition stopped paying for itself")
    if not saw_weighted:
        fail("no weighted multi-group runs found (run with --partition "
             "both or weighted and --groups including a value > 1)")

    print("check_lane_balance: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
