/// \file bench_baseline.cpp
/// Regenerates the committed benchmark baselines the CI bench-diff job
/// guards: BENCH_streaming.json (the streaming service mode: an always-on
/// Poisson run with live mutations, measured end to end through the JSONL
/// emitter) and BENCH_scaling.json (batch engine throughput at 1 and 4
/// shards, with the bit-identity audit between them).
///
///   bench_baseline [OUTDIR]      # default: current directory
///
/// Each file is one flat JSON object. Key prefixes carry the comparison
/// contract bench_diff enforces:
///   det_*   deterministic outputs of the run — engine results, window
///           counts, pool high-water. Machine-independent; bench_diff
///           requires an EXACT match, so any drift is a correctness
///           regression, not noise.
///   perf_*  measured performance — throughput, wall time, peak RSS.
///           Machine-dependent; bench_diff allows a multiplicative band
///           of `tolerance` in the unfavourable direction (keys named
///           *_per_sec are higher-is-better, everything else lower).
/// `tolerance` is read from the BASELINE file, so loosening or tightening
/// the band is a reviewed change to the committed artifact.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <cmath>
#include <memory>

#include "cellular/network.hpp"
#include "cellular/policy_registry.hpp"
#include "cellular/radio.hpp"
#include "core/facs.hpp"
#include "core/flc2.hpp"
#include "serve/service.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace facs;

/// Peak resident set, MiB (ru_maxrss is KiB on Linux).
double maxRssMb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The streaming workload: a 7-cell network served always-on for 1800
/// simulated seconds with a mid-run flash crowd and an outage/restore
/// cycle, so the baseline pins down the mutation path too.
sim::SimulationConfig streamingConfig() {
  sim::SimulationConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_km = 1.5;
  cfg.capacity_bu = 40;
  cfg.total_requests = 300;  // with window_s: the Poisson rate, 0.5 calls/s
  cfg.arrival_window_s = 600.0;
  cfg.arrivals = sim::ArrivalProcess::Poisson;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.seed = 2024;
  cfg.scenario.speed_min_kmh = 10.0;
  cfg.scenario.speed_max_kmh = 60.0;
  cfg.scenario.distance_min_km = 0.0;
  cfg.scenario.distance_max_km = 1.5;
  cfg.scenario.tracking_window_s = 10.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  serve::ScenarioMutation ramp;
  ramp.at_s = 600.0;
  ramp.op = serve::MutationOp::ArrivalScale;
  ramp.scale = 2.0;
  cfg.mutations.push_back(ramp);
  serve::ScenarioMutation outage;
  outage.at_s = 900.0;
  outage.op = serve::MutationOp::Outage;
  outage.cell = 1;
  cfg.mutations.push_back(outage);
  serve::ScenarioMutation restore = outage;
  restore.at_s = 1200.0;
  restore.op = serve::MutationOp::Restore;
  cfg.mutations.push_back(restore);
  return cfg;
}

/// The scaling workload: multi_cell_scaling's dense-district shape, sized
/// for a quick CI run.
sim::SimulationConfig scalingConfig() {
  sim::SimulationConfig cfg;
  cfg.rings = 2;
  cfg.cell_radius_km = 1.5;
  cfg.capacity_bu = 40;
  cfg.total_requests = 1500;
  cfg.arrival_window_s = 1200.0;
  cfg.enable_handoffs = true;
  cfg.mobility_update_s = 5.0;
  cfg.seed = 2024;
  cfg.scenario.speed_min_kmh = 10.0;
  cfg.scenario.speed_max_kmh = 60.0;
  cfg.scenario.distance_min_km = 0.0;
  cfg.scenario.distance_max_km = 1.5;
  cfg.scenario.tracking_window_s = 30.0;
  cfg.scenario.gps_fix_period_s = 2.0;
  return cfg;
}

/// Flat-JSON writer: insertion order preserved, shortest round-trip
/// doubles so det_* values survive write→parse→compare exactly.
class FlatJson {
 public:
  void add(const std::string& key, double value) {
    entries_ += entries_.empty() ? "" : ",\n";
    entries_ += "  \"" + key + "\": " + sim::shortestNumber(value);
  }
  void add(const std::string& key, std::uint64_t value) {
    entries_ += entries_.empty() ? "" : ",\n";
    entries_ += "  \"" + key + "\": " + std::to_string(value);
  }
  void add(const std::string& key, int value) {
    add(key, static_cast<std::uint64_t>(value));
  }

  bool writeTo(const std::string& path) const {
    std::ofstream out{path};
    out << "{\n" << entries_ << "\n}\n";
    return static_cast<bool>(out);
  }

 private:
  std::string entries_;
};

sim::ControllerFactory policy() {
  // guard:8 keeps the serialized decide O(1), so both baselines measure
  // the engine, not the admission arithmetic (multi_cell_scaling's
  // rationale).
  return cellular::PolicyRuntime::defaultRuntime().makeFactory("guard:8");
}

int benchStreaming(const std::string& path) {
  const sim::SimulationConfig cfg = streamingConfig();
  serve::ServeOptions options;
  options.metrics_every_s = 60.0;
  options.duration_s = 1800.0;
  std::ostringstream stream;
  const auto t0 = std::chrono::steady_clock::now();
  const sim::Metrics metrics =
      serve::serveSimulation(cfg, policy(), options, stream);
  const double wall_s = secondsSince(t0);
  std::uint64_t windows = 0;
  for (const char c : stream.str()) windows += c == '\n';

  FlatJson json;
  json.add("tolerance", 3.0);
  json.add("det_windows", windows);
  json.add("det_new_requests", metrics.new_requests);
  json.add("det_new_accepted", metrics.new_accepted);
  json.add("det_handoff_requests", metrics.handoff_requests);
  json.add("det_handoff_dropped", metrics.handoff_dropped);
  json.add("det_completed", metrics.completed);
  json.add("det_engine_events", metrics.engine_events);
  json.add("det_outage_forced_drops", metrics.outage_forced_drops);
  json.add("det_mutations_applied", metrics.mutations_applied);
  json.add("det_pool_high_water", metrics.peak_concurrent_calls);
  json.add("perf_events_per_sec",
           static_cast<double>(metrics.engine_events) / wall_s);
  json.add("perf_wall_ms", wall_s * 1e3);
  json.add("perf_max_rss_mb", maxRssMb());
  if (!json.writeTo(path)) {
    std::cerr << "bench_baseline: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " (" << windows << " windows, "
            << metrics.engine_events << " events)\n";
  return 0;
}

int benchScaling(const std::string& path) {
  const sim::SimulationConfig base = scalingConfig();
  FlatJson json;
  json.add("tolerance", 3.0);
  sim::Metrics reference;
  bool first = true;
  for (const int shards : {1, 4}) {
    sim::SimulationConfig cfg = base;
    cfg.shards = shards;
    const auto t0 = std::chrono::steady_clock::now();
    const sim::Metrics metrics = sim::runSimulation(cfg, policy());
    const double wall_s = secondsSince(t0);
    if (first) {
      reference = metrics;
      first = false;
      json.add("det_new_requests", metrics.new_requests);
      json.add("det_new_accepted", metrics.new_accepted);
      json.add("det_handoff_dropped", metrics.handoff_dropped);
      json.add("det_engine_events", metrics.engine_events);
      json.add("det_busy_bu_seconds", metrics.busy_bu_seconds);
    } else if (metrics.toJson() != reference.toJson()) {
      // The scaling baseline doubles as the determinism audit: a shard
      // count that changes the bits is a bug, never a baseline.
      std::cerr << "bench_baseline: shards=" << shards
                << " diverged from the serial run\n";
      return 1;
    }
    json.add("perf_shards" + std::to_string(shards) + "_events_per_sec",
             static_cast<double>(metrics.engine_events) / wall_s);
  }
  json.add("perf_max_rss_mb", maxRssMb());
  if (!json.writeTo(path)) {
    std::cerr << "bench_baseline: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

int benchMicro(const std::string& path) {
  // The decide-path microbaseline: per-inference latency of FLC2 (the
  // engine every admission decision runs) and of the FACS batch kernel on
  // a commit-window-shaped span. The sweep walks (Cv, R, Cs) through the
  // same grid via the scalar and batch paths and audits the checksums
  // equal before writing — the det_ key pins the engine's arithmetic, the
  // audit pins the batch kernel's bit-identity to it.
  const fuzzy::MamdaniEngine flc2 = core::buildFlc2();

  std::vector<double> inputs;
  for (double cv : {0.05, 0.25, 0.45, 0.45, 0.65, 0.95}) {
    for (double r : {1.0, 5.0, 5.0, 10.0}) {
      for (double cs : {0.0, 8.5, 17.0, 17.0, 17.0, 29.5, 40.0}) {
        inputs.push_back(cv);
        inputs.push_back(r);
        inputs.push_back(cs);
      }
    }
  }
  const std::size_t entries = inputs.size() / 3;

  // Scalar path + checksum; repeated to a fixed work budget for a stable
  // per-inference time.
  constexpr int kScalarRounds = 40;
  double scalar_checksum = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kScalarRounds; ++round) {
    double sum = 0.0;
    for (std::size_t e = 0; e < entries; ++e) {
      const std::span<const double> in{inputs.data() + 3 * e, 3};
      sum += flc2.infer(in);
    }
    scalar_checksum = sum;  // identical every round
  }
  const double infer_ns = secondsSince(t0) * 1e9 /
                          static_cast<double>(entries * kScalarRounds);

  // Batch path through the FACS controller (the production route) on the
  // same grid, same order.
  const core::FacsController facs;
  std::vector<core::PendingDecision> batch(entries);
  for (std::size_t e = 0; e < entries; ++e) {
    batch[e].cv = inputs[3 * e];
    batch[e].demand_bu = inputs[3 * e + 1];
    batch[e].occupied_bu = inputs[3 * e + 2];
  }
  constexpr int kBatchRounds = 40;
  double batch_checksum = 0.0;
  const auto t1 = std::chrono::steady_clock::now();
  for (int round = 0; round < kBatchRounds; ++round) {
    facs.evaluateBatch(batch);
    double sum = 0.0;
    for (const core::PendingDecision& p : batch) sum += p.eval.ar;
    batch_checksum = sum;
  }
  const double batch_ns = secondsSince(t1) * 1e9 /
                          static_cast<double>(entries * kBatchRounds);

  if (batch_checksum != scalar_checksum) {
    std::cerr << "bench_baseline: batch kernel diverged from scalar FLC2 ("
              << sim::shortestNumber(batch_checksum) << " vs "
              << sim::shortestNumber(scalar_checksum) << ")\n";
    return 1;
  }

  // The SIR decide path on the 19-cell study network (rings=2, 1.5 km
  // cells), every station partially loaded. The det_ checksum walks the
  // gain-table sinrDb over a position x serving-cell grid and is audited
  // against the legacy log10+pow path-loss chain the tables replaced —
  // the factorization is a reformulation, so the two sums must agree to
  // numerical noise before the checksum may become a baseline.
  cellular::HexNetwork net{2, 1.5};
  {
    cellular::CallId call = 1;
    for (const cellular::Cell& c : net.cells()) {
      net.station(c.id).allocate(
          call++, 1 + static_cast<cellular::BandwidthUnits>(c.id * 7 % 29),
          true);
    }
  }
  const cellular::RadioModel radio{net};
  const cellular::RadioConfig& rc = radio.config();
  double sir_checksum = 0.0;
  double legacy_checksum = 0.0;
  for (const cellular::Cell& c : net.cells()) {
    for (const double fx : {0.15, -0.4, 0.65}) {
      for (const double fy : {0.3, -0.55}) {
        const cellular::Vec2 pos{c.center.x + fx, c.center.y + fy};
        sir_checksum += radio.sinrDb(pos, c.id);
        double i_mw = cellular::dbmToMw(rc.noise_floor_dbm);
        for (const cellular::Cell& o : net.cells()) {
          if (o.id == c.id) continue;
          const double activity =
              rc.activity_factor * net.station(o.id).utilization();
          if (activity <= 0.0) continue;
          i_mw += activity *
                  cellular::dbmToMw(
                      rc.tx_power_dbm -
                      cellular::pathLossDb(
                          rc.path_loss, net.distanceToStationKm(pos, o.id)));
        }
        const double s_mw = cellular::dbmToMw(
            rc.tx_power_dbm -
            cellular::pathLossDb(rc.path_loss,
                                 net.distanceToStationKm(pos, c.id)));
        legacy_checksum += cellular::linearToDb(s_mw / i_mw);
      }
    }
  }
  if (std::abs(sir_checksum - legacy_checksum) > 1e-6) {
    std::cerr << "bench_baseline: gain-table SINR diverged from the legacy "
              << "formula (" << sim::shortestNumber(sir_checksum) << " vs "
              << sim::shortestNumber(legacy_checksum) << ")\n";
    return 1;
  }

  // Per-decision latency through the registry-built controller (the
  // production route), radius 0: the exact whole-network sum.
  const std::unique_ptr<cellular::AdmissionController> sir =
      cellular::PolicyRuntime::defaultRuntime().makeController("sir", net);
  cellular::CallRequest sir_request;
  sir_request.service = cellular::ServiceClass::Voice;
  sir_request.demand_bu = 2;
  sir_request.target_cell = 0;
  const cellular::AdmissionContext sir_context{net.station(0)};
  const cellular::Vec2 probes[5] = {{0.15, 0.3},  {-0.6, 0.45}, {1.05, -0.15},
                                    {-0.3, -0.9}, {0.75, 0.75}};
  constexpr int kSirDecides = 200000;
  double sir_score_sink = 0.0;
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSirDecides; ++i) {
    sir_request.snapshot.position = probes[i % 5];
    sir_score_sink += sir->decide(sir_request, sir_context).score;
  }
  const double sir_decide_ns =
      secondsSince(t2) * 1e9 / static_cast<double>(kSirDecides);
  if (!std::isfinite(sir_score_sink)) {
    std::cerr << "bench_baseline: SIR decide sweep produced a non-finite "
              << "score sum\n";
    return 1;
  }

  FlatJson json;
  json.add("tolerance", 3.0);
  json.add("det_entries", static_cast<std::uint64_t>(entries));
  json.add("det_flc2_checksum", scalar_checksum);
  json.add("det_sir_checksum", sir_checksum);
  json.add("perf_flc2_infer_ns", infer_ns);
  json.add("perf_facs_batch_ns", batch_ns);
  json.add("perf_sir_decide_ns", sir_decide_ns);
  if (!json.writeTo(path)) {
    std::cerr << "bench_baseline: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " (" << entries << " entries, "
            << "infer " << infer_ns << " ns, batch " << batch_ns
            << " ns, sir decide " << sir_decide_ns << " ns)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = argc > 1 ? std::string{argv[1]} : std::string{"."};
  try {
    const int streaming = benchStreaming(outdir + "/BENCH_streaming.json");
    if (streaming != 0) return streaming;
    const int scaling = benchScaling(outdir + "/BENCH_scaling.json");
    if (scaling != 0) return scaling;
    return benchMicro(outdir + "/BENCH_micro.json");
  } catch (const std::exception& e) {
    std::cerr << "bench_baseline: " << e.what() << "\n";
    return 1;
  }
}
