/// \file facs_cli.cpp
/// Operator command line for the FACS simulator: run any policy on any
/// scenario, single runs or replicated sweeps. See --help.

#include <iostream>

#include "cli/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace facs;
  try {
    const sim::CliOptions options =
        sim::parseCli({argv + 1, argv + argc});
    if (options.help) {
      std::cout << sim::cliUsage();
      return 0;
    }

    if (!options.sweep_xs.empty()) {
      sim::SweepSpec sweep;
      sweep.title = std::string{"facs_cli sweep ("} +
                    std::string{toString(options.policy)} + ")";
      sweep.xs = options.sweep_xs;
      sweep.replications = options.replications;

      sim::CurveSpec curve;
      curve.label = std::string{toString(options.policy)};
      curve.base = options.config;
      curve.make_controller = sim::makeFactory(options);
      const sim::SweepResult result = sim::runSweep(sweep, {curve});
      if (options.csv) {
        sim::printCsv(std::cout, result);
      } else {
        sim::printTable(std::cout, result);
      }
      return 0;
    }

    const sim::Metrics metrics =
        sim::runSimulation(options.config, sim::makeFactory(options));
    std::cout << "policy: " << toString(options.policy) << "\n"
              << metrics.summary() << "\n"
              << "percent-accepted: " << metrics.percentAccepted() << "\n"
              << "blocking-probability: " << metrics.blockingProbability()
              << "\n"
              << "dropping-probability: " << metrics.droppingProbability()
              << "\n"
              << "mean-utilization: " << metrics.meanUtilization() << "\n";
    return 0;
  } catch (const sim::CliError& e) {
    std::cerr << "facs_cli: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "facs_cli: " << e.what() << "\n";
    return 1;
  }
}
