/// \file facs_cli.cpp
/// Operator command line for the FACS simulator: run any registered policy
/// on any catalogued scenario, single runs or replicated sweeps. See
/// --help, --list-policies and --list-scenarios.

#include <iostream>

#include "cellular/policy_registry.hpp"
#include "cli/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace facs;
  try {
    const sim::CliOptions options =
        sim::parseCli({argv + 1, argv + argc});
    if (options.help) {
      std::cout << sim::cliUsage();
      return 0;
    }
    if (options.list_policies) {
      std::cout << "registered policies:\n"
                << cellular::PolicyRegistry::global().describeAll();
      return 0;
    }
    if (options.list_scenarios) {
      std::cout << "catalogued scenarios:\n"
                << sim::ScenarioCatalog::global().describeAll();
      return 0;
    }

    if (!options.sweep_xs.empty()) {
      sim::SweepSpec sweep;
      sweep.title = "facs_cli sweep (" + options.policy + ")";
      sweep.xs = options.sweep_xs;
      sweep.replications = options.replications;
      sweep.threads = options.threads;
      sweep.base_seed = options.config.seed;

      sim::CurveSpec curve;
      curve.label = options.policy;
      curve.base = options.config;
      curve.make_controller = sim::makeFactory(options);
      const sim::SweepResult result = sim::runSweep(sweep, {curve});
      if (options.csv) {
        sim::printCsv(std::cout, result);
      } else {
        sim::printTable(std::cout, result);
      }
      return 0;
    }

    const sim::Metrics metrics =
        sim::runSimulation(options.config, sim::makeFactory(options));
    std::cout << "policy: " << options.policy << "\n";
    if (!options.scenario.empty()) {
      std::cout << "scenario: " << options.scenario << "\n";
    }
    std::cout << metrics.summary() << "\n"
              << "percent-accepted: " << metrics.percentAccepted() << "\n"
              << "blocking-probability: " << metrics.blockingProbability()
              << "\n"
              << "dropping-probability: " << metrics.droppingProbability()
              << "\n"
              << "mean-utilization: " << metrics.meanUtilization() << "\n";
    return 0;
  } catch (const sim::CliError& e) {
    std::cerr << "facs_cli: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "facs_cli: " << e.what() << "\n";
    return 1;
  }
}
