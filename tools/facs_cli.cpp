/// \file facs_cli.cpp
/// Operator command line for the FACS simulator: run any registered policy
/// on any catalogued scenario — or a scenario *file* (--scenario-file /
/// --dump-scenario) — single runs or replicated sweeps. See --help,
/// --list-policies and --list-scenarios.

#include <iostream>

#include "cellular/policy_registry.hpp"
#include "cli/cli.hpp"
#include "serve/service.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario_file.hpp"

int main(int argc, char** argv) {
  using namespace facs;
  // The CLI's composition scope: one policy runtime (a snapshot of the
  // registrar seed) and one scenario catalog (the built-ins) per process
  // invocation. An embedding front end would extend these per run instead.
  const cellular::PolicyRuntime runtime;
  const sim::ScenarioCatalog catalog;
  try {
    const sim::CliOptions options =
        sim::parseCli({argv + 1, argv + argc}, runtime, catalog);
    if (options.help) {
      std::cout << sim::cliUsage(runtime, catalog);
      return 0;
    }
    if (options.list_policies) {
      std::cout << "registered policies:\n" << runtime.describeAll();
      return 0;
    }
    if (options.list_scenarios) {
      std::cout << "catalogued scenarios:\n" << catalog.describeAll();
      return 0;
    }
    if (!options.dump_scenario.empty()) {
      if (options.dump_scenario == "-") {
        // The composed run itself — scenario base plus every flag override
        // — as a scenario file. This is the parse→write fixed point the CI
        // round-trip gate checks, and it snapshots hand-tuned command
        // lines as reusable files.
        sim::ScenarioSpec spec;
        spec.name = options.scenario.empty() ? "custom" : options.scenario;
        spec.summary = options.scenario_summary;
        spec.policy = options.policy;
        spec.config = options.config;
        std::cout << sim::writeScenarioFile(spec);
      } else {
        std::cout << sim::writeScenarioFile(catalog.at(options.dump_scenario));
      }
      return 0;
    }

    if (options.serve) {
      // Streaming service mode: JSONL records on stdout (one per metrics
      // window), nothing else on stdout so `facs_cli --serve | consumer`
      // sees a clean stream. The final record's cumulative counters equal
      // the batch run's Metrics bit for bit.
      serve::ServeOptions serve_options;
      serve_options.metrics_every_s = options.metrics_every_s;
      serve_options.duration_s = options.serve_duration_s;
      (void)serve::serveSimulation(options.config,
                                   sim::makeFactory(options, runtime),
                                   serve_options, std::cout);
      return 0;
    }

    if (!options.sweep_xs.empty()) {
      sim::SweepSpec sweep;
      sweep.title = "facs_cli sweep (" + options.policy + ")";
      sweep.xs = options.sweep_xs;
      sweep.replications = options.replications;
      sweep.threads = options.threads;
      sweep.base_seed = options.config.seed;

      sim::CurveSpec curve;
      curve.label = options.policy;
      curve.base = options.config;
      curve.policy = options.policy;  // resolved by runSweep via the runtime
      const sim::SweepResult result = sim::runSweep(runtime, sweep, {curve});
      if (options.json) {
        // One document per figure, a full metrics object per (curve, x,
        // replication) — CI diffs whole figures, not single runs.
        sim::printJson(std::cout, result);
      } else if (options.csv) {
        sim::printCsv(std::cout, result);
      } else {
        sim::printTable(std::cout, result);
      }
      return 0;
    }

    const sim::Metrics metrics =
        sim::runSimulation(options.config, sim::makeFactory(options, runtime));
    if (metrics.truncated_rationales > 0) {
      // Once per run, on stderr so it never perturbs diffable output:
      // explain-mode rationales lost their tails at the inline capacity.
      std::cerr << "facs_cli: warning: " << metrics.truncated_rationales
                << " decision rationale(s) truncated at "
                << cellular::ReasonText::kCapacity
                << " chars (ReasonText::truncated())\n";
    }
    if (options.json) {
      std::cout << metrics.toJson() << "\n";
      return 0;
    }
    std::cout << "policy: " << options.policy << "\n";
    if (!options.scenario.empty()) {
      std::cout << "scenario: " << options.scenario << "\n";
    }
    std::cout << metrics.summary() << "\n"
              << "percent-accepted: " << metrics.percentAccepted() << "\n"
              << "blocking-probability: " << metrics.blockingProbability()
              << "\n"
              << "dropping-probability: " << metrics.droppingProbability()
              << "\n"
              << "mean-utilization: " << metrics.meanUtilization() << "\n";
    return 0;
  } catch (const sim::CliError& e) {
    std::cerr << "facs_cli: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "facs_cli: " << e.what() << "\n";
    return 1;
  }
}
