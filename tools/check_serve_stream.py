#!/usr/bin/env python3
"""Validates a `facs_cli --serve` JSONL stream — the CI serve-smoke gate.

    facs_cli --serve ... | python3 tools/check_serve_stream.py [--warmup-windows N]

Checks, line by line (stdin or a file argument):
  * every line parses as a JSON object carrying the full window schema;
  * window indices count 0,1,2,... and [t0, t1) spans chain without gaps;
  * exactly one record has "final": true, and it is the last;
  * integer deltas are non-negative and cumulative doubles never shrink;
  * pool/ring invariants hold (live <= high_water <= capacity... growth
    counters monotone);
  * flat steady state: after the first --warmup-windows records (default 2),
    pool_grow_events and pool_capacity never change again — the zero
    steady-state-allocation claim, asserted from the outside.

Exits 0 quietly-ish (a one-line summary) on success, 1 with the offending
line number and reason on any violation. Stdlib only.
"""

import argparse
import json
import sys

DELTA_KEYS = [
    "new_requests", "new_accepted", "new_blocked",
    "handoff_requests", "handoff_accepted", "handoff_dropped",
    "completed", "engine_events",
    "reservations_posted", "reservations_admitted", "reservations_dropped",
    "outage_forced_drops", "mutations_applied", "repartitions",
    "repartitions_skipped", "demand_deltas", "shadow_migrations",
]
CUMULATIVE_KEYS = ["busy_bu_seconds_cum", "observed_span_s_cum"]
# Run-cumulative per-lane committed events: a non-negative-int list whose
# length (the lane count) never changes, each element monotone.
LANE_ARRAY_KEY = "lane_events_cum"
POOL_KEYS = [
    "pool_capacity", "pool_live", "pool_high_water",
    "pool_acquired", "pool_released", "pool_grow_events",
    "ring_capacity", "ring_high_water", "ring_spills",
]
REQUIRED = (["window", "t0", "t1", "final"] + DELTA_KEYS + CUMULATIVE_KEYS
            + ["percent_accepted_cum", "mean_utilization_cum"]
            + [LANE_ARRAY_KEY] + POOL_KEYS)
MONOTONE_KEYS = CUMULATIVE_KEYS + [
    "pool_high_water", "pool_acquired", "pool_released", "pool_grow_events",
    "ring_high_water", "ring_spills",
]


def fail(line_no, reason):
    print(f"check_serve_stream: line {line_no}: {reason}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("stream", nargs="?", help="JSONL file (default stdin)")
    parser.add_argument(
        "--warmup-windows", type=int, default=2,
        help="records after which the pool must stop growing (default 2)")
    args = parser.parse_args()

    source = open(args.stream) if args.stream else sys.stdin
    records = 0
    finals = 0
    prev = None
    steady = None  # (pool_capacity, pool_grow_events) frozen after warmup
    with source:
        for line_no, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                fail(line_no, "blank line in the stream")
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                fail(line_no, f"not valid JSON: {err}")
            if not isinstance(rec, dict):
                fail(line_no, "record is not a JSON object")
            for key in REQUIRED:
                if key not in rec:
                    fail(line_no, f"missing key {key!r}")
            extra = set(rec) - set(REQUIRED)
            if extra:
                fail(line_no, f"unexpected keys {sorted(extra)}")

            if rec["window"] != records:
                fail(line_no, f"window index {rec['window']}, "
                              f"expected {records}")
            if rec["final"] is True:
                finals += 1
            elif rec["final"] is not False:
                fail(line_no, "'final' must be true or false")
            if finals and not rec["final"]:
                fail(line_no, "record after the final window")

            if rec["t1"] < rec["t0"]:
                fail(line_no, f"t1 {rec['t1']} before t0 {rec['t0']}")
            if prev is not None and rec["t0"] != prev["t1"]:
                fail(line_no, f"window gap: t0 {rec['t0']} != previous "
                              f"t1 {prev['t1']}")

            for key in DELTA_KEYS:
                if not isinstance(rec[key], int) or rec[key] < 0:
                    fail(line_no, f"{key} must be a non-negative integer, "
                                  f"got {rec[key]!r}")
            lanes = rec[LANE_ARRAY_KEY]
            if (not isinstance(lanes, list) or not lanes
                    or any(not isinstance(v, int) or v < 0 for v in lanes)):
                fail(line_no, f"{LANE_ARRAY_KEY} must be a non-empty list "
                              f"of non-negative integers, got {lanes!r}")
            if prev is not None:
                for key in MONOTONE_KEYS:
                    if rec[key] < prev[key]:
                        fail(line_no, f"{key} shrank: {prev[key]} -> "
                                      f"{rec[key]}")
                prev_lanes = prev[LANE_ARRAY_KEY]
                if len(lanes) != len(prev_lanes):
                    fail(line_no, f"{LANE_ARRAY_KEY} lane count changed: "
                                  f"{len(prev_lanes)} -> {len(lanes)}")
                for i, (now_v, was_v) in enumerate(zip(lanes, prev_lanes)):
                    if now_v < was_v:
                        fail(line_no, f"{LANE_ARRAY_KEY}[{i}] shrank: "
                                      f"{was_v} -> {now_v}")

            if rec["pool_live"] > rec["pool_high_water"]:
                fail(line_no, "pool_live above pool_high_water")
            if rec["pool_high_water"] > rec["pool_capacity"]:
                fail(line_no, "pool_high_water above pool_capacity")
            if rec["pool_acquired"] - rec["pool_released"] != rec["pool_live"]:
                fail(line_no, "pool_acquired - pool_released != pool_live")
            if rec["ring_high_water"] > rec["ring_capacity"]:
                fail(line_no, "ring_high_water above ring_capacity")

            records += 1
            if records == args.warmup_windows:
                steady = (rec["pool_capacity"], rec["pool_grow_events"])
            elif steady is not None:
                now = (rec["pool_capacity"], rec["pool_grow_events"])
                if now != steady:
                    fail(line_no,
                         f"pool grew after warmup: capacity/grow_events "
                         f"{steady} -> {now} (steady state must be "
                         f"allocation-free)")
            prev = rec

    if records == 0:
        fail(0, "empty stream")
    if finals != 1:
        fail(records, f"expected exactly one final record, saw {finals}")
    print(f"check_serve_stream: OK ({records} windows, flat after "
          f"{min(args.warmup_windows, records)} warmup)")


if __name__ == "__main__":
    main()
