/// \file facs_fdl.cpp
/// FDL utility: validate, normalize and exercise fuzzy controllers written
/// in the FDL text format.
///
///   facs_fdl check <file>              parse + validate, report problems
///   facs_fdl print <file>              parse and re-serialize (normalize)
///   facs_fdl infer <file> x1 x2 ...    run one inference, show the trace
///   facs_fdl facs-flc1|facs-flc2       dump the built-in FACS engines

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/flc1.hpp"
#include "core/flc2.hpp"
#include "fuzzy/fdl.hpp"

namespace {

using namespace facs;

fuzzy::MamdaniEngine load(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return fuzzy::parseFdl(in);
}

int check(const std::string& path) {
  const fuzzy::MamdaniEngine engine = load(path);
  engine.checkValid();
  const fuzzy::RuleBaseReport report =
      engine.rules().validate(engine.inputs(), engine.output());
  std::cout << "engine '" << engine.name() << "': " << engine.inputCount()
            << " inputs, " << engine.output().termCount()
            << " output terms, " << engine.rules().size() << " rules\n";
  if (!report.uncovered.empty()) {
    std::cout << "warning: " << report.uncovered.size()
              << " uncovered input combinations, e.g. "
              << report.uncovered.front() << "\n";
  }
  for (std::size_t i = 0; i < engine.inputCount(); ++i) {
    if (!engine.input(i).covers()) {
      std::cout << "warning: input '" << engine.input(i).name()
                << "' does not cover its universe\n";
    }
  }
  std::cout << (report.ok ? "OK" : "OK with warnings") << "\n";
  return 0;
}

int infer(const std::string& path, const std::vector<std::string>& values) {
  const fuzzy::MamdaniEngine engine = load(path);
  if (values.size() != engine.inputCount()) {
    std::cerr << "engine '" << engine.name() << "' expects "
              << engine.inputCount() << " inputs\n";
    return 2;
  }
  std::vector<double> inputs;
  inputs.reserve(values.size());
  for (const std::string& v : values) inputs.push_back(std::stod(v));

  const fuzzy::InferenceTrace trace = engine.inferTraced(inputs);
  for (std::size_t v = 0; v < engine.inputCount(); ++v) {
    std::cout << engine.input(v).name() << " = " << trace.inputs[v] << "\n";
  }
  std::cout << "fired rules: " << trace.activations.size() << "\n";
  for (const auto& a : trace.activations) {
    std::cout << "  #" << a.rule_index << " strength " << a.firing_strength
              << "\n";
  }
  std::cout << engine.output().name() << " = " << trace.crisp_output << " ("
            << engine.output().term(trace.winning_output_term).name()
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args{argv + 1, argv + argc};
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
      std::cout << "usage: facs_fdl check|print|infer <file> [inputs...] |"
                   " facs-flc1 | facs-flc2\n";
      return args.empty() ? 2 : 0;
    }
    if (args[0] == "facs-flc1") {
      std::cout << fuzzy::toFdl(core::buildFlc1());
      return 0;
    }
    if (args[0] == "facs-flc2") {
      std::cout << fuzzy::toFdl(core::buildFlc2());
      return 0;
    }
    if (args.size() < 2) {
      std::cerr << "facs_fdl: missing file argument\n";
      return 2;
    }
    if (args[0] == "check") return check(args[1]);
    if (args[0] == "print") {
      std::cout << fuzzy::toFdl(load(args[1]));
      return 0;
    }
    if (args[0] == "infer") {
      return infer(args[1], {args.begin() + 2, args.end()});
    }
    std::cerr << "facs_fdl: unknown command '" << args[0] << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "facs_fdl: " << e.what() << "\n";
    return 1;
  }
}
