#!/usr/bin/env python3
"""Renders the benchmark trajectory across PRs — the bench-diff artifact.

    python3 tools/bench_report.py [--repo DIR] [--current DIR]
                                  [--format markdown|csv] [--out FILE]

Walks the git history of every committed BENCH_*.json baseline (each flat
JSON file as written by bench_baseline), collects one row per (commit,
benchmark), optionally appends the freshly generated files from --current
as a "current" row, and renders the whole trajectory as a markdown table
(default) or CSV. The point is longitudinal: a single bench_diff run says
"within tolerance of the previous PR"; this report shows the committed
perf_* numbers drifting across the PR sequence, so a slow regression that
stays inside each individual x3 band is still visible as a trend.

det_* keys are omitted from the report body (they are exact-match gated by
bench_diff already); perf_* keys and `tolerance` are the trajectory.

Stdlib + git only. Exits non-zero if no baselines are found anywhere.
"""

import argparse
import json
import os
import subprocess
import sys


def git(repo, *args):
    return subprocess.run(
        ["git", "-C", repo, *args], check=True,
        capture_output=True, text=True).stdout


def baseline_names(repo, current_dir):
    """Every BENCH_*.json name that exists in HEAD or in --current."""
    names = set()
    for line in git(repo, "ls-files", "BENCH_*.json").splitlines():
        names.add(os.path.basename(line.strip()))
    if current_dir:
        for entry in sorted(os.listdir(current_dir)):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                names.add(entry)
    return sorted(names)


def history_rows(repo, name):
    """[(order, commit, subject, {key: value})] oldest-first for one file."""
    log = git(repo, "log", "--follow", "--format=%H\x1f%h\x1f%s",
              "--", name)
    commits = [line.split("\x1f") for line in log.splitlines() if line]
    commits.reverse()  # oldest first: the trajectory reads left to right
    rows = []
    for order, (full, short, subject) in enumerate(commits):
        try:
            blob = git(repo, "show", f"{full}:{name}")
        except subprocess.CalledProcessError:
            continue  # renamed past --follow; the name did not exist here
        try:
            data = json.loads(blob)
        except json.JSONDecodeError:
            continue
        rows.append((order, short, subject, data))
    return rows


def perf_keys(rows):
    keys = []
    for _, _, _, data in rows:
        for key in data:
            if (key == "tolerance" or key.startswith("perf_")) \
                    and key not in keys:
                keys.append(key)
    return keys


def fmt(value):
    if value is None:
        return ""
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_markdown(out, name, rows, keys):
    out.write(f"## {name}\n\n")
    out.write("| commit | subject | " + " | ".join(keys) + " |\n")
    out.write("|---|---|" + "---|" * len(keys) + "\n")
    for _, short, subject, data in rows:
        cells = [fmt(data.get(k)) for k in keys]
        subject = subject.replace("|", "\\|")
        if len(subject) > 60:
            subject = subject[:57] + "..."
        out.write(f"| {short} | {subject} | " + " | ".join(cells) + " |\n")
    out.write("\n")


def render_csv(out, name, rows, keys):
    out.write("benchmark,commit,subject," + ",".join(keys) + "\n")
    for _, short, subject, data in rows:
        subject = '"' + subject.replace('"', '""') + '"'
        cells = [fmt(data.get(k)) for k in keys]
        out.write(f"{name},{short},{subject}," + ",".join(cells) + "\n")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo", default=".",
                        help="git repository holding the committed baselines")
    parser.add_argument("--current", default=None,
                        help="directory with freshly generated BENCH_*.json "
                             "to append as the 'current' row")
    parser.add_argument("--format", choices=["markdown", "csv"],
                        default="markdown")
    parser.add_argument("--out", default=None, help="output file (stdout)")
    args = parser.parse_args()

    names = baseline_names(args.repo, args.current)
    if not names:
        print("bench_report: no BENCH_*.json baselines found",
              file=sys.stderr)
        return 1

    sections = []
    for name in names:
        rows = history_rows(args.repo, name)
        if args.current:
            path = os.path.join(args.current, name)
            if os.path.exists(path):
                with open(path) as f:
                    rows.append((len(rows), "current", "(this run)",
                                 json.load(f)))
        if rows:
            sections.append((name, rows, perf_keys(rows)))

    out = open(args.out, "w") if args.out else sys.stdout
    with out:
        if args.format == "markdown":
            out.write("# Benchmark trajectory\n\n")
            out.write("Committed `perf_*` values per baseline commit, "
                      "oldest first; `current` is this run's regenerated "
                      "file. `det_*` keys are exact-match gated by "
                      "bench_diff and omitted here.\n\n")
            for name, rows, keys in sections:
                render_markdown(out, name, rows, keys)
        else:
            for name, rows, keys in sections:
                render_csv(out, name, rows, keys)
    return 0


if __name__ == "__main__":
    sys.exit(main())
