/// \file bench_diff.cpp
/// Compares a freshly generated benchmark file against the committed
/// baseline and fails on regression — the teeth of the CI bench-diff job.
///
///   bench_diff BASELINE CURRENT
///
/// Both files are flat JSON objects as written by bench_baseline. The
/// comparison contract lives in the key prefixes:
///   det_*   must match EXACTLY (these are deterministic engine outputs;
///           any difference is a correctness regression).
///   perf_*  may drift within a multiplicative band: keys named *_per_sec
///           are higher-is-better and must stay >= baseline / tolerance;
///           every other perf key is lower-is-better and must stay
///           <= baseline * tolerance. The band absorbs machine-to-machine
///           variance (CI runners vs the box that generated the baseline);
///           a genuine order-of-magnitude regression still trips it.
/// `tolerance` comes from the BASELINE file, so the band itself is a
/// reviewed, committed number — the current file's copy is ignored.
/// Key sets must match: a vanished or new key means the benchmark changed
/// shape and the baseline must be regenerated deliberately.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

namespace {

/// Parses a flat JSON object of "key": number pairs. Tiny by design — it
/// reads exactly what bench_baseline writes and rejects everything else,
/// so a malformed artifact fails loudly instead of comparing garbage.
std::map<std::string, double> readFlatJson(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error(path + ": cannot open");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t open = text.find('"', pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) {
      throw std::runtime_error(path + ": unterminated key");
    }
    const std::string key = text.substr(open + 1, close - open - 1);
    const std::size_t colon = text.find(':', close);
    if (colon == std::string::npos) {
      throw std::runtime_error(path + ": key '" + key + "' has no value");
    }
    std::size_t end = text.find_first_of(",}\n", colon + 1);
    if (end == std::string::npos) end = text.size();
    const std::string value = text.substr(colon + 1, end - colon - 1);
    try {
      std::size_t used = 0;
      const double v = std::stod(value, &used);
      // Trailing garbage after the number would mean we mis-split.
      for (std::size_t i = used; i < value.size(); ++i) {
        if (value[i] != ' ' && value[i] != '\t' && value[i] != '\r') {
          throw std::invalid_argument(value);
        }
      }
      out[key] = v;
    } catch (const std::exception&) {
      throw std::runtime_error(path + ": key '" + key +
                               "' has a non-numeric value '" + value + "'");
    }
    pos = end;
  }
  if (out.empty()) throw std::runtime_error(path + ": no entries");
  return out;
}

bool isPerSec(const std::string& key) {
  return key.find("_per_sec") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: bench_diff BASELINE CURRENT\n";
    return 2;
  }
  try {
    const std::map<std::string, double> base = readFlatJson(argv[1]);
    std::map<std::string, double> current = readFlatJson(argv[2]);
    const auto tol_it = base.find("tolerance");
    if (tol_it == base.end() || tol_it->second < 1.0) {
      throw std::runtime_error(std::string{argv[1]} +
                               ": missing or invalid 'tolerance' (must be a "
                               "number >= 1)");
    }
    const double tol = tol_it->second;

    int failures = 0;
    const auto failed = [&](const std::string& key, const std::string& why) {
      std::cerr << "FAIL " << key << ": " << why << "\n";
      ++failures;
    };

    for (const auto& [key, base_value] : base) {
      const auto cur_it = current.find(key);
      if (cur_it == current.end()) {
        if (key != "tolerance") failed(key, "missing from current run");
        continue;
      }
      const double cur_value = cur_it->second;
      current.erase(cur_it);
      if (key == "tolerance") continue;  // the baseline's copy governs
      if (key.rfind("det_", 0) == 0) {
        if (cur_value != base_value) {
          std::ostringstream os;
          os << "deterministic value changed: baseline " << base_value
             << ", current " << cur_value;
          failed(key, os.str());
        } else {
          std::cout << "ok   " << key << " = " << base_value << "\n";
        }
      } else if (key.rfind("perf_", 0) == 0) {
        const bool higher_better = isPerSec(key);
        const double floor = base_value / tol;
        const double ceiling = base_value * tol;
        const bool ok =
            higher_better ? cur_value >= floor : cur_value <= ceiling;
        if (!ok) {
          std::ostringstream os;
          os << "outside the x" << tol << " band: baseline " << base_value
             << ", current " << cur_value << " ("
             << (higher_better ? "floor " : "ceiling ")
             << (higher_better ? floor : ceiling) << ")";
          failed(key, os.str());
        } else {
          std::cout << "ok   " << key << ": baseline " << base_value
                    << ", current " << cur_value << " (within x" << tol
                    << ")\n";
        }
      } else {
        failed(key, "unknown key prefix (expected det_* or perf_*)");
      }
    }
    for (const auto& [key, value] : current) {
      if (key != "tolerance") {
        failed(key, "new key not in baseline (regenerate the baseline)");
      }
    }

    if (failures > 0) {
      std::cerr << "bench_diff: " << failures << " comparison(s) failed\n";
      return 1;
    }
    std::cout << "bench_diff: all comparisons within tolerance\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 1;
  }
}
