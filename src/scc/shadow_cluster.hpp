#pragma once
/// \file shadow_cluster.hpp
/// The Shadow Cluster Concept (SCC) baseline, re-implemented from
/// D. A. Levine, I. F. Akyildiz, M. Naghshineh, "A Resource Estimation and
/// Call Admission Algorithm for Wireless Multimedia Networks Using the
/// Shadow Cluster Concept", IEEE/ACM ToN 5(1), 1997 — the comparison system
/// of the paper's Section 2 and Fig. 10.
///
/// Every active mobile exerts a probabilistic "shadow" over nearby cells:
/// for each future interval k the controller projects where the mobile will
/// be (from its last known position and velocity), spreads that prediction
/// over cells with a Gaussian kernel whose width grows with the horizon,
/// and discounts by the probability the call is still active. Base stations
/// sum these shadows into projected demand per interval and admit a new
/// call only if, with the caller's own tentative shadow cluster added,
/// projected demand stays within the survivability threshold everywhere in
/// the cluster for the whole horizon.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cellular/admission.hpp"
#include "cellular/network.hpp"
#include "mobility/model.hpp"

namespace facs::scc {

/// Tunables of the shadow-cluster algorithm.
struct SccConfig {
  /// Number of future intervals projected (the horizon is
  /// intervals * interval_s seconds).
  int intervals = 3;
  /// Interval length in seconds.
  double interval_s = 30.0;
  /// Survivability threshold: projected demand in every cluster cell must
  /// stay below threshold * capacity for the call to be admitted.
  double threshold = 1.0;
  /// Grid radius (hops) of a shadow cluster around its centre cell.
  int cluster_radius = 1;
  /// Base spatial spread of the position prediction (km); grows linearly
  /// with the projection interval index. Should be of the order of the
  /// cell radius — a mobile anywhere in a cell shadows that cell's BS, and
  /// mobiles near borders shadow the neighbour too (which is what makes
  /// the scheme's per-BS accumulation over-reserve, as in the original).
  double sigma_base_km = 8.0;
  double sigma_growth_km = 2.0;
  /// Mean call holding time used for the activity decay exp(-t / holding).
  double mean_holding_s = 180.0;
  /// Periodic exact rebuild of the incremental demand cache: after this
  /// many shadow updates (each admit, release, or handoff-refresh leg is
  /// one), every per-(cell, interval) accumulator is recomputed from the
  /// live shadows in canonical call order. Subtract-on-release leaves
  /// ~1e-12 BU of floating residue per churn cycle; the rebuild zeroes it,
  /// bounding the drift forever on long-lived runs. 0 disables. The
  /// amortized cost is O(tracked * cells * intervals / rebuild_every) per
  /// update — negligible at the default.
  int rebuild_every = 1'000'000;
  /// Deny calls whose predicted trajectory leaves network coverage within
  /// the horizon: their shadow cluster cannot be established, so their QoS
  /// cannot be guaranteed (the admission criterion of the original
  /// algorithm). Disable for single-cell studies where everything
  /// eventually "leaves".
  bool require_coverage = true;
  /// Shadow accounting footprint in cell hops around the shadow's anchor
  /// (the cell of its last report). 0 (default) = unbounded: every update
  /// touches every cell's accumulator — the historical behaviour at
  /// O(cells x intervals) per update. A positive reach bounds each update
  /// (and the periodic rebuild) to the cells within that many hops —
  /// group-LOCAL shadow accounting: the cost becomes flat in the network
  /// size, and a shadow's writes stay inside a bounded neighbourhood (the
  /// precondition for SCC ever committing from the engine's parallel
  /// cell-group lanes).
  ///
  /// Size it to the projection horizon, not to the Gaussian spread: the
  /// footprint is anchored at the LAST-REPORT cell, but contribution()
  /// centres each interval's Gaussian on the call's PREDICTED position —
  /// up to speed x (intervals x interval_s) ahead of the anchor. A reach
  /// smaller than that projected distance (in cell hops) cuts off the
  /// cells the mobile is headed for, silently disabling the predictive
  /// reservation for fast traffic — the bulk of the demand, not a tail.
  /// reach >= ceil(v_max * horizon / cell_pitch) + a hop for the spread
  /// keeps only the far Gaussian tails out; anything less is a knowingly
  /// more myopic model. Spec key: reach=N.
  int reach = 0;
};

/// Projected bandwidth demand for one cell over the horizon.
using DemandProfile = std::vector<double>;  // index = interval k

/// SCC admission controller over a hexagonal network.
///
/// The controller reconstructs each mobile's velocity vector from the
/// admission-time UserSnapshot (position + speed + angle relative to the
/// target base station); a production SCC would refresh these via the
/// inter-BS message system the paper describes, which a later snapshot
/// update through onAdmitted() of the next handoff approximates.
///
/// Demand bookkeeping is incremental: every base station keeps a running
/// per-interval sum of the shadows currently cast over it, updated on call
/// arrival (onAdmitted), departure (onReleased) and handoff (the refreshing
/// onAdmitted), exactly like the original scheme's BS-side accumulation of
/// mobiles' probability vectors. decide() therefore reads projected demand
/// as an O(cluster x intervals) lookup — flat in the number of tracked
/// calls — instead of re-integrating every shadow per decision. Each
/// shadow's projection is anchored at its last report (admission or
/// handoff), which is when the original algorithm's messages update it.
class ShadowClusterController final : public cellular::AdmissionController {
 public:
  /// \param network the cell layout (not owned; must outlive the controller).
  ShadowClusterController(const cellular::HexNetwork& network,
                          SccConfig config = {});

  [[nodiscard]] std::string name() const override { return "SCC"; }

  /// Partition-aware scope. With a bounded `reach`, every shadow's writes
  /// stay inside a known neighbourhood of its anchor, so the controller
  /// can keep per-group shadow stores keyed by the engine's partition and
  /// commit from concurrent group lanes — GroupLocal: in-group footprint
  /// rows update live, rows crossing a group boundary defer into
  /// demand-delta records drained (tree-combined) at onCommitBarrier().
  /// reach = 0 is the original unbounded accumulation — every update
  /// touches every cell — which no partition can confine: Global, and the
  /// engine serializes to one lane.
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return config_.reach > 0 ? cellular::CommitScope::GroupLocal
                             : cellular::CommitScope::Global;
  }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  void onAdmitted(const cellular::CallRequest& request,
                  const cellular::AdmissionContext& context) override;
  void onReleased(const cellular::CallRequest& request,
                  const cellular::AdmissionContext& context) override;

  /// Adopts the engine's cell-to-group mapping (startup and every adopted
  /// repartition epoch — barrier context). In grouped mode (reach > 0 and
  /// more than one group) the shared shadow map splits into per-group
  /// stores keyed by each shadow's anchor group; a boundary move re-keys
  /// every store in canonical call order. `demand_` is left untouched by
  /// the re-keying — every tracked contribution is already folded in — so
  /// total projected demand is conserved exactly across a repartition.
  void onPartitionChanged(const cellular::CellGroupPartition& p) override;

  /// Applies the deferred cross-group demand deltas (sorted per acting
  /// group, tree-combined in canonical (cell, interval, group, seq) order,
  /// then folded serially), re-homes shadows whose handoff refresh crossed
  /// a group boundary, runs any due per-group exact rebuilds, and
  /// refreshes the barrier snapshot foreign-row reads use. Single-threaded
  /// by the engine's contract.
  [[nodiscard]] cellular::BarrierDrainStats onCommitBarrier(
      double now_s) override;

  /// Warns when a bounded reach is smaller than the projection horizon of
  /// the fastest mobile needs: the footprint is anchored at the LAST
  /// report, but contribution() centres each interval's Gaussian on the
  /// PREDICTED position — an undersized reach cuts off the cells the
  /// mobile is headed for, silently disabling predictive reservation for
  /// fast traffic (the SccConfig::reach footgun, now audited).
  [[nodiscard]] std::string auditWorkload(
      const cellular::WorkloadEnvelope& envelope) const override;

  /// Projected demand profile of one cell from all currently tracked
  /// mobiles (exposed for tests and the operator-dashboard example). An
  /// O(intervals) copy of the incremental cache; each shadow's projection
  /// is anchored at its last report.
  [[nodiscard]] DemandProfile projectedDemand(cellular::CellId cell) const;

  /// Number of mobiles currently exerting a shadow (summed over the
  /// per-group stores in grouped mode).
  [[nodiscard]] std::size_t trackedCalls() const noexcept {
    std::size_t n = shadows_.size();
    for (const GroupStore& store : stores_) n += store.shadows.size();
    return n;
  }

  [[nodiscard]] const SccConfig& config() const noexcept { return config_; }

  /// Cells one shadow anchored at \p anchor may touch: all of them at
  /// reach = 0, the precomputed <= reach-hop neighbourhood otherwise.
  [[nodiscard]] const std::vector<cellular::CellId>& footprint(
      cellular::CellId anchor) const;

 private:
  /// Per-call shadow source: last reported kinematics + demand, anchored
  /// at the cell of the last report (admission or handoff refresh) — the
  /// centre of its accounting footprint when reach bounds it.
  struct Shadow {
    mobility::MotionState state;
    double demand_bu = 0.0;
    cellular::CellId anchor = 0;
  };

  /// One commit group's slice of the shadow map (grouped mode): every
  /// shadow whose anchor the partition maps to this group, plus the
  /// group's own rebuild counter. Invariant: a shadow lives in the store
  /// of its anchor's group — lanes and per-target-group reservation
  /// drains therefore touch disjoint stores.
  struct GroupStore {
    std::unordered_map<cellular::CallId, Shadow> shadows;
    std::uint64_t updates_since_rebuild = 0;
  };

  /// One deferred cross-group accumulator write: "add value to cell's
  /// interval-k row". Produced inside a lane or drain whose acting group
  /// does not own the row; applied single-threaded at the barrier. The
  /// (cell, k, group, seq) key is the canonical combine order — seq is the
  /// append index within the acting group's buffer, so the fold is a pure
  /// function of the committed event sequence.
  struct DemandDelta {
    cellular::CellId cell = 0;
    std::int32_t k = 0;
    double value = 0.0;
    std::int32_t group = 0;
    std::uint32_t seq = 0;
  };

  struct DemandDeltaEarlier {
    bool operator()(const DemandDelta& a,
                    const DemandDelta& b) const noexcept {
      if (a.cell != b.cell) return a.cell < b.cell;
      if (a.k != b.k) return a.k < b.k;
      if (a.group != b.group) return a.group < b.group;
      return a.seq < b.seq;
    }
  };

  /// A handoff refresh that crossed a group boundary: the new shadow is
  /// already cast in stores_[to_group], but the stale record under the old
  /// anchor lives in a foreign store the acting drain must not touch. The
  /// barrier retracts and erases it (canonical order).
  struct Migration {
    cellular::CallId call = 0;
    int to_group = 0;
  };

  /// Probability-weighted demand contribution of one shadow to one cell at
  /// interval k, anchored at the shadow's capture instant.
  [[nodiscard]] double contribution(const Shadow& shadow,
                                    cellular::CellId cell, int k) const;

  /// Adds (sign +1) or retracts (sign -1) one shadow's contribution from
  /// every station's demand accumulator — the incremental cache update.
  void applyShadow(const Shadow& shadow, double sign);

  /// Grouped-mode incremental update: footprint rows owned by the
  /// shadow's anchor group apply live (the acting lane/drain owns them);
  /// rows across a group boundary defer into the acting group's delta
  /// buffer for the barrier to fold. Counts one update toward the acting
  /// group's rebuild counter.
  void applyShadowGrouped(const Shadow& shadow, double sign);

  /// Runs the periodic exact rebuild when rebuild_every updates have
  /// accumulated. Called only from the public mutators, when shadows_ and
  /// demand_ agree (never mid-refresh, where a rebuild would double-count
  /// the shadow being replaced). Ungrouped mode only — grouped rebuilds
  /// run per group at the barrier (maybeRebuildGrouped).
  void maybeRebuild();

  /// Per-group exact rebuilds, barrier context: any group whose counter
  /// crossed rebuild_every gets its cells' rows zeroed and recomputed from
  /// every tracked shadow whose footprint intersects them (stores in index
  /// order, canonical call order within each) — exactly what the
  /// incremental updates accumulated there, minus the float residue.
  void maybeRebuildGrouped();

  /// Folds the deferred cross-group deltas (sort per buffer, tree-combine,
  /// serial apply) and re-homes migrated shadows. Barrier context.
  [[nodiscard]] cellular::BarrierDrainStats drainBarrierWork();

  /// True when per-group stores are live: a partition with more than one
  /// group was adopted and reach bounds the footprint.
  [[nodiscard]] bool grouped() const noexcept {
    return partition_.has_value() && partition_->groups() > 1 &&
           config_.reach > 0;
  }

  [[nodiscard]] std::size_t demandIndex(cellular::CellId cell,
                                        int k) const noexcept {
    return static_cast<std::size_t>(cell) *
               static_cast<std::size_t>(config_.intervals) +
           static_cast<std::size_t>(k);
  }

  [[nodiscard]] double demandAt(cellular::CellId cell, int k) const noexcept {
    return demand_[demandIndex(cell, k)];
  }

  /// Row read for a decision acting in group \p g: the group's own rows
  /// read live (end-of-window within the lane's canonical replay), foreign
  /// rows read the barrier snapshot — the same visibility the engine's
  /// reservation protocol gives cross-group state. Ungrouped (g < 0)
  /// reads live, the historical behaviour.
  [[nodiscard]] double demandRead(int g, cellular::CellId cell,
                                  int k) const noexcept {
    if (g < 0 || partition_->groupOf(cell) == g) return demandAt(cell, k);
    return snapshot_[demandIndex(cell, k)];
  }

  const cellular::HexNetwork& network_;
  SccConfig config_;
  std::unordered_map<cellular::CallId, Shadow> shadows_;
  /// Running per-(cell, interval) demand sums over all tracked shadows —
  /// what each BS would hold after accumulating every mobile's probability
  /// vector. Row-major: cell * intervals + k.
  std::vector<double> demand_;
  /// Precomputed cluster membership (cells within cluster_radius), so the
  /// decide() hot path never allocates.
  std::vector<std::vector<cellular::CellId>> clusters_;
  /// Precomputed accounting footprints (cells within reach hops), indexed
  /// by anchor cell; empty when reach == 0 (unbounded accounting) — then
  /// footprint() answers with all_cells_.
  std::vector<std::vector<cellular::CellId>> footprints_;
  std::vector<cellular::CellId> all_cells_;
  /// Shadow updates since the last exact rebuild of demand_ (ungrouped).
  std::uint64_t updates_since_rebuild_ = 0;

  // ---- grouped mode (GroupLocal commits; empty/unused otherwise) ----
  /// Copy of the engine's cell-to-group mapping, adopted at
  /// onPartitionChanged(). Grouped mode engages at groups > 1; at one
  /// group the legacy single-map path above stays authoritative, keeping
  /// commit_groups == 1 bit-identical to the pre-grouped controller.
  std::optional<cellular::CellGroupPartition> partition_;
  /// Per-group shadow stores, indexed by commit group (stores_[g] holds
  /// exactly the shadows whose anchor maps to g).
  std::vector<GroupStore> stores_;
  /// Barrier snapshot of demand_ — what foreign-group rows read during a
  /// window (each row has exactly one live writer: its owner group).
  /// Refreshed at every onCommitBarrier().
  std::vector<double> snapshot_;
  /// Per-acting-group deferred cross-group writes and boundary-crossing
  /// handoff re-homes. Exactly one writer per phase (the group's lane, its
  /// reservation drain, or the serial barrier), drained every barrier.
  std::vector<std::vector<DemandDelta>> deferred_;
  std::vector<std::vector<Migration>> migrations_;
};

/// Reconstructs a mobile's motion state from an admission snapshot taken
/// relative to \p station_position (heading = bearing-to-BS + angle).
[[nodiscard]] mobility::MotionState motionFromSnapshot(
    const cellular::UserSnapshot& snapshot,
    cellular::Vec2 station_position) noexcept;

}  // namespace facs::scc
