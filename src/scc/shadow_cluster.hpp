#pragma once
/// \file shadow_cluster.hpp
/// The Shadow Cluster Concept (SCC) baseline, re-implemented from
/// D. A. Levine, I. F. Akyildiz, M. Naghshineh, "A Resource Estimation and
/// Call Admission Algorithm for Wireless Multimedia Networks Using the
/// Shadow Cluster Concept", IEEE/ACM ToN 5(1), 1997 — the comparison system
/// of the paper's Section 2 and Fig. 10.
///
/// Every active mobile exerts a probabilistic "shadow" over nearby cells:
/// for each future interval k the controller projects where the mobile will
/// be (from its last known position and velocity), spreads that prediction
/// over cells with a Gaussian kernel whose width grows with the horizon,
/// and discounts by the probability the call is still active. Base stations
/// sum these shadows into projected demand per interval and admit a new
/// call only if, with the caller's own tentative shadow cluster added,
/// projected demand stays within the survivability threshold everywhere in
/// the cluster for the whole horizon.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cellular/admission.hpp"
#include "cellular/network.hpp"
#include "mobility/model.hpp"

namespace facs::scc {

/// Tunables of the shadow-cluster algorithm.
struct SccConfig {
  /// Number of future intervals projected (the horizon is
  /// intervals * interval_s seconds).
  int intervals = 3;
  /// Interval length in seconds.
  double interval_s = 30.0;
  /// Survivability threshold: projected demand in every cluster cell must
  /// stay below threshold * capacity for the call to be admitted.
  double threshold = 1.0;
  /// Grid radius (hops) of a shadow cluster around its centre cell.
  int cluster_radius = 1;
  /// Base spatial spread of the position prediction (km); grows linearly
  /// with the projection interval index. Should be of the order of the
  /// cell radius — a mobile anywhere in a cell shadows that cell's BS, and
  /// mobiles near borders shadow the neighbour too (which is what makes
  /// the scheme's per-BS accumulation over-reserve, as in the original).
  double sigma_base_km = 8.0;
  double sigma_growth_km = 2.0;
  /// Mean call holding time used for the activity decay exp(-t / holding).
  double mean_holding_s = 180.0;
  /// Periodic exact rebuild of the incremental demand cache: after this
  /// many shadow updates (each admit, release, or handoff-refresh leg is
  /// one), every per-(cell, interval) accumulator is recomputed from the
  /// live shadows in canonical call order. Subtract-on-release leaves
  /// ~1e-12 BU of floating residue per churn cycle; the rebuild zeroes it,
  /// bounding the drift forever on long-lived runs. 0 disables. The
  /// amortized cost is O(tracked * cells * intervals / rebuild_every) per
  /// update — negligible at the default.
  int rebuild_every = 1'000'000;
  /// Deny calls whose predicted trajectory leaves network coverage within
  /// the horizon: their shadow cluster cannot be established, so their QoS
  /// cannot be guaranteed (the admission criterion of the original
  /// algorithm). Disable for single-cell studies where everything
  /// eventually "leaves".
  bool require_coverage = true;
  /// Shadow accounting footprint in cell hops around the shadow's anchor
  /// (the cell of its last report). 0 (default) = unbounded: every update
  /// touches every cell's accumulator — the historical behaviour at
  /// O(cells x intervals) per update. A positive reach bounds each update
  /// (and the periodic rebuild) to the cells within that many hops —
  /// group-LOCAL shadow accounting: the cost becomes flat in the network
  /// size, and a shadow's writes stay inside a bounded neighbourhood (the
  /// precondition for SCC ever committing from the engine's parallel
  /// cell-group lanes).
  ///
  /// Size it to the projection horizon, not to the Gaussian spread: the
  /// footprint is anchored at the LAST-REPORT cell, but contribution()
  /// centres each interval's Gaussian on the call's PREDICTED position —
  /// up to speed x (intervals x interval_s) ahead of the anchor. A reach
  /// smaller than that projected distance (in cell hops) cuts off the
  /// cells the mobile is headed for, silently disabling the predictive
  /// reservation for fast traffic — the bulk of the demand, not a tail.
  /// reach >= ceil(v_max * horizon / cell_pitch) + a hop for the spread
  /// keeps only the far Gaussian tails out; anything less is a knowingly
  /// more myopic model. Spec key: reach=N.
  int reach = 0;
};

/// Projected bandwidth demand for one cell over the horizon.
using DemandProfile = std::vector<double>;  // index = interval k

/// SCC admission controller over a hexagonal network.
///
/// The controller reconstructs each mobile's velocity vector from the
/// admission-time UserSnapshot (position + speed + angle relative to the
/// target base station); a production SCC would refresh these via the
/// inter-BS message system the paper describes, which a later snapshot
/// update through onAdmitted() of the next handoff approximates.
///
/// Demand bookkeeping is incremental: every base station keeps a running
/// per-interval sum of the shadows currently cast over it, updated on call
/// arrival (onAdmitted), departure (onReleased) and handoff (the refreshing
/// onAdmitted), exactly like the original scheme's BS-side accumulation of
/// mobiles' probability vectors. decide() therefore reads projected demand
/// as an O(cluster x intervals) lookup — flat in the number of tracked
/// calls — instead of re-integrating every shadow per decision. Each
/// shadow's projection is anchored at its last report (admission or
/// handoff), which is when the original algorithm's messages update it.
class ShadowClusterController final : public cellular::AdmissionController {
 public:
  /// \param network the cell layout (not owned; must outlive the controller).
  ShadowClusterController(const cellular::HexNetwork& network,
                          SccConfig config = {});

  [[nodiscard]] std::string name() const override { return "SCC"; }

  /// Explicitly Global: decide() reads demand rows of the whole cluster
  /// and onAdmitted()/onReleased() write accumulators around the shadow's
  /// anchor, so commits for different cells share state. The engine
  /// therefore serializes SCC commits (commit_groups degrades to 1). A
  /// bounded `reach` already keeps each shadow's writes inside a known
  /// neighbourhood — the remaining blocker for group-parallel SCC lanes is
  /// the shared shadow map and the global rebuild (see ROADMAP).
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return cellular::CommitScope::Global;
  }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  void onAdmitted(const cellular::CallRequest& request,
                  const cellular::AdmissionContext& context) override;
  void onReleased(const cellular::CallRequest& request,
                  const cellular::AdmissionContext& context) override;

  /// Projected demand profile of one cell from all currently tracked
  /// mobiles (exposed for tests and the operator-dashboard example). An
  /// O(intervals) copy of the incremental cache; each shadow's projection
  /// is anchored at its last report.
  [[nodiscard]] DemandProfile projectedDemand(cellular::CellId cell) const;

  /// Number of mobiles currently exerting a shadow.
  [[nodiscard]] std::size_t trackedCalls() const noexcept {
    return shadows_.size();
  }

  [[nodiscard]] const SccConfig& config() const noexcept { return config_; }

  /// Cells one shadow anchored at \p anchor may touch: all of them at
  /// reach = 0, the precomputed <= reach-hop neighbourhood otherwise.
  [[nodiscard]] const std::vector<cellular::CellId>& footprint(
      cellular::CellId anchor) const;

 private:
  /// Per-call shadow source: last reported kinematics + demand, anchored
  /// at the cell of the last report (admission or handoff refresh) — the
  /// centre of its accounting footprint when reach bounds it.
  struct Shadow {
    mobility::MotionState state;
    double demand_bu = 0.0;
    cellular::CellId anchor = 0;
  };

  /// Probability-weighted demand contribution of one shadow to one cell at
  /// interval k, anchored at the shadow's capture instant.
  [[nodiscard]] double contribution(const Shadow& shadow,
                                    cellular::CellId cell, int k) const;

  /// Adds (sign +1) or retracts (sign -1) one shadow's contribution from
  /// every station's demand accumulator — the incremental cache update.
  void applyShadow(const Shadow& shadow, double sign);

  /// Runs the periodic exact rebuild when rebuild_every updates have
  /// accumulated. Called only from the public mutators, when shadows_ and
  /// demand_ agree (never mid-refresh, where a rebuild would double-count
  /// the shadow being replaced).
  void maybeRebuild();

  [[nodiscard]] double demandAt(cellular::CellId cell, int k) const noexcept {
    return demand_[static_cast<std::size_t>(cell) *
                       static_cast<std::size_t>(config_.intervals) +
                   static_cast<std::size_t>(k)];
  }

  const cellular::HexNetwork& network_;
  SccConfig config_;
  std::unordered_map<cellular::CallId, Shadow> shadows_;
  /// Running per-(cell, interval) demand sums over all tracked shadows —
  /// what each BS would hold after accumulating every mobile's probability
  /// vector. Row-major: cell * intervals + k.
  std::vector<double> demand_;
  /// Precomputed cluster membership (cells within cluster_radius), so the
  /// decide() hot path never allocates.
  std::vector<std::vector<cellular::CellId>> clusters_;
  /// Precomputed accounting footprints (cells within reach hops), indexed
  /// by anchor cell; empty when reach == 0 (unbounded accounting) — then
  /// footprint() answers with all_cells_.
  std::vector<std::vector<cellular::CellId>> footprints_;
  std::vector<cellular::CellId> all_cells_;
  /// Shadow updates since the last exact rebuild of demand_.
  std::uint64_t updates_since_rebuild_ = 0;
};

/// Reconstructs a mobile's motion state from an admission snapshot taken
/// relative to \p station_position (heading = bearing-to-BS + angle).
[[nodiscard]] mobility::MotionState motionFromSnapshot(
    const cellular::UserSnapshot& snapshot,
    cellular::Vec2 station_position) noexcept;

}  // namespace facs::scc
