#include "scc/shadow_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "cellular/policy_registry.hpp"

namespace facs::scc {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::CallRequest;
using cellular::CellId;
using cellular::Vec2;

mobility::MotionState motionFromSnapshot(
    const cellular::UserSnapshot& snapshot,
    Vec2 station_position) noexcept {
  mobility::MotionState m;
  m.position_km = snapshot.position;
  m.speed_kmh = snapshot.speed_kmh;
  // snapshot.angle_deg = heading - bearing(user -> BS), so invert.
  m.heading_deg = cellular::normalizeAngleDeg(
      cellular::bearingDeg(snapshot.position, station_position) +
      snapshot.angle_deg);
  return m;
}

namespace {

void validateConfig(const SccConfig& config) {
  if (config.intervals < 1) {
    throw std::invalid_argument("SCC horizon must span >= 1 interval");
  }
  if (!(config.interval_s > 0.0)) {
    throw std::invalid_argument("SCC interval length must be positive");
  }
  if (!(config.threshold > 0.0)) {
    throw std::invalid_argument("SCC survivability threshold must be positive");
  }
  if (config.cluster_radius < 0) {
    throw std::invalid_argument("SCC cluster radius must be >= 0");
  }
  if (!(config.sigma_base_km > 0.0) || config.sigma_growth_km < 0.0) {
    throw std::invalid_argument("SCC spread parameters must be positive");
  }
  if (!(config.mean_holding_s > 0.0)) {
    throw std::invalid_argument("SCC mean holding time must be positive");
  }
  if (config.rebuild_every < 0) {
    throw std::invalid_argument("SCC rebuild period must be >= 0 (0 = off)");
  }
  if (config.reach < 0) {
    throw std::invalid_argument(
        "SCC accounting reach must be >= 0 (0 = unbounded)");
  }
}

}  // namespace

ShadowClusterController::ShadowClusterController(
    const cellular::HexNetwork& network, SccConfig config)
    : network_{network}, config_{config} {
  validateConfig(config_);
  demand_.assign(network_.cellCount() *
                     static_cast<std::size_t>(config_.intervals),
                 0.0);
  clusters_.resize(network_.cellCount());
  for (const cellular::Cell& center : network_.cells()) {
    for (const cellular::Cell& cell : network_.cells()) {
      if (cellular::hexDistance(center.coord, cell.coord) <=
          config_.cluster_radius) {
        clusters_[static_cast<std::size_t>(center.id)].push_back(cell.id);
      }
    }
  }
  all_cells_.reserve(network_.cellCount());
  for (const cellular::Cell& cell : network_.cells()) {
    all_cells_.push_back(cell.id);
  }
  if (config_.reach > 0) {
    footprints_.resize(network_.cellCount());
    for (const cellular::Cell& center : network_.cells()) {
      for (const cellular::Cell& cell : network_.cells()) {
        if (cellular::hexDistance(center.coord, cell.coord) <=
            config_.reach) {
          footprints_[static_cast<std::size_t>(center.id)].push_back(cell.id);
        }
      }
    }
  }
}

const std::vector<cellular::CellId>& ShadowClusterController::footprint(
    cellular::CellId anchor) const {
  if (footprints_.empty()) return all_cells_;
  return footprints_[static_cast<std::size_t>(anchor)];
}

double ShadowClusterController::contribution(const Shadow& shadow, CellId cell,
                                             int k) const {
  // Position is projected from the shadow's last report (admission or
  // handoff — when the original scheme's inter-BS messages refresh it);
  // activity decay is memoryless, so it only depends on how far into the
  // future we look.
  const double mid_of_interval_s = (k + 0.5) * config_.interval_s;
  const double p_active = std::exp(-mid_of_interval_s / config_.mean_holding_s);

  const Vec2 predicted =
      shadow.state.position_km +
      cellular::headingVector(shadow.state.heading_deg) *
          (shadow.state.speed_kmh / 3600.0 * mid_of_interval_s);

  const double sigma_km =
      config_.sigma_base_km + config_.sigma_growth_km * k;
  const double d_km = predicted.distanceTo(network_.cell(cell).center);
  // Unnormalized Gaussian kernel: each BS accumulates the probability that
  // the mobile shows up in *its* cell independently, which (like the
  // original scheme's per-BS bookkeeping) deliberately over-reserves when
  // a mobile threatens several cells at once.
  const double spatial = std::exp(-(d_km * d_km) / (2.0 * sigma_km * sigma_km));
  return shadow.demand_bu * p_active * spatial;
}

void ShadowClusterController::applyShadow(const Shadow& shadow, double sign) {
  // Group-local accounting: a bounded reach confines the write set to the
  // shadow's anchor neighbourhood (flat in the network size); reach = 0
  // visits every cell — the original global accumulation.
  for (const cellular::CellId cell : footprint(shadow.anchor)) {
    for (int k = 0; k < config_.intervals; ++k) {
      demand_[static_cast<std::size_t>(cell) *
                  static_cast<std::size_t>(config_.intervals) +
              static_cast<std::size_t>(k)] +=
          sign * contribution(shadow, cell, k);
    }
  }
  ++updates_since_rebuild_;
}

void ShadowClusterController::maybeRebuild() {
  if (config_.rebuild_every <= 0) return;
  if (updates_since_rebuild_ <
      static_cast<std::uint64_t>(config_.rebuild_every)) {
    return;
  }
  updates_since_rebuild_ = 0;

  // Canonical call order keeps the rebuilt sums independent of the hash
  // map's bucket history, so a rebuilt controller is reproducible from its
  // live shadow set alone.
  std::vector<cellular::CallId> ids;
  ids.reserve(shadows_.size());
  for (const auto& [id, shadow] : shadows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::fill(demand_.begin(), demand_.end(), 0.0);
  for (const cellular::CallId id : ids) {
    const Shadow& shadow = shadows_.find(id)->second;
    // The rebuild honours the same footprint as the incremental updates,
    // so it reconstructs exactly what they accumulated (minus the float
    // residue it exists to cancel).
    for (const cellular::CellId cell : footprint(shadow.anchor)) {
      for (int k = 0; k < config_.intervals; ++k) {
        demand_[static_cast<std::size_t>(cell) *
                    static_cast<std::size_t>(config_.intervals) +
                static_cast<std::size_t>(k)] +=
            contribution(shadow, cell, k);
      }
    }
  }
}

DemandProfile ShadowClusterController::projectedDemand(CellId cell) const {
  DemandProfile profile(static_cast<std::size_t>(config_.intervals), 0.0);
  for (int k = 0; k < config_.intervals; ++k) {
    profile[static_cast<std::size_t>(k)] = demandAt(cell, k);
  }
  return profile;
}

AdmissionDecision ShadowClusterController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  CellId center = request.target_cell;
  if (center == cellular::kInvalidCell) {
    const auto found = network_.cellAt(request.snapshot.position);
    center = found.value_or(context.station.cell());
  }

  Shadow tentative;
  tentative.state =
      motionFromSnapshot(request.snapshot, network_.cell(center).center);
  tentative.demand_bu = static_cast<double>(request.demand_bu);

  // A shadow cluster can only guarantee QoS inside the network: a mobile
  // predicted to exit coverage within the horizon is denied outright.
  if (config_.require_coverage) {
    for (int k = 0; k < config_.intervals; ++k) {
      const double tau_s = (k + 0.5) * config_.interval_s;
      const Vec2 predicted =
          tentative.state.position_km +
          cellular::headingVector(tentative.state.heading_deg) *
              (tentative.state.speed_kmh / 3600.0 * tau_s);
      if (!network_.cellAt(predicted)) {
        AdmissionDecision denial;
        denial.accept = false;
        denial.reason = cellular::ReasonCode::LeavesCoverage;
        denial.score = -1.0;
        if (context.explain) {
          denial.rationale = "predicted to leave coverage within the horizon";
        }
        return denial;
      }
    }
  }

  // Every cell of the tentative shadow cluster must be able to support the
  // projected demand over the whole horizon. Existing demand is the
  // incremental per-BS accumulator — an O(1) read per (cell, interval), so
  // the decision cost is flat in the number of tracked calls.
  double worst_headroom = std::numeric_limits<double>::infinity();
  for (const CellId cell : clusters_[static_cast<std::size_t>(center)]) {
    const double budget =
        config_.threshold *
        static_cast<double>(network_.station(cell).capacityBu());
    for (int k = 0; k < config_.intervals; ++k) {
      const double projected =
          demandAt(cell, k) + contribution(tentative, cell, k);
      worst_headroom = std::min(worst_headroom, budget - projected);
    }
  }

  const bool fits = context.station.canFit(request.demand_bu);
  AdmissionDecision decision;
  decision.accept = worst_headroom >= 0.0 && fits;
  decision.reason = decision.accept ? cellular::ReasonCode::Admitted
                    : fits          ? cellular::ReasonCode::ProjectedOverload
                                    : cellular::ReasonCode::NoCapacity;
  // Coarse confidence: headroom as a fraction of one cell's budget.
  const double budget =
      config_.threshold * static_cast<double>(context.station.capacityBu());
  decision.score = std::clamp(worst_headroom / budget, -1.0, 1.0);
  if (context.explain) {
    decision.rationale.appendf("worst-headroom=%g BU over %d intervals",
                               worst_headroom, config_.intervals);
    if (!fits) decision.rationale.appendf(" (no free BU)");
  }
  return decision;
}

void ShadowClusterController::onAdmitted(const CallRequest& request,
                                         const AdmissionContext& context) {
  CellId center = request.target_cell;
  if (center == cellular::kInvalidCell) center = context.station.cell();
  Shadow shadow;
  shadow.state =
      motionFromSnapshot(request.snapshot, network_.cell(center).center);
  shadow.demand_bu = static_cast<double>(request.demand_bu);
  shadow.anchor = center;
  // Handoffs refresh the kinematics of an already-tracked call: retract
  // the stale shadow from the accumulators before casting the new one.
  const auto [it, inserted] = shadows_.try_emplace(request.call, shadow);
  if (!inserted) {
    applyShadow(it->second, -1.0);
    it->second = shadow;
  }
  applyShadow(shadow, +1.0);
  maybeRebuild();
}

void ShadowClusterController::onReleased(const CallRequest& request,
                                         const AdmissionContext& /*context*/) {
  const auto it = shadows_.find(request.call);
  if (it == shadows_.end()) return;
  applyShadow(it->second, -1.0);
  shadows_.erase(it);
  maybeRebuild();
}

// ------------------------------------------------------------------------
namespace {

using cellular::PolicyRegistrar;
using cellular::PolicySpec;

const PolicyRegistrar register_scc{
    {"scc",
     "Shadow Cluster Concept (Levine et al. 1997): probabilistic demand "
     "projection over neighbouring cells.",
     "scc[:THETA][,theta=T,sigma=S,growth=G,intervals=N,interval-s=S,"
     "radius=R,holding=S,coverage=0|1,rebuild=N,reach=N]"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(1, {"theta", "sigma", "growth", "intervals",
                          "interval-s", "radius", "holding", "coverage",
                          "rebuild", "reach"});
      SccConfig cfg;
      cfg.threshold = spec.numberFor("theta", spec.numberAt(0, cfg.threshold));
      cfg.sigma_base_km = spec.numberFor("sigma", cfg.sigma_base_km);
      cfg.sigma_growth_km = spec.numberFor("growth", cfg.sigma_growth_km);
      cfg.intervals = spec.intFor("intervals", cfg.intervals);
      cfg.interval_s = spec.numberFor("interval-s", cfg.interval_s);
      cfg.cluster_radius = spec.intFor("radius", cfg.cluster_radius);
      cfg.mean_holding_s = spec.numberFor("holding", cfg.mean_holding_s);
      cfg.require_coverage =
          spec.intFor("coverage", cfg.require_coverage ? 1 : 0) != 0;
      cfg.rebuild_every = spec.intFor("rebuild", cfg.rebuild_every);
      cfg.reach = spec.intFor("reach", cfg.reach);
      try {
        validateConfig(cfg);  // fail at parse time, not mid-run
      } catch (const std::invalid_argument& e) {
        throw cellular::PolicySpecError(std::string{"policy 'scc': "} +
                                        e.what());
      }
      return [cfg](const cellular::HexNetwork& net) {
        return std::make_unique<ShadowClusterController>(net, cfg);
      };
    }};

}  // namespace

}  // namespace facs::scc
