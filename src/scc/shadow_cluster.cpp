#include "scc/shadow_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cellular/policy_registry.hpp"
#include "sim/reservation.hpp"  // mergeCombine — the barrier's combining shape

namespace facs::scc {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::CallRequest;
using cellular::CellId;
using cellular::Vec2;

mobility::MotionState motionFromSnapshot(
    const cellular::UserSnapshot& snapshot,
    Vec2 station_position) noexcept {
  mobility::MotionState m;
  m.position_km = snapshot.position;
  m.speed_kmh = snapshot.speed_kmh;
  // snapshot.angle_deg = heading - bearing(user -> BS), so invert.
  m.heading_deg = cellular::normalizeAngleDeg(
      cellular::bearingDeg(snapshot.position, station_position) +
      snapshot.angle_deg);
  return m;
}

namespace {

void validateConfig(const SccConfig& config) {
  if (config.intervals < 1) {
    throw std::invalid_argument("SCC horizon must span >= 1 interval");
  }
  if (!(config.interval_s > 0.0)) {
    throw std::invalid_argument("SCC interval length must be positive");
  }
  if (!(config.threshold > 0.0)) {
    throw std::invalid_argument("SCC survivability threshold must be positive");
  }
  if (config.cluster_radius < 0) {
    throw std::invalid_argument("SCC cluster radius must be >= 0");
  }
  if (!(config.sigma_base_km > 0.0) || config.sigma_growth_km < 0.0) {
    throw std::invalid_argument("SCC spread parameters must be positive");
  }
  if (!(config.mean_holding_s > 0.0)) {
    throw std::invalid_argument("SCC mean holding time must be positive");
  }
  if (config.rebuild_every < 0) {
    throw std::invalid_argument("SCC rebuild period must be >= 0 (0 = off)");
  }
  if (config.reach < 0) {
    throw std::invalid_argument(
        "SCC accounting reach must be >= 0 (0 = unbounded)");
  }
}

}  // namespace

ShadowClusterController::ShadowClusterController(
    const cellular::HexNetwork& network, SccConfig config)
    : network_{network}, config_{config} {
  validateConfig(config_);
  demand_.assign(network_.cellCount() *
                     static_cast<std::size_t>(config_.intervals),
                 0.0);
  clusters_.resize(network_.cellCount());
  for (const cellular::Cell& center : network_.cells()) {
    for (const cellular::Cell& cell : network_.cells()) {
      if (cellular::hexDistance(center.coord, cell.coord) <=
          config_.cluster_radius) {
        clusters_[static_cast<std::size_t>(center.id)].push_back(cell.id);
      }
    }
  }
  all_cells_.reserve(network_.cellCount());
  for (const cellular::Cell& cell : network_.cells()) {
    all_cells_.push_back(cell.id);
  }
  if (config_.reach > 0) {
    footprints_.resize(network_.cellCount());
    for (const cellular::Cell& center : network_.cells()) {
      for (const cellular::Cell& cell : network_.cells()) {
        if (cellular::hexDistance(center.coord, cell.coord) <=
            config_.reach) {
          footprints_[static_cast<std::size_t>(center.id)].push_back(cell.id);
        }
      }
    }
  }
}

const std::vector<cellular::CellId>& ShadowClusterController::footprint(
    cellular::CellId anchor) const {
  if (footprints_.empty()) return all_cells_;
  return footprints_[static_cast<std::size_t>(anchor)];
}

double ShadowClusterController::contribution(const Shadow& shadow, CellId cell,
                                             int k) const {
  // Position is projected from the shadow's last report (admission or
  // handoff — when the original scheme's inter-BS messages refresh it);
  // activity decay is memoryless, so it only depends on how far into the
  // future we look.
  const double mid_of_interval_s = (k + 0.5) * config_.interval_s;
  const double p_active = std::exp(-mid_of_interval_s / config_.mean_holding_s);

  const Vec2 predicted =
      shadow.state.position_km +
      cellular::headingVector(shadow.state.heading_deg) *
          (shadow.state.speed_kmh / 3600.0 * mid_of_interval_s);

  const double sigma_km =
      config_.sigma_base_km + config_.sigma_growth_km * k;
  const double d_km = predicted.distanceTo(network_.cell(cell).center);
  // Unnormalized Gaussian kernel: each BS accumulates the probability that
  // the mobile shows up in *its* cell independently, which (like the
  // original scheme's per-BS bookkeeping) deliberately over-reserves when
  // a mobile threatens several cells at once.
  const double spatial = std::exp(-(d_km * d_km) / (2.0 * sigma_km * sigma_km));
  return shadow.demand_bu * p_active * spatial;
}

void ShadowClusterController::applyShadow(const Shadow& shadow, double sign) {
  // Group-local accounting: a bounded reach confines the write set to the
  // shadow's anchor neighbourhood (flat in the network size); reach = 0
  // visits every cell — the original global accumulation.
  for (const cellular::CellId cell : footprint(shadow.anchor)) {
    for (int k = 0; k < config_.intervals; ++k) {
      demand_[static_cast<std::size_t>(cell) *
                  static_cast<std::size_t>(config_.intervals) +
              static_cast<std::size_t>(k)] +=
          sign * contribution(shadow, cell, k);
    }
  }
  ++updates_since_rebuild_;
}

void ShadowClusterController::applyShadowGrouped(const Shadow& shadow,
                                                 double sign) {
  // The acting group is the shadow's anchor group — the lane (or drain)
  // that owns stores_[g] and therefore this call's commit. Footprint rows
  // the partition maps to the same group are the lane's own: write live.
  // Rows across a boundary belong to another lane's cells; deferring them
  // into the acting group's buffer keeps every demand_ row single-writer
  // during the parallel phase, and the barrier folds the buffers in
  // canonical order so the float sums stay shard-invariant.
  const int g = partition_->groupOf(shadow.anchor);
  std::vector<DemandDelta>& defer = deferred_[static_cast<std::size_t>(g)];
  for (const cellular::CellId cell : footprint(shadow.anchor)) {
    const bool own_row = partition_->groupOf(cell) == g;
    for (int k = 0; k < config_.intervals; ++k) {
      const double value = sign * contribution(shadow, cell, k);
      if (own_row) {
        demand_[demandIndex(cell, k)] += value;
      } else {
        DemandDelta delta;
        delta.cell = cell;
        delta.k = k;
        delta.value = value;
        delta.group = g;
        delta.seq = static_cast<std::uint32_t>(defer.size());
        defer.push_back(delta);
      }
    }
  }
  ++stores_[static_cast<std::size_t>(g)].updates_since_rebuild;
}

void ShadowClusterController::maybeRebuild() {
  if (config_.rebuild_every <= 0) return;
  if (updates_since_rebuild_ <
      static_cast<std::uint64_t>(config_.rebuild_every)) {
    return;
  }
  updates_since_rebuild_ = 0;

  // Canonical call order keeps the rebuilt sums independent of the hash
  // map's bucket history, so a rebuilt controller is reproducible from its
  // live shadow set alone.
  std::vector<cellular::CallId> ids;
  ids.reserve(shadows_.size());
  for (const auto& [id, shadow] : shadows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::fill(demand_.begin(), demand_.end(), 0.0);
  for (const cellular::CallId id : ids) {
    const Shadow& shadow = shadows_.find(id)->second;
    // The rebuild honours the same footprint as the incremental updates,
    // so it reconstructs exactly what they accumulated (minus the float
    // residue it exists to cancel).
    for (const cellular::CellId cell : footprint(shadow.anchor)) {
      for (int k = 0; k < config_.intervals; ++k) {
        demand_[static_cast<std::size_t>(cell) *
                    static_cast<std::size_t>(config_.intervals) +
                static_cast<std::size_t>(k)] +=
            contribution(shadow, cell, k);
      }
    }
  }
}

void ShadowClusterController::maybeRebuildGrouped() {
  if (config_.rebuild_every <= 0) return;
  for (std::size_t g = 0; g < stores_.size(); ++g) {
    GroupStore& due = stores_[g];
    if (due.updates_since_rebuild <
        static_cast<std::uint64_t>(config_.rebuild_every)) {
      continue;
    }
    due.updates_since_rebuild = 0;
    // Zero exactly the rows this group owns, then re-accumulate every
    // tracked shadow's contribution to those rows (stores in index order,
    // canonical call order within each) — the same sums the incremental
    // updates built there, minus the float residue. Other groups' rows are
    // untouched: their residue ages on their own counters.
    for (const cellular::CellId cell : all_cells_) {
      if (partition_->groupOf(cell) != static_cast<int>(g)) continue;
      for (int k = 0; k < config_.intervals; ++k) {
        demand_[demandIndex(cell, k)] = 0.0;
      }
    }
    std::vector<cellular::CallId> ids;
    for (const GroupStore& store : stores_) {
      ids.clear();
      ids.reserve(store.shadows.size());
      for (const auto& [id, shadow] : store.shadows) ids.push_back(id);
      std::sort(ids.begin(), ids.end());
      for (const cellular::CallId id : ids) {
        const Shadow& shadow = store.shadows.find(id)->second;
        for (const cellular::CellId cell : footprint(shadow.anchor)) {
          if (partition_->groupOf(cell) != static_cast<int>(g)) continue;
          for (int k = 0; k < config_.intervals; ++k) {
            demand_[demandIndex(cell, k)] += contribution(shadow, cell, k);
          }
        }
      }
    }
  }
}

DemandProfile ShadowClusterController::projectedDemand(CellId cell) const {
  DemandProfile profile(static_cast<std::size_t>(config_.intervals), 0.0);
  for (int k = 0; k < config_.intervals; ++k) {
    profile[static_cast<std::size_t>(k)] = demandAt(cell, k);
  }
  return profile;
}

AdmissionDecision ShadowClusterController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  CellId center = request.target_cell;
  if (center == cellular::kInvalidCell) {
    const auto found = network_.cellAt(request.snapshot.position);
    center = found.value_or(context.station.cell());
  }

  Shadow tentative;
  tentative.state =
      motionFromSnapshot(request.snapshot, network_.cell(center).center);
  tentative.demand_bu = static_cast<double>(request.demand_bu);

  // A shadow cluster can only guarantee QoS inside the network: a mobile
  // predicted to exit coverage within the horizon is denied outright.
  if (config_.require_coverage) {
    for (int k = 0; k < config_.intervals; ++k) {
      const double tau_s = (k + 0.5) * config_.interval_s;
      const Vec2 predicted =
          tentative.state.position_km +
          cellular::headingVector(tentative.state.heading_deg) *
              (tentative.state.speed_kmh / 3600.0 * tau_s);
      if (!network_.cellAt(predicted)) {
        AdmissionDecision denial;
        denial.accept = false;
        denial.reason = cellular::ReasonCode::LeavesCoverage;
        denial.score = -1.0;
        if (context.explain) {
          denial.rationale = "predicted to leave coverage within the horizon";
        }
        return denial;
      }
    }
  }

  // Every cell of the tentative shadow cluster must be able to support the
  // projected demand over the whole horizon. Existing demand is the
  // incremental per-BS accumulator — an O(1) read per (cell, interval), so
  // the decision cost is flat in the number of tracked calls. Grouped runs
  // read the acting group's own rows live and foreign-group rows from the
  // barrier snapshot (the same visibility the engine's reservations give
  // cross-group ledger state).
  const int g = grouped() ? partition_->groupOf(center) : -1;
  double worst_headroom = std::numeric_limits<double>::infinity();
  for (const CellId cell : clusters_[static_cast<std::size_t>(center)]) {
    const double budget =
        config_.threshold *
        static_cast<double>(network_.station(cell).capacityBu());
    for (int k = 0; k < config_.intervals; ++k) {
      const double projected =
          demandRead(g, cell, k) + contribution(tentative, cell, k);
      worst_headroom = std::min(worst_headroom, budget - projected);
    }
  }

  const bool fits = context.station.canFit(request.demand_bu);
  AdmissionDecision decision;
  decision.accept = worst_headroom >= 0.0 && fits;
  decision.reason = decision.accept ? cellular::ReasonCode::Admitted
                    : fits          ? cellular::ReasonCode::ProjectedOverload
                                    : cellular::ReasonCode::NoCapacity;
  // Coarse confidence: headroom as a fraction of one cell's budget.
  const double budget =
      config_.threshold * static_cast<double>(context.station.capacityBu());
  decision.score = std::clamp(worst_headroom / budget, -1.0, 1.0);
  if (context.explain) {
    decision.rationale.appendf("worst-headroom=%g BU over %d intervals",
                               worst_headroom, config_.intervals);
    if (!fits) decision.rationale.appendf(" (no free BU)");
  }
  return decision;
}

void ShadowClusterController::onAdmitted(const CallRequest& request,
                                         const AdmissionContext& context) {
  CellId center = request.target_cell;
  if (center == cellular::kInvalidCell) center = context.station.cell();
  Shadow shadow;
  shadow.state =
      motionFromSnapshot(request.snapshot, network_.cell(center).center);
  shadow.demand_bu = static_cast<double>(request.demand_bu);
  shadow.anchor = center;
  if (grouped()) {
    const int g = partition_->groupOf(center);
    GroupStore& store = stores_[static_cast<std::size_t>(g)];
    const auto [it, inserted] = store.shadows.try_emplace(request.call, shadow);
    if (!inserted) {
      // Same-group handoff refresh: the stale shadow lives in the acting
      // group's own store — retract it in-lane before casting the new one.
      applyShadowGrouped(it->second, -1.0);
      it->second = shadow;
    } else if (request.is_handoff) {
      // The refresh crossed a group boundary: the stale record is anchored
      // in a foreign store this lane must not touch. Cast the new shadow
      // now; leave a migration record so the barrier retracts and erases
      // the old one (demand_ conserved — its contribution stays folded in
      // until exactly then).
      migrations_[static_cast<std::size_t>(g)].push_back({request.call, g});
    }
    applyShadowGrouped(shadow, +1.0);
    return;  // grouped rebuilds run per group at the barrier
  }
  // Handoffs refresh the kinematics of an already-tracked call: retract
  // the stale shadow from the accumulators before casting the new one.
  const auto [it, inserted] = shadows_.try_emplace(request.call, shadow);
  if (!inserted) {
    applyShadow(it->second, -1.0);
    it->second = shadow;
  }
  applyShadow(shadow, +1.0);
  maybeRebuild();
}

void ShadowClusterController::onReleased(const CallRequest& request,
                                         const AdmissionContext& context) {
  if (grouped()) {
    // The release reaches us in the lane (or drain) acting for the cell
    // the call occupied — which is the shadow's anchor (both are set by
    // the same last admission), so the lookup stays inside the acting
    // group's own store. A miss means the call was never tracked (e.g.
    // released before any grouped admission): nothing to retract.
    CellId cell = request.target_cell;
    if (cell == cellular::kInvalidCell) cell = context.station.cell();
    GroupStore& store =
        stores_[static_cast<std::size_t>(partition_->groupOf(cell))];
    const auto it = store.shadows.find(request.call);
    if (it == store.shadows.end()) return;
    applyShadowGrouped(it->second, -1.0);
    store.shadows.erase(it);
    return;
  }
  const auto it = shadows_.find(request.call);
  if (it == shadows_.end()) return;
  applyShadow(it->second, -1.0);
  shadows_.erase(it);
  maybeRebuild();
}

void ShadowClusterController::onPartitionChanged(
    const cellular::CellGroupPartition& p) {
  if (config_.reach <= 0) return;  // Global scope: no grouped state to key
  if (grouped()) {
    // The engine drains the policy barrier before adopting a repartition,
    // so this is normally a no-op; a direct driver (unit tests) may still
    // have deferred work keyed to the old mapping — fold it first, under
    // that mapping, or the delta targets would be re-homed out from under
    // the buffered records.
    (void)drainBarrierWork();
  }
  // Canonical call order makes the re-keyed stores — and every later
  // rebuild walking them — independent of hash-map bucket history.
  std::vector<std::pair<cellular::CallId, Shadow>> tracked;
  tracked.reserve(trackedCalls());
  for (const auto& [id, shadow] : shadows_) tracked.emplace_back(id, shadow);
  for (const GroupStore& store : stores_) {
    for (const auto& [id, shadow] : store.shadows) {
      tracked.emplace_back(id, shadow);
    }
  }
  std::sort(tracked.begin(), tracked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  shadows_.clear();
  stores_.clear();
  deferred_.clear();
  migrations_.clear();
  partition_ = p;  // copy: the engine's reference dies with this call
  if (!grouped()) {
    // One group: the legacy single-map path stays authoritative, keeping
    // commit_groups == 1 bit-identical to the pre-grouped controller.
    for (auto& [id, shadow] : tracked) shadows_.emplace(id, shadow);
    snapshot_.clear();
    return;
  }
  stores_.resize(static_cast<std::size_t>(partition_->groups()));
  deferred_.resize(stores_.size());
  migrations_.resize(stores_.size());
  for (auto& [id, shadow] : tracked) {
    stores_[static_cast<std::size_t>(partition_->groupOf(shadow.anchor))]
        .shadows.emplace(id, shadow);
  }
  // demand_ is deliberately untouched: every tracked contribution is
  // already folded in, so total projected demand is conserved EXACTLY
  // across the re-key (the migration moves records, not float sums). The
  // per-group rebuild counters restart at zero — deterministic.
  snapshot_ = demand_;
}

cellular::BarrierDrainStats ShadowClusterController::onCommitBarrier(
    double /*now_s*/) {
  if (!grouped()) return {};
  const cellular::BarrierDrainStats stats = drainBarrierWork();
  maybeRebuildGrouped();
  // The next window's foreign-row reads see everything up to this barrier
  // and nothing later — reservation visibility, for demand rows.
  snapshot_ = demand_;
  return stats;
}

cellular::BarrierDrainStats ShadowClusterController::drainBarrierWork() {
  cellular::BarrierDrainStats stats;
  // Fold the deferred cross-group writes: sort each acting group's buffer
  // by the canonical (cell, interval, group, seq) key, tree-combine pairs
  // of sorted runs (the reservation drain's combining shape), then apply
  // serially. The fold order is a pure function of the committed event
  // sequence, so the float sums are reproducible at any shard count.
  bool any = false;
  for (std::vector<DemandDelta>& buffer : deferred_) {
    if (!buffer.empty()) {
      std::sort(buffer.begin(), buffer.end(), DemandDeltaEarlier{});
      any = true;
    }
  }
  if (any) {
    for (std::size_t step = 1; step < deferred_.size(); step *= 2) {
      for (std::size_t g = 0; g + step < deferred_.size(); g += 2 * step) {
        sim::mergeCombine(deferred_[g], deferred_[g + step],
                          DemandDeltaEarlier{});
      }
    }
    for (const DemandDelta& delta : deferred_[0]) {
      demand_[demandIndex(delta.cell, delta.k)] += delta.value;
    }
    stats.deltas_applied = deferred_[0].size();
    deferred_[0].clear();
  }
  // Re-home boundary-crossing handoff refreshes: the fresh shadow already
  // sits in stores_[to_group]; the stale record under the old anchor still
  // holds its contribution in a foreign store. Serial context — retract
  // those rows live and erase it (groups ascending, append order within).
  for (std::vector<Migration>& moves : migrations_) {
    for (const Migration& move : moves) {
      for (std::size_t s = 0; s < stores_.size(); ++s) {
        if (static_cast<int>(s) == move.to_group) continue;
        GroupStore& store = stores_[s];
        const auto it = store.shadows.find(move.call);
        if (it == store.shadows.end()) continue;
        for (const cellular::CellId cell : footprint(it->second.anchor)) {
          for (int k = 0; k < config_.intervals; ++k) {
            demand_[demandIndex(cell, k)] -=
                contribution(it->second, cell, k);
          }
        }
        ++store.updates_since_rebuild;
        store.shadows.erase(it);
        ++stats.shadows_migrated;
        break;
      }
    }
    moves.clear();
  }
  return stats;
}

std::string ShadowClusterController::auditWorkload(
    const cellular::WorkloadEnvelope& envelope) const {
  if (config_.reach <= 0) return {};  // unbounded accounting: nothing to cut
  if (!(envelope.v_max_kmh > 0.0) || !(envelope.cell_radius_km > 0.0)) {
    return {};  // envelope unknown: no basis to audit against
  }
  // One hex hop between cell centres is sqrt(3) x circumradius; the
  // fastest mobile travels v_max x horizon within the projection window.
  const double pitch_km = std::sqrt(3.0) * envelope.cell_radius_km;
  const double horizon_s = config_.intervals * config_.interval_s;
  const double travel_km = envelope.v_max_kmh / 3600.0 * horizon_s;
  const int needed = static_cast<int>(std::ceil(travel_km / pitch_km)) + 1;
  if (config_.reach >= needed) return {};
  std::ostringstream os;
  os << "SCC reach=" << config_.reach
     << " is smaller than the projection horizon needs (reach >= " << needed
     << " for v_max=" << envelope.v_max_kmh << " km/h over " << horizon_s
     << " s): predicted cells of fast mobiles fall outside the accounting "
        "footprint, silently disabling their predictive reservations";
  return os.str();
}

// ------------------------------------------------------------------------
namespace {

using cellular::PolicyRegistrar;
using cellular::PolicySpec;

const PolicyRegistrar register_scc{
    {"scc",
     "Shadow Cluster Concept (Levine et al. 1997): probabilistic demand "
     "projection over neighbouring cells.",
     "scc[:THETA][,theta=T,sigma=S,growth=G,intervals=N,interval-s=S,"
     "radius=R,holding=S,coverage=0|1,rebuild=N,reach=N]"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(1, {"theta", "sigma", "growth", "intervals",
                          "interval-s", "radius", "holding", "coverage",
                          "rebuild", "reach"});
      SccConfig cfg;
      cfg.threshold = spec.numberFor("theta", spec.numberAt(0, cfg.threshold));
      cfg.sigma_base_km = spec.numberFor("sigma", cfg.sigma_base_km);
      cfg.sigma_growth_km = spec.numberFor("growth", cfg.sigma_growth_km);
      cfg.intervals = spec.intFor("intervals", cfg.intervals);
      cfg.interval_s = spec.numberFor("interval-s", cfg.interval_s);
      cfg.cluster_radius = spec.intFor("radius", cfg.cluster_radius);
      cfg.mean_holding_s = spec.numberFor("holding", cfg.mean_holding_s);
      cfg.require_coverage =
          spec.intFor("coverage", cfg.require_coverage ? 1 : 0) != 0;
      cfg.rebuild_every = spec.intFor("rebuild", cfg.rebuild_every);
      cfg.reach = spec.intFor("reach", cfg.reach);
      try {
        validateConfig(cfg);  // fail at parse time, not mid-run
      } catch (const std::invalid_argument& e) {
        throw cellular::PolicySpecError(std::string{"policy 'scc': "} +
                                        e.what());
      }
      return [cfg](const cellular::HexNetwork& net) {
        return std::make_unique<ShadowClusterController>(net, cfg);
      };
    }};

}  // namespace

}  // namespace facs::scc
