#include "cac/sir_controller.hpp"

#include <algorithm>
#include <sstream>

namespace facs::cac {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::CallRequest;

SirController::SirController(const cellular::RadioModel& radio,
                             SirThresholds thresholds)
    : radio_{radio}, thresholds_{thresholds} {}

AdmissionDecision SirController::decide(const CallRequest& request,
                                        const AdmissionContext& context) {
  const double sinr_db =
      radio_.sinrDb(request.snapshot.position, context.station.cell());
  const double needed_db = threshold(request.service);
  const bool clean_enough = sinr_db >= needed_db;
  const bool fits = context.station.canFit(request.demand_bu);

  AdmissionDecision d;
  d.accept = clean_enough && fits;
  // Confidence: SINR margin scaled into [-1, 1] over a 10 dB window.
  d.score = std::clamp((sinr_db - needed_db) / 10.0, -1.0, 1.0);
  std::ostringstream os;
  os << "sinr=" << sinr_db << "dB need=" << needed_db << "dB";
  if (!fits) os << " (no free BU)";
  d.rationale = os.str();
  return d;
}

}  // namespace facs::cac
