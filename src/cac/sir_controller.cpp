#include "cac/sir_controller.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "cellular/network.hpp"
#include "cellular/policy_registry.hpp"

namespace facs::cac {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::CallRequest;
using cellular::ReasonCode;

SirController::SirController(const cellular::RadioModel& radio,
                             SirThresholds thresholds)
    : radio_{radio}, thresholds_{thresholds} {}

AdmissionDecision SirController::decide(const CallRequest& request,
                                        const AdmissionContext& context) {
  const double sinr_db =
      radio_.sinrDb(request.snapshot.position, context.station.cell());
  const double needed_db = threshold(request.service);
  const bool clean_enough = sinr_db >= needed_db;
  const bool fits = context.station.canFit(request.demand_bu);

  AdmissionDecision d;
  d.accept = clean_enough && fits;
  d.reason = d.accept         ? ReasonCode::Admitted
             : !clean_enough  ? ReasonCode::SinrTooLow
                              : ReasonCode::NoCapacity;
  // Confidence: SINR margin scaled into [-1, 1] over a 10 dB window.
  d.score = std::clamp((sinr_db - needed_db) / 10.0, -1.0, 1.0);
  if (context.explain) {
    std::ostringstream os;
    os << "sinr=" << sinr_db << "dB need=" << needed_db << "dB";
    if (!fits) os << " (no free BU)";
    d.rationale = os.str();
  }
  return d;
}

// ------------------------------------------------------------------------
namespace {

using cellular::PolicyRegistrar;
using cellular::PolicySpec;

/// SirController bundled with the radio model it consults, so the registry
/// can hand out self-contained controllers (the inner controller holds a
/// reference into this wrapper).
class StandaloneSirController final : public cellular::AdmissionController {
 public:
  explicit StandaloneSirController(const cellular::HexNetwork& net,
                                   SirThresholds thresholds)
      : radio_{net}, inner_{radio_, thresholds} {}

  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] AdmissionDecision decide(
      const CallRequest& request, const AdmissionContext& context) override {
    return inner_.decide(request, context);
  }

 private:
  cellular::RadioModel radio_;
  SirController inner_;
};

const PolicyRegistrar register_sir{
    {"sir",
     "SIR-based CAC: admit only when downlink SINR clears a per-class "
     "threshold and the bandwidth fits.",
     "sir[:T_text,T_voice,T_video]  (min SINR dB, default -3,1,5)"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(cellular::kServiceClassCount, {});
      if (!spec.positional().empty() &&
          spec.positionalCount() != cellular::kServiceClassCount) {
        throw cellular::PolicySpecError(
            "policy 'sir': expects exactly " +
            std::to_string(cellular::kServiceClassCount) +
            " SINR thresholds (text, voice, video)");
      }
      SirThresholds thresholds;
      for (std::size_t i = 0; i < spec.positionalCount(); ++i) {
        thresholds.min_sinr_db[i] = spec.numberAt(i, thresholds.min_sinr_db[i]);
      }
      return [thresholds](const cellular::HexNetwork& net) {
        return std::make_unique<StandaloneSirController>(net, thresholds);
      };
    }};

}  // namespace

}  // namespace facs::cac
