#include "cac/sir_controller.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cellular/network.hpp"
#include "cellular/policy_registry.hpp"

namespace facs::cac {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::CallRequest;
using cellular::CellId;
using cellular::ReasonCode;

SirController::SirController(const cellular::RadioModel& radio,
                             SirThresholds thresholds)
    : radio_{radio}, thresholds_{thresholds} {}

AdmissionDecision SirController::decide(const CallRequest& request,
                                        const AdmissionContext& context) {
  const CellId serving = context.station.cell();
  double sinr_db;
  if (!grouped()) {
    sinr_db = radio_.sinrDb(request.snapshot.position, serving);
  } else {
    // GroupLocal read discipline: own-group utilizations live (this lane
    // owns their ledgers for the window), foreign groups from the barrier
    // snapshot. Same interferer walk and arithmetic as sinrDb(), so a
    // single-group partition reproduces the Global path bit-for-bit.
    const int my_group = group_of_[serving];
    const cellular::HexNetwork& net = radio_.network();
    sinr_db = radio_.sinrDbWith(
        request.snapshot.position, serving, [&](CellId cell) {
          return group_of_[cell] == my_group ? net.station(cell).utilization()
                                             : snapshot_[cell];
        });
  }
  const double needed_db = threshold(request.service);
  const bool clean_enough = sinr_db >= needed_db;
  const bool fits = context.station.canFit(request.demand_bu);

  AdmissionDecision d;
  d.accept = clean_enough && fits;
  d.reason = d.accept         ? ReasonCode::Admitted
             : !clean_enough  ? ReasonCode::SinrTooLow
                              : ReasonCode::NoCapacity;
  // Confidence: SINR margin scaled into [-1, 1] over a 10 dB window.
  d.score = std::clamp((sinr_db - needed_db) / 10.0, -1.0, 1.0);
  if (context.explain) {
    d.rationale.appendf("sinr=%gdB need=%gdB", sinr_db, needed_db);
    if (!fits) d.rationale.appendf(" (no free BU)");
  }
  return d;
}

void SirController::onPartitionChanged(
    const cellular::CellGroupPartition& partition) {
  const std::size_t cells = radio_.network().cellCount();
  partition_groups_ = partition.groups();
  group_of_.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    group_of_[c] = partition.groupOf(static_cast<CellId>(c));
  }
  // Barrier context: ledgers are quiescent, so priming the snapshot here
  // (startup and every adopted repartition epoch) is race-free and leaves
  // no stale rows behind a re-keyed group map.
  snapshot_.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    snapshot_[c] = radio_.network().station(static_cast<CellId>(c)).utilization();
  }
}

cellular::BarrierDrainStats SirController::onCommitBarrier(double /*now_s*/) {
  // Only the grouped read path consumes the snapshot; a Global-scoped run
  // (radius 0) must stay byte-for-byte on the legacy metrics too, so leave
  // its counters untouched.
  if (!grouped()) return {};
  cellular::BarrierDrainStats stats;
  const cellular::HexNetwork& net = radio_.network();
  for (std::size_t c = 0; c < snapshot_.size(); ++c) {
    const double live = net.station(static_cast<CellId>(c)).utilization();
    if (snapshot_[c] != live) {
      snapshot_[c] = live;
      ++stats.deltas_applied;
    }
  }
  return stats;
}

std::string SirController::auditWorkload(
    const cellular::WorkloadEnvelope& /*envelope*/) const {
  const int radius = radio_.config().interference_radius_hops;
  if (radius <= 0) return {};  // exact sum: nothing truncated
  const double tail_mw = radio_.truncationTailBoundMw();
  const double noise_mw = radio_.noiseFloorMw();
  if (!(noise_mw > 0.0) || tail_mw <= kTailNoiseFractionLimit * noise_mw) {
    return {};
  }
  char buf[208];
  std::snprintf(
      buf, sizeof buf,
      "SIR radius=%d can discard a worst-case interference tail of %.3gx "
      "the thermal noise floor (documented limit %gx): bounded-footprint "
      "SINR overstates edge-user quality by up to %.1f dB; raise radius or "
      "use radius=0 for the exact sum",
      radius, tail_mw / noise_mw, kTailNoiseFractionLimit,
      10.0 * std::log10(1.0 + tail_mw / noise_mw));
  return buf;
}

// ------------------------------------------------------------------------
namespace {

using cellular::PolicyRegistrar;
using cellular::PolicySpec;

/// SirController bundled with the radio model it consults, so the registry
/// can hand out self-contained controllers (the inner controller holds a
/// reference into this wrapper). Forwards the FULL controller protocol —
/// scope, precompute, lifecycle hooks, partition/barrier hooks, audit — so
/// a registry-built `sir` is indistinguishable from a directly-constructed
/// one (the grouped commit path depends on it).
class StandaloneSirController final : public cellular::AdmissionController {
 public:
  StandaloneSirController(const cellular::HexNetwork& net,
                          cellular::RadioConfig radio_config,
                          SirThresholds thresholds)
      : radio_{net, radio_config}, inner_{radio_, thresholds} {}

  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return inner_.commitScope();
  }
  [[nodiscard]] AdmissionDecision decide(
      const CallRequest& request, const AdmissionContext& context) override {
    return inner_.decide(request, context);
  }
  [[nodiscard]] cellular::PredictedCv precompute(
      const cellular::UserSnapshot& user) const override {
    return inner_.precompute(user);
  }
  void onAdmitted(const CallRequest& request,
                  const AdmissionContext& context) override {
    inner_.onAdmitted(request, context);
  }
  void onReleased(const CallRequest& request,
                  const AdmissionContext& context) override {
    inner_.onReleased(request, context);
  }
  void onRejected(const CallRequest& request,
                  const AdmissionContext& context) override {
    inner_.onRejected(request, context);
  }
  void onPartitionChanged(
      const cellular::CellGroupPartition& partition) override {
    inner_.onPartitionChanged(partition);
  }
  cellular::BarrierDrainStats onCommitBarrier(double now_s) override {
    return inner_.onCommitBarrier(now_s);
  }
  [[nodiscard]] std::string auditWorkload(
      const cellular::WorkloadEnvelope& envelope) const override {
    return inner_.auditWorkload(envelope);
  }

 private:
  cellular::RadioModel radio_;
  SirController inner_;
};

const PolicyRegistrar register_sir{
    {"sir",
     "SIR-based CAC: admit only when downlink SINR clears a per-class "
     "threshold and the bandwidth fits.",
     "sir[:T_text,T_voice,T_video][,radius=R]  (min SINR dB, default "
     "-3,1,5; R hops bound the interference sum, 0 = whole network)"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(cellular::kServiceClassCount, {"radius"});
      if (!spec.positional().empty() &&
          spec.positionalCount() != cellular::kServiceClassCount) {
        throw cellular::PolicySpecError(
            "policy 'sir': expects exactly " +
            std::to_string(cellular::kServiceClassCount) +
            " SINR thresholds (text, voice, video)");
      }
      SirThresholds thresholds;
      for (std::size_t i = 0; i < spec.positionalCount(); ++i) {
        thresholds.min_sinr_db[i] = spec.numberAt(i, thresholds.min_sinr_db[i]);
      }
      const int radius = spec.intFor("radius", 0);
      if (radius < 0) {
        throw cellular::PolicySpecError(
            "policy 'sir': radius must be >= 0 hops");
      }
      return [thresholds, radius](const cellular::HexNetwork& net) {
        cellular::RadioConfig radio_config;
        radio_config.interference_radius_hops = radius;
        return std::make_unique<StandaloneSirController>(net, radio_config,
                                                         thresholds);
      };
    }};

}  // namespace

}  // namespace facs::cac
