#pragma once
/// \file predictive_reservation.hpp
/// Mobility-based predictive bandwidth reservation, after Yu & Leung
/// (INFOCOM 2001) — reference [7] of the paper. Each admitted mobile's
/// velocity predicts its most likely next cell; that cell reserves a
/// fraction of the call's bandwidth for the expected handoff. New calls
/// are admitted only if they fit alongside the cell's outstanding
/// reservations; handoffs may consume the reservations (that is what they
/// are for).

#include <unordered_map>

#include "cellular/admission.hpp"
#include "cellular/network.hpp"

namespace facs::cac {

struct PredictiveReservationConfig {
  /// Fraction of an active call's bandwidth reserved in its predicted
  /// next cell (0 disables, 1 reserves the full demand).
  double reservation_fraction = 0.5;
  /// Only mobiles faster than this are expected to hand off soon enough
  /// to be worth a reservation.
  double min_speed_kmh = 10.0;
};

/// Tracks predicted-handoff reservations per cell and gates new calls on
/// capacity minus reservations.
class PredictiveReservationController final
    : public cellular::AdmissionController {
 public:
  /// \param network not owned; must outlive the controller.
  /// \throws std::invalid_argument for a fraction outside [0, 1] or a
  ///         negative speed gate.
  PredictiveReservationController(const cellular::HexNetwork& network,
                                  PredictiveReservationConfig config = {});

  [[nodiscard]] std::string name() const override { return "PredictiveRsv"; }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  void onAdmitted(const cellular::CallRequest& request,
                  const cellular::AdmissionContext& context) override;
  void onReleased(const cellular::CallRequest& request,
                  const cellular::AdmissionContext& context) override;

  /// Outstanding reserved bandwidth in a cell (fractional BUs).
  [[nodiscard]] double reservedBu(cellular::CellId cell) const;

  /// The cell a mobile with this snapshot is predicted to enter next
  /// (straight-line extrapolation), if any and different from the serving
  /// cell.
  [[nodiscard]] std::optional<cellular::CellId> predictNextCell(
      const cellular::UserSnapshot& snapshot,
      cellular::CellId serving_cell) const;

 private:
  const cellular::HexNetwork& network_;
  PredictiveReservationConfig config_;
  /// Per admitted call: where its reservation lives (if any) and how much.
  struct Reservation {
    cellular::CellId cell = cellular::kInvalidCell;
    double bu = 0.0;
  };
  std::unordered_map<cellular::CallId, Reservation> reservations_;
  std::unordered_map<cellular::CellId, double> reserved_per_cell_;
};

}  // namespace facs::cac
