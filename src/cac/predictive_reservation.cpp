#include "cac/predictive_reservation.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "cellular/policy_registry.hpp"

namespace facs::cac {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::CallRequest;
using cellular::CellId;
using cellular::Vec2;

PredictiveReservationController::PredictiveReservationController(
    const cellular::HexNetwork& network, PredictiveReservationConfig config)
    : network_{network}, config_{config} {
  if (config_.reservation_fraction < 0.0 ||
      config_.reservation_fraction > 1.0) {
    throw std::invalid_argument("reservation fraction must be in [0, 1]");
  }
  if (config_.min_speed_kmh < 0.0) {
    throw std::invalid_argument("minimum speed must be >= 0");
  }
}

double PredictiveReservationController::reservedBu(CellId cell) const {
  const auto it = reserved_per_cell_.find(cell);
  return it == reserved_per_cell_.end() ? 0.0 : it->second;
}

std::optional<CellId> PredictiveReservationController::predictNextCell(
    const cellular::UserSnapshot& snapshot, CellId serving_cell) const {
  if (snapshot.speed_kmh < config_.min_speed_kmh) return std::nullopt;
  // Straight-line: march along the measured heading until the cell
  // changes or the look-ahead (one cell diameter) is exhausted.
  const double heading = cellular::normalizeAngleDeg(
      cellular::bearingDeg(snapshot.position,
                           network_.cell(serving_cell).center) +
      snapshot.angle_deg);
  const Vec2 dir = cellular::headingVector(heading);
  const double lookahead_km = 2.0 * network_.cellRadiusKm();
  const double step_km = network_.cellRadiusKm() / 10.0;
  for (double d = step_km; d <= lookahead_km; d += step_km) {
    const auto cell = network_.cellAt(snapshot.position + dir * d);
    if (!cell) return std::nullopt;  // leaves coverage first
    if (*cell != serving_cell) return *cell;
  }
  return std::nullopt;  // stays home over the horizon
}

AdmissionDecision PredictiveReservationController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  const double reserved =
      request.is_handoff ? 0.0 : reservedBu(context.station.cell());
  const double usable =
      static_cast<double>(context.station.freeBu()) - reserved;
  const bool fits_hard = context.station.canFit(request.demand_bu);
  const bool accept =
      fits_hard && static_cast<double>(request.demand_bu) <= usable;

  AdmissionDecision d;
  d.accept = accept;
  d.reason = accept      ? cellular::ReasonCode::Admitted
             : fits_hard ? cellular::ReasonCode::ReservedForHandoff
                         : cellular::ReasonCode::NoCapacity;
  d.score = accept ? 1.0 : -1.0;
  if (context.explain) {
    std::ostringstream os;
    os << (request.is_handoff ? "handoff" : "new") << " free="
       << context.station.freeBu() << " reserved=" << reserved
       << " need=" << request.demand_bu;
    d.rationale = os.str();
  }
  return d;
}

void PredictiveReservationController::onAdmitted(
    const CallRequest& request, const AdmissionContext& context) {
  // Refresh (handoffs re-predict from the new cell).
  onReleased(request, context);
  if (config_.reservation_fraction == 0.0) return;
  const CellId serving = context.station.cell();
  const auto next = predictNextCell(request.snapshot, serving);
  if (!next) return;
  Reservation r;
  r.cell = *next;
  r.bu = config_.reservation_fraction *
         static_cast<double>(request.demand_bu);
  reservations_[request.call] = r;
  reserved_per_cell_[r.cell] += r.bu;
}

void PredictiveReservationController::onReleased(
    const CallRequest& request, const AdmissionContext& /*context*/) {
  const auto it = reservations_.find(request.call);
  if (it == reservations_.end()) return;
  auto cell_it = reserved_per_cell_.find(it->second.cell);
  if (cell_it != reserved_per_cell_.end()) {
    cell_it->second = std::max(0.0, cell_it->second - it->second.bu);
  }
  reservations_.erase(it);
}

// ------------------------------------------------------------------------
namespace {

using cellular::PolicyRegistrar;
using cellular::PolicySpec;

const PolicyRegistrar register_rsv{
    {"rsv",
     "Predictive reservation (Yu & Leung 2001): each mobile's velocity "
     "reserves bandwidth in its predicted next cell.",
     "rsv[:FRACTION][,frac=F,minspeed=KMH]  (fraction in [0,1], default "
     "0.5)"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(1, {"frac", "minspeed"});
      PredictiveReservationConfig cfg;
      cfg.reservation_fraction =
          spec.numberFor("frac", spec.numberAt(0, cfg.reservation_fraction));
      cfg.min_speed_kmh = spec.numberFor("minspeed", cfg.min_speed_kmh);
      if (cfg.reservation_fraction < 0.0 || cfg.reservation_fraction > 1.0) {
        throw cellular::PolicySpecError(
            "policy 'rsv': reservation fraction must be in [0, 1]");
      }
      if (cfg.min_speed_kmh < 0.0) {
        throw cellular::PolicySpecError(
            "policy 'rsv': minimum speed must be >= 0");
      }
      return [cfg](const cellular::HexNetwork& net) {
        return std::make_unique<PredictiveReservationController>(net, cfg);
      };
    }};

}  // namespace

}  // namespace facs::cac
