#include "cac/baselines.hpp"

#include <sstream>
#include <stdexcept>

namespace facs::cac {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::BandwidthUnits;
using cellular::CallRequest;

AdmissionDecision CompleteSharingController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  const bool fits = context.station.canFit(request.demand_bu);
  AdmissionDecision d;
  d.accept = fits;
  d.score = fits ? 1.0 : -1.0;
  std::ostringstream os;
  os << "free=" << context.station.freeBu() << " need=" << request.demand_bu;
  d.rationale = os.str();
  return d;
}

GuardChannelController::GuardChannelController(BandwidthUnits guard_bu)
    : guard_bu_{guard_bu} {
  if (guard_bu_ < 0) {
    throw std::invalid_argument("guard channels must be >= 0");
  }
}

AdmissionDecision GuardChannelController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  const bool privileged = request.is_handoff || request.priority > 0;
  const BandwidthUnits usable =
      privileged ? context.station.freeBu()
                 : context.station.freeBu() - guard_bu_;
  const bool accept = request.demand_bu <= usable;
  AdmissionDecision d;
  d.accept = accept;
  d.score = accept ? 1.0 : -1.0;
  std::ostringstream os;
  os << (privileged ? "privileged" : "new-call") << " usable=" << usable
     << " need=" << request.demand_bu;
  d.rationale = os.str();
  return d;
}

MultiThresholdController::MultiThresholdController(
    std::array<BandwidthUnits, cellular::kServiceClassCount> thresholds_bu)
    : thresholds_{thresholds_bu} {
  for (const BandwidthUnits t : thresholds_) {
    if (t < 0) {
      throw std::invalid_argument("class thresholds must be >= 0");
    }
  }
}

AdmissionDecision MultiThresholdController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  const BandwidthUnits cutoff = threshold(request.service);
  const bool under_threshold = context.station.occupiedBu() <= cutoff;
  const bool fits = context.station.canFit(request.demand_bu);
  AdmissionDecision d;
  d.accept = under_threshold && fits;
  d.score = d.accept ? 1.0 : -1.0;
  std::ostringstream os;
  os << "occupied=" << context.station.occupiedBu() << " cutoff=" << cutoff;
  if (!fits) os << " (no free BU)";
  d.rationale = os.str();
  return d;
}

}  // namespace facs::cac
