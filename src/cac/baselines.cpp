#include "cac/baselines.hpp"

#include <sstream>
#include <stdexcept>

#include "cellular/policy_registry.hpp"

namespace facs::cac {

using cellular::AdmissionContext;
using cellular::AdmissionDecision;
using cellular::BandwidthUnits;
using cellular::CallRequest;
using cellular::ReasonCode;

AdmissionDecision CompleteSharingController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  const bool fits = context.station.canFit(request.demand_bu);
  AdmissionDecision d;
  d.accept = fits;
  d.reason = fits ? ReasonCode::Admitted : ReasonCode::NoCapacity;
  d.score = fits ? 1.0 : -1.0;
  if (context.explain) {
    std::ostringstream os;
    os << "free=" << context.station.freeBu() << " need=" << request.demand_bu;
    d.rationale = os.str();
  }
  return d;
}

GuardChannelController::GuardChannelController(BandwidthUnits guard_bu)
    : guard_bu_{guard_bu} {
  if (guard_bu_ < 0) {
    throw std::invalid_argument("guard channels must be >= 0");
  }
}

AdmissionDecision GuardChannelController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  const bool privileged = request.is_handoff || request.priority > 0;
  const BandwidthUnits usable =
      privileged ? context.station.freeBu()
                 : context.station.freeBu() - guard_bu_;
  const bool accept = request.demand_bu <= usable;
  AdmissionDecision d;
  d.accept = accept;
  if (accept) {
    d.reason = ReasonCode::Admitted;
  } else {
    // Distinguish "the cell is genuinely full" from "the guard band alone
    // blocked this new call".
    d.reason = context.station.canFit(request.demand_bu)
                   ? ReasonCode::GuardReserved
                   : ReasonCode::NoCapacity;
  }
  d.score = accept ? 1.0 : -1.0;
  if (context.explain) {
    std::ostringstream os;
    os << (privileged ? "privileged" : "new-call") << " usable=" << usable
       << " need=" << request.demand_bu;
    d.rationale = os.str();
  }
  return d;
}

MultiThresholdController::MultiThresholdController(
    std::array<BandwidthUnits, cellular::kServiceClassCount> thresholds_bu)
    : thresholds_{thresholds_bu} {
  for (const BandwidthUnits t : thresholds_) {
    if (t < 0) {
      throw std::invalid_argument("class thresholds must be >= 0");
    }
  }
}

AdmissionDecision MultiThresholdController::decide(
    const CallRequest& request, const AdmissionContext& context) {
  const BandwidthUnits cutoff = threshold(request.service);
  const bool under_threshold = context.station.occupiedBu() <= cutoff;
  const bool fits = context.station.canFit(request.demand_bu);
  AdmissionDecision d;
  d.accept = under_threshold && fits;
  d.reason = d.accept ? ReasonCode::Admitted
             : fits   ? ReasonCode::OverClassThreshold
                      : ReasonCode::NoCapacity;
  d.score = d.accept ? 1.0 : -1.0;
  if (context.explain) {
    std::ostringstream os;
    os << "occupied=" << context.station.occupiedBu() << " cutoff=" << cutoff;
    if (!fits) os << " (no free BU)";
    d.rationale = os.str();
  }
  return d;
}

// ------------------------------------------------------------------------
// Registry entries. Linked into every binary via the facs_core OBJECT
// library, so these registrars always run.
namespace {

using cellular::HexNetwork;
using cellular::PolicyRegistrar;
using cellular::PolicySpec;

const PolicyRegistrar register_cs{
    {"cs", "Complete Sharing: admit whenever the request fits.", "cs"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(0, {});
      return [](const HexNetwork&) {
        return std::make_unique<CompleteSharingController>();
      };
    }};

const PolicyRegistrar register_guard{
    {"guard",
     "Guard Channel: reserve G BUs that only handoffs/priority calls may "
     "use.",
     "guard[:G]  (reserved BUs, default 8)"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(1, {"g"});
      const int guard = spec.intFor("g", spec.intAt(0, 8));
      if (guard < 0) {
        throw cellular::PolicySpecError(
            "policy 'guard': reserved BUs must be >= 0");
      }
      return [guard](const HexNetwork&) {
        return std::make_unique<GuardChannelController>(guard);
      };
    }};

const PolicyRegistrar register_threshold{
    {"threshold",
     "Multi-threshold: per-class occupancy cutoffs (text, voice, video).",
     "threshold[:T_text,T_voice,T_video]  (default 38,30,20)"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(cellular::kServiceClassCount, {});
      if (!spec.positional().empty() &&
          spec.positionalCount() != cellular::kServiceClassCount) {
        throw cellular::PolicySpecError(
            "policy 'threshold': expects exactly " +
            std::to_string(cellular::kServiceClassCount) +
            " cutoffs (text, voice, video)");
      }
      std::array<BandwidthUnits, cellular::kServiceClassCount> cutoffs{
          38, 30, 20};
      for (std::size_t i = 0; i < spec.positionalCount(); ++i) {
        const int v = spec.intAt(i, cutoffs[i]);
        if (v < 0) {
          throw cellular::PolicySpecError(
              "policy 'threshold': cutoffs must be >= 0");
        }
        cutoffs[i] = v;
      }
      return [cutoffs](const HexNetwork&) {
        return std::make_unique<MultiThresholdController>(cutoffs);
      };
    }};

}  // namespace

}  // namespace facs::cac
