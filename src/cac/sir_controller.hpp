#pragma once
/// \file sir_controller.hpp
/// SIR-based call admission — the interference-aware CAC family of the
/// paper's Section 1 ("the acceptance of a new request depends on
/// Signal-to-Interference Ratio (SIR) value", citing Wang et al. and
/// Xiao–Shroff–Chong). A request is admitted only if (a) the requester's
/// downlink SINR clears a per-class threshold and (b) the bandwidth fits.
///
/// Commit scope depends on the radio model's interference footprint:
///
///  * **Unbounded footprint** (`interference_radius_hops == 0`): decide()
///    integrates interference over EVERY station's live utilization — the
///    read set is the whole network, no partition confines it, the policy
///    is `CommitScope::Global` and the engine serializes commits to one
///    lane.
///  * **Bounded footprint** (`radius > 0`): the read set is a fixed hop
///    neighbourhood, so the controller adopts the GroupLocal protocol.
///    Interferers in the acting cell's own commit group are read live
///    in-lane (they cannot change under the lane that owns them);
///    interferers in other groups are read from a per-cell utilization
///    snapshot refreshed single-threaded at every tick-window barrier
///    (onCommitBarrier), AFTER the engine's reservation drain — i.e.
///    cross-group interference is visible with at most one tick-window of
///    lag, the same barrier-visibility semantics as grouped SCC. Results
///    are seed-stable and shard-invariant for a fixed group count.

#include <array>
#include <string>
#include <vector>

#include "cellular/admission.hpp"
#include "cellular/radio.hpp"

namespace facs::cac {

/// Per-class SINR admission thresholds in dB. Video needs the cleanest
/// channel; text tolerates the worst.
struct SirThresholds {
  std::array<double, cellular::kServiceClassCount> min_sinr_db{
      -3.0,  // text: robust low-rate coding
      1.0,   // voice
      5.0,   // video
  };
};

class SirController final : public cellular::AdmissionController {
 public:
  /// Fraction of the noise floor the truncated-tail bound may reach before
  /// auditWorkload() flags the configured radius as too aggressive. Below
  /// this, the discarded interference is provably in noise the SINR
  /// comparison already absorbs.
  static constexpr double kTailNoiseFractionLimit = 0.1;

  /// \param radio not owned; must outlive the controller.
  SirController(const cellular::RadioModel& radio,
                SirThresholds thresholds = {});

  [[nodiscard]] std::string name() const override { return "SIR"; }

  /// Global when the interference sum spans the whole network (radius 0);
  /// GroupLocal when the footprint is bounded — see the file comment for
  /// the live/snapshot read discipline that makes the promise hold.
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return radio_.config().interference_radius_hops > 0
               ? cellular::CommitScope::GroupLocal
               : cellular::CommitScope::Global;
  }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  /// Copies the engine's cell-to-group mapping and primes the utilization
  /// snapshot (barrier context: single-threaded, ledgers quiescent).
  void onPartitionChanged(const cellular::CellGroupPartition& partition) override;

  /// Refreshes the out-of-group utilization snapshot from the committed
  /// ledgers. Reported deltas = snapshot entries whose value changed, so
  /// cross-group interference traffic shows up in Metrics::demand_deltas.
  cellular::BarrierDrainStats onCommitBarrier(double now_s) override;

  /// Warns when the configured interference radius discards a worst-case
  /// tail above kTailNoiseFractionLimit of the noise floor.
  [[nodiscard]] std::string auditWorkload(
      const cellular::WorkloadEnvelope& envelope) const override;

  [[nodiscard]] double threshold(cellular::ServiceClass c) const noexcept {
    return thresholds_.min_sinr_db[static_cast<std::size_t>(c)];
  }

 private:
  /// True when decides must split reads between live in-group ledgers and
  /// the barrier snapshot: bounded footprint AND a real multi-group
  /// partition adopted. Single-group runs (and standalone use without an
  /// engine) read everything live — identical to the Global path.
  [[nodiscard]] bool grouped() const noexcept {
    return partition_groups_ > 1 &&
           radio_.config().interference_radius_hops > 0;
  }

  const cellular::RadioModel& radio_;
  SirThresholds thresholds_;
  int partition_groups_ = 1;
  std::vector<int> group_of_;      ///< Cell -> commit group (engine's map).
  std::vector<double> snapshot_;   ///< Cell -> utilization at last barrier.
};

}  // namespace facs::cac
