#pragma once
/// \file sir_controller.hpp
/// SIR-based call admission — the interference-aware CAC family of the
/// paper's Section 1 ("the acceptance of a new request depends on
/// Signal-to-Interference Ratio (SIR) value", citing Wang et al. and
/// Xiao–Shroff–Chong). A request is admitted only if (a) the requester's
/// downlink SINR clears a per-class threshold and (b) the bandwidth fits.

#include <array>

#include "cellular/admission.hpp"
#include "cellular/radio.hpp"

namespace facs::cac {

/// Per-class SINR admission thresholds in dB. Video needs the cleanest
/// channel; text tolerates the worst.
struct SirThresholds {
  std::array<double, cellular::kServiceClassCount> min_sinr_db{
      -3.0,  // text: robust low-rate coding
      1.0,   // voice
      5.0,   // video
  };
};

class SirController final : public cellular::AdmissionController {
 public:
  /// \param radio not owned; must outlive the controller.
  SirController(const cellular::RadioModel& radio,
                SirThresholds thresholds = {});

  [[nodiscard]] std::string name() const override { return "SIR"; }

  /// Scope audit: decide() integrates interference over EVERY station's
  /// live utilization through the RadioModel — the read set is the whole
  /// network, unbounded by any cell neighbourhood, so no partition can
  /// confine it. Explicitly Global (the engine serializes to one lane);
  /// not a candidate for GroupLocal unless the interference sum ever gets
  /// a bounded-footprint approximation.
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return cellular::CommitScope::Global;
  }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  [[nodiscard]] double threshold(cellular::ServiceClass c) const noexcept {
    return thresholds_.min_sinr_db[static_cast<std::size_t>(c)];
  }

 private:
  const cellular::RadioModel& radio_;
  SirThresholds thresholds_;
};

}  // namespace facs::cac
