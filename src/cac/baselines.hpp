#pragma once
/// \file baselines.hpp
/// Classic call-admission policies used as ablation baselines:
///
///  * Complete Sharing (CS) — the paper's Section 1 strawman: admit iff
///    enough free channels exist; unfair to wide calls.
///  * Guard Channel — reserve g BUs that only handoffs (and prioritized
///    calls) may use; the standard handoff-protection scheme.
///  * Multi-threshold — per-class occupancy cutoffs, the shape of the
///    optimal policy of Bartolini & Chlamtac (PIMRC'02) cited in Section 1.

#include <array>

#include "cellular/admission.hpp"

namespace facs::cac {

/// Complete Sharing: admit whenever the request fits.
class CompleteSharingController final : public cellular::AdmissionController {
 public:
  [[nodiscard]] std::string name() const override { return "CS"; }

  /// Pure function of (request, target ledger): group lanes may commit
  /// decisions for disjoint cells concurrently.
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return cellular::CommitScope::CellLocal;
  }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;
};

/// Guard Channel: new calls may only use capacity - guard_bu units;
/// handoffs (and requests with priority > 0) may use everything.
class GuardChannelController final : public cellular::AdmissionController {
 public:
  /// \throws std::invalid_argument if guard_bu is negative.
  explicit GuardChannelController(cellular::BandwidthUnits guard_bu);

  [[nodiscard]] std::string name() const override { return "GuardChannel"; }

  /// Reads only the target cell's ledger plus the immutable guard band.
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return cellular::CommitScope::CellLocal;
  }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  [[nodiscard]] cellular::BandwidthUnits guardBu() const noexcept {
    return guard_bu_;
  }

 private:
  cellular::BandwidthUnits guard_bu_;
};

/// Multi-threshold policy: class c is admitted only while occupancy is at
/// or below its threshold. Wide (video) classes get lower thresholds so
/// narrow classes are not starved — "fairness in blocking".
class MultiThresholdController final : public cellular::AdmissionController {
 public:
  /// \param thresholds_bu occupancy cutoffs indexed by ServiceClass
  ///        (text, voice, video).
  /// \throws std::invalid_argument on negative thresholds.
  explicit MultiThresholdController(
      std::array<cellular::BandwidthUnits, cellular::kServiceClassCount>
          thresholds_bu);

  [[nodiscard]] std::string name() const override { return "MultiThreshold"; }

  /// Reads only the target cell's ledger plus the immutable thresholds.
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return cellular::CommitScope::CellLocal;
  }

  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  [[nodiscard]] cellular::BandwidthUnits threshold(
      cellular::ServiceClass c) const noexcept {
    return thresholds_[static_cast<std::size_t>(c)];
  }

 private:
  std::array<cellular::BandwidthUnits, cellular::kServiceClassCount>
      thresholds_;
};

}  // namespace facs::cac
