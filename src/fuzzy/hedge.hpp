#pragma once
/// \file hedge.hpp
/// Linguistic hedges: unary modifiers of membership functions ("very
/// fast", "somewhat near", "not straight"). Implemented as decorators so a
/// hedged term is itself a MembershipFunction and composes freely with
/// variables, rules and other hedges.

#include <functional>

#include "fuzzy/membership.hpp"

namespace facs::fuzzy {

/// The classical Zadeh hedges.
enum class Hedge {
  Not,        ///< 1 - mu
  Very,       ///< mu^2   (concentration)
  Extremely,  ///< mu^3
  Somewhat,   ///< mu^0.5 (dilation)
  Slightly,   ///< mu^0.25
  Indeed,     ///< contrast intensification: 2mu^2 if mu <= 0.5, else 1-2(1-mu)^2
};

[[nodiscard]] std::string_view toString(Hedge h) noexcept;

/// Applies a hedge to a membership degree in [0, 1].
[[nodiscard]] double applyHedge(Hedge h, double degree) noexcept;

/// A hedged membership function wrapping (and owning a copy of) a base
/// shape. Note "not" inverts the degree, so its support is the whole real
/// line conceptually; support() keeps the base support for all hedges
/// except Not, which reports an unbounded-ish interval via the base
/// universe being unknown here — callers clip to the variable universe
/// anyway (the engine always evaluates within it).
class HedgedMembership final : public MembershipFunction {
 public:
  HedgedMembership(Hedge hedge, const MembershipFunction& base);

  [[nodiscard]] double degree(double x) const noexcept override;
  [[nodiscard]] Interval support() const noexcept override;
  [[nodiscard]] double peak() const noexcept override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<MembershipFunction> clone() const override;

  [[nodiscard]] Hedge hedge() const noexcept { return hedge_; }

 private:
  HedgedMembership(const HedgedMembership& other);

  Hedge hedge_;
  std::unique_ptr<MembershipFunction> base_;
};

/// Convenience: hedged copy of any shape.
[[nodiscard]] std::unique_ptr<MembershipFunction> makeHedged(
    Hedge hedge, const MembershipFunction& base);

}  // namespace facs::fuzzy
