#pragma once
/// \file engine.hpp
/// The Mamdani fuzzy logic controller: fuzzifier, inference engine, fuzzy
/// rule base and defuzzifier — the four FLC elements of the paper's Fig. 2.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fuzzy/defuzzify.hpp"
#include "fuzzy/norms.hpp"
#include "fuzzy/rule.hpp"
#include "fuzzy/variable.hpp"

namespace facs::fuzzy {

/// Operator configuration of a Mamdani controller.
struct EngineConfig {
  TNorm conjunction = TNorm::Minimum;    ///< Combines antecedent degrees.
  TNorm implication = TNorm::Minimum;    ///< Applies firing strength to the consequent (clip).
  SNorm aggregation = SNorm::Maximum;    ///< Merges rule outputs.
  Defuzzifier defuzzifier = Defuzzifier::Centroid;
  int resolution = 1001;                 ///< Output-universe samples for defuzzification.
};

/// Reusable working buffers for the allocation-free inference path. One
/// scratch serves any number of engines (each inference resizes the buffers
/// to its own shape); reusing it across calls keeps the steady state free
/// of heap traffic, which is what lets a serialized commit phase batch many
/// inferences cheaply.
struct InferenceScratch {
  std::vector<FuzzyVector> fuzzified;
  std::vector<double> strengths;
  std::vector<double> term_activation;
  std::vector<double> curve_mu;  ///< Aggregated curve on the sealed grid.
  DefuzzScratch defuzz;
};

/// Working state of the batch inference path: the per-entry buffers plus the
/// fuzzification memo. Unlike InferenceScratch, a BatchScratch is bound to
/// one sealed engine at a time — the memo caches the previous entry's
/// fuzzified degrees (and output) and is only valid against the engine that
/// produced them, so inferBatch() re-keys and drops the memo whenever the
/// scratch last served a different (or since-resealed) engine.
struct BatchScratch {
  InferenceScratch inference;
  std::vector<double> last_inputs;  ///< Previous entry's crisp inputs.
  double last_output = 0.0;
  bool warm = false;                ///< Memo holds the previous entry.
  std::uint64_t engine_seal_id = 0; ///< Which seal() the memo belongs to.
};

/// Per-rule diagnostic from a traced inference.
struct RuleActivation {
  std::size_t rule_index = 0;
  double firing_strength = 0.0;  ///< After conjunction and weighting.
};

/// Full diagnostic of one inference step (for tests, examples and the
/// operator dashboard example application).
struct InferenceTrace {
  std::vector<double> inputs;               ///< Crisp inputs (clamped).
  std::vector<FuzzyVector> fuzzified;       ///< Degrees per input variable.
  std::vector<RuleActivation> activations;  ///< Rules with strength > 0.
  double crisp_output = 0.0;
  std::size_t winning_output_term = 0;      ///< Output term closest to crisp value.
};

/// A complete single-output Mamdani controller.
///
/// Construction order: add input variables, set the output variable, add
/// rules, then call `seal()` once — it validates the structure and lets
/// every subsequent inference skip the re-check (unsealed engines validate
/// on each inference instead). The engine is immutable during inference and
/// therefore safe to share across threads for concurrent `infer()` calls;
/// seal before sharing.
class MamdaniEngine {
 public:
  explicit MamdaniEngine(std::string name, EngineConfig config = {});

  /// \name Construction
  ///@{
  /// Appends an input variable; returns its roster index.
  std::size_t addInput(LinguisticVariable variable);
  void setOutput(LinguisticVariable variable);
  /// Adds a rule by term names; wildcard entries are "*" or "any".
  void addRule(const std::vector<std::string>& antecedent_terms,
               const std::string& consequent_term, double weight = 1.0);
  void addRule(Rule rule);
  ///@}

  /// \name Introspection
  ///@{
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t inputCount() const noexcept {
    return inputs_.size();
  }
  [[nodiscard]] const LinguisticVariable& input(std::size_t i) const {
    return inputs_.at(i);
  }
  [[nodiscard]] const std::vector<LinguisticVariable>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const LinguisticVariable& output() const;
  [[nodiscard]] const RuleBase& rules() const noexcept { return rules_; }
  ///@}

  /// Structural validation: output present, >= 1 rule, rule base coherent.
  /// \throws std::logic_error describing the first defect found.
  void checkValid() const;

  /// Validates once and caches the result: sealed engines skip the
  /// per-inference checkValid() (an O(rules^2 + term-product) scan that
  /// otherwise dominates small rule bases). Sealing also precomputes the
  /// output sample-grid tables — the defuzzification x-grid, its trapezoid
  /// weights, and every output term's membership at every grid point (an
  /// SoA resolution x termCount array) — so the aggregated-curve evaluation
  /// becomes flat loops over contiguous doubles instead of a per-sample
  /// lambda with nested apply() dispatch. The grid is a pure function of
  /// (universe, resolution), so table lookups reproduce degree() bit-exactly
  /// and sealed inference stays bit-identical to the unsealed path. Any
  /// mutation (addInput, setOutput, addRule, setConfig) unseals and drops
  /// the tables. Seal before sharing the engine across threads; the sealed
  /// state is written here only.
  /// \throws std::logic_error when the engine is structurally invalid.
  void seal();
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  /// Runs one inference; \p crisp_inputs are clamped to each variable's
  /// universe. \throws std::invalid_argument on arity mismatch.
  [[nodiscard]] double infer(std::span<const double> crisp_inputs) const;

  /// As infer(), reusing \p scratch for every intermediate buffer — the
  /// batch-friendly hot path: no allocation once the scratch has warmed up,
  /// and bit-identical to infer() (same arithmetic in the same order).
  [[nodiscard]] double infer(std::span<const double> crisp_inputs,
                             InferenceScratch& scratch) const;

  /// Batch inference: \p crisp_inputs holds the entries back to back,
  /// entry-major (entry e's inputs at [e * inputCount(), (e+1) *
  /// inputCount())), and \p outputs receives one crisp value per entry.
  /// Fuzzification of each input variable is memoized across consecutive
  /// entries whose crisp value is unchanged (in a commit window the shared
  /// Cs input rarely moves between decisions); an entry whose inputs all
  /// repeat reuses the previous output outright. Both shortcuts reuse pure
  /// functions of identical inputs, so every entry is bit-identical to a
  /// standalone infer(). The memo survives across calls when the same
  /// scratch keeps serving the same sealed engine — consecutive decide()
  /// calls batch as well as one span does.
  /// \throws std::invalid_argument when crisp_inputs.size() !=
  ///         outputs.size() * inputCount().
  void inferBatch(std::span<const double> crisp_inputs,
                  std::span<double> outputs, BatchScratch& scratch) const;

  /// As infer(), returning full diagnostics.
  [[nodiscard]] InferenceTrace inferTraced(
      std::span<const double> crisp_inputs) const;

  /// Replaces the operator configuration (used by the ablation benches).
  void setConfig(const EngineConfig& config);

 private:
  /// Firing strength of each rule for the fuzzified inputs, into
  /// \p strengths (cleared first). The single implementation both the
  /// traced and the scratch path run — one arithmetic, no drift.
  void fireInto(const std::vector<FuzzyVector>& fuzzified,
                std::vector<double>& strengths) const;

  /// Per-term aggregation of \p strengths into scratch.term_activation
  /// (resized and zeroed here) followed by defuzzification of the
  /// aggregated curve — the shared back half of every inference. Sealed
  /// engines iterate the precomputed sample-grid tables; unsealed engines
  /// evaluate the curve through the term objects. Same grid, same apply()
  /// order, so the two are bit-identical.
  [[nodiscard]] double aggregateAndDefuzzify(
      const std::vector<double>& strengths, InferenceScratch& scratch) const;

  /// checkValid() unless a prior seal() vouches for the current structure.
  void ensureValid() const;

  /// Drops the cached validation, the seal id and the precomputed tables —
  /// every mutating entry point funnels through here.
  void unseal();

  /// Arity check + defuzzified output via the scratch buffers (shared core
  /// of both infer() overloads).
  [[nodiscard]] double inferInto(std::span<const double> crisp_inputs,
                                 InferenceScratch& scratch) const;

  /// Precomputed defuzzification tables of a sealed engine (empty while
  /// unsealed). The grid and weights depend only on (universe, resolution);
  /// term_mu is term-major — term t's row is [t * x.size(), (t+1) *
  /// x.size()) — so the aggregation inner loop walks contiguous doubles.
  struct OutputTables {
    std::vector<double> x;        ///< Sample grid over the output universe.
    std::vector<double> half_dx;  ///< Trapezoid weights, 0.5 * segment dx.
    std::vector<double> term_mu;  ///< termCount x resolution, term-major.
  };

  std::string name_;
  EngineConfig config_;
  std::vector<LinguisticVariable> inputs_;
  std::vector<LinguisticVariable> output_;  ///< 0 or 1 elements.
  RuleBase rules_;
  OutputTables tables_;
  bool sealed_ = false;
  std::uint64_t seal_id_ = 0;  ///< Unique per seal(); 0 while unsealed.
};

}  // namespace facs::fuzzy
