#pragma once
/// \file engine.hpp
/// The Mamdani fuzzy logic controller: fuzzifier, inference engine, fuzzy
/// rule base and defuzzifier — the four FLC elements of the paper's Fig. 2.

#include <span>
#include <string>
#include <vector>

#include "fuzzy/defuzzify.hpp"
#include "fuzzy/norms.hpp"
#include "fuzzy/rule.hpp"
#include "fuzzy/variable.hpp"

namespace facs::fuzzy {

/// Operator configuration of a Mamdani controller.
struct EngineConfig {
  TNorm conjunction = TNorm::Minimum;    ///< Combines antecedent degrees.
  TNorm implication = TNorm::Minimum;    ///< Applies firing strength to the consequent (clip).
  SNorm aggregation = SNorm::Maximum;    ///< Merges rule outputs.
  Defuzzifier defuzzifier = Defuzzifier::Centroid;
  int resolution = 1001;                 ///< Output-universe samples for defuzzification.
};

/// Reusable working buffers for the allocation-free inference path. One
/// scratch serves any number of engines (each inference resizes the buffers
/// to its own shape); reusing it across calls keeps the steady state free
/// of heap traffic, which is what lets a serialized commit phase batch many
/// inferences cheaply.
struct InferenceScratch {
  std::vector<FuzzyVector> fuzzified;
  std::vector<double> strengths;
  std::vector<double> term_activation;
};

/// Per-rule diagnostic from a traced inference.
struct RuleActivation {
  std::size_t rule_index = 0;
  double firing_strength = 0.0;  ///< After conjunction and weighting.
};

/// Full diagnostic of one inference step (for tests, examples and the
/// operator dashboard example application).
struct InferenceTrace {
  std::vector<double> inputs;               ///< Crisp inputs (clamped).
  std::vector<FuzzyVector> fuzzified;       ///< Degrees per input variable.
  std::vector<RuleActivation> activations;  ///< Rules with strength > 0.
  double crisp_output = 0.0;
  std::size_t winning_output_term = 0;      ///< Output term closest to crisp value.
};

/// A complete single-output Mamdani controller.
///
/// Construction order: add input variables, set the output variable, add
/// rules, then call `seal()` once — it validates the structure and lets
/// every subsequent inference skip the re-check (unsealed engines validate
/// on each inference instead). The engine is immutable during inference and
/// therefore safe to share across threads for concurrent `infer()` calls;
/// seal before sharing.
class MamdaniEngine {
 public:
  explicit MamdaniEngine(std::string name, EngineConfig config = {});

  /// \name Construction
  ///@{
  /// Appends an input variable; returns its roster index.
  std::size_t addInput(LinguisticVariable variable);
  void setOutput(LinguisticVariable variable);
  /// Adds a rule by term names; wildcard entries are "*" or "any".
  void addRule(const std::vector<std::string>& antecedent_terms,
               const std::string& consequent_term, double weight = 1.0);
  void addRule(Rule rule);
  ///@}

  /// \name Introspection
  ///@{
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t inputCount() const noexcept {
    return inputs_.size();
  }
  [[nodiscard]] const LinguisticVariable& input(std::size_t i) const {
    return inputs_.at(i);
  }
  [[nodiscard]] const std::vector<LinguisticVariable>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const LinguisticVariable& output() const;
  [[nodiscard]] const RuleBase& rules() const noexcept { return rules_; }
  ///@}

  /// Structural validation: output present, >= 1 rule, rule base coherent.
  /// \throws std::logic_error describing the first defect found.
  void checkValid() const;

  /// Validates once and caches the result: sealed engines skip the
  /// per-inference checkValid() (an O(rules^2 + term-product) scan that
  /// otherwise dominates small rule bases). Any mutation (addInput,
  /// setOutput, addRule, setConfig) unseals. Seal before sharing the engine
  /// across threads; the flag is written here only.
  /// \throws std::logic_error when the engine is structurally invalid.
  void seal();
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  /// Runs one inference; \p crisp_inputs are clamped to each variable's
  /// universe. \throws std::invalid_argument on arity mismatch.
  [[nodiscard]] double infer(std::span<const double> crisp_inputs) const;

  /// As infer(), reusing \p scratch for every intermediate buffer — the
  /// batch-friendly hot path: no allocation once the scratch has warmed up,
  /// and bit-identical to infer() (same arithmetic in the same order).
  [[nodiscard]] double infer(std::span<const double> crisp_inputs,
                             InferenceScratch& scratch) const;

  /// As infer(), returning full diagnostics.
  [[nodiscard]] InferenceTrace inferTraced(
      std::span<const double> crisp_inputs) const;

  /// Replaces the operator configuration (used by the ablation benches).
  void setConfig(const EngineConfig& config);

 private:
  /// Firing strength of each rule for the fuzzified inputs, into
  /// \p strengths (cleared first). The single implementation both the
  /// traced and the scratch path run — one arithmetic, no drift.
  void fireInto(const std::vector<FuzzyVector>& fuzzified,
                std::vector<double>& strengths) const;

  /// Per-term aggregation of \p strengths into \p term_activation (resized
  /// and zeroed here) followed by defuzzification of the aggregated curve —
  /// the shared back half of every inference.
  [[nodiscard]] double aggregateAndDefuzzify(
      const std::vector<double>& strengths,
      std::vector<double>& term_activation) const;

  /// checkValid() unless a prior seal() vouches for the current structure.
  void ensureValid() const;

  /// Arity check + defuzzified output via the scratch buffers (shared core
  /// of both infer() overloads).
  [[nodiscard]] double inferInto(std::span<const double> crisp_inputs,
                                 InferenceScratch& scratch) const;

  std::string name_;
  EngineConfig config_;
  std::vector<LinguisticVariable> inputs_;
  std::vector<LinguisticVariable> output_;  ///< 0 or 1 elements.
  RuleBase rules_;
  bool sealed_ = false;
};

}  // namespace facs::fuzzy
