#include "fuzzy/shapes.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace facs::fuzzy {

namespace {
void requireFinite(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument(std::string{"membership parameter '"} + what +
                                "' must be finite");
  }
}
}  // namespace

Gaussian::Gaussian(double mean, double sigma) : mean_{mean}, sigma_{sigma} {
  requireFinite(mean, "mean");
  requireFinite(sigma, "sigma");
  if (!(sigma_ > 0.0)) {
    throw std::invalid_argument("Gaussian sigma must be positive");
  }
}

double Gaussian::degree(double x) const noexcept {
  const double z = (x - mean_) / sigma_;
  return std::exp(-0.5 * z * z);
}

Interval Gaussian::support() const noexcept {
  return {mean_ - 4.0 * sigma_, mean_ + 4.0 * sigma_};
}

std::string Gaussian::describe() const {
  std::ostringstream os;
  os << "gauss(" << mean_ << ", " << sigma_ << ")";
  return os.str();
}

std::unique_ptr<MembershipFunction> Gaussian::clone() const {
  return std::make_unique<Gaussian>(*this);
}

GeneralizedBell::GeneralizedBell(double center, double width, double slope)
    : center_{center}, width_{width}, slope_{slope} {
  requireFinite(center, "center");
  requireFinite(width, "width");
  requireFinite(slope, "slope");
  if (!(width_ > 0.0)) {
    throw std::invalid_argument("bell width must be positive");
  }
  if (!(slope_ > 0.0)) {
    throw std::invalid_argument("bell slope must be positive");
  }
}

double GeneralizedBell::degree(double x) const noexcept {
  const double z = std::abs((x - center_) / width_);
  return 1.0 / (1.0 + std::pow(z, 2.0 * slope_));
}

Interval GeneralizedBell::support() const noexcept {
  // Degree drops below ~1e-4 at |z| = 10^(4 / (2 slope)).
  const double reach = width_ * std::pow(10.0, 2.0 / slope_);
  return {center_ - reach, center_ + reach};
}

std::string GeneralizedBell::describe() const {
  std::ostringstream os;
  os << "bell(" << center_ << ", " << width_ << ", " << slope_ << ")";
  return os.str();
}

std::unique_ptr<MembershipFunction> GeneralizedBell::clone() const {
  return std::make_unique<GeneralizedBell>(*this);
}

Sigmoid::Sigmoid(double inflection, double slope)
    : inflection_{inflection}, slope_{slope} {
  requireFinite(inflection, "inflection");
  requireFinite(slope, "slope");
  if (slope_ == 0.0) {
    throw std::invalid_argument("sigmoid slope must be non-zero");
  }
}

double Sigmoid::degree(double x) const noexcept {
  return 1.0 / (1.0 + std::exp(-slope_ * (x - inflection_)));
}

Interval Sigmoid::support() const noexcept {
  // Practically unbounded on the saturated side; report the region where
  // the degree is within (1e-4, 1 - 1e-4) plus the saturated tail.
  const double reach = 9.2103 / std::abs(slope_);  // ln(1e4)
  if (slope_ > 0.0) {
    return {inflection_ - reach, std::numeric_limits<double>::infinity()};
  }
  return {-std::numeric_limits<double>::infinity(), inflection_ + reach};
}

double Sigmoid::peak() const noexcept {
  // The saturated end; finite proxy one reach beyond the inflection.
  const double reach = 9.2103 / std::abs(slope_);
  return slope_ > 0.0 ? inflection_ + reach : inflection_ - reach;
}

std::string Sigmoid::describe() const {
  std::ostringstream os;
  os << "sigmoid(" << inflection_ << ", " << slope_ << ")";
  return os.str();
}

std::unique_ptr<MembershipFunction> Sigmoid::clone() const {
  return std::make_unique<Sigmoid>(*this);
}

std::unique_ptr<MembershipFunction> makeGaussian(double mean, double sigma) {
  return std::make_unique<Gaussian>(mean, sigma);
}

std::unique_ptr<MembershipFunction> makeBell(double center, double width,
                                             double slope) {
  return std::make_unique<GeneralizedBell>(center, width, slope);
}

std::unique_ptr<MembershipFunction> makeSigmoid(double inflection,
                                                double slope) {
  return std::make_unique<Sigmoid>(inflection, slope);
}

}  // namespace facs::fuzzy
