#pragma once
/// \file defuzzify.hpp
/// Defuzzification of an aggregated output fuzzy set into a crisp value.

#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "fuzzy/membership.hpp"

namespace facs::fuzzy {

/// Defuzzification strategies. Centroid is the FACS default (the standard
/// choice for Mamdani admission controllers of the paper's era); the rest
/// are provided for the design-ablation benchmarks.
enum class Defuzzifier {
  Centroid,       ///< Centre of gravity of the aggregated set.
  Bisector,       ///< Vertical line splitting the area in half.
  MeanOfMax,      ///< Mean of the maximizing interval(s).
  SmallestOfMax,  ///< Leftmost maximizing point.
  LargestOfMax,   ///< Rightmost maximizing point.
};

/// A sampled view of the aggregated output membership curve.
using AggregatedCurve = std::function<double(double)>;

/// Reusable working buffers for the allocation-free defuzzification path.
/// `x`/`mu`/`weights` hold the sampled curve when defuzzifying a callable;
/// `cumulative` is the bisector's running-area buffer. One scratch serves
/// any resolution (each call resizes to its own shape), so a warm scratch
/// keeps repeated defuzzification free of heap traffic.
struct DefuzzScratch {
  std::vector<double> x;
  std::vector<double> mu;
  std::vector<double> weights;
  std::vector<double> cumulative;
};

/// Defuzzifies \p curve over \p universe using \p resolution uniform samples.
///
/// If the curve is identically zero over the universe (no rule fired), the
/// universe midpoint is returned — a neutral value by construction of the
/// FACS output variables (A/R = 0 is "not reject, not accept").
///
/// \throws std::invalid_argument if resolution < 2 or the universe is empty.
[[nodiscard]] double defuzzify(Defuzzifier method, const AggregatedCurve& curve,
                               Interval universe, int resolution = 1001);

/// As above, reusing \p scratch for the sample buffers — allocation-free
/// once the scratch has warmed up, and bit-identical to the plain overload
/// (same grid, same arithmetic in the same order).
[[nodiscard]] double defuzzify(Defuzzifier method, const AggregatedCurve& curve,
                               Interval universe, int resolution,
                               DefuzzScratch& scratch);

/// Defuzzifies an already-sampled curve: \p x is the sample grid, \p mu the
/// membership at each sample, \p half_dx the trapezoid weights
/// (0.5 * (x[i+1] - x[i]) per segment, so |half_dx| == |x| - 1). This is
/// the sealed-engine fast path — the grid and weights are precomputed once
/// at seal() and every inference only fills \p mu. Bit-identical to
/// sampling the equivalent callable at the same points.
///
/// \throws std::invalid_argument on mismatched spans or fewer than 2 samples.
[[nodiscard]] double defuzzifySampled(Defuzzifier method,
                                      std::span<const double> x,
                                      std::span<const double> mu,
                                      std::span<const double> half_dx,
                                      DefuzzScratch& scratch);

/// Fills \p weights with the trapezoid integration weights of grid \p x:
/// weights[i] = 0.5 * (x[i+1] - x[i]). The one formula both the sealed
/// tables and the sampling path use, so their integrals share every bit.
void fillTrapezoidWeights(std::span<const double> x,
                          std::vector<double>& weights);

[[nodiscard]] std::string_view toString(Defuzzifier method) noexcept;

}  // namespace facs::fuzzy
