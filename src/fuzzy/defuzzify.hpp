#pragma once
/// \file defuzzify.hpp
/// Defuzzification of an aggregated output fuzzy set into a crisp value.

#include <functional>
#include <string_view>

#include "fuzzy/membership.hpp"

namespace facs::fuzzy {

/// Defuzzification strategies. Centroid is the FACS default (the standard
/// choice for Mamdani admission controllers of the paper's era); the rest
/// are provided for the design-ablation benchmarks.
enum class Defuzzifier {
  Centroid,       ///< Centre of gravity of the aggregated set.
  Bisector,       ///< Vertical line splitting the area in half.
  MeanOfMax,      ///< Mean of the maximizing interval(s).
  SmallestOfMax,  ///< Leftmost maximizing point.
  LargestOfMax,   ///< Rightmost maximizing point.
};

/// A sampled view of the aggregated output membership curve.
using AggregatedCurve = std::function<double(double)>;

/// Defuzzifies \p curve over \p universe using \p resolution uniform samples.
///
/// If the curve is identically zero over the universe (no rule fired), the
/// universe midpoint is returned — a neutral value by construction of the
/// FACS output variables (A/R = 0 is "not reject, not accept").
///
/// \throws std::invalid_argument if resolution < 2 or the universe is empty.
[[nodiscard]] double defuzzify(Defuzzifier method, const AggregatedCurve& curve,
                               Interval universe, int resolution = 1001);

[[nodiscard]] std::string_view toString(Defuzzifier method) noexcept;

}  // namespace facs::fuzzy
