#include "fuzzy/hedge.hpp"

#include <cmath>
#include <limits>

namespace facs::fuzzy {

std::string_view toString(Hedge h) noexcept {
  switch (h) {
    case Hedge::Not:
      return "not";
    case Hedge::Very:
      return "very";
    case Hedge::Extremely:
      return "extremely";
    case Hedge::Somewhat:
      return "somewhat";
    case Hedge::Slightly:
      return "slightly";
    case Hedge::Indeed:
      return "indeed";
  }
  return "very";
}

double applyHedge(Hedge h, double degree) noexcept {
  switch (h) {
    case Hedge::Not:
      return 1.0 - degree;
    case Hedge::Very:
      return degree * degree;
    case Hedge::Extremely:
      return degree * degree * degree;
    case Hedge::Somewhat:
      return std::sqrt(degree);
    case Hedge::Slightly:
      return std::sqrt(std::sqrt(degree));
    case Hedge::Indeed:
      if (degree <= 0.5) return 2.0 * degree * degree;
      return 1.0 - 2.0 * (1.0 - degree) * (1.0 - degree);
  }
  return degree;
}

HedgedMembership::HedgedMembership(Hedge hedge, const MembershipFunction& base)
    : hedge_{hedge}, base_{base.clone()} {}

HedgedMembership::HedgedMembership(const HedgedMembership& other)
    : hedge_{other.hedge_}, base_{other.base_->clone()} {}

double HedgedMembership::degree(double x) const noexcept {
  return applyHedge(hedge_, base_->degree(x));
}

Interval HedgedMembership::support() const noexcept {
  if (hedge_ == Hedge::Not) {
    // The complement is non-zero (almost) everywhere; report an unbounded
    // interval and let the variable universe clip it.
    return {-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  }
  return base_->support();
}

double HedgedMembership::peak() const noexcept {
  if (hedge_ == Hedge::Not) {
    // Peak of the complement: an edge of the base support.
    return base_->support().lo;
  }
  return base_->peak();
}

std::string HedgedMembership::describe() const {
  return std::string{toString(hedge_)} + " " + base_->describe();
}

std::unique_ptr<MembershipFunction> HedgedMembership::clone() const {
  return std::unique_ptr<MembershipFunction>{new HedgedMembership{*this}};
}

std::unique_ptr<MembershipFunction> makeHedged(Hedge hedge,
                                               const MembershipFunction& base) {
  return std::make_unique<HedgedMembership>(hedge, base);
}

}  // namespace facs::fuzzy
