#include "fuzzy/rule.hpp"

#include <sstream>
#include <stdexcept>

#include "fuzzy/variable.hpp"

namespace facs::fuzzy {

void RuleBase::add(const std::vector<LinguisticVariable>& inputs,
                   const LinguisticVariable& output,
                   const std::vector<std::string>& antecedent_terms,
                   const std::string& consequent_term, double weight) {
  if (antecedent_terms.size() != inputs.size()) {
    std::ostringstream os;
    os << "rule arity mismatch: " << antecedent_terms.size()
       << " antecedent terms for " << inputs.size() << " input variables";
    throw std::invalid_argument(os.str());
  }
  if (!(weight > 0.0) || weight > 1.0) {
    throw std::invalid_argument("rule weight must be in (0, 1]");
  }

  Rule r;
  r.weight = weight;
  r.antecedent.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::string& name = antecedent_terms[i];
    if (name == "*" || name == "any") {
      r.antecedent.push_back(kAnyTerm);
      continue;
    }
    const auto idx = inputs[i].termIndex(name);
    if (!idx) {
      throw std::invalid_argument("unknown term '" + name + "' for variable '" +
                                  inputs[i].name() + "'");
    }
    r.antecedent.push_back(*idx);
  }

  const auto out_idx = output.termIndex(consequent_term);
  if (!out_idx) {
    throw std::invalid_argument("unknown term '" + consequent_term +
                                "' for output variable '" + output.name() +
                                "'");
  }
  r.consequent = *out_idx;
  rules_.push_back(std::move(r));
}

namespace {

/// Walks the cartesian product of input term sets, invoking fn(combo).
template <typename Fn>
void forEachCombination(const std::vector<LinguisticVariable>& inputs,
                        Fn&& fn) {
  std::vector<std::size_t> combo(inputs.size(), 0);
  while (true) {
    fn(combo);
    std::size_t pos = 0;
    while (pos < combo.size()) {
      if (++combo[pos] < inputs[pos].termCount()) break;
      combo[pos] = 0;
      ++pos;
    }
    if (pos == combo.size()) return;
  }
}

bool matches(const Rule& r, const std::vector<std::size_t>& combo) {
  for (std::size_t i = 0; i < combo.size(); ++i) {
    if (r.antecedent[i] != kAnyTerm && r.antecedent[i] != combo[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

RuleBaseReport RuleBase::validate(
    const std::vector<LinguisticVariable>& inputs,
    const LinguisticVariable& output) const {
  RuleBaseReport report;

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& r = rules_[i];
    bool bad = r.antecedent.size() != inputs.size() ||
               r.consequent >= output.termCount() || !(r.weight > 0.0) ||
               r.weight > 1.0;
    if (!bad) {
      for (std::size_t v = 0; v < inputs.size(); ++v) {
        if (r.antecedent[v] != kAnyTerm &&
            r.antecedent[v] >= inputs[v].termCount()) {
          bad = true;
          break;
        }
      }
    }
    if (bad) report.malformed.push_back(i);
  }

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    for (std::size_t j = i + 1; j < rules_.size(); ++j) {
      if (rules_[i].antecedent == rules_[j].antecedent &&
          rules_[i].consequent != rules_[j].consequent) {
        report.conflicts.emplace_back(i, j);
      }
    }
  }

  if (!inputs.empty() && report.malformed.empty()) {
    forEachCombination(inputs, [&](const std::vector<std::size_t>& combo) {
      for (const Rule& r : rules_) {
        if (matches(r, combo)) return;
      }
      std::ostringstream os;
      for (std::size_t v = 0; v < combo.size(); ++v) {
        if (v > 0) os << " & ";
        os << inputs[v].name() << "=" << inputs[v].term(combo[v]).name();
      }
      report.uncovered.push_back(os.str());
    });
  }

  report.ok = report.uncovered.empty() && report.conflicts.empty() &&
              report.malformed.empty();
  return report;
}

}  // namespace facs::fuzzy
