#include "fuzzy/variable.hpp"

#include <algorithm>
#include <stdexcept>

namespace facs::fuzzy {

Term::Term(std::string name, std::unique_ptr<MembershipFunction> mf)
    : name_{std::move(name)}, mf_{std::move(mf)} {
  if (name_.empty()) throw std::invalid_argument("term name must not be empty");
  if (!mf_) throw std::invalid_argument("term requires a membership function");
}

Term::Term(const Term& other) : name_{other.name_}, mf_{other.mf_->clone()} {}

Term& Term::operator=(const Term& other) {
  if (this != &other) {
    name_ = other.name_;
    mf_ = other.mf_->clone();
  }
  return *this;
}

LinguisticVariable::LinguisticVariable(std::string name, Interval universe)
    : name_{std::move(name)}, universe_{universe} {
  if (name_.empty()) {
    throw std::invalid_argument("variable name must not be empty");
  }
  if (!(universe_.lo < universe_.hi)) {
    throw std::invalid_argument("variable '" + name_ +
                                "' has an empty or inverted universe");
  }
}

void LinguisticVariable::addTerm(std::string term_name,
                                 std::unique_ptr<MembershipFunction> mf) {
  if (termIndex(term_name).has_value()) {
    throw std::invalid_argument("variable '" + name_ + "' already has a term '" +
                                term_name + "'");
  }
  terms_.emplace_back(std::move(term_name), std::move(mf));
}

std::optional<std::size_t> LinguisticVariable::termIndex(
    std::string_view term_name) const noexcept {
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i].name() == term_name) return i;
  }
  return std::nullopt;
}

FuzzyVector LinguisticVariable::fuzzify(double x) const {
  FuzzyVector out;
  fuzzifyInto(x, out);
  return out;
}

void LinguisticVariable::fuzzifyInto(double x, FuzzyVector& out) const {
  const double clamped = universe_.clamp(x);
  out.clear();
  out.reserve(terms_.size());
  for (const Term& t : terms_) out.push_back(t.degree(clamped));
}

void LinguisticVariable::tabulateTerm(std::size_t t,
                                      std::span<const double> xs,
                                      std::span<double> out) const {
  if (xs.size() != out.size()) {
    throw std::invalid_argument("variable '" + name_ +
                                "': tabulateTerm span sizes differ");
  }
  const Term& term = terms_.at(t);
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = term.degree(xs[i]);
}

std::size_t LinguisticVariable::winningTerm(double x) const {
  if (terms_.empty()) {
    throw std::logic_error("variable '" + name_ + "' has no terms");
  }
  const double clamped = universe_.clamp(x);
  std::size_t best = 0;
  double best_degree = terms_[0].degree(clamped);
  for (std::size_t i = 1; i < terms_.size(); ++i) {
    const double d = terms_[i].degree(clamped);
    if (d > best_degree) {
      best = i;
      best_degree = d;
    }
  }
  return best;
}

bool LinguisticVariable::covers(double min_degree, int samples) const {
  if (terms_.empty()) return false;
  if (samples < 2) throw std::invalid_argument("covers() needs >= 2 samples");
  const double step = universe_.width() / (samples - 1);
  for (int i = 0; i < samples; ++i) {
    const double x = universe_.lo + step * i;
    const bool covered = std::any_of(
        terms_.begin(), terms_.end(),
        [&](const Term& t) { return t.degree(x) > min_degree; });
    if (!covered) return false;
  }
  return true;
}

}  // namespace facs::fuzzy
