#pragma once
/// \file sugeno.hpp
/// Takagi-Sugeno-Kang (TSK) inference: rules conclude with a crisp linear
/// function of the inputs instead of an output fuzzy set, and the engine
/// output is the firing-strength-weighted average of the rule outputs.
///
/// Provided alongside the Mamdani engine because TSK controllers are the
/// standard "fast path" for embedded admission control (no output-universe
/// sampling, so inference is one dot product per fired rule), and they let
/// downstream users of this library fit controllers to data. The FACS
/// reproduction itself uses Mamdani, as the paper's Fig. 2 prescribes a
/// defuzzifier stage.

#include <span>
#include <string>
#include <vector>

#include "fuzzy/norms.hpp"
#include "fuzzy/rule.hpp"
#include "fuzzy/variable.hpp"

namespace facs::fuzzy {

/// Consequent of a TSK rule: output = constant + sum_i coefficient[i] * x_i.
/// An empty coefficient vector makes the rule zero-order (constant output).
struct LinearConsequent {
  double constant = 0.0;
  std::vector<double> coefficients;  ///< One per input variable, or empty.

  [[nodiscard]] double evaluate(std::span<const double> inputs) const;
};

/// One TSK rule: antecedent over the input term sets (wildcards allowed),
/// crisp linear consequent, optional weight.
struct SugenoRule {
  std::vector<std::size_t> antecedent;
  LinearConsequent consequent;
  double weight = 1.0;
};

/// Reusable working buffers for the allocation-free TSK inference path —
/// the same scratch-reuse treatment as the Mamdani engine's
/// InferenceScratch. One scratch serves any number of engines (each
/// inference resizes the buffers to its own shape).
struct SugenoScratch {
  std::vector<double> clamped;
  std::vector<FuzzyVector> fuzzified;
};

/// A single-output TSK engine over shared LinguisticVariable inputs.
class SugenoEngine {
 public:
  explicit SugenoEngine(std::string name,
                        TNorm conjunction = TNorm::AlgebraicProduct);

  std::size_t addInput(LinguisticVariable variable);

  /// Adds a rule by antecedent term names ("*" wildcard).
  /// \throws std::invalid_argument on unknown names, arity mismatch, or a
  ///         coefficient count that is neither 0 nor the input count.
  void addRule(const std::vector<std::string>& antecedent_terms,
               LinearConsequent consequent, double weight = 1.0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t inputCount() const noexcept {
    return inputs_.size();
  }
  [[nodiscard]] const LinguisticVariable& input(std::size_t i) const {
    return inputs_.at(i);
  }
  [[nodiscard]] std::size_t ruleCount() const noexcept {
    return rules_.size();
  }

  /// Weighted-average TSK inference. If no rule fires, returns 0 (the
  /// conventional TSK fallback; callers needing another neutral value
  /// should add a wildcard catch-all rule).
  /// \throws std::invalid_argument on arity mismatch.
  /// \throws std::logic_error if the engine has no inputs or rules.
  [[nodiscard]] double infer(std::span<const double> crisp_inputs) const;

  /// As infer(), reusing \p scratch for the clamped-input and fuzzified
  /// buffers — no allocation once the scratch has warmed up, bit-identical
  /// to infer() (same arithmetic in the same order).
  [[nodiscard]] double infer(std::span<const double> crisp_inputs,
                             SugenoScratch& scratch) const;

 private:
  std::string name_;
  TNorm conjunction_;
  std::vector<LinguisticVariable> inputs_;
  std::vector<SugenoRule> rules_;
};

}  // namespace facs::fuzzy
