#include "fuzzy/norms.hpp"

#include <algorithm>

namespace facs::fuzzy {

double apply(TNorm n, double a, double b) noexcept {
  switch (n) {
    case TNorm::Minimum:
      return std::min(a, b);
    case TNorm::AlgebraicProduct:
      return a * b;
    case TNorm::BoundedDifference:
      return std::max(0.0, a + b - 1.0);
  }
  return std::min(a, b);  // unreachable; keeps -Wreturn-type quiet
}

double apply(SNorm n, double a, double b) noexcept {
  switch (n) {
    case SNorm::Maximum:
      return std::max(a, b);
    case SNorm::AlgebraicSum:
      return a + b - a * b;
    case SNorm::BoundedSum:
      return std::min(1.0, a + b);
  }
  return std::max(a, b);
}

std::string_view toString(TNorm n) noexcept {
  switch (n) {
    case TNorm::Minimum:
      return "min";
    case TNorm::AlgebraicProduct:
      return "prod";
    case TNorm::BoundedDifference:
      return "lukasiewicz";
  }
  return "min";
}

std::string_view toString(SNorm n) noexcept {
  switch (n) {
    case SNorm::Maximum:
      return "max";
    case SNorm::AlgebraicSum:
      return "probor";
    case SNorm::BoundedSum:
      return "bsum";
  }
  return "max";
}

}  // namespace facs::fuzzy
