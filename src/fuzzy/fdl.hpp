#pragma once
/// \file fdl.hpp
/// FDL — a small "Fuzzy Definition Language" for declaring Mamdani engines
/// as text, in the spirit of fuzzylite's FLL. Used by the example apps and
/// tests to build controllers without recompiling, and as a serialization
/// format for engine configurations.
///
/// Grammar (line oriented, '#' starts a comment, blank lines ignored):
///
///   engine <name>
///   conjunction  min|prod|lukasiewicz
///   implication  min|prod|lukasiewicz
///   aggregation  max|probor|bsum
///   defuzzifier  centroid|bisector|mom|som|lom
///   resolution   <int>
///   input  <name> <lo> <hi>
///   output <name> <lo> <hi>
///   term <name> tri  <center> <left_width> <right_width>
///   term <name> trap <plateau_lo> <plateau_hi> <left_width> <right_width>
///   term <name> gauss <mean> <sigma>
///   term <name> bell <center> <width> <slope>
///   term <name> sigmoid <inflection> <slope>
///   rule <term>... => <term> [weight <w>]
///
/// `term` lines attach to the most recently declared variable; `rule`
/// antecedents are positional (one per input variable, "*" = wildcard).

#include <iosfwd>
#include <string>
#include <string_view>

#include "fuzzy/engine.hpp"

namespace facs::fuzzy {

/// Error raised by the FDL parser, carrying the 1-based source line.
class FdlError : public std::runtime_error {
 public:
  FdlError(int line, const std::string& message);
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parses an FDL document into a fully constructed engine.
/// \throws FdlError on any syntax or semantic problem.
[[nodiscard]] MamdaniEngine parseFdl(std::string_view text);

/// Reads an FDL document from a stream (e.g. std::ifstream).
[[nodiscard]] MamdaniEngine parseFdl(std::istream& in);

/// Serializes an engine back to FDL. parseFdl(toFdl(e)) reproduces an
/// engine with identical behaviour (round-trip property, covered by tests).
[[nodiscard]] std::string toFdl(const MamdaniEngine& engine);

}  // namespace facs::fuzzy
