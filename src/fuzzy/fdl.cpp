#include "fuzzy/fdl.hpp"

#include <istream>
#include <optional>
#include <sstream>
#include <vector>

#include "fuzzy/shapes.hpp"

namespace facs::fuzzy {

FdlError::FdlError(int line, const std::string& message)
    : std::runtime_error("FDL line " + std::to_string(line) + ": " + message),
      line_{line} {}

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

double parseNumber(const std::string& token, int line) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw FdlError(line, "expected a number, got '" + token + "'");
  }
}

TNorm parseTNorm(const std::string& token, int line) {
  if (token == "min") return TNorm::Minimum;
  if (token == "prod") return TNorm::AlgebraicProduct;
  if (token == "lukasiewicz") return TNorm::BoundedDifference;
  throw FdlError(line, "unknown t-norm '" + token + "'");
}

SNorm parseSNorm(const std::string& token, int line) {
  if (token == "max") return SNorm::Maximum;
  if (token == "probor") return SNorm::AlgebraicSum;
  if (token == "bsum") return SNorm::BoundedSum;
  throw FdlError(line, "unknown s-norm '" + token + "'");
}

Defuzzifier parseDefuzzifier(const std::string& token, int line) {
  if (token == "centroid") return Defuzzifier::Centroid;
  if (token == "bisector") return Defuzzifier::Bisector;
  if (token == "mom") return Defuzzifier::MeanOfMax;
  if (token == "som") return Defuzzifier::SmallestOfMax;
  if (token == "lom") return Defuzzifier::LargestOfMax;
  throw FdlError(line, "unknown defuzzifier '" + token + "'");
}

/// Incremental builder state while walking the document.
struct Builder {
  std::optional<std::string> engine_name;
  EngineConfig config;
  std::vector<LinguisticVariable> inputs;
  std::optional<LinguisticVariable> output;
  // Terms attach to the variable declared last.
  enum class Attach { None, Input, Output } attach = Attach::None;
  struct PendingRule {
    std::vector<std::string> antecedent;
    std::string consequent;
    double weight = 1.0;
  };
  std::vector<PendingRule> rules;
};

void handleTerm(Builder& b, const std::vector<std::string>& tok, int line) {
  if (b.attach == Builder::Attach::None) {
    throw FdlError(line, "'term' before any variable declaration");
  }
  if (tok.size() < 3) throw FdlError(line, "term: missing shape");
  const std::string& name = tok[1];
  const std::string& shape = tok[2];
  std::unique_ptr<MembershipFunction> mf;
  try {
    if (shape == "tri") {
      if (tok.size() != 6) {
        throw FdlError(line, "tri needs: center left_width right_width");
      }
      mf = makeTriangle(parseNumber(tok[3], line), parseNumber(tok[4], line),
                        parseNumber(tok[5], line));
    } else if (shape == "trap") {
      if (tok.size() != 7) {
        throw FdlError(line,
                       "trap needs: plateau_lo plateau_hi left_width right_width");
      }
      mf = makeTrapezoid(parseNumber(tok[3], line), parseNumber(tok[4], line),
                         parseNumber(tok[5], line), parseNumber(tok[6], line));
    } else if (shape == "gauss") {
      if (tok.size() != 5) throw FdlError(line, "gauss needs: mean sigma");
      mf = makeGaussian(parseNumber(tok[3], line), parseNumber(tok[4], line));
    } else if (shape == "bell") {
      if (tok.size() != 6) {
        throw FdlError(line, "bell needs: center width slope");
      }
      mf = makeBell(parseNumber(tok[3], line), parseNumber(tok[4], line),
                    parseNumber(tok[5], line));
    } else if (shape == "sigmoid") {
      if (tok.size() != 5) {
        throw FdlError(line, "sigmoid needs: inflection slope");
      }
      mf = makeSigmoid(parseNumber(tok[3], line), parseNumber(tok[4], line));
    } else {
      throw FdlError(line, "unknown shape '" + shape +
                               "' (tri|trap|gauss|bell|sigmoid)");
    }
    if (b.attach == Builder::Attach::Input) {
      b.inputs.back().addTerm(name, std::move(mf));
    } else {
      b.output->addTerm(name, std::move(mf));
    }
  } catch (const FdlError&) {
    throw;
  } catch (const std::exception& e) {
    throw FdlError(line, e.what());
  }
}

void handleRule(Builder& b, const std::vector<std::string>& tok, int line) {
  Builder::PendingRule r;
  std::size_t i = 1;
  for (; i < tok.size() && tok[i] != "=>"; ++i) r.antecedent.push_back(tok[i]);
  if (i >= tok.size()) throw FdlError(line, "rule: missing '=>'");
  ++i;
  if (i >= tok.size()) throw FdlError(line, "rule: missing consequent term");
  r.consequent = tok[i++];
  if (i < tok.size()) {
    if (tok[i] != "weight" || i + 1 >= tok.size()) {
      throw FdlError(line, "rule: expected 'weight <w>' after consequent");
    }
    r.weight = parseNumber(tok[i + 1], line);
    i += 2;
  }
  if (i != tok.size()) throw FdlError(line, "rule: trailing tokens");
  b.rules.push_back(std::move(r));
}

}  // namespace

MamdaniEngine parseFdl(std::string_view text) {
  Builder b;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];

    if (kw == "engine") {
      if (tok.size() != 2) throw FdlError(line_no, "engine: expected a name");
      b.engine_name = tok[1];
    } else if (kw == "conjunction") {
      if (tok.size() != 2) throw FdlError(line_no, "conjunction: expected one operator");
      b.config.conjunction = parseTNorm(tok[1], line_no);
    } else if (kw == "implication") {
      if (tok.size() != 2) throw FdlError(line_no, "implication: expected one operator");
      b.config.implication = parseTNorm(tok[1], line_no);
    } else if (kw == "aggregation") {
      if (tok.size() != 2) throw FdlError(line_no, "aggregation: expected one operator");
      b.config.aggregation = parseSNorm(tok[1], line_no);
    } else if (kw == "defuzzifier") {
      if (tok.size() != 2) throw FdlError(line_no, "defuzzifier: expected one method");
      b.config.defuzzifier = parseDefuzzifier(tok[1], line_no);
    } else if (kw == "resolution") {
      if (tok.size() != 2) throw FdlError(line_no, "resolution: expected an int");
      b.config.resolution = static_cast<int>(parseNumber(tok[1], line_no));
    } else if (kw == "input" || kw == "output") {
      if (tok.size() != 4) {
        throw FdlError(line_no, kw + ": expected <name> <lo> <hi>");
      }
      try {
        LinguisticVariable v{tok[1], Interval{parseNumber(tok[2], line_no),
                                              parseNumber(tok[3], line_no)}};
        if (kw == "input") {
          b.inputs.push_back(std::move(v));
          b.attach = Builder::Attach::Input;
        } else {
          b.output = std::move(v);
          b.attach = Builder::Attach::Output;
        }
      } catch (const FdlError&) {
        throw;
      } catch (const std::exception& e) {
        throw FdlError(line_no, e.what());
      }
    } else if (kw == "term") {
      handleTerm(b, tok, line_no);
    } else if (kw == "rule") {
      handleRule(b, tok, line_no);
    } else {
      throw FdlError(line_no, "unknown keyword '" + kw + "'");
    }
  }

  if (!b.engine_name) throw FdlError(1, "missing 'engine <name>' declaration");
  if (!b.output) throw FdlError(1, "missing output variable");

  MamdaniEngine engine{*b.engine_name, b.config};
  for (auto& v : b.inputs) engine.addInput(std::move(v));
  engine.setOutput(std::move(*b.output));
  for (const auto& r : b.rules) {
    try {
      engine.addRule(r.antecedent, r.consequent, r.weight);
    } catch (const std::exception& e) {
      throw FdlError(1, std::string{"while adding rule: "} + e.what());
    }
  }
  engine.checkValid();
  return engine;
}

MamdaniEngine parseFdl(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseFdl(buffer.str());
}

namespace {

void writeMf(std::ostream& os, const MembershipFunction& mf) {
  // describe() already emits the FDL shape syntax modulo punctuation, but
  // writing parameters explicitly keeps the round-trip exact.
  if (const auto* tri = dynamic_cast<const Triangular*>(&mf)) {
    os << "tri " << tri->center() << " " << tri->leftWidth() << " "
       << tri->rightWidth();
  } else if (const auto* trap = dynamic_cast<const Trapezoidal*>(&mf)) {
    os << "trap " << trap->plateauLo() << " " << trap->plateauHi() << " "
       << trap->leftWidth() << " " << trap->rightWidth();
  } else if (const auto* gauss = dynamic_cast<const Gaussian*>(&mf)) {
    os << "gauss " << gauss->mean() << " " << gauss->sigma();
  } else if (dynamic_cast<const GeneralizedBell*>(&mf) != nullptr ||
             dynamic_cast<const Sigmoid*>(&mf) != nullptr) {
    // bell(c, w, s) / sigmoid(i, s): describe() prints "name(a, b[, c])".
    std::string d = mf.describe();
    for (char& ch : d) {
      if (ch == '(' || ch == ',' || ch == ')') ch = ' ';
    }
    os << d;
  } else {
    throw std::logic_error("toFdl: unsupported membership function shape");
  }
}

void writeVariable(std::ostream& os, const char* kw,
                   const LinguisticVariable& v) {
  os << kw << " " << v.name() << " " << v.universe().lo << " "
     << v.universe().hi << "\n";
  for (const Term& t : v.terms()) {
    os << "  term " << t.name() << " ";
    writeMf(os, t.mf());
    os << "\n";
  }
}

}  // namespace

std::string toFdl(const MamdaniEngine& engine) {
  std::ostringstream os;
  os << "engine " << engine.name() << "\n";
  os << "conjunction " << toString(engine.config().conjunction) << "\n";
  os << "implication " << toString(engine.config().implication) << "\n";
  os << "aggregation " << toString(engine.config().aggregation) << "\n";
  os << "defuzzifier " << toString(engine.config().defuzzifier) << "\n";
  os << "resolution " << engine.config().resolution << "\n";
  for (const auto& v : engine.inputs()) writeVariable(os, "input", v);
  writeVariable(os, "output", engine.output());
  for (const Rule& r : engine.rules().rules()) {
    os << "rule";
    for (std::size_t v = 0; v < r.antecedent.size(); ++v) {
      if (r.antecedent[v] == kAnyTerm) {
        os << " *";
      } else {
        os << " " << engine.input(v).term(r.antecedent[v]).name();
      }
    }
    os << " => " << engine.output().term(r.consequent).name();
    if (r.weight != 1.0) os << " weight " << r.weight;
    os << "\n";
  }
  return os.str();
}

}  // namespace facs::fuzzy
