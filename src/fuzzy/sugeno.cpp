#include "fuzzy/sugeno.hpp"

#include <sstream>
#include <stdexcept>

namespace facs::fuzzy {

double LinearConsequent::evaluate(std::span<const double> inputs) const {
  double out = constant;
  for (std::size_t i = 0; i < coefficients.size() && i < inputs.size(); ++i) {
    out += coefficients[i] * inputs[i];
  }
  return out;
}

SugenoEngine::SugenoEngine(std::string name, TNorm conjunction)
    : name_{std::move(name)}, conjunction_{conjunction} {
  if (name_.empty()) {
    throw std::invalid_argument("engine name must not be empty");
  }
}

std::size_t SugenoEngine::addInput(LinguisticVariable variable) {
  inputs_.push_back(std::move(variable));
  return inputs_.size() - 1;
}

void SugenoEngine::addRule(const std::vector<std::string>& antecedent_terms,
                           LinearConsequent consequent, double weight) {
  if (antecedent_terms.size() != inputs_.size()) {
    throw std::invalid_argument("TSK rule arity mismatch");
  }
  if (!consequent.coefficients.empty() &&
      consequent.coefficients.size() != inputs_.size()) {
    throw std::invalid_argument(
        "TSK consequent needs 0 coefficients (zero-order) or one per input");
  }
  if (!(weight > 0.0) || weight > 1.0) {
    throw std::invalid_argument("rule weight must be in (0, 1]");
  }

  SugenoRule rule;
  rule.weight = weight;
  rule.consequent = std::move(consequent);
  rule.antecedent.reserve(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const std::string& term = antecedent_terms[i];
    if (term == "*" || term == "any") {
      rule.antecedent.push_back(kAnyTerm);
      continue;
    }
    const auto idx = inputs_[i].termIndex(term);
    if (!idx) {
      throw std::invalid_argument("unknown term '" + term + "' for variable '" +
                                  inputs_[i].name() + "'");
    }
    rule.antecedent.push_back(*idx);
  }
  rules_.push_back(std::move(rule));
}

double SugenoEngine::infer(std::span<const double> crisp_inputs) const {
  // Shared across engines on the same thread, as with the Mamdani scratch:
  // every inference resizes the buffers to its own shape, so the steady
  // state allocates nothing.
  static thread_local SugenoScratch scratch;
  return infer(crisp_inputs, scratch);
}

double SugenoEngine::infer(std::span<const double> crisp_inputs,
                           SugenoScratch& scratch) const {
  if (inputs_.empty()) {
    throw std::logic_error("TSK engine '" + name_ + "' has no inputs");
  }
  if (rules_.empty()) {
    throw std::logic_error("TSK engine '" + name_ + "' has no rules");
  }
  if (crisp_inputs.size() != inputs_.size()) {
    std::ostringstream os;
    os << "TSK engine '" << name_ << "' expects " << inputs_.size()
       << " inputs, got " << crisp_inputs.size();
    throw std::invalid_argument(os.str());
  }

  std::vector<double>& clamped = scratch.clamped;
  std::vector<FuzzyVector>& fuzzified = scratch.fuzzified;
  clamped.resize(inputs_.size());
  fuzzified.resize(inputs_.size());
  for (std::size_t v = 0; v < inputs_.size(); ++v) {
    clamped[v] = inputs_[v].universe().clamp(crisp_inputs[v]);
    inputs_[v].fuzzifyInto(clamped[v], fuzzified[v]);
  }

  double weighted_sum = 0.0;
  double strength_sum = 0.0;
  for (const SugenoRule& rule : rules_) {
    double strength = 1.0;
    for (std::size_t v = 0; v < rule.antecedent.size(); ++v) {
      if (rule.antecedent[v] == kAnyTerm) continue;
      strength =
          apply(conjunction_, strength, fuzzified[v][rule.antecedent[v]]);
      if (strength == 0.0) break;
    }
    strength *= rule.weight;
    if (strength <= 0.0) continue;
    weighted_sum += strength * rule.consequent.evaluate(clamped);
    strength_sum += strength;
  }
  return strength_sum > 0.0 ? weighted_sum / strength_sum : 0.0;
}

}  // namespace facs::fuzzy
