#pragma once
/// \file norms.hpp
/// Triangular norms and co-norms used for rule conjunction, implication and
/// aggregation. The paper does not name its operators; the default FACS
/// configuration (min / min / max) matches the standard Mamdani controller
/// of the authors' earlier fuzzy-CAC work (Barolli et al., IPSJ 2001).

#include <string_view>

namespace facs::fuzzy {

/// Triangular norms (fuzzy AND / implication).
enum class TNorm {
  Minimum,            ///< min(a, b) — Mamdani clip.
  AlgebraicProduct,   ///< a * b — Larsen scale.
  BoundedDifference,  ///< max(0, a + b - 1) — Lukasiewicz.
};

/// Triangular co-norms (fuzzy OR / aggregation).
enum class SNorm {
  Maximum,       ///< max(a, b).
  AlgebraicSum,  ///< a + b - a*b (probabilistic OR).
  BoundedSum,    ///< min(1, a + b).
};

/// Applies the t-norm to operands in [0, 1].
[[nodiscard]] double apply(TNorm n, double a, double b) noexcept;

/// Applies the s-norm to operands in [0, 1].
[[nodiscard]] double apply(SNorm n, double a, double b) noexcept;

[[nodiscard]] std::string_view toString(TNorm n) noexcept;
[[nodiscard]] std::string_view toString(SNorm n) noexcept;

}  // namespace facs::fuzzy
