#pragma once
/// \file variable.hpp
/// Linguistic terms and linguistic variables (the "term sets" of the paper,
/// e.g. T(S) = {Slow, Middle, Fast}).

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fuzzy/membership.hpp"

namespace facs::fuzzy {

/// A named fuzzy set over a variable's universe: one entry of a term set.
/// Value semantics (deep-copies its membership function).
class Term {
 public:
  Term(std::string name, std::unique_ptr<MembershipFunction> mf);

  Term(const Term& other);
  Term& operator=(const Term& other);
  Term(Term&&) noexcept = default;
  Term& operator=(Term&&) noexcept = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const MembershipFunction& mf() const noexcept { return *mf_; }
  [[nodiscard]] double degree(double x) const noexcept { return mf_->degree(x); }

 private:
  std::string name_;
  std::unique_ptr<MembershipFunction> mf_;
};

/// Degrees of membership of one crisp value in every term of a variable,
/// in term-declaration order. Produced by LinguisticVariable::fuzzify().
using FuzzyVector = std::vector<double>;

/// A linguistic variable: a name, a universe of discourse [min, max] and an
/// ordered term set.
///
/// Crisp inputs are clamped to the universe before fuzzification — GPS noise
/// can report a speed slightly above the nominal 120 km/h maximum and the
/// controller must still produce a decision (Core Guidelines P.6: make
/// run-time checkable what cannot be checked statically).
class LinguisticVariable {
 public:
  /// \throws std::invalid_argument if the universe is empty or inverted.
  LinguisticVariable(std::string name, Interval universe);

  /// Appends a term. Term names must be unique within the variable.
  /// \throws std::invalid_argument on duplicate name.
  void addTerm(std::string term_name, std::unique_ptr<MembershipFunction> mf);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Interval universe() const noexcept { return universe_; }
  [[nodiscard]] std::size_t termCount() const noexcept { return terms_.size(); }
  [[nodiscard]] const Term& term(std::size_t i) const { return terms_.at(i); }
  [[nodiscard]] const std::vector<Term>& terms() const noexcept {
    return terms_;
  }

  /// Index of the term with the given name, if any.
  [[nodiscard]] std::optional<std::size_t> termIndex(
      std::string_view term_name) const noexcept;

  /// Degrees of membership of \p x (clamped to the universe) in every term.
  [[nodiscard]] FuzzyVector fuzzify(double x) const;

  /// As fuzzify(), writing into \p out (cleared first). Reusing one vector
  /// across calls keeps repeated fuzzification allocation-free — the
  /// engine's scratch inference path depends on this.
  void fuzzifyInto(double x, FuzzyVector& out) const;

  /// Tabulates term \p t's membership on a fixed sample grid:
  /// out[i] = term(t).degree(xs[i]), no clamping (the grid is already inside
  /// the universe). This is how sealed engines precompute their
  /// defuzzification tables — lookups reproduce degree() bit-exactly.
  /// \throws std::out_of_range on a bad term index,
  ///         std::invalid_argument on mismatched span sizes.
  void tabulateTerm(std::size_t t, std::span<const double> xs,
                    std::span<double> out) const;

  /// Index of the term with the highest membership at \p x (ties resolved to
  /// the earliest-declared term).
  /// \throws std::logic_error if the variable has no terms.
  [[nodiscard]] std::size_t winningTerm(double x) const;

  /// True if every sampled point of the universe belongs to at least one
  /// term with degree >= \p min_degree. A healthy FLC input partition covers
  /// its whole universe; the FACS term sets are validated with this in tests.
  [[nodiscard]] bool covers(double min_degree = 0.0,
                            int samples = 2001) const;

 private:
  std::string name_;
  Interval universe_;
  std::vector<Term> terms_;
};

}  // namespace facs::fuzzy
