#pragma once
/// \file membership.hpp
/// Membership-function shapes used by the fuzzy inference engine.
///
/// The paper (Barolli et al., ICDCSW'07, Section 3, Fig. 3) uses exactly two
/// shapes, chosen "because they are suitable for real-time operation":
///
///   triangular   f(x; x0, a0, a1)      — centre x0, left width a0, right a1
///   trapezoidal  g(x; x0, x1, a0, a1)  — plateau [x0, x1], widths a0 / a1
///
/// Both are represented here with the paper's parameterisation so that the
/// FLC definitions in src/core can be read side-by-side with the paper.

#include <memory>
#include <string>
#include <utility>

namespace facs::fuzzy {

/// Closed interval on the real line. Used for membership-function supports
/// and linguistic-variable universes.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] constexpr double width() const noexcept { return hi - lo; }
  [[nodiscard]] constexpr bool contains(double x) const noexcept {
    return x >= lo && x <= hi;
  }
  [[nodiscard]] constexpr double clamp(double x) const noexcept {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
  }
  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// Abstract membership function mu : R -> [0, 1].
///
/// Concrete shapes are immutable after construction; the class is cloneable
/// so that terms and variables have value semantics.
class MembershipFunction {
 public:
  virtual ~MembershipFunction() = default;

  /// Degree of membership of \p x, always within [0, 1].
  [[nodiscard]] virtual double degree(double x) const noexcept = 0;

  /// Smallest closed interval outside of which degree() is zero.
  [[nodiscard]] virtual Interval support() const noexcept = 0;

  /// Representative crisp value of the term (peak / plateau midpoint).
  /// Used by maximum-based and weighted-average defuzzifiers.
  [[nodiscard]] virtual double peak() const noexcept = 0;

  /// Human-readable description, e.g. "tri(30, 15, 30)".
  [[nodiscard]] virtual std::string describe() const = 0;

  [[nodiscard]] virtual std::unique_ptr<MembershipFunction> clone() const = 0;

 protected:
  MembershipFunction() = default;
  MembershipFunction(const MembershipFunction&) = default;
  MembershipFunction& operator=(const MembershipFunction&) = default;
};

/// Triangular membership function, the paper's f(x; x0, a0, a1):
///
///   f = (x - x0)/a0 + 1   for x0 - a0 < x <= x0
///   f = (x0 - x)/a1 + 1   for x0 < x <= x0 + a1
///   f = 0                 otherwise
///
/// A zero width degenerates that side into a vertical edge (crisp shoulder),
/// which the paper uses for terms anchored at the universe boundary.
class Triangular final : public MembershipFunction {
 public:
  /// \param center     x0 — the apex, where degree == 1.
  /// \param left_width a0 >= 0 — distance from apex to the left zero-crossing.
  /// \param right_width a1 >= 0 — distance from apex to the right zero-crossing.
  /// \throws std::invalid_argument if a width is negative, both are zero, or
  ///         any parameter is non-finite.
  Triangular(double center, double left_width, double right_width);

  [[nodiscard]] double degree(double x) const noexcept override;
  [[nodiscard]] Interval support() const noexcept override;
  [[nodiscard]] double peak() const noexcept override { return center_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<MembershipFunction> clone() const override;

  [[nodiscard]] double center() const noexcept { return center_; }
  [[nodiscard]] double leftWidth() const noexcept { return left_; }
  [[nodiscard]] double rightWidth() const noexcept { return right_; }

 private:
  double center_;
  double left_;
  double right_;
};

/// Trapezoidal membership function, the paper's g(x; x0, x1, a0, a1):
///
///   g = (x - x0)/a0 + 1   for x0 - a0 < x <= x0
///   g = 1                 for x0 < x <= x1
///   g = (x1 - x)/a1 + 1   for x1 < x <= x1 + a1
///   g = 0                 otherwise
///
/// With a zero-width side this acts as a left/right shoulder.
class Trapezoidal final : public MembershipFunction {
 public:
  /// \param plateau_lo x0 — left edge of the plateau (degree == 1 region).
  /// \param plateau_hi x1 >= x0 — right edge of the plateau.
  /// \param left_width a0 >= 0, \param right_width a1 >= 0.
  /// \throws std::invalid_argument on inverted plateau, negative width, or
  ///         non-finite parameters.
  Trapezoidal(double plateau_lo, double plateau_hi, double left_width,
              double right_width);

  [[nodiscard]] double degree(double x) const noexcept override;
  [[nodiscard]] Interval support() const noexcept override;
  [[nodiscard]] double peak() const noexcept override {
    return 0.5 * (plateau_lo_ + plateau_hi_);
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<MembershipFunction> clone() const override;

  [[nodiscard]] double plateauLo() const noexcept { return plateau_lo_; }
  [[nodiscard]] double plateauHi() const noexcept { return plateau_hi_; }
  [[nodiscard]] double leftWidth() const noexcept { return left_; }
  [[nodiscard]] double rightWidth() const noexcept { return right_; }

 private:
  double plateau_lo_;
  double plateau_hi_;
  double left_;
  double right_;
};

/// Convenience factories mirroring the paper's notation.
[[nodiscard]] std::unique_ptr<MembershipFunction> makeTriangle(
    double x0, double a0, double a1);
[[nodiscard]] std::unique_ptr<MembershipFunction> makeTrapezoid(
    double x0, double x1, double a0, double a1);

}  // namespace facs::fuzzy
