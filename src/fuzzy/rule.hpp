#pragma once
/// \file rule.hpp
/// Fuzzy IF-THEN rules and rule bases (the paper's FRBs, Tables 1 and 2).
///
/// A rule has the paper's form
///     IF "conditions" THEN "control action"
/// where the conditions are a conjunction of one term per input variable
/// (wildcards allowed) and the control action selects one output term.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace facs::fuzzy {

class LinguisticVariable;

/// Sentinel meaning "this input variable does not constrain the rule".
inline constexpr std::size_t kAnyTerm = static_cast<std::size_t>(-1);

/// One IF-THEN rule over a fixed roster of input variables.
struct Rule {
  /// Term index per input variable (position i refers to input variable i);
  /// kAnyTerm entries are ignored during matching.
  std::vector<std::size_t> antecedent;
  /// Index of the output term this rule activates.
  std::size_t consequent = 0;
  /// Rule weight in (0, 1]; scales the firing strength.
  double weight = 1.0;
};

/// Result of validating a rule base against its variables.
struct RuleBaseReport {
  bool ok = true;
  /// Antecedent combinations (over the full cartesian product of input term
  /// sets) matched by no rule. The paper's FRBs are complete: 3x7x2 = 42 and
  /// 3x3x3 = 27 rules, one per combination.
  std::vector<std::string> uncovered;
  /// Pairs of rule indices with identical antecedents but different
  /// consequents (ambiguous control actions).
  std::vector<std::pair<std::size_t, std::size_t>> conflicts;
  /// Rules with out-of-range term indices or malformed weights.
  std::vector<std::size_t> malformed;
};

/// An ordered collection of rules tied to a roster of input variables and
/// one output variable (both owned by the engine; the rule base stores only
/// indices, keeping it cheap to copy).
class RuleBase {
 public:
  RuleBase() = default;

  void add(Rule rule) { rules_.push_back(std::move(rule)); }

  /// Convenience textual add: term names resolved against the variables.
  /// Use "*" (or "any") as a wildcard antecedent entry.
  /// \throws std::invalid_argument on unknown names or arity mismatch.
  void add(const std::vector<LinguisticVariable>& inputs,
           const LinguisticVariable& output,
           const std::vector<std::string>& antecedent_terms,
           const std::string& consequent_term, double weight = 1.0);

  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }
  [[nodiscard]] const Rule& rule(std::size_t i) const { return rules_.at(i); }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept {
    return rules_;
  }

  /// Exhaustive structural validation against the given variables:
  /// completeness over the cartesian product, conflicts and malformed rules.
  [[nodiscard]] RuleBaseReport validate(
      const std::vector<LinguisticVariable>& inputs,
      const LinguisticVariable& output) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace facs::fuzzy
