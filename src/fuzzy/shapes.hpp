#pragma once
/// \file shapes.hpp
/// Additional membership-function shapes beyond the paper's triangular and
/// trapezoidal forms. The FACS controllers do not use these (the paper
/// restricts itself to the real-time-friendly piecewise-linear shapes), but
/// a general-purpose fuzzy library ships the standard smooth family for
/// downstream users and for sensitivity experiments.

#include "fuzzy/membership.hpp"

namespace facs::fuzzy {

/// Gaussian bell: mu(x) = exp(-(x - mean)^2 / (2 sigma^2)).
/// The support is reported as mean +/- 4 sigma (beyond which the degree is
/// below 3.4e-4 and treated as zero by the engine's aggregation).
class Gaussian final : public MembershipFunction {
 public:
  /// \throws std::invalid_argument if sigma is not positive or a parameter
  ///         is non-finite.
  Gaussian(double mean, double sigma);

  [[nodiscard]] double degree(double x) const noexcept override;
  [[nodiscard]] Interval support() const noexcept override;
  [[nodiscard]] double peak() const noexcept override { return mean_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<MembershipFunction> clone() const override;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mean_;
  double sigma_;
};

/// Generalized bell: mu(x) = 1 / (1 + |(x - center)/width|^(2 slope)).
class GeneralizedBell final : public MembershipFunction {
 public:
  /// \throws std::invalid_argument if width or slope is not positive.
  GeneralizedBell(double center, double width, double slope);

  [[nodiscard]] double degree(double x) const noexcept override;
  [[nodiscard]] Interval support() const noexcept override;
  [[nodiscard]] double peak() const noexcept override { return center_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<MembershipFunction> clone() const override;

 private:
  double center_;
  double width_;
  double slope_;
};

/// Sigmoid: mu(x) = 1 / (1 + exp(-slope (x - inflection))). Positive slope
/// rises left-to-right (a smooth right shoulder); negative slope falls.
class Sigmoid final : public MembershipFunction {
 public:
  /// \throws std::invalid_argument if slope is zero or non-finite.
  Sigmoid(double inflection, double slope);

  [[nodiscard]] double degree(double x) const noexcept override;
  [[nodiscard]] Interval support() const noexcept override;
  [[nodiscard]] double peak() const noexcept override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<MembershipFunction> clone() const override;

 private:
  double inflection_;
  double slope_;
};

[[nodiscard]] std::unique_ptr<MembershipFunction> makeGaussian(double mean,
                                                               double sigma);
[[nodiscard]] std::unique_ptr<MembershipFunction> makeBell(double center,
                                                           double width,
                                                           double slope);
[[nodiscard]] std::unique_ptr<MembershipFunction> makeSigmoid(
    double inflection, double slope);

}  // namespace facs::fuzzy
