#include "fuzzy/membership.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace facs::fuzzy {

namespace {

void requireFinite(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument(std::string{"membership function parameter '"} +
                                what + "' must be finite");
  }
}

}  // namespace

Triangular::Triangular(double center, double left_width, double right_width)
    : center_{center}, left_{left_width}, right_{right_width} {
  requireFinite(center, "center");
  requireFinite(left_width, "left_width");
  requireFinite(right_width, "right_width");
  if (left_ < 0.0 || right_ < 0.0) {
    throw std::invalid_argument("triangular widths must be non-negative");
  }
  if (left_ == 0.0 && right_ == 0.0) {
    throw std::invalid_argument(
        "triangular membership function must have a non-empty support");
  }
}

double Triangular::degree(double x) const noexcept {
  if (x <= center_) {
    if (left_ == 0.0) return x == center_ ? 1.0 : 0.0;
    const double d = (x - center_) / left_ + 1.0;
    return d > 0.0 ? d : 0.0;
  }
  if (right_ == 0.0) return 0.0;
  const double d = (center_ - x) / right_ + 1.0;
  return d > 0.0 ? d : 0.0;
}

Interval Triangular::support() const noexcept {
  return {center_ - left_, center_ + right_};
}

std::string Triangular::describe() const {
  std::ostringstream os;
  os << "tri(" << center_ << ", " << left_ << ", " << right_ << ")";
  return os.str();
}

std::unique_ptr<MembershipFunction> Triangular::clone() const {
  return std::make_unique<Triangular>(*this);
}

Trapezoidal::Trapezoidal(double plateau_lo, double plateau_hi,
                         double left_width, double right_width)
    : plateau_lo_{plateau_lo},
      plateau_hi_{plateau_hi},
      left_{left_width},
      right_{right_width} {
  requireFinite(plateau_lo, "plateau_lo");
  requireFinite(plateau_hi, "plateau_hi");
  requireFinite(left_width, "left_width");
  requireFinite(right_width, "right_width");
  if (plateau_hi_ < plateau_lo_) {
    throw std::invalid_argument("trapezoid plateau is inverted (x1 < x0)");
  }
  if (left_ < 0.0 || right_ < 0.0) {
    throw std::invalid_argument("trapezoid widths must be non-negative");
  }
}

double Trapezoidal::degree(double x) const noexcept {
  if (x >= plateau_lo_ && x <= plateau_hi_) return 1.0;
  if (x < plateau_lo_) {
    if (left_ == 0.0) return 0.0;
    const double d = (x - plateau_lo_) / left_ + 1.0;
    return d > 0.0 ? d : 0.0;
  }
  if (right_ == 0.0) return 0.0;
  const double d = (plateau_hi_ - x) / right_ + 1.0;
  return d > 0.0 ? d : 0.0;
}

Interval Trapezoidal::support() const noexcept {
  return {plateau_lo_ - left_, plateau_hi_ + right_};
}

std::string Trapezoidal::describe() const {
  std::ostringstream os;
  os << "trap(" << plateau_lo_ << ", " << plateau_hi_ << ", " << left_ << ", "
     << right_ << ")";
  return os.str();
}

std::unique_ptr<MembershipFunction> Trapezoidal::clone() const {
  return std::make_unique<Trapezoidal>(*this);
}

std::unique_ptr<MembershipFunction> makeTriangle(double x0, double a0,
                                                 double a1) {
  return std::make_unique<Triangular>(x0, a0, a1);
}

std::unique_ptr<MembershipFunction> makeTrapezoid(double x0, double x1,
                                                  double a0, double a1) {
  return std::make_unique<Trapezoidal>(x0, x1, a0, a1);
}

}  // namespace facs::fuzzy
