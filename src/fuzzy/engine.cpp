#include "fuzzy/engine.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace facs::fuzzy {

MamdaniEngine::MamdaniEngine(std::string name, EngineConfig config)
    : name_{std::move(name)}, config_{config} {
  if (name_.empty()) {
    throw std::invalid_argument("engine name must not be empty");
  }
  if (config_.resolution < 2) {
    throw std::invalid_argument("engine resolution must be >= 2");
  }
}

std::size_t MamdaniEngine::addInput(LinguisticVariable variable) {
  sealed_ = false;
  inputs_.push_back(std::move(variable));
  return inputs_.size() - 1;
}

void MamdaniEngine::setOutput(LinguisticVariable variable) {
  sealed_ = false;
  output_.clear();
  output_.push_back(std::move(variable));
}

void MamdaniEngine::addRule(const std::vector<std::string>& antecedent_terms,
                            const std::string& consequent_term, double weight) {
  sealed_ = false;
  rules_.add(inputs_, output(), antecedent_terms, consequent_term, weight);
}

void MamdaniEngine::addRule(Rule rule) {
  sealed_ = false;
  rules_.add(std::move(rule));
}

const LinguisticVariable& MamdaniEngine::output() const {
  if (output_.empty()) {
    throw std::logic_error("engine '" + name_ + "' has no output variable");
  }
  return output_.front();
}

void MamdaniEngine::checkValid() const {
  if (inputs_.empty()) {
    throw std::logic_error("engine '" + name_ + "' has no input variables");
  }
  for (const auto& v : inputs_) {
    if (v.termCount() == 0) {
      throw std::logic_error("engine '" + name_ + "': input variable '" +
                             v.name() + "' has no terms");
    }
  }
  const LinguisticVariable& out = output();  // throws if missing
  if (out.termCount() == 0) {
    throw std::logic_error("engine '" + name_ + "': output variable '" +
                           out.name() + "' has no terms");
  }
  if (rules_.empty()) {
    throw std::logic_error("engine '" + name_ + "' has an empty rule base");
  }
  const RuleBaseReport report = rules_.validate(inputs_, out);
  if (!report.malformed.empty()) {
    std::ostringstream os;
    os << "engine '" << name_ << "': rule " << report.malformed.front()
       << " is malformed (bad arity, term index or weight)";
    throw std::logic_error(os.str());
  }
  if (!report.conflicts.empty()) {
    std::ostringstream os;
    os << "engine '" << name_ << "': rules " << report.conflicts.front().first
       << " and " << report.conflicts.front().second
       << " share an antecedent but disagree on the consequent";
    throw std::logic_error(os.str());
  }
  // Uncovered combinations are allowed (sparse rule bases are legal); the
  // FACS controllers assert completeness separately in their tests.
}

void MamdaniEngine::setConfig(const EngineConfig& config) {
  if (config.resolution < 2) {
    throw std::invalid_argument("engine resolution must be >= 2");
  }
  sealed_ = false;
  config_ = config;
}

void MamdaniEngine::seal() {
  checkValid();
  sealed_ = true;
}

void MamdaniEngine::ensureValid() const {
  if (!sealed_) checkValid();
}

void MamdaniEngine::fireInto(const std::vector<FuzzyVector>& fuzzified,
                             std::vector<double>& strengths) const {
  strengths.clear();
  strengths.reserve(rules_.size());
  for (const Rule& r : rules_.rules()) {
    double strength = 1.0;
    for (std::size_t v = 0; v < r.antecedent.size(); ++v) {
      if (r.antecedent[v] == kAnyTerm) continue;
      strength = apply(config_.conjunction, strength,
                       fuzzified[v][r.antecedent[v]]);
      if (strength == 0.0) break;
    }
    strengths.push_back(strength * r.weight);
  }
}

double MamdaniEngine::aggregateAndDefuzzify(
    const std::vector<double>& strengths,
    std::vector<double>& term_activation) const {
  // Per-output-term activation level: the s-norm of the strengths of all
  // rules concluding in that term. Computing per-term activation first (and
  // evaluating each term's membership once per sample point) keeps the
  // aggregated-curve evaluation O(#terms) instead of O(#rules).
  const LinguisticVariable& out = output();
  term_activation.assign(out.termCount(), 0.0);
  for (std::size_t i = 0; i < strengths.size(); ++i) {
    if (strengths[i] <= 0.0) continue;
    const std::size_t t = rules_.rule(i).consequent;
    term_activation[t] =
        apply(config_.aggregation, term_activation[t], strengths[i]);
  }

  const auto curve = [&](double x) {
    double mu = 0.0;
    for (std::size_t t = 0; t < term_activation.size(); ++t) {
      if (term_activation[t] <= 0.0) continue;
      const double clipped = apply(config_.implication, term_activation[t],
                                   out.term(t).degree(x));
      mu = apply(config_.aggregation, mu, clipped);
    }
    return mu;
  };

  return defuzzify(config_.defuzzifier, curve, out.universe(),
                   config_.resolution);
}

double MamdaniEngine::infer(std::span<const double> crisp_inputs) const {
  // Shared across engines on the same thread; every inference resizes the
  // buffers to its own shape, so the steady state allocates nothing.
  static thread_local InferenceScratch scratch;
  return inferInto(crisp_inputs, scratch);
}

double MamdaniEngine::infer(std::span<const double> crisp_inputs,
                            InferenceScratch& scratch) const {
  return inferInto(crisp_inputs, scratch);
}

double MamdaniEngine::inferInto(std::span<const double> crisp_inputs,
                                InferenceScratch& scratch) const {
  ensureValid();
  if (crisp_inputs.size() != inputs_.size()) {
    std::ostringstream os;
    os << "engine '" << name_ << "' expects " << inputs_.size()
       << " inputs, got " << crisp_inputs.size();
    throw std::invalid_argument(os.str());
  }

  scratch.fuzzified.resize(inputs_.size());
  for (std::size_t v = 0; v < inputs_.size(); ++v) {
    inputs_[v].fuzzifyInto(crisp_inputs[v], scratch.fuzzified[v]);
  }
  fireInto(scratch.fuzzified, scratch.strengths);
  return aggregateAndDefuzzify(scratch.strengths, scratch.term_activation);
}

InferenceTrace MamdaniEngine::inferTraced(
    std::span<const double> crisp_inputs) const {
  ensureValid();
  if (crisp_inputs.size() != inputs_.size()) {
    std::ostringstream os;
    os << "engine '" << name_ << "' expects " << inputs_.size()
       << " inputs, got " << crisp_inputs.size();
    throw std::invalid_argument(os.str());
  }

  InferenceTrace trace;
  trace.inputs.reserve(inputs_.size());
  trace.fuzzified.reserve(inputs_.size());
  for (std::size_t v = 0; v < inputs_.size(); ++v) {
    const double clamped = inputs_[v].universe().clamp(crisp_inputs[v]);
    trace.inputs.push_back(clamped);
    trace.fuzzified.push_back(inputs_[v].fuzzify(clamped));
  }

  // Exactly the scratch path's arithmetic — fireInto() and
  // aggregateAndDefuzzify() are the single implementation both share — plus
  // the activation bookkeeping only the trace wants.
  std::vector<double> strengths;
  fireInto(trace.fuzzified, strengths);
  for (std::size_t i = 0; i < strengths.size(); ++i) {
    if (strengths[i] > 0.0) {
      trace.activations.push_back({i, strengths[i]});
    }
  }

  std::vector<double> term_activation;
  trace.crisp_output = aggregateAndDefuzzify(strengths, term_activation);
  trace.winning_output_term = output().winningTerm(trace.crisp_output);
  return trace;
}

}  // namespace facs::fuzzy
