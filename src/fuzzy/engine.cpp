#include "fuzzy/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace facs::fuzzy {

namespace {

/// Monotonic id source for seal(): a BatchScratch memo keyed on the id can
/// never be replayed against a different engine (or the same engine after a
/// mutation + reseal), even if an engine object is destroyed and another
/// constructed at the same address.
std::atomic<std::uint64_t> g_seal_counter{0};

/// The aggregation inner loop of the sealed path, specialized per operator
/// pair so the per-sample work is branch-light and autovectorizable. Each
/// functor mirrors apply() in norms.cpp exactly — same primitive ops, so
/// the specialized loops share every bit with the generic path.
template <typename ImplOp, typename AggOp>
void accumulateRow(double activation, const double* term_mu, double* mu,
                   std::size_t n, ImplOp impl, AggOp agg) {
  for (std::size_t i = 0; i < n; ++i) {
    mu[i] = agg(mu[i], impl(activation, term_mu[i]));
  }
}

struct MinOp {
  double operator()(double a, double b) const { return std::min(a, b); }
};
struct ProdOp {
  double operator()(double a, double b) const { return a * b; }
};
struct LukOp {
  double operator()(double a, double b) const {
    return std::max(0.0, a + b - 1.0);
  }
};
struct MaxOp {
  double operator()(double a, double b) const { return std::max(a, b); }
};
struct ProborOp {
  double operator()(double a, double b) const { return a + b - a * b; }
};
struct BsumOp {
  double operator()(double a, double b) const { return std::min(1.0, a + b); }
};

template <typename ImplOp>
void accumulateWithAgg(SNorm agg, double activation, const double* term_mu,
                       double* mu, std::size_t n, ImplOp impl) {
  switch (agg) {
    case SNorm::Maximum:
      return accumulateRow(activation, term_mu, mu, n, impl, MaxOp{});
    case SNorm::AlgebraicSum:
      return accumulateRow(activation, term_mu, mu, n, impl, ProborOp{});
    case SNorm::BoundedSum:
      return accumulateRow(activation, term_mu, mu, n, impl, BsumOp{});
  }
  // Unknown enum value: fall back to the generic dispatcher so a future
  // norm cannot silently diverge from apply().
  for (std::size_t i = 0; i < n; ++i) {
    mu[i] = apply(agg, mu[i], impl(activation, term_mu[i]));
  }
}

void accumulateTerm(TNorm impl, SNorm agg, double activation,
                    const double* term_mu, double* mu, std::size_t n) {
  switch (impl) {
    case TNorm::Minimum:
      return accumulateWithAgg(agg, activation, term_mu, mu, n, MinOp{});
    case TNorm::AlgebraicProduct:
      return accumulateWithAgg(agg, activation, term_mu, mu, n, ProdOp{});
    case TNorm::BoundedDifference:
      return accumulateWithAgg(agg, activation, term_mu, mu, n, LukOp{});
  }
  for (std::size_t i = 0; i < n; ++i) {
    mu[i] = apply(agg, mu[i], apply(impl, activation, term_mu[i]));
  }
}

}  // namespace

MamdaniEngine::MamdaniEngine(std::string name, EngineConfig config)
    : name_{std::move(name)}, config_{config} {
  if (name_.empty()) {
    throw std::invalid_argument("engine name must not be empty");
  }
  if (config_.resolution < 2) {
    throw std::invalid_argument("engine resolution must be >= 2");
  }
}

std::size_t MamdaniEngine::addInput(LinguisticVariable variable) {
  unseal();
  inputs_.push_back(std::move(variable));
  return inputs_.size() - 1;
}

void MamdaniEngine::setOutput(LinguisticVariable variable) {
  unseal();
  output_.clear();
  output_.push_back(std::move(variable));
}

void MamdaniEngine::addRule(const std::vector<std::string>& antecedent_terms,
                            const std::string& consequent_term, double weight) {
  unseal();
  rules_.add(inputs_, output(), antecedent_terms, consequent_term, weight);
}

void MamdaniEngine::addRule(Rule rule) {
  unseal();
  rules_.add(std::move(rule));
}

const LinguisticVariable& MamdaniEngine::output() const {
  if (output_.empty()) {
    throw std::logic_error("engine '" + name_ + "' has no output variable");
  }
  return output_.front();
}

void MamdaniEngine::checkValid() const {
  if (inputs_.empty()) {
    throw std::logic_error("engine '" + name_ + "' has no input variables");
  }
  for (const auto& v : inputs_) {
    if (v.termCount() == 0) {
      throw std::logic_error("engine '" + name_ + "': input variable '" +
                             v.name() + "' has no terms");
    }
  }
  const LinguisticVariable& out = output();  // throws if missing
  if (out.termCount() == 0) {
    throw std::logic_error("engine '" + name_ + "': output variable '" +
                           out.name() + "' has no terms");
  }
  if (rules_.empty()) {
    throw std::logic_error("engine '" + name_ + "' has an empty rule base");
  }
  const RuleBaseReport report = rules_.validate(inputs_, out);
  if (!report.malformed.empty()) {
    std::ostringstream os;
    os << "engine '" << name_ << "': rule " << report.malformed.front()
       << " is malformed (bad arity, term index or weight)";
    throw std::logic_error(os.str());
  }
  if (!report.conflicts.empty()) {
    std::ostringstream os;
    os << "engine '" << name_ << "': rules " << report.conflicts.front().first
       << " and " << report.conflicts.front().second
       << " share an antecedent but disagree on the consequent";
    throw std::logic_error(os.str());
  }
  // Uncovered combinations are allowed (sparse rule bases are legal); the
  // FACS controllers assert completeness separately in their tests.
}

void MamdaniEngine::setConfig(const EngineConfig& config) {
  if (config.resolution < 2) {
    throw std::invalid_argument("engine resolution must be >= 2");
  }
  unseal();
  config_ = config;
}

void MamdaniEngine::seal() {
  checkValid();

  // Precompute the defuzzification tables on the fixed sample grid. The
  // grid formula is exactly the sampling loop in defuzzify(): x = lo +
  // step * i with step = width / (resolution - 1) — a pure function of
  // (universe, resolution) — so sealed lookups reproduce the unsealed
  // path's samples bit for bit.
  const LinguisticVariable& out = output();
  const Interval u = out.universe();
  const auto n = static_cast<std::size_t>(config_.resolution);
  tables_.x.resize(n);
  const double step = u.width() / (config_.resolution - 1);
  for (int i = 0; i < config_.resolution; ++i) {
    tables_.x[static_cast<std::size_t>(i)] = u.lo + step * i;
  }
  fillTrapezoidWeights(tables_.x, tables_.half_dx);
  tables_.term_mu.resize(out.termCount() * n);
  for (std::size_t t = 0; t < out.termCount(); ++t) {
    out.tabulateTerm(t, tables_.x,
                     std::span<double>{tables_.term_mu.data() + t * n, n});
  }

  sealed_ = true;
  seal_id_ = g_seal_counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void MamdaniEngine::unseal() {
  sealed_ = false;
  seal_id_ = 0;
  tables_ = OutputTables{};
}

void MamdaniEngine::ensureValid() const {
  if (!sealed_) checkValid();
}

void MamdaniEngine::fireInto(const std::vector<FuzzyVector>& fuzzified,
                             std::vector<double>& strengths) const {
  strengths.clear();
  strengths.reserve(rules_.size());
  for (const Rule& r : rules_.rules()) {
    double strength = 1.0;
    for (std::size_t v = 0; v < r.antecedent.size(); ++v) {
      if (r.antecedent[v] == kAnyTerm) continue;
      strength = apply(config_.conjunction, strength,
                       fuzzified[v][r.antecedent[v]]);
      if (strength == 0.0) break;
    }
    strengths.push_back(strength * r.weight);
  }
}

double MamdaniEngine::aggregateAndDefuzzify(
    const std::vector<double>& strengths, InferenceScratch& scratch) const {
  // Per-output-term activation level: the s-norm of the strengths of all
  // rules concluding in that term. Computing per-term activation first (and
  // evaluating each term's membership once per sample point) keeps the
  // aggregated-curve evaluation O(#terms) instead of O(#rules).
  const LinguisticVariable& out = output();
  std::vector<double>& term_activation = scratch.term_activation;
  term_activation.assign(out.termCount(), 0.0);
  for (std::size_t i = 0; i < strengths.size(); ++i) {
    if (strengths[i] <= 0.0) continue;
    const std::size_t t = rules_.rule(i).consequent;
    term_activation[t] =
        apply(config_.aggregation, term_activation[t], strengths[i]);
  }

  if (sealed_) {
    // Sealed fast path: fold each active term's precomputed sample row into
    // the aggregated curve. Term-outer / sample-inner reorders only the
    // loop nest, not the arithmetic — per sample the same apply() chain
    // runs in the same ascending-term order as the curve lambda below, so
    // the result is bit-identical while the inner loop walks contiguous
    // doubles.
    const std::size_t n = tables_.x.size();
    scratch.curve_mu.assign(n, 0.0);
    for (std::size_t t = 0; t < term_activation.size(); ++t) {
      if (term_activation[t] <= 0.0) continue;
      accumulateTerm(config_.implication, config_.aggregation,
                     term_activation[t], tables_.term_mu.data() + t * n,
                     scratch.curve_mu.data(), n);
    }
    return defuzzifySampled(config_.defuzzifier, tables_.x, scratch.curve_mu,
                            tables_.half_dx, scratch.defuzz);
  }

  const auto curve = [&](double x) {
    double mu = 0.0;
    for (std::size_t t = 0; t < term_activation.size(); ++t) {
      if (term_activation[t] <= 0.0) continue;
      const double clipped = apply(config_.implication, term_activation[t],
                                   out.term(t).degree(x));
      mu = apply(config_.aggregation, mu, clipped);
    }
    return mu;
  };

  return defuzzify(config_.defuzzifier, curve, out.universe(),
                   config_.resolution, scratch.defuzz);
}

double MamdaniEngine::infer(std::span<const double> crisp_inputs) const {
  // Shared across engines on the same thread; every inference resizes the
  // buffers to its own shape, so the steady state allocates nothing.
  static thread_local InferenceScratch scratch;
  return inferInto(crisp_inputs, scratch);
}

double MamdaniEngine::infer(std::span<const double> crisp_inputs,
                            InferenceScratch& scratch) const {
  return inferInto(crisp_inputs, scratch);
}

double MamdaniEngine::inferInto(std::span<const double> crisp_inputs,
                                InferenceScratch& scratch) const {
  ensureValid();
  if (crisp_inputs.size() != inputs_.size()) {
    std::ostringstream os;
    os << "engine '" << name_ << "' expects " << inputs_.size()
       << " inputs, got " << crisp_inputs.size();
    throw std::invalid_argument(os.str());
  }

  scratch.fuzzified.resize(inputs_.size());
  for (std::size_t v = 0; v < inputs_.size(); ++v) {
    inputs_[v].fuzzifyInto(crisp_inputs[v], scratch.fuzzified[v]);
  }
  fireInto(scratch.fuzzified, scratch.strengths);
  return aggregateAndDefuzzify(scratch.strengths, scratch);
}

void MamdaniEngine::inferBatch(std::span<const double> crisp_inputs,
                               std::span<double> outputs,
                               BatchScratch& scratch) const {
  ensureValid();
  const std::size_t arity = inputs_.size();
  if (crisp_inputs.size() != outputs.size() * arity) {
    std::ostringstream os;
    os << "engine '" << name_ << "' batch expects " << outputs.size() << " x "
       << arity << " inputs, got " << crisp_inputs.size();
    throw std::invalid_argument(os.str());
  }

  // The memo (previous entry's crisp inputs, fuzzified degrees and output)
  // only transfers across calls when this scratch last served this exact
  // sealed engine; any other history is dropped. Unsealed engines never
  // carry a memo out (seal_id_ == 0 matches nothing), though entries within
  // this one call still share it — the engine cannot mutate mid-span.
  if (scratch.engine_seal_id != seal_id_ || seal_id_ == 0) {
    scratch.warm = false;
  }
  scratch.engine_seal_id = seal_id_;
  scratch.inference.fuzzified.resize(arity);
  scratch.last_inputs.resize(arity);

  for (std::size_t e = 0; e < outputs.size(); ++e) {
    const double* in = crisp_inputs.data() + e * arity;
    bool all_unchanged = scratch.warm;
    for (std::size_t v = 0; v < arity; ++v) {
      // Bitwise-equal crisp value => identical fuzzified degrees (fuzzify
      // is a pure function), so the previous entry's vector stands. NaN
      // compares unequal to itself and always recomputes.
      if (scratch.warm && in[v] == scratch.last_inputs[v]) continue;
      inputs_[v].fuzzifyInto(in[v], scratch.inference.fuzzified[v]);
      scratch.last_inputs[v] = in[v];
      all_unchanged = false;
    }
    if (all_unchanged) {
      // Every input repeated: the whole inference would re-run identical
      // arithmetic on identical operands. Reuse the previous output.
      outputs[e] = scratch.last_output;
      continue;
    }
    fireInto(scratch.inference.fuzzified, scratch.inference.strengths);
    outputs[e] =
        aggregateAndDefuzzify(scratch.inference.strengths, scratch.inference);
    scratch.last_output = outputs[e];
    scratch.warm = true;
  }
}

InferenceTrace MamdaniEngine::inferTraced(
    std::span<const double> crisp_inputs) const {
  ensureValid();
  if (crisp_inputs.size() != inputs_.size()) {
    std::ostringstream os;
    os << "engine '" << name_ << "' expects " << inputs_.size()
       << " inputs, got " << crisp_inputs.size();
    throw std::invalid_argument(os.str());
  }

  InferenceTrace trace;
  trace.inputs.reserve(inputs_.size());
  trace.fuzzified.reserve(inputs_.size());
  for (std::size_t v = 0; v < inputs_.size(); ++v) {
    const double clamped = inputs_[v].universe().clamp(crisp_inputs[v]);
    trace.inputs.push_back(clamped);
    trace.fuzzified.push_back(inputs_[v].fuzzify(clamped));
  }

  // Exactly the scratch path's arithmetic — fireInto() and
  // aggregateAndDefuzzify() are the single implementation both share — plus
  // the activation bookkeeping only the trace wants.
  InferenceScratch scratch;
  fireInto(trace.fuzzified, scratch.strengths);
  for (std::size_t i = 0; i < scratch.strengths.size(); ++i) {
    if (scratch.strengths[i] > 0.0) {
      trace.activations.push_back({i, scratch.strengths[i]});
    }
  }

  trace.crisp_output = aggregateAndDefuzzify(scratch.strengths, scratch);
  trace.winning_output_term = output().winningTerm(trace.crisp_output);
  return trace;
}

}  // namespace facs::fuzzy
