#include "fuzzy/defuzzify.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace facs::fuzzy {

namespace {

constexpr double kZeroArea = 1e-12;

double centroid(std::span<const double> x, std::span<const double> mu,
                std::span<const double> w) {
  // Trapezoidal integration of x*mu(x) and mu(x); w[i-1] = 0.5 * dx of the
  // segment, so each addend matches the historical 0.5 * dx * (...) bit for
  // bit (0.5 * dx is an exact product either way).
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    num += w[i - 1] * (x[i] * mu[i] + x[i - 1] * mu[i - 1]);
    den += w[i - 1] * (mu[i] + mu[i - 1]);
  }
  if (den < kZeroArea) return 0.5 * (x.front() + x.back());
  return num / den;
}

double bisector(std::span<const double> x, std::span<const double> mu,
                std::span<const double> w, std::vector<double>& cumulative) {
  double total = 0.0;
  cumulative.assign(x.size(), 0.0);
  for (std::size_t i = 1; i < x.size(); ++i) {
    total += w[i - 1] * (mu[i] + mu[i - 1]);
    cumulative[i] = total;
  }
  if (total < kZeroArea) return 0.5 * (x.front() + x.back());
  const double half = 0.5 * total;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (cumulative[i] >= half) {
      // Linear interpolation within the segment for a stable answer.
      const double seg = cumulative[i] - cumulative[i - 1];
      const double t = seg > 0.0 ? (half - cumulative[i - 1]) / seg : 0.0;
      return x[i - 1] + t * (x[i] - x[i - 1]);
    }
  }
  return x.back();
}

enum class MaxPick { Mean, Smallest, Largest };

double ofMax(std::span<const double> x, std::span<const double> mu,
             MaxPick pick) {
  double peak = 0.0;
  for (const double m : mu) peak = std::max(peak, m);
  if (peak < kZeroArea) return 0.5 * (x.front() + x.back());
  const double tol = 1e-9;
  double sum = 0.0;
  std::size_t count = 0;
  double smallest = x.back();
  double largest = x.front();
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (mu[i] >= peak - tol) {
      sum += x[i];
      ++count;
      smallest = std::min(smallest, x[i]);
      largest = std::max(largest, x[i]);
    }
  }
  switch (pick) {
    case MaxPick::Mean:
      return sum / static_cast<double>(count);
    case MaxPick::Smallest:
      return smallest;
    case MaxPick::Largest:
      return largest;
  }
  return sum / static_cast<double>(count);
}

double dispatch(Defuzzifier method, std::span<const double> x,
                std::span<const double> mu, std::span<const double> w,
                std::vector<double>& cumulative) {
  switch (method) {
    case Defuzzifier::Centroid:
      return centroid(x, mu, w);
    case Defuzzifier::Bisector:
      return bisector(x, mu, w, cumulative);
    case Defuzzifier::MeanOfMax:
      return ofMax(x, mu, MaxPick::Mean);
    case Defuzzifier::SmallestOfMax:
      return ofMax(x, mu, MaxPick::Smallest);
    case Defuzzifier::LargestOfMax:
      return ofMax(x, mu, MaxPick::Largest);
  }
  return centroid(x, mu, w);
}

}  // namespace

void fillTrapezoidWeights(std::span<const double> x,
                          std::vector<double>& weights) {
  weights.resize(x.empty() ? 0 : x.size() - 1);
  for (std::size_t i = 1; i < x.size(); ++i) {
    weights[i - 1] = 0.5 * (x[i] - x[i - 1]);
  }
}

double defuzzify(Defuzzifier method, const AggregatedCurve& curve,
                 Interval universe, int resolution, DefuzzScratch& scratch) {
  if (resolution < 2) {
    throw std::invalid_argument("defuzzification resolution must be >= 2");
  }
  if (!(universe.lo < universe.hi)) {
    throw std::invalid_argument("defuzzification universe is empty");
  }
  const auto n = static_cast<std::size_t>(resolution);
  scratch.x.resize(n);
  scratch.mu.resize(n);
  const double step = universe.width() / (resolution - 1);
  for (int i = 0; i < resolution; ++i) {
    const double x = universe.lo + step * i;
    scratch.x[static_cast<std::size_t>(i)] = x;
    scratch.mu[static_cast<std::size_t>(i)] = curve(x);
  }
  fillTrapezoidWeights(scratch.x, scratch.weights);
  return dispatch(method, scratch.x, scratch.mu, scratch.weights,
                  scratch.cumulative);
}

double defuzzify(Defuzzifier method, const AggregatedCurve& curve,
                 Interval universe, int resolution) {
  // Shared per thread: repeated callable defuzzification (the unsealed
  // engine path, tests, examples) stays allocation-free after warmup.
  static thread_local DefuzzScratch scratch;
  return defuzzify(method, curve, universe, resolution, scratch);
}

double defuzzifySampled(Defuzzifier method, std::span<const double> x,
                        std::span<const double> mu,
                        std::span<const double> half_dx,
                        DefuzzScratch& scratch) {
  if (x.size() < 2) {
    throw std::invalid_argument("defuzzification needs >= 2 samples");
  }
  if (mu.size() != x.size() || half_dx.size() != x.size() - 1) {
    throw std::invalid_argument(
        "defuzzification sample spans have mismatched sizes");
  }
  return dispatch(method, x, mu, half_dx, scratch.cumulative);
}

std::string_view toString(Defuzzifier method) noexcept {
  switch (method) {
    case Defuzzifier::Centroid:
      return "centroid";
    case Defuzzifier::Bisector:
      return "bisector";
    case Defuzzifier::MeanOfMax:
      return "mom";
    case Defuzzifier::SmallestOfMax:
      return "som";
    case Defuzzifier::LargestOfMax:
      return "lom";
  }
  return "centroid";
}

}  // namespace facs::fuzzy
