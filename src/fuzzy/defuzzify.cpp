#include "fuzzy/defuzzify.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace facs::fuzzy {

namespace {

constexpr double kZeroArea = 1e-12;

struct Samples {
  std::vector<double> x;
  std::vector<double> mu;
};

Samples sample(const AggregatedCurve& curve, Interval u, int resolution) {
  Samples s;
  s.x.resize(static_cast<std::size_t>(resolution));
  s.mu.resize(static_cast<std::size_t>(resolution));
  const double step = u.width() / (resolution - 1);
  for (int i = 0; i < resolution; ++i) {
    const double x = u.lo + step * i;
    s.x[static_cast<std::size_t>(i)] = x;
    s.mu[static_cast<std::size_t>(i)] = curve(x);
  }
  return s;
}

double centroid(const Samples& s) {
  // Trapezoidal integration of x*mu(x) and mu(x).
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < s.x.size(); ++i) {
    const double dx = s.x[i] - s.x[i - 1];
    num += 0.5 * dx * (s.x[i] * s.mu[i] + s.x[i - 1] * s.mu[i - 1]);
    den += 0.5 * dx * (s.mu[i] + s.mu[i - 1]);
  }
  if (den < kZeroArea) return 0.5 * (s.x.front() + s.x.back());
  return num / den;
}

double bisector(const Samples& s) {
  double total = 0.0;
  std::vector<double> cumulative(s.x.size(), 0.0);
  for (std::size_t i = 1; i < s.x.size(); ++i) {
    const double dx = s.x[i] - s.x[i - 1];
    total += 0.5 * dx * (s.mu[i] + s.mu[i - 1]);
    cumulative[i] = total;
  }
  if (total < kZeroArea) return 0.5 * (s.x.front() + s.x.back());
  const double half = 0.5 * total;
  for (std::size_t i = 1; i < s.x.size(); ++i) {
    if (cumulative[i] >= half) {
      // Linear interpolation within the segment for a stable answer.
      const double seg = cumulative[i] - cumulative[i - 1];
      const double t = seg > 0.0 ? (half - cumulative[i - 1]) / seg : 0.0;
      return s.x[i - 1] + t * (s.x[i] - s.x[i - 1]);
    }
  }
  return s.x.back();
}

enum class MaxPick { Mean, Smallest, Largest };

double ofMax(const Samples& s, MaxPick pick) {
  double peak = 0.0;
  for (const double m : s.mu) peak = std::max(peak, m);
  if (peak < kZeroArea) return 0.5 * (s.x.front() + s.x.back());
  const double tol = 1e-9;
  double sum = 0.0;
  std::size_t count = 0;
  double smallest = s.x.back();
  double largest = s.x.front();
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    if (s.mu[i] >= peak - tol) {
      sum += s.x[i];
      ++count;
      smallest = std::min(smallest, s.x[i]);
      largest = std::max(largest, s.x[i]);
    }
  }
  switch (pick) {
    case MaxPick::Mean:
      return sum / static_cast<double>(count);
    case MaxPick::Smallest:
      return smallest;
    case MaxPick::Largest:
      return largest;
  }
  return sum / static_cast<double>(count);
}

}  // namespace

double defuzzify(Defuzzifier method, const AggregatedCurve& curve,
                 Interval universe, int resolution) {
  if (resolution < 2) {
    throw std::invalid_argument("defuzzification resolution must be >= 2");
  }
  if (!(universe.lo < universe.hi)) {
    throw std::invalid_argument("defuzzification universe is empty");
  }
  const Samples s = sample(curve, universe, resolution);
  switch (method) {
    case Defuzzifier::Centroid:
      return centroid(s);
    case Defuzzifier::Bisector:
      return bisector(s);
    case Defuzzifier::MeanOfMax:
      return ofMax(s, MaxPick::Mean);
    case Defuzzifier::SmallestOfMax:
      return ofMax(s, MaxPick::Smallest);
    case Defuzzifier::LargestOfMax:
      return ofMax(s, MaxPick::Largest);
  }
  return centroid(s);
}

std::string_view toString(Defuzzifier method) noexcept {
  switch (method) {
    case Defuzzifier::Centroid:
      return "centroid";
    case Defuzzifier::Bisector:
      return "bisector";
    case Defuzzifier::MeanOfMax:
      return "mom";
    case Defuzzifier::SmallestOfMax:
      return "som";
    case Defuzzifier::LargestOfMax:
      return "lom";
  }
  return "centroid";
}

}  // namespace facs::fuzzy
