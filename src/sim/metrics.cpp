#include "sim/metrics.hpp"

#include <sstream>

namespace facs::sim {

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "new " << new_accepted << "/" << new_requests << " ("
     << percentAccepted() << "%)";
  if (handoff_requests > 0) {
    os << ", handoff " << handoff_accepted << "/" << handoff_requests
       << " (drop p=" << droppingProbability() << ")";
  }
  os << ", completed " << completed << ", util " << meanUtilization();
  return os.str();
}

}  // namespace facs::sim
