#include "sim/metrics.hpp"

#include <charconv>
#include <sstream>

namespace facs::sim {

std::string shortestNumber(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "new " << new_accepted << "/" << new_requests << " ("
     << percentAccepted() << "%)";
  if (handoff_requests > 0) {
    os << ", handoff " << handoff_accepted << "/" << handoff_requests
       << " (drop p=" << droppingProbability() << ")";
  }
  os << ", completed " << completed << ", util " << meanUtilization();
  return os.str();
}

std::string Metrics::toJson() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"new_requests\": " << new_requests << ",\n"
     << "  \"new_accepted\": " << new_accepted << ",\n"
     << "  \"new_blocked\": " << new_blocked << ",\n"
     << "  \"handoff_requests\": " << handoff_requests << ",\n"
     << "  \"handoff_accepted\": " << handoff_accepted << ",\n"
     << "  \"handoff_dropped\": " << handoff_dropped << ",\n"
     << "  \"completed\": " << completed << ",\n";
  os << "  \"class_requests\": [";
  for (std::size_t i = 0; i < class_requests.size(); ++i) {
    os << (i ? ", " : "") << class_requests[i];
  }
  os << "],\n  \"class_accepted\": [";
  for (std::size_t i = 0; i < class_accepted.size(); ++i) {
    os << (i ? ", " : "") << class_accepted[i];
  }
  os << "],\n"
     << "  \"busy_bu_seconds\": " << shortestNumber(busy_bu_seconds) << ",\n"
     << "  \"observed_span_s\": " << shortestNumber(observed_span_s) << ",\n"
     << "  \"total_capacity_bu\": " << total_capacity_bu << ",\n"
     << "  \"engine_events\": " << engine_events << ",\n"
     << "  \"commit_groups\": " << commit_groups << ",\n";
  os << "  \"lane_events\": [";
  for (std::size_t i = 0; i < lane_events.size(); ++i) {
    os << (i ? ", " : "") << lane_events[i];
  }
  os << "],\n"
     << "  \"repartitions\": " << repartitions << ",\n"
     << "  \"repartitions_skipped\": " << repartitions_skipped << ",\n"
     << "  \"reservations_posted\": " << reservations_posted << ",\n"
     << "  \"reservations_admitted\": " << reservations_admitted << ",\n"
     << "  \"reservations_dropped\": " << reservations_dropped << ",\n"
     << "  \"demand_deltas\": " << demand_deltas << ",\n"
     << "  \"shadow_migrations\": " << shadow_migrations << ",\n"
     << "  \"policy_warnings\": " << policy_warnings << ",\n"
     << "  \"mutations_applied\": " << mutations_applied << ",\n"
     << "  \"outage_forced_drops\": " << outage_forced_drops << ",\n"
     << "  \"peak_concurrent_calls\": " << peak_concurrent_calls << ",\n"
     << "  \"truncated_rationales\": " << truncated_rationales << ",\n"
     << "  \"percent_accepted\": " << shortestNumber(percentAccepted()) << ",\n"
     << "  \"blocking_probability\": " << shortestNumber(blockingProbability())
     << ",\n"
     << "  \"dropping_probability\": " << shortestNumber(droppingProbability())
     << ",\n"
     << "  \"mean_utilization\": " << shortestNumber(meanUtilization()) << "\n"
     << "}";
  return os.str();
}

}  // namespace facs::sim
