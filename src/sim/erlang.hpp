#pragma once
/// \file erlang.hpp
/// Classical teletraffic formulas used to validate the simulator: an
/// M/M/c/c system's blocking probability (Erlang B) is exact for
/// single-class Poisson traffic under Complete Sharing, so the simulator
/// must converge to it (tests/sim/erlang_test.cpp checks that it does).

namespace facs::sim {

/// Erlang B blocking probability: B(c, a) for c servers (here: bandwidth
/// units) and offered load a in erlangs. Computed with the stable
/// recurrence B(0) = 1, B(k) = a B(k-1) / (k + a B(k-1)).
/// \throws std::invalid_argument if servers < 0 or offered load < 0.
[[nodiscard]] double erlangB(int servers, double offered_erlangs);

/// Smallest number of servers keeping Erlang-B blocking at or below
/// \p target_blocking (in [0, 1)) for the given offered load.
/// \throws std::invalid_argument on a target outside [0, 1).
[[nodiscard]] int dimensionServers(double offered_erlangs,
                                   double target_blocking);

/// Erlang C probability of queueing (M/M/c with infinite queue); provided
/// for completeness of the teletraffic toolkit (delay-tolerant text
/// traffic analysis).
/// \throws std::invalid_argument if offered load >= servers (unstable) or
///         arguments are negative.
[[nodiscard]] double erlangC(int servers, double offered_erlangs);

}  // namespace facs::sim
