#pragma once
/// \file rng.hpp
/// Deterministic random-number plumbing for reproducible simulations.
/// Every run derives all randomness from one user-visible seed; independent
/// streams (per replication, per component) are split with SplitMix64 so
/// adding a consumer never perturbs the draws of another.

#include <cstdint>
#include <random>

namespace facs::sim {

using Rng = std::mt19937_64;

/// SplitMix64 scramble — the canonical seed expander.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Engine for (seed, stream); distinct streams are statistically
/// independent for any practical purpose.
[[nodiscard]] inline Rng makeRng(std::uint64_t seed,
                                 std::uint64_t stream = 0) {
  return Rng{splitmix64(splitmix64(seed) ^ splitmix64(stream * 0xA5A5A5A5ULL + 1))};
}

/// Exponential variate with the given mean (> 0).
[[nodiscard]] inline double sampleExponential(Rng& rng, double mean) {
  std::exponential_distribution<double> d{1.0 / mean};
  return d(rng);
}

/// Uniform variate over [lo, hi).
[[nodiscard]] inline double sampleUniform(Rng& rng, double lo, double hi) {
  std::uniform_real_distribution<double> d{lo, hi};
  return d(rng);
}

/// Normal variate.
[[nodiscard]] inline double sampleNormal(Rng& rng, double mean, double sigma) {
  std::normal_distribution<double> d{mean, sigma};
  return d(rng);
}

}  // namespace facs::sim
