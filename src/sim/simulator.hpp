#pragma once
/// \file simulator.hpp
/// The discrete-event cellular simulator: Poisson/uniform call arrivals,
/// GPS tracking before each admission decision, exponential holding times,
/// optional multi-cell mobility with handoffs, and full capacity-invariant
/// enforcement through the base-station ledgers.
///
/// Execution model (sharded engine): cells are partitioned over
/// SimulationConfig::shards worker shards. Each shard owns the event queues
/// of its cells plus the motion state and RNG stream of every call they
/// carry, and advances in lock-stepped tick windows sized by the mobility
/// update period (the minimum latency at which a call can cross cells).
/// Within a window, shards do the call-local work concurrently — GPS
/// tracking, mobility integration, boundary detection — and hand every
/// shared-state mutation (admission decisions, releases, handoffs) to a
/// commit phase at the tick barrier, which replays the merged per-shard
/// mailboxes in canonical (time, kind, call) order. All randomness is
/// drawn from per-call SplitMix-derived streams, so runs are bit-identical
/// for a fixed seed at ANY shard count, including shards=1 (the serial
/// path: same phases, no worker threads).
///
/// Two-level commit (commit_groups > 1): instead of one serialized commit
/// thread, cells are partitioned into commit groups
/// (cellular::CellGroupPartition) and each group's lane replays its own
/// events concurrently, in the same canonical order. Handoffs that cross a
/// group border cannot commit inside either lane; the source lane releases
/// its half at the crossing instant and posts a Reservation (the paper's
/// inter-BS message, sim/reservation.hpp) into the target group's mailbox,
/// drained in canonical order at the tick-window barrier with every
/// capacity claim re-validated against the live ledger and policy state.
/// Group-parallel lanes require the policy to declare
/// cellular::CommitScope::CellLocal; Global-scope policies (SCC, SIR)
/// degrade to one lane. commit_groups == 1 is bit-identical to the
/// single-threaded commit at any shard count; commit_groups > 1 changes
/// cross-group visibility (see README "Commit groups & reservations") but
/// stays deterministic: fixed (config, seed, groups) gives the same bits
/// at any shard count.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cellular/admission.hpp"
#include "cellular/network.hpp"
#include "cellular/policy_registry.hpp"
#include "serve/mutation.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace facs::sim {

/// How cells are mapped onto commit groups (two-level commit lanes).
enum class PartitionStrategy {
  /// Contiguous near-equal-size id ranges — the historical default, and
  /// the bit-identity anchor: every shards × groups combination commits
  /// exactly like the pre-weighted engine.
  Contiguous,
  /// Contiguous near-equal-WEIGHT id ranges: each cell weighs its
  /// arrival_scale × the mean bandwidth demand of its effective traffic
  /// mix, so a hotspot cell stops dragging its whole id range into one
  /// overloaded lane. With repartition_every_s > 0 the engine re-draws
  /// the boundaries at deterministic epoch barriers from observed
  /// per-cell committed-event counts. Seed-stable and shard-invariant at
  /// every group count; groups = 1 is bit-identical to Contiguous (one
  /// lane is one lane).
  Weighted,
};

/// How request arrival instants are drawn.
enum class ArrivalProcess {
  /// The paper's burst semantics: total_requests instants uniform over the
  /// arrival window ("number of requesting connections" on the x-axis).
  UniformBurst,
  /// A Poisson process with rate total_requests / arrival_window_s,
  /// truncated at total_requests arrivals — the steady-state alternative.
  Poisson,
};

/// Per-cell deviations from the uniform network defaults (heterogeneous
/// deployments and hotspot modelling; scenario files spell these as
/// `[cell N]` sections). Ids must be inside the hex disk and unique; an
/// override must set at least one field.
struct CellOverride {
  cellular::CellId cell = 0;
  /// Capacity replacing SimulationConfig::capacity_bu for this cell.
  std::optional<cellular::BandwidthUnits> capacity_bu;
  /// Relative spawn weight of this cell (default weight 1 everywhere): 3
  /// means new requests originate here three times as often as in an
  /// unscaled cell. Must be positive and finite. Any scale != 1 switches
  /// the spawn draw from uniform to weighted — see prepareArrivals().
  std::optional<double> arrival_scale;
  /// Service-class arrival mix for requests spawning in this cell,
  /// replacing the population-wide ScenarioParams::mix (a stadium cell
  /// skews video-heavy while the precinct stays at the paper default).
  std::optional<cellular::TrafficMix> mix;

  /// True when no field is set — a no-op entry validateConfig() rejects.
  [[nodiscard]] bool emptyOverride() const noexcept {
    return !capacity_bu && !arrival_scale && !mix;
  }
};

/// Everything one run needs.
struct SimulationConfig {
  /// Network shape. The paper's evaluation is effectively single-cell
  /// (rings = 0, one 40 BU BS, 10 km radius); rings >= 1 enables the SCC
  /// cluster machinery and handoff statistics.
  int rings = 0;
  double cell_radius_km = 10.0;
  cellular::BandwidthUnits capacity_bu = cellular::kPaperCellCapacityBu;
  /// Per-cell capacity/traffic overrides, at most one entry per cell.
  std::vector<CellOverride> cell_overrides{};

  /// The paper's x-axis: how many connections request admission.
  int total_requests = 50;
  /// Requests arrive over this window, so a larger request count means a
  /// proportionally higher arrival rate.
  double arrival_window_s = 600.0;
  ArrivalProcess arrivals = ArrivalProcess::UniformBurst;
  /// Simulated seconds excluded from all metrics (admissions still happen;
  /// they just are not counted). Use with Poisson arrivals to measure the
  /// steady state instead of the fill-up transient.
  double warmup_s = 0.0;

  /// Multi-cell runs: advance active users and hand calls over when they
  /// cross a cell boundary.
  bool enable_handoffs = false;
  double mobility_update_s = 10.0;

  std::uint64_t seed = 1;
  ScenarioParams scenario{};

  /// Worker shards for one run. 1 = serial (no threads). N > 1 partitions
  /// cells round-robin over N workers that advance in lock-stepped ticks;
  /// metrics are bit-identical to the serial run for the same seed. Counts
  /// above the cell count still help: request preparation (GPS tracking)
  /// is sharded by call, not by cell. Must be in [1, kMaxShards].
  int shards = 1;

  /// Commit lanes for the two-level commit scheme. 1 (default) = one
  /// serialized commit phase, bit-identical to the pre-grouped engine at
  /// any shard count. N > 1 partitions cells into N contiguous groups
  /// whose lanes commit concurrently, exchanging cross-group handoffs as
  /// Reservations at the tick-window barrier. Requires a policy with
  /// cellular::CommitScope::CellLocal — Global-scope policies silently
  /// degrade to one lane (Metrics::commit_groups reports the effective
  /// count). Deterministic for fixed (config, seed): the same groups give
  /// the same bits at any shard count, but different group counts are
  /// different (documented) visibility semantics, not reorderings of one
  /// truth. Must be in [1, kMaxShards].
  int commit_groups = 1;

  /// Cell-to-commit-group mapping strategy. Contiguous (default) keeps
  /// the historical near-equal-size ranges; Weighted balances ranges by
  /// spawn weight (arrival_scale × mean mix demand). Irrelevant when the
  /// effective group count is 1.
  PartitionStrategy partition = PartitionStrategy::Contiguous;

  /// Weighted partition only: > 0 re-draws the group boundaries every
  /// this many simulated seconds, at the first tick-window barrier at or
  /// past each epoch instant, using per-cell committed-event counts as
  /// load weights — a deterministic proxy for lane wall time. The engine
  /// clamps windows so a barrier lands exactly on each epoch (same
  /// mechanism as mutations; a mutation due at the same instant applies
  /// first). 0 disables re-partitioning. Rejected unless partition is
  /// Weighted.
  double repartition_every_s = 0.0;

  /// Hoist snapshot-only policy work (FACS: the FLC1 prediction) into the
  /// parallel prepare/local phases via AdmissionController::precompute(),
  /// so the serialized commit phase runs only the ledger-dependent stage.
  /// Metrics are bit-identical on or off — the toggle exists for the
  /// equivalence tests and for measuring the serial-fraction win.
  bool precompute_cv = true;

  /// Scheduled workload changes (serve/mutation.hpp), applied only at
  /// tick-window barriers: the engine clamps the window so a barrier
  /// lands exactly at each mutation's `at_s`, keeping mutated runs
  /// deterministic at any shard count. Scenario files spell these as
  /// `[at T]` sections. Kept in file order; equal timestamps apply in
  /// this order.
  std::vector<serve::ScenarioMutation> mutations{};

  /// Run every admission decision with AdmissionContext::explain set, so
  /// policies fill their rationale text. Decisions (and thus all counters)
  /// are identical either way; the engine additionally counts rationales
  /// that overflowed ReasonText's inline capacity
  /// (Metrics::truncated_rationales), so cut explanations are detectable
  /// instead of silently losing their tails. Off by default — rationale
  /// formatting costs time on the serialized commit path.
  bool explain = false;
};

/// Upper bound on SimulationConfig::shards (sanity cap, not a tuning hint:
/// useful values are <= hardware threads).
inline constexpr int kMaxShards = 256;

/// Upper bound on SimulationConfig::rings — a sanity cap (788k cells) so
/// an absurd value in an untrusted scenario file is rejected at validate
/// time instead of overflowing hexDiskCellCount() or exhausting memory.
inline constexpr int kMaxRings = 512;

/// Builds a fresh admission controller for a run. Receives the network so
/// topology-aware policies (SCC) can hold a reference to it. Obtain one
/// from a `cellular::PolicyRuntime` — e.g.
/// `cellular::PolicyRuntime::defaultRuntime().makeFactory("facs")`, or an
/// instance extended with `registerExternal()` — rather than constructing
/// controllers by hand.
using ControllerFactory = cellular::ControllerFactory;

/// Checks a configuration for nonsensical values (negative request counts,
/// empty arrival windows, inverted GPS windows, ...).
/// \throws std::invalid_argument describing the first problem found.
void validateConfig(const SimulationConfig& config);

/// Runs one simulation to completion and returns its metrics.
///
/// Deterministic: the same (config, factory) pair always produces the same
/// metrics. \throws std::invalid_argument on nonsensical configuration.
[[nodiscard]] Metrics runSimulation(const SimulationConfig& config,
                                    const ControllerFactory& make_controller);

// ----------------------------------------------------------- serve hooks

/// Allocation-substrate counters sampled at a window barrier — the memory
/// story of the streaming engine, reported per window so a consumer can
/// assert flatness (pool_grow_events stops moving after warmup).
struct EngineWindowStats {
  std::uint64_t pool_capacity = 0;     ///< Call-pool slots allocated.
  std::uint64_t pool_live = 0;         ///< Live calls right now.
  std::uint64_t pool_high_water = 0;   ///< Max simultaneous live calls.
  std::uint64_t pool_acquired = 0;     ///< Lifetime slot acquisitions.
  std::uint64_t pool_released = 0;     ///< Lifetime slot releases.
  std::uint64_t pool_grow_events = 0;  ///< Slab allocations (flat = good).
  std::uint64_t ring_capacity = 0;     ///< Per-shard outbox ring capacity.
  std::uint64_t ring_high_water = 0;   ///< Max ring occupancy (any shard).
  std::uint64_t ring_spills = 0;       ///< Entries that overflowed a ring.
  int mutations_applied = 0;           ///< Cumulative mutations so far.
};

/// One metrics window, emitted at a tick-window barrier. `cumulative` is
/// the run's full Metrics snapshot at t1 — folded exactly like the final
/// result, so the LAST window's cumulative is bit-identical to the batch
/// return value and integer deltas between consecutive windows sum
/// exactly to the batch totals.
struct WindowSnapshot {
  std::uint64_t index = 0;   ///< 0-based emission index.
  double t0 = 0.0;           ///< Window start (previous emission barrier).
  double t1 = 0.0;           ///< This barrier's instant.
  bool final_window = false; ///< Set on the drain/end-of-run emission.
  Metrics cumulative;
  EngineWindowStats stats;
};

/// Streaming-mode contract for runSimulation: window snapshots aligned to
/// the engine's own tick-window barriers (never extra barriers, so a
/// hooked run commits identically to an unhooked one), plus optional
/// unbounded arrivals for always-on service.
struct ServiceHooks {
  /// Emission cadence: snapshots fire at the first barrier at or past
  /// each multiple of this. 0 = every barrier. When the run has no
  /// natural barriers (handoffs off = one infinite window), the engine
  /// windows the run at this period instead — outcome-neutral there,
  /// because windowing only partitions the canonical replay.
  double metrics_every_s = 0.0;
  /// > 0: ignore total_requests and keep drawing Poisson arrivals until
  /// this simulated instant, then drain. Requires ArrivalProcess::Poisson.
  double serve_duration_s = 0.0;
  /// Called at each emission barrier (single-threaded).
  std::function<void(const WindowSnapshot&)> on_window;
};

/// runSimulation with streaming hooks. With default hooks this IS the
/// batch run — same engine, same bits.
[[nodiscard]] Metrics runSimulation(const SimulationConfig& config,
                                    const ControllerFactory& make_controller,
                                    const ServiceHooks& hooks);

}  // namespace facs::sim
