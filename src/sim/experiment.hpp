#pragma once
/// \file experiment.hpp
/// Parameter-sweep harness: runs a set of labelled curves over the paper's
/// x-axis (number of requesting connections), with replications, and
/// renders the resulting series as a table or CSV — one call per figure.

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace facs::sim {

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x) noexcept;
  [[nodiscard]] int count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< Sample variance.
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95() const noexcept;

 private:
  int n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// One curve of a figure: a label, a scenario and a controller.
struct CurveSpec {
  std::string label;
  SimulationConfig base;  ///< total_requests and seed are overridden per point.
  /// Invoked concurrently from the sweep's worker threads; registry-built
  /// factories (stateless closures over value-captured configs) are safe.
  ControllerFactory make_controller;
  /// Alternative to make_controller: a textual policy spec, resolved by
  /// runSweep() against the runtime it was handed (the factory wins when
  /// both are set). Lets callers sweep "guard:8" without touching registry
  /// machinery themselves.
  std::string policy;
};

/// Sweep settings shared by all curves of a figure.
struct SweepSpec {
  std::string title;
  std::string x_label = "requesting-connections";
  std::string y_label = "percent-accepted";
  std::vector<int> xs;       ///< Values of total_requests to simulate.
  int replications = 10;     ///< Independent seeds per point.
  std::uint64_t base_seed = 42;
  /// Worker threads for the (curve, x, replication) grid. 0 = auto: one
  /// per hardware thread, divided by the largest SimulationConfig::shards
  /// of any curve so sweep workers times per-run shards stays within the
  /// machine (each run may itself fan out over its shard pool). 1 =
  /// serial. An explicit value is taken as-is. Results are bit-identical
  /// for any value: replications are independent (the seed depends only on
  /// (base_seed, rep)) and are accumulated in replication order after all
  /// runs finish — and each run is itself shard-count-invariant.
  int threads = 0;
};

/// Which metric a sweep extracts from each run.
enum class Measure {
  PercentAccepted,        ///< The paper's y-axis (new-call acceptance).
  BlockingProbability,
  DroppingProbability,
  MeanUtilization,
};

struct PointResult {
  int x = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  int replications = 0;
  /// Full metrics of every replication of this point, in replication
  /// order — the raw material of printJson(), so CI can diff a whole
  /// figure (every counter of every run) instead of one extracted scalar.
  std::vector<Metrics> runs;
};

struct CurveResult {
  std::string label;
  std::vector<PointResult> points;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<CurveResult> curves;
};

/// Runs every (curve, x, replication) combination. Replication r of point x
/// uses seed = base_seed ^ hash(r) so curves share common random numbers —
/// the standard variance-reduction device for policy comparisons.
/// Curves given as textual policy specs resolve through \p runtime, so a
/// sweep can exercise registerExternal() policies of an instance-scoped
/// cellular::PolicyRuntime. \throws cellular::PolicySpecError on a curve
/// whose spec \p runtime rejects, std::invalid_argument on a curve with
/// neither factory nor spec.
[[nodiscard]] SweepResult runSweep(const cellular::PolicyRuntime& runtime,
                                   const SweepSpec& sweep,
                                   const std::vector<CurveSpec>& curves,
                                   Measure measure = Measure::PercentAccepted);

/// runSweep() against the shared default runtime.
[[nodiscard]] SweepResult runSweep(const SweepSpec& sweep,
                                   const std::vector<CurveSpec>& curves,
                                   Measure measure = Measure::PercentAccepted);

/// Renders an aligned text table: one row per x, one column per curve
/// ("mean +/- ci95").
void printTable(std::ostream& os, const SweepResult& result);

/// Renders CSV: x, then mean and stddev per curve.
void printCsv(std::ostream& os, const SweepResult& result);

/// Renders the whole sweep as one JSON document: the sweep shape, the
/// aggregated points, and — per (curve, x, replication) — the full
/// deterministic metrics object (Metrics::toJson). Like the single-run
/// --json output this is byte-diffable: two builds that agree produce
/// identical text, so CI can gate on whole figures. Wall-clock phase
/// timings are excluded with the rest of Metrics::toJson's exclusions.
void printJson(std::ostream& os, const SweepResult& result);

}  // namespace facs::sim
