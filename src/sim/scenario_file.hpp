#pragma once
/// \file scenario_file.hpp
/// Scenario files — the workload counterpart of the fuzzy FDL format
/// (src/fuzzy/fdl.hpp): a TOML-like text form for everything a
/// ScenarioSpec holds, so workloads are data, not code. Every built-in
/// scenario serializes out (`facs_cli --dump-scenario NAME`) and any file
/// runs back in (`facs_cli --scenario-file PATH`) with bit-identical
/// metrics at any shard count — the round-trip property the tests and the
/// CI determinism gate assert.
///
/// Grammar (line oriented, '#' starts a comment outside quotes, blank
/// lines ignored; every `key = value` belongs to the most recent
/// `[section]` header):
///
///   [scenario]
///   extends = "highway"           # optional; must be the FIRST key: start
///                                 # from that scenario (a sibling
///                                 # NAME.scn file, else a catalog
///                                 # built-in) and override below
///   name = "highway"              # required (inherited via extends), the
///                                 # catalog key
///   summary = "one line of docs"
///   policy = "facs"               # registry spec; validated at parse time
///
///   [network]
///   rings = 1                     # hex rings around the centre cell
///   cell_radius_km = 2
///   capacity_bu = 40
///   handoffs = true
///   mobility_update_s = 5
///
///   [cell 3]                      # optional, repeatable: one section per
///   capacity_bu = 80              # cell; at least one key each. Replaces
///   arrival_scale = 3             # the base's [cell 3] wholesale under
///   mix = [0.2, 0.3, 0.5]         # extends. arrival_scale weights the
///                                 # spawn draw (hotspots); mix overrides
///                                 # the per-cell service mix
///
///   [run]
///   requests = 150
///   window_s = 400
///   arrivals = "uniform"          # or "poisson"
///   warmup_s = 0
///   seed = 1
///   shards = 1
///   commit_groups = 1             # two-level commit lanes (see README)
///   precompute = true
///   explain = false
///
///   [population]
///   speed_kmh = [70, 130]         # uniform draw [min, max]
///   angle_deg = [0, 30]           # [mean, sigma] of the heading deviation
///   distance_km = [0, 2]          # uniform draw [min, max]
///   mix = [0.6, 0.3, 0.1]         # text/voice/video arrival fractions
///   tracking_window_s = 10
///   gps_fix_period_s = 2
///   gps_error_m = 10              # or: none  (noiseless ground truth)
///
///   [turn]
///   sigma_max_deg = 10            # heading diffusion at speed 0
///   v_ref_kmh = 18                # exponential decay scale over speed
///
///   [at 120]                      # optional, repeatable: a scheduled
///   arrival_scale = 2.5           # scenario mutation applied at the tick
///                                 # barrier at T=120 s (serve/mutation.hpp).
///   [at 300]                      # Exactly one action key per section:
///   cell = 3                      # arrival_scale (global rate ramp, or a
///   outage = true                 # cell's spawn weight when cell is set),
///                                 # outage / restore (need cell), or
///   [at 360]                      # mix = [text, voice, video] (global or
///   cell = 3                      # per-cell). Equal timestamps apply in
///   restore = true                # file order. Under extends, the file's
///                                 # [at] sections append after the base's.
///
/// Every key is optional except `name`; omitted keys keep the paper's
/// defaults (a minimal file is just `[scenario]` + `name`), or — under
/// `extends` — the base's values. Unknown sections or keys are errors, not
/// warnings — a typo must not silently run a different workload. Doubles
/// are written in shortest round-trip form (std::to_chars), so
/// parse(write(spec)) reproduces the spec bit for bit and
/// write(parse(text)) is a canonical form. The writer always emits the
/// fully resolved document (never an `extends` reference), so the
/// canonical form of a derived file is self-contained.
///
/// `extends` resolution: loadScenarioFile() looks for `NAME.scn` next to
/// the extending file first, then falls back to the built-in catalog;
/// chains may nest, and a cycle (a.scn extends b.scn extends a.scn) is
/// detected and reported with the offending file and line. Parsing from a
/// string/stream has no directory, so there only built-ins resolve unless
/// the caller supplies a ScenarioBaseResolver.

#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/scenario_catalog.hpp"

namespace facs::sim {

/// Resolves the base scenario an `extends = "name"` key refers to. Throwing
/// (ScenarioFileError from a nested parse, or any std::exception for
/// unknown names and cycles) fails the parse; a plain exception's message
/// is wrapped with the extending file and line. An empty function means
/// `extends` resolves against the built-in catalog only.
using ScenarioBaseResolver =
    std::function<ScenarioSpec(const std::string& name)>;

/// Error raised by the scenario-file parser, carrying the source label
/// (file path, or "<string>" for in-memory text) and the 1-based line.
/// Policy-spec problems inside a file surface through this type too, so
/// the message names the offending file and line, not just the raw spec.
class ScenarioFileError : public std::runtime_error {
 public:
  ScenarioFileError(std::string_view source, int line,
                    const std::string& message);

  /// 1-based source line, or 0 when the problem concerns the whole file.
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parses one scenario document. \p source_name labels errors.
/// \throws ScenarioFileError on any syntax or semantic problem (including
///         a policy spec \p runtime rejects, and configurations
///         validateConfig() rejects).
[[nodiscard]] ScenarioSpec parseScenarioFile(
    std::string_view text, const cellular::PolicyRuntime& runtime,
    std::string_view source_name = "<string>",
    const ScenarioBaseResolver& resolve_base = {});

/// Reads a scenario document from a stream (e.g. std::ifstream).
[[nodiscard]] ScenarioSpec parseScenarioFile(
    std::istream& in, const cellular::PolicyRuntime& runtime,
    std::string_view source_name = "<stream>",
    const ScenarioBaseResolver& resolve_base = {});

/// Opens and parses the file at \p path; errors name the path.
/// \throws ScenarioFileError (also when the file cannot be read).
[[nodiscard]] ScenarioSpec loadScenarioFile(
    const std::string& path, const cellular::PolicyRuntime& runtime);

/// Serializes a spec to the canonical file form.
/// parseScenarioFile(writeScenarioFile(s), rt) reproduces \p s exactly
/// (round-trip property, covered by tests and the CI gate).
[[nodiscard]] std::string writeScenarioFile(const ScenarioSpec& spec);

}  // namespace facs::sim
