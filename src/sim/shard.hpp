#pragma once
/// \file shard.hpp
/// Sharded-execution substrate for the simulator: a persistent worker pool
/// whose shards advance in lock-stepped phases, and the mailbox types
/// shards use to hand cross-cell work (handoffs, decisions, releases) to
/// the serialized commit phase at each tick barrier.
///
/// Determinism contract: shard workers only ever touch shard-owned state
/// (their own event queue, per-call motion state and RNG streams); every
/// mutation of shared state (ledgers, the admission controller, metrics)
/// happens in the single-threaded commit phase, which processes the merged
/// mailboxes in a canonical (time, kind, call) order. The partition of
/// cells over shards therefore cannot change any simulation outcome — only
/// how much local work runs concurrently. The one policy call workers make
/// is AdmissionController::precompute(), which is const and state-free by
/// contract (it computes a pure function of a call-owned snapshot), so it
/// is concurrency-safe and outcome-neutral by construction.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cellular/call.hpp"

namespace facs::sim {

/// What a shard asks the commit phase to do. Values double as the
/// canonical tie-break rank for events at equal timestamps (ends release
/// capacity before decisions consume it; boundary crossings commit last).
enum class ShardEventKind : std::uint8_t {
  End = 0,       ///< An admitted call's holding time expired.
  Decision = 1,  ///< A tracked request reached its admission instant.
  Move = 2,      ///< A mobility step detected a cell crossing / coverage exit.
};

/// One entry of a shard's event queue or outbox mailbox.
struct ShardEvent {
  ShardEventKind kind = ShardEventKind::Move;
  cellular::CallId call = 0;
  /// Ownership generation of the call when the event was scheduled. A call
  /// that migrates between shards (handoff) bumps its epoch; stale copies
  /// left in the old owner's queue fail the epoch check and are dropped.
  std::uint32_t epoch = 0;
  /// Call-pool slot the call occupied when the event was scheduled. The
  /// pool recycles slots of finished calls, so an event is only live when
  /// the slot's occupant still equals `call` — the cross-lifetime
  /// staleness check (epoch covers staleness within one call's lifetime).
  std::uint32_t slot = 0;
};

/// Canonical commit order: time, then kind rank, then call id. Independent
/// of shard count and of per-shard queue insertion order, which is what
/// makes sharded runs bit-identical to serial ones.
struct CommitEntry {
  double time_s = 0.0;
  ShardEvent event;
};

struct CommitLater {
  bool operator()(const CommitEntry& a, const CommitEntry& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    if (a.event.kind != b.event.kind) return a.event.kind > b.event.kind;
    return a.event.call > b.event.call;
  }
};

/// A fixed-size pool of shard workers with a generation barrier: run(fn)
/// executes fn(shard) once per shard concurrently and returns when every
/// shard finished (rethrowing the first exception). Workers persist across
/// run() calls, so per-tick phases cost two condvar hops instead of thread
/// spawns. Shard 0 always runs on the calling thread — a pool of size 1 is
/// the serial engine with zero thread traffic.
class ShardPool {
 public:
  explicit ShardPool(int shards) : shards_{shards} {
    for (int s = 1; s < shards_; ++s) {
      workers_.emplace_back([this, s] { workerLoop(s); });
    }
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  ~ShardPool() {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      stopping_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  [[nodiscard]] int shards() const noexcept { return shards_; }

  /// Runs \p fn(shard) for every shard in [0, shards) and blocks until all
  /// complete. The first exception thrown by any shard is rethrown here
  /// after the barrier (never mid-phase, so shard-owned state stays sane).
  void run(const std::function<void(int)>& fn) {
    if (shards_ == 1) {
      fn(0);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      job_ = &fn;
      pending_ = shards_ - 1;
      first_error_ = nullptr;
      ++generation_;
    }
    start_cv_.notify_all();
    runOne(0, fn);
    std::unique_lock<std::mutex> lock{mutex_};
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  void runOne(int shard, const std::function<void(int)>& fn) {
    try {
      fn(shard);
    } catch (...) {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (!first_error_) first_error_ = std::current_exception();
    }
  }

  void workerLoop(int shard) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock{mutex_};
        start_cv_.wait(lock,
                       [&] { return generation_ != seen; });
        seen = generation_;
        if (stopping_) return;
        job = job_;
      }
      runOne(shard, *job);
      {
        const std::lock_guard<std::mutex> lock{mutex_};
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  int shards_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace facs::sim
