#include "sim/erlang.hpp"

#include <stdexcept>

namespace facs::sim {

double erlangB(int servers, double offered_erlangs) {
  if (servers < 0) {
    throw std::invalid_argument("Erlang B needs >= 0 servers");
  }
  if (offered_erlangs < 0.0) {
    throw std::invalid_argument("offered load must be >= 0");
  }
  if (offered_erlangs == 0.0) return 0.0;
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = offered_erlangs * b / (k + offered_erlangs * b);
  }
  return b;
}

int dimensionServers(double offered_erlangs, double target_blocking) {
  if (target_blocking < 0.0 || target_blocking >= 1.0) {
    throw std::invalid_argument("target blocking must be in [0, 1)");
  }
  if (offered_erlangs < 0.0) {
    throw std::invalid_argument("offered load must be >= 0");
  }
  if (offered_erlangs == 0.0) return 0;  // no traffic, no servers needed
  int c = 0;
  double b = 1.0;
  while (b > target_blocking) {
    ++c;
    b = offered_erlangs * b / (c + offered_erlangs * b);
    if (c > 1000000) {
      throw std::logic_error("Erlang-B dimensioning did not converge");
    }
  }
  return c;
}

double erlangC(int servers, double offered_erlangs) {
  if (servers <= 0) {
    throw std::invalid_argument("Erlang C needs >= 1 server");
  }
  if (offered_erlangs < 0.0) {
    throw std::invalid_argument("offered load must be >= 0");
  }
  if (offered_erlangs >= servers) {
    throw std::invalid_argument("Erlang C requires offered load < servers");
  }
  const double b = erlangB(servers, offered_erlangs);
  const double rho = offered_erlangs / servers;
  return b / (1.0 - rho + rho * b);
}

}  // namespace facs::sim
