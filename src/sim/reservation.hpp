#pragma once
/// \file reservation.hpp
/// Cross-group handoff reservations — the paper's inter-BS messages made
/// explicit. In the two-level commit scheme (sim/simulator.hpp) cells are
/// partitioned into commit groups whose lanes replay their own events
/// concurrently; a handoff whose source and target cells sit in different
/// groups cannot commit inside either lane, because admission must read the
/// target group's ledger while that lane is still mutating it. Instead the
/// source lane releases its half at the crossing instant and posts a
/// Reservation — a bandwidth claim naming the call, the border it crossed
/// and the demand — into the target group's mailbox. At the tick-window
/// barrier, after every lane has quiesced, the mailboxes are drained in
/// canonical order and each claim is validated against the live
/// HexNetwork ledger (and whatever state the policy consults: SCC demand
/// projections, guard bands, FLC2) before bandwidth is granted.
///
/// Determinism: mailbox drain order is (time, call) — a total order, since
/// a call crosses at most one border per tick window. Two groups claiming
/// the last bandwidth unit of one cell therefore resolve the same way at
/// every shard count and on every run: the earlier crossing wins, call id
/// breaking exact ties.

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <vector>

#include "cellular/call.hpp"
#include "cellular/traffic.hpp"

namespace facs::sim {

/// One inter-group bandwidth claim: "call X crossed from from_cell into
/// to_cell at time_s and needs demand_bu units there".
struct Reservation {
  double time_s = 0.0;               ///< Crossing instant (commit order key).
  cellular::CallId call = 0;         ///< Tie-break and call-state handle.
  cellular::CellId from_cell = 0;    ///< Source cell (already released).
  cellular::CellId to_cell = 0;      ///< Target cell whose lane must grant.
  cellular::BandwidthUnits demand_bu = 0;  ///< Claim validated at drain.
  /// Warmup gate evaluated at the crossing instant, carried along so the
  /// barrier counts the handoff exactly as an in-lane commit would have.
  bool counted = false;
  /// Call-pool slot of the in-flight call (the epoch bump at post time
  /// keeps every queued event stale, so the slot stays owned until the
  /// barrier resolves the claim).
  std::uint32_t slot = 0;
};

/// Canonical drain order: earlier crossing first, call id breaking ties.
struct ReservationEarlier {
  bool operator()(const Reservation& a, const Reservation& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s < b.time_s;
    return a.call < b.call;
  }
};

/// A commit group's inbox of foreign bandwidth claims. Posting happens from
/// the single-threaded barrier (lanes hand their outgoing claims over after
/// quiescing), so no locking; drain() canonicalizes the order regardless of
/// how posts interleaved.
class ReservationMailbox {
 public:
  void post(const Reservation& r) { pending_.push_back(r); }

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// All pending claims in canonical (time, call) order; the mailbox is
  /// left empty. Sorting here (not at post) keeps the canonical order a
  /// property of the drain, independent of posting interleave.
  [[nodiscard]] std::vector<Reservation> drain() {
    std::vector<Reservation> out;
    out.swap(pending_);
    std::sort(out.begin(), out.end(), ReservationEarlier{});
    return out;
  }

 private:
  std::vector<Reservation> pending_;
};

/// One round of a tree-structured combining step: merge two already-sorted
/// partial sequences into the left one (the Yu et al. NIC-barrier shape —
/// pairwise combining in O(log N) rounds instead of one O(N) serial sweep).
/// Each parallel drain leaves its deferred work pre-sorted in canonical
/// order, so the barrier only ever merges, never re-sorts.
template <typename T, typename Less>
void mergeCombine(std::vector<T>& left, std::vector<T>& right, Less less) {
  if (right.empty()) return;
  if (left.empty()) {
    left.swap(right);
    return;
  }
  std::vector<T> merged;
  merged.reserve(left.size() + right.size());
  std::merge(left.begin(), left.end(), right.begin(), right.end(),
             std::back_inserter(merged), less);
  left.swap(merged);
  right.clear();
}

}  // namespace facs::sim
