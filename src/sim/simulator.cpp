#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "mobility/gps.hpp"
#include "sim/event_queue.hpp"

namespace facs::sim {

namespace {

using cellular::AdmissionContext;
using cellular::CallId;
using cellular::CallRequest;
using cellular::CellId;
using cellular::HexNetwork;
using cellular::ServiceClass;
using mobility::MotionState;

/// Simulator event: what to do, and to which call.
struct Event {
  enum class Kind { Decision, End, Tick };
  Kind kind = Kind::Tick;
  CallId call = 0;
};

/// A request waiting for its admission decision (user being GPS-tracked).
struct PendingDecision {
  CallRequest request;
  MotionState state;  ///< Ground truth at decision time.
  std::shared_ptr<mobility::SpeedDependentTurn> model;
};

/// An admitted call.
struct ActiveCall {
  CallRequest request;  ///< target_cell kept current across handoffs.
  MotionState state;
  std::shared_ptr<mobility::SpeedDependentTurn> model;
};

class Run {
 public:
  Run(const SimulationConfig& cfg, const ControllerFactory& make_controller)
      : cfg_{cfg},
        network_{cfg.rings, cfg.cell_radius_km, cfg.capacity_bu},
        controller_{make_controller(network_)},
        arrival_rng_{makeRng(cfg.seed, 0)},
        user_rng_{makeRng(cfg.seed, 1)},
        gps_rng_{makeRng(cfg.seed, 2)},
        holding_rng_{makeRng(cfg.seed, 3)} {
    if (!controller_) {
      throw std::invalid_argument("controller factory returned nullptr");
    }
  }

  Metrics execute() {
    scheduleArrivals();
    if (cfg_.enable_handoffs && pending_decisions_ > 0) {
      queue_.push(cfg_.mobility_update_s, Event{Event::Kind::Tick, 0});
    }

    while (auto entry = queue_.pop()) {
      const double now = entry->time_s;
      switch (entry->payload.kind) {
        case Event::Kind::Decision:
          handleDecision(entry->payload.call, now);
          break;
        case Event::Kind::End:
          handleEnd(entry->payload.call, now);
          break;
        case Event::Kind::Tick:
          handleTick(now);
          break;
      }
    }

    metrics_.observed_span_s = std::max(0.0, last_change_s_ - cfg_.warmup_s);
    metrics_.total_capacity_bu = network_.totalCapacityBu();
    return metrics_;
  }

 private:
  /// Integrates occupied-BU time up to \p now (call before any change).
  /// Time before the warm-up boundary is excluded from the integral.
  void noteOccupancy(double now) {
    const double from = std::max(last_change_s_, cfg_.warmup_s);
    if (now > from) {
      metrics_.busy_bu_seconds +=
          static_cast<double>(network_.totalOccupiedBu()) * (now - from);
    }
    last_change_s_ = now;
  }

  [[nodiscard]] bool counted(double now) const noexcept {
    return now >= cfg_.warmup_s;
  }

  void scheduleArrivals() {
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(cfg_.total_requests));
    if (cfg_.arrivals == ArrivalProcess::UniformBurst) {
      for (int i = 0; i < cfg_.total_requests; ++i) {
        times.push_back(
            sampleUniform(arrival_rng_, 0.0, cfg_.arrival_window_s));
      }
      std::sort(times.begin(), times.end());
    } else {
      const double rate = static_cast<double>(cfg_.total_requests) /
                          cfg_.arrival_window_s;
      double t = 0.0;
      for (int i = 0; i < cfg_.total_requests; ++i) {
        t += sampleExponential(arrival_rng_, 1.0 / rate);
        times.push_back(t);
      }
    }

    for (const double t : times) {
      const CallId id = next_call_++;
      prepareRequest(id, t);
    }
  }

  /// Draws a user, tracks it through the GPS window and schedules the
  /// admission decision. Movement is independent of network state, so the
  /// whole window is computed here; the decision still fires at t + W so
  /// the counter state it sees is current.
  void prepareRequest(CallId id, double arrival_s) {
    std::uniform_int_distribution<std::size_t> cell_pick{
        0, network_.cellCount() - 1};
    const CellId spawn_cell = static_cast<CellId>(cell_pick(user_rng_));
    const RequestPlan plan = drawRequest(
        cfg_.scenario, network_.cell(spawn_cell).center, spawn_cell, user_rng_);

    PendingDecision pending;
    pending.model = std::make_shared<mobility::SpeedDependentTurn>(
        cfg_.scenario.turn);
    pending.state = plan.initial;

    const double window = cfg_.scenario.tracking_window_s;
    cellular::UserSnapshot snapshot;
    CellId target = plan.target_cell;
    if (window > 0.0) {
      // Collect fixes while the user moves; the estimator reconstructs
      // (S, A, D) exactly as a GPS-fed controller would.
      const mobility::GpsSampler sampler{
          cfg_.scenario.gps_error_m.value_or(0.0)};
      const double period = cfg_.scenario.gps_fix_period_s;
      const int fix_count = static_cast<int>(window / period) + 1;
      mobility::GpsEstimator estimator{
          static_cast<std::size_t>(std::max(2, fix_count))};
      estimator.addFix(
          sampler.sample(arrival_s, pending.state.position_km, gps_rng_));
      for (int i = 1; i < fix_count; ++i) {
        pending.model->step(pending.state, period, gps_rng_);
        estimator.addFix(sampler.sample(arrival_s + i * period,
                                        pending.state.position_km, gps_rng_));
      }
      // The user may have wandered into a neighbouring cell while tracked.
      target = network_.cellAt(pending.state.position_km).value_or(target);
      snapshot = estimator.snapshot(network_.cell(target).center);
      snapshot.position = pending.state.position_km;  // ledger-grade position
    } else {
      snapshot =
          mobility::snapshotFromTruth(pending.state,
                                      network_.cell(target).center);
    }

    CallRequest req;
    req.call = id;
    req.user = id;
    req.service = plan.service;
    req.demand_bu = cellular::profileFor(plan.service).demand_bu;
    req.snapshot = snapshot;
    req.target_cell = target;
    req.is_handoff = false;
    pending.request = req;

    pending_[id] = std::move(pending);
    ++pending_decisions_;
    queue_.push(arrival_s + window, Event{Event::Kind::Decision, id});
  }

  void handleDecision(CallId id, double now) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingDecision pending = std::move(it->second);
    pending_.erase(it);
    --pending_decisions_;

    const CallRequest& req = pending.request;
    cellular::BaseStation& station = network_.station(req.target_cell);
    const AdmissionContext ctx{station, now};

    const bool count = counted(now);
    if (count) {
      ++metrics_.new_requests;
      ++metrics_.class_requests[static_cast<std::size_t>(req.service)];
    }

    const cellular::AdmissionDecision decision =
        controller_->decide(req, ctx);
    // Defence in depth: an accept that does not fit would corrupt the
    // ledger, so the simulator re-checks the invariant the policy promised.
    const bool admit = decision.accept && station.canFit(req.demand_bu);

    if (!admit) {
      if (count) ++metrics_.new_blocked;
      controller_->onRejected(req, ctx);
      return;
    }

    noteOccupancy(now);
    station.allocate(req.call, req.demand_bu,
                     cellular::profileFor(req.service).real_time);
    if (count) {
      ++metrics_.new_accepted;
      ++metrics_.class_accepted[static_cast<std::size_t>(req.service)];
    }
    controller_->onAdmitted(req, ctx);

    ActiveCall active;
    active.request = req;
    active.state = pending.state;
    active.model = std::move(pending.model);
    active_[id] = std::move(active);

    const double holding = sampleExponential(
        holding_rng_, cellular::profileFor(req.service).mean_holding_s);
    queue_.push(now + holding, Event{Event::Kind::End, id});
  }

  void handleEnd(CallId id, double now) {
    const auto it = active_.find(id);
    if (it == active_.end()) return;  // dropped at a handoff earlier
    const ActiveCall& call = it->second;
    cellular::BaseStation& station = network_.station(call.request.target_cell);
    noteOccupancy(now);
    station.release(id);
    if (counted(now)) ++metrics_.completed;
    controller_->onReleased(call.request, AdmissionContext{station, now});
    active_.erase(it);
  }

  void handleTick(double now) {
    // Snapshot ids in sorted order: handoffs may erase map entries while we
    // iterate, and a deterministic visit order keeps runs reproducible.
    std::vector<CallId> ids;
    ids.reserve(active_.size());
    for (const auto& [id, call] : active_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());

    for (const CallId id : ids) {
      const auto it = active_.find(id);
      if (it == active_.end()) continue;
      ActiveCall& call = it->second;
      call.model->step(call.state, cfg_.mobility_update_s, user_rng_);
      const auto new_cell = network_.cellAt(call.state.position_km);
      if (!new_cell) {
        // Left coverage entirely: account as a completed departure.
        handleEnd(id, now);
        continue;
      }
      if (*new_cell != call.request.target_cell) {
        handleHandoff(id, call, *new_cell, now);
      }
    }

    // Keep ticking while there is anything left to move or decide.
    if (!active_.empty() || pending_decisions_ > 0) {
      queue_.push(now + cfg_.mobility_update_s, Event{Event::Kind::Tick, 0});
    }
  }

  /// Attempts to move \p call into \p new_cell; drops it on rejection.
  void handleHandoff(CallId id, ActiveCall& call, CellId new_cell,
                     double now) {
    cellular::BaseStation& old_station =
        network_.station(call.request.target_cell);
    cellular::BaseStation& new_station = network_.station(new_cell);

    CallRequest req = call.request;
    req.is_handoff = true;
    req.target_cell = new_cell;
    req.snapshot =
        mobility::snapshotFromTruth(call.state, network_.cell(new_cell).center);

    const bool count = counted(now);
    if (count) ++metrics_.handoff_requests;
    const AdmissionContext ctx{new_station, now};
    const cellular::AdmissionDecision decision = controller_->decide(req, ctx);
    const bool admit = decision.accept && new_station.canFit(req.demand_bu);

    noteOccupancy(now);
    old_station.release(id);
    if (admit) {
      new_station.allocate(id, req.demand_bu,
                           cellular::profileFor(req.service).real_time);
      if (count) ++metrics_.handoff_accepted;
      controller_->onAdmitted(req, ctx);  // refreshes SCC kinematics too
      call.request = req;
    } else {
      if (count) ++metrics_.handoff_dropped;
      controller_->onRejected(req, ctx);
      controller_->onReleased(call.request,
                              AdmissionContext{old_station, now});
      // The End event for this call becomes a no-op.
      active_.erase(id);
    }
  }

  SimulationConfig cfg_;
  HexNetwork network_;
  std::unique_ptr<cellular::AdmissionController> controller_;
  Rng arrival_rng_;
  Rng user_rng_;
  Rng gps_rng_;
  Rng holding_rng_;

  EventQueue<Event> queue_;
  std::unordered_map<CallId, PendingDecision> pending_;
  std::unordered_map<CallId, ActiveCall> active_;
  int pending_decisions_ = 0;
  CallId next_call_ = 1;
  double last_change_s_ = 0.0;
  Metrics metrics_;
};

}  // namespace

void validateConfig(const SimulationConfig& cfg) {
  if (cfg.total_requests < 0) {
    throw std::invalid_argument("total_requests must be >= 0");
  }
  if (!(cfg.arrival_window_s > 0.0)) {
    throw std::invalid_argument("arrival window must be positive");
  }
  if (cfg.warmup_s < 0.0) {
    throw std::invalid_argument("warmup must be >= 0");
  }
  if (cfg.enable_handoffs && !(cfg.mobility_update_s > 0.0)) {
    throw std::invalid_argument("mobility update period must be positive");
  }
  const ScenarioParams& s = cfg.scenario;
  if (s.tracking_window_s < 0.0) {
    throw std::invalid_argument("tracking window must be >= 0");
  }
  if (s.tracking_window_s > 0.0 &&
      (!(s.gps_fix_period_s > 0.0) ||
       s.gps_fix_period_s > s.tracking_window_s)) {
    throw std::invalid_argument(
        "GPS fix period must be in (0, tracking_window]");
  }
}

Metrics runSimulation(const SimulationConfig& config,
                      const ControllerFactory& make_controller) {
  validateConfig(config);
  Run run{config, make_controller};
  return run.execute();
}

}  // namespace facs::sim
