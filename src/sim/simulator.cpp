#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "mobility/gps.hpp"
#include "serve/call_pool.hpp"
#include "serve/ring_buffer.hpp"
#include "sim/event_queue.hpp"
#include "sim/reservation.hpp"
#include "sim/shard.hpp"

namespace facs::sim {

namespace {

using cellular::AdmissionContext;
using cellular::CallId;
using cellular::CallRequest;
using cellular::CellId;
using cellular::HexNetwork;
using cellular::ServiceClass;
using mobility::MotionState;

/// Where randomness streams live in the (seed, stream) split space. Every
/// call owns stream kCallStreamBase + id, so its draws (spawn, GPS noise,
/// holding time, mobility) never depend on how calls interleave — the
/// foundation of shard-count-independent results, and of the lazy window
/// materialization below: WHEN a call is built cannot change WHAT it
/// draws.
constexpr std::uint64_t kArrivalStream = 0;
constexpr std::uint64_t kCallStreamBase = 16;

/// Per-shard outbox ring capacity (entries). A window's outbox holds at
/// most the events that commit in that window, which tracks concurrent
/// calls, not cumulative ones; overflow spills to a counted vector, so an
/// undersized ring degrades visibly (EngineWindowStats::ring_spills), not
/// fatally.
constexpr std::size_t kOutboxRingCapacity = 4096;

/// Lifecycle of one simulated call.
enum class CallPhase : std::uint8_t {
  Pending,  ///< Tracked, waiting for its admission instant.
  Active,   ///< Admitted and holding bandwidth.
  Done,     ///< Completed, blocked, dropped, or left coverage.
};

/// Everything one call owns, living in a pool slot for exactly the call's
/// lifetime. Shard workers touch only calls their cells carry; within the
/// commit phase, exactly one group lane (the lane of the call's current
/// cell) may touch a call per window, and the barrier drain runs alone.
struct CallState {
  CallRequest request;  ///< target_cell kept current across handoffs.
  MotionState state;    ///< Ground truth.
  mobility::SpeedDependentTurn model;
  Rng rng;              ///< Per-call stream; all of this call's draws.
  double end_time_s = -1.0;  ///< Valid while Active.
  CallPhase phase = CallPhase::Pending;
  /// Ownership generation: bumped when the call changes shard (handoff) so
  /// event copies left in the old owner's queue are recognisably stale.
  /// Also bumped when a cross-group reservation is posted, so no event can
  /// execute while the claim is in flight to the barrier.
  std::uint32_t epoch = 0;
  /// The pool slot this call occupies — stamped at acquire so commits can
  /// schedule follow-up events carrying it (events are validated against
  /// the slot's occupant, the cross-lifetime staleness check).
  std::uint32_t slot = serve::kNoSlot;
  /// Snapshot-only policy work precomputed off the serialized commit path:
  /// set by the parallel prepare phase for the initial decision, re-run by
  /// the local phase whenever a mobility step produces the new snapshot a
  /// handoff decision will use (so it is always current when its decision
  /// commits). Invalid when precompute is disabled or unsupported — the
  /// policy then infers inline, with bit-identical results.
  cellular::PredictedCv predicted{};

  explicit CallState(const mobility::SpeedDependentTurnParams& turn)
      : model{turn} {}
};

/// How many commit lanes a run gets: the configured group count when the
/// policy promises cell-local or group-local commits, one serialized lane
/// for Global scope (the partition further clamps to the cell count).
/// GroupLocal policies learn the mapping through onPartitionChanged() and
/// drain their cross-group residue at onCommitBarrier().
[[nodiscard]] int requestedLanes(const SimulationConfig& cfg,
                                 const cellular::AdmissionController& c) {
  if (c.commitScope() == cellular::CommitScope::Global) return 1;
  return std::max(1, cfg.commit_groups);
}

/// Static spawn weights for the weighted partition: each cell weighs its
/// arrival_scale (default 1) times the mean bandwidth demand of the mix its
/// spawns draw from — the expected BU/arrival load the cell feeds its lane.
/// A pure function of the config, so the initial weighted partition is
/// identical at every shard count.
[[nodiscard]] std::vector<double> spawnWeightsOf(const SimulationConfig& cfg,
                                                 const HexNetwork& network) {
  const double base_demand = cfg.scenario.mix.meanDemandBu();
  std::vector<double> w(network.cellCount(), base_demand);
  for (const CellOverride& o : cfg.cell_overrides) {
    const double scale = o.arrival_scale.value_or(1.0);
    const double demand = o.mix ? o.mix->meanDemandBu() : base_demand;
    w[static_cast<std::size_t>(o.cell)] = scale * demand;
  }
  return w;
}

/// The run's initial cell-to-lane mapping. The weighted strategy only
/// engages at more than one lane: a single lane has nothing to balance, and
/// routing it through the historical constructor keeps groups == 1 runs
/// bit-identical to the pre-weighted engine by construction.
[[nodiscard]] cellular::CellGroupPartition makePartition(
    const SimulationConfig& cfg, const HexNetwork& network, int lanes) {
  if (lanes > 1 && cfg.partition == PartitionStrategy::Weighted) {
    return cellular::CellGroupPartition{network, lanes,
                                        spawnWeightsOf(cfg, network)};
  }
  return cellular::CellGroupPartition{network, lanes};
}

/// Arrival-instant source. The batch engine drew every instant up front;
/// serve mode cannot (an always-on run has no "all arrivals"), so the
/// source draws lazily from the same kArrivalStream in the same order —
/// the consumed RNG sequence is identical, which keeps lazy materialized
/// runs bit-identical to the historical upfront path.
class ArrivalSource {
 public:
  void init(const SimulationConfig& cfg, double serve_duration_s) {
    rng_ = makeRng(cfg.seed, kArrivalStream);
    mode_ = cfg.arrivals;
    if (mode_ == ArrivalProcess::UniformBurst) {
      times_.reserve(static_cast<std::size_t>(cfg.total_requests));
      for (int i = 0; i < cfg.total_requests; ++i) {
        times_.push_back(
            sampleUniform(rng_, 0.0, cfg.arrival_window_s));
      }
      std::sort(times_.begin(), times_.end());
      return;
    }
    base_rate_ =
        static_cast<double>(cfg.total_requests) / cfg.arrival_window_s;
    duration_s_ = serve_duration_s;
    remaining_ = serve_duration_s > 0.0
                     ? std::numeric_limits<long long>::max()
                     : static_cast<long long>(cfg.total_requests);
    drawNext();
  }

  /// Next arrival instant, if any.
  [[nodiscard]] std::optional<double> peek() const noexcept {
    if (mode_ == ArrivalProcess::UniformBurst) {
      if (index_ < times_.size()) return times_[index_];
      return std::nullopt;
    }
    if (have_pending_) return pending_;
    return std::nullopt;
  }

  void pop() {
    if (mode_ == ArrivalProcess::UniformBurst) {
      ++index_;
      return;
    }
    drawNext();
  }

  /// Global rate ramp at a barrier: scale the rate of every draw from
  /// \p at_s on, and rescale the residual of the already-drawn pending
  /// arrival memorylessly (exponential residuals are themselves
  /// exponential, so stretching the part past the barrier by the rate
  /// ratio preserves the process without losing or reordering a draw).
  void rescale(double new_scale, double at_s) {
    if (mode_ != ArrivalProcess::Poisson) return;  // validated upstream
    if (have_pending_ && pending_ > at_s) {
      pending_ = at_s + (pending_ - at_s) * (scale_ / new_scale);
      last_ = pending_;
    }
    scale_ = new_scale;
  }

 private:
  void drawNext() {
    if (remaining_ <= 0) {
      have_pending_ = false;
      return;
    }
    const double mean = 1.0 / (base_rate_ * scale_);
    const double t = last_ + sampleExponential(rng_, mean);
    if (duration_s_ > 0.0 && t >= duration_s_) {
      // Service window over: drain from here on.
      have_pending_ = false;
      remaining_ = 0;
      return;
    }
    pending_ = t;
    last_ = t;
    have_pending_ = true;
    --remaining_;
  }

  ArrivalProcess mode_ = ArrivalProcess::UniformBurst;
  Rng rng_;
  // UniformBurst: all instants drawn and sorted up front (the paper's
  // burst has no steady state to stream).
  std::vector<double> times_;
  std::size_t index_ = 0;
  // Poisson: one draw ahead.
  double base_rate_ = 0.0;
  double scale_ = 1.0;
  double pending_ = 0.0;
  double last_ = 0.0;
  bool have_pending_ = false;
  long long remaining_ = 0;
  double duration_s_ = 0.0;
};

class Engine {
 public:
  Engine(const SimulationConfig& cfg, const ControllerFactory& make_controller,
         const ServiceHooks& hooks)
      : cfg_{cfg},
        hooks_{hooks},
        network_{cfg.rings, cfg.cell_radius_km, cfg.capacity_bu,
                 capacityOverrides(cfg)},
        controller_{make_controller(network_)},
        partition_{makePartition(
            cfg, network_, controller_ ? requestedLanes(cfg, *controller_) : 1)},
        shard_count_{std::max(1, std::min(cfg.shards, kMaxShards))},
        pool_{shard_count_},
        queues_(static_cast<std::size_t>(shard_count_)),
        rings_(static_cast<std::size_t>(shard_count_),
               serve::RingBuffer<CommitEntry>{kOutboxRingCapacity}),
        spills_(static_cast<std::size_t>(shard_count_)),
        local_events_(static_cast<std::size_t>(shard_count_), 0),
        lanes_(static_cast<std::size_t>(partition_.groups())),
        mailboxes_(static_cast<std::size_t>(partition_.groups())) {
    if (!controller_) {
      throw std::invalid_argument("controller factory returned nullptr");
    }
    prepareCellOverrides();
    // The policy learns the startup mapping before any decision commits;
    // every adopted repartition epoch re-announces it (barrier context).
    controller_->onPartitionChanged(partition_);
    const std::string warning =
        controller_->auditWorkload(cellular::WorkloadEnvelope{
            cfg_.scenario.speed_max_kmh, cfg_.cell_radius_km});
    if (!warning.empty()) {
      // Once per run, on stderr so diffable stdout never moves; counted so
      // JSON consumers see the degradation too.
      std::cerr << "sim: warning: " << warning << "\n";
      ++metrics_.policy_warnings;
    }
    if (cfg_.repartition_every_s > 0.0 && partition_.groups() > 1) {
      // Observed-load epochs: per-cell committed-event counts feed the
      // epoch re-partitions. Only maintained when they can matter (a
      // single lane never re-partitions, and a degraded Global-scope run
      // is a single lane).
      cell_events_.assign(network_.cellCount(), 0);
      next_epoch_s_ = cfg_.repartition_every_s;
    }
    mutation_order_ = serve::mutationSchedule(cfg_.mutations);
    for (const serve::ScenarioMutation& m : cfg_.mutations) {
      if (m.op == serve::MutationOp::Outage ||
          m.op == serve::MutationOp::Restore) {
        down_.assign(network_.cellCount(), 0);
        break;
      }
    }
    if (cfg_.scenario.tracking_window_s > 0.0) {
      // Per-shard scratch estimators: call preparation reuses them instead
      // of constructing one per call, so the steady-state prepare path
      // never touches the allocator.
      const int fix_count =
          static_cast<int>(cfg_.scenario.tracking_window_s /
                           cfg_.scenario.gps_fix_period_s) +
          1;
      scratch_est_.reserve(static_cast<std::size_t>(shard_count_));
      for (int s = 0; s < shard_count_; ++s) {
        scratch_est_.emplace_back(
            static_cast<std::size_t>(std::max(2, fix_count)));
      }
    }
  }

  Metrics execute() {
    // Phase wall clocks: commit_phase_s / total is the measured serial
    // fraction (what caps sharded speedup). Timing is observational only —
    // never an input to any simulation outcome.
    const auto stamp = [] { return std::chrono::steady_clock::now(); };
    const auto since = [](std::chrono::steady_clock::time_point a,
                          std::chrono::steady_clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };

    auto t0 = stamp();
    arrivals_.init(cfg_, hooks_.serve_duration_s);
    auto t1 = stamp();
    metrics_.prepare_phase_s = since(t0, t1);
    metrics_.commit_groups = partition_.groups();

    // Tick windows: with handoffs the barrier period is the mobility update
    // (the minimum latency at which one cell's state can matter to
    // another); without cross-cell traffic one unbounded window suffices —
    // unless a streaming consumer wants periodic snapshots, in which case
    // the run is windowed at the emission period instead. Windowing a
    // no-handoff run is outcome-neutral: with no cross-cell traffic there
    // is nothing a barrier could reorder, the canonical replay is merely
    // partitioned. Mutations additionally clamp any window so a barrier
    // lands exactly at each mutation instant.
    const double window_s =
        cfg_.enable_handoffs
            ? cfg_.mobility_update_s
            : (hooks_.on_window && hooks_.metrics_every_s > 0.0
                   ? hooks_.metrics_every_s
                   : std::numeric_limits<double>::infinity());
    const bool grouped = partition_.groups() > 1;
    next_emit_s_ = hooks_.metrics_every_s;

    while (true) {
      auto next = nextEventTime();
      // Mutations and partition epochs due before the next event: the
      // window ending at their instant is empty, so apply them right here
      // (an empty window's barrier); a mutation due at the same instant as
      // an epoch applies first. Rate ramps can move the next arrival, so
      // re-peek.
      while (next &&
             (nextMutationTime() <= *next || nextEpochTime() <= *next)) {
        if (nextMutationTime() <= nextEpochTime()) {
          applyNextMutation();
        } else {
          repartitionEpoch(nextEpochTime());
        }
        next = nextEventTime();
      }
      if (!next) break;

      double window_end = std::numeric_limits<double>::infinity();
      if (std::isfinite(window_s)) {
        const double k = std::floor(*next / window_s);
        window_end = (k + 1.0) * window_s;
      }
      // Clamp so a barrier lands exactly at the next mutation instant and
      // at the next partition epoch. Progress is guaranteed: the pre-step
      // above left both strictly past *next.
      window_end = std::min(window_end, nextMutationTime());
      window_end = std::min(window_end, nextEpochTime());

      t0 = stamp();
      materializeWindow(window_end);
      t1 = stamp();
      metrics_.prepare_phase_s += since(t0, t1);

      runLocalPhase(window_end);
      const auto t2 = stamp();
      metrics_.local_phase_s += since(t1, t2);

      // Commit: route the merged mailboxes to the group lanes (serial),
      // replay each lane (concurrent when grouped; THE serialized commit
      // when not), then drain cross-group reservations and flush deferred
      // events at the barrier (serial). With one lane everything lands in
      // commit_phase_s — the pre-grouped accounting; with several, the
      // lane replay is no longer serialized and is reported separately.
      routeCommits();
      const auto t3 = stamp();
      runLanes(window_end);
      const auto t4 = stamp();
      drainBarrier(window_end);
      releaseFreed();
      const auto t5 = stamp();
      if (grouped) {
        metrics_.commit_phase_s += since(t2, t3) + since(t4, t5);
        metrics_.commit_lane_s += since(t3, t4);
      } else {
        metrics_.commit_phase_s += since(t2, t5);
      }

      // Mutations due exactly at this barrier apply now, after every
      // commit of the window (events at the mutation instant itself
      // belong to the NEXT window — popBefore is strict). The explicit
      // cursor check matters: at an unbounded window both sides are +inf.
      while (next_mutation_ < mutation_order_.size() &&
             nextMutationTime() <= window_end) {
        applyNextMutation();
      }
      // A partition epoch landing exactly on this barrier re-draws the
      // group boundaries now — after every commit, mutation and drained
      // reservation of the window (the mapping is constant within any
      // window, and no claim is ever in flight across a re-partition).
      // The explicit enablement check matters: at an unbounded window
      // both sides of the comparison are +inf.
      while (!cell_events_.empty() && nextEpochTime() <= window_end) {
        repartitionEpoch(nextEpochTime());
      }
      maybeEmit(window_end);
    }

    double last_change_s = 0.0;
    for (const GroupLane& lane : lanes_) {
      last_change_s = std::max(last_change_s, lane.last_change_s);
    }
    // Trailing events can all be stale (dead calls' queued moves), in
    // which case the last metric change precedes the last emitted barrier
    // — clamp so the final window never runs backwards.
    if (hooks_.on_window) {
      emitWindow(std::max(last_change_s, last_emit_t_), /*final_window=*/true);
    }
    return snapshotMetrics();
  }

 private:
  using Queue = EventQueue<ShardEvent>;

  /// Per-window deferred schedule: an event that belongs to a later window
  /// and must be pushed into a shard queue — which lanes cannot do
  /// concurrently (two groups' cells may share a shard queue), so lanes
  /// buffer these and the barrier flushes them serially.
  struct DeferredEvent {
    double time_s = 0.0;
    CellId cell = 0;
    ShardEvent event;
  };

  /// A drop-path controller release deferred out of the parallel
  /// reservation drain: onReleased() names the SOURCE cell's station,
  /// which belongs to a foreign group, so running it inside a per-group
  /// drain would be the one cross-group touch of the whole barrier. Each
  /// drain appends these in its canonical drain order; the barrier
  /// tree-combines the per-lane runs (mergeCombine) and replays the result
  /// serially in global (time, call) order.
  struct DeferredRelease {
    double time_s = 0.0;
    CallId call = 0;
    CallRequest request;  ///< The source half (pre-handoff target_cell).
    CellId from_cell = 0;
  };

  struct DeferredReleaseEarlier {
    bool operator()(const DeferredRelease& a,
                    const DeferredRelease& b) const noexcept {
      if (a.time_s != b.time_s) return a.time_s < b.time_s;
      return a.call < b.call;
    }
  };

  /// One commit lane: the canonical-order replay queue of one cell group
  /// plus everything the lane accumulates privately — outgoing reservation
  /// claims, deferred schedules, slots its commits finished (recycled at
  /// the barrier: lanes run concurrently and must not touch the shared
  /// freelist), its group's slice of the occupancy integral and of the
  /// counters. Lanes never touch each other's state; the barrier folds
  /// them in group order.
  struct GroupLane {
    std::priority_queue<CommitEntry, std::vector<CommitEntry>, CommitLater>
        queue;
    std::vector<Reservation> outgoing;
    std::vector<DeferredEvent> deferred;
    /// Drop-path controller releases this lane's reservation drain
    /// deferred (already in canonical order — the drain order).
    std::vector<DeferredRelease> releases;
    /// Pool slots of calls this lane finished this window; released by the
    /// single-threaded barrier in lane order (deterministic freelist).
    std::vector<std::uint32_t> freed;
    /// Group-local occupancy integral: occupied BU over this group's
    /// cells, integrated at each committed change exactly like the
    /// pre-grouped engine integrated the network total.
    double last_change_s = 0.0;
    double busy_bu_seconds = 0.0;
    cellular::BandwidthUnits occupied_bu = 0;
    /// Counter slice (only the counters lanes touch are merged).
    Metrics partial;
    std::uint64_t events = 0;
    /// Reservations this lane resolved at barriers (admitted or dropped) —
    /// barrier work attributed to the lane for Metrics::lane_events, kept
    /// apart from `events` because reservation commits were never part of
    /// engine_events and must not become part of it.
    std::uint64_t barrier_events = 0;
    /// Wall clock this lane spent running: its canonical replay plus its
    /// share of the parallel reservation drain (Metrics::lane_commit_s).
    /// Observational only — never an input to any outcome.
    double wall_s = 0.0;
  };

  [[nodiscard]] static std::vector<cellular::CellCapacityOverride>
  capacityOverrides(const SimulationConfig& cfg) {
    std::vector<cellular::CellCapacityOverride> out;
    for (const CellOverride& o : cfg.cell_overrides) {
      if (o.capacity_bu) out.emplace_back(o.cell, *o.capacity_bu);
    }
    return out;
  }

  /// Digests cell_overrides into the spawn-weight CDF and per-cell mix
  /// table. Both stay empty when no override needs them, keeping the
  /// unscaled run on the exact legacy draw sequence (bit-identical).
  void prepareCellOverrides() {
    bool weighted = false;
    bool mixed = false;
    for (const CellOverride& o : cfg_.cell_overrides) {
      if (o.arrival_scale && *o.arrival_scale != 1.0) weighted = true;
      if (o.mix) mixed = true;
    }
    if (weighted) {
      ensureSpawnWeights();
      rebuildSpawnCdf();
    }
    if (mixed) {
      cell_mix_.resize(network_.cellCount());
      for (const CellOverride& o : cfg_.cell_overrides) {
        if (o.mix) cell_mix_[static_cast<std::size_t>(o.cell)] = o.mix;
      }
    }
  }

  /// Lazily switches the spawn draw to weighted mode: unit weights seeded
  /// with whatever arrival_scale overrides the config carries. A per-cell
  /// ArrivalScale mutation on an unweighted config lands here — calls
  /// materialized after it draw their spawn cell from the CDF.
  void ensureSpawnWeights() {
    if (!spawn_weight_.empty()) return;
    spawn_weight_.assign(network_.cellCount(), 1.0);
    for (const CellOverride& o : cfg_.cell_overrides) {
      if (o.arrival_scale) {
        spawn_weight_[static_cast<std::size_t>(o.cell)] = *o.arrival_scale;
      }
    }
  }

  void rebuildSpawnCdf() {
    spawn_cdf_.resize(spawn_weight_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < spawn_weight_.size(); ++i) {
      total += spawn_weight_[i];
      spawn_cdf_[i] = total;
    }
  }

  [[nodiscard]] int shardOf(CellId cell) const noexcept {
    return static_cast<int>(static_cast<std::size_t>(cell) %
                            static_cast<std::size_t>(shard_count_));
  }

  [[nodiscard]] int laneOf(CellId cell) const {
    return partition_.groupOf(cell);
  }

  [[nodiscard]] bool isDown(CellId cell) const noexcept {
    return !down_.empty() && down_[static_cast<std::size_t>(cell)] != 0;
  }

  /// Resolves an event to its call iff the slot still carries the call the
  /// event was scheduled for — the cross-lifetime staleness check (pool
  /// slots recycle; epochs cover staleness within one lifetime).
  [[nodiscard]] CallState* liveCall(const ShardEvent& ev) {
    if (call_pool_.occupantOf(ev.slot) != ev.call) return nullptr;
    return &call_pool_.at(ev.slot);
  }

  [[nodiscard]] std::optional<double> nextEventTime() const {
    std::optional<double> best;
    for (const Queue& q : queues_) {
      const auto t = q.peekTime();
      if (t && (!best || *t < *best)) best = t;
    }
    if (const auto t = arrivals_.peek()) {
      // An unmaterialized arrival's first event is its admission decision.
      const double d = *t + cfg_.scenario.tracking_window_s;
      if (!best || d < *best) best = d;
    }
    return best;
  }

  [[nodiscard]] double nextMutationTime() const noexcept {
    if (next_mutation_ >= mutation_order_.size()) {
      return std::numeric_limits<double>::infinity();
    }
    return cfg_.mutations[mutation_order_[next_mutation_]].at_s;
  }

  void applyNextMutation() {
    applyMutation(cfg_.mutations[mutation_order_[next_mutation_++]]);
    ++metrics_.mutations_applied;
  }

  /// Next weighted-partition epoch boundary (+inf when re-partitioning is
  /// off or the run degraded to one lane).
  [[nodiscard]] double nextEpochTime() const noexcept {
    return next_epoch_s_;
  }

  /// Re-draws the group boundaries from the load observed since the last
  /// epoch: per-cell committed-event counts (+1, so silent cells keep a
  /// non-zero weight and all-silent epochs degrade to uniform) feed the
  /// weighted partition. Deterministic — the counts are pure functions of
  /// (config, seed), never wall time. Runs only in barrier context (lanes
  /// quiesced, mailboxes drained, deferred events flushed), so remapping a
  /// cell can never strand an in-flight claim or a queued lane event; the
  /// per-group occupancy integrals are closed at \p at_s and re-based from
  /// the live ledgers under the new mapping.
  void repartitionEpoch(double at_s) {
    next_epoch_s_ += cfg_.repartition_every_s;
    epoch_weights_.resize(cell_events_.size());
    for (std::size_t i = 0; i < cell_events_.size(); ++i) {
      epoch_weights_[i] = static_cast<double>(cell_events_[i] + 1);
      cell_events_[i] = 0;  // each epoch rebalances on ITS observed load
    }
    cellular::CellGroupPartition next{network_, partition_.groups(),
                                      epoch_weights_};
    bool changed = false;
    for (const cellular::Cell& cell : network_.cells()) {
      if (next.groupOf(cell.id) != partition_.groupOf(cell.id)) {
        changed = true;
        break;
      }
    }
    if (!changed) return;

    // Boundary hysteresis: a re-draw that barely improves the projected
    // max/mean imbalance is flapping, not balancing — moving cells costs
    // GroupLocal policies a store migration and the occupancy integrals a
    // re-base, for noise-level gain on a near-balanced disk. Skip unless
    // the new mapping beats the old by the adoption threshold (on THIS
    // epoch's observed weights; deterministic either way).
    if (weightImbalance(partition_) - weightImbalance(next) <
        kRepartitionHysteresis) {
      ++metrics_.repartitions_skipped;
      return;
    }

    for (GroupLane& lane : lanes_) noteOccupancy(lane, at_s);
    policyBarrier(at_s);  // no deferred policy work may outlive the mapping
    partition_ = std::move(next);
    for (GroupLane& lane : lanes_) lane.occupied_bu = 0;
    for (const cellular::Cell& cell : network_.cells()) {
      lanes_[static_cast<std::size_t>(laneOf(cell.id))].occupied_bu +=
          network_.station(cell.id).occupiedBu();
    }
    controller_->onPartitionChanged(partition_);
    ++metrics_.repartitions;
  }

  /// Minimum projected imbalance gain (max/mean group weight, a pure ratio)
  /// an epoch re-draw must deliver to be adopted.
  static constexpr double kRepartitionHysteresis = 0.02;

  /// Max/mean per-group weight of this epoch's observed load
  /// (epoch_weights_) under \p partition — the projected lane imbalance
  /// the re-draw is trying to shrink.
  [[nodiscard]] double weightImbalance(
      const cellular::CellGroupPartition& partition) {
    group_weight_.assign(static_cast<std::size_t>(partition.groups()), 0.0);
    for (std::size_t i = 0; i < epoch_weights_.size(); ++i) {
      group_weight_[static_cast<std::size_t>(
          partition.groupOf(static_cast<CellId>(i)))] += epoch_weights_[i];
    }
    double total = 0.0;
    double peak = 0.0;
    for (const double w : group_weight_) {
      total += w;
      peak = std::max(peak, w);
    }
    if (total <= 0.0) return 1.0;
    return peak * static_cast<double>(group_weight_.size()) / total;
  }

  /// Integrates a group's occupied-BU time up to \p now (call before any
  /// change to that group's ledgers). Touched only by the lane that owns
  /// the group or by the single-threaded barrier drain.
  void noteOccupancy(GroupLane& lane, double now) {
    const double from = std::max(lane.last_change_s, cfg_.warmup_s);
    if (now > from) {
      lane.busy_bu_seconds +=
          static_cast<double>(lane.occupied_bu) * (now - from);
    }
    lane.last_change_s = now;
  }

  [[nodiscard]] bool counted(double now) const noexcept {
    return now >= cfg_.warmup_s;
  }

  /// Attributes one committed event to its cell for the epoch load counts.
  /// Concurrency: a cell belongs to exactly one lane (and one barrier
  /// drain), so concurrent writers always hit disjoint elements.
  void noteCellLoad(CellId cell) noexcept {
    if (!cell_events_.empty()) {
      ++cell_events_[static_cast<std::size_t>(cell)];
    }
  }

  /// Counts rationales cut at ReasonText's inline capacity, so explain-mode
  /// runs can surface the loss (the CLI warns once per run) instead of
  /// silently dropping tails. Respects the warmup gate like every other
  /// counter — only measured decisions are reported. Deterministic:
  /// decisions do not depend on it.
  static void noteRationale(Metrics& into,
                            const cellular::AdmissionDecision& decision,
                            bool count) noexcept {
    if (count && decision.rationale.truncated()) {
      ++into.truncated_rationales;
    }
  }

  /// Folds one lane's private slice into \p out — every counter a lane may
  /// touch, in group order so the double accumulation is reproducible.
  static void mergeLaneInto(Metrics& out, const GroupLane& lane) {
    const Metrics& p = lane.partial;
    out.new_requests += p.new_requests;
    out.new_accepted += p.new_accepted;
    out.new_blocked += p.new_blocked;
    out.handoff_requests += p.handoff_requests;
    out.handoff_accepted += p.handoff_accepted;
    out.handoff_dropped += p.handoff_dropped;
    out.completed += p.completed;
    for (std::size_t i = 0; i < p.class_requests.size(); ++i) {
      out.class_requests[i] += p.class_requests[i];
      out.class_accepted[i] += p.class_accepted[i];
    }
    out.truncated_rationales += p.truncated_rationales;
    out.reservations_posted += p.reservations_posted;
    out.reservations_admitted += p.reservations_admitted;
    out.reservations_dropped += p.reservations_dropped;
    out.busy_bu_seconds += lane.busy_bu_seconds;
    out.engine_events += lane.events;
  }

  /// The run's full Metrics at this instant, folded exactly like the final
  /// batch fold (same order, same operations) — so the last streaming
  /// window's cumulative is bit-identical to the batch return value, and
  /// this IS the batch return value at end of run. Non-destructive: lanes
  /// keep accumulating afterwards.
  [[nodiscard]] Metrics snapshotMetrics() const {
    Metrics out = metrics_;
    out.lane_events.reserve(lanes_.size());
    out.lane_commit_s.reserve(lanes_.size());
    double last_change_s = 0.0;
    for (const GroupLane& lane : lanes_) {
      mergeLaneInto(out, lane);
      out.lane_events.push_back(lane.events + lane.barrier_events);
      out.lane_commit_s.push_back(lane.wall_s);
      last_change_s = std::max(last_change_s, lane.last_change_s);
    }
    out.observed_span_s = std::max(0.0, last_change_s - cfg_.warmup_s);
    out.total_capacity_bu = network_.totalCapacityBu();
    for (const std::uint64_t n : local_events_) out.engine_events += n;
    out.peak_concurrent_calls = call_pool_.stats().high_water;
    return out;
  }

  [[nodiscard]] EngineWindowStats windowStats() const {
    const auto ps = call_pool_.stats();
    EngineWindowStats s;
    s.pool_capacity = ps.capacity;
    s.pool_live = ps.live;
    s.pool_high_water = ps.high_water;
    s.pool_acquired = ps.acquired;
    s.pool_released = ps.released;
    s.pool_grow_events = ps.grow_events;
    s.ring_capacity = rings_.empty() ? 0 : rings_.front().capacity();
    for (const auto& r : rings_) {
      s.ring_high_water =
          std::max(s.ring_high_water,
                   static_cast<std::uint64_t>(r.highWater()));
    }
    s.ring_spills = ring_spills_total_;
    s.mutations_applied = metrics_.mutations_applied;
    return s;
  }

  // ------------------------------------------------------------- emission

  void maybeEmit(double t1) {
    if (!hooks_.on_window || !std::isfinite(t1)) return;
    const double every = hooks_.metrics_every_s;
    if (every > 0.0 && t1 < next_emit_s_) return;
    emitWindow(t1, /*final_window=*/false);
    if (every > 0.0) {
      next_emit_s_ = (std::floor(t1 / every) + 1.0) * every;
    }
  }

  void emitWindow(double t1, bool final_window) {
    WindowSnapshot w;
    w.index = emit_index_++;
    w.t0 = last_emit_t_;
    w.t1 = t1;
    w.final_window = final_window;
    w.cumulative = snapshotMetrics();
    w.stats = windowStats();
    last_emit_t_ = t1;
    hooks_.on_window(w);
  }

  // ---------------------------------------------------------------- prepare

  /// Materializes every arrival whose admission decision falls inside the
  /// window: acquire a pool slot, build the call — spawn cell, GPS
  /// tracking through the observation window, the admission-time
  /// snapshot — in parallel over the shard pool (each call only touches
  /// its own slot and RNG stream), then schedule the decision events
  /// serially in call order. Lazy-by-window is bit-identical to the old
  /// everything-up-front preparation: the arrival stream is consumed in
  /// the same order, and every other draw comes from the call's own
  /// stream, which does not care when it runs. Decision instants are
  /// >= every previously drained barrier, so the queue pushes are always
  /// monotone-safe.
  void materializeWindow(double window_end) {
    const double track = cfg_.scenario.tracking_window_s;
    batch_slots_.clear();
    batch_times_.clear();
    while (const auto t = arrivals_.peek()) {
      if (!(*t + track < window_end)) break;
      arrivals_.pop();
      const CallId id = ++next_call_id_;
      const std::uint32_t slot = call_pool_.acquire(id, cfg_.scenario.turn);
      call_pool_.at(slot).slot = slot;
      batch_slots_.push_back(slot);
      batch_times_.push_back(*t);
    }
    if (batch_slots_.empty()) return;

    pool_.run([&](int shard) {
      for (std::size_t i = static_cast<std::size_t>(shard);
           i < batch_slots_.size();
           i += static_cast<std::size_t>(shard_count_)) {
        prepareCall(shard, batch_slots_[i], batch_times_[i]);
      }
    });

    for (std::size_t i = 0; i < batch_slots_.size(); ++i) {
      const std::uint32_t slot = batch_slots_[i];
      const CallState& c = call_pool_.at(slot);
      queues_[static_cast<std::size_t>(shardOf(c.request.target_cell))].push(
          batch_times_[i] + track,
          ShardEvent{ShardEventKind::Decision, c.request.call, 0, slot});
    }
  }

  /// Where a fresh request spawns: the legacy uniform pick, or — as soon
  /// as any cell carries an arrival_scale (override or mutation) — a
  /// weighted draw over the per-cell CDF (hotspot modelling). The two
  /// paths consume the call's RNG differently, so the weighted draw only
  /// engages when a scale actually differs from 1 — unscaled configs keep
  /// their exact historical draw sequence.
  [[nodiscard]] CellId drawSpawnCell(Rng& rng) {
    if (spawn_cdf_.empty()) {
      std::uniform_int_distribution<std::size_t> cell_pick{
          0, network_.cellCount() - 1};
      return static_cast<CellId>(cell_pick(rng));
    }
    const double u = sampleUniform(rng, 0.0, spawn_cdf_.back());
    const auto it = std::upper_bound(spawn_cdf_.begin(), spawn_cdf_.end(), u);
    const std::size_t i = std::min(
        static_cast<std::size_t>(it - spawn_cdf_.begin()),
        spawn_cdf_.size() - 1);
    return static_cast<CellId>(i);
  }

  /// Builds one call in its slot: spawn draw, tracking walk, snapshot.
  /// Uses only the call's own stream plus \p shard's scratch estimator —
  /// safe to run for many calls concurrently, and allocation-free in
  /// steady state.
  void prepareCall(int shard, std::uint32_t slot, double arrival_s) {
    CallState& c = call_pool_.at(slot);
    const CallId id = call_pool_.occupantOf(slot);
    c.rng =
        makeRng(cfg_.seed, kCallStreamBase + static_cast<std::uint64_t>(id));

    const CellId spawn_cell = drawSpawnCell(c.rng);
    const bool mixed = !cell_mix_.empty() &&
                       cell_mix_[static_cast<std::size_t>(spawn_cell)];
    RequestPlan plan;
    if (mixed) {
      // Hotspot cells skew their own service mix; everything else about
      // the population stays the scenario's.
      ScenarioParams local = cfg_.scenario;
      local.mix = *cell_mix_[static_cast<std::size_t>(spawn_cell)];
      plan = drawRequest(local, network_.cell(spawn_cell).center, spawn_cell,
                         c.rng);
    } else {
      plan = drawRequest(cfg_.scenario, network_.cell(spawn_cell).center,
                         spawn_cell, c.rng);
    }
    c.state = plan.initial;

    const double window = cfg_.scenario.tracking_window_s;
    cellular::UserSnapshot snapshot;
    CellId target = plan.target_cell;
    if (window > 0.0) {
      // Collect fixes while the user moves; the estimator reconstructs
      // (S, A, D) exactly as a GPS-fed controller would.
      const mobility::GpsSampler sampler{
          cfg_.scenario.gps_error_m.value_or(0.0)};
      const double period = cfg_.scenario.gps_fix_period_s;
      const int fix_count = static_cast<int>(window / period) + 1;
      mobility::GpsEstimator& estimator =
          scratch_est_[static_cast<std::size_t>(shard)];
      estimator.reset();
      estimator.addFix(sampler.sample(arrival_s, c.state.position_km, c.rng));
      for (int i = 1; i < fix_count; ++i) {
        c.model.step(c.state, period, c.rng);
        estimator.addFix(
            sampler.sample(arrival_s + i * period, c.state.position_km, c.rng));
      }
      // The user may have wandered into a neighbouring cell while tracked.
      target = network_.cellAt(c.state.position_km).value_or(target);
      snapshot = estimator.snapshot(network_.cell(target).center);
      snapshot.position = c.state.position_km;  // ledger-grade position
    } else {
      snapshot =
          mobility::snapshotFromTruth(c.state, network_.cell(target).center);
    }

    CallRequest req;
    req.call = id;
    req.user = id;
    req.service = plan.service;
    req.demand_bu = cellular::profileFor(plan.service).demand_bu;
    req.snapshot = snapshot;
    req.target_cell = target;
    req.is_handoff = false;
    c.request = req;

    // Snapshot-only policy work (FACS: the whole FLC1 inference) runs here,
    // in parallel, instead of inside the serialized commit phase. The
    // snapshot cannot change between now and the decision instant (pending
    // calls do not move), so the value stays coherent until consumed.
    c.predicted = precompute(req.snapshot);
  }

  /// Gated precompute: invalid (→ inline inference in decide()) when the
  /// config disables hoisting. Called from shard workers — the controller
  /// contract requires precompute() to be thread-safe and state-free.
  [[nodiscard]] cellular::PredictedCv precompute(
      const cellular::UserSnapshot& snapshot) const {
    if (!cfg_.precompute_cv) return {};
    return controller_->precompute(snapshot);
  }

  // ------------------------------------------------------------ local phase

  /// Each shard drains its queue up to the window end. Mobility steps run
  /// here (call-local: per-call RNG and state); everything that needs the
  /// shared ledgers/controller becomes a ring-mailbox entry for the commit
  /// phase (overflow spills to a counted vector — backpressure is visible,
  /// not fatal). Stale events (recycled slots, superseded epochs, finished
  /// calls) die here.
  void runLocalPhase(double window_end) {
    pool_.run([&](int shard) {
      Queue& q = queues_[static_cast<std::size_t>(shard)];
      auto& ring = rings_[static_cast<std::size_t>(shard)];
      auto& spill = spills_[static_cast<std::size_t>(shard)];
      std::uint64_t& events = local_events_[static_cast<std::size_t>(shard)];
      const auto emit = [&](const CommitEntry& e) {
        if (!ring.tryPush(e)) spill.push_back(e);
      };
      while (const auto entry = q.popBefore(window_end)) {
        const ShardEvent& ev = entry->payload;
        CallState* cp = liveCall(ev);
        if (!cp) continue;  // slot recycled: a previous lifetime's event
        CallState& c = *cp;
        switch (ev.kind) {
          case ShardEventKind::Decision:
            if (c.phase != CallPhase::Pending) break;
            emit(CommitEntry{entry->time_s, ev});
            break;
          case ShardEventKind::End:
            if (c.phase != CallPhase::Active || ev.epoch != c.epoch) break;
            emit(CommitEntry{entry->time_s, ev});
            break;
          case ShardEventKind::Move: {
            if (c.phase != CallPhase::Active || ev.epoch != c.epoch) break;
            c.model.step(c.state, cfg_.mobility_update_s, c.rng);
            const auto now_cell = network_.cellAt(c.state.position_km);
            if (now_cell && *now_cell == c.request.target_cell) {
              // Still home: the step stays entirely shard-local. Only these
              // count here — crossings count when their commit executes.
              ++events;
              q.push(entry->time_s + cfg_.mobility_update_s, ev);
            } else {
              // Crossed a border or left coverage: cross-cell, so the
              // barrier decides (handoff admission / departure). The step
              // changed the snapshot the handoff decision will see, so the
              // prepared CV is stale — re-run the prediction here, in
              // parallel, against the same snapshot commitCrossing() will
              // reconstruct (a pure function of the unchanged motion state
              // and cell centre, so the bits match).
              if (now_cell) {
                c.predicted = precompute(mobility::snapshotFromTruth(
                    c.state, network_.cell(*now_cell).center));
              }
              emit(CommitEntry{entry->time_s, ev});
            }
            break;
          }
        }
      }
    });
  }

  // ----------------------------------------------------------- commit phase

  /// Serial routing step: every mailbox entry goes to the lane of the
  /// call's current cell. All of a call's events of one window route to
  /// one lane (pending calls do not move, and active calls change cells
  /// only when that same lane — or the barrier — commits the crossing),
  /// so lanes touch disjoint call and ledger state by construction. Ring
  /// first, then the spill vector — together the shard's push order.
  void routeCommits() {
    const auto route = [&](const CommitEntry& e) {
      const CellId cell = call_pool_.at(e.event.slot).request.target_cell;
      lanes_[static_cast<std::size_t>(laneOf(cell))].queue.push(e);
    };
    for (std::size_t s = 0; s < rings_.size(); ++s) {
      auto& ring = rings_[s];
      while (auto e = ring.tryPop()) route(*e);
      auto& spill = spills_[s];
      ring_spills_total_ += spill.size();
      for (const CommitEntry& e : spill) route(e);
      spill.clear();
    }
  }

  /// Replays every lane to quiescence. One lane runs inline (it IS the
  /// serialized commit phase of the pre-grouped engine); several fan out
  /// over the shard pool, each worker walking the lanes it owns.
  void runLanes(double window_end) {
    const int lane_count = partition_.groups();
    if (lane_count == 1) {
      runLane(0, window_end);
      return;
    }
    pool_.run([&](int shard) {
      for (int g = shard; g < lane_count; g += shard_count_) {
        runLane(g, window_end);
      }
    });
  }

  /// Drains one lane's queue — plus any follow-up events commits push back
  /// inside the window — in canonical (time, kind, call) order, mutating
  /// only this group's ledgers and the lane's private slice.
  void runLane(int g, double window_end) {
    GroupLane& lane = lanes_[static_cast<std::size_t>(g)];
    const auto lane_t0 = std::chrono::steady_clock::now();
    while (!lane.queue.empty()) {
      const CommitEntry e = lane.queue.top();
      lane.queue.pop();
      const double now = e.time_s;
      CallState* cp = liveCall(e.event);
      if (!cp) continue;
      CallState& c = *cp;
      // Only events that execute count toward engine_events; stale entries
      // superseded by an in-window handoff or drop are bookkeeping noise.
      switch (e.event.kind) {
        case ShardEventKind::Decision:
          if (c.phase == CallPhase::Pending) {
            ++lane.events;
            noteCellLoad(c.request.target_cell);
            commitDecision(lane, c, now, window_end);
          }
          break;
        case ShardEventKind::End:
          if (c.phase == CallPhase::Active && e.event.epoch == c.epoch) {
            ++lane.events;
            noteCellLoad(c.request.target_cell);
            commitEnd(lane, c, now);
          }
          break;
        case ShardEventKind::Move:
          if (c.phase == CallPhase::Active && e.event.epoch == c.epoch) {
            ++lane.events;
            noteCellLoad(c.request.target_cell);
            commitCrossing(g, lane, c, now, window_end);
          }
          break;
      }
    }
    lane.wall_s += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - lane_t0)
                       .count();
  }

  /// Schedules an admitted call's departure: into the lane's own queue when
  /// it still falls inside this window (the call's cell stays in this
  /// group), else deferred for the barrier to push into its owner shard's
  /// queue.
  void scheduleEnd(GroupLane& lane, const CallState& c, CallId id,
                   double window_end) {
    const ShardEvent ev{ShardEventKind::End, id, c.epoch, c.slot};
    if (c.end_time_s < window_end) {
      lane.queue.push(CommitEntry{c.end_time_s, ev});
    } else {
      lane.deferred.push_back(
          DeferredEvent{c.end_time_s, c.request.target_cell, ev});
    }
  }

  /// First mobility step after \p now: the next multiple of the update
  /// period strictly ahead of it (always >= window_end, i.e. next window).
  void scheduleFirstMove(GroupLane& lane, const CallState& c, CallId id,
                         double now) {
    if (!cfg_.enable_handoffs) return;
    const double period = cfg_.mobility_update_s;
    const double next = (std::floor(now / period) + 1.0) * period;
    lane.deferred.push_back(DeferredEvent{
        next, c.request.target_cell,
        ShardEvent{ShardEventKind::Move, id, c.epoch, c.slot}});
  }

  /// Marks a lane-context call finished: the slot joins the lane's freed
  /// list and recycles at the barrier.
  void finishInLane(GroupLane& lane, CallState& c) {
    c.phase = CallPhase::Done;
    lane.freed.push_back(c.slot);
  }

  void commitDecision(GroupLane& lane, CallState& c, double now,
                      double window_end) {
    if (c.phase != CallPhase::Pending) return;
    const CallRequest& req = c.request;
    cellular::BaseStation& station = network_.station(req.target_cell);
    // The prepare phase already ran the snapshot-only stage; decide() now
    // executes only the ledger-dependent stage (FACS: FLC2).
    const AdmissionContext ctx{station, now, cfg_.explain, c.predicted};

    const bool count = counted(now);
    if (count) {
      ++lane.partial.new_requests;
      ++lane.partial.class_requests[static_cast<std::size_t>(req.service)];
    }

    // A cell under an outage mutation admits nothing; the policy is not
    // even consulted (there is no station to decide for).
    bool admit = false;
    if (!isDown(req.target_cell)) {
      const cellular::AdmissionDecision decision =
          controller_->decide(req, ctx);
      noteRationale(lane.partial, decision, count);
      // Defence in depth: an accept that does not fit would corrupt the
      // ledger, so the simulator re-checks the invariant the policy
      // promised.
      admit = decision.accept && station.canFit(req.demand_bu);
    }

    if (!admit) {
      if (count) ++lane.partial.new_blocked;
      controller_->onRejected(req, ctx);
      finishInLane(lane, c);
      return;
    }

    noteOccupancy(lane, now);
    station.allocate(req.call, req.demand_bu,
                     cellular::profileFor(req.service).real_time);
    lane.occupied_bu += req.demand_bu;
    if (count) {
      ++lane.partial.new_accepted;
      ++lane.partial.class_accepted[static_cast<std::size_t>(req.service)];
    }
    controller_->onAdmitted(req, ctx);

    c.phase = CallPhase::Active;
    c.end_time_s = now + sampleExponential(
                             c.rng,
                             cellular::profileFor(req.service).mean_holding_s);
    scheduleEnd(lane, c, req.call, window_end);
    scheduleFirstMove(lane, c, req.call, now);
  }

  void commitEnd(GroupLane& lane, CallState& c, double now) {
    cellular::BaseStation& station = network_.station(c.request.target_cell);
    noteOccupancy(lane, now);
    station.release(c.request.call);
    lane.occupied_bu -= c.request.demand_bu;
    if (counted(now)) ++lane.partial.completed;
    controller_->onReleased(c.request, AdmissionContext{station, now});
    finishInLane(lane, c);
  }

  /// A mobility step detected the call outside its cell: hand it over
  /// in-lane when the new cell shares this group, account a coverage
  /// departure, or — across a group border — release the source half and
  /// post a Reservation for the barrier to validate (the inter-BS
  /// message).
  void commitCrossing(int g, GroupLane& lane, CallState& c, double now,
                      double window_end) {
    const auto new_cell = network_.cellAt(c.state.position_km);
    if (!new_cell) {
      // Left coverage entirely: account as a completed departure.
      commitEnd(lane, c, now);
      return;
    }

    if (laneOf(*new_cell) != g) {
      // Cross-group handoff. The source half — the call leaving this
      // group's cell — commits here, at the crossing instant; the claim on
      // the target cell travels to its group's mailbox. Bumping the epoch
      // supersedes every queued event copy while the claim is in flight,
      // so nothing can touch the call before the barrier resolves it.
      cellular::BaseStation& old_station =
          network_.station(c.request.target_cell);
      noteOccupancy(lane, now);
      old_station.release(c.request.call);
      lane.occupied_bu -= c.request.demand_bu;
      ++c.epoch;
      lane.outgoing.push_back(Reservation{now, c.request.call,
                                          c.request.target_cell, *new_cell,
                                          c.request.demand_bu, counted(now),
                                          c.slot});
      return;
    }

    cellular::BaseStation& old_station =
        network_.station(c.request.target_cell);
    cellular::BaseStation& new_station = network_.station(*new_cell);

    CallRequest req = c.request;
    req.is_handoff = true;
    req.target_cell = *new_cell;
    req.snapshot =
        mobility::snapshotFromTruth(c.state, network_.cell(*new_cell).center);

    const bool count = counted(now);
    if (count) ++lane.partial.handoff_requests;
    // c.predicted was refreshed by the local phase when this crossing was
    // detected, from the identical snapshot req now carries.
    const AdmissionContext ctx{new_station, now, cfg_.explain, c.predicted};
    bool admit = false;
    if (!isDown(*new_cell)) {
      const cellular::AdmissionDecision decision =
          controller_->decide(req, ctx);
      noteRationale(lane.partial, decision, count);
      admit = decision.accept && new_station.canFit(req.demand_bu);
    }

    noteOccupancy(lane, now);
    old_station.release(req.call);
    lane.occupied_bu -= req.demand_bu;
    if (admit) {
      new_station.allocate(req.call, req.demand_bu,
                           cellular::profileFor(req.service).real_time);
      lane.occupied_bu += req.demand_bu;
      if (count) ++lane.partial.handoff_accepted;
      controller_->onAdmitted(req, ctx);  // refreshes SCC kinematics too
      c.request = req;
      // The call changed owner: supersede every event copy still queued
      // under the old epoch, then reschedule its departure and next step
      // with the new one.
      ++c.epoch;
      scheduleEnd(lane, c, req.call, window_end);
      lane.deferred.push_back(DeferredEvent{
          now + cfg_.mobility_update_s, *new_cell,
          ShardEvent{ShardEventKind::Move, req.call, c.epoch, c.slot}});
    } else {
      if (count) ++lane.partial.handoff_dropped;
      controller_->onRejected(req, ctx);
      controller_->onReleased(c.request, AdmissionContext{old_station, now});
      finishInLane(lane, c);  // pending End/Move copies die at pop
    }
  }

  // --------------------------------------------------------------- barrier

  /// The tick-window barrier, after every lane has quiesced: cross-group
  /// reservations are delivered to their target groups' mailboxes and
  /// drained PER TARGET GROUP, concurrently — each drain validates its
  /// claims in canonical (time, call) order against ledgers and call state
  /// only its own group owns. The one cross-group touch (the drop path's
  /// source-cell controller release) is deferred into per-lane runs that a
  /// tree-structured combining step merges in O(log groups) rounds and the
  /// barrier root replays serially; everything else a drain cannot do
  /// concurrently (shard-queue pushes, pool recycling) rides the existing
  /// deferred/freed machinery. Then the lanes' deferred next-window events
  /// are flushed into the shard queues (serial: queues are shared).
  void drainBarrier(double window_end) {
    bool any = false;
    for (GroupLane& lane : lanes_) {
      for (const Reservation& r : lane.outgoing) {
        mailboxes_[static_cast<std::size_t>(laneOf(r.to_cell))].post(r);
        any = true;
      }
      lane.outgoing.clear();
    }
    if (any) drainMailboxes(window_end);
    // GroupLocal policies drain their own cross-group residue now —
    // unconditionally: an in-lane commit whose write footprint crosses a
    // group boundary defers deltas even when no call crossed (no
    // reservation posted).
    policyBarrier(window_end);
    for (GroupLane& lane : lanes_) {
      for (const DeferredEvent& d : lane.deferred) {
        queues_[static_cast<std::size_t>(shardOf(d.cell))].push(d.time_s,
                                                                d.event);
      }
      lane.deferred.clear();
    }
  }

  /// Lets a GroupLocal policy apply its deferred cross-group writes (and
  /// re-home migrated records) in barrier context, folding what it drained
  /// into the run's metrics. A no-op at one lane: the single lane IS the
  /// serialized commit and policies never defer there.
  void policyBarrier(double now_s) {
    if (partition_.groups() <= 1) return;
    const cellular::BarrierDrainStats stats =
        controller_->onCommitBarrier(now_s);
    metrics_.demand_deltas += stats.deltas_applied;
    metrics_.shadow_migrations += stats.shadows_migrated;
  }

  /// Fans the reservation drain out over the shard pool, one worker per
  /// target group (ledger-disjoint by construction), then combines and
  /// replays the deferred drop-path releases.
  void drainMailboxes(double window_end) {
    const int lane_count = partition_.groups();
    const auto drainOne = [&](int g) {
      auto& mailbox = mailboxes_[static_cast<std::size_t>(g)];
      if (mailbox.empty()) return;
      GroupLane& lane = lanes_[static_cast<std::size_t>(g)];
      const auto t0 = std::chrono::steady_clock::now();
      for (const Reservation& r : mailbox.drain()) {
        commitReservation(lane, r, window_end);
      }
      lane.wall_s += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    };
    if (lane_count == 1) {
      drainOne(0);
    } else {
      pool_.run([&](int shard) {
        for (int g = shard; g < lane_count; g += shard_count_) {
          drainOne(g);
        }
      });
    }
    combineAndRunReleases();
  }

  /// Tree-structured combining for the deferred drop-path releases (the
  /// Yu et al. collective-barrier shape): log2(groups) pairwise merge
  /// rounds fold every lane's (already canonically ordered) run into lane
  /// 0, then the root replays the combined run serially in global
  /// (time, call) order — the only stage allowed to touch foreign groups'
  /// controller state.
  void combineAndRunReleases() {
    const int lane_count = partition_.groups();
    bool any = false;
    for (const GroupLane& lane : lanes_) {
      if (!lane.releases.empty()) {
        any = true;
        break;
      }
    }
    if (!any) return;
    for (int step = 1; step < lane_count; step *= 2) {
      const int stride = 2 * step;
      // More than one pair this round: merge the pairs concurrently (each
      // touches only its own two lanes).
      if (lane_count > stride) {
        pool_.run([&](int shard) {
          for (int g = shard * stride; g + step < lane_count;
               g += shard_count_ * stride) {
            mergeCombine(lanes_[static_cast<std::size_t>(g)].releases,
                         lanes_[static_cast<std::size_t>(g + step)].releases,
                         DeferredReleaseEarlier{});
          }
        });
      } else {
        mergeCombine(lanes_[0].releases,
                     lanes_[static_cast<std::size_t>(step)].releases,
                     DeferredReleaseEarlier{});
      }
    }
    for (const DeferredRelease& d : lanes_[0].releases) {
      controller_->onReleased(
          d.request,
          AdmissionContext{network_.station(d.from_cell), d.time_s});
    }
    lanes_[0].releases.clear();
  }

  /// Recycles the slots of every call the lanes finished this window.
  /// Single-threaded and in lane order, so the freelist (and therefore
  /// slot reuse) is deterministic at any shard count.
  void releaseFreed() {
    for (GroupLane& lane : lanes_) {
      for (const std::uint32_t slot : lane.freed) {
        call_pool_.release(slot);
      }
      lane.freed.clear();
    }
  }

  /// Resolves one inter-group bandwidth claim at the barrier. The grant is
  /// decided by the policy plus the hard ledger, exactly like an in-lane
  /// handoff — but against the target group's end-of-window state, which
  /// is the documented visibility difference of commit_groups > 1: the
  /// target lane's own events of this window committed first, and the
  /// granted bandwidth occupies the new cell from the barrier instant.
  ///
  /// Runs concurrently, one drain per target group: everything it touches
  /// is owned by \p lane's group (the target station and ledger slice, the
  /// call — a call crosses at most one border per window, so exactly one
  /// drain sees it, and its epoch bump keeps every other event copy
  /// stale) or a lane-private buffer (counters in lane.partial, queue
  /// pushes in lane.deferred, slot recycling in lane.freed, the drop
  /// path's foreign-station release in lane.releases).
  void commitReservation(GroupLane& lane, const Reservation& r,
                         double window_end) {
    CallState& c = call_pool_.at(r.slot);
    cellular::BaseStation& new_station = network_.station(r.to_cell);

    // The reservation is the authoritative inter-BS message: the handoff
    // request presented to the policy is rebuilt from its fields (the
    // demand claimed, the border crossed) plus the call's motion truth.
    CallRequest req = c.request;
    req.is_handoff = true;
    req.target_cell = r.to_cell;
    req.demand_bu = r.demand_bu;
    req.snapshot =
        mobility::snapshotFromTruth(c.state, network_.cell(r.to_cell).center);

    const bool count = r.counted;
    ++lane.barrier_events;
    noteCellLoad(r.to_cell);
    if (count) {
      ++lane.partial.handoff_requests;
      ++lane.partial.reservations_posted;
    }
    // c.predicted was refreshed when the crossing was detected, from this
    // same snapshot.
    const AdmissionContext ctx{new_station, r.time_s, cfg_.explain,
                               c.predicted};
    bool admit = false;
    if (!isDown(r.to_cell)) {
      const cellular::AdmissionDecision decision =
          controller_->decide(req, ctx);
      noteRationale(lane.partial, decision, count);
      admit = decision.accept && new_station.canFit(req.demand_bu);
    }

    if (!admit) {
      if (count) {
        ++lane.partial.handoff_dropped;
        ++lane.partial.reservations_dropped;
      }
      controller_->onRejected(req, ctx);
      // The source-cell release is the drop path's one foreign-group
      // touch: deferred for the combining barrier to replay serially.
      lane.releases.push_back(
          DeferredRelease{r.time_s, r.call, c.request, r.from_cell});
      c.phase = CallPhase::Done;
      lane.freed.push_back(r.slot);
      return;
    }

    noteOccupancy(lane, window_end);
    new_station.allocate(req.call, req.demand_bu,
                         cellular::profileFor(req.service).real_time);
    lane.occupied_bu += req.demand_bu;
    if (count) {
      ++lane.partial.handoff_accepted;
      ++lane.partial.reservations_admitted;
    }
    controller_->onAdmitted(req, ctx);
    c.request = req;  // epoch was already bumped when the claim was posted

    if (c.end_time_s < window_end) {
      // The departure instant passed while the claim was in flight: settle
      // it here (the call held no bandwidth in the new cell for measurable
      // time — the claim existed only to decide dropped vs handed over).
      noteOccupancy(lane, window_end);
      new_station.release(req.call);
      lane.occupied_bu -= req.demand_bu;
      if (counted(c.end_time_s)) ++lane.partial.completed;
      controller_->onReleased(c.request,
                              AdmissionContext{new_station, window_end});
      c.phase = CallPhase::Done;
      lane.freed.push_back(r.slot);
      return;
    }
    lane.deferred.push_back(DeferredEvent{
        c.end_time_s, r.to_cell,
        ShardEvent{ShardEventKind::End, r.call, c.epoch, r.slot}});
    lane.deferred.push_back(DeferredEvent{
        r.time_s + cfg_.mobility_update_s, r.to_cell,
        ShardEvent{ShardEventKind::Move, r.call, c.epoch, r.slot}});
  }

  // ------------------------------------------------------------- mutations

  /// Applies one scheduled workload change. Runs between windows (the
  /// barrier context: every lane quiesced, no claim in flight), so it may
  /// touch any group's ledger and the pool directly.
  void applyMutation(const serve::ScenarioMutation& m) {
    switch (m.op) {
      case serve::MutationOp::ArrivalScale:
        if (m.cell) {
          ensureSpawnWeights();
          spawn_weight_[static_cast<std::size_t>(*m.cell)] = m.scale;
          rebuildSpawnCdf();
        } else {
          arrivals_.rescale(m.scale, m.at_s);
        }
        break;
      case serve::MutationOp::Outage:
        down_[static_cast<std::size_t>(*m.cell)] = 1;
        forceDropCell(*m.cell, m.at_s);
        // The forced releases ran in barrier context but may have deferred
        // cross-group policy writes; drain them before the next window's
        // lanes (or a following epoch's migration) can observe the stores.
        policyBarrier(m.at_s);
        break;
      case serve::MutationOp::Restore:
        down_[static_cast<std::size_t>(*m.cell)] = 0;
        break;
      case serve::MutationOp::Mix:
        if (m.cell) {
          if (cell_mix_.empty()) cell_mix_.resize(network_.cellCount());
          cell_mix_[static_cast<std::size_t>(*m.cell)] = *m.mix;
        } else {
          cfg_.scenario.mix = *m.mix;
        }
        break;
    }
  }

  /// Cell outage: every call the cell carries is force-dropped at the
  /// outage instant, in call-id order (deterministic at any shard count —
  /// pool slot order is a freelist artifact, call ids are not). Pending
  /// calls targeting the cell stay pending; their decisions will be denied
  /// while the cell is down.
  void forceDropCell(CellId cell, double at_s) {
    victims_.clear();
    call_pool_.forEachLive(
        [&](std::uint32_t slot, CallId /*id*/, CallState& c) {
          if (c.phase == CallPhase::Active && c.request.target_cell == cell) {
            victims_.push_back(slot);
          }
        });
    if (victims_.empty()) return;
    std::sort(victims_.begin(), victims_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return call_pool_.occupantOf(a) < call_pool_.occupantOf(b);
              });
    GroupLane& lane = lanes_[static_cast<std::size_t>(laneOf(cell))];
    cellular::BaseStation& station = network_.station(cell);
    for (const std::uint32_t slot : victims_) {
      CallState& c = call_pool_.at(slot);
      noteOccupancy(lane, at_s);
      station.release(c.request.call);
      lane.occupied_bu -= c.request.demand_bu;
      if (counted(at_s)) ++metrics_.outage_forced_drops;
      controller_->onReleased(c.request, AdmissionContext{station, at_s});
      c.phase = CallPhase::Done;
      call_pool_.release(slot);
    }
  }

  SimulationConfig cfg_;
  ServiceHooks hooks_;
  HexNetwork network_;
  std::unique_ptr<cellular::AdmissionController> controller_;
  cellular::CellGroupPartition partition_;
  int shard_count_;
  ShardPool pool_;

  std::vector<Queue> queues_;  ///< One per shard.
  /// Per-shard outbox: a fixed ring plus a counted spill vector for
  /// overflow. Together they preserve the shard's push order.
  std::vector<serve::RingBuffer<CommitEntry>> rings_;
  std::vector<std::vector<CommitEntry>> spills_;
  std::vector<std::uint64_t> local_events_;   ///< One per shard.
  std::vector<GroupLane> lanes_;              ///< One per group.
  std::vector<ReservationMailbox> mailboxes_; ///< One per group.

  /// Call storage proportional to CONCURRENT calls: slots recycle the
  /// moment a call finishes (the batch engine kept every call for the
  /// whole run — unbounded growth serve mode cannot live with).
  serve::CallPool<CallState> call_pool_;
  ArrivalSource arrivals_;
  CallId next_call_id_ = 0;

  /// Window-materialization scratch (reused every window — no steady-state
  /// allocation once grown to the largest batch).
  std::vector<std::uint32_t> batch_slots_;
  std::vector<double> batch_times_;
  std::vector<std::uint32_t> victims_;
  /// Per-shard scratch GPS estimators (empty when tracking is off).
  std::vector<mobility::GpsEstimator> scratch_est_;

  /// Cells currently under an outage mutation (empty when the run has no
  /// outage/restore mutations at all — the common case pays nothing).
  std::vector<std::uint8_t> down_;

  /// Spawn-cell weighting (empty = legacy uniform draw) and per-cell mix
  /// overrides (empty = scenario mix everywhere), digested from
  /// cell_overrides and updated by mutations.
  std::vector<double> spawn_weight_;
  std::vector<double> spawn_cdf_;
  std::vector<std::optional<cellular::TrafficMix>> cell_mix_;

  /// Mutation application order (indices into cfg_.mutations) and cursor.
  std::vector<std::size_t> mutation_order_;
  std::size_t next_mutation_ = 0;

  /// Epoch re-partitioning state (weighted partition only; empty/+inf when
  /// off): per-cell committed-event counts since the last epoch — the
  /// deterministic load proxy — the next epoch boundary, and a reusable
  /// weight buffer.
  std::vector<std::uint64_t> cell_events_;
  double next_epoch_s_ = std::numeric_limits<double>::infinity();
  std::vector<double> epoch_weights_;
  std::vector<double> group_weight_;  ///< weightImbalance() scratch.

  std::uint64_t ring_spills_total_ = 0;

  // Streaming emission state.
  double next_emit_s_ = 0.0;
  double last_emit_t_ = 0.0;
  std::uint64_t emit_index_ = 0;

  Metrics metrics_;
};

}  // namespace

void validateConfig(const SimulationConfig& cfg) {
  // Geometry first (mirrors HexNetwork's own checks, so a bad scenario —
  // in code or from a file — fails at validate time with config
  // vocabulary, not mid-construction).
  if (cfg.rings < 0 || cfg.rings > kMaxRings) {
    throw std::invalid_argument("rings must be in [0, " +
                                std::to_string(kMaxRings) + "]");
  }
  if (!(cfg.cell_radius_km > 0.0)) {
    throw std::invalid_argument("cell radius must be positive");
  }
  if (cfg.capacity_bu <= 0) {
    throw std::invalid_argument("capacity must be positive");
  }
  if (cfg.total_requests < 0) {
    throw std::invalid_argument("total_requests must be >= 0");
  }
  if (!(cfg.arrival_window_s > 0.0)) {
    throw std::invalid_argument("arrival window must be positive");
  }
  if (cfg.warmup_s < 0.0) {
    throw std::invalid_argument("warmup must be >= 0");
  }
  if (cfg.enable_handoffs && !(cfg.mobility_update_s > 0.0)) {
    throw std::invalid_argument("mobility update period must be positive");
  }
  if (cfg.shards < 1 || cfg.shards > kMaxShards) {
    throw std::invalid_argument("shards must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  if (cfg.commit_groups < 1 || cfg.commit_groups > kMaxShards) {
    throw std::invalid_argument("commit groups must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  if (!(cfg.repartition_every_s >= 0.0) ||
      !std::isfinite(cfg.repartition_every_s)) {
    throw std::invalid_argument(
        "repartition period must be finite and >= 0");
  }
  if (cfg.repartition_every_s > 0.0 &&
      cfg.partition != PartitionStrategy::Weighted) {
    throw std::invalid_argument(
        "repartition_every_s requires the weighted partition (contiguous "
        "boundaries never move)");
  }
  {
    // Mirror HexNetwork's override checks so a bad scenario fails at
    // validate time with config vocabulary, not mid-construction.
    const auto cells =
        static_cast<std::size_t>(cellular::hexDiskCellCount(cfg.rings));
    std::vector<bool> seen(cells, false);
    for (const CellOverride& o : cfg.cell_overrides) {
      if (static_cast<std::size_t>(o.cell) >= cells) {
        throw std::invalid_argument(
            "cell override for cell " + std::to_string(o.cell) +
            " outside the " + std::to_string(cells) + "-cell disk");
      }
      if (seen[o.cell]) {
        throw std::invalid_argument("duplicate cell override for cell " +
                                    std::to_string(o.cell));
      }
      if (o.emptyOverride()) {
        throw std::invalid_argument("cell override for cell " +
                                    std::to_string(o.cell) +
                                    " sets no field");
      }
      if (o.capacity_bu && *o.capacity_bu <= 0) {
        throw std::invalid_argument("cell capacity override for cell " +
                                    std::to_string(o.cell) +
                                    " must be positive");
      }
      if (o.arrival_scale &&
          (!std::isfinite(*o.arrival_scale) || !(*o.arrival_scale > 0.0))) {
        throw std::invalid_argument("arrival scale for cell " +
                                    std::to_string(o.cell) +
                                    " must be positive and finite");
      }
      seen[o.cell] = true;
    }
    for (std::size_t i = 0; i < cfg.mutations.size(); ++i) {
      serve::validateMutation(cfg.mutations[i], i, cells,
                              cfg.arrivals == ArrivalProcess::Poisson);
    }
  }
  const ScenarioParams& s = cfg.scenario;
  if (s.tracking_window_s < 0.0) {
    throw std::invalid_argument("tracking window must be >= 0");
  }
  if (s.tracking_window_s > 0.0 &&
      (!(s.gps_fix_period_s > 0.0) ||
       s.gps_fix_period_s > s.tracking_window_s)) {
    throw std::invalid_argument(
        "GPS fix period must be in (0, tracking_window]");
  }
}

Metrics runSimulation(const SimulationConfig& config,
                      const ControllerFactory& make_controller) {
  return runSimulation(config, make_controller, ServiceHooks{});
}

Metrics runSimulation(const SimulationConfig& config,
                      const ControllerFactory& make_controller,
                      const ServiceHooks& hooks) {
  validateConfig(config);
  if (!(hooks.metrics_every_s >= 0.0) ||
      !std::isfinite(hooks.metrics_every_s)) {
    throw std::invalid_argument("metrics period must be finite and >= 0");
  }
  if (!(hooks.serve_duration_s >= 0.0) ||
      !std::isfinite(hooks.serve_duration_s)) {
    throw std::invalid_argument("serve duration must be finite and >= 0");
  }
  if (hooks.serve_duration_s > 0.0) {
    if (config.arrivals != ArrivalProcess::Poisson) {
      throw std::invalid_argument(
          "serve duration requires Poisson arrivals (a uniform burst has "
          "no steady state to extend)");
    }
    if (config.total_requests <= 0) {
      throw std::invalid_argument(
          "serve duration requires total_requests > 0 (the arrival-rate "
          "numerator)");
    }
  }
  Engine engine{config, make_controller, hooks};
  return engine.execute();
}

}  // namespace facs::sim
