#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "mobility/gps.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"

namespace facs::sim {

namespace {

using cellular::AdmissionContext;
using cellular::CallId;
using cellular::CallRequest;
using cellular::CellId;
using cellular::HexNetwork;
using cellular::ServiceClass;
using mobility::MotionState;

/// Where randomness streams live in the (seed, stream) split space. Every
/// call owns stream kCallStreamBase + id, so its draws (spawn, GPS noise,
/// holding time, mobility) never depend on how calls interleave — the
/// foundation of shard-count-independent results.
constexpr std::uint64_t kArrivalStream = 0;
constexpr std::uint64_t kCallStreamBase = 16;

/// Lifecycle of one simulated call.
enum class CallPhase : std::uint8_t {
  Pending,  ///< Tracked, waiting for its admission instant.
  Active,   ///< Admitted and holding bandwidth.
  Done,     ///< Completed, blocked, dropped, or left coverage.
};

/// Everything one call owns. Shard workers touch only calls their cells
/// carry; the commit phase may touch any call (it runs alone).
struct CallState {
  CallRequest request;  ///< target_cell kept current across handoffs.
  MotionState state;    ///< Ground truth.
  mobility::SpeedDependentTurn model;
  Rng rng;              ///< Per-call stream; all of this call's draws.
  double end_time_s = -1.0;  ///< Valid while Active.
  CallPhase phase = CallPhase::Pending;
  /// Ownership generation: bumped when the call changes shard (handoff) so
  /// event copies left in the old owner's queue are recognisably stale.
  std::uint32_t epoch = 0;
  /// Snapshot-only policy work precomputed off the serialized commit path:
  /// set by the parallel prepare phase for the initial decision, re-run by
  /// the local phase whenever a mobility step produces the new snapshot a
  /// handoff decision will use (so it is always current when its decision
  /// commits). Invalid when precompute is disabled or unsupported — the
  /// policy then infers inline, with bit-identical results.
  cellular::PredictedCv predicted{};

  explicit CallState(const mobility::SpeedDependentTurnParams& turn)
      : model{turn} {}
};

class Engine {
 public:
  Engine(const SimulationConfig& cfg, const ControllerFactory& make_controller)
      : cfg_{cfg},
        network_{cfg.rings, cfg.cell_radius_km, cfg.capacity_bu,
                 cfg.cell_capacity_bu},
        controller_{make_controller(network_)},
        shard_count_{std::max(1, std::min(cfg.shards, kMaxShards))},
        pool_{shard_count_},
        queues_(static_cast<std::size_t>(shard_count_)),
        outboxes_(static_cast<std::size_t>(shard_count_)),
        local_events_(static_cast<std::size_t>(shard_count_), 0) {
    if (!controller_) {
      throw std::invalid_argument("controller factory returned nullptr");
    }
  }

  Metrics execute() {
    // Phase wall clocks: commit_phase_s / total is the measured serial
    // fraction (what caps sharded speedup). Timing is observational only —
    // never an input to any simulation outcome.
    const auto stamp = [] { return std::chrono::steady_clock::now(); };
    const auto since = [](std::chrono::steady_clock::time_point t0,
                          std::chrono::steady_clock::time_point t1) {
      return std::chrono::duration<double>(t1 - t0).count();
    };

    auto t0 = stamp();
    prepareArrivals();
    auto t1 = stamp();
    metrics_.prepare_phase_s = since(t0, t1);

    // Tick windows: with handoffs the barrier period is the mobility update
    // (the minimum latency at which one cell's state can matter to
    // another); without cross-cell traffic one unbounded window suffices —
    // the commit phase alone replays the run in canonical order.
    const double window_s = cfg_.enable_handoffs
                                ? cfg_.mobility_update_s
                                : std::numeric_limits<double>::infinity();

    while (const auto next = nextEventTime()) {
      double window_end = std::numeric_limits<double>::infinity();
      if (std::isfinite(window_s)) {
        const double k = std::floor(*next / window_s);
        window_end = (k + 1.0) * window_s;
      }
      t0 = stamp();
      runLocalPhase(window_end);
      t1 = stamp();
      commitPhase(window_end);
      const auto t2 = stamp();
      metrics_.local_phase_s += since(t0, t1);
      metrics_.commit_phase_s += since(t1, t2);
    }

    metrics_.observed_span_s = std::max(0.0, last_change_s_ - cfg_.warmup_s);
    metrics_.total_capacity_bu = network_.totalCapacityBu();
    metrics_.engine_events = commit_events_;
    for (const std::uint64_t n : local_events_) metrics_.engine_events += n;
    return metrics_;
  }

 private:
  using Queue = EventQueue<ShardEvent>;

  [[nodiscard]] int shardOf(CellId cell) const noexcept {
    return static_cast<int>(static_cast<std::size_t>(cell) %
                            static_cast<std::size_t>(shard_count_));
  }

  [[nodiscard]] CallState& call(CallId id) { return calls_[id - 1]; }

  [[nodiscard]] std::optional<double> nextEventTime() const {
    std::optional<double> best;
    for (const Queue& q : queues_) {
      const auto t = q.peekTime();
      if (t && (!best || *t < *best)) best = t;
    }
    return best;
  }

  /// Integrates occupied-BU time up to \p now (call before any change).
  /// Commit-phase only: ledgers change nowhere else.
  void noteOccupancy(double now) {
    const double from = std::max(last_change_s_, cfg_.warmup_s);
    if (now > from) {
      metrics_.busy_bu_seconds +=
          static_cast<double>(network_.totalOccupiedBu()) * (now - from);
    }
    last_change_s_ = now;
  }

  [[nodiscard]] bool counted(double now) const noexcept {
    return now >= cfg_.warmup_s;
  }

  /// Counts rationales cut at ReasonText's inline capacity, so explain-mode
  /// runs can surface the loss (the CLI warns once per run) instead of
  /// silently dropping tails. Respects the warmup gate like every other
  /// counter — only measured decisions are reported. Deterministic:
  /// decisions do not depend on it.
  void noteRationale(const cellular::AdmissionDecision& decision,
                     bool count) noexcept {
    if (count && decision.rationale.truncated()) {
      ++metrics_.truncated_rationales;
    }
  }

  // ---------------------------------------------------------------- prepare

  /// Draws arrival instants, then builds every call — spawn cell, GPS
  /// tracking through the observation window, the admission-time snapshot —
  /// in parallel over the shard pool (each call is index-sharded and only
  /// touches its own state and RNG stream), and finally schedules the
  /// decision events serially in call order.
  void prepareArrivals() {
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(cfg_.total_requests));
    Rng arrival_rng = makeRng(cfg_.seed, kArrivalStream);
    if (cfg_.arrivals == ArrivalProcess::UniformBurst) {
      for (int i = 0; i < cfg_.total_requests; ++i) {
        times.push_back(sampleUniform(arrival_rng, 0.0, cfg_.arrival_window_s));
      }
      std::sort(times.begin(), times.end());
    } else {
      const double rate =
          static_cast<double>(cfg_.total_requests) / cfg_.arrival_window_s;
      double t = 0.0;
      for (int i = 0; i < cfg_.total_requests; ++i) {
        t += sampleExponential(arrival_rng, 1.0 / rate);
        times.push_back(t);
      }
    }

    calls_.reserve(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      calls_.emplace_back(cfg_.scenario.turn);
    }

    pool_.run([&](int shard) {
      for (std::size_t i = static_cast<std::size_t>(shard); i < calls_.size();
           i += static_cast<std::size_t>(shard_count_)) {
        prepareCall(static_cast<CallId>(i + 1), times[i]);
      }
    });

    const double window = cfg_.scenario.tracking_window_s;
    for (std::size_t i = 0; i < calls_.size(); ++i) {
      const CallId id = static_cast<CallId>(i + 1);
      const CellId target = call(id).request.target_cell;
      queues_[static_cast<std::size_t>(shardOf(target))].push(
          times[i] + window, ShardEvent{ShardEventKind::Decision, id, 0});
    }
  }

  /// Builds one call: spawn draw, tracking walk, snapshot. Uses only the
  /// call's own stream — safe to run for many calls concurrently.
  void prepareCall(CallId id, double arrival_s) {
    CallState& c = call(id);
    c.rng = makeRng(cfg_.seed, kCallStreamBase + static_cast<std::uint64_t>(id));

    std::uniform_int_distribution<std::size_t> cell_pick{
        0, network_.cellCount() - 1};
    const CellId spawn_cell = static_cast<CellId>(cell_pick(c.rng));
    const RequestPlan plan = drawRequest(
        cfg_.scenario, network_.cell(spawn_cell).center, spawn_cell, c.rng);
    c.state = plan.initial;

    const double window = cfg_.scenario.tracking_window_s;
    cellular::UserSnapshot snapshot;
    CellId target = plan.target_cell;
    if (window > 0.0) {
      // Collect fixes while the user moves; the estimator reconstructs
      // (S, A, D) exactly as a GPS-fed controller would.
      const mobility::GpsSampler sampler{
          cfg_.scenario.gps_error_m.value_or(0.0)};
      const double period = cfg_.scenario.gps_fix_period_s;
      const int fix_count = static_cast<int>(window / period) + 1;
      mobility::GpsEstimator estimator{
          static_cast<std::size_t>(std::max(2, fix_count))};
      estimator.addFix(sampler.sample(arrival_s, c.state.position_km, c.rng));
      for (int i = 1; i < fix_count; ++i) {
        c.model.step(c.state, period, c.rng);
        estimator.addFix(
            sampler.sample(arrival_s + i * period, c.state.position_km, c.rng));
      }
      // The user may have wandered into a neighbouring cell while tracked.
      target = network_.cellAt(c.state.position_km).value_or(target);
      snapshot = estimator.snapshot(network_.cell(target).center);
      snapshot.position = c.state.position_km;  // ledger-grade position
    } else {
      snapshot =
          mobility::snapshotFromTruth(c.state, network_.cell(target).center);
    }

    CallRequest req;
    req.call = id;
    req.user = id;
    req.service = plan.service;
    req.demand_bu = cellular::profileFor(plan.service).demand_bu;
    req.snapshot = snapshot;
    req.target_cell = target;
    req.is_handoff = false;
    c.request = req;

    // Snapshot-only policy work (FACS: the whole FLC1 inference) runs here,
    // in parallel, instead of inside the serialized commit phase. The
    // snapshot cannot change between now and the decision instant (pending
    // calls do not move), so the value stays coherent until consumed.
    c.predicted = precompute(req.snapshot);
  }

  /// Gated precompute: invalid (→ inline inference in decide()) when the
  /// config disables hoisting. Called from shard workers — the controller
  /// contract requires precompute() to be thread-safe and state-free.
  [[nodiscard]] cellular::PredictedCv precompute(
      const cellular::UserSnapshot& snapshot) const {
    if (!cfg_.precompute_cv) return {};
    return controller_->precompute(snapshot);
  }

  // ------------------------------------------------------------ local phase

  /// Each shard drains its queue up to the window end. Mobility steps run
  /// here (call-local: per-call RNG and state); everything that needs the
  /// shared ledgers/controller becomes a mailbox entry for the commit
  /// phase. Stale events (superseded epochs, finished calls) die here.
  void runLocalPhase(double window_end) {
    pool_.run([&](int shard) {
      Queue& q = queues_[static_cast<std::size_t>(shard)];
      auto& outbox = outboxes_[static_cast<std::size_t>(shard)];
      std::uint64_t& events = local_events_[static_cast<std::size_t>(shard)];
      while (const auto entry = q.popBefore(window_end)) {
        const ShardEvent& ev = entry->payload;
        CallState& c = call(ev.call);
        switch (ev.kind) {
          case ShardEventKind::Decision:
            if (c.phase != CallPhase::Pending) break;
            outbox.push_back(CommitEntry{entry->time_s, ev});
            break;
          case ShardEventKind::End:
            if (c.phase != CallPhase::Active || ev.epoch != c.epoch) break;
            outbox.push_back(CommitEntry{entry->time_s, ev});
            break;
          case ShardEventKind::Move: {
            if (c.phase != CallPhase::Active || ev.epoch != c.epoch) break;
            c.model.step(c.state, cfg_.mobility_update_s, c.rng);
            const auto now_cell = network_.cellAt(c.state.position_km);
            if (now_cell && *now_cell == c.request.target_cell) {
              // Still home: the step stays entirely shard-local. Only these
              // count here — crossings count when their commit executes.
              ++events;
              q.push(entry->time_s + cfg_.mobility_update_s, ev);
            } else {
              // Crossed a border or left coverage: cross-cell, so the
              // barrier decides (handoff admission / departure). The step
              // changed the snapshot the handoff decision will see, so the
              // prepared CV is stale — re-run the prediction here, in
              // parallel, against the same snapshot commitCrossing() will
              // reconstruct (a pure function of the unchanged motion state
              // and cell centre, so the bits match).
              if (now_cell) {
                c.predicted = precompute(mobility::snapshotFromTruth(
                    c.state, network_.cell(*now_cell).center));
              }
              outbox.push_back(CommitEntry{entry->time_s, ev});
            }
            break;
          }
        }
      }
    });
  }

  // ----------------------------------------------------------- commit phase

  /// Replays the merged mailboxes — plus any follow-up events they spawn
  /// inside the window — in canonical (time, kind, call) order, mutating
  /// ledgers, controller state and metrics exactly as a serial run would.
  void commitPhase(double window_end) {
    for (auto& outbox : outboxes_) {
      for (const CommitEntry& e : outbox) commit_queue_.push(e);
      outbox.clear();
    }

    while (!commit_queue_.empty()) {
      const CommitEntry e = commit_queue_.top();
      commit_queue_.pop();
      const double now = e.time_s;
      CallState& c = call(e.event.call);
      // Only events that execute count toward engine_events; stale entries
      // superseded by an in-window handoff or drop are bookkeeping noise.
      switch (e.event.kind) {
        case ShardEventKind::Decision:
          if (c.phase == CallPhase::Pending) {
            ++commit_events_;
            commitDecision(c, now, window_end);
          }
          break;
        case ShardEventKind::End:
          if (c.phase == CallPhase::Active && e.event.epoch == c.epoch) {
            ++commit_events_;
            commitEnd(c, now);
          }
          break;
        case ShardEventKind::Move:
          if (c.phase == CallPhase::Active && e.event.epoch == c.epoch) {
            ++commit_events_;
            commitCrossing(c, now, window_end);
          }
          break;
      }
    }
  }

  /// Schedules an admitted call's departure: into the commit queue when it
  /// still falls inside this window, else into its owner shard's queue.
  void scheduleEnd(const CallState& c, CallId id, double window_end) {
    const ShardEvent ev{ShardEventKind::End, id, c.epoch};
    if (c.end_time_s < window_end) {
      commit_queue_.push(CommitEntry{c.end_time_s, ev});
    } else {
      queues_[static_cast<std::size_t>(shardOf(c.request.target_cell))].push(
          c.end_time_s, ev);
    }
  }

  /// First mobility step after \p now: the next multiple of the update
  /// period strictly ahead of it (always >= window_end, i.e. next window).
  void scheduleFirstMove(const CallState& c, CallId id, double now) {
    if (!cfg_.enable_handoffs) return;
    const double period = cfg_.mobility_update_s;
    const double next = (std::floor(now / period) + 1.0) * period;
    queues_[static_cast<std::size_t>(shardOf(c.request.target_cell))].push(
        next, ShardEvent{ShardEventKind::Move, id, c.epoch});
  }

  void commitDecision(CallState& c, double now, double window_end) {
    if (c.phase != CallPhase::Pending) return;
    const CallRequest& req = c.request;
    cellular::BaseStation& station = network_.station(req.target_cell);
    // The prepare phase already ran the snapshot-only stage; decide() now
    // executes only the ledger-dependent stage (FACS: FLC2).
    const AdmissionContext ctx{station, now, cfg_.explain, c.predicted};

    const bool count = counted(now);
    if (count) {
      ++metrics_.new_requests;
      ++metrics_.class_requests[static_cast<std::size_t>(req.service)];
    }

    const cellular::AdmissionDecision decision = controller_->decide(req, ctx);
    noteRationale(decision, count);
    // Defence in depth: an accept that does not fit would corrupt the
    // ledger, so the simulator re-checks the invariant the policy promised.
    const bool admit = decision.accept && station.canFit(req.demand_bu);

    if (!admit) {
      if (count) ++metrics_.new_blocked;
      controller_->onRejected(req, ctx);
      c.phase = CallPhase::Done;
      return;
    }

    noteOccupancy(now);
    station.allocate(req.call, req.demand_bu,
                     cellular::profileFor(req.service).real_time);
    if (count) {
      ++metrics_.new_accepted;
      ++metrics_.class_accepted[static_cast<std::size_t>(req.service)];
    }
    controller_->onAdmitted(req, ctx);

    c.phase = CallPhase::Active;
    c.end_time_s = now + sampleExponential(
                             c.rng,
                             cellular::profileFor(req.service).mean_holding_s);
    scheduleEnd(c, req.call, window_end);
    scheduleFirstMove(c, req.call, now);
  }

  void commitEnd(CallState& c, double now) {
    cellular::BaseStation& station = network_.station(c.request.target_cell);
    noteOccupancy(now);
    station.release(c.request.call);
    if (counted(now)) ++metrics_.completed;
    controller_->onReleased(c.request, AdmissionContext{station, now});
    c.phase = CallPhase::Done;
  }

  /// A mobility step detected the call outside its cell: either hand it to
  /// the new cell (admission permitting) or account a coverage departure.
  void commitCrossing(CallState& c, double now, double window_end) {
    const auto new_cell = network_.cellAt(c.state.position_km);
    if (!new_cell) {
      // Left coverage entirely: account as a completed departure.
      commitEnd(c, now);
      return;
    }

    cellular::BaseStation& old_station =
        network_.station(c.request.target_cell);
    cellular::BaseStation& new_station = network_.station(*new_cell);

    CallRequest req = c.request;
    req.is_handoff = true;
    req.target_cell = *new_cell;
    req.snapshot =
        mobility::snapshotFromTruth(c.state, network_.cell(*new_cell).center);

    const bool count = counted(now);
    if (count) ++metrics_.handoff_requests;
    // c.predicted was refreshed by the local phase when this crossing was
    // detected, from the identical snapshot req now carries.
    const AdmissionContext ctx{new_station, now, cfg_.explain, c.predicted};
    const cellular::AdmissionDecision decision = controller_->decide(req, ctx);
    noteRationale(decision, count);
    const bool admit = decision.accept && new_station.canFit(req.demand_bu);

    noteOccupancy(now);
    old_station.release(req.call);
    if (admit) {
      new_station.allocate(req.call, req.demand_bu,
                           cellular::profileFor(req.service).real_time);
      if (count) ++metrics_.handoff_accepted;
      controller_->onAdmitted(req, ctx);  // refreshes SCC kinematics too
      c.request = req;
      // The call changed owner: supersede every event copy still queued
      // under the old epoch, then reschedule its departure and next step
      // with the new one.
      ++c.epoch;
      scheduleEnd(c, req.call, window_end);
      queues_[static_cast<std::size_t>(shardOf(*new_cell))].push(
          now + cfg_.mobility_update_s,
          ShardEvent{ShardEventKind::Move, req.call, c.epoch});
    } else {
      if (count) ++metrics_.handoff_dropped;
      controller_->onRejected(req, ctx);
      controller_->onReleased(c.request, AdmissionContext{old_station, now});
      c.phase = CallPhase::Done;  // pending End/Move copies die at pop
    }
  }

  SimulationConfig cfg_;
  HexNetwork network_;
  std::unique_ptr<cellular::AdmissionController> controller_;
  int shard_count_;
  ShardPool pool_;

  std::vector<Queue> queues_;                        ///< One per shard.
  std::vector<std::vector<CommitEntry>> outboxes_;   ///< One per shard.
  std::vector<std::uint64_t> local_events_;          ///< One per shard.
  std::priority_queue<CommitEntry, std::vector<CommitEntry>, CommitLater>
      commit_queue_;
  std::vector<CallState> calls_;  ///< Indexed by call id - 1.

  double last_change_s_ = 0.0;
  std::uint64_t commit_events_ = 0;
  Metrics metrics_;
};

}  // namespace

void validateConfig(const SimulationConfig& cfg) {
  // Geometry first (mirrors HexNetwork's own checks, so a bad scenario —
  // in code or from a file — fails at validate time with config
  // vocabulary, not mid-construction).
  if (cfg.rings < 0 || cfg.rings > kMaxRings) {
    throw std::invalid_argument("rings must be in [0, " +
                                std::to_string(kMaxRings) + "]");
  }
  if (!(cfg.cell_radius_km > 0.0)) {
    throw std::invalid_argument("cell radius must be positive");
  }
  if (cfg.capacity_bu <= 0) {
    throw std::invalid_argument("capacity must be positive");
  }
  if (cfg.total_requests < 0) {
    throw std::invalid_argument("total_requests must be >= 0");
  }
  if (!(cfg.arrival_window_s > 0.0)) {
    throw std::invalid_argument("arrival window must be positive");
  }
  if (cfg.warmup_s < 0.0) {
    throw std::invalid_argument("warmup must be >= 0");
  }
  if (cfg.enable_handoffs && !(cfg.mobility_update_s > 0.0)) {
    throw std::invalid_argument("mobility update period must be positive");
  }
  if (cfg.shards < 1 || cfg.shards > kMaxShards) {
    throw std::invalid_argument("shards must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  {
    // Mirror HexNetwork's override checks so a bad scenario fails at
    // validate time with config vocabulary, not mid-construction.
    const auto cells =
        static_cast<std::size_t>(cellular::hexDiskCellCount(cfg.rings));
    std::vector<bool> seen(cells, false);
    for (const auto& [cell, bu] : cfg.cell_capacity_bu) {
      if (static_cast<std::size_t>(cell) >= cells) {
        throw std::invalid_argument(
            "cell capacity override for cell " + std::to_string(cell) +
            " outside the " + std::to_string(cells) + "-cell disk");
      }
      if (seen[cell]) {
        throw std::invalid_argument("duplicate cell capacity override for cell " +
                                    std::to_string(cell));
      }
      if (bu <= 0) {
        throw std::invalid_argument("cell capacity override for cell " +
                                    std::to_string(cell) +
                                    " must be positive");
      }
      seen[cell] = true;
    }
  }
  const ScenarioParams& s = cfg.scenario;
  if (s.tracking_window_s < 0.0) {
    throw std::invalid_argument("tracking window must be >= 0");
  }
  if (s.tracking_window_s > 0.0 &&
      (!(s.gps_fix_period_s > 0.0) ||
       s.gps_fix_period_s > s.tracking_window_s)) {
    throw std::invalid_argument(
        "GPS fix period must be in (0, tracking_window]");
  }
}

Metrics runSimulation(const SimulationConfig& config,
                      const ControllerFactory& make_controller) {
  validateConfig(config);
  Engine engine{config, make_controller};
  return engine.execute();
}

}  // namespace facs::sim
