#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "mobility/gps.hpp"
#include "sim/event_queue.hpp"
#include "sim/reservation.hpp"
#include "sim/shard.hpp"

namespace facs::sim {

namespace {

using cellular::AdmissionContext;
using cellular::CallId;
using cellular::CallRequest;
using cellular::CellId;
using cellular::HexNetwork;
using cellular::ServiceClass;
using mobility::MotionState;

/// Where randomness streams live in the (seed, stream) split space. Every
/// call owns stream kCallStreamBase + id, so its draws (spawn, GPS noise,
/// holding time, mobility) never depend on how calls interleave — the
/// foundation of shard-count-independent results.
constexpr std::uint64_t kArrivalStream = 0;
constexpr std::uint64_t kCallStreamBase = 16;

/// Lifecycle of one simulated call.
enum class CallPhase : std::uint8_t {
  Pending,  ///< Tracked, waiting for its admission instant.
  Active,   ///< Admitted and holding bandwidth.
  Done,     ///< Completed, blocked, dropped, or left coverage.
};

/// Everything one call owns. Shard workers touch only calls their cells
/// carry; within the commit phase, exactly one group lane (the lane of the
/// call's current cell) may touch a call per window, and the barrier drain
/// runs alone.
struct CallState {
  CallRequest request;  ///< target_cell kept current across handoffs.
  MotionState state;    ///< Ground truth.
  mobility::SpeedDependentTurn model;
  Rng rng;              ///< Per-call stream; all of this call's draws.
  double end_time_s = -1.0;  ///< Valid while Active.
  CallPhase phase = CallPhase::Pending;
  /// Ownership generation: bumped when the call changes shard (handoff) so
  /// event copies left in the old owner's queue are recognisably stale.
  /// Also bumped when a cross-group reservation is posted, so no event can
  /// execute while the claim is in flight to the barrier.
  std::uint32_t epoch = 0;
  /// Snapshot-only policy work precomputed off the serialized commit path:
  /// set by the parallel prepare phase for the initial decision, re-run by
  /// the local phase whenever a mobility step produces the new snapshot a
  /// handoff decision will use (so it is always current when its decision
  /// commits). Invalid when precompute is disabled or unsupported — the
  /// policy then infers inline, with bit-identical results.
  cellular::PredictedCv predicted{};

  explicit CallState(const mobility::SpeedDependentTurnParams& turn)
      : model{turn} {}
};

/// How many commit lanes a run gets: the configured group count when the
/// policy promises cell-local commits, one serialized lane otherwise (the
/// partition further clamps to the cell count).
[[nodiscard]] int requestedLanes(const SimulationConfig& cfg,
                                 const cellular::AdmissionController& c) {
  if (c.commitScope() != cellular::CommitScope::CellLocal) return 1;
  return std::max(1, cfg.commit_groups);
}

class Engine {
 public:
  Engine(const SimulationConfig& cfg, const ControllerFactory& make_controller)
      : cfg_{cfg},
        network_{cfg.rings, cfg.cell_radius_km, cfg.capacity_bu,
                 capacityOverrides(cfg)},
        controller_{make_controller(network_)},
        partition_{network_,
                   controller_ ? requestedLanes(cfg, *controller_) : 1},
        shard_count_{std::max(1, std::min(cfg.shards, kMaxShards))},
        pool_{shard_count_},
        queues_(static_cast<std::size_t>(shard_count_)),
        outboxes_(static_cast<std::size_t>(shard_count_)),
        local_events_(static_cast<std::size_t>(shard_count_), 0),
        lanes_(static_cast<std::size_t>(partition_.groups())),
        mailboxes_(static_cast<std::size_t>(partition_.groups())) {
    if (!controller_) {
      throw std::invalid_argument("controller factory returned nullptr");
    }
    prepareCellOverrides();
  }

  Metrics execute() {
    // Phase wall clocks: commit_phase_s / total is the measured serial
    // fraction (what caps sharded speedup). Timing is observational only —
    // never an input to any simulation outcome.
    const auto stamp = [] { return std::chrono::steady_clock::now(); };
    const auto since = [](std::chrono::steady_clock::time_point t0,
                          std::chrono::steady_clock::time_point t1) {
      return std::chrono::duration<double>(t1 - t0).count();
    };

    auto t0 = stamp();
    prepareArrivals();
    auto t1 = stamp();
    metrics_.prepare_phase_s = since(t0, t1);
    metrics_.commit_groups = partition_.groups();

    // Tick windows: with handoffs the barrier period is the mobility update
    // (the minimum latency at which one cell's state can matter to
    // another); without cross-cell traffic one unbounded window suffices —
    // the commit phase alone replays the run in canonical order.
    const double window_s = cfg_.enable_handoffs
                                ? cfg_.mobility_update_s
                                : std::numeric_limits<double>::infinity();
    const bool grouped = partition_.groups() > 1;

    while (const auto next = nextEventTime()) {
      double window_end = std::numeric_limits<double>::infinity();
      if (std::isfinite(window_s)) {
        const double k = std::floor(*next / window_s);
        window_end = (k + 1.0) * window_s;
      }
      t0 = stamp();
      runLocalPhase(window_end);
      t1 = stamp();
      metrics_.local_phase_s += since(t0, t1);

      // Commit: route the merged mailboxes to the group lanes (serial),
      // replay each lane (concurrent when grouped; THE serialized commit
      // when not), then drain cross-group reservations and flush deferred
      // events at the barrier (serial). With one lane everything lands in
      // commit_phase_s — the pre-grouped accounting; with several, the
      // lane replay is no longer serialized and is reported separately.
      routeCommits();
      const auto t2 = stamp();
      runLanes(window_end);
      const auto t3 = stamp();
      drainBarrier(window_end);
      const auto t4 = stamp();
      if (grouped) {
        metrics_.commit_phase_s += since(t1, t2) + since(t3, t4);
        metrics_.commit_lane_s += since(t2, t3);
      } else {
        metrics_.commit_phase_s += since(t1, t4);
      }
    }

    // Fold the per-lane slices in group order — deterministic for a fixed
    // partition, and a plain copy when there is one lane.
    double last_change_s = 0.0;
    for (const GroupLane& lane : lanes_) {
      mergeLane(lane);
      last_change_s = std::max(last_change_s, lane.last_change_s);
    }
    metrics_.observed_span_s = std::max(0.0, last_change_s - cfg_.warmup_s);
    metrics_.total_capacity_bu = network_.totalCapacityBu();
    for (const std::uint64_t n : local_events_) metrics_.engine_events += n;
    return metrics_;
  }

 private:
  using Queue = EventQueue<ShardEvent>;

  /// Per-window deferred schedule: an event that belongs to a later window
  /// and must be pushed into a shard queue — which lanes cannot do
  /// concurrently (two groups' cells may share a shard queue), so lanes
  /// buffer these and the barrier flushes them serially.
  struct DeferredEvent {
    double time_s = 0.0;
    CellId cell = 0;
    ShardEvent event;
  };

  /// One commit lane: the canonical-order replay queue of one cell group
  /// plus everything the lane accumulates privately — outgoing reservation
  /// claims, deferred schedules, its group's slice of the occupancy
  /// integral and of the counters. Lanes never touch each other's state;
  /// the barrier folds them in group order.
  struct GroupLane {
    std::priority_queue<CommitEntry, std::vector<CommitEntry>, CommitLater>
        queue;
    std::vector<Reservation> outgoing;
    std::vector<DeferredEvent> deferred;
    /// Group-local occupancy integral: occupied BU over this group's
    /// cells, integrated at each committed change exactly like the
    /// pre-grouped engine integrated the network total.
    double last_change_s = 0.0;
    double busy_bu_seconds = 0.0;
    cellular::BandwidthUnits occupied_bu = 0;
    /// Counter slice (only the counters lanes touch are merged).
    Metrics partial;
    std::uint64_t events = 0;
  };

  [[nodiscard]] static std::vector<cellular::CellCapacityOverride>
  capacityOverrides(const SimulationConfig& cfg) {
    std::vector<cellular::CellCapacityOverride> out;
    for (const CellOverride& o : cfg.cell_overrides) {
      if (o.capacity_bu) out.emplace_back(o.cell, *o.capacity_bu);
    }
    return out;
  }

  /// Digests cell_overrides into the spawn-weight CDF and per-cell mix
  /// table. Both stay empty when no override needs them, keeping the
  /// unscaled run on the exact legacy draw sequence (bit-identical).
  void prepareCellOverrides() {
    bool weighted = false;
    bool mixed = false;
    for (const CellOverride& o : cfg_.cell_overrides) {
      if (o.arrival_scale && *o.arrival_scale != 1.0) weighted = true;
      if (o.mix) mixed = true;
    }
    if (weighted) {
      std::vector<double> weight(network_.cellCount(), 1.0);
      for (const CellOverride& o : cfg_.cell_overrides) {
        if (o.arrival_scale) {
          weight[static_cast<std::size_t>(o.cell)] = *o.arrival_scale;
        }
      }
      spawn_cdf_.resize(weight.size());
      double total = 0.0;
      for (std::size_t i = 0; i < weight.size(); ++i) {
        total += weight[i];
        spawn_cdf_[i] = total;
      }
    }
    if (mixed) {
      cell_mix_.resize(network_.cellCount());
      for (const CellOverride& o : cfg_.cell_overrides) {
        if (o.mix) cell_mix_[static_cast<std::size_t>(o.cell)] = o.mix;
      }
    }
  }

  [[nodiscard]] int shardOf(CellId cell) const noexcept {
    return static_cast<int>(static_cast<std::size_t>(cell) %
                            static_cast<std::size_t>(shard_count_));
  }

  [[nodiscard]] int laneOf(CellId cell) const {
    return partition_.groupOf(cell);
  }

  [[nodiscard]] CallState& call(CallId id) { return calls_[id - 1]; }

  [[nodiscard]] std::optional<double> nextEventTime() const {
    std::optional<double> best;
    for (const Queue& q : queues_) {
      const auto t = q.peekTime();
      if (t && (!best || *t < *best)) best = t;
    }
    return best;
  }

  /// Integrates a group's occupied-BU time up to \p now (call before any
  /// change to that group's ledgers). Touched only by the lane that owns
  /// the group or by the single-threaded barrier drain.
  void noteOccupancy(GroupLane& lane, double now) {
    const double from = std::max(lane.last_change_s, cfg_.warmup_s);
    if (now > from) {
      lane.busy_bu_seconds +=
          static_cast<double>(lane.occupied_bu) * (now - from);
    }
    lane.last_change_s = now;
  }

  [[nodiscard]] bool counted(double now) const noexcept {
    return now >= cfg_.warmup_s;
  }

  /// Counts rationales cut at ReasonText's inline capacity, so explain-mode
  /// runs can surface the loss (the CLI warns once per run) instead of
  /// silently dropping tails. Respects the warmup gate like every other
  /// counter — only measured decisions are reported. Deterministic:
  /// decisions do not depend on it.
  static void noteRationale(Metrics& into,
                            const cellular::AdmissionDecision& decision,
                            bool count) noexcept {
    if (count && decision.rationale.truncated()) {
      ++into.truncated_rationales;
    }
  }

  /// Folds one lane's private slice into the run metrics — every counter a
  /// lane may touch, in group order so the double accumulation is
  /// reproducible.
  void mergeLane(const GroupLane& lane) {
    const Metrics& p = lane.partial;
    metrics_.new_requests += p.new_requests;
    metrics_.new_accepted += p.new_accepted;
    metrics_.new_blocked += p.new_blocked;
    metrics_.handoff_requests += p.handoff_requests;
    metrics_.handoff_accepted += p.handoff_accepted;
    metrics_.handoff_dropped += p.handoff_dropped;
    metrics_.completed += p.completed;
    for (std::size_t i = 0; i < p.class_requests.size(); ++i) {
      metrics_.class_requests[i] += p.class_requests[i];
      metrics_.class_accepted[i] += p.class_accepted[i];
    }
    metrics_.truncated_rationales += p.truncated_rationales;
    metrics_.busy_bu_seconds += lane.busy_bu_seconds;
    metrics_.engine_events += lane.events;
  }

  // ---------------------------------------------------------------- prepare

  /// Draws arrival instants, then builds every call — spawn cell, GPS
  /// tracking through the observation window, the admission-time snapshot —
  /// in parallel over the shard pool (each call is index-sharded and only
  /// touches its own state and RNG stream), and finally schedules the
  /// decision events serially in call order.
  void prepareArrivals() {
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(cfg_.total_requests));
    Rng arrival_rng = makeRng(cfg_.seed, kArrivalStream);
    if (cfg_.arrivals == ArrivalProcess::UniformBurst) {
      for (int i = 0; i < cfg_.total_requests; ++i) {
        times.push_back(sampleUniform(arrival_rng, 0.0, cfg_.arrival_window_s));
      }
      std::sort(times.begin(), times.end());
    } else {
      const double rate =
          static_cast<double>(cfg_.total_requests) / cfg_.arrival_window_s;
      double t = 0.0;
      for (int i = 0; i < cfg_.total_requests; ++i) {
        t += sampleExponential(arrival_rng, 1.0 / rate);
        times.push_back(t);
      }
    }

    calls_.reserve(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      calls_.emplace_back(cfg_.scenario.turn);
    }

    pool_.run([&](int shard) {
      for (std::size_t i = static_cast<std::size_t>(shard); i < calls_.size();
           i += static_cast<std::size_t>(shard_count_)) {
        prepareCall(static_cast<CallId>(i + 1), times[i]);
      }
    });

    const double window = cfg_.scenario.tracking_window_s;
    for (std::size_t i = 0; i < calls_.size(); ++i) {
      const CallId id = static_cast<CallId>(i + 1);
      const CellId target = call(id).request.target_cell;
      queues_[static_cast<std::size_t>(shardOf(target))].push(
          times[i] + window, ShardEvent{ShardEventKind::Decision, id, 0});
    }
  }

  /// Where a fresh request spawns: the legacy uniform pick, or — as soon
  /// as any cell carries an arrival_scale override — a weighted draw over
  /// the per-cell CDF (hotspot modelling). The two paths consume the
  /// call's RNG differently, so the weighted draw only engages when a
  /// scale actually differs from 1 — unscaled configs keep their exact
  /// historical draw sequence.
  [[nodiscard]] CellId drawSpawnCell(Rng& rng) {
    if (spawn_cdf_.empty()) {
      std::uniform_int_distribution<std::size_t> cell_pick{
          0, network_.cellCount() - 1};
      return static_cast<CellId>(cell_pick(rng));
    }
    const double u = sampleUniform(rng, 0.0, spawn_cdf_.back());
    const auto it = std::upper_bound(spawn_cdf_.begin(), spawn_cdf_.end(), u);
    const std::size_t i = std::min(
        static_cast<std::size_t>(it - spawn_cdf_.begin()),
        spawn_cdf_.size() - 1);
    return static_cast<CellId>(i);
  }

  /// Builds one call: spawn draw, tracking walk, snapshot. Uses only the
  /// call's own stream — safe to run for many calls concurrently.
  void prepareCall(CallId id, double arrival_s) {
    CallState& c = call(id);
    c.rng = makeRng(cfg_.seed, kCallStreamBase + static_cast<std::uint64_t>(id));

    const CellId spawn_cell = drawSpawnCell(c.rng);
    const bool mixed = !cell_mix_.empty() &&
                       cell_mix_[static_cast<std::size_t>(spawn_cell)];
    RequestPlan plan;
    if (mixed) {
      // Hotspot cells skew their own service mix; everything else about
      // the population stays the scenario's.
      ScenarioParams local = cfg_.scenario;
      local.mix = *cell_mix_[static_cast<std::size_t>(spawn_cell)];
      plan = drawRequest(local, network_.cell(spawn_cell).center, spawn_cell,
                         c.rng);
    } else {
      plan = drawRequest(cfg_.scenario, network_.cell(spawn_cell).center,
                         spawn_cell, c.rng);
    }
    c.state = plan.initial;

    const double window = cfg_.scenario.tracking_window_s;
    cellular::UserSnapshot snapshot;
    CellId target = plan.target_cell;
    if (window > 0.0) {
      // Collect fixes while the user moves; the estimator reconstructs
      // (S, A, D) exactly as a GPS-fed controller would.
      const mobility::GpsSampler sampler{
          cfg_.scenario.gps_error_m.value_or(0.0)};
      const double period = cfg_.scenario.gps_fix_period_s;
      const int fix_count = static_cast<int>(window / period) + 1;
      mobility::GpsEstimator estimator{
          static_cast<std::size_t>(std::max(2, fix_count))};
      estimator.addFix(sampler.sample(arrival_s, c.state.position_km, c.rng));
      for (int i = 1; i < fix_count; ++i) {
        c.model.step(c.state, period, c.rng);
        estimator.addFix(
            sampler.sample(arrival_s + i * period, c.state.position_km, c.rng));
      }
      // The user may have wandered into a neighbouring cell while tracked.
      target = network_.cellAt(c.state.position_km).value_or(target);
      snapshot = estimator.snapshot(network_.cell(target).center);
      snapshot.position = c.state.position_km;  // ledger-grade position
    } else {
      snapshot =
          mobility::snapshotFromTruth(c.state, network_.cell(target).center);
    }

    CallRequest req;
    req.call = id;
    req.user = id;
    req.service = plan.service;
    req.demand_bu = cellular::profileFor(plan.service).demand_bu;
    req.snapshot = snapshot;
    req.target_cell = target;
    req.is_handoff = false;
    c.request = req;

    // Snapshot-only policy work (FACS: the whole FLC1 inference) runs here,
    // in parallel, instead of inside the serialized commit phase. The
    // snapshot cannot change between now and the decision instant (pending
    // calls do not move), so the value stays coherent until consumed.
    c.predicted = precompute(req.snapshot);
  }

  /// Gated precompute: invalid (→ inline inference in decide()) when the
  /// config disables hoisting. Called from shard workers — the controller
  /// contract requires precompute() to be thread-safe and state-free.
  [[nodiscard]] cellular::PredictedCv precompute(
      const cellular::UserSnapshot& snapshot) const {
    if (!cfg_.precompute_cv) return {};
    return controller_->precompute(snapshot);
  }

  // ------------------------------------------------------------ local phase

  /// Each shard drains its queue up to the window end. Mobility steps run
  /// here (call-local: per-call RNG and state); everything that needs the
  /// shared ledgers/controller becomes a mailbox entry for the commit
  /// phase. Stale events (superseded epochs, finished calls) die here.
  void runLocalPhase(double window_end) {
    pool_.run([&](int shard) {
      Queue& q = queues_[static_cast<std::size_t>(shard)];
      auto& outbox = outboxes_[static_cast<std::size_t>(shard)];
      std::uint64_t& events = local_events_[static_cast<std::size_t>(shard)];
      while (const auto entry = q.popBefore(window_end)) {
        const ShardEvent& ev = entry->payload;
        CallState& c = call(ev.call);
        switch (ev.kind) {
          case ShardEventKind::Decision:
            if (c.phase != CallPhase::Pending) break;
            outbox.push_back(CommitEntry{entry->time_s, ev});
            break;
          case ShardEventKind::End:
            if (c.phase != CallPhase::Active || ev.epoch != c.epoch) break;
            outbox.push_back(CommitEntry{entry->time_s, ev});
            break;
          case ShardEventKind::Move: {
            if (c.phase != CallPhase::Active || ev.epoch != c.epoch) break;
            c.model.step(c.state, cfg_.mobility_update_s, c.rng);
            const auto now_cell = network_.cellAt(c.state.position_km);
            if (now_cell && *now_cell == c.request.target_cell) {
              // Still home: the step stays entirely shard-local. Only these
              // count here — crossings count when their commit executes.
              ++events;
              q.push(entry->time_s + cfg_.mobility_update_s, ev);
            } else {
              // Crossed a border or left coverage: cross-cell, so the
              // barrier decides (handoff admission / departure). The step
              // changed the snapshot the handoff decision will see, so the
              // prepared CV is stale — re-run the prediction here, in
              // parallel, against the same snapshot commitCrossing() will
              // reconstruct (a pure function of the unchanged motion state
              // and cell centre, so the bits match).
              if (now_cell) {
                c.predicted = precompute(mobility::snapshotFromTruth(
                    c.state, network_.cell(*now_cell).center));
              }
              outbox.push_back(CommitEntry{entry->time_s, ev});
            }
            break;
          }
        }
      }
    });
  }

  // ----------------------------------------------------------- commit phase

  /// Serial routing step: every mailbox entry goes to the lane of the
  /// call's current cell. All of a call's events of one window route to
  /// one lane (pending calls do not move, and active calls change cells
  /// only when that same lane — or the barrier — commits the crossing),
  /// so lanes touch disjoint call and ledger state by construction.
  void routeCommits() {
    for (auto& outbox : outboxes_) {
      for (const CommitEntry& e : outbox) {
        const CellId cell = call(e.event.call).request.target_cell;
        lanes_[static_cast<std::size_t>(laneOf(cell))].queue.push(e);
      }
      outbox.clear();
    }
  }

  /// Replays every lane to quiescence. One lane runs inline (it IS the
  /// serialized commit phase of the pre-grouped engine); several fan out
  /// over the shard pool, each worker walking the lanes it owns.
  void runLanes(double window_end) {
    const int lane_count = partition_.groups();
    if (lane_count == 1) {
      runLane(0, window_end);
      return;
    }
    pool_.run([&](int shard) {
      for (int g = shard; g < lane_count; g += shard_count_) {
        runLane(g, window_end);
      }
    });
  }

  /// Drains one lane's queue — plus any follow-up events commits push back
  /// inside the window — in canonical (time, kind, call) order, mutating
  /// only this group's ledgers and the lane's private slice.
  void runLane(int g, double window_end) {
    GroupLane& lane = lanes_[static_cast<std::size_t>(g)];
    while (!lane.queue.empty()) {
      const CommitEntry e = lane.queue.top();
      lane.queue.pop();
      const double now = e.time_s;
      CallState& c = call(e.event.call);
      // Only events that execute count toward engine_events; stale entries
      // superseded by an in-window handoff or drop are bookkeeping noise.
      switch (e.event.kind) {
        case ShardEventKind::Decision:
          if (c.phase == CallPhase::Pending) {
            ++lane.events;
            commitDecision(lane, c, now, window_end);
          }
          break;
        case ShardEventKind::End:
          if (c.phase == CallPhase::Active && e.event.epoch == c.epoch) {
            ++lane.events;
            commitEnd(lane, c, now);
          }
          break;
        case ShardEventKind::Move:
          if (c.phase == CallPhase::Active && e.event.epoch == c.epoch) {
            ++lane.events;
            commitCrossing(g, lane, c, now, window_end);
          }
          break;
      }
    }
  }

  /// Schedules an admitted call's departure: into the lane's own queue when
  /// it still falls inside this window (the call's cell stays in this
  /// group), else deferred for the barrier to push into its owner shard's
  /// queue.
  void scheduleEnd(GroupLane& lane, const CallState& c, CallId id,
                   double window_end) {
    const ShardEvent ev{ShardEventKind::End, id, c.epoch};
    if (c.end_time_s < window_end) {
      lane.queue.push(CommitEntry{c.end_time_s, ev});
    } else {
      lane.deferred.push_back(
          DeferredEvent{c.end_time_s, c.request.target_cell, ev});
    }
  }

  /// First mobility step after \p now: the next multiple of the update
  /// period strictly ahead of it (always >= window_end, i.e. next window).
  void scheduleFirstMove(GroupLane& lane, const CallState& c, CallId id,
                         double now) {
    if (!cfg_.enable_handoffs) return;
    const double period = cfg_.mobility_update_s;
    const double next = (std::floor(now / period) + 1.0) * period;
    lane.deferred.push_back(DeferredEvent{
        next, c.request.target_cell, ShardEvent{ShardEventKind::Move, id,
                                                c.epoch}});
  }

  void commitDecision(GroupLane& lane, CallState& c, double now,
                      double window_end) {
    if (c.phase != CallPhase::Pending) return;
    const CallRequest& req = c.request;
    cellular::BaseStation& station = network_.station(req.target_cell);
    // The prepare phase already ran the snapshot-only stage; decide() now
    // executes only the ledger-dependent stage (FACS: FLC2).
    const AdmissionContext ctx{station, now, cfg_.explain, c.predicted};

    const bool count = counted(now);
    if (count) {
      ++lane.partial.new_requests;
      ++lane.partial.class_requests[static_cast<std::size_t>(req.service)];
    }

    const cellular::AdmissionDecision decision = controller_->decide(req, ctx);
    noteRationale(lane.partial, decision, count);
    // Defence in depth: an accept that does not fit would corrupt the
    // ledger, so the simulator re-checks the invariant the policy promised.
    const bool admit = decision.accept && station.canFit(req.demand_bu);

    if (!admit) {
      if (count) ++lane.partial.new_blocked;
      controller_->onRejected(req, ctx);
      c.phase = CallPhase::Done;
      return;
    }

    noteOccupancy(lane, now);
    station.allocate(req.call, req.demand_bu,
                     cellular::profileFor(req.service).real_time);
    lane.occupied_bu += req.demand_bu;
    if (count) {
      ++lane.partial.new_accepted;
      ++lane.partial.class_accepted[static_cast<std::size_t>(req.service)];
    }
    controller_->onAdmitted(req, ctx);

    c.phase = CallPhase::Active;
    c.end_time_s = now + sampleExponential(
                             c.rng,
                             cellular::profileFor(req.service).mean_holding_s);
    scheduleEnd(lane, c, req.call, window_end);
    scheduleFirstMove(lane, c, req.call, now);
  }

  void commitEnd(GroupLane& lane, CallState& c, double now) {
    cellular::BaseStation& station = network_.station(c.request.target_cell);
    noteOccupancy(lane, now);
    station.release(c.request.call);
    lane.occupied_bu -= c.request.demand_bu;
    if (counted(now)) ++lane.partial.completed;
    controller_->onReleased(c.request, AdmissionContext{station, now});
    c.phase = CallPhase::Done;
  }

  /// A mobility step detected the call outside its cell: hand it over
  /// in-lane when the new cell shares this group, account a coverage
  /// departure, or — across a group border — release the source half and
  /// post a Reservation for the barrier to validate (the inter-BS
  /// message).
  void commitCrossing(int g, GroupLane& lane, CallState& c, double now,
                      double window_end) {
    const auto new_cell = network_.cellAt(c.state.position_km);
    if (!new_cell) {
      // Left coverage entirely: account as a completed departure.
      commitEnd(lane, c, now);
      return;
    }

    if (laneOf(*new_cell) != g) {
      // Cross-group handoff. The source half — the call leaving this
      // group's cell — commits here, at the crossing instant; the claim on
      // the target cell travels to its group's mailbox. Bumping the epoch
      // supersedes every queued event copy while the claim is in flight,
      // so nothing can touch the call before the barrier resolves it.
      cellular::BaseStation& old_station =
          network_.station(c.request.target_cell);
      noteOccupancy(lane, now);
      old_station.release(c.request.call);
      lane.occupied_bu -= c.request.demand_bu;
      ++c.epoch;
      lane.outgoing.push_back(Reservation{now, c.request.call,
                                          c.request.target_cell, *new_cell,
                                          c.request.demand_bu, counted(now)});
      return;
    }

    cellular::BaseStation& old_station =
        network_.station(c.request.target_cell);
    cellular::BaseStation& new_station = network_.station(*new_cell);

    CallRequest req = c.request;
    req.is_handoff = true;
    req.target_cell = *new_cell;
    req.snapshot =
        mobility::snapshotFromTruth(c.state, network_.cell(*new_cell).center);

    const bool count = counted(now);
    if (count) ++lane.partial.handoff_requests;
    // c.predicted was refreshed by the local phase when this crossing was
    // detected, from the identical snapshot req now carries.
    const AdmissionContext ctx{new_station, now, cfg_.explain, c.predicted};
    const cellular::AdmissionDecision decision = controller_->decide(req, ctx);
    noteRationale(lane.partial, decision, count);
    const bool admit = decision.accept && new_station.canFit(req.demand_bu);

    noteOccupancy(lane, now);
    old_station.release(req.call);
    lane.occupied_bu -= req.demand_bu;
    if (admit) {
      new_station.allocate(req.call, req.demand_bu,
                           cellular::profileFor(req.service).real_time);
      lane.occupied_bu += req.demand_bu;
      if (count) ++lane.partial.handoff_accepted;
      controller_->onAdmitted(req, ctx);  // refreshes SCC kinematics too
      c.request = req;
      // The call changed owner: supersede every event copy still queued
      // under the old epoch, then reschedule its departure and next step
      // with the new one.
      ++c.epoch;
      scheduleEnd(lane, c, req.call, window_end);
      lane.deferred.push_back(DeferredEvent{
          now + cfg_.mobility_update_s, *new_cell,
          ShardEvent{ShardEventKind::Move, req.call, c.epoch}});
    } else {
      if (count) ++lane.partial.handoff_dropped;
      controller_->onRejected(req, ctx);
      controller_->onReleased(c.request, AdmissionContext{old_station, now});
      c.phase = CallPhase::Done;  // pending End/Move copies die at pop
    }
  }

  // --------------------------------------------------------------- barrier

  /// The tick-window barrier, after every lane has quiesced: cross-group
  /// reservations are delivered to their target groups' mailboxes and
  /// drained in canonical (time, call) order with each capacity claim
  /// re-validated against the live ledger and policy state; then the
  /// lanes' deferred next-window events are flushed into the shard queues.
  /// Single-threaded, so it may touch any group.
  void drainBarrier(double window_end) {
    for (GroupLane& lane : lanes_) {
      for (const Reservation& r : lane.outgoing) {
        mailboxes_[static_cast<std::size_t>(laneOf(r.to_cell))].post(r);
      }
      lane.outgoing.clear();
    }
    for (std::size_t g = 0; g < mailboxes_.size(); ++g) {
      if (mailboxes_[g].empty()) continue;
      for (const Reservation& r : mailboxes_[g].drain()) {
        commitReservation(lanes_[g], r, window_end);
      }
    }
    for (GroupLane& lane : lanes_) {
      for (const DeferredEvent& d : lane.deferred) {
        queues_[static_cast<std::size_t>(shardOf(d.cell))].push(d.time_s,
                                                                d.event);
      }
      lane.deferred.clear();
    }
  }

  /// Resolves one inter-group bandwidth claim at the barrier. The grant is
  /// decided by the policy plus the hard ledger, exactly like an in-lane
  /// handoff — but against the target group's end-of-window state, which
  /// is the documented visibility difference of commit_groups > 1: the
  /// target lane's own events of this window committed first, and the
  /// granted bandwidth occupies the new cell from the barrier instant.
  void commitReservation(GroupLane& lane, const Reservation& r,
                         double window_end) {
    CallState& c = call(r.call);
    cellular::BaseStation& new_station = network_.station(r.to_cell);

    // The reservation is the authoritative inter-BS message: the handoff
    // request presented to the policy is rebuilt from its fields (the
    // demand claimed, the border crossed) plus the call's motion truth.
    CallRequest req = c.request;
    req.is_handoff = true;
    req.target_cell = r.to_cell;
    req.demand_bu = r.demand_bu;
    req.snapshot =
        mobility::snapshotFromTruth(c.state, network_.cell(r.to_cell).center);

    const bool count = r.counted;
    if (count) {
      ++metrics_.handoff_requests;
      ++metrics_.reservations_posted;
    }
    // c.predicted was refreshed when the crossing was detected, from this
    // same snapshot.
    const AdmissionContext ctx{new_station, r.time_s, cfg_.explain,
                               c.predicted};
    const cellular::AdmissionDecision decision = controller_->decide(req, ctx);
    noteRationale(metrics_, decision, count);
    const bool admit = decision.accept && new_station.canFit(req.demand_bu);

    if (!admit) {
      if (count) {
        ++metrics_.handoff_dropped;
        ++metrics_.reservations_dropped;
      }
      controller_->onRejected(req, ctx);
      controller_->onReleased(
          c.request, AdmissionContext{network_.station(r.from_cell), r.time_s});
      c.phase = CallPhase::Done;
      return;
    }

    noteOccupancy(lane, window_end);
    new_station.allocate(req.call, req.demand_bu,
                         cellular::profileFor(req.service).real_time);
    lane.occupied_bu += req.demand_bu;
    if (count) {
      ++metrics_.handoff_accepted;
      ++metrics_.reservations_admitted;
    }
    controller_->onAdmitted(req, ctx);
    c.request = req;  // epoch was already bumped when the claim was posted

    if (c.end_time_s < window_end) {
      // The departure instant passed while the claim was in flight: settle
      // it here (the call held no bandwidth in the new cell for measurable
      // time — the claim existed only to decide dropped vs handed over).
      noteOccupancy(lane, window_end);
      new_station.release(req.call);
      lane.occupied_bu -= req.demand_bu;
      if (counted(c.end_time_s)) ++metrics_.completed;
      controller_->onReleased(c.request,
                              AdmissionContext{new_station, window_end});
      c.phase = CallPhase::Done;
      return;
    }
    queues_[static_cast<std::size_t>(shardOf(r.to_cell))].push(
        c.end_time_s, ShardEvent{ShardEventKind::End, r.call, c.epoch});
    queues_[static_cast<std::size_t>(shardOf(r.to_cell))].push(
        r.time_s + cfg_.mobility_update_s,
        ShardEvent{ShardEventKind::Move, r.call, c.epoch});
  }

  SimulationConfig cfg_;
  HexNetwork network_;
  std::unique_ptr<cellular::AdmissionController> controller_;
  cellular::CellGroupPartition partition_;
  int shard_count_;
  ShardPool pool_;

  std::vector<Queue> queues_;                        ///< One per shard.
  std::vector<std::vector<CommitEntry>> outboxes_;   ///< One per shard.
  std::vector<std::uint64_t> local_events_;          ///< One per shard.
  std::vector<GroupLane> lanes_;                     ///< One per group.
  std::vector<ReservationMailbox> mailboxes_;        ///< One per group.
  std::vector<CallState> calls_;  ///< Indexed by call id - 1.

  /// Spawn-cell weighting (empty = legacy uniform draw) and per-cell mix
  /// overrides (empty = scenario mix everywhere), both digested once from
  /// cell_overrides.
  std::vector<double> spawn_cdf_;
  std::vector<std::optional<cellular::TrafficMix>> cell_mix_;

  Metrics metrics_;
};

}  // namespace

void validateConfig(const SimulationConfig& cfg) {
  // Geometry first (mirrors HexNetwork's own checks, so a bad scenario —
  // in code or from a file — fails at validate time with config
  // vocabulary, not mid-construction).
  if (cfg.rings < 0 || cfg.rings > kMaxRings) {
    throw std::invalid_argument("rings must be in [0, " +
                                std::to_string(kMaxRings) + "]");
  }
  if (!(cfg.cell_radius_km > 0.0)) {
    throw std::invalid_argument("cell radius must be positive");
  }
  if (cfg.capacity_bu <= 0) {
    throw std::invalid_argument("capacity must be positive");
  }
  if (cfg.total_requests < 0) {
    throw std::invalid_argument("total_requests must be >= 0");
  }
  if (!(cfg.arrival_window_s > 0.0)) {
    throw std::invalid_argument("arrival window must be positive");
  }
  if (cfg.warmup_s < 0.0) {
    throw std::invalid_argument("warmup must be >= 0");
  }
  if (cfg.enable_handoffs && !(cfg.mobility_update_s > 0.0)) {
    throw std::invalid_argument("mobility update period must be positive");
  }
  if (cfg.shards < 1 || cfg.shards > kMaxShards) {
    throw std::invalid_argument("shards must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  if (cfg.commit_groups < 1 || cfg.commit_groups > kMaxShards) {
    throw std::invalid_argument("commit groups must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  {
    // Mirror HexNetwork's override checks so a bad scenario fails at
    // validate time with config vocabulary, not mid-construction.
    const auto cells =
        static_cast<std::size_t>(cellular::hexDiskCellCount(cfg.rings));
    std::vector<bool> seen(cells, false);
    for (const CellOverride& o : cfg.cell_overrides) {
      if (static_cast<std::size_t>(o.cell) >= cells) {
        throw std::invalid_argument(
            "cell override for cell " + std::to_string(o.cell) +
            " outside the " + std::to_string(cells) + "-cell disk");
      }
      if (seen[o.cell]) {
        throw std::invalid_argument("duplicate cell override for cell " +
                                    std::to_string(o.cell));
      }
      if (o.emptyOverride()) {
        throw std::invalid_argument("cell override for cell " +
                                    std::to_string(o.cell) +
                                    " sets no field");
      }
      if (o.capacity_bu && *o.capacity_bu <= 0) {
        throw std::invalid_argument("cell capacity override for cell " +
                                    std::to_string(o.cell) +
                                    " must be positive");
      }
      if (o.arrival_scale &&
          (!std::isfinite(*o.arrival_scale) || !(*o.arrival_scale > 0.0))) {
        throw std::invalid_argument("arrival scale for cell " +
                                    std::to_string(o.cell) +
                                    " must be positive and finite");
      }
      seen[o.cell] = true;
    }
  }
  const ScenarioParams& s = cfg.scenario;
  if (s.tracking_window_s < 0.0) {
    throw std::invalid_argument("tracking window must be >= 0");
  }
  if (s.tracking_window_s > 0.0 &&
      (!(s.gps_fix_period_s > 0.0) ||
       s.gps_fix_period_s > s.tracking_window_s)) {
    throw std::invalid_argument(
        "GPS fix period must be in (0, tracking_window]");
  }
}

Metrics runSimulation(const SimulationConfig& config,
                      const ControllerFactory& make_controller) {
  validateConfig(config);
  Engine engine{config, make_controller};
  return engine.execute();
}

}  // namespace facs::sim
