#pragma once
/// \file workload.hpp
/// Workload scenarios: how requesting users are drawn. The presets encode
/// the parameter sweeps of the paper's Figs. 7-10 (Section 4).

#include <optional>

#include "cellular/call.hpp"
#include "cellular/traffic.hpp"
#include "mobility/model.hpp"
#include "sim/rng.hpp"

namespace facs::sim {

/// Distribution of requesting users for one experiment curve.
struct ScenarioParams {
  /// Speed drawn uniformly from [speed_min, speed_max] km/h (equal = fixed).
  double speed_min_kmh = 0.0;
  double speed_max_kmh = 120.0;

  /// Initial heading deviation from the bearing toward the serving BS,
  /// drawn from N(angle_mean, angle_sigma) degrees. sigma 0 = exact.
  double angle_mean_deg = 0.0;
  double angle_sigma_deg = 15.0;

  /// Distance to the serving BS drawn uniformly from [min, max] km.
  double distance_min_km = 0.0;
  double distance_max_km = 10.0;

  /// Service-class arrival mix (paper default 60/30/10 %).
  cellular::TrafficMix mix = cellular::TrafficMix::paperDefault();

  /// Mobility while tracked and while in call (the paper's premise: slow
  /// users turn, fast users cannot).
  mobility::SpeedDependentTurnParams turn{};

  /// GPS observation window before the admission decision. During the
  /// window the user moves, so slow users' measured angle drifts — this is
  /// what makes their trajectory "difficult to predict" (Section 4).
  /// Zero = decide immediately on ground truth.
  double tracking_window_s = 30.0;
  double gps_fix_period_s = 5.0;
  /// 1-sigma horizontal GPS error in metres; nullopt = noiseless truth.
  std::optional<double> gps_error_m = 10.0;
};

/// One sampled request (before tracking / admission).
struct RequestPlan {
  mobility::MotionState initial;
  cellular::ServiceClass service = cellular::ServiceClass::Text;
  cellular::CellId target_cell = 0;
};

/// Draws one request around the station at \p station_center.
[[nodiscard]] RequestPlan drawRequest(const ScenarioParams& scenario,
                                      cellular::Vec2 station_center,
                                      cellular::CellId target_cell, Rng& rng);

/// \name Paper evaluation presets
/// Common base: BS 40 BU; text/voice/video = 1/5/10 BU at 60/30/10 %;
/// speed in [0,120] km/h, angle in [-180,180] deg, distance in [0,10] km.
///@{

/// Fig. 7 — fixed speed, heading initially toward the BS, full mobility:
/// the measured angle of slow users drifts during the tracking window.
[[nodiscard]] ScenarioParams fig7Scenario(double speed_kmh);

/// Fig. 8 — exact angle at decision time (no tracking drift, no GPS noise),
/// speeds drawn from the full range.
[[nodiscard]] ScenarioParams fig8Scenario(double angle_deg);

/// Fig. 9 — exact distance at decision time, default angle spread.
[[nodiscard]] ScenarioParams fig9Scenario(double distance_km);

/// Fig. 10 — the mixed default population used for the FACS vs SCC
/// comparison: speeds uniform over [0,120], angles spread around straight,
/// distances over the full cell.
[[nodiscard]] ScenarioParams fig10Scenario();

///@}

}  // namespace facs::sim
