#include "sim/scenario_catalog.hpp"

#include <sstream>

#include "sim/scenario_file.hpp"

namespace facs::sim {

namespace {

ScenarioSpec paperSingleCell() {
  ScenarioSpec s;
  s.name = "paper-single-cell";
  s.summary =
      "The paper's Section 4 evaluation: one 40 BU cell of 10 km, mixed "
      "60/30/10 traffic, speeds 0-120 km/h, GPS-tracked decisions.";
  s.config = SimulationConfig{};  // the defaults *are* the paper's setup
  return s;
}

ScenarioSpec urbanWalkers() {
  ScenarioSpec s;
  s.name = "urban-walkers";
  s.summary =
      "Downtown micro-cell cluster at lunch hour: slow erratic pedestrians "
      "plus a vehicular minority drifting between 7 small cells; the "
      "paper's hard-to-predict population, sharded per cell group.";
  s.config.rings = 1;               // a block of 7 downtown micro-cells
  s.config.cell_radius_km = 1.5;
  s.config.enable_handoffs = true;  // window shoppers do cross streets
  s.config.mobility_update_s = 10.0;
  s.config.shards = 4;
  s.config.total_requests = 60;
  s.config.arrival_window_s = 600.0;
  s.config.scenario.speed_min_kmh = 2.0;
  s.config.scenario.speed_max_kmh = 25.0;   // walkers and cyclists
  s.config.scenario.angle_sigma_deg = 45.0; // downtown grid: nobody walks straight
  s.config.scenario.distance_min_km = 0.0;
  s.config.scenario.distance_max_km = 1.5;  // spawn inside the home cell
  s.config.scenario.turn.sigma_max_deg = 60.0;  // window shopping
  s.config.scenario.mix = cellular::TrafficMix{0.50, 0.40, 0.10};
  return s;
}

ScenarioSpec highway() {
  ScenarioSpec s;
  s.name = "highway";
  s.summary =
      "7 micro-cells over a fast corridor: constant handoffs, dropping "
      "probability is the metric that matters.";
  s.config.rings = 1;
  s.config.cell_radius_km = 2.0;  // micro-cells: crossings every couple minutes
  s.config.total_requests = 150;
  s.config.arrival_window_s = 400.0;
  s.config.enable_handoffs = true;
  s.config.mobility_update_s = 5.0;
  s.config.scenario.speed_min_kmh = 70.0;
  s.config.scenario.speed_max_kmh = 130.0;
  s.config.scenario.angle_sigma_deg = 30.0;
  s.config.scenario.distance_min_km = 0.0;
  s.config.scenario.distance_max_km = 2.0;
  s.config.scenario.tracking_window_s = 10.0;
  s.config.scenario.gps_fix_period_s = 2.0;
  s.config.scenario.turn.sigma_max_deg = 10.0;  // cars follow the road
  return s;
}

ScenarioSpec stadiumBurst() {
  ScenarioSpec s;
  s.name = "stadium-burst";
  s.summary =
      "Flash crowd after a match: thousands of near-stationary users over "
      "the stadium cell and its 6 precinct cells, Poisson arrivals, "
      "warm-up excluded (steady state); the sharded engine's stress load.";
  s.config.rings = 1;               // stadium mast + surrounding precinct
  s.config.cell_radius_km = 2.0;
  s.config.enable_handoffs = true;  // the crowd drains outward on foot
  s.config.mobility_update_s = 10.0;
  s.config.shards = 4;
  s.config.total_requests = 3000;
  s.config.arrival_window_s = 3000.0;  // ~1 request/s against 40 BU cells
  s.config.arrivals = ArrivalProcess::Poisson;
  s.config.warmup_s = 600.0;  // measure after the crowd has built up
  s.config.scenario.speed_min_kmh = 0.0;
  s.config.scenario.speed_max_kmh = 6.0;     // people on foot
  s.config.scenario.angle_sigma_deg = 90.0;  // milling around
  s.config.scenario.distance_min_km = 0.0;
  s.config.scenario.distance_max_km = 2.0;   // everyone near a mast
  s.config.scenario.tracking_window_s = 10.0;
  s.config.scenario.gps_fix_period_s = 5.0;
  s.config.scenario.mix = cellular::TrafficMix{0.7, 0.25, 0.05};  // texting
  return s;
}

ScenarioSpec poissonSteadyState() {
  ScenarioSpec s;
  s.name = "poisson-steady-state";
  s.summary =
      "The paper's cell driven by a Poisson process past its fill-up "
      "transient — the steady-state alternative to the burst semantics.";
  s.config.total_requests = 500;
  s.config.arrival_window_s = 6000.0;
  s.config.arrivals = ArrivalProcess::Poisson;
  s.config.warmup_s = 600.0;
  return s;
}

}  // namespace

ScenarioCatalog::ScenarioCatalog() {
  for (ScenarioSpec spec : {paperSingleCell(), urbanWalkers(), highway(),
                            stadiumBurst(), poissonSteadyState()}) {
    const std::string name = spec.name;
    entries_.emplace(name, std::move(spec));
  }
}

const ScenarioCatalog& ScenarioCatalog::builtins() {
  static const ScenarioCatalog catalog;
  return catalog;
}

void ScenarioCatalog::add(ScenarioSpec spec) {
  if (spec.name.empty()) {
    throw ScenarioError("scenario needs a non-empty name");
  }
  const std::string name = spec.name;
  if (!entries_.emplace(name, std::move(spec)).second) {
    throw ScenarioError("scenario '" + name + "' already catalogued");
  }
}

const ScenarioSpec& ScenarioCatalog::addFile(
    const std::string& path, const cellular::PolicyRuntime& runtime) {
  ScenarioSpec spec = loadScenarioFile(path, runtime);
  const std::string name = spec.name;
  add(std::move(spec));
  return entries_.find(name)->second;
}

bool ScenarioCatalog::contains(std::string_view name) const noexcept {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, spec] : entries_) out.push_back(name);
  return out;
}

const ScenarioSpec& ScenarioCatalog::at(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += "|";
      known += n;
    }
    throw ScenarioError("unknown scenario '" + std::string{name} + "' (" +
                        known + ")");
  }
  return it->second;
}

std::string ScenarioCatalog::describeAll() const {
  // Cell count and default shards up front, so operators can see at a
  // glance which scenarios have enough cells for --shards to bite.
  std::ostringstream os;
  for (const auto& [name, spec] : entries_) {
    const int cells = cellular::hexDiskCellCount(spec.config.rings);
    os << "  " << name << "  [" << cells
       << (cells == 1 ? " cell" : " cells") << ", shards "
       << spec.config.shards << "]\n      " << spec.summary << "\n";
  }
  return os.str();
}

SimulationBuilder SimulationBuilder::scenario(std::string_view name) {
  return scenario(name, ScenarioCatalog::builtins());
}

SimulationBuilder SimulationBuilder::scenario(std::string_view name,
                                              const ScenarioCatalog& catalog) {
  return SimulationBuilder{catalog.at(name)};
}

SimulationBuilder& SimulationBuilder::runtime(const cellular::PolicyRuntime& rt) {
  runtime_ = &rt;
  return *this;
}

SimulationBuilder& SimulationBuilder::requests(int n) {
  config_.total_requests = n;
  return *this;
}

SimulationBuilder& SimulationBuilder::arrivalWindow(double seconds) {
  config_.arrival_window_s = seconds;
  return *this;
}

SimulationBuilder& SimulationBuilder::poissonArrivals(bool on) {
  config_.arrivals = on ? ArrivalProcess::Poisson : ArrivalProcess::UniformBurst;
  return *this;
}

SimulationBuilder& SimulationBuilder::warmup(double seconds) {
  config_.warmup_s = seconds;
  return *this;
}

SimulationBuilder& SimulationBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}

SimulationBuilder& SimulationBuilder::rings(int rings) {
  config_.rings = rings;
  return *this;
}

SimulationBuilder& SimulationBuilder::cellRadiusKm(double km) {
  config_.cell_radius_km = km;
  return *this;
}

SimulationBuilder& SimulationBuilder::capacityBu(cellular::BandwidthUnits bu) {
  config_.capacity_bu = bu;
  return *this;
}

SimulationBuilder& SimulationBuilder::handoffs(bool on) {
  config_.enable_handoffs = on;
  return *this;
}

SimulationBuilder& SimulationBuilder::mobilityUpdate(double seconds) {
  config_.mobility_update_s = seconds;
  return *this;
}

SimulationBuilder& SimulationBuilder::shards(int n) {
  config_.shards = n;
  return *this;
}

SimulationBuilder& SimulationBuilder::precomputeCv(bool on) {
  config_.precompute_cv = on;
  return *this;
}

SimulationBuilder& SimulationBuilder::commitGroups(int n) {
  config_.commit_groups = n;
  return *this;
}

SimulationBuilder& SimulationBuilder::partition(PartitionStrategy strategy) {
  config_.partition = strategy;
  return *this;
}

SimulationBuilder& SimulationBuilder::repartitionEvery(double seconds) {
  config_.repartition_every_s = seconds;
  return *this;
}

/// Finds or creates the single override entry for \p cell, keeping the
/// one-entry-per-cell invariant validateConfig() enforces regardless of
/// which setters ran first.
CellOverride& SimulationBuilder::overrideFor(cellular::CellId cell) {
  for (CellOverride& o : config_.cell_overrides) {
    if (o.cell == cell) return o;
  }
  config_.cell_overrides.push_back(CellOverride{cell, {}, {}, {}});
  return config_.cell_overrides.back();
}

SimulationBuilder& SimulationBuilder::cellCapacityBu(cellular::CellId cell,
                                                     cellular::BandwidthUnits bu) {
  overrideFor(cell).capacity_bu = bu;
  return *this;
}

SimulationBuilder& SimulationBuilder::cellArrivalScale(cellular::CellId cell,
                                                       double scale) {
  overrideFor(cell).arrival_scale = scale;
  return *this;
}

SimulationBuilder& SimulationBuilder::cellTrafficMix(
    cellular::CellId cell, const cellular::TrafficMix& mix) {
  overrideFor(cell).mix = mix;
  return *this;
}

SimulationBuilder& SimulationBuilder::explain(bool on) {
  config_.explain = on;
  return *this;
}

SimulationBuilder& SimulationBuilder::speedKmh(double lo, double hi) {
  config_.scenario.speed_min_kmh = lo;
  config_.scenario.speed_max_kmh = hi;
  return *this;
}

SimulationBuilder& SimulationBuilder::angleDeg(double mean, double sigma) {
  config_.scenario.angle_mean_deg = mean;
  config_.scenario.angle_sigma_deg = sigma;
  return *this;
}

SimulationBuilder& SimulationBuilder::distanceKm(double lo, double hi) {
  config_.scenario.distance_min_km = lo;
  config_.scenario.distance_max_km = hi;
  return *this;
}

SimulationBuilder& SimulationBuilder::trackingWindow(double seconds) {
  config_.scenario.tracking_window_s = seconds;
  return *this;
}

SimulationBuilder& SimulationBuilder::gpsErrorM(double metres) {
  config_.scenario.gps_error_m = metres;
  return *this;
}

SimulationBuilder& SimulationBuilder::noGps() {
  config_.scenario.gps_error_m.reset();
  return *this;
}

SimulationBuilder& SimulationBuilder::trafficMix(
    const cellular::TrafficMix& mix) {
  config_.scenario.mix = mix;
  return *this;
}

SimulationBuilder& SimulationBuilder::scenarioParams(
    const ScenarioParams& params) {
  config_.scenario = params;
  return *this;
}

SimulationBuilder& SimulationBuilder::policy(std::string_view spec) {
  // Parse eagerly so typos surface where the spec is written, not when the
  // run starts.
  (void)runtimeOrDefault().makeFactory(spec);
  policy_spec_ = std::string{spec};
  return *this;
}

const cellular::PolicyRuntime& SimulationBuilder::runtimeOrDefault() const {
  return runtime_ ? *runtime_ : cellular::PolicyRuntime::defaultRuntime();
}

SimulationConfig SimulationBuilder::build() const {
  validateConfig(config_);
  return config_;
}

ControllerFactory SimulationBuilder::factory() const {
  return runtimeOrDefault().makeFactory(policy_spec_);
}

Metrics SimulationBuilder::run() const {
  return runSimulation(build(), factory());
}

}  // namespace facs::sim
