#include "sim/experiment.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace facs::sim {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / n_;
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / (n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95() const noexcept {
  return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

namespace {

double extract(const Metrics& m, Measure measure) {
  switch (measure) {
    case Measure::PercentAccepted:
      return m.percentAccepted();
    case Measure::BlockingProbability:
      return m.blockingProbability();
    case Measure::DroppingProbability:
      return m.droppingProbability();
    case Measure::MeanUtilization:
      return m.meanUtilization();
  }
  return m.percentAccepted();
}

}  // namespace

SweepResult runSweep(const SweepSpec& sweep,
                     const std::vector<CurveSpec>& curves, Measure measure) {
  if (sweep.xs.empty()) {
    throw std::invalid_argument("sweep needs at least one x value");
  }
  if (sweep.replications < 1) {
    throw std::invalid_argument("sweep needs >= 1 replication");
  }

  SweepResult result;
  result.spec = sweep;
  result.curves.reserve(curves.size());

  for (const CurveSpec& curve : curves) {
    CurveResult cr;
    cr.label = curve.label;
    for (const int x : sweep.xs) {
      RunningStat stat;
      for (int rep = 0; rep < sweep.replications; ++rep) {
        SimulationConfig cfg = curve.base;
        cfg.total_requests = x;
        // Common random numbers across curves: the seed depends only on
        // (base_seed, rep), never on the curve.
        cfg.seed = splitmix64(
            sweep.base_seed +
            std::uint64_t{0x51ED2701} * static_cast<std::uint64_t>(rep));
        stat.add(extract(runSimulation(cfg, curve.make_controller), measure));
      }
      cr.points.push_back({x, stat.mean(), stat.stddev(), stat.ci95(),
                           stat.count()});
    }
    result.curves.push_back(std::move(cr));
  }
  return result;
}

void printTable(std::ostream& os, const SweepResult& result) {
  os << "# " << result.spec.title << "\n";
  os << "# y: " << result.spec.y_label
     << " (mean +/- 95% CI over " << result.spec.replications
     << " replications)\n";

  os << std::left << std::setw(14) << result.spec.x_label;
  for (const CurveResult& c : result.curves) {
    os << std::setw(22) << c.label;
  }
  os << "\n";

  for (std::size_t i = 0; i < result.spec.xs.size(); ++i) {
    os << std::left << std::setw(14) << result.spec.xs[i];
    for (const CurveResult& c : result.curves) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(2) << c.points[i].mean
           << " +/- " << std::setprecision(2) << c.points[i].ci95;
      os << std::setw(22) << cell.str();
    }
    os << "\n";
  }
  os.flush();
}

void printCsv(std::ostream& os, const SweepResult& result) {
  os << result.spec.x_label;
  for (const CurveResult& c : result.curves) {
    os << "," << c.label << "_mean," << c.label << "_sd";
  }
  os << "\n";
  for (std::size_t i = 0; i < result.spec.xs.size(); ++i) {
    os << result.spec.xs[i];
    for (const CurveResult& c : result.curves) {
      os << "," << c.points[i].mean << "," << c.points[i].stddev;
    }
    os << "\n";
  }
  os.flush();
}

}  // namespace facs::sim
