#include "sim/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace facs::sim {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / n_;
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / (n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95() const noexcept {
  return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

namespace {

double extract(const Metrics& m, Measure measure) {
  switch (measure) {
    case Measure::PercentAccepted:
      return m.percentAccepted();
    case Measure::BlockingProbability:
      return m.blockingProbability();
    case Measure::DroppingProbability:
      return m.droppingProbability();
    case Measure::MeanUtilization:
      return m.meanUtilization();
  }
  return m.percentAccepted();
}

/// Replication seed: depends only on (base_seed, rep), never on the curve,
/// so curves share common random numbers — the standard variance-reduction
/// device for policy comparisons.
std::uint64_t replicationSeed(std::uint64_t base_seed, int rep) {
  return splitmix64(base_seed +
                    std::uint64_t{0x51ED2701} * static_cast<std::uint64_t>(rep));
}

}  // namespace

SweepResult runSweep(const SweepSpec& sweep,
                     const std::vector<CurveSpec>& curves, Measure measure) {
  return runSweep(cellular::PolicyRuntime::defaultRuntime(), sweep, curves,
                  measure);
}

SweepResult runSweep(const cellular::PolicyRuntime& runtime,
                     const SweepSpec& sweep,
                     const std::vector<CurveSpec>& input_curves,
                     Measure measure) {
  if (sweep.xs.empty()) {
    throw std::invalid_argument("sweep needs at least one x value");
  }
  if (sweep.replications < 1) {
    throw std::invalid_argument("sweep needs >= 1 replication");
  }

  // Resolve spec-string curves up front (typos fail before any run starts);
  // an explicit factory always wins over a spec.
  std::vector<CurveSpec> curves = input_curves;
  for (CurveSpec& c : curves) {
    if (c.make_controller) continue;
    if (c.policy.empty()) {
      throw std::invalid_argument("curve '" + c.label +
                                  "' needs a factory or a policy spec");
    }
    c.make_controller = runtime.makeFactory(c.policy);
  }

  // Every (curve, x, replication) combination is an independent simulation:
  // the seed scheme above makes the runs order-free, so they fan out over a
  // small thread pool. Determinism is preserved by writing each run's
  // extracted measure into its own slot and folding the Welford accumulator
  // serially, in replication order, after all runs finish — the parallel
  // path is bit-identical to the serial one.
  const std::size_t reps = static_cast<std::size_t>(sweep.replications);
  const std::size_t per_curve = sweep.xs.size() * reps;
  const std::size_t total = curves.size() * per_curve;
  // Full metrics per run (not just the extracted measure): the JSON
  // rendering ships every counter of every replication, so CI diffs whole
  // figures. Each task writes only its own slot — the parallel fan-out
  // below stays bit-identical to the serial fold.
  std::vector<Metrics> values(total);

  const auto runTask = [&](std::size_t task) {
    const std::size_t c = task / per_curve;
    const std::size_t xi = (task % per_curve) / reps;
    const int rep = static_cast<int>(task % reps);
    SimulationConfig cfg = curves[c].base;
    cfg.total_requests = sweep.xs[xi];
    cfg.seed = replicationSeed(sweep.base_seed, rep);
    values[task] = runSimulation(cfg, curves[c].make_controller);
  };

  // Auto thread count divides the machine by the widest per-run shard
  // fan-out, so a sweep of sharded runs does not oversubscribe cores.
  // An explicit threads value is honoured verbatim.
  int max_shards = 1;
  for (const CurveSpec& c : curves) {
    max_shards = std::max(max_shards, std::max(1, c.base.shards));
  }
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned auto_workers =
      std::max(1u, hardware / static_cast<unsigned>(max_shards));
  const std::size_t workers =
      std::min(total, static_cast<std::size_t>(
                          sweep.threads > 0 ? sweep.threads : auto_workers));
  if (workers <= 1) {
    for (std::size_t task = 0; task < total; ++task) runTask(task);
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
          if (task >= total) return;
          try {
            runTask(task);
          } catch (...) {
            const std::lock_guard<std::mutex> lock{error_mutex};
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  SweepResult result;
  result.spec = sweep;
  result.curves.reserve(curves.size());
  for (std::size_t c = 0; c < curves.size(); ++c) {
    CurveResult cr;
    cr.label = curves[c].label;
    for (std::size_t xi = 0; xi < sweep.xs.size(); ++xi) {
      RunningStat stat;
      PointResult point;
      point.runs.reserve(reps);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const Metrics& m = values[c * per_curve + xi * reps + rep];
        stat.add(extract(m, measure));
        point.runs.push_back(m);
      }
      point.x = sweep.xs[xi];
      point.mean = stat.mean();
      point.stddev = stat.stddev();
      point.ci95 = stat.ci95();
      point.replications = stat.count();
      cr.points.push_back(std::move(point));
    }
    result.curves.push_back(std::move(cr));
  }
  return result;
}

void printTable(std::ostream& os, const SweepResult& result) {
  os << "# " << result.spec.title << "\n";
  os << "# y: " << result.spec.y_label
     << " (mean +/- 95% CI over " << result.spec.replications
     << " replications)\n";

  os << std::left << std::setw(14) << result.spec.x_label;
  for (const CurveResult& c : result.curves) {
    os << std::setw(22) << c.label;
  }
  os << "\n";

  for (std::size_t i = 0; i < result.spec.xs.size(); ++i) {
    os << std::left << std::setw(14) << result.spec.xs[i];
    for (const CurveResult& c : result.curves) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(2) << c.points[i].mean
           << " +/- " << std::setprecision(2) << c.points[i].ci95;
      os << std::setw(22) << cell.str();
    }
    os << "\n";
  }
  os.flush();
}

namespace {

/// Escapes a label for a JSON string literal (quotes, backslashes,
/// control characters — labels are operator text, not trusted data).
std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Indents every line of a multi-line JSON fragment by \p pad.
std::string indented(const std::string& text, const std::string& pad) {
  std::string out = pad;
  for (const char c : text) {
    out += c;
    if (c == '\n') out += pad;
  }
  return out;
}

}  // namespace

void printJson(std::ostream& os, const SweepResult& result) {
  os << "{\n"
     << "  \"title\": \"" << jsonEscape(result.spec.title) << "\",\n"
     << "  \"x_label\": \"" << jsonEscape(result.spec.x_label) << "\",\n"
     << "  \"y_label\": \"" << jsonEscape(result.spec.y_label) << "\",\n"
     << "  \"replications\": " << result.spec.replications << ",\n"
     << "  \"base_seed\": " << result.spec.base_seed << ",\n"
     << "  \"curves\": [\n";
  for (std::size_t c = 0; c < result.curves.size(); ++c) {
    const CurveResult& curve = result.curves[c];
    os << "    {\n"
       << "      \"label\": \"" << jsonEscape(curve.label) << "\",\n"
       << "      \"points\": [\n";
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
      const PointResult& p = curve.points[i];
      os << "        {\n"
         << "          \"x\": " << p.x << ",\n"
         << "          \"mean\": " << shortestNumber(p.mean) << ",\n"
         << "          \"stddev\": " << shortestNumber(p.stddev) << ",\n"
         << "          \"ci95\": " << shortestNumber(p.ci95) << ",\n"
         << "          \"runs\": [\n";
      for (std::size_t r = 0; r < p.runs.size(); ++r) {
        os << indented(p.runs[r].toJson(), "            ")
           << (r + 1 < p.runs.size() ? "," : "") << "\n";
      }
      os << "          ]\n"
         << "        }" << (i + 1 < curve.points.size() ? "," : "") << "\n";
    }
    os << "      ]\n"
       << "    }" << (c + 1 < result.curves.size() ? "," : "") << "\n";
  }
  os << "  ]\n"
     << "}\n";
  os.flush();
}

void printCsv(std::ostream& os, const SweepResult& result) {
  os << result.spec.x_label;
  for (const CurveResult& c : result.curves) {
    os << "," << c.label << "_mean," << c.label << "_sd";
  }
  os << "\n";
  for (std::size_t i = 0; i < result.spec.xs.size(); ++i) {
    os << result.spec.xs[i];
    for (const CurveResult& c : result.curves) {
      os << "," << c.points[i].mean << "," << c.points[i].stddev;
    }
    os << "\n";
  }
  os.flush();
}

}  // namespace facs::sim
