#include "sim/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace facs::sim {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / n_;
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / (n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95() const noexcept {
  return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

namespace {

double extract(const Metrics& m, Measure measure) {
  switch (measure) {
    case Measure::PercentAccepted:
      return m.percentAccepted();
    case Measure::BlockingProbability:
      return m.blockingProbability();
    case Measure::DroppingProbability:
      return m.droppingProbability();
    case Measure::MeanUtilization:
      return m.meanUtilization();
  }
  return m.percentAccepted();
}

/// Replication seed: depends only on (base_seed, rep), never on the curve,
/// so curves share common random numbers — the standard variance-reduction
/// device for policy comparisons.
std::uint64_t replicationSeed(std::uint64_t base_seed, int rep) {
  return splitmix64(base_seed +
                    std::uint64_t{0x51ED2701} * static_cast<std::uint64_t>(rep));
}

}  // namespace

SweepResult runSweep(const SweepSpec& sweep,
                     const std::vector<CurveSpec>& curves, Measure measure) {
  return runSweep(cellular::PolicyRuntime::defaultRuntime(), sweep, curves,
                  measure);
}

SweepResult runSweep(const cellular::PolicyRuntime& runtime,
                     const SweepSpec& sweep,
                     const std::vector<CurveSpec>& input_curves,
                     Measure measure) {
  if (sweep.xs.empty()) {
    throw std::invalid_argument("sweep needs at least one x value");
  }
  if (sweep.replications < 1) {
    throw std::invalid_argument("sweep needs >= 1 replication");
  }

  // Resolve spec-string curves up front (typos fail before any run starts);
  // an explicit factory always wins over a spec.
  std::vector<CurveSpec> curves = input_curves;
  for (CurveSpec& c : curves) {
    if (c.make_controller) continue;
    if (c.policy.empty()) {
      throw std::invalid_argument("curve '" + c.label +
                                  "' needs a factory or a policy spec");
    }
    c.make_controller = runtime.makeFactory(c.policy);
  }

  // Every (curve, x, replication) combination is an independent simulation:
  // the seed scheme above makes the runs order-free, so they fan out over a
  // small thread pool. Determinism is preserved by writing each run's
  // extracted measure into its own slot and folding the Welford accumulator
  // serially, in replication order, after all runs finish — the parallel
  // path is bit-identical to the serial one.
  const std::size_t reps = static_cast<std::size_t>(sweep.replications);
  const std::size_t per_curve = sweep.xs.size() * reps;
  const std::size_t total = curves.size() * per_curve;
  std::vector<double> values(total, 0.0);

  const auto runTask = [&](std::size_t task) {
    const std::size_t c = task / per_curve;
    const std::size_t xi = (task % per_curve) / reps;
    const int rep = static_cast<int>(task % reps);
    SimulationConfig cfg = curves[c].base;
    cfg.total_requests = sweep.xs[xi];
    cfg.seed = replicationSeed(sweep.base_seed, rep);
    values[task] =
        extract(runSimulation(cfg, curves[c].make_controller), measure);
  };

  // Auto thread count divides the machine by the widest per-run shard
  // fan-out, so a sweep of sharded runs does not oversubscribe cores.
  // An explicit threads value is honoured verbatim.
  int max_shards = 1;
  for (const CurveSpec& c : curves) {
    max_shards = std::max(max_shards, std::max(1, c.base.shards));
  }
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned auto_workers =
      std::max(1u, hardware / static_cast<unsigned>(max_shards));
  const std::size_t workers =
      std::min(total, static_cast<std::size_t>(
                          sweep.threads > 0 ? sweep.threads : auto_workers));
  if (workers <= 1) {
    for (std::size_t task = 0; task < total; ++task) runTask(task);
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
          if (task >= total) return;
          try {
            runTask(task);
          } catch (...) {
            const std::lock_guard<std::mutex> lock{error_mutex};
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  SweepResult result;
  result.spec = sweep;
  result.curves.reserve(curves.size());
  for (std::size_t c = 0; c < curves.size(); ++c) {
    CurveResult cr;
    cr.label = curves[c].label;
    for (std::size_t xi = 0; xi < sweep.xs.size(); ++xi) {
      RunningStat stat;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        stat.add(values[c * per_curve + xi * reps + rep]);
      }
      cr.points.push_back(
          {sweep.xs[xi], stat.mean(), stat.stddev(), stat.ci95(),
           stat.count()});
    }
    result.curves.push_back(std::move(cr));
  }
  return result;
}

void printTable(std::ostream& os, const SweepResult& result) {
  os << "# " << result.spec.title << "\n";
  os << "# y: " << result.spec.y_label
     << " (mean +/- 95% CI over " << result.spec.replications
     << " replications)\n";

  os << std::left << std::setw(14) << result.spec.x_label;
  for (const CurveResult& c : result.curves) {
    os << std::setw(22) << c.label;
  }
  os << "\n";

  for (std::size_t i = 0; i < result.spec.xs.size(); ++i) {
    os << std::left << std::setw(14) << result.spec.xs[i];
    for (const CurveResult& c : result.curves) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(2) << c.points[i].mean
           << " +/- " << std::setprecision(2) << c.points[i].ci95;
      os << std::setw(22) << cell.str();
    }
    os << "\n";
  }
  os.flush();
}

void printCsv(std::ostream& os, const SweepResult& result) {
  os << result.spec.x_label;
  for (const CurveResult& c : result.curves) {
    os << "," << c.label << "_mean," << c.label << "_sd";
  }
  os << "\n";
  for (std::size_t i = 0; i < result.spec.xs.size(); ++i) {
    os << result.spec.xs[i];
    for (const CurveResult& c : result.curves) {
      os << "," << c.points[i].mean << "," << c.points[i].stddev;
    }
    os << "\n";
  }
  os.flush();
}

}  // namespace facs::sim
