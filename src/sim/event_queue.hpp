#pragma once
/// \file event_queue.hpp
/// A minimal, deterministic discrete-event queue: events pop in
/// non-decreasing time order, FIFO among equal timestamps (insertion
/// sequence breaks ties, so runs are bit-reproducible).

#include <cstdint>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace facs::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    double time_s = 0.0;
    std::uint64_t seq = 0;
    Payload payload;
  };

  /// Schedules \p payload at \p time_s.
  /// \throws std::invalid_argument if time_s is non-finite or precedes the
  ///         last popped event (no time travel).
  void push(double time_s, Payload payload) {
    if (!(time_s >= last_popped_s_)) {
      throw std::invalid_argument(
          "event scheduled in the past (time must be >= current clock)");
    }
    heap_.push(Entry{time_s, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the next event, if any.
  [[nodiscard]] std::optional<double> peekTime() const {
    if (heap_.empty()) return std::nullopt;
    return heap_.top().time_s;
  }

  /// Pops the earliest event; advances the internal clock.
  [[nodiscard]] std::optional<Entry> pop() {
    if (heap_.empty()) return std::nullopt;
    Entry e = heap_.top();  // top() is const; Payload must be copyable
    heap_.pop();
    last_popped_s_ = e.time_s;
    return e;
  }

  /// Pops the earliest event only if it precedes \p horizon_s — the
  /// primitive of tick-windowed draining: a shard consumes its local events
  /// strictly before the barrier and leaves the rest for later windows.
  [[nodiscard]] std::optional<Entry> popBefore(double horizon_s) {
    if (heap_.empty() || !(heap_.top().time_s < horizon_s)) {
      return std::nullopt;
    }
    return pop();
  }

  /// Clock: the time of the most recently popped event.
  [[nodiscard]] double now() const noexcept { return last_popped_s_; }

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double last_popped_s_ = 0.0;
};

}  // namespace facs::sim
