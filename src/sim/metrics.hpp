#pragma once
/// \file metrics.hpp
/// Call-level statistics collected by the simulator — the quantities the
/// paper's figures plot (percentage of accepted calls) plus the standard
/// CAC quality measures (blocking, dropping, utilization).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cellular/traffic.hpp"

namespace facs::sim {

/// Shortest decimal form that parses back to the identical double
/// (std::to_chars): equal doubles always print equal text. Shared by
/// Metrics::toJson() and the scenario-file writer — the textual side of
/// the bit-identical round-trip contract.
[[nodiscard]] std::string shortestNumber(double v);

/// Aggregated counters for one simulation run.
struct Metrics {
  // New-call admission.
  int new_requests = 0;
  int new_accepted = 0;
  int new_blocked = 0;

  // Handoffs.
  int handoff_requests = 0;
  int handoff_accepted = 0;
  int handoff_dropped = 0;

  int completed = 0;  ///< Calls that ended normally.

  // Per-class acceptance (indexed by ServiceClass).
  std::array<int, cellular::kServiceClassCount> class_requests{};
  std::array<int, cellular::kServiceClassCount> class_accepted{};

  // Time-weighted bandwidth usage.
  double busy_bu_seconds = 0.0;   ///< Integral of occupied BU over time.
  double observed_span_s = 0.0;   ///< Simulated span the integral covers.
  cellular::BandwidthUnits total_capacity_bu = 0;

  /// Simulation events the engine processed (decisions, releases, mobility
  /// steps, handoffs) — the numerator of the events/sec scaling figure.
  /// Identical for a given (config, seed) at every shard count.
  std::uint64_t engine_events = 0;

  /// Commit lanes the run actually used: SimulationConfig::commit_groups
  /// clamped to the cell count, degraded to 1 when the policy declares a
  /// Global commit scope (cellular::CommitScope). Deterministic — part of
  /// the JSON so grouped runs are self-describing.
  int commit_groups = 1;

  /// Committed events per commit lane (size == commit_groups, lane order).
  /// The deterministic face of lane balance: decisions, releases and
  /// handoffs each lane replayed, plus the reservations it drained at the
  /// barrier. Sums to engine_events + reservations handled. max/mean over
  /// this vector is the imbalance ratio the weighted partition exists to
  /// shrink. Part of the bit-identity contract (unlike lane_commit_s).
  std::vector<std::uint64_t> lane_events{};

  /// Wall-clock seconds each commit lane spent running (its canonical
  /// replay plus its share of the parallel reservation drain). Size ==
  /// commit_groups. NOT deterministic and NOT in toJson() — this is the
  /// measured twin of lane_events for bench output; commit_lane_s is its
  /// max (the lane section's critical path).
  std::vector<double> lane_commit_s{};

  /// Weighted-partition epoch re-partitions that actually changed the
  /// cell-to-group mapping (SimulationConfig::repartition_every_s).
  /// Deterministic: epochs land at barrier times and the load weights are
  /// committed-event counts, both pure functions of (config, seed).
  int repartitions = 0;

  /// Epoch re-draws that produced a different mapping but were skipped by
  /// the boundary hysteresis: the projected max/mean imbalance improvement
  /// was below the adoption threshold, so moving cells (and migrating
  /// GroupLocal policy state) would have been churn, not balance.
  /// Deterministic for the same reason repartitions is.
  int repartitions_skipped = 0;

  /// Cross-group handoff reservations (the inter-BS messages): claims
  /// posted into foreign group mailboxes, and how they resolved at the
  /// tick-window barrier. posted == admitted + dropped. Warmup-gated like
  /// every other counter; always 0 at commit_groups == 1 (every handoff
  /// commits inside its lane). Deterministic for fixed (config, seed,
  /// commit_groups) at any shard count.
  std::uint64_t reservations_posted = 0;
  std::uint64_t reservations_admitted = 0;
  std::uint64_t reservations_dropped = 0;

  /// GroupLocal policy traffic drained at tick-window barriers
  /// (cellular::BarrierDrainStats, summed over the run): cross-group
  /// demand-delta records a policy deferred out of its lanes and applied
  /// at the barrier, and per-group records re-homed across a group
  /// boundary (handoff refreshes whose old anchor lives in a foreign
  /// store, plus repartition migrations). Always 0 for CellLocal/Global
  /// policies and at commit_groups == 1. Deterministic for fixed (config,
  /// seed, commit_groups) at any shard count.
  std::uint64_t demand_deltas = 0;
  std::uint64_t shadow_migrations = 0;

  /// Policy sizing warnings raised by auditWorkload() at engine start
  /// (e.g. an SCC reach smaller than the fastest mobile's projection
  /// horizon). Printed once on stderr; counted here so JSON consumers see
  /// the degradation too. A pure function of the config — deterministic.
  int policy_warnings = 0;

  /// Scheduled scenario mutations (SimulationConfig::mutations) applied at
  /// tick-window barriers so far. NOT warmup-gated — a mutation is a
  /// config event, not a traffic sample. Deterministic: barrier times are
  /// pure functions of the config.
  int mutations_applied = 0;

  /// Live calls force-dropped by cell-outage mutations (warmup-gated at
  /// the outage instant like every traffic counter). These calls are
  /// neither completed nor handoff-dropped — the outage took them.
  int outage_forced_drops = 0;

  /// High-water mark of simultaneously live calls in the engine's call
  /// pool — the number memory is proportional to in the flat-memory
  /// engine (cumulative calls only pass through). Deterministic for a
  /// fixed (config, seed, commit_groups) at any shard count.
  std::uint64_t peak_concurrent_calls = 0;

  /// Rationales cut at ReasonText's inline capacity during this run's
  /// measured (post-warmup) span, like every other counter. Only ever
  /// non-zero when the run decided with explain on
  /// (SimulationConfig::explain); the CLI warns once per run when set, so
  /// truncation is visible instead of silently losing tails. Deterministic
  /// (part of the bit-identity contract) — decisions never depend on it.
  int truncated_rationales = 0;

  // Wall-clock profile of the engine's execution phases. NOT part of the
  // determinism contract (timings vary run to run even at a fixed seed) —
  // bit-identity comparisons must skip these. The commit phase is the
  // serialized section, so commitShare() is the measured serial fraction
  // that caps sharded speedup (Amdahl). With commit_groups > 1 the
  // per-group lane section runs concurrently and is accounted separately
  // (commit_lane_s); commit_phase_s then covers only what stays serialized:
  // routing the merged mailboxes and draining reservations at the barrier.
  // At commit_groups == 1 the single lane IS the serialized commit, so its
  // time stays in commit_phase_s and commit_lane_s is 0 — the baseline the
  // grouped share is compared against.
  double prepare_phase_s = 0.0;  ///< Parallel: arrival draws, GPS tracking.
  double local_phase_s = 0.0;    ///< Parallel: per-shard queue draining.
  double commit_phase_s = 0.0;   ///< Serial: ledger/controller mutations.
  double commit_lane_s = 0.0;    ///< Parallel: group commit lanes (groups>1).

  /// Fraction of engine wall time spent in the serialized commit section.
  [[nodiscard]] double commitShare() const noexcept {
    const double total =
        prepare_phase_s + local_phase_s + commit_phase_s + commit_lane_s;
    if (total <= 0.0) return 0.0;
    return commit_phase_s / total;
  }

  /// The paper's y-axis: accepted / requesting new connections, in percent.
  /// 100 when no request was made (an empty x=0 point plots at the top).
  [[nodiscard]] double percentAccepted() const noexcept {
    if (new_requests == 0) return 100.0;
    return 100.0 * static_cast<double>(new_accepted) /
           static_cast<double>(new_requests);
  }

  /// New-call blocking probability in [0, 1].
  [[nodiscard]] double blockingProbability() const noexcept {
    if (new_requests == 0) return 0.0;
    return static_cast<double>(new_blocked) /
           static_cast<double>(new_requests);
  }

  /// Handoff dropping probability in [0, 1].
  [[nodiscard]] double droppingProbability() const noexcept {
    if (handoff_requests == 0) return 0.0;
    return static_cast<double>(handoff_dropped) /
           static_cast<double>(handoff_requests);
  }

  /// Mean fraction of total capacity in use over the observed span.
  [[nodiscard]] double meanUtilization() const noexcept {
    if (observed_span_s <= 0.0 || total_capacity_bu <= 0) return 0.0;
    return busy_bu_seconds /
           (observed_span_s * static_cast<double>(total_capacity_bu));
  }

  [[nodiscard]] double percentAcceptedForClass(
      cellular::ServiceClass c) const noexcept {
    const auto i = static_cast<std::size_t>(c);
    if (class_requests[i] == 0) return 100.0;
    return 100.0 * static_cast<double>(class_accepted[i]) /
           static_cast<double>(class_requests[i]);
  }

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;

  /// The deterministic counters as a JSON object (stable key order, doubles
  /// in shortest round-trip form), so two runs can be compared with a plain
  /// textual diff — the CI round-trip gate relies on this. The wall-clock
  /// phase profile is deliberately absent: timings differ run to run even
  /// at a fixed seed.
  [[nodiscard]] std::string toJson() const;
};

}  // namespace facs::sim
